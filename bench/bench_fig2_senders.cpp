// Figure 2: sender characterization and the activity filter.
//   (a) ECDF of monthly packets per sender with the 10-packet threshold;
//   (b) cumulative distinct senders over time, unfiltered vs filtered.
#include "common.hpp"

#include "darkvec/ml/stats.hpp"

int main() {
  using namespace darkvec;
  using namespace darkvec::bench;

  const sim::SimResult sim = simulate(/*default_days=*/30);

  banner("Figure 2a", "ECDF of packets per sender in one month");
  const auto totals = sim.trace.packets_per_sender();
  std::vector<double> counts;
  counts.reserve(totals.size());
  for (const auto& [ip, n] : totals) {
    counts.push_back(static_cast<double>(n));
  }
  const ml::Ecdf ecdf(counts);
  compare("senders seen exactly once", "36%",
          fmt("%.0f%%", 100.0 * ecdf(1.0)));
  compare("senders below the 10-packet filter", "~80%",
          fmt("%.0f%%", 100.0 * ecdf(9.0)));
  std::printf("\n  ECDF samples:\n");
  for (const double x : {1.0, 2.0, 5.0, 9.0, 10.0, 50.0, 100.0, 1000.0}) {
    std::printf("    P[packets <= %6.0f] = %.3f\n", x, ecdf(x));
  }

  // Traffic share of active senders (paper: active 20% of senders carry
  // the majority of traffic).
  std::size_t active_packets = 0;
  std::size_t active_senders_n = 0;
  for (const auto& [ip, n] : totals) {
    if (n >= 10) {
      active_packets += n;
      ++active_senders_n;
    }
  }
  compare("active senders (>=10 pkts)", "~20%",
          fmt("%.0f%%", 100.0 * static_cast<double>(active_senders_n) /
                            static_cast<double>(totals.size())));
  compare("traffic from active senders", "majority",
          fmt("%.0f%%", 100.0 * static_cast<double>(active_packets) /
                            static_cast<double>(sim.trace.size())));

  banner("Figure 2b", "cumulative distinct senders over time");
  const std::int64_t t0 = sim.trace.stats().first_ts;
  const auto unfiltered = sim.trace.cumulative_senders_per_day(t0, 1);
  const auto filtered = sim.trace.cumulative_senders_per_day(t0, 10);
  std::printf("  %-6s %12s %12s\n", "day", "unfiltered", "filtered(>=10)");
  for (std::size_t d = 0; d < unfiltered.size(); ++d) {
    if (d % 5 == 0 || d + 1 == unfiltered.size()) {
      std::printf("  %-6zu %12zu %12zu\n", d + 1, unfiltered[d],
                  filtered[d]);
    }
  }
  std::printf("\nexpected shape (paper): unfiltered curve grows steadily to "
              "~5x the first day;\nfiltered curve sits roughly one order of "
              "magnitude below, also growing.\n");
  const double growth =
      static_cast<double>(unfiltered.back()) /
      static_cast<double>(std::max<std::size_t>(unfiltered.front(), 1));
  compare("30d/1d unfiltered sender growth", "~12x (40k->500k)",
          fmt("%.1fx", growth));
  return 0;
}
