// Micro-benchmarks of the skip-gram trainer: pair throughput vs embedding
// size, window and negative-sample count — the cost drivers behind the
// Figure 8 runtime matrices and the Table 3 training times.
#include <benchmark/benchmark.h>

#include "darkvec/core/simd/simd.hpp"
#include "darkvec/sim/rng.hpp"
#include "darkvec/w2v/skipgram.hpp"
#include "micro_common.hpp"

namespace {

using darkvec::w2v::Sentence;
using darkvec::w2v::SkipGramModel;
using darkvec::w2v::SkipGramOptions;

std::vector<Sentence> synthetic_corpus(std::size_t vocab,
                                       std::size_t sentences,
                                       std::size_t length,
                                       std::uint64_t seed) {
  darkvec::sim::Rng rng(seed);
  std::vector<Sentence> corpus(sentences);
  for (Sentence& s : corpus) {
    s.reserve(length);
    for (std::size_t i = 0; i < length; ++i) {
      s.push_back(static_cast<std::uint32_t>(rng.uniform_int(vocab)));
    }
  }
  return corpus;
}

void BM_SkipGramTrain(benchmark::State& state) {
  const auto dim = static_cast<int>(state.range(0));
  const auto window = static_cast<int>(state.range(1));
  const auto corpus = synthetic_corpus(2000, 200, 50, 7);
  SkipGramOptions options;
  options.dim = dim;
  options.window = window;
  options.epochs = 1;
  options.subsample = 0;
  std::uint64_t pairs = 0;
  for (auto _ : state) {
    SkipGramModel model(2000, options);
    const auto stats = model.train(corpus);
    pairs += stats.pairs;
    benchmark::DoNotOptimize(model.embedding().data().data());
  }
  state.counters["pairs/s"] = benchmark::Counter(
      static_cast<double>(pairs), benchmark::Counter::kIsRate);
}

BENCHMARK(BM_SkipGramTrain)
    ->ArgsProduct({{50, 200}, {5, 25}})
    ->Unit(benchmark::kMillisecond);

// Scalar-forced twin of BM_SkipGramTrain: the before/after pair the
// BENCH_micro_w2v.json speedup section is derived from.
void BM_SkipGramTrainScalar(benchmark::State& state) {
  darkvec::simd::ScopedLevel scoped(darkvec::simd::Level::kScalar);
  const auto dim = static_cast<int>(state.range(0));
  const auto window = static_cast<int>(state.range(1));
  const auto corpus = synthetic_corpus(2000, 200, 50, 7);
  SkipGramOptions options;
  options.dim = dim;
  options.window = window;
  options.epochs = 1;
  options.subsample = 0;
  for (auto _ : state) {
    SkipGramModel model(2000, options);
    model.train(corpus);
    benchmark::DoNotOptimize(model.embedding().data().data());
  }
}

BENCHMARK(BM_SkipGramTrainScalar)
    ->ArgsProduct({{50, 200}, {5, 25}})
    ->Unit(benchmark::kMillisecond);

void BM_SkipGramNegatives(benchmark::State& state) {
  const auto negative = static_cast<int>(state.range(0));
  const auto corpus = synthetic_corpus(2000, 100, 50, 7);
  SkipGramOptions options;
  options.dim = 50;
  options.window = 10;
  options.negative = negative;
  options.epochs = 1;
  options.subsample = 0;
  for (auto _ : state) {
    SkipGramModel model(2000, options);
    model.train(corpus);
    benchmark::DoNotOptimize(model.embedding().data().data());
  }
}

BENCHMARK(BM_SkipGramNegatives)->Arg(2)->Arg(5)->Arg(15)->Unit(
    benchmark::kMillisecond);

void BM_SkipGramPairTraining(benchmark::State& state) {
  darkvec::sim::Rng rng(3);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs(100000);
  for (auto& [a, b] : pairs) {
    a = static_cast<std::uint32_t>(rng.uniform_int(2000));
    b = static_cast<std::uint32_t>(rng.uniform_int(2000));
  }
  SkipGramOptions options;
  options.dim = 50;
  options.epochs = 1;
  for (auto _ : state) {
    SkipGramModel model(2000, options);
    model.train_pairs(pairs);
    benchmark::DoNotOptimize(model.embedding().data().data());
  }
}

BENCHMARK(BM_SkipGramPairTraining)->Unit(benchmark::kMillisecond);

}  // namespace

DARKVEC_MICRO_MAIN("w2v")
