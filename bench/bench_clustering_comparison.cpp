// Section 7.1: the paper compared classic clustering algorithms (k-Means,
// DBSCAN, hierarchical agglomerative) on the embedded space and found they
// "produce poor results due to the well-known curse of dimensionality as
// well as their difficult parameter tuning", motivating the k'-NN graph +
// Louvain design. This bench reruns that comparison.
//
// Quality metric: oracle-weighted purity — each cluster scored by the
// share of its dominant generator population, weighted by cluster size —
// plus the noise fraction (DBSCAN) and the cluster count.
#include "common.hpp"

#include <algorithm>

#include "darkvec/core/inspector.hpp"
#include "darkvec/ml/dbscan.hpp"
#include "darkvec/ml/hac.hpp"
#include "darkvec/ml/kmeans.hpp"

namespace {

/// Size-weighted dominant-group purity of an assignment (noise/-1 points
/// count as their own singleton failures).
double weighted_purity(const darkvec::corpus::Corpus& corpus,
                       std::span<const int> assignment,
                       const darkvec::sim::GroupMap& oracle) {
  int max_id = -1;
  for (const int a : assignment) max_id = std::max(max_id, a);
  std::vector<std::unordered_map<std::string, std::size_t>> comp(
      static_cast<std::size_t>(max_id + 1));
  std::size_t assigned = 0;
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    if (assignment[i] < 0) continue;
    ++assigned;
    const auto it = oracle.find(corpus.words[i]);
    ++comp[static_cast<std::size_t>(assignment[i])]
          [it == oracle.end() ? "?" : it->second];
  }
  double weighted = 0;
  for (const auto& groups : comp) {
    std::size_t total = 0;
    std::size_t best = 0;
    for (const auto& [group, n] : groups) {
      total += n;
      best = std::max(best, n);
    }
    weighted += static_cast<double>(best);
  }
  return assigned == 0 ? 0.0
                       : weighted / static_cast<double>(assignment.size());
}

}  // namespace

int main() {
  using namespace darkvec;
  using namespace darkvec::bench;

  banner("Section 7.1", "Louvain vs k-Means / DBSCAN / HAC on the embedding");
  std::printf("paper: the classic algorithms produce poor results on the "
              "50-dimensional embedding;\nthe k'-NN graph + Louvain design "
              "is adopted instead.\n\n");

  const sim::SimResult sim = simulate(/*default_days=*/30);
  DarkVec dv(default_config(/*default_epochs=*/5));
  dv.fit(sim.trace);
  const auto& embedding = dv.embedding();
  std::printf("embedded senders: %zu, dim %d\n\n", embedding.size(),
              embedding.dim());

  std::printf("  %-26s %9s %8s %8s\n", "method", "clusters", "purity",
              "noise");

  // Louvain at the paper's operating point.
  const Clustering louvain = dv.cluster(3);
  const double louvain_purity =
      weighted_purity(dv.corpus(), louvain.assignment, sim.groups);
  std::printf("  %-26s %9d %8.3f %8s\n", "Louvain (k'=3)", louvain.count,
              louvain_purity, "-");

  // k-Means at several k (the "difficult parameter tuning" point: the
  // right k is unknown a priori). Purity rises mechanically with cluster
  // count, so the comparison below only admits configurations of
  // comparable granularity (<= 1.5x Louvain's cluster count).
  const int fair_cap = louvain.count + louvain.count / 2;
  double best_kmeans = 0;
  for (const int k : {10, 30, 46, 100}) {
    const auto km = ml::kmeans(embedding, k);
    const double purity =
        weighted_purity(dv.corpus(), km.assignment, sim.groups);
    if (k <= fair_cap) best_kmeans = std::max(best_kmeans, purity);
    char label[32];
    std::snprintf(label, sizeof(label), "k-Means (k=%d)", k);
    std::printf("  %-26s %9d %8.3f %8s\n", label, k, purity, "-");
  }

  // DBSCAN across eps (parameter sensitivity).
  double best_dbscan = 0;
  for (const double eps : {0.05, 0.15, 0.3}) {
    ml::DbscanOptions options;
    options.eps = eps;
    options.min_points = 5;
    const auto db = ml::dbscan(embedding, options);
    std::size_t noise = 0;
    for (const int a : db.assignment) {
      if (a == ml::DbscanResult::kNoise) ++noise;
    }
    const double purity =
        weighted_purity(dv.corpus(), db.assignment, sim.groups);
    if (db.clusters <= fair_cap) best_dbscan = std::max(best_dbscan, purity);
    char label[32];
    std::snprintf(label, sizeof(label), "DBSCAN (eps=%.2f)", eps);
    std::printf("  %-26s %9d %8.3f %7.0f%%\n", label, db.clusters, purity,
                100.0 * static_cast<double>(noise) /
                    static_cast<double>(db.assignment.size()));
  }

  // HAC on a subsample (O(n^2) memory): average linkage at the Louvain
  // cluster count.
  {
    const std::size_t cap = 1500;
    const std::size_t n = std::min(embedding.size(), cap);
    w2v::Embedding sample(n, embedding.dim());
    corpus::Corpus sample_corpus;
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t src = i * embedding.size() / n;
      std::ranges::copy(embedding.vec(src), sample.vec(i).begin());
      sample_corpus.words.push_back(dv.corpus().words[src]);
    }
    const auto hac = ml::agglomerative(sample, louvain.count);
    const double purity =
        weighted_purity(sample_corpus, hac.assignment, sim.groups);
    char label[40];
    std::snprintf(label, sizeof(label), "HAC avg-link (%zu pts)", n);
    std::printf("  %-26s %9d %8.3f %8s\n", label, hac.clusters, purity, "-");
    std::printf("\n");
    compare("Louvain beats the classics at comparable granularity",
            "clear margin (Section 7.1)",
            fmt("Louvain %.3f vs best classic ", louvain_purity) +
                fmt("%.3f", std::max({best_kmeans, best_dbscan, purity})));
  }
  return 0;
}
