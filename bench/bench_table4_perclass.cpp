// Table 4: per-class precision/recall/F-score of the 7-NN classifier for
// the three service definitions, at each definition's paper operating
// point (single c=75, auto c=50, domain c=25; V=50 everywhere).
#include "common.hpp"

int main() {
  using namespace darkvec;
  using namespace darkvec::bench;

  banner("Table 4", "7-NN per-class report for three service definitions");
  std::printf(
      "paper highlights: single service fails most minority classes "
      "(Stretchoid F=0.01,\nShodan F=0.00); auto and domain fix them; "
      "Stretchoid recall stays low (0.30-0.35)\neven for domain; "
      "Engin-umich reaches 1.00 with domain services.\n\n");

  const sim::SimResult sim = simulate(/*default_days=*/30);
  const auto eval_ips = last_day_active_senders(sim.trace);

  struct Setting {
    corpus::ServiceStrategy strategy;
    int window;
  };
  const Setting settings[] = {
      {corpus::ServiceStrategy::kSingle, 75},
      {corpus::ServiceStrategy::kAuto, 50},
      {corpus::ServiceStrategy::kDomain, 25},
  };

  double stretchoid_recall_domain = 0;
  double single_min_f1 = 1;
  double domain_min_f1 = 1;
  for (const Setting& setting : settings) {
    DarkVecConfig config = default_config(/*default_epochs=*/5);
    config.services = setting.strategy;
    config.w2v.window = setting.window;
    DarkVec dv(config);
    dv.fit(sim.trace);
    const auto eval = evaluate_knn(dv, sim.labels, eval_ips, 7);

    std::printf("---- %s services (c=%d, V=%d) — accuracy %.3f ----\n",
                std::string(to_string(setting.strategy)).c_str(),
                setting.window, config.w2v.dim, eval.accuracy);
    std::printf("  %-16s %9s %8s %8s %8s\n", "class", "precision", "recall",
                "f-score", "support");
    for (const sim::GtClass c : sim::kAllGtClasses) {
      const auto& s = eval.report.scores(static_cast<int>(c));
      std::printf("  %-16s %9.2f %8.2f %8.2f %8zu%s\n",
                  std::string(to_string(c)).c_str(), s.precision, s.recall,
                  s.f1, s.support,
                  s.f1 < 0.5 && c != sim::GtClass::kUnknown ? "   (<0.50)"
                                                            : "");
      if (c == sim::GtClass::kUnknown) continue;
      if (setting.strategy == corpus::ServiceStrategy::kSingle) {
        single_min_f1 = std::min(single_min_f1, s.f1);
      }
      if (setting.strategy == corpus::ServiceStrategy::kDomain) {
        domain_min_f1 = std::min(domain_min_f1, s.f1);
        if (c == sim::GtClass::kStretchoid) {
          stretchoid_recall_domain = s.recall;
        }
      }
    }
    std::printf("\n");
  }

  std::printf("shape checks:\n");
  compare("single service worst-class F-score", "0.00-0.03",
          fmt("%.2f", single_min_f1));
  compare("domain worst-class F-score (Stretchoid)", "0.51",
          fmt("%.2f", domain_min_f1));
  compare("Stretchoid recall with domain services", "0.35",
          fmt("%.2f", stretchoid_recall_domain));
  return 0;
}
