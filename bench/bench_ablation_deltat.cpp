// Ablation: the time-window length ΔT used to cut service sequences.
// The paper (footnote 5) reports ΔT has marginal impact on performance —
// it is mostly instrumental to create a "sentence" notion from continuous
// traffic. This bench verifies that claim on the simulated trace.
#include "common.hpp"

#include "darkvec/net/time.hpp"

int main() {
  using namespace darkvec;
  using namespace darkvec::bench;

  banner("Ablation", "corpus window length DeltaT (paper footnote 5)");
  std::printf("paper: DeltaT has marginal impact on accuracy; 1 hour is "
              "the default.\n\n");

  const sim::SimResult sim = simulate(/*default_days=*/30);
  const auto eval_ips = last_day_active_senders(sim.trace);

  std::printf("  %-10s %10s %12s %10s\n", "DeltaT", "sentences",
              "avg length", "accuracy");
  double min_acc = 1;
  double max_acc = 0;
  for (const std::int64_t delta_t :
       {10 * net::kSecondsPerMinute, 30 * net::kSecondsPerMinute,
        net::kSecondsPerHour, 3 * net::kSecondsPerHour,
        12 * net::kSecondsPerHour}) {
    DarkVecConfig config = default_config(/*default_epochs=*/5);
    config.corpus.delta_t = delta_t;
    DarkVec dv(config);
    dv.fit(sim.trace);
    const auto eval = evaluate_knn(dv, sim.labels, eval_ips, 7);
    const double avg_len =
        dv.corpus().sentences.empty()
            ? 0.0
            : static_cast<double>(dv.corpus().tokens()) /
                  static_cast<double>(dv.corpus().sentences.size());
    std::printf("  %7lldmin %10zu %12.1f %10.3f\n",
                static_cast<long long>(delta_t / 60),
                dv.corpus().sentences.size(), avg_len, eval.accuracy);
    min_acc = std::min(min_acc, eval.accuracy);
    max_acc = std::max(max_acc, eval.accuracy);
  }
  std::printf("\n");
  compare("accuracy spread across DeltaT values", "marginal (<0.05)",
          fmt("%.3f", max_acc - min_acc));
  return 0;
}
