// Micro-benchmarks of the cosine k-NN index: the inner loop of both the
// semi-supervised classifier (Section 6) and the k'-NN graph construction
// (Section 7). The AllPairs pair contrasts the serial one-query-at-a-time
// scan against the blocked multi-threaded batch engine (honours
// DARKVEC_THREADS; the two produce bit-identical neighbour lists).
#include <benchmark/benchmark.h>

#include "darkvec/core/parallel.hpp"
#include "darkvec/core/simd/simd.hpp"
#include "darkvec/ml/knn.hpp"
#include "darkvec/sim/rng.hpp"
#include "micro_common.hpp"

namespace {

darkvec::w2v::Embedding random_embedding(std::size_t n, int dim,
                                         std::uint64_t seed) {
  darkvec::sim::Rng rng(seed);
  darkvec::w2v::Embedding e(n, dim);
  for (std::size_t i = 0; i < n; ++i) {
    for (int d = 0; d < dim; ++d) {
      e.vec(i)[static_cast<std::size_t>(d)] =
          static_cast<float>(rng.uniform(-1.0, 1.0));
    }
  }
  return e;
}

void BM_KnnQuery(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto k = static_cast<int>(state.range(1));
  const darkvec::ml::CosineKnn index{random_embedding(n, 50, 7)};
  std::size_t q = 0;
  for (auto _ : state) {
    const auto neighbors = index.query(q++ % n, k);
    benchmark::DoNotOptimize(neighbors.data());
  }
  state.counters["points"] = static_cast<double>(n);
}

BENCHMARK(BM_KnnQuery)
    ->ArgsProduct({{1000, 5000, 20000}, {3, 7}})
    ->Unit(benchmark::kMicrosecond);

void BM_KnnIndexBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto e = random_embedding(n, 50, 7);
  for (auto _ : state) {
    const darkvec::ml::CosineKnn index{e};
    benchmark::DoNotOptimize(index.size());
  }
}

BENCHMARK(BM_KnnIndexBuild)->Arg(5000)->Arg(20000)->Unit(
    benchmark::kMillisecond);

// All-pairs k-NN, the k'-NN graph workload: n serial queries.
void BM_KnnAllPairsSerial(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto k = static_cast<int>(state.range(1));
  const darkvec::ml::CosineKnn index{random_embedding(n, 50, 7)};
  for (auto _ : state) {
    std::size_t total = 0;
    for (std::size_t i = 0; i < n; ++i) total += index.query(i, k).size();
    benchmark::DoNotOptimize(total);
  }
  state.counters["points"] = static_cast<double>(n);
}

BENCHMARK(BM_KnnAllPairsSerial)
    ->ArgsProduct({{1000, 5000, 20000}, {4}})
    ->Unit(benchmark::kMillisecond);

// Same workload through the blocked batch engine.
void BM_KnnAllPairsBatch(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto k = static_cast<int>(state.range(1));
  const darkvec::ml::CosineKnn index{random_embedding(n, 50, 7)};
  for (auto _ : state) {
    const auto all = index.all_neighbors(k);
    benchmark::DoNotOptimize(all.data());
  }
  state.counters["points"] = static_cast<double>(n);
  state.counters["threads"] =
      static_cast<double>(darkvec::core::ThreadPool::global().size());
}

BENCHMARK(BM_KnnAllPairsBatch)
    ->ArgsProduct({{1000, 5000, 20000}, {4}})
    ->Unit(benchmark::kMillisecond);

// Scalar-forced twin of BM_KnnAllPairsBatch: the before/after pair the
// BENCH_micro_knn.json speedup section is derived from.
void BM_KnnAllPairsBatchScalar(benchmark::State& state) {
  darkvec::simd::ScopedLevel scoped(darkvec::simd::Level::kScalar);
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto k = static_cast<int>(state.range(1));
  const darkvec::ml::CosineKnn index{random_embedding(n, 50, 7)};
  for (auto _ : state) {
    const auto all = index.all_neighbors(k);
    benchmark::DoNotOptimize(all.data());
  }
  state.counters["points"] = static_cast<double>(n);
}

BENCHMARK(BM_KnnAllPairsBatchScalar)
    ->ArgsProduct({{1000, 5000, 20000}, {4}})
    ->Unit(benchmark::kMillisecond);

// Same workload over int8 codes (approximate; see ml/batch_topk.hpp).
void BM_KnnAllPairsQuantized(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto k = static_cast<int>(state.range(1));
  const darkvec::ml::CosineKnn index{random_embedding(n, 50, 7)};
  (void)index.quantized();  // build the codes outside the timed region
  for (auto _ : state) {
    const auto all = index.all_neighbors_quantized(k);
    benchmark::DoNotOptimize(all.data());
  }
  state.counters["points"] = static_cast<double>(n);
}

BENCHMARK(BM_KnnAllPairsQuantized)
    ->ArgsProduct({{1000, 5000, 20000}, {4}})
    ->Unit(benchmark::kMillisecond);

}  // namespace

DARKVEC_MICRO_MAIN("knn")
