// Shared plumbing for the bench binaries that regenerate the paper's
// tables and figures. Each binary prints the paper's reference values next
// to the values measured on the synthetic trace; EXPERIMENTS.md records
// both.
//
// Environment knobs honoured by every bench:
//   DARKVEC_DAYS      trace length in days        (default: per-bench)
//   DARKVEC_SCALE     population scale factor     (default: per-bench)
//   DARKVEC_EPOCHS    Word2Vec epochs             (default: per-bench)
//   DARKVEC_SEED      master seed                 (default: 2021)
//   DARKVEC_THREADS   parallel-kernel threads     (default: all cores)
//   DARKVEC_BENCH_DIR directory for BENCH_<name>.json artifacts
//                     (default: current directory)
//
// Besides the human-readable stdout, every bench that calls banner()
// drops a machine-readable BENCH_<name>.json on exit (wall time, the
// full metrics-registry snapshot, git revision); the schema is
// documented in EXPERIMENTS.md.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "darkvec/core/darkvec.hpp"
#include "darkvec/core/parallel.hpp"
#include "darkvec/core/semi_supervised.hpp"
#include "darkvec/obs/obs.hpp"
#include "darkvec/sim/scenario.hpp"
#include "darkvec/sim/simulator.hpp"

namespace darkvec::bench {

/// Thread count of the parallel kernels (k-NN batch engine, LOO
/// evaluation, silhouette). Touching the global pool here forces its
/// creation, which is where DARKVEC_THREADS is read, so every bench
/// honours the knob and can report the value next to its timings.
inline int threads() { return core::ThreadPool::global().size(); }

inline double env_or(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v ? std::atof(v) : fallback;
}

inline int env_or_int(const char* name, int fallback) {
  return static_cast<int>(env_or(name, fallback));
}

/// Simulates the paper scenario with env overrides applied on top of the
/// given defaults.
inline sim::SimResult simulate(int default_days, double default_scale = 1.0) {
  sim::SimConfig config;
  config.days = env_or_int("DARKVEC_DAYS", default_days);
  config.scale = env_or("DARKVEC_SCALE", default_scale);
  config.seed = static_cast<std::uint64_t>(env_or("DARKVEC_SEED", 2021));
  return sim::DarknetSimulator(config).run(sim::paper_scenario());
}

/// Default DarkVec configuration used by the benches (paper operating
/// point, epochs overridable).
inline DarkVecConfig default_config(int default_epochs = 5) {
  DarkVecConfig config;
  config.w2v.epochs = env_or_int("DARKVEC_EPOCHS", default_epochs);
  return config;
}

namespace detail {

/// State behind the per-bench JSON artifact. First banner() call names
/// the artifact and starts the wall clock; the atexit hook snapshots the
/// metrics registry and writes BENCH_<name>.json.
struct Artifact {
  std::string name;
  std::string title;
  std::chrono::steady_clock::time_point start;
};

inline Artifact& artifact() {
  static auto* instance = new Artifact();  // leaked: used from atexit
  return *instance;
}

inline void write_artifact() {
  const Artifact& a = artifact();
  if (a.name.empty()) return;
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    a.start)
          .count();
  const char* dir = std::getenv("DARKVEC_BENCH_DIR");
  std::string path = dir != nullptr && *dir != '\0' ? dir : ".";
  path += "/BENCH_" + a.name + ".json";
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
    return;
  }
  char head[160];
#ifndef DARKVEC_GIT_REV
#define DARKVEC_GIT_REV "unknown"
#endif
  std::snprintf(head, sizeof(head),
                "{\"schema\":1,\"bench\":\"%s\",\"git_rev\":\"%s\","
                "\"wall_seconds\":%.3f,\"threads\":%d,",
                a.name.c_str(), DARKVEC_GIT_REV, wall,
                core::ThreadPool::global().size());
  out << head << "\"title\":\"" << obs::detail::json_escape(a.title)
      << "\",\"metrics\":" << obs::registry().snapshot().to_json() << "}\n";
}

}  // namespace detail

/// Section header in the bench output. The first call also names the
/// BENCH_<name>.json artifact written at process exit (experiment name
/// sanitized to [A-Za-z0-9_]).
inline void banner(const char* experiment, const char* title) {
  std::printf("=============================================================\n");
  std::printf("%s — %s\n", experiment, title);
  std::printf("=============================================================\n");
  detail::Artifact& a = detail::artifact();
  if (a.name.empty()) {
    for (const char* p = experiment; *p != '\0'; ++p) {
      const char c = *p;
      const bool word = (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') ||
                        (c >= '0' && c <= '9');
      a.name += word ? c : '_';
    }
    a.title = title;
    a.start = std::chrono::steady_clock::now();
    std::atexit(detail::write_artifact);
  }
}

/// One "paper vs measured" comparison line.
inline void compare(const char* what, const std::string& paper,
                    const std::string& measured) {
  std::printf("  %-44s paper: %-14s measured: %s\n", what, paper.c_str(),
              measured.c_str());
}

inline std::string fmt(const char* format, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), format, value);
  return buf;
}

}  // namespace darkvec::bench
