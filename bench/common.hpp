// Shared plumbing for the bench binaries that regenerate the paper's
// tables and figures. Each binary prints the paper's reference values next
// to the values measured on the synthetic trace; EXPERIMENTS.md records
// both.
//
// Environment knobs honoured by every bench:
//   DARKVEC_DAYS     trace length in days        (default: per-bench)
//   DARKVEC_SCALE    population scale factor     (default: per-bench)
//   DARKVEC_EPOCHS   Word2Vec epochs             (default: per-bench)
//   DARKVEC_SEED     master seed                 (default: 2021)
//   DARKVEC_THREADS  parallel-kernel threads     (default: all cores)
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "darkvec/core/darkvec.hpp"
#include "darkvec/core/parallel.hpp"
#include "darkvec/core/semi_supervised.hpp"
#include "darkvec/sim/scenario.hpp"
#include "darkvec/sim/simulator.hpp"

namespace darkvec::bench {

/// Thread count of the parallel kernels (k-NN batch engine, LOO
/// evaluation, silhouette). Touching the global pool here forces its
/// creation, which is where DARKVEC_THREADS is read, so every bench
/// honours the knob and can report the value next to its timings.
inline int threads() { return core::ThreadPool::global().size(); }

inline double env_or(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v ? std::atof(v) : fallback;
}

inline int env_or_int(const char* name, int fallback) {
  return static_cast<int>(env_or(name, fallback));
}

/// Simulates the paper scenario with env overrides applied on top of the
/// given defaults.
inline sim::SimResult simulate(int default_days, double default_scale = 1.0) {
  sim::SimConfig config;
  config.days = env_or_int("DARKVEC_DAYS", default_days);
  config.scale = env_or("DARKVEC_SCALE", default_scale);
  config.seed = static_cast<std::uint64_t>(env_or("DARKVEC_SEED", 2021));
  return sim::DarknetSimulator(config).run(sim::paper_scenario());
}

/// Default DarkVec configuration used by the benches (paper operating
/// point, epochs overridable).
inline DarkVecConfig default_config(int default_epochs = 5) {
  DarkVecConfig config;
  config.w2v.epochs = env_or_int("DARKVEC_EPOCHS", default_epochs);
  return config;
}

/// Section header in the bench output.
inline void banner(const char* experiment, const char* title) {
  std::printf("=============================================================\n");
  std::printf("%s — %s\n", experiment, title);
  std::printf("=============================================================\n");
}

/// One "paper vs measured" comparison line.
inline void compare(const char* what, const std::string& paper,
                    const std::string& measured) {
  std::printf("  %-44s paper: %-14s measured: %s\n", what, paper.c_str(),
              measured.c_str());
}

inline std::string fmt(const char* format, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), format, value);
  return buf;
}

}  // namespace darkvec::bench
