// Micro-benchmarks of trace serialization: CSV vs the compact binary
// format. At the paper's 63.5M-packet scale, parsing dominates any
// analysis; the binary format exists for exactly that reason.
#include <benchmark/benchmark.h>

#include <sstream>

#include "darkvec/net/time.hpp"
#include "darkvec/net/trace_binary.hpp"
#include "darkvec/net/trace_io.hpp"
#include "darkvec/sim/rng.hpp"

namespace {

using namespace darkvec;

net::Trace random_trace(std::size_t n, std::uint64_t seed) {
  sim::Rng rng(seed);
  net::Trace t;
  for (std::size_t i = 0; i < n; ++i) {
    net::Packet p;
    p.ts = net::kTraceEpoch + static_cast<std::int64_t>(rng.uniform_int(86400));
    p.src = net::IPv4{static_cast<std::uint32_t>(rng.next_u64())};
    p.dst_port = static_cast<std::uint16_t>(rng.uniform_int(65536));
    p.proto = static_cast<net::Protocol>(rng.uniform_int(2));
    t.push_back(p);
  }
  t.sort();
  return t;
}

void BM_CsvWrite(benchmark::State& state) {
  const net::Trace t = random_trace(static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    std::ostringstream out;
    net::write_csv(out, t);
    benchmark::DoNotOptimize(out.str().size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CsvWrite)->Arg(10000)->Arg(100000)->Unit(benchmark::kMillisecond);

void BM_CsvRead(benchmark::State& state) {
  const net::Trace t = random_trace(static_cast<std::size_t>(state.range(0)), 2);
  std::ostringstream out;
  net::write_csv(out, t);
  const std::string payload = out.str();
  for (auto _ : state) {
    std::istringstream in(payload);
    const net::Trace loaded = net::read_csv(in);
    benchmark::DoNotOptimize(loaded.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CsvRead)->Arg(10000)->Arg(100000)->Unit(benchmark::kMillisecond);

void BM_BinaryWrite(benchmark::State& state) {
  const net::Trace t = random_trace(static_cast<std::size_t>(state.range(0)), 3);
  for (auto _ : state) {
    std::ostringstream out;
    net::write_binary(out, t);
    benchmark::DoNotOptimize(out.str().size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BinaryWrite)->Arg(10000)->Arg(100000)->Unit(benchmark::kMillisecond);

void BM_BinaryRead(benchmark::State& state) {
  const net::Trace t = random_trace(static_cast<std::size_t>(state.range(0)), 4);
  std::ostringstream out;
  net::write_binary(out, t);
  const std::string payload = out.str();
  for (auto _ : state) {
    std::istringstream in(payload);
    const net::Trace loaded = net::read_binary(in);
    benchmark::DoNotOptimize(loaded.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BinaryRead)->Arg(10000)->Arg(100000)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
