// Figure 10: impact of k' (neighbours per node in the k'-NN graph) on the
// number of Louvain clusters and on modularity; the paper picks k'=3 at
// the elbow.
#include "common.hpp"

#include "darkvec/graph/knn_graph.hpp"

int main() {
  using namespace darkvec;
  using namespace darkvec::bench;

  banner("Figure 10", "number of clusters and modularity vs k'");
  std::printf("paper: thousands of tiny clusters at k'=1 collapsing to 46 "
              "at the k'=3 elbow;\nmodularity stays high (~0.9+) and decays "
              "slightly for larger k'.\n\n");

  const sim::SimResult sim = simulate(/*default_days=*/30);
  DarkVec dv(default_config(/*default_epochs=*/5));
  dv.fit(sim.trace);
  std::printf("embedded senders: %zu\n\n", dv.corpus().vocabulary_size());

  std::printf("  %-4s %10s %12s\n", "k'", "clusters", "modularity");
  int clusters_k1 = 0;
  int clusters_k3 = 0;
  double mod_k3 = 0;
  double mod_k14 = 0;
  for (int k = 1; k <= 14; ++k) {
    const Clustering c = dv.cluster(k);
    std::printf("  %-4d %10d %12.3f\n", k, c.count, c.modularity);
    if (k == 1) clusters_k1 = c.count;
    if (k == 3) {
      clusters_k3 = c.count;
      mod_k3 = c.modularity;
    }
    if (k == 14) mod_k14 = c.modularity;
  }

  std::printf("\nshape checks:\n");
  compare("k'=1 clusters >> k'=3 clusters", "1000s vs 46",
          fmt("%.0fx more", static_cast<double>(clusters_k1) /
                                std::max(clusters_k3, 1)));
  compare("clusters at the k'=3 elbow", "46",
          fmt("%.0f", static_cast<double>(clusters_k3)));
  compare("modularity at k'=3", "~0.95", fmt("%.3f", mod_k3));
  compare("modularity decays slightly with k'", "small decrease",
          fmt("%+.3f (k'=14 vs k'=3)", mod_k14 - mod_k3));
  return 0;
}
