// Figure 1: darknet traffic overview.
//   (a) ECDF of packets per (port, proto) with the top-14 ports zoomed;
//   (b) sender activity over time (first-appearance raster).
#include "common.hpp"

#include "darkvec/core/raster.hpp"
#include "darkvec/ml/stats.hpp"
#include "darkvec/net/time.hpp"

int main() {
  using namespace darkvec;
  using namespace darkvec::bench;

  banner("Figure 1a", "ECDF of packets per port; top-14 port zoom");
  const sim::SimResult sim = simulate(/*default_days=*/30);

  const auto ranking = sim.trace.port_ranking();
  std::vector<double> per_port;
  per_port.reserve(ranking.size());
  for (const auto& e : ranking) {
    per_port.push_back(static_cast<double>(e.packets));
  }
  const ml::Ecdf ecdf(per_port);
  std::printf("distinct (port,proto) pairs: %zu\n", ranking.size());
  std::printf("ECDF of per-port packet counts (port rank -> cumulative "
              "traffic share):\n");
  // Cumulative share captured by the top-k ports, the figure's key shape:
  // most traffic concentrates on a few ports.
  const auto total = static_cast<double>(sim.trace.size());
  double acc = 0;
  std::size_t k = 0;
  for (const auto& e : ranking) {
    acc += static_cast<double>(e.packets);
    ++k;
    if (k == 1 || k == 3 || k == 14 || k == 100 || k == 1000 ||
        k == ranking.size()) {
      std::printf("  top-%-6zu ports carry %6.2f%% of packets\n", k,
                  100.0 * acc / total);
    }
  }

  std::printf("\ntop-14 ports (paper inset: 5555, 445, 23, 52869, 60001, "
              "1433, 322, 80, 123, 2323, 6379, 33890, 8088, 443, 81 ...):\n");
  for (std::size_t i = 0; i < std::min<std::size_t>(14, ranking.size());
       ++i) {
    std::printf("  %2zu. %-10s %8zu packets %7zu sources\n", i + 1,
                ranking[i].key.to_string().c_str(), ranking[i].packets,
                ranking[i].sources);
  }

  banner("Figure 1b", "sender activity raster (senders by first appearance)");
  const auto order = senders_by_first_seen(sim.trace);
  std::printf("total senders: %zu; rendering %d evenly sampled rows, one "
              "column per 12h\n\n",
              order.size(), 40);
  const auto raster =
      build_raster(sim.trace, order, net::kSecondsPerDay / 2);
  std::fputs(render_raster(raster, 40).c_str(), stdout);
  std::printf("\nexpected shape (paper): dense persistent rows at the top "
              "(early senders),\nprogressively later first columns further "
              "down, sparse dots everywhere.\n");
  return 0;
}
