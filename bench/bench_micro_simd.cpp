// Micro-benchmarks of the runtime-dispatched SIMD kernel layer
// (core/simd), plus the int8 quantization accuracy gate.
//
// Every kernel is measured at the active dispatch level AND forced to
// scalar ("...Scalar" twin), so the BENCH_micro_simd.json artifact
// carries the measured speedups directly (see micro_common.hpp for the
// naming convention). Non-active vector levels the CPU also supports
// are measured as informational "...Alt_<level>" rows.
//
// The accuracy gate runs after the benchmarks: on a synthetic clustered
// embedding, the int8 quantized k-NN path must reach recall@10 >= 0.99
// against fp32 and shift leave-one-out accuracy by <= 0.2 points;
// otherwise the binary exits nonzero and CI fails.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

#include "darkvec/core/simd/simd.hpp"
#include "darkvec/ml/evaluation.hpp"
#include "darkvec/ml/knn.hpp"
#include "darkvec/sim/rng.hpp"
#include "darkvec/w2v/quantized.hpp"
#include "micro_common.hpp"

namespace {

using darkvec::simd::Kernels;
using darkvec::simd::kernels_for;
using darkvec::simd::Level;

constexpr std::size_t kRows = 64;

std::vector<float> random_f32(std::size_t n, std::uint64_t seed) {
  darkvec::sim::Rng rng(seed);
  std::vector<float> v(n);
  for (float& x : v) x = static_cast<float>(rng.uniform(-1.0, 1.0));
  return v;
}

std::vector<double> random_f64(std::size_t n, std::uint64_t seed) {
  darkvec::sim::Rng rng(seed);
  std::vector<double> v(n);
  for (double& x : v) x = rng.uniform(-1.0, 1.0);
  return v;
}

void bm_dot_f32(benchmark::State& state, Level level) {
  const Kernels& kern = kernels_for(level);
  const auto dim = static_cast<std::size_t>(state.range(0));
  const auto pool = random_f32(kRows * dim, 11);
  for (auto _ : state) {
    double acc = 0;
    for (std::size_t r = 0; r < kRows; ++r) {
      acc += kern.dot_f32(pool.data() + r * dim,
                          pool.data() + ((r + 1) % kRows) * dim, dim);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kRows));
}

void bm_dot_f64(benchmark::State& state, Level level) {
  const Kernels& kern = kernels_for(level);
  const auto dim = static_cast<std::size_t>(state.range(0));
  const auto pool = random_f64(kRows * dim, 13);
  for (auto _ : state) {
    double acc = 0;
    for (std::size_t r = 0; r < kRows; ++r) {
      acc += kern.dot_f64(pool.data() + r * dim,
                          pool.data() + ((r + 1) % kRows) * dim, dim);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kRows));
}

void bm_axpy_f32(benchmark::State& state, Level level) {
  const Kernels& kern = kernels_for(level);
  const auto dim = static_cast<std::size_t>(state.range(0));
  const auto x = random_f32(kRows * dim, 17);
  auto y = random_f32(kRows * dim, 19);
  for (auto _ : state) {
    for (std::size_t r = 0; r < kRows; ++r) {
      // Alternating sign keeps y bounded over millions of iterations.
      kern.axpy_f32(dim, (r & 1) != 0 ? 0.5f : -0.5f, x.data() + r * dim,
                    y.data() + r * dim);
    }
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kRows));
}

void bm_scale_add_f32(benchmark::State& state, Level level) {
  const Kernels& kern = kernels_for(level);
  const auto dim = static_cast<std::size_t>(state.range(0));
  const auto x = random_f32(kRows * dim, 23);
  auto y = random_f32(kRows * dim, 29);
  for (auto _ : state) {
    for (std::size_t r = 0; r < kRows; ++r) {
      kern.scale_add_f32(dim, 0.3f, x.data() + r * dim, 0.7f,
                         y.data() + r * dim);
    }
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kRows));
}

void bm_dot_strip_f32(benchmark::State& state, Level level) {
  const Kernels& kern = kernels_for(level);
  const auto dim = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kWidth = 128;
  constexpr std::size_t kQueries = 8;
  const auto tile = random_f32(kWidth * dim, 31);
  const auto queries = random_f32(kQueries * dim, 37);
  std::vector<float> sims(kWidth);
  for (auto _ : state) {
    for (std::size_t q = 0; q < kQueries; ++q) {
      kern.dot_strip_f32(queries.data() + q * dim, tile.data(), kWidth, dim,
                         sims.data());
    }
    benchmark::DoNotOptimize(sims.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kQueries * kWidth));
}

void bm_dot_i8(benchmark::State& state, Level level) {
  const Kernels& kern = kernels_for(level);
  const auto dim = static_cast<std::size_t>(state.range(0));
  const std::size_t stride = (dim + 31) & ~std::size_t{31};
  darkvec::sim::Rng rng(41);
  std::vector<std::int8_t> pool(kRows * stride, 0);
  for (std::size_t r = 0; r < kRows; ++r) {
    for (std::size_t d = 0; d < dim; ++d) {
      pool[r * stride + d] =
          static_cast<std::int8_t>(static_cast<int>(rng.uniform_int(255)) - 127);
    }
  }
  for (auto _ : state) {
    std::int64_t acc = 0;
    for (std::size_t r = 0; r < kRows; ++r) {
      acc += kern.dot_i8(pool.data() + r * stride,
                         pool.data() + ((r + 1) % kRows) * stride, stride);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kRows));
}

void bm_adagrad_pair_f64(benchmark::State& state, Level level) {
  const Kernels& kern = kernels_for(level);
  const auto dim = static_cast<std::size_t>(state.range(0));
  auto wi = random_f64(kRows * dim, 43);
  auto wj = random_f64(kRows * dim, 47);
  std::vector<double> gi(kRows * dim, 1.0);
  std::vector<double> gj(kRows * dim, 1.0);
  for (auto _ : state) {
    for (std::size_t r = 0; r < kRows; ++r) {
      kern.adagrad_pair_f64(dim, 0.01, 0.05, wi.data() + r * dim,
                            wj.data() + r * dim, gi.data() + r * dim,
                            gj.data() + r * dim);
    }
    benchmark::DoNotOptimize(wi.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kRows));
}

darkvec::w2v::Embedding clustered_embedding(std::size_t clusters,
                                            std::size_t per_cluster, int dim,
                                            std::uint64_t seed) {
  darkvec::sim::Rng rng(seed);
  darkvec::w2v::Embedding e(clusters * per_cluster, dim);
  std::vector<float> centers(clusters * static_cast<std::size_t>(dim));
  for (float& c : centers) c = static_cast<float>(rng.uniform(-1.0, 1.0));
  for (std::size_t i = 0; i < e.size(); ++i) {
    const std::size_t c = i / per_cluster;
    auto row = e.vec(i);
    for (std::size_t d = 0; d < row.size(); ++d) {
      row[d] = centers[c * static_cast<std::size_t>(dim) + d] +
               static_cast<float>(rng.uniform(-0.15, 0.15));
    }
  }
  return e;
}

// Full blocked scan, fp32 vs int8, over the same corpus (the k'-NN
// graph workload at quantized precision).
void bm_scan_fp32(benchmark::State& state, Level level) {
  darkvec::simd::ScopedLevel scoped(level);
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto normalized =
      clustered_embedding(10, n / 10, 52, 53).normalized();
  std::vector<std::uint32_t> queries(n);
  std::iota(queries.begin(), queries.end(), 0u);
  for (auto _ : state) {
    const auto out = darkvec::ml::batch_topk(normalized, queries, 10, {});
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}

void bm_scan_int8(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto quantized = darkvec::w2v::QuantizedEmbedding::quantize(
      clustered_embedding(10, n / 10, 52, 53).normalized());
  std::vector<std::uint32_t> queries(n);
  std::iota(queries.begin(), queries.end(), 0u);
  for (auto _ : state) {
    const auto out = darkvec::ml::batch_topk(quantized, queries, 10, {});
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}

/// Registers one kernel benchmark for every supported dispatch level:
/// the active level under the bare name, scalar under "...Scalar", any
/// other supported level under "...Alt_<level>".
template <typename Fn>
void register_levels(const char* name, Fn fn) {
  const Level active = darkvec::simd::active_level();
  for (const Level level : darkvec::simd::supported_levels()) {
    std::string bench_name = name;
    if (level != active) {
      bench_name += level == Level::kScalar
                        ? "Scalar"
                        : std::string("Alt_") +
                              darkvec::simd::level_name(level);
    }
    benchmark::RegisterBenchmark(bench_name.c_str(),
                                 [fn, level](benchmark::State& state) {
                                   fn(state, level);
                                 })
        ->Arg(52)
        ->Arg(200)
        ->Unit(benchmark::kMicrosecond);
  }
}

/// int8 accuracy gate (see file comment). Appends the measured values to
/// the artifact and returns whether the thresholds hold.
bool accuracy_gate(darkvec::bench::ExtraValues& values) {
  // 90 clusters of 11 points with k = 10: each point's true top-10 is
  // exactly its co-cluster members, separated from every other cluster
  // by a margin far above the int8 reconstruction error. Recall then
  // measures whether quantization preserves real neighbour structure
  // (crossing the inter-cluster margin) rather than the ordering of
  // near-tied same-cluster rows, which fp32 itself does not stabilise.
  constexpr std::size_t kClusters = 90;
  constexpr std::size_t kPer = 11;
  constexpr int kK = 10;
  const auto e = clustered_embedding(kClusters, kPer, 52, 59);
  darkvec::ml::CosineKnn knn(e);
  const auto fp32 = knn.all_neighbors(kK);
  const auto int8 = knn.all_neighbors_quantized(kK);

  double recall_sum = 0;
  for (std::size_t i = 0; i < fp32.size(); ++i) {
    std::size_t hits = 0;
    for (const auto& a : int8[i]) {
      for (const auto& b : fp32[i]) {
        if (a.index == b.index) {
          ++hits;
          break;
        }
      }
    }
    recall_sum += static_cast<double>(hits) /
                  static_cast<double>(fp32[i].size());
  }
  const double recall = recall_sum / static_cast<double>(fp32.size());

  std::vector<int> labels(e.size());
  for (std::size_t i = 0; i < labels.size(); ++i) {
    labels[i] = static_cast<int>(i / kPer);
  }
  std::size_t correct_fp32 = 0;
  std::size_t correct_int8 = 0;
  for (std::size_t i = 0; i < e.size(); ++i) {
    if (darkvec::ml::majority_vote(fp32[i], labels) == labels[i]) {
      ++correct_fp32;
    }
    if (darkvec::ml::majority_vote(int8[i], labels) == labels[i]) {
      ++correct_int8;
    }
  }
  const double acc_fp32 =
      static_cast<double>(correct_fp32) / static_cast<double>(e.size());
  const double acc_int8 =
      static_cast<double>(correct_int8) / static_cast<double>(e.size());
  const double delta_pts = std::abs(acc_fp32 - acc_int8) * 100.0;

  values.emplace_back("recall_at_10", recall);
  values.emplace_back("loo_acc_fp32", acc_fp32);
  values.emplace_back("loo_acc_int8", acc_int8);
  values.emplace_back("loo_delta_pts", delta_pts);
  std::printf(
      "accuracy gate: recall@10 %.4f (>= 0.99), LOO fp32 %.4f int8 %.4f "
      "delta %.3f pts (<= 0.2)\n",
      recall, acc_fp32, acc_int8, delta_pts);
  return recall >= 0.99 && delta_pts <= 0.2;
}

}  // namespace

int main(int argc, char** argv) {
  register_levels("KDotF32", bm_dot_f32);
  register_levels("KDotF64", bm_dot_f64);
  register_levels("KAxpyF32", bm_axpy_f32);
  register_levels("KScaleAddF32", bm_scale_add_f32);
  register_levels("KDotStripF32", bm_dot_strip_f32);
  register_levels("KDotI8", bm_dot_i8);
  register_levels("KAdagradPairF64", bm_adagrad_pair_f64);
  const darkvec::simd::Level active = darkvec::simd::active_level();
  benchmark::RegisterBenchmark("ScanFp32",
                               [active](benchmark::State& state) {
                                 bm_scan_fp32(state, active);
                               })
      ->Arg(1000)
      ->Unit(benchmark::kMillisecond);
  if (active != darkvec::simd::Level::kScalar) {
    benchmark::RegisterBenchmark("ScanFp32Scalar",
                                 [](benchmark::State& state) {
                                   bm_scan_fp32(
                                       state, darkvec::simd::Level::kScalar);
                                 })
        ->Arg(1000)
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::RegisterBenchmark("ScanInt8", bm_scan_int8)
      ->Arg(1000)
      ->Unit(benchmark::kMillisecond);
  return darkvec::bench::run_micro("simd", argc, argv, accuracy_gate);
}
