// Figures 12-15: activity rasters of notable clusters —
//   Fig. 12 Censys sub-clusters (teams active in different periods),
//   Fig. 13 Shadowserver sub-clusters (less evident temporal pattern),
//   Fig. 14 unknown1 NetBIOS /24 scan (very regular),
//   Fig. 15 unknown4 ADB worm (growing activity).
#include "common.hpp"

#include <algorithm>
#include <map>

#include "darkvec/core/inspector.hpp"
#include "darkvec/core/raster.hpp"
#include "darkvec/net/time.hpp"

namespace {

using darkvec::ClusterInfo;

/// Render members of the given clusters, rows grouped by cluster id.
void render_groups(const darkvec::net::Trace& trace,
                   const std::vector<const ClusterInfo*>& group,
                   std::int64_t bucket) {
  using namespace darkvec;
  std::vector<net::IPv4> rows;
  for (const ClusterInfo* c : group) {
    rows.insert(rows.end(), c->members.begin(), c->members.end());
  }
  const auto raster = build_raster(trace, rows, bucket);
  std::fputs(render_raster(raster, 40).c_str(), stdout);
}

}  // namespace

int main() {
  using namespace darkvec;
  using namespace darkvec::bench;

  const sim::SimResult sim = simulate(/*default_days=*/30);
  DarkVec dv(default_config(/*default_epochs=*/5));
  dv.fit(sim.trace);
  const Clustering clustering = dv.cluster(3);
  const auto clusters = inspect_clusters(sim.trace, dv.corpus(),
                                         clustering.assignment, sim.groups);

  std::map<std::string, std::vector<const ClusterInfo*>> by_group;
  for (const ClusterInfo& c : clusters) {
    if (c.size() >= 5 && c.dominant_fraction >= 0.6) {
      by_group[c.dominant_group].push_back(&c);
    }
  }

  banner("Figure 12", "Censys sub-cluster activity (rows grouped by "
                      "cluster; one column per 12h)");
  render_groups(sim.trace, by_group["censys"], net::kSecondsPerDay / 2);
  std::printf("expected: block-diagonal stripes — each sub-cluster active "
              "in its own multi-day slots.\n");
  // Quantify: per-cluster active-day midpoints should differ.
  std::vector<double> midpoints;
  for (const ClusterInfo* c : by_group["censys"]) {
    const auto raster =
        build_raster(sim.trace, c->members, net::kSecondsPerDay);
    double weighted = 0;
    double total = 0;
    for (const auto& row : raster.presence) {
      for (std::size_t b = 0; b < row.size(); ++b) {
        if (row[b]) {
          weighted += static_cast<double>(b);
          total += 1;
        }
      }
    }
    if (total > 0) midpoints.push_back(weighted / total);
  }
  if (midpoints.size() >= 2) {
    const auto [lo, hi] = std::ranges::minmax_element(midpoints);
    compare("spread of sub-cluster activity midpoints",
            "clearly separated periods",
            fmt("%.1f days between earliest and latest", *hi - *lo));
  } else {
    std::printf("  (fewer than two Censys sub-clusters recovered at this "
                "profile — run at the default profile for the "
                "block-diagonal Figure 12 raster)\n");
  }

  banner("Figure 13", "Shadowserver sub-cluster activity");
  std::vector<const ClusterInfo*> shadow;
  for (const char* g :
       {"shadowserver_g1", "shadowserver_g2", "shadowserver_g3"}) {
    for (const ClusterInfo* c : by_group[g]) shadow.push_back(c);
  }
  render_groups(sim.trace, shadow, net::kSecondsPerDay / 2);
  std::printf("expected: all three groups active throughout (less evident "
              "temporal pattern than Censys).\n");

  banner("Figure 14", "unknown1 NetBIOS /24 scan (one column per 6h)");
  render_groups(sim.trace, by_group["unknown1_netbios"],
                net::kSecondsPerHour * 6);
  std::printf("expected: very regular vertical stripes — one burst per "
              "day from every sender.\n");

  banner("Figure 15", "unknown4 ADB worm spreading (one column per 12h)");
  const auto& adb = by_group["unknown4_adb"];
  // Order rows by first appearance to expose the activation ramp.
  std::vector<net::IPv4> members;
  for (const ClusterInfo* c : adb) {
    members.insert(members.end(), c->members.begin(), c->members.end());
  }
  std::unordered_map<net::IPv4, std::int64_t> first_seen;
  for (const net::Packet& p : sim.trace) {
    first_seen.try_emplace(p.src, p.ts);
  }
  std::ranges::sort(members, [&](net::IPv4 a, net::IPv4 b) {
    return first_seen[a] < first_seen[b];
  });
  const auto raster =
      build_raster(sim.trace, members, net::kSecondsPerDay / 2);
  std::fputs(render_raster(raster, 40).c_str(), stdout);
  std::printf("expected: staircase — ever more senders activate towards "
              "the end of the month.\n");
  // Quantify the ramp: active senders in the last third vs the first third.
  std::size_t early = 0;
  std::size_t late = 0;
  const std::size_t third = raster.buckets() / 3;
  for (const auto& row : raster.presence) {
    for (std::size_t b = 0; b < third; ++b) {
      if (row[b]) {
        ++early;
        break;
      }
    }
    for (std::size_t b = raster.buckets() - third; b < raster.buckets();
         ++b) {
      if (row[b]) {
        ++late;
        break;
      }
    }
  }
  if (raster.presence.empty()) {
    std::printf("  (no ADB-dominated cluster at this profile)\n");
  } else {
    compare("ADB senders active late vs early", "growing (worm spreading)",
            fmt("%.1fx", static_cast<double>(late) /
                             static_cast<double>(std::max<std::size_t>(
                                 early, 1))));
  }
  return 0;
}
