// Micro-benchmarks of the model-health observability layer
// (obs/health.hpp): HealthMonitor::observe over synthetic windows at
// realistic sender counts, plus the CI gate holding health overhead
// under 2% of streaming model time on a short simulated replay.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "darkvec/core/streaming.hpp"
#include "darkvec/obs/health.hpp"
#include "darkvec/sim/rng.hpp"
#include "darkvec/sim/scenario.hpp"
#include "darkvec/sim/simulator.hpp"
#include "micro_common.hpp"

namespace {

using namespace darkvec;

/// One synthetic window: `clusters` well-separated blocks with jitter.
/// `id_offset` shifts the sender address range, so two windows built
/// with different offsets share all but offset/n of their vocabulary —
/// the realistic churn regime for observe().
struct SynthWindow {
  std::vector<net::IPv4> senders;
  w2v::Embedding embedding;
  std::vector<int> assignment;
};

SynthWindow synth_window(std::size_t n, int dim, int clusters,
                         std::uint64_t seed, std::size_t id_offset) {
  sim::Rng rng(seed);
  SynthWindow w;
  w.embedding = w2v::Embedding(n, dim);
  w.senders.reserve(n);
  w.assignment.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    w.senders.push_back(
        net::IPv4(static_cast<std::uint32_t>(0x0A000000u + id_offset + i)));
    const int c = static_cast<int>(i % static_cast<std::size_t>(clusters));
    w.assignment.push_back(c);
    const auto row = w.embedding.vec(i);
    for (int d = 0; d < dim; ++d) {
      const double base = d == c ? 4.0 : 0.0;
      row[static_cast<std::size_t>(d)] =
          static_cast<float>(base + rng.uniform(-0.5, 0.5));
    }
  }
  return w;
}

obs::HealthInput input_of(const SynthWindow& w, std::int64_t window_end) {
  obs::HealthInput input;
  input.window_start = window_end - 1;
  input.window_end = window_end;
  input.senders = w.senders;
  input.embedding = &w.embedding;
  input.assignment = w.assignment;
  input.modularity = 0.5;
  return input;
}

/// Full observe() cost per window pair: baseline window, then a ~90%
/// shared window (vocab churn + cluster matching + neighbor-overlap
/// probe + silhouette all exercised).
void BM_HealthObserve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const SynthWindow a = synth_window(n, 32, 8, 7, 0);
  const SynthWindow b = synth_window(n, 32, 8, 11, n / 10);
  for (auto _ : state) {
    obs::HealthMonitor monitor;
    benchmark::DoNotOptimize(monitor.observe(input_of(a, 1)).senders);
    benchmark::DoNotOptimize(monitor.observe(input_of(b, 2)).alerts.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2);
}

BENCHMARK(BM_HealthObserve)->Arg(1000)->Arg(4000)->Unit(
    benchmark::kMillisecond);

/// The degraded fast path (no model, no probes): should be ~free.
void BM_HealthObserveDegraded(benchmark::State& state) {
  obs::HealthMonitor monitor;
  obs::HealthInput input;
  input.degraded = true;
  input.degraded_reason = "no packets in window";
  for (auto _ : state) {
    benchmark::DoNotOptimize(monitor.observe(input).degraded);
  }
}

BENCHMARK(BM_HealthObserveDegraded)->Unit(benchmark::kMicrosecond);

/// CI gate: a short streaming replay over the simulator, with health on.
/// The streaming loop books model time (fit/cluster/align) and health
/// time (observe) into separate gauges; their ratio must stay under 2%.
bool overhead_gate(darkvec::bench::ExtraValues& extra) {
  obs::registry().reset_values();
  sim::SimConfig config;
  config.days = 10;
  config.scale = 0.05;
  config.seed = 2021;
  const sim::SimResult sim =
      sim::DarknetSimulator(config).run(sim::paper_scenario());

  StreamingConfig stream;
  stream.window_seconds = 5 * net::kSecondsPerDay;
  stream.step_seconds = 2 * net::kSecondsPerDay;
  stream.darkvec.w2v.epochs = 5;
  const StreamingResult result = run_streaming_monitored(sim.trace, stream);

  const double window_s =
      obs::gauge(obs::names::kStreamingWindowSeconds).value();
  const double observe_s =
      obs::gauge(obs::names::kHealthObserveSeconds).value();
  const double ratio = window_s > 0 ? observe_s / window_s : 1.0;
  extra.emplace_back("streaming_window_seconds", window_s);
  extra.emplace_back("health_observe_seconds", observe_s);
  extra.emplace_back("health_overhead_ratio", ratio);
  extra.emplace_back("windows", static_cast<double>(result.health.size()));
  const bool ok = window_s > 0 && ratio < 0.02;
  if (!ok) {
    std::fprintf(stderr,
                 "health overhead gate FAILED: observe %.4fs / window %.4fs "
                 "= %.4f (budget 0.02)\n",
                 observe_s, window_s, ratio);
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  return darkvec::bench::run_micro("health", argc, argv, overhead_gate);
}
