// Runtime-layer micro bench: what do cooperative checkpoints cost?
//
// The whole design of core/runtime rests on checkpoints being cheap
// enough to sprinkle through hot loops (SGNS pair training checks every
// 4096 pairs, batch_topk once per corpus tile). This bench measures the
// primitive costs (token probe, full RunContext::check, the ambient
// DV_CHECKPOINT in both the installed and the no-context state) and
// then gates the end-to-end claim: training skip-gram and scanning
// batch_topk under an armed-but-never-tripping context must cost less
// than 1% over the uninstrumented run.
//
// How the gate measures that: direct A/B timing cannot resolve it on a
// shared/virtualized host — even back-to-back process-CPU samples of a
// deterministic single-thread loop jitter by ±10-20% here, a noise
// floor two orders of magnitude above the effect. Instead the gate
// multiplies two individually stable measurements: the number of
// checkpoints one run executes (deterministic — read back from
// RunContext::checks_observed()) and the cost of one installed
// checkpoint (min-of-passes over 2^20 tight-loop iterations, finite
// deadline armed so the amortized clock read is included), divided by
// the uninstrumented loop's CPU time (interleaved min-of-N; ±5% there
// is irrelevant to a 0.05%-vs-1% comparison). The direct A/B delta is
// still emitted in the artifact for the record, but not gated.
// Cancellation latency — cancel() on another thread until the kernel
// surfaces Cancelled — is reported in the artifact as well.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <thread>
#include <utility>
#include <vector>

#include "darkvec/core/runtime/runtime.hpp"
#include "darkvec/ml/batch_topk.hpp"
#include "darkvec/w2v/skipgram.hpp"

#include "micro_common.hpp"

namespace {

using namespace darkvec;

// ---------------------------------------------------------------------
// Primitive costs.

void BM_TokenCancelledProbe(benchmark::State& state) {
  runtime::CancellationToken token;
  for (auto _ : state) {
    benchmark::DoNotOptimize(token.cancelled());
  }
}
BENCHMARK(BM_TokenCancelledProbe);

void BM_RunContextCheck(benchmark::State& state) {
  runtime::RunContext ctx;
  for (auto _ : state) {
    ctx.check();
  }
}
BENCHMARK(BM_RunContextCheck);

void BM_AmbientCheckpointInstalled(benchmark::State& state) {
  runtime::RunContext ctx;
  runtime::ContextScope scope(&ctx);
  for (auto _ : state) {
    DV_CHECKPOINT();
  }
}
BENCHMARK(BM_AmbientCheckpointInstalled);

void BM_AmbientCheckpointNoContext(benchmark::State& state) {
  for (auto _ : state) {
    DV_CHECKPOINT();
  }
}
BENCHMARK(BM_AmbientCheckpointNoContext);

// ---------------------------------------------------------------------
// Overhead gate fixtures: the skip-gram and batch_topk hot loops, run
// with and without an ambient context.

std::vector<w2v::Sentence> gate_sentences() {
  std::vector<w2v::Sentence> sentences;
  std::uint64_t state = 11;
  const auto next = [&state] {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 33;
  };
  for (int s = 0; s < 400; ++s) {
    w2v::Sentence sentence;
    for (int t = 0; t < 30; ++t) {
      sentence.push_back(static_cast<std::uint32_t>(next() % 200));
    }
    sentences.push_back(std::move(sentence));
  }
  return sentences;
}

w2v::Embedding gate_embedding() {
  // Large enough that a full scan takes hundreds of milliseconds: the
  // 1% comparison needs the timed region to dwarf scheduler noise.
  constexpr std::size_t kRows = 8192;
  constexpr int kDim = 48;
  std::vector<float> data(kRows * kDim);
  std::uint64_t state = 5;
  for (float& v : data) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    v = static_cast<float>(static_cast<std::int64_t>(state >> 40) % 1000) /
            500.0f -
        1.0f;
  }
  return w2v::Embedding{std::move(data), kDim}.normalized();
}

/// Process CPU seconds: unlike wall time it does not tick while the
/// process is descheduled, so a <1% comparison stays measurable on a
/// busy or virtualized host where wall-clock minima jitter by ±10%.
double cpu_now() {
#ifdef __linux__
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
#else
  return static_cast<double>(std::clock()) / CLOCKS_PER_SEC;
#endif
}

template <typename Fn>
double timed_seconds(const Fn& fn) {
  const double t0 = cpu_now();
  fn();
  return cpu_now() - t0;
}

/// Interleaved min-of-N: alternating the two sides within each round
/// makes both sample the same load windows, so a background spike
/// inflates them together instead of skewing the ratio; the minima then
/// converge to each side's true floor. Individual samples on this class
/// of host drift by ±10% in multi-second phases, while their minima
/// cluster within ~1%, so the repeat count must be high enough that
/// both sides visit a quiet phase — hence many short reps rather than
/// few long ones.
template <typename PlainFn, typename CtxFn>
std::pair<double, double> min_pair_of(int repeats, const PlainFn& plain,
                                      const CtxFn& ctx) {
  double best_plain = 1e300;
  double best_ctx = 1e300;
  for (int r = 0; r < repeats; ++r) {
    best_plain = std::min(best_plain, timed_seconds(plain));
    best_ctx = std::min(best_ctx, timed_seconds(ctx));
  }
  return {best_plain, best_ctx};
}

/// CPU cost of one installed checkpoint, finite deadline armed (so the
/// every-16th amortized clock read is paid), min-of-passes over a tight
/// 2^20-iteration loop. Averaging over a million calls makes this stable
/// to fractions of a nanosecond even on a host whose individual run
/// samples jitter by ±20%.
double installed_checkpoint_cost_s() {
  runtime::RunContext ctx;
  ctx.deadline = runtime::Deadline::in(3600.0);
  runtime::ContextScope scope(&ctx);
  constexpr int kIters = 1 << 20;
  double best = 1e300;
  for (int pass = 0; pass < 5; ++pass) {
    const double t0 = cpu_now();
    for (int i = 0; i < kIters; ++i) {
      DV_CHECKPOINT();
    }
    best = std::min(best, cpu_now() - t0);
  }
  return best / kIters;
}

bool runtime_gate(darkvec::bench::ExtraValues& values) {
  bool ok = true;
  constexpr double kMaxOverhead = 0.01;
  constexpr int kRepeats = 9;

  const double check_cost = installed_checkpoint_cost_s();
  values.emplace_back("checkpoint_cost_ns", check_cost * 1e9);

  // --- skip-gram hot loop ---------------------------------------------
  const auto sentences = gate_sentences();
  w2v::SkipGramOptions options;
  options.dim = 48;
  options.epochs = 3;
  const auto train_once = [&] {
    w2v::SkipGramModel model(200, options);
    model.train(sentences);
  };
  train_once();  // warm-up: page in the pool and the tables

  // Deterministic checkpoint count of one instrumented run.
  std::uint64_t sgns_checks = 0;
  {
    runtime::RunContext ctx;
    runtime::ContextScope scope(&ctx);
    train_once();
    sgns_checks = ctx.checks_observed();
  }
  const auto [sgns_plain, sgns_ctx] = min_pair_of(kRepeats, train_once, [&] {
    runtime::RunContext ctx;
    ctx.deadline = runtime::Deadline::in(3600.0);  // armed, never trips
    runtime::ContextScope scope(&ctx);
    train_once();
  });
  const double sgns_overhead =
      sgns_plain > 0
          ? static_cast<double>(sgns_checks) * check_cost / sgns_plain
          : 0.0;
  values.emplace_back("sgns_checks", static_cast<double>(sgns_checks));
  values.emplace_back("sgns_plain_cpu_s", sgns_plain);
  values.emplace_back("sgns_ctx_cpu_s", sgns_ctx);
  values.emplace_back("sgns_direct_delta",
                      sgns_plain > 0 ? (sgns_ctx - sgns_plain) / sgns_plain
                                     : 0.0);
  values.emplace_back("sgns_overhead", sgns_overhead);

  // --- batch_topk hot loop --------------------------------------------
  const w2v::Embedding normalized = gate_embedding();
  std::vector<std::uint32_t> queries(2048);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    queries[i] = static_cast<std::uint32_t>(i * 3);
  }
  const auto scan_plain_once = [&] {
    benchmark::DoNotOptimize(ml::batch_topk(normalized, queries, 10));
  };
  scan_plain_once();  // warm-up

  std::uint64_t topk_checks = 0;
  {
    runtime::RunContext ctx;
    benchmark::DoNotOptimize(
        ml::batch_topk_bounded(normalized, queries, 10, &ctx));
    topk_checks = ctx.checks_observed();
  }
  const auto [topk_plain, topk_ctx] =
      min_pair_of(kRepeats, scan_plain_once, [&] {
        runtime::RunContext ctx;
        ctx.deadline = runtime::Deadline::in(3600.0);
        benchmark::DoNotOptimize(
            ml::batch_topk_bounded(normalized, queries, 10, &ctx));
      });
  const double topk_overhead =
      topk_plain > 0
          ? static_cast<double>(topk_checks) * check_cost / topk_plain
          : 0.0;
  values.emplace_back("batch_topk_checks", static_cast<double>(topk_checks));
  values.emplace_back("batch_topk_plain_cpu_s", topk_plain);
  values.emplace_back("batch_topk_ctx_cpu_s", topk_ctx);
  values.emplace_back("batch_topk_direct_delta",
                      topk_plain > 0 ? (topk_ctx - topk_plain) / topk_plain
                                     : 0.0);
  values.emplace_back("batch_topk_overhead", topk_overhead);

  if (sgns_overhead > kMaxOverhead || topk_overhead > kMaxOverhead) {
    std::fprintf(stderr,
                 "runtime gate: checkpoint overhead too high — sgns %.4f%% "
                 "batch_topk %.4f%% (limit %.1f%%)\n",
                 sgns_overhead * 100, topk_overhead * 100,
                 kMaxOverhead * 100);
    ok = false;
  }

  // --- cancellation latency (reported, not gated: it is a property of
  // the check cadence, and a loaded machine inflates it arbitrarily) ---
  double worst = 0;
  double sum = 0;
  constexpr int kLatencyRounds = 5;
  for (int round = 0; round < kLatencyRounds; ++round) {
    runtime::RunContext ctx;
    std::thread canceller;
    const auto t0 = std::chrono::steady_clock::now();
    double latency = 0;
    try {
      canceller = std::thread([&] { ctx.token.cancel(); });
      while (true) {
        benchmark::DoNotOptimize(
            ml::batch_topk_bounded(normalized, queries, 10, &ctx));
      }
    } catch (const runtime::Cancelled&) {
      latency =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
    }
    canceller.join();
    worst = std::max(worst, latency);
    sum += latency;
  }
  values.emplace_back("cancel_latency_mean_s", sum / kLatencyRounds);
  values.emplace_back("cancel_latency_max_s", worst);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  return darkvec::bench::run_micro("runtime", argc, argv, runtime_gate);
}
