// Table 3: DarkVec vs IP2VEC vs DANTE on 5-day and 30-day datasets —
// skip-gram counts, training time, accuracy, and coverage of the last-day
// labeled senders. Reproduces the scalability story: DarkVec's compact
// corpus trains fastest and scores best; IP2VEC's pair corpus explodes;
// DANTE's per-sender sentences explode further and hit the DNF budget.
#include "common.hpp"

#include "darkvec/baselines/dante.hpp"
#include "darkvec/baselines/ip2vec.hpp"
#include "darkvec/corpus/corpus.hpp"
#include "darkvec/net/time.hpp"

namespace {

struct Row {
  const char* method;
  std::uint64_t pairs;
  double seconds;
  double accuracy;
  double coverage;
  bool completed;
};

void print_row(const Row& r) {
  if (r.completed) {
    std::printf("  %-8s %14llu %10.1fs %10.3f %10.0f%%\n", r.method,
                static_cast<unsigned long long>(r.pairs), r.seconds,
                r.accuracy, 100.0 * r.coverage);
  } else {
    std::printf("  %-8s %14llu %10s %10s %10s   (DNF: pair budget "
                "exceeded)\n",
                r.method, static_cast<unsigned long long>(r.pairs), ">cap",
                "-", "-");
  }
}

}  // namespace

int main() {
  using namespace darkvec;
  using namespace darkvec::bench;

  banner("Table 3", "DarkVec vs IP2VEC vs DANTE (5-day and 30-day)");
  std::printf(
      "paper:  5d: DarkVec 17M pairs/14min/0.93 | IP2VEC 38M/60min/0.67 | "
      "DANTE >7B/DNF\n"
      "       30d: DarkVec 486M/1.2h/0.96 | IP2VEC >200M pairs, DNF >10h | "
      "DANTE DNF\n"
      "       coverage: 82%% (5d) -> 100%% (30d)\n\n");

  const sim::SimResult sim = simulate(/*default_days=*/30);
  const auto eval_ips = last_day_active_senders(sim.trace);
  // DNF budgets scaled to the simulation (the paper's budget was ~10 h of
  // wall time; ours keeps each bench run in minutes).
  const auto dante_cap = static_cast<std::uint64_t>(
      env_or("DARKVEC_DANTE_CAP", 30e6));
  const auto ip2vec_cap = static_cast<std::uint64_t>(
      env_or("DARKVEC_IP2VEC_CAP", 30e6));

  for (const int days : {5, 30}) {
    // The paper trains on the *last* `days` days, testing on the final day.
    const std::int64_t end = sim.trace.stats().last_ts + 1;
    const net::Trace window =
        sim.trace.slice(end - days * net::kSecondsPerDay, end);

    std::printf("---- %d-day dataset (%zu packets) ----\n", days,
                window.size());
    std::printf("  %-8s %14s %11s %10s %10s\n", "method", "pairs/epoch",
                "train", "accuracy", "coverage");

    // DarkVec: the paper trains 20 epochs on 5 days, 10 on 30 days.
    // These are Table 3's published settings, so they are pinned and not
    // overridable through DARKVEC_EPOCHS.
    DarkVecConfig dv_config = default_config(10);
    dv_config.w2v.epochs = days <= 5 ? 20 : 10;
    DarkVec dv(dv_config);
    const auto stats = dv.fit(window);
    const auto eval = evaluate_knn(dv, sim.labels, eval_ips, 7);
    const std::uint64_t dv_pairs =
        corpus::count_skipgrams(dv.corpus(), dv.config().w2v.window);
    print_row({"DarkVec", dv_pairs, stats.seconds, eval.accuracy,
               eval.coverage(), true});

    // IP2VEC over the same active senders.
    const auto active = net::active_senders(window, 10);
    baselines::Ip2VecOptions ip_options;
    ip_options.w2v.epochs = 10;  // the paper's IP2VEC setting
    ip_options.max_pairs_per_epoch = ip2vec_cap;
    const auto ip = run_ip2vec(window, active, ip_options);
    double ip_acc = 0;
    double ip_cov = 0;
    if (ip.completed) {
      const auto ip_eval = evaluate_knn_vectors(ip.sender_vectors, ip.senders,
                                                sim.labels, eval_ips, 7);
      ip_acc = ip_eval.accuracy;
      ip_cov = ip_eval.coverage();
    }
    print_row({"IP2VEC", ip.pairs_per_epoch, ip.train_seconds, ip_acc,
               ip_cov, ip.completed});

    // DANTE over the same active senders.
    baselines::DanteOptions dante_options;
    dante_options.w2v.epochs = 10;
    dante_options.max_pairs_per_epoch = dante_cap;
    const auto dante = run_dante(window, active, dante_options);
    double dante_acc = 0;
    double dante_cov = 0;
    if (dante.completed) {
      const auto dn_eval = evaluate_knn_vectors(
          dante.sender_vectors, dante.senders, sim.labels, eval_ips, 7);
      dante_acc = dn_eval.accuracy;
      dante_cov = dn_eval.coverage();
    }
    print_row({"DANTE", dante.skipgrams_per_epoch, dante.train_seconds,
               dante_acc, dante_cov, dante.completed});

    // ---- skip-gram counts projected to the paper's packet rates --------
    // The simulation runs at ~1:20 of the real per-sender packet rates, so
    // DANTE's per-sender sequences stay below its augmentation window and
    // its cost looks tame. At paper rates sequences are ~20x longer, the
    // sliding-window augmentation kicks in, and DANTE explodes while
    // DarkVec and IP2VEC scale linearly — the paper's DNF story.
    const double rate = env_or("DARKVEC_RATE_FACTOR", 20.0);
    const auto pairs_in_sentence = [&](double n) {
      const double c = dante_options.w2v.window;
      if (n <= 1) return 0.0;
      if (n <= c + 1) return n * (n - 1);
      return 2.0 * (c * n - c * (c + 1) / 2.0);
    };
    double dante_projected = 0;
    const auto win = static_cast<double>(dante_options.sentence_window);
    for (const std::size_t len : dante.sequence_lengths) {
      const double scaled = static_cast<double>(len) * rate;
      if (scaled <= win) {
        dante_projected += pairs_in_sentence(scaled);
      } else {
        dante_projected +=
            (scaled - win + 1) * pairs_in_sentence(win);
      }
    }
    std::printf("  projected @ paper rates (x%.0f): DarkVec %.1fM, IP2VEC "
                "%.1fM, DANTE %.0fM%s\n",
                rate, static_cast<double>(dv_pairs) * rate / 1e6,
                static_cast<double>(ip.pairs_per_epoch) * rate / 1e6,
                dante_projected / 1e6,
                dante_projected > static_cast<double>(dante_cap) * rate
                    ? "  -> DANTE DNF at paper scale"
                    : "");
    std::printf("\n");
  }

  std::printf(
      "expected shape: DarkVec accuracy highest and rises 5d->30d; IP2VEC "
      "clearly lower;\nDANTE generates the most pairs (DNF at paper scale); "
      "coverage grows with window size.\n");
  return 0;
}
