// Figure 9: activity patterns of two contrasting GT classes —
// (a) Stretchoid's irregular sparse probing (why its recall is low) and
// (b) Engin-Umich's synchronized DNS impulses (why its recall is perfect).
#include "common.hpp"

#include <algorithm>

#include "darkvec/core/raster.hpp"
#include "darkvec/net/time.hpp"

namespace {

std::vector<darkvec::net::IPv4> class_members(
    const darkvec::sim::SimResult& sim, darkvec::sim::GtClass cls) {
  std::vector<darkvec::net::IPv4> out;
  for (const auto& [ip, c] : sim.labels) {
    if (c == cls) out.push_back(ip);
  }
  std::ranges::sort(out);
  return out;
}

}  // namespace

int main() {
  using namespace darkvec;
  using namespace darkvec::bench;

  const sim::SimResult sim = simulate(/*default_days=*/30);

  banner("Figure 9a", "Stretchoid activity pattern (one row per sender, "
                      "one column per 12h)");
  const auto stretchoid = class_members(sim, sim::GtClass::kStretchoid);
  const auto raster_s = build_raster(sim.trace, stretchoid,
                                     net::kSecondsPerDay / 2);
  std::fputs(render_raster(raster_s, 30).c_str(), stdout);

  // Quantify irregularity: fraction of active buckets per sender.
  double mean_active_s = 0;
  for (const auto& row : raster_s.presence) {
    mean_active_s += static_cast<double>(
                         std::count(row.begin(), row.end(), true)) /
                     static_cast<double>(row.size());
  }
  mean_active_s /= static_cast<double>(
      std::max<std::size_t>(raster_s.presence.size(), 1));
  compare("Stretchoid mean bucket occupancy", "sparse, irregular",
          fmt("%.1f%% of 12h buckets", 100.0 * mean_active_s));

  banner("Figure 9b", "Engin-Umich activity pattern (one column per 12h)");
  const auto engin = class_members(sim, sim::GtClass::kEnginUmich);
  const auto raster_e = build_raster(sim.trace, engin,
                                     net::kSecondsPerDay / 2);
  std::fputs(render_raster(raster_e, 0).c_str(), stdout);

  // Quantify synchronization: senders share the same few active buckets.
  std::vector<std::size_t> bucket_counts(raster_e.buckets(), 0);
  for (const auto& row : raster_e.presence) {
    for (std::size_t b = 0; b < row.size(); ++b) {
      if (row[b]) ++bucket_counts[b];
    }
  }
  std::size_t synchronized_buckets = 0;
  std::size_t touched_buckets = 0;
  for (const std::size_t c : bucket_counts) {
    if (c > 0) ++touched_buckets;
    if (c >= engin.size() / 2) ++synchronized_buckets;
  }
  compare("Engin-Umich active 12h buckets", "a handful of impulses",
          fmt("%.0f buckets", static_cast<double>(touched_buckets)));
  compare("buckets where >=half the class fires together",
          "all of them (coordinated)",
          fmt("%.0f", static_cast<double>(synchronized_buckets)));
  std::printf(
      "\nexpected shape: 9a scattered isolated dots; 9b a few full vertical "
      "stripes\n(every sender active in the same instants).\n");
  return 0;
}
