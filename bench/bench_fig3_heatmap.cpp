// Figure 3: fraction of daily packets sent by each ground-truth class to
// the generic (domain-knowledge) services, normalized by class.
#include "common.hpp"

#include <array>
#include <vector>

#include "darkvec/corpus/service_map.hpp"
#include "darkvec/net/time.hpp"

int main() {
  using namespace darkvec;
  using namespace darkvec::bench;

  banner("Figure 3", "class x service traffic heatmap (last day)");
  const sim::SimResult sim = simulate(/*default_days=*/30);
  const std::int64_t end = sim.trace.stats().last_ts + 1;
  const net::Trace last_day = sim.trace.slice(end - net::kSecondsPerDay, end);

  const corpus::DomainServiceMap services;
  const int n_services = services.num_services();

  // counts[class][service]
  std::array<std::vector<std::size_t>, sim::kNumGtClasses> counts;
  for (auto& row : counts) {
    row.assign(static_cast<std::size_t>(n_services), 0);
  }
  std::array<std::size_t, sim::kNumGtClasses> class_total{};
  for (const net::Packet& p : last_day) {
    const auto cls = static_cast<std::size_t>(sim::label_of(sim.labels, p.src));
    const auto svc = static_cast<std::size_t>(services.service_of(p.port_key()));
    ++counts[cls][svc];
    ++class_total[cls];
  }

  std::printf("%-19s", "service \\ class");
  for (const sim::GtClass c : sim::kAllGtClasses) {
    std::printf(" %7.7s", std::string(to_string(c)).c_str());
  }
  std::printf("\n");
  for (int s = 0; s < n_services; ++s) {
    std::printf("%-19s", services.name(s).c_str());
    for (const sim::GtClass c : sim::kAllGtClasses) {
      const auto cls = static_cast<std::size_t>(c);
      const double frac =
          class_total[cls] == 0
              ? 0.0
              : static_cast<double>(counts[cls][static_cast<std::size_t>(s)]) /
                    static_cast<double>(class_total[cls]);
      if (frac == 0) {
        std::printf(" %7s", ".");
      } else {
        std::printf(" %6.1f%%", 100.0 * frac);
      }
    }
    std::printf("\n");
  }

  // Shape checks from the paper's heatmap.
  const auto frac = [&](sim::GtClass c, const char* svc) {
    const int id = services.id_of(svc);
    const auto cls = static_cast<std::size_t>(c);
    return class_total[cls] == 0 || id < 0
               ? 0.0
               : static_cast<double>(counts[cls][static_cast<std::size_t>(id)]) /
                     static_cast<double>(class_total[cls]);
  };
  std::printf("\nshape checks:\n");
  compare("Engin-umich traffic on DNS", "~100%",
          fmt("%.0f%%", 100.0 * frac(sim::GtClass::kEnginUmich, "DNS")));
  compare("Mirai-like traffic on Telnet", "~90%",
          fmt("%.0f%%", 100.0 * frac(sim::GtClass::kMirai, "Telnet")));
  // Censys sweeps random ports, so its traffic lands mostly in the
  // catch-all range services (the paper's dominant "Others" row), never
  // concentrated on one named service.
  {
    const auto cls = static_cast<std::size_t>(sim::GtClass::kCensys);
    int best_svc = 0;
    double best = 0;
    double best_named = 0;
    for (int s = 0; s < n_services; ++s) {
      const double share =
          static_cast<double>(counts[cls][static_cast<std::size_t>(s)]) /
          static_cast<double>(std::max<std::size_t>(class_total[cls], 1));
      if (share > best) {
        best = share;
        best_svc = s;
      }
      const std::string name = services.name(s);
      if (name.rfind("Unknown", 0) != 0) best_named = std::max(best_named,
                                                               share);
    }
    compare("Censys dominant service is a catch-all range",
            "'Others' dominates",
            services.name(best_svc) + fmt(" (%.0f%%)", 100.0 * best));
    compare("Censys max share on any *named* service", "scattered, small",
            fmt("%.0f%%", 100.0 * best_named));
  }
  return 0;
}
