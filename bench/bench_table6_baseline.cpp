// Table 6: the Section-4 baseline — per-sender traffic shares over the
// union of per-class top-5 ports, classified with a cosine 7-NN
// (leave-one-out). The paper's point: several classes score poorly,
// motivating the embedding approach.
#include "common.hpp"

#include "darkvec/baselines/port_features.hpp"
#include "darkvec/net/time.hpp"

int main() {
  using namespace darkvec;
  using namespace darkvec::bench;

  banner("Table 6", "baseline port-share 7-NN classifier report");
  std::printf(
      "paper (red = <0.50): Stretchoid R=0.03, Ipip R=0.00, Sharashka "
      "R=0.32, Shodan R=0.13,\n  Censys R=0.42 — only Mirai-like and "
      "Engin-umich score well\n\n");

  const sim::SimResult sim = simulate(/*default_days=*/30);
  // The paper builds the baseline on the last day of traffic.
  const std::int64_t end = sim.trace.stats().last_ts + 1;
  const net::Trace last_day = sim.trace.slice(end - net::kSecondsPerDay, end);
  const auto eval_ips = last_day_active_senders(sim.trace);

  const baselines::PortFeatures features =
      baselines::build_port_features(last_day, eval_ips, sim.labels, 5);
  std::printf("feature set: %zu ports (union of per-class top-5)\n\n",
              features.ports.size());

  const auto eval = evaluate_knn_vectors(features.matrix, features.senders,
                                         sim.labels, eval_ips, 7);

  std::printf("%-16s %9s %8s %8s %8s\n", "class", "precision", "recall",
              "f-score", "support");
  for (const sim::GtClass c : sim::kAllGtClasses) {
    const auto& s = eval.report.scores(static_cast<int>(c));
    std::printf("%-16s %9.2f %8.2f %8.2f %8zu\n",
                std::string(to_string(c)).c_str(), s.precision, s.recall,
                s.f1, s.support);
  }
  std::printf("\n");
  compare("overall accuracy over GT classes",
          "poor (well below DarkVec's 0.96)", fmt("%.3f", eval.accuracy));
  std::printf(
      "\nexpected shape: several classes below 0.5 recall; clearly worse "
      "than the\nDarkVec embedding (bench_table4_perclass).\n");
  return 0;
}
