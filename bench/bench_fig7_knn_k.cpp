// Figure 7: impact of k on the k-NN classifier for the three service
// definitions (single / auto-defined / domain knowledge).
#include "common.hpp"

#include <algorithm>

int main() {
  using namespace darkvec;
  using namespace darkvec::bench;

  banner("Figure 7", "k-NN accuracy vs k for three service definitions");
  std::printf(
      "paper: single service plateaus ~0.8 and is clearly worst; auto and "
      "domain reach\n~0.96 around k=7-17 and decay for large k as Unknown "
      "senders swamp neighbourhoods.\n\n");

  const sim::SimResult sim = simulate(/*default_days=*/30);
  const auto eval_ips = last_day_active_senders(sim.trace);

  const corpus::ServiceStrategy strategies[] = {
      corpus::ServiceStrategy::kDomain, corpus::ServiceStrategy::kAuto,
      corpus::ServiceStrategy::kSingle};

  std::printf("  %-8s", "k");
  for (const auto s : strategies) {
    std::printf(" %10s", std::string(to_string(s)).c_str());
  }
  std::printf("\n");

  const int ks[] = {1, 3, 7, 17, 25, 35};
  double acc[3][6] = {};
  for (int si = 0; si < 3; ++si) {
    DarkVecConfig config = default_config(/*default_epochs=*/5);
    config.services = strategies[si];
    DarkVec dv(config);
    dv.fit(sim.trace);
    for (int ki = 0; ki < 6; ++ki) {
      acc[si][ki] = evaluate_knn(dv, sim.labels, eval_ips, ks[ki]).accuracy;
    }
  }
  for (int ki = 0; ki < 6; ++ki) {
    std::printf("  %-8d", ks[ki]);
    for (int si = 0; si < 3; ++si) std::printf(" %10.3f", acc[si][ki]);
    std::printf("\n");
  }

  std::printf("\nshape checks:\n");
  compare("domain accuracy at k=7", "0.96", fmt("%.3f", acc[0][2]));
  compare("auto accuracy at k=7", "0.96", fmt("%.3f", acc[1][2]));
  compare("single clearly below domain at k=7", "~0.8 vs 0.96",
          fmt("%.3f below", acc[0][2] - acc[2][2]));
  compare("large k degrades accuracy (auto, k=35 vs best)", "decays",
          fmt("%+.3f", acc[1][5] -
                           *std::max_element(&acc[1][0], &acc[1][0] + 6)));
  return 0;
}
