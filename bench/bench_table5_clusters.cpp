// Table 5: summary of extracted coordinated senders — for every notable
// group the paper lists (Censys and Shadowserver sub-clusters, unknown1-8)
// find the Louvain clusters dominated by that generator population and
// report IPs, ports, silhouette and the group's signature statistics.
#include "common.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "darkvec/core/inspector.hpp"
#include "darkvec/ml/silhouette.hpp"
#include "darkvec/sim/honeypot.hpp"

int main() {
  using namespace darkvec;
  using namespace darkvec::bench;

  banner("Table 5", "summary of extracted coordinated senders (k'=3)");

  const sim::SimResult sim = simulate(/*default_days=*/30);
  DarkVec dv(default_config(/*default_epochs=*/5));
  dv.fit(sim.trace);
  const Clustering clustering = dv.cluster(3);
  const auto samples =
      ml::silhouette_samples(dv.embedding(), clustering.assignment);
  const auto clusters = inspect_clusters(sim.trace, dv.corpus(),
                                         clustering.assignment, sim.groups,
                                         samples);
  std::printf("%d clusters, modularity %.3f\n\n", clustering.count,
              clustering.modularity);

  // Group -> clusters it dominates (>=60% of members).
  std::map<std::string, std::vector<const ClusterInfo*>> by_group;
  for (const ClusterInfo& c : clusters) {
    if (c.size() >= 5 && c.dominant_fraction >= 0.6) {
      by_group[c.dominant_group].push_back(&c);
    }
  }

  const auto print_group = [&](const char* group, const char* paper_note) {
    std::printf("---- %s ----\n  paper: %s\n", group, paper_note);
    const auto it = by_group.find(group);
    if (it == by_group.end()) {
      std::printf("  NOT RECOVERED as a dominated cluster\n\n");
      return;
    }
    for (const ClusterInfo* c : it->second) {
      std::string tops;
      for (std::size_t i = 0;
           i < std::min<std::size_t>(2, c->top_ports.size()); ++i) {
        char buf[48];
        std::snprintf(buf, sizeof(buf), "%s(%.0f%%) ",
                      c->top_ports[i].first.to_string().c_str(),
                      100.0 * c->top_ports[i].second);
        tops += buf;
      }
      std::printf("  C%-3d %5zu IPs %5zu ports %4zu /24s  sil %5.2f  "
                  "fp %3.0f%%  top: %s\n",
                  c->id, c->size(), c->ports.size(), c->distinct_slash24,
                  c->silhouette, 100.0 * c->fingerprint_fraction,
                  tops.c_str());
    }
    std::printf("\n");
  };

  print_group("censys",
              "7 sub-clusters of 14-17 IPs, 13-31 ports each, Sh 0.76-0.94; "
              "inter-cluster port Jaccard 0.19");
  print_group("shadowserver_g1",
              "C25: 61 IPs, 47 ports, Sh 0.68; 10% to 623/udp, 10% to "
              "123/udp (shared /16)");
  print_group("shadowserver_g2",
              "C29: 36 IPs, 42 ports, Sh 0.46; 25% to 5683/udp + 3389/udp");
  print_group("shadowserver_g3",
              "C37: 16 IPs, 51 ports, Sh 0.58; 63% to 111/udp + 137/udp");
  print_group("unknown1_netbios",
              "C40: 85 IPs, 18 ports, Sh 0.62; same /24, 60% to 137/udp");
  print_group("unknown2_smtp",
              "C30: 10 IPs, 12 ports, Sh 0.89; same /24, 76% to 25/tcp");
  print_group("unknown3_smb",
              "C13: 61 IPs, 5 ports, Sh 0.33; 99.5% to 445/tcp, 23 /24s");
  print_group("unknown4_adb",
              "C41: 525 IPs, 141 ports, Sh 1.00; 75% to 5555/tcp (worm)");
  print_group("mirai",
              "C18 mixes Mirai-fingerprint and non-fingerprint senders "
              "(unknown5: 71% with fingerprint)");
  print_group("mirai_nofp",
              "(part of unknown5: Mirai-like behaviour without fingerprint)");
  print_group("unknown6_ssh",
              "C26: 623 IPs, 116 ports, Sh 0.40; 88% to 22/tcp");
  print_group("unknown7_horizontal",
              "C31: 158 IPs, 148 ports equal share, Sh 0.03; daily pattern");
  print_group("unknown8_hourly",
              "C45: 22 IPs, 69 ports equal share, Sh 0.80; hourly pattern");

  // ---- quantitative shape checks -----------------------------------------
  std::printf("==== shape checks ====\n");
  const auto& censys_clusters = by_group["censys"];
  compare("Censys sub-clusters found", "7",
          fmt("%.0f", static_cast<double>(censys_clusters.size())));
  if (censys_clusters.size() >= 2) {
    std::vector<ClusterInfo> copies;
    for (const ClusterInfo* c : censys_clusters) copies.push_back(*c);
    compare("Censys inter-cluster port Jaccard", "0.19",
            fmt("%.2f", mean_pairwise_port_jaccard(copies)));
  }

  std::size_t shadow_groups = 0;
  for (const char* g :
       {"shadowserver_g1", "shadowserver_g2", "shadowserver_g3"}) {
    if (by_group.contains(g)) ++shadow_groups;
  }
  compare("Shadowserver sub-clusters found", "3",
          fmt("%.0f", static_cast<double>(shadow_groups)));

  if (by_group.contains("unknown1_netbios")) {
    // The cluster may adopt a few background NetBIOS probers (the paper's
    // Section 6.4 extension effect); what matters is the dominant /24.
    const ClusterInfo* c = by_group["unknown1_netbios"][0];
    std::unordered_map<std::uint32_t, std::size_t> per24;
    for (const net::IPv4 ip : c->members) ++per24[ip.slash24().value()];
    std::size_t top = 0;
    for (const auto& [subnet, n] : per24) top = std::max(top, n);
    compare("unknown1 concentrated in one /24", "85 IPs, 1 subnet",
            fmt("%.0f%% of members in the top /24",
                100.0 * static_cast<double>(top) /
                    static_cast<double>(c->size())));
  }
  if (by_group.contains("unknown4_adb")) {
    const ClusterInfo* adb = by_group["unknown4_adb"][0];
    double share5555 = 0;
    for (const auto& [key, share] : adb->top_ports) {
      if (key.port == 5555) share5555 = share;
    }
    compare("unknown4 traffic share on 5555/tcp", "75%",
            fmt("%.0f%%", 100.0 * share5555));
  }
  // Honeypot cross-check of the SSH cluster (Section 7.3.3: "Manual
  // verification using honeypot data we run in our premises confirms the
  // brute-force activity performed by these senders").
  if (by_group.contains("unknown6_ssh")) {
    const std::vector<std::string> bruteforce = {"unknown6_ssh"};
    const sim::HoneypotLog honeypot =
        sim::simulate_honeypot(sim.trace, sim.groups, bruteforce);
    const ClusterInfo* ssh = by_group["unknown6_ssh"][0];
    compare("unknown6 senders confirmed by the honeypot",
            "brute-force confirmed",
            fmt("%.0f%% of cluster members left credential attempts",
                100.0 * sim::confirmed_fraction(honeypot, ssh->members)));
  }

  // Mirai-like clusters mixing fingerprint and non-fingerprint senders
  // (the unknown5 observation).
  double best_mixed = 0;
  for (const ClusterInfo& c : clusters) {
    if (c.size() < 30) continue;
    if (c.fingerprint_fraction > 0.5 && c.fingerprint_fraction < 0.99) {
      best_mixed = std::max(best_mixed, c.fingerprint_fraction);
    }
  }
  compare("largest mixed Mirai cluster fingerprint share", "71%",
          best_mixed > 0 ? fmt("%.0f%%", 100.0 * best_mixed)
                         : std::string("none found"));
  return 0;
}
