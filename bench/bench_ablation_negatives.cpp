// Ablation: negative-sampling count and training epochs.
// Section 6.1 attributes part of IP2VEC's cost to negative sampling; this
// bench quantifies the accuracy/time trade-off of both knobs for DarkVec
// itself on the simulated trace.
#include "common.hpp"

#include "darkvec/net/time.hpp"

int main() {
  using namespace darkvec;
  using namespace darkvec::bench;

  banner("Ablation", "negative samples and epochs vs accuracy and time");

  const sim::SimResult sim = simulate(/*default_days=*/30);
  const int days = env_or_int("DARKVEC_ABL_DAYS", 10);
  const std::int64_t end = sim.trace.stats().last_ts + 1;
  const net::Trace window =
      sim.trace.slice(end - days * net::kSecondsPerDay, end);
  const auto eval_ips = last_day_active_senders(sim.trace);
  std::printf("window: last %d days (%zu packets)\n\n", days, window.size());

  std::printf("---- negative samples (epochs=5) ----\n");
  std::printf("  %-10s %10s %10s\n", "negatives", "accuracy", "train [s]");
  double acc_n1 = 0;
  double acc_n5 = 0;
  for (const int negative : {1, 2, 5, 10, 15}) {
    DarkVecConfig config = default_config(/*default_epochs=*/5);
    config.w2v.negative = negative;
    DarkVec dv(config);
    const auto stats = dv.fit(window);
    const auto eval = evaluate_knn(dv, sim.labels, eval_ips, 7);
    std::printf("  %-10d %10.3f %10.1f\n", negative, eval.accuracy,
                stats.seconds);
    if (negative == 1) acc_n1 = eval.accuracy;
    if (negative == 5) acc_n5 = eval.accuracy;
  }
  compare("5 negatives vs 1 negative", "more negatives help (slightly)",
          fmt("%+.3f", acc_n5 - acc_n1));

  // Hierarchical softmax: the classic alternative to negative sampling
  // (O(log V) updates per pair instead of O(negatives)).
  {
    DarkVecConfig config = default_config(/*default_epochs=*/5);
    config.w2v.hierarchical_softmax = true;
    DarkVec dv(config);
    const auto stats = dv.fit(window);
    const auto eval = evaluate_knn(dv, sim.labels, eval_ips, 7);
    std::printf("  %-10s %10.3f %10.1f\n", "HS", eval.accuracy,
                stats.seconds);
    compare("hierarchical softmax vs 5 negatives", "comparable quality",
            fmt("%+.3f", eval.accuracy - acc_n5));
  }

  std::printf("\n---- epochs (negatives=5) ----\n");
  std::printf("  %-10s %10s %10s\n", "epochs", "accuracy", "train [s]");
  double acc_e1 = 0;
  double acc_e10 = 0;
  for (const int epochs : {1, 3, 5, 10, 20}) {
    DarkVecConfig config = default_config(epochs);
    config.w2v.epochs = epochs;  // ignore env for the sweep variable
    DarkVec dv(config);
    const auto stats = dv.fit(window);
    const auto eval = evaluate_knn(dv, sim.labels, eval_ips, 7);
    std::printf("  %-10d %10.3f %10.1f\n", epochs, eval.accuracy,
                stats.seconds);
    if (epochs == 1) acc_e1 = eval.accuracy;
    if (epochs == 10) acc_e10 = eval.accuracy;
  }
  compare("10 epochs vs 1 epoch", "training converges",
          fmt("%+.3f", acc_e10 - acc_e1));
  return 0;
}
