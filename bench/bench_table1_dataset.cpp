// Table 1: single-day and complete dataset statistics — sources, packets,
// distinct ports and the top-3 TCP ports with traffic share and sources.
#include "common.hpp"

#include "darkvec/net/time.hpp"

namespace {

void print_row(const char* label, const darkvec::net::Trace& trace) {
  using namespace darkvec;
  const auto stats = trace.stats();
  std::printf("%-9s %9zu sources %10zu packets %7zu ports\n", label,
              stats.sources, stats.packets, stats.ports);
  std::printf("          top-3 TCP ports:\n");
  int shown = 0;
  for (const net::PortRankEntry& e : trace.port_ranking()) {
    if (e.key.proto != net::Protocol::kTcp) continue;
    std::printf("            %-10s %5.2f%% of traffic, %6zu sources\n",
                e.key.to_string().c_str(),
                100.0 * static_cast<double>(e.packets) /
                    static_cast<double>(stats.packets),
                e.sources);
    if (++shown == 3) break;
  }
}

}  // namespace

int main() {
  using namespace darkvec;
  using namespace darkvec::bench;

  banner("Table 1", "single day and complete dataset statistics");
  std::printf(
      "paper 30 days : 543900 sources, 63.5M packets, 65537 ports; "
      "top-3 TCP: 5555 (7.4%%), 445 (7.1%%), 23 (4.1%%)\n"
      "paper last day: 43118 sources, 3.46M packets, 19583 ports; "
      "top-3 TCP: 445 (8.3%%), 5555 (8.2%%), 23 (3.5%%)\n"
      "(simulation runs at ~1:20 packet scale; shares and ordering are the "
      "reproduction target)\n\n");

  const sim::SimResult sim = simulate(/*default_days=*/30);
  print_row("30 days", sim.trace);

  const std::int64_t end = sim.trace.stats().last_ts + 1;
  const net::Trace last_day = sim.trace.slice(end - net::kSecondsPerDay, end);
  print_row("last day", last_day);

  // Shape check: Telnet / SMB / ADB ports dominate the TCP ranking.
  bool found23 = false;
  bool found445 = false;
  bool found5555 = false;
  int rank = 0;
  for (const net::PortRankEntry& e : sim.trace.port_ranking()) {
    if (++rank > 10) break;
    if (e.key == net::PortKey{23, net::Protocol::kTcp}) found23 = true;
    if (e.key == net::PortKey{445, net::Protocol::kTcp}) found445 = true;
    if (e.key == net::PortKey{5555, net::Protocol::kTcp}) found5555 = true;
  }
  std::printf("\nshape check: 23/tcp, 445/tcp, 5555/tcp in global top-10: "
              "%s\n",
              found23 && found445 && found5555 ? "yes (matches paper)"
                                               : "NO (mismatch)");
  return 0;
}
