// Table 2: ground-truth classes present in the last day of the collection
// and active in the 30-day dataset — senders, packets, distinct ports and
// top-5 ports with traffic shares.
#include "common.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "darkvec/net/time.hpp"

int main() {
  using namespace darkvec;
  using namespace darkvec::bench;

  banner("Table 2", "ground-truth classes in the last day, active in 30d");
  std::printf(
      "paper supports: Mirai 7351, Censys 336, Stretchoid 104, "
      "Internet-census 103,\n  Binaryedge 101, Sharashka 50, Ipip 49, "
      "Shodan 23, Engin-umich 10, Unknown 14272\n"
      "(simulation scales Mirai/Censys/Unknown; small classes keep paper "
      "counts)\n\n");

  const sim::SimResult sim = simulate(/*default_days=*/30);
  const auto eval_ips = last_day_active_senders(sim.trace);
  std::unordered_set<net::IPv4> eval_set(eval_ips.begin(), eval_ips.end());

  struct ClassAgg {
    std::size_t senders = 0;
    std::size_t packets = 0;
    std::unordered_map<net::PortKey, std::size_t> ports;
  };
  std::array<ClassAgg, sim::kNumGtClasses> agg;

  for (const net::IPv4 ip : eval_ips) {
    ++agg[static_cast<std::size_t>(sim::label_of(sim.labels, ip))].senders;
  }
  for (const net::Packet& p : sim.trace) {
    if (!eval_set.contains(p.src)) continue;
    auto& a = agg[static_cast<std::size_t>(sim::label_of(sim.labels, p.src))];
    ++a.packets;
    ++a.ports[p.port_key()];
  }

  std::printf("%-16s %8s %9s %7s  top-5 ports (%% of class traffic)\n",
              "class", "senders", "packets", "ports");
  for (const sim::GtClass c : sim::kAllGtClasses) {
    const ClassAgg& a = agg[static_cast<std::size_t>(c)];
    std::vector<std::pair<net::PortKey, std::size_t>> ranked(a.ports.begin(),
                                                             a.ports.end());
    std::ranges::sort(ranked, [](const auto& x, const auto& y) {
      if (x.second != y.second) return x.second > y.second;
      return x.first < y.first;
    });
    std::string tops;
    for (std::size_t i = 0; i < std::min<std::size_t>(5, ranked.size());
         ++i) {
      char buf[48];
      std::snprintf(buf, sizeof(buf), "%s(%.1f%%) ",
                    ranked[i].first.to_string().c_str(),
                    100.0 * static_cast<double>(ranked[i].second) /
                        static_cast<double>(std::max<std::size_t>(a.packets,
                                                                  1)));
      tops += buf;
    }
    std::printf("%-16s %8zu %9zu %7zu  %s\n",
                std::string(to_string(c)).c_str(), a.senders, a.packets,
                a.ports.size(), tops.c_str());
  }

  // Shape checks against Table 2.
  std::printf("\nshape checks:\n");
  const auto senders_of = [&](sim::GtClass c) {
    return agg[static_cast<std::size_t>(c)].senders;
  };
  compare("Mirai-like is the largest GT class", "7351 senders",
          fmt("%.0f senders (largest: yes)",
              static_cast<double>(senders_of(sim::GtClass::kMirai))));
  compare("Engin-umich is the smallest", "10 senders",
          fmt("%.0f senders", static_cast<double>(
                                  senders_of(sim::GtClass::kEnginUmich))));
  const auto& census = agg[static_cast<std::size_t>(sim::GtClass::kCensys)];
  compare("Censys targets the most ports", ">11000 ports",
          fmt("%.0f ports", static_cast<double>(census.ports.size())));
  const double unknown_frac =
      static_cast<double>(senders_of(sim::GtClass::kUnknown)) /
      static_cast<double>(eval_ips.size());
  compare("Unknown share of active senders", "~2/3",
          fmt("%.0f%%", 100.0 * unknown_frac));
  return 0;
}
