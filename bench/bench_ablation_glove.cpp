// Ablation: Word2Vec skip-gram vs GloVe on the DarkVec corpus. The paper
// discusses Word2Vec-family embeddings and cites GloVe as the other
// standard approach; this bench quantifies the choice on darknet data
// (same corpus, same k-NN evaluation).
#include "common.hpp"

#include "darkvec/net/time.hpp"
#include "darkvec/w2v/glove.hpp"

int main() {
  using namespace darkvec;
  using namespace darkvec::bench;

  banner("Ablation", "skip-gram (SGNS) vs GloVe on the DarkVec corpus");

  const sim::SimResult sim = simulate(/*default_days=*/30);
  const int days = env_or_int("DARKVEC_ABL_DAYS", 10);
  const std::int64_t end = sim.trace.stats().last_ts + 1;
  const net::Trace window =
      sim.trace.slice(end - days * net::kSecondsPerDay, end);
  const auto eval_ips = last_day_active_senders(sim.trace);

  // Shared corpus (domain services, defaults).
  const corpus::DomainServiceMap services;
  const corpus::Corpus corpus = corpus::build_corpus(window, services);
  std::printf("corpus: %zu senders, %zu sentences, %zu tokens (last %d "
              "days)\n\n",
              corpus.vocabulary_size(), corpus.sentences.size(),
              corpus.tokens(), days);

  std::printf("  %-10s %10s %10s %14s\n", "embedder", "accuracy",
              "train [s]", "work/epoch");

  // SGNS.
  w2v::SkipGramOptions sg_options;
  sg_options.epochs = env_or_int("DARKVEC_EPOCHS", 5);
  w2v::SkipGramModel sgns(corpus.vocabulary_size(), sg_options);
  const auto sg_stats = sgns.train(corpus.sentences);
  const auto sg_eval = evaluate_knn_vectors(sgns.embedding(), corpus.words,
                                            sim.labels, eval_ips, 7);
  std::printf("  %-10s %10.3f %10.1f %14llu\n", "SGNS", sg_eval.accuracy,
              sg_stats.seconds,
              static_cast<unsigned long long>(
                  sg_stats.pairs /
                  static_cast<std::uint64_t>(sg_options.epochs)));

  // GloVe.
  w2v::GloveOptions glove_options;
  glove_options.epochs = env_or_int("DARKVEC_GLOVE_EPOCHS", 15);
  w2v::GloveModel glove(corpus.vocabulary_size(), glove_options);
  const auto gl_stats = glove.train(corpus.sentences);
  const auto gl_eval = evaluate_knn_vectors(glove.embedding(), corpus.words,
                                            sim.labels, eval_ips, 7);
  std::printf("  %-10s %10.3f %10.1f %14zu\n", "GloVe", gl_eval.accuracy,
              gl_stats.seconds, glove.nonzero_cells());

  std::printf("\n");
  compare("SGNS vs GloVe on darknet sequences", "SGNS is the paper's choice",
          fmt("%+.3f", sg_eval.accuracy - gl_eval.accuracy));
  return 0;
}
