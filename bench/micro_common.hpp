// Shared main for the google-benchmark micro benches.
//
// run_micro() drives benchmark::RunSpecifiedBenchmarks through a
// collecting reporter and writes a machine-readable
// BENCH_micro_<name>.json next to the table/figure artifacts (honours
// DARKVEC_BENCH_DIR): git revision, the SIMD dispatch level the numbers
// were measured at, every benchmark's adjusted real time, and derived
// speedups.
//
// Speedup convention: a benchmark whose name contains "Scalar" is the
// scalar-forced baseline of the benchmark named by deleting that token
// ("BM_KnnAllPairsBatchScalar/1000/4" baselines
// "BM_KnnAllPairsBatch/1000/4"); the JSON gains
// "speedups": {"BM_KnnAllPairsBatch/1000/4": scalar_time / active_time}.
//
// An optional `extra` hook runs after the benchmarks, contributes named
// scalar values to the artifact (accuracy gates, derived metrics), and
// fails the whole binary by returning false — that is how the int8
// quantization accuracy gate is enforced in CI.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "darkvec/core/parallel.hpp"
#include "darkvec/core/simd/simd.hpp"
#include "darkvec/obs/obs.hpp"

namespace darkvec::bench {

struct MicroResult {
  std::string name;
  double real_time = 0;  // in the benchmark's own time unit
  std::string time_unit;
  double iterations = 0;
};

namespace detail {

class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      results_.push_back({run.benchmark_name(), run.GetAdjustedRealTime(),
                          benchmark::GetTimeUnitString(run.time_unit),
                          static_cast<double>(run.iterations)});
    }
    ConsoleReporter::ReportRuns(runs);
  }

  [[nodiscard]] const std::vector<MicroResult>& results() const {
    return results_;
  }

 private:
  std::vector<MicroResult> results_;
};

}  // namespace detail

using ExtraValues = std::vector<std::pair<std::string, double>>;

/// Runs the registered benchmarks, writes BENCH_micro_<name>.json and
/// returns the process exit code. `extra` (optional) appends named
/// values to the artifact; returning false fails the run AFTER the
/// artifact is written, so the numbers behind a failed gate are kept.
inline int run_micro(const char* name, int argc, char** argv,
                     const std::function<bool(ExtraValues&)>& extra = {}) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  detail::CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  ExtraValues values;
  const bool gate_ok = !extra || extra(values);

  const char* dir = std::getenv("DARKVEC_BENCH_DIR");
  std::string path = dir != nullptr && *dir != '\0' ? dir : ".";
  path += std::string("/BENCH_micro_") + name + ".json";
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
    return 1;
  }
#ifndef DARKVEC_GIT_REV
#define DARKVEC_GIT_REV "unknown"
#endif
  const auto& results = reporter.results();
  out << "{\"schema\":1,\"bench\":\"micro_" << name << "\",\"git_rev\":\""
      << DARKVEC_GIT_REV << "\",\"simd_level\":\""
      << simd::level_name(simd::active_level()) << "\",\"threads\":"
      << core::ThreadPool::global().size() << ",\"results\":[";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const MicroResult& r = results[i];
    out << (i == 0 ? "" : ",") << "{\"name\":\""
        << obs::detail::json_escape(r.name) << "\",\"real_time\":"
        << r.real_time << ",\"time_unit\":\"" << r.time_unit
        << "\",\"iterations\":" << r.iterations << "}";
  }
  out << "],\"speedups\":{";
  bool first = true;
  for (const MicroResult& scalar : results) {
    const std::size_t pos = scalar.name.find("Scalar");
    if (pos == std::string::npos) continue;
    std::string base = scalar.name;
    base.erase(pos, 6);
    for (const MicroResult& active : results) {
      if (active.name != base || active.real_time <= 0) continue;
      out << (first ? "" : ",") << "\""
          << obs::detail::json_escape(base) << "\":"
          << scalar.real_time / active.real_time;
      first = false;
    }
  }
  out << "}";
  if (!values.empty()) {
    out << ",\"extra\":{";
    for (std::size_t i = 0; i < values.size(); ++i) {
      out << (i == 0 ? "" : ",") << "\""
          << obs::detail::json_escape(values[i].first)
          << "\":" << values[i].second;
    }
    out << "}";
  }
  out << ",\"gate_ok\":" << (gate_ok ? "true" : "false") << "}\n";
  std::printf("bench: wrote %s (simd=%s)\n", path.c_str(),
              simd::level_name(simd::active_level()));
  if (!gate_ok) {
    std::fprintf(stderr, "bench: accuracy gate FAILED (see %s)\n",
                 path.c_str());
    return 1;
  }
  return 0;
}

}  // namespace darkvec::bench

/// Drop-in replacement for BENCHMARK_MAIN() that also emits the
/// BENCH_micro_<name>.json artifact.
#define DARKVEC_MICRO_MAIN(name)                        \
  int main(int argc, char** argv) {                     \
    return darkvec::bench::run_micro(name, argc, argv); \
  }
