// Figure 15 narrative, operationalized: the paper reports DarkVec "was
// able to spot some coordinated activity since the beginning of our
// trace" and that the ADB cluster grows as the worm spreads. This bench
// runs the sliding-window streaming pipeline and follows the ADB group
// across retrains: the tracked cluster must appear early and grow.
#include "common.hpp"

#include "darkvec/core/streaming.hpp"
#include "darkvec/net/time.hpp"

int main() {
  using namespace darkvec;
  using namespace darkvec::bench;

  banner("Figure 15 (streaming)", "tracking the ADB worm across retrains");

  const sim::SimResult sim = simulate(/*default_days=*/30);
  StreamingConfig config;
  config.window_seconds = 8 * net::kSecondsPerDay;
  config.step_seconds = 4 * net::kSecondsPerDay;
  config.darkvec = default_config(/*default_epochs=*/4);
  // Shorter windows see fewer packets per sender; relax the activity
  // filter accordingly (8/30 of the monthly threshold).
  config.darkvec.corpus.min_packets = 4;

  const auto snapshots = run_streaming(sim.trace, config);
  std::printf("snapshots: %zu (window %lldd, step %lldd)\n\n",
              snapshots.size(),
              static_cast<long long>(config.window_seconds /
                                     net::kSecondsPerDay),
              static_cast<long long>(config.step_seconds /
                                     net::kSecondsPerDay));

  std::vector<net::IPv4> adb;
  for (const auto& [ip, group] : sim.groups) {
    if (group == "unknown4_adb") adb.push_back(ip);
  }
  const auto tracks = track_group(snapshots, adb);

  std::printf("  %-8s %10s %10s %12s %12s %10s\n", "day", "embedded",
              "together", "cluster", "clusters", "align");
  for (std::size_t i = 0; i < tracks.size(); ++i) {
    const auto day = (tracks[i].window_end - sim.trace.stats().first_ts) /
                     net::kSecondsPerDay;
    std::printf("  %-8lld %10zu %10zu %12zu %12d %10.2f\n",
                static_cast<long long>(day), tracks[i].present,
                tracks[i].clustered_together, tracks[i].cluster_size,
                snapshots[i].clustering.count,
                snapshots[i].alignment_similarity);
  }

  std::printf("\nshape checks:\n");
  compare("worm visible in the first window", "spotted from the beginning",
          tracks.front().clustered_together >= 3
              ? fmt("%.0f senders already clustered",
                    static_cast<double>(tracks.front().clustered_together))
              : std::string("not yet visible"));
  compare("tracked cluster grows with the spread", "increasing size",
          fmt("%.0fx first->last",
              static_cast<double>(tracks.back().clustered_together) /
                  static_cast<double>(std::max<std::size_t>(
                      tracks.front().clustered_together, 1))));
  double worst_align = 1;
  for (std::size_t i = 1; i < snapshots.size(); ++i) {
    worst_align = std::min(worst_align, snapshots[i].alignment_similarity);
  }
  compare("snapshot alignment quality (worst)", "spaces comparable",
          fmt("%.2f anchor cosine", worst_align));
  return 0;
}
