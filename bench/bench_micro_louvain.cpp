// Micro-benchmarks of the Louvain community detection and k-NN graph
// construction — the unsupervised path of Section 7.
#include <benchmark/benchmark.h>

#include "darkvec/graph/knn_graph.hpp"
#include "darkvec/graph/louvain.hpp"
#include "darkvec/sim/rng.hpp"
#include "micro_common.hpp"

namespace {

using darkvec::graph::WeightedGraph;

/// Planted-partition graph: `communities` groups of `size` nodes, dense
/// inside, sparse across.
WeightedGraph planted_partition(std::uint32_t communities,
                                std::uint32_t size, std::uint64_t seed) {
  darkvec::sim::Rng rng(seed);
  const std::uint32_t n = communities * size;
  WeightedGraph g(n);
  for (std::uint32_t u = 0; u < n; ++u) {
    for (int e = 0; e < 8; ++e) {
      const bool internal = rng.uniform() < 0.85;
      std::uint32_t v;
      if (internal) {
        v = (u / size) * size +
            static_cast<std::uint32_t>(rng.uniform_int(size));
      } else {
        v = static_cast<std::uint32_t>(rng.uniform_int(n));
      }
      if (v != u) g.add_edge(u, v, 1.0);
    }
  }
  g.finalize();
  return g;
}

void BM_Louvain(benchmark::State& state) {
  const auto communities = static_cast<std::uint32_t>(state.range(0));
  const WeightedGraph g = planted_partition(communities, 100, 7);
  for (auto _ : state) {
    const auto result = darkvec::graph::louvain(g);
    benchmark::DoNotOptimize(result.count);
  }
  state.counters["nodes"] = static_cast<double>(g.num_nodes());
}

BENCHMARK(BM_Louvain)->Arg(10)->Arg(40)->Arg(100)->Unit(
    benchmark::kMillisecond);

void BM_KnnGraphBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  darkvec::sim::Rng rng(7);
  darkvec::w2v::Embedding e(n, 50);
  for (std::size_t i = 0; i < n; ++i) {
    for (int d = 0; d < 50; ++d) {
      e.vec(i)[static_cast<std::size_t>(d)] =
          static_cast<float>(rng.uniform(-1.0, 1.0));
    }
  }
  const darkvec::ml::CosineKnn index{e};
  for (auto _ : state) {
    const WeightedGraph g = darkvec::graph::knn_graph(index, 3);
    benchmark::DoNotOptimize(g.total_weight());
  }
}

BENCHMARK(BM_KnnGraphBuild)->Arg(1000)->Arg(4000)->Unit(
    benchmark::kMillisecond);

void BM_Modularity(benchmark::State& state) {
  const WeightedGraph g = planted_partition(40, 100, 7);
  const auto result = darkvec::graph::louvain(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        darkvec::graph::modularity(g, result.community));
  }
}

BENCHMARK(BM_Modularity)->Unit(benchmark::kMillisecond);

}  // namespace

DARKVEC_MICRO_MAIN("louvain")
