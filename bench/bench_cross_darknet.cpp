// Section 8, second question: can a model trained on one darknet serve
// another darknet observing the same period? Two /24 vantage points are
// derived from the simulated sender population (Internet-wide scanners
// visible at both, targeted/spoofed traffic at one); embeddings are
// trained independently, aligned over the shared senders, and the k-NN
// labeling task is transferred from darknet A to darknet B.
#include "common.hpp"

#include "darkvec/core/transfer.hpp"
#include "darkvec/sim/vantage.hpp"

int main() {
  using namespace darkvec;
  using namespace darkvec::bench;

  banner("Section 8", "task transfer across two darknets (same period)");
  std::printf("paper: open question — darknets \"could have little overlap "
              "in terms of sources\";\nthe anchor overlap governs how well "
              "spaces can be aligned.\n\n");

  const sim::SimResult sim = simulate(/*default_days=*/30);

  std::printf("  %-12s %8s %10s %10s %12s\n", "overlap p", "anchors",
              "aligned", "raw", "anchor-cos");
  for (const double p_both : {0.2, 0.5, 0.8}) {
    sim::VantageOptions options;
    options.both_probability = p_both;
    const sim::VantageSplit split =
        sim::split_vantage_points(sim.trace, options);

    DarkVecConfig config = default_config(/*default_epochs=*/5);
    // Each vantage point sees roughly half the packets per sender.
    config.corpus.min_packets = 5;
    DarkVec dv_a(config);
    dv_a.fit(split.darknet_a);
    config.w2v.seed = 4242;  // independent latent space
    DarkVec dv_b(config);
    dv_b.fit(split.darknet_b);

    const TransferResult transfer =
        evaluate_transfer(dv_a.corpus(), dv_a.embedding(), dv_b.corpus(),
                          dv_b.embedding(), sim.labels, 7);
    std::printf("  %-12.1f %8zu %10.3f %10.3f %12.2f\n", p_both,
                transfer.alignment.anchors, transfer.accuracy,
                transfer.accuracy_raw,
                transfer.alignment.anchor_similarity);
  }

  std::printf(
      "\nexpected shape: alignment beats raw cross-space transfer by a wide "
      "margin at every\noverlap level. Note the high-overlap caveat: with "
      "most senders shared, the only\nsenders left to *transfer* are the "
      "sparse hard ones, so the evaluated accuracy can\ndip even though "
      "alignment quality is unchanged (the paper's 'little overlap' "
      "concern\ncuts both ways).\n");
  return 0;
}
