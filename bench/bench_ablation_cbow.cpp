// Ablation: skip-gram vs CBOW (Appendix A.1 presents both Word2Vec
// architectures; DarkVec adopts skip-gram, which "provides excellent
// results when looking for embeddings that efficiently predict the next
// word", Section 5.3). This bench quantifies the choice.
#include "common.hpp"

#include "darkvec/net/time.hpp"

int main() {
  using namespace darkvec;
  using namespace darkvec::bench;

  banner("Ablation", "skip-gram vs CBOW architecture");

  const sim::SimResult sim = simulate(/*default_days=*/30);
  const int days = env_or_int("DARKVEC_ABL_DAYS", 10);
  const std::int64_t end = sim.trace.stats().last_ts + 1;
  const net::Trace window =
      sim.trace.slice(end - days * net::kSecondsPerDay, end);
  const auto eval_ips = last_day_active_senders(sim.trace);
  std::printf("window: last %d days (%zu packets)\n\n", days, window.size());

  std::printf("  %-12s %10s %10s %14s\n", "architecture", "accuracy",
              "train [s]", "pairs/epoch");
  double acc[2] = {};
  for (const bool cbow : {false, true}) {
    DarkVecConfig config = default_config(/*default_epochs=*/5);
    config.w2v.cbow = cbow;
    DarkVec dv(config);
    const auto stats = dv.fit(window);
    const auto eval = evaluate_knn(dv, sim.labels, eval_ips, 7);
    acc[cbow ? 1 : 0] = eval.accuracy;
    std::printf("  %-12s %10.3f %10.1f %14llu\n",
                cbow ? "CBOW" : "skip-gram", eval.accuracy, stats.seconds,
                static_cast<unsigned long long>(
                    stats.pairs / static_cast<std::uint64_t>(
                                      config.w2v.epochs)));
  }
  std::printf("\n");
  compare("skip-gram vs CBOW accuracy", "skip-gram chosen by the paper",
          fmt("%+.3f", acc[0] - acc[1]));
  return 0;
}
