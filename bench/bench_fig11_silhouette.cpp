// Figure 11: average silhouette of the senders within each Louvain cluster
// (k'=3), ranked by decreasing value, with notable clusters called out.
#include "common.hpp"

#include <algorithm>

#include "darkvec/core/inspector.hpp"
#include "darkvec/ml/silhouette.hpp"

int main() {
  using namespace darkvec;
  using namespace darkvec::bench;

  banner("Figure 11", "ranked per-cluster average silhouette (k'=3)");
  std::printf("paper: >half the clusters above 0.5; a tail of noisy "
              "clusters with negative\nsilhouette; markers call out Censys, "
              "Shadowserver, the ADB worm and Mirai-like.\n\n");

  const sim::SimResult sim = simulate(/*default_days=*/30);
  DarkVec dv(default_config(/*default_epochs=*/5));
  dv.fit(sim.trace);
  const Clustering clustering = dv.cluster(3);
  const auto samples =
      ml::silhouette_samples(dv.embedding(), clustering.assignment);
  const auto clusters = inspect_clusters(sim.trace, dv.corpus(),
                                         clustering.assignment, sim.groups,
                                         samples);

  // Rank by silhouette.
  std::vector<const ClusterInfo*> ranked;
  for (const auto& c : clusters) ranked.push_back(&c);
  std::ranges::sort(ranked, [](const ClusterInfo* a, const ClusterInfo* b) {
    return a->silhouette > b->silhouette;
  });

  std::printf("  %-5s %-5s %6s %9s  %s\n", "rank", "id", "IPs", "avg sil",
              "dominant group");
  std::size_t above_half = 0;
  std::size_t negative = 0;
  for (std::size_t r = 0; r < ranked.size(); ++r) {
    const ClusterInfo& c = *ranked[r];
    if (c.silhouette > 0.5) ++above_half;
    if (c.silhouette < 0) ++negative;
    std::printf("  %-5zu C%-4d %6zu %9.2f  %s (%.0f%%)\n", r + 1, c.id,
                c.size(), c.silhouette, c.dominant_group.c_str(),
                100.0 * c.dominant_fraction);
  }

  std::printf("\nshape checks:\n");
  compare("clusters with silhouette > 0.5", "more than half",
          fmt("%.0f%%", 100.0 * static_cast<double>(above_half) /
                            static_cast<double>(ranked.size())));
  compare("noisy tail with low/negative silhouette", "present",
          fmt("%.0f clusters <= 0", static_cast<double>(negative)));

  // The paper's marked clusters: ADB worm near the top, Mirai-like near
  // the bottom (Sh 1.00 vs 0.08 in Table 5).
  double adb = -2;
  double mirai = 2;
  for (const auto& c : clusters) {
    if (c.dominant_group == "unknown4_adb") adb = std::max(adb, c.silhouette);
    if (c.dominant_group == "mirai" && c.size() > 20) {
      mirai = std::min(mirai, c.silhouette);
    }
  }
  compare("ADB worm cluster silhouette", "1.00 (top)",
          adb > -2 ? fmt("%.2f", adb)
                   : std::string("no dominated cluster at this profile"));
  compare("worst large Mirai-like cluster silhouette", "0.08 (bottom)",
          mirai < 2 ? fmt("%.2f", mirai)
                    : std::string("no large Mirai cluster at this profile"));
  return 0;
}
