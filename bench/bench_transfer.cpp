// Section 8 exploration: transfer of the embedding and of learned tasks
// across time windows. The paper leaves this as an open question ("the
// evolving nature of darknet traffic would hardly make the transfer
// possible over time"); this bench quantifies it on the simulated trace:
// train two independent embeddings on the two halves of the month, align
// them with orthogonal Procrustes over the shared senders, and transfer
// the k-NN labeling task from the first half to the second.
#include "common.hpp"

#include "darkvec/core/transfer.hpp"
#include "darkvec/net/time.hpp"

int main() {
  using namespace darkvec;
  using namespace darkvec::bench;

  banner("Section 8", "embedding and task transfer across time windows");
  std::printf("paper: open question — transfer expected to be hard over "
              "time; alignment over\nshared senders is the natural first "
              "attempt (cf. Mikolov et al. 2013b for languages).\n\n");

  const sim::SimResult sim = simulate(/*default_days=*/30);
  const std::int64_t t0 = sim.trace.stats().first_ts;
  const std::int64_t mid = t0 + 15 * net::kSecondsPerDay;
  const net::Trace first_half = sim.trace.slice(t0, mid);
  const net::Trace second_half =
      sim.trace.slice(mid, sim.trace.stats().last_ts + 1);

  DarkVecConfig config = default_config(/*default_epochs=*/5);
  DarkVec dv1(config);
  dv1.fit(first_half);
  config.w2v.seed = 777;  // independent latent space
  DarkVec dv2(config);
  dv2.fit(second_half);
  std::printf("first half: %zu senders embedded; second half: %zu\n",
              dv1.corpus().vocabulary_size(),
              dv2.corpus().vocabulary_size());

  const TransferResult transfer =
      evaluate_transfer(dv1.corpus(), dv1.embedding(), dv2.corpus(),
                        dv2.embedding(), sim.labels, 7);
  std::printf("anchors (senders in both halves): %zu, anchor cosine after "
              "alignment: %.3f\n",
              transfer.alignment.anchors,
              transfer.alignment.anchor_similarity);
  std::printf("task transfer (label second-half senders from first-half "
              "labels):\n");
  std::printf("  %-34s %8.3f  (%zu senders)\n",
              "accuracy with Procrustes alignment", transfer.accuracy,
              transfer.evaluated);
  std::printf("  %-34s %8.3f\n", "accuracy without alignment",
              transfer.accuracy_raw);

  // Reference: an embedding trained on the full month scores these same
  // "new" senders much better — transfer degrades, as Section 8 expects.
  DarkVec dv_full(default_config(/*default_epochs=*/5));
  dv_full.fit(sim.trace);
  std::vector<net::IPv4> new_labeled;
  for (const net::IPv4 ip : dv2.corpus().words) {
    if (sim::label_of(sim.labels, ip) == sim::GtClass::kUnknown) continue;
    if (dv1.corpus().id_of(ip) != corpus::Corpus::kNoWord) continue;
    new_labeled.push_back(ip);
  }
  const auto full_eval = evaluate_knn(dv_full, sim.labels, new_labeled, 7);
  std::printf("  %-34s %8.3f  (retrain on the full month)\n",
              "reference: joint training", full_eval.accuracy);

  std::printf("\nshape checks:\n");
  compare("alignment beats raw cross-space k-NN", "required",
          fmt("%+.3f", transfer.accuracy - transfer.accuracy_raw));
  compare("transfer below joint training", "transfer degrades (Sec. 8)",
          fmt("%+.3f", transfer.accuracy - full_eval.accuracy));
  return 0;
}
