// Micro-benchmarks of the IVF approximate k-NN index against the exact
// batch engine, on clustered data shaped like a trained DarkVec
// embedding (senders form tight behavioural clusters). Sweeps nprobe to
// trace the recall-vs-speedup curve, then enforces the operating-point
// gate in the artifact: recall@10 >= 0.95 with >= 5x fewer rows scanned
// per query than the exhaustive scan at the index's default nprobe.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <vector>

#include "darkvec/core/parallel.hpp"
#include "darkvec/core/simd/simd.hpp"
#include "darkvec/ml/ann.hpp"
#include "darkvec/ml/knn.hpp"
#include "darkvec/obs/obs.hpp"
#include "darkvec/sim/rng.hpp"
#include "micro_common.hpp"

namespace {

constexpr std::size_t kRows = 4096;
constexpr int kDim = 50;
constexpr std::size_t kCenters = 48;
constexpr int kNlist = 64;
constexpr int kTopK = 10;

darkvec::w2v::Embedding clustered_embedding(std::size_t n, int dim,
                                            std::size_t centers,
                                            std::uint64_t seed) {
  darkvec::sim::Rng rng(seed);
  std::vector<std::vector<float>> proto(
      centers, std::vector<float>(static_cast<std::size_t>(dim)));
  for (auto& c : proto) {
    double norm2 = 0;
    for (auto& v : c) {
      v = static_cast<float>(rng.uniform(-1.0, 1.0));
      norm2 += double{v} * v;
    }
    const auto inv = static_cast<float>(1.0 / std::sqrt(norm2));
    for (auto& v : c) v *= inv;
  }
  darkvec::w2v::Embedding e(n, dim);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& c = proto[i % centers];
    for (int d = 0; d < dim; ++d) {
      e.vec(i)[static_cast<std::size_t>(d)] =
          c[static_cast<std::size_t>(d)] +
          static_cast<float>(rng.uniform(-0.05, 0.05));
    }
  }
  return e;
}

const darkvec::w2v::Embedding& embedding() {
  static const darkvec::w2v::Embedding e =
      clustered_embedding(kRows, kDim, kCenters, 7);
  return e;
}

const darkvec::w2v::Embedding& unit_embedding() {
  static const darkvec::w2v::Embedding u = embedding().normalized();
  return u;
}

const darkvec::ml::IvfIndex& ivf_index() {
  static const darkvec::ml::IvfIndex index = [] {
    darkvec::ml::IvfOptions options;
    options.nlist = kNlist;
    options.nprobe = 8;
    return darkvec::ml::IvfIndex::build(unit_embedding(), options);
  }();
  return index;
}

std::vector<std::uint32_t> all_points() {
  std::vector<std::uint32_t> points(kRows);
  for (std::size_t i = 0; i < kRows; ++i) {
    points[i] = static_cast<std::uint32_t>(i);
  }
  return points;
}

void BM_AnnBuild(benchmark::State& state) {
  const auto& unit = unit_embedding();
  darkvec::ml::IvfOptions options;
  options.nlist = kNlist;
  for (auto _ : state) {
    const auto index = darkvec::ml::IvfIndex::build(unit, options);
    benchmark::DoNotOptimize(index.size());
  }
  state.counters["rows"] = static_cast<double>(kRows);
}

BENCHMARK(BM_AnnBuild)->Unit(benchmark::kMillisecond);

// All-queries workload (the k'-NN graph shape) at a swept nprobe.
void BM_AnnQueries(benchmark::State& state) {
  const auto& index = ivf_index();
  const auto points = all_points();
  const auto nprobe = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const auto all = index.query_batch(points, kTopK, nprobe);
    benchmark::DoNotOptimize(all.data());
  }
  state.counters["rows_per_query"] =
      index.expected_rows_scanned(nprobe);
  state.counters["threads"] =
      static_cast<double>(darkvec::core::ThreadPool::global().size());
}

BENCHMARK(BM_AnnQueries)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMillisecond);

// Scalar-forced twin at the default operating point: the before/after
// pair behind the artifact's speedups section.
void BM_AnnQueriesScalar(benchmark::State& state) {
  darkvec::simd::ScopedLevel scoped(darkvec::simd::Level::kScalar);
  const auto& index = ivf_index();
  const auto points = all_points();
  const auto nprobe = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const auto all = index.query_batch(points, kTopK, nprobe);
    benchmark::DoNotOptimize(all.data());
  }
}

BENCHMARK(BM_AnnQueriesScalar)->Arg(8)->Unit(benchmark::kMillisecond);

// The exact batch engine on the same workload: the wall-clock baseline
// the IVF path must beat.
void BM_ExactQueries(benchmark::State& state) {
  const darkvec::ml::CosineKnn index{embedding()};
  const auto points = all_points();
  for (auto _ : state) {
    const auto all = index.query_batch(points, kTopK);
    benchmark::DoNotOptimize(all.data());
  }
  state.counters["rows_per_query"] = static_cast<double>(kRows);
}

BENCHMARK(BM_ExactQueries)->Unit(benchmark::kMillisecond);

/// Recall@k and measured scan reduction per nprobe; gates the default
/// operating point. Runs after the benchmarks so the artifact keeps the
/// curve even when the gate fails.
bool ann_gate(darkvec::bench::ExtraValues& values) {
  const darkvec::ml::CosineKnn exact{embedding()};
  const auto& index = ivf_index();
  const auto points = all_points();
  const auto truth = exact.query_batch(points, kTopK);

  auto& rows_counter = darkvec::obs::counter(darkvec::obs::names::kAnnCandidatesScanned);
  bool ok = true;
  for (const int nprobe : {1, 2, 4, 8, 16, 32}) {
    const auto before = rows_counter.value();
    const auto approx = index.query_batch(points, kTopK, nprobe);
    const auto scanned = rows_counter.value() - before;
    double hits = 0;
    double total = 0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      for (const auto& nb : approx[i]) {
        for (const auto& ref : truth[i]) {
          if (ref.index == nb.index) {
            hits += 1;
            break;
          }
        }
      }
      total += static_cast<double>(truth[i].size());
    }
    const double recall = hits / total;
    // Rows touched per query: the probed lists plus the centroid pass.
    const double rows_per_query =
        static_cast<double>(scanned) / static_cast<double>(kRows) +
        static_cast<double>(index.nlist());
    const double reduction = static_cast<double>(kRows) / rows_per_query;
    const std::string suffix = "_nprobe_" + std::to_string(nprobe);
    values.emplace_back("recall_at_10" + suffix, recall);
    values.emplace_back("scan_reduction" + suffix, reduction);
    if (nprobe == index.default_nprobe()) {
      values.emplace_back("gate_recall_at_10", recall);
      values.emplace_back("gate_scan_reduction", reduction);
      if (recall < 0.95 || reduction < 5.0) {
        std::fprintf(stderr,
                     "ann gate: nprobe=%d recall@10=%.4f (need >= 0.95) "
                     "scan_reduction=%.2fx (need >= 5x)\n",
                     nprobe, recall, reduction);
        ok = false;
      }
    }
  }
  values.emplace_back("default_nprobe",
                      static_cast<double>(index.default_nprobe()));
  values.emplace_back("nlist", static_cast<double>(index.nlist()));
  values.emplace_back("rows", static_cast<double>(kRows));
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  return darkvec::bench::run_micro("ann", argc, argv, ann_gate);
}
