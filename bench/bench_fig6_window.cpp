// Figure 6: impact of the training window length on coverage (and, per
// Section 6.2.1, the small accompanying accuracy change).
#include "common.hpp"

#include "darkvec/net/time.hpp"

int main() {
  using namespace darkvec;
  using namespace darkvec::bench;

  banner("Figure 6", "coverage vs training window length");
  std::printf("paper: coverage grows from ~35%% (1 day) through 82%% "
              "(5 days) to 100%% (30 days);\naccuracy changes by only ~3%% "
              "between 5 and 30 days.\n\n");

  const sim::SimResult sim = simulate(/*default_days=*/30);
  const auto eval_ips = last_day_active_senders(sim.trace);
  const std::int64_t end = sim.trace.stats().last_ts + 1;

  std::printf("  %-6s %10s %10s\n", "days", "coverage", "accuracy");
  double cov1 = 0;
  double cov30 = 0;
  for (const int days : {1, 5, 10, 20, 30}) {
    const net::Trace window =
        sim.trace.slice(end - days * net::kSecondsPerDay, end);
    DarkVec dv(default_config(/*default_epochs=*/5));
    dv.fit(window);
    const auto eval = evaluate_knn(dv, sim.labels, eval_ips, 7);
    std::printf("  %-6d %9.1f%% %10.3f\n", days, 100.0 * eval.coverage(),
                eval.accuracy);
    if (days == 1) cov1 = eval.coverage();
    if (days == 30) cov30 = eval.coverage();
  }

  std::printf("\n");
  compare("coverage at 30 days", "100%", fmt("%.0f%%", 100.0 * cov30));
  char growth[64];
  std::snprintf(growth, sizeof(growth), "%.0f%% -> %.0f%%", 100.0 * cov1,
                100.0 * cov30);
  compare("coverage grows with window", "35% -> 100%", growth);
  return 0;
}
