// Figure 8: grid search over the context window c and the embedding size V
// — accuracy (top matrices) and training time (bottom matrices) for the
// auto-defined and domain-knowledge service definitions.
//
// Paper finding: neither c nor V changes accuracy much (all cells
// 0.93-0.96); training time grows roughly linearly with c and mildly
// with V, so the paper picks c=25, V=50.
//
// This is the most expensive bench (2 strategies x 4 x 4 trainings); it
// defaults to a 10-day window and 3 epochs. Override with DARKVEC_DAYS /
// DARKVEC_EPOCHS for the full sweep.
#include "common.hpp"

#include <cmath>

#include "darkvec/net/time.hpp"

int main() {
  using namespace darkvec;
  using namespace darkvec::bench;

  banner("Figure 8", "grid search on c and V: accuracy and training time");
  std::printf("paper: accuracy 0.93-0.96 everywhere; runtime grows with c "
              "(0.3h at c=5 to ~4h at c=75)\nand mildly with V; domain "
              "services slightly cheaper than auto.\n\n");

  const sim::SimResult sim = simulate(/*default_days=*/30);
  const int days = env_or_int("DARKVEC_GRID_DAYS", 10);
  const std::int64_t end = sim.trace.stats().last_ts + 1;
  const net::Trace window =
      sim.trace.slice(end - days * net::kSecondsPerDay, end);
  const auto eval_ips = last_day_active_senders(sim.trace);
  std::printf("grid window: last %d days (%zu packets), %d epochs\n\n", days,
              window.size(), env_or_int("DARKVEC_EPOCHS", 3));

  const int cs[] = {5, 25, 50, 75};
  const int vs[] = {50, 100, 150, 200};

  for (const auto strategy :
       {corpus::ServiceStrategy::kAuto, corpus::ServiceStrategy::kDomain}) {
    std::printf("---- %s services ----\n",
                std::string(to_string(strategy)).c_str());
    double accuracy[4][4];
    double seconds[4][4];
    for (int vi = 0; vi < 4; ++vi) {
      for (int ci = 0; ci < 4; ++ci) {
        DarkVecConfig config = default_config(/*default_epochs=*/3);
        config.services = strategy;
        config.w2v.window = cs[ci];
        config.w2v.dim = vs[vi];
        // Equalize the training budget across cells: with fixed epochs a
        // larger window c trains ~c/25 times more pairs, which would
        // conflate the c-effect with under-training. Scale epochs so every
        // cell sees a comparable number of pair updates (the paper's flat
        // accuracy matrix presumes converged cells).
        config.w2v.epochs = std::max(
            1, static_cast<int>(std::lround(config.w2v.epochs * 25.0 /
                                            cs[ci])));
        DarkVec dv(config);
        const auto stats = dv.fit(window);
        // Per-epoch time: the paper's runtime matrix holds epochs fixed,
        // so its growth with c is the per-epoch cost growth.
        seconds[vi][ci] = stats.seconds /
                          static_cast<double>(config.w2v.epochs);
        accuracy[vi][ci] =
            evaluate_knn(dv, sim.labels, eval_ips, 7).accuracy;
      }
    }
    std::printf("  accuracy (rows V, cols c):\n        ");
    for (const int c : cs) std::printf(" c=%-5d", c);
    std::printf("\n");
    for (int vi = 3; vi >= 0; --vi) {
      std::printf("  V=%-4d", vs[vi]);
      for (int ci = 0; ci < 4; ++ci) {
        std::printf(" %7.3f", accuracy[vi][ci]);
      }
      std::printf("\n");
    }
    std::printf("  training time per epoch [s]:\n        ");
    for (const int c : cs) std::printf(" c=%-5d", c);
    std::printf("\n");
    for (int vi = 3; vi >= 0; --vi) {
      std::printf("  V=%-4d", vs[vi]);
      for (int ci = 0; ci < 4; ++ci) {
        std::printf(" %7.1f", seconds[vi][ci]);
      }
      std::printf("\n");
    }
    // Shape checks per strategy.
    // The embedding size V does not matter (paper: "neither c nor V
    // significantly impacts average accuracy"). The c direction is fully
    // testable only at the paper's data volume: at 1:20 simulated packet
    // rates the grid sits in a small-data regime where more passes over
    // fewer, tighter contexts win — see bench_ablation_negatives' epoch
    // sweep. We therefore check V-flatness exactly and report the
    // c-range as the (documented) data-regime effect.
    double v_spread = 0;
    for (int ci = 0; ci < 4; ++ci) {
      double lo = 1;
      double hi = 0;
      for (int vi = 0; vi < 4; ++vi) {
        lo = std::min(lo, accuracy[vi][ci]);
        hi = std::max(hi, accuracy[vi][ci]);
      }
      v_spread = std::max(v_spread, hi - lo);
    }
    compare("accuracy spread across V (any c)", "<= 0.03 (V is not critical)",
            fmt("%.3f", v_spread));
    double c_lo = 1;
    double c_hi = 0;
    for (int ci = 0; ci < 4; ++ci) {
      c_lo = std::min(c_lo, accuracy[0][ci]);
      c_hi = std::max(c_hi, accuracy[0][ci]);
    }
    compare("accuracy range across c (V=50)",
            "flat at paper data volume; data-regime effect here",
            fmt("%.3f", c_hi - c_lo));
    compare("per-epoch runtime ratio c=75 vs c=5 (V=50)", "~10x",
            fmt("%.1fx", seconds[0][3] / std::max(seconds[0][0], 1e-9)));
    std::printf("\n");
  }
  return 0;
}
