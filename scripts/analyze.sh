#!/usr/bin/env bash
# Single entry point for every static-analysis gate. CI, check.sh and
# `ctest -L static` all route through the same commands, so a finding
# reproduces identically everywhere:
#
#   1. darkvec_lint  --self-test, then the tree   (line-level rules)
#   2. dvanalyze     --self-test, then the tree   (AST-level rules,
#      libclang backend when the bindings are installed, the built-in
#      structural parser otherwise; gates against tools/dvanalyze/
#      baseline.json, which is empty — the tree is clean)
#   3. cppcheck with the pinned suppression file  (skipped with a
#      notice when the binary is absent)
#   4. clang-tidy via the build tree's `tidy` target when a build
#      directory with compile_commands.json exists (the target itself
#      no-ops with a notice when clang-tidy is absent)
#
# Exit: non-zero on any unsuppressed finding. Missing optional tools
# skip their leg loudly instead of failing, so the script is useful on
# minimal containers and strict on fully-provisioned CI runners.
set -euo pipefail

cd "$(dirname "$0")/.."

run() {
  echo
  echo "==> $*"
  "$@"
}

run python3 tools/darkvec_lint.py --self-test
run python3 tools/darkvec_lint.py --root .

run python3 tools/dvanalyze --self-test
run python3 tools/dvanalyze --root .

echo
echo "==> python3 tools/run_cppcheck.py --root ."
rc=0
python3 tools/run_cppcheck.py --root . || rc=$?
if [[ "${rc}" == 127 ]]; then
  echo "analyze.sh: cppcheck leg SKIPPED (binary not installed)"
elif [[ "${rc}" != 0 ]]; then
  exit "${rc}"
fi

# clang-tidy rides on whichever build tree exported compile_commands.
for build_dir in build-check build; do
  if [[ -f "${build_dir}/compile_commands.json" ]]; then
    run cmake --build "${build_dir}" --target tidy
    break
  fi
done

echo
echo "analyze.sh: all static-analysis gates passed"
