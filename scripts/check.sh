#!/usr/bin/env bash
# Full static + dynamic verification sweep. Mirrors what CI should run:
#
#   1. warnings-as-errors build + entire test suite (contracts = throw)
#   2. scalar parity: the full suite again with DARKVEC_SIMD=off, so the
#      dispatch layer's bit-identity contract is exercised end to end
#   3. static analysis via scripts/analyze.sh: project lint, the
#      dvanalyze semantic analyzer (self-tests, then the tree against
#      its empty baseline), cppcheck and clang-tidy when installed
#   4. obs smoke: CLI --metrics-out/--trace-out JSON validated with python
#   5. health smoke: a short CLI `stream` replay over the simulated
#      trace, with health_report.json schema-validated with python
#   6. ThreadSanitizer build + perf-smoke + obs tests (parallel kernels)
#   7. ASan+UBSan build + io-fuzz, simd kernel, ann index and obs/health
#      tests (byte-level readers, every vector code path, the IVF
#      candidate-scan pointer arithmetic and the drift-monitor
#      bookkeeping), plus the chaos interrupt matrix: ~100 deterministic
#      cancel/deadline/kill variants must leave valid-or-absent
#      artifacts and leak nothing under ASan
#
# Each configuration uses its own build directory so the sweep never
# clobbers a developer's ./build. compile_commands.json is exported from
# the primary build for clang-tidy and editors.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 2)"

run() {
  echo
  echo "==> $*"
  "$@"
}

# 1. Primary: -Werror, full suite.
run cmake -B build-check -S . -DDARKVEC_WERROR=ON
run cmake --build build-check -j "${JOBS}"
run ctest --test-dir build-check --output-on-failure -j "${JOBS}"

# 2. Scalar parity: the same binaries forced off the vector kernels must
# pass every determinism and batch-vs-serial oracle unchanged.
run env DARKVEC_SIMD=off ctest --test-dir build-check \
  --output-on-failure -j "${JOBS}"

# 3. Static rules: lint, dvanalyze, cppcheck and clang-tidy all route
# through the single analyze.sh entry point (optional tools skip loudly).
test -f build-check/compile_commands.json \
  || { echo "FAIL: compile_commands.json was not exported"; exit 1; }
run bash scripts/analyze.sh

# 4. obs smoke: the observability flags must produce valid JSON with the
# pipeline's counters, and a Perfetto-loadable trace, end to end.
OBS_TMP="$(mktemp -d)"
trap 'rm -rf "${OBS_TMP}"' EXIT
run ./build-check/tools/darkvec simulate --out "${OBS_TMP}" --days 2 \
  --scale 0.05 --seed 7
run ./build-check/tools/darkvec train --trace "${OBS_TMP}/darknet_trace.csv" \
  --out "${OBS_TMP}/model" --epochs 2 --threads 2 --log-json \
  --metrics-out "${OBS_TMP}/m.json" --trace-out "${OBS_TMP}/t.json" \
  2> "${OBS_TMP}/log.jsonl"
run ./build-check/tools/darkvec cluster --trace "${OBS_TMP}/darknet_trace.csv" \
  --epochs 2 --metrics-out "${OBS_TMP}/mc.json" > /dev/null
run python3 - "${OBS_TMP}" <<'PY'
import json, sys
tmp = sys.argv[1]
m = json.load(open(f"{tmp}/m.json"))
for key in ("io.records_read", "w2v.tokens", "w2v.pairs"):
    assert key in m["counters"], f"missing counter {key} in train metrics"
mc = json.load(open(f"{tmp}/mc.json"))
for prefix in ("io.", "w2v.", "knn.", "louvain."):
    assert any(k.startswith(prefix) for k in mc["counters"]), \
        f"no {prefix} counter in cluster metrics"
t = json.load(open(f"{tmp}/t.json"))
events = t["traceEvents"]
assert events and all(e["ph"] == "X" for e in events)
assert len({e["tid"] for e in events}) > 1, "expected worker-thread spans"
for line in open(f"{tmp}/log.jsonl"):
    if line.startswith("{"):
        json.loads(line)
print(f"obs-smoke OK: {len(events)} spans, "
      f"{len(m['counters'])}+{len(mc['counters'])} counters, logs parse")
PY

# 5. health smoke: a sliding-window replay with the drift monitor on
# must emit a schema-valid health report whose alert totals reconcile.
run ./build-check/tools/darkvec stream --trace "${OBS_TMP}/darknet_trace.csv" \
  --window-days 1 --step-days 1 --epochs 2 --threads 2 \
  --health-thresholds "warmup=2,k=5" \
  --health-out "${OBS_TMP}/health_report.json"
run python3 - "${OBS_TMP}" <<'PY'
import json, sys
tmp = sys.argv[1]
r = json.load(open(f"{tmp}/health_report.json"))
assert r["schema"] == 1, f"unexpected schema {r['schema']}"
for key in ("max_vocab_churn", "min_neighbor_overlap", "warmup_windows",
            "overlap_k", "min_cluster_size"):
    assert key in r["thresholds"], f"missing threshold {key}"
assert r["thresholds"]["warmup_windows"] == 2, "--health-thresholds ignored"
assert r["thresholds"]["overlap_k"] == 5, "--health-thresholds ignored"
windows = r["windows"]
assert windows, "health report has no windows"
alerts = 0
for w in windows:
    if w["degraded"]:
        assert w["degraded_reason"], "degraded window without a reason"
    else:
        for key in ("vocab", "neighbor_overlap", "silhouette",
                    "cluster_drift"):
            assert key in w, f"window missing {key}"
        assert w["vocab"]["current"] == w["senders"]
    alerts += len(w["alerts"])
assert r["alerts_total"] == alerts, "alerts_total does not reconcile"
first = next((w for w in windows if not w["degraded"]), None)
assert first is not None, "every window degraded in the health smoke"
print(f"health-smoke OK: {len(windows)} windows, {alerts} alerts, "
      f"{first['senders']} senders in first good window")
PY

# 6. TSan smoke over the threaded kernels and the obs layer (covers the
# dispatch singleton and the quantized-index once_flag via perf-smoke).
run cmake -B build-tsan -S . -DDARKVEC_SANITIZE=thread
run cmake --build build-tsan -j "${JOBS}"
run ctest --test-dir build-tsan -L 'perf-smoke|obs' --output-on-failure

# 7. ASan+UBSan smoke over the hostile-input readers, the SIMD kernel
# parity suite (every dispatch level, quantization round-trips), the
# IVF approximate index (tile scans, DVAI loads, truncation recovery),
# the obs/health suite (the drift monitor's sub-embedding and
# cluster-matching bookkeeping is exactly the kind of index arithmetic
# ASan exists for) and the chaos interrupt matrix — every
# cancel/deadline/SIGKILL variant exercises unwinding through training
# and query hot loops, so running it under ASan is what turns "the test
# passed" into "and it freed every allocation on the way out".
run cmake -B build-ubsan -S . -DDARKVEC_SANITIZE=address,undefined
run cmake --build build-ubsan -j "${JOBS}"
run ctest --test-dir build-ubsan -L 'io-fuzz|simd|ann|chaos|obs' \
  --output-on-failure

echo
echo "check.sh: all gates passed"
