#!/usr/bin/env bash
# Full static + dynamic verification sweep. Mirrors what CI should run:
#
#   1. warnings-as-errors build + entire test suite (contracts = throw)
#   2. project lint (self-test, then the tree) and clang-tidy (if present)
#   3. ThreadSanitizer build + perf-smoke tests (the parallel kernels)
#   4. UBSan build + io-fuzz tests (the byte-level readers)
#
# Each configuration uses its own build directory so the sweep never
# clobbers a developer's ./build. compile_commands.json is exported from
# the primary build for clang-tidy and editors.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 2)"

run() {
  echo
  echo "==> $*"
  "$@"
}

# 1. Primary: -Werror, full suite.
run cmake -B build-check -S . -DDARKVEC_WERROR=ON
run cmake --build build-check -j "${JOBS}"
run ctest --test-dir build-check --output-on-failure -j "${JOBS}"

# 2. Static rules.
run python3 tools/darkvec_lint.py --self-test
run python3 tools/darkvec_lint.py --root .
run cmake --build build-check --target tidy

test -f build-check/compile_commands.json \
  || { echo "FAIL: compile_commands.json was not exported"; exit 1; }

# 3. TSan smoke over the threaded kernels.
run cmake -B build-tsan -S . -DDARKVEC_SANITIZE=thread
run cmake --build build-tsan -j "${JOBS}"
run ctest --test-dir build-tsan -L perf-smoke --output-on-failure

# 4. UBSan smoke over the hostile-input readers.
run cmake -B build-ubsan -S . -DDARKVEC_SANITIZE=undefined
run cmake --build build-ubsan -j "${JOBS}"
run ctest --test-dir build-ubsan -L io-fuzz --output-on-failure

echo
echo "check.sh: all gates passed"
