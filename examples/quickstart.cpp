// Quickstart: simulate a small darknet trace, train a DarkVec embedding,
// and look at what the latent space learned.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "darkvec/core/darkvec.hpp"
#include "darkvec/core/semi_supervised.hpp"
#include "darkvec/sim/scenario.hpp"
#include "darkvec/sim/simulator.hpp"

int main() {
  using namespace darkvec;

  // 1. Synthesize one week of darknet traffic: a Telnet botnet, a scanner
  //    team and background noise.
  sim::SimConfig sim_config;
  sim_config.days = 7;
  sim_config.seed = 42;
  sim::DarknetSimulator simulator(sim_config);
  const auto scenario = sim::tiny_scenario();
  sim::SimResult sim = simulator.run(scenario);
  std::printf("trace: %zu packets from %zu senders\n", sim.trace.size(),
              sim.trace.stats().sources);

  // 2. Train the embedding (domain-knowledge services, defaults).
  DarkVecConfig config;
  config.w2v.epochs = 10;
  config.w2v.seed = 7;
  DarkVec dv(config);
  const auto stats = dv.fit(sim.trace);
  std::printf("corpus: %zu senders, %zu sentences, %zu tokens\n",
              dv.corpus().vocabulary_size(), dv.corpus().sentences.size(),
              dv.corpus().tokens());
  std::printf("training: %llu skip-gram pairs in %.2fs\n",
              static_cast<unsigned long long>(stats.pairs), stats.seconds);

  // 3. Semi-supervised check: can cosine 7-NN recover the labels?
  const auto eval_ips = last_day_active_senders(sim.trace);
  const auto eval = evaluate_knn(dv, sim.labels, eval_ips, /*k=*/7);
  std::printf("7-NN leave-one-out accuracy over labeled senders: %.3f "
              "(coverage %.0f%%)\n",
              eval.accuracy, 100.0 * eval.coverage());

  // 4. Unsupervised: Louvain over the 3-NN graph.
  const Clustering clusters = dv.cluster(/*k_prime=*/3);
  std::printf("clustering: %d clusters, modularity %.3f\n", clusters.count,
              clusters.modularity);

  // 5. Nearest neighbours of one botnet member: same-class senders should
  //    dominate.
  for (std::size_t i = 0; i < dv.corpus().words.size(); ++i) {
    const net::IPv4 ip = dv.corpus().words[i];
    if (sim::label_of(sim.labels, ip) != sim::GtClass::kMirai) continue;
    std::printf("nearest neighbours of botnet member %s:\n",
                ip.to_string().c_str());
    for (const auto& nb : dv.knn().query(i, 5)) {
      const net::IPv4 nip = dv.corpus().words[nb.index];
      std::printf("  %-15s sim=%.3f label=%s\n", nip.to_string().c_str(),
                  nb.similarity,
                  std::string(to_string(sim::label_of(sim.labels, nip)))
                      .c_str());
    }
    break;
  }
  return 0;
}
