// Unsupervised workflow of Section 7: cluster the embedding with Louvain
// over the k'-NN graph and inspect every sizeable cluster — ports,
// subnets, fingerprints — the way Table 5 characterizes the coordinated
// groups the paper discovered.
//
// Environment overrides: DARKVEC_DAYS, DARKVEC_SCALE, DARKVEC_EPOCHS,
// DARKVEC_KPRIME.
#include <cstdio>
#include <cstdlib>

#include "darkvec/core/darkvec.hpp"
#include "darkvec/core/inspector.hpp"
#include "darkvec/ml/silhouette.hpp"
#include "darkvec/sim/scenario.hpp"
#include "darkvec/sim/simulator.hpp"

namespace {

double env_or(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v ? std::atof(v) : fallback;
}

}  // namespace

int main() {
  using namespace darkvec;

  sim::SimConfig sim_config;
  sim_config.days = static_cast<int>(env_or("DARKVEC_DAYS", 30));
  sim_config.scale = env_or("DARKVEC_SCALE", 1.0);
  sim::DarknetSimulator simulator(sim_config);
  const sim::SimResult sim = simulator.run(sim::paper_scenario());
  std::printf("trace: %zu packets, %zu senders\n", sim.trace.size(),
              sim.trace.stats().sources);

  DarkVecConfig config;
  config.w2v.epochs = static_cast<int>(env_or("DARKVEC_EPOCHS", 10));
  DarkVec dv(config);
  dv.fit(sim.trace);
  std::printf("embedded %zu active senders\n",
              dv.corpus().vocabulary_size());

  const int k_prime = static_cast<int>(env_or("DARKVEC_KPRIME", 3));
  const Clustering clustering = dv.cluster(k_prime);
  std::printf("louvain over %d-NN graph: %d clusters, modularity %.3f\n\n",
              k_prime, clustering.count, clustering.modularity);

  const auto silhouettes =
      ml::silhouette_samples(dv.embedding(), clustering.assignment);
  const auto clusters = inspect_clusters(sim.trace, dv.corpus(),
                                         clustering.assignment, sim.groups,
                                         silhouettes);

  std::printf("%-4s %6s %6s %5s %5s %6s %5s  %-22s %s\n", "id", "IPs",
              "pkts", "ports", "/24s", "sil", "fp%", "dominant group",
              "top ports");
  for (const ClusterInfo& cl : clusters) {
    if (cl.size() < 8) continue;  // skip noise clusters in the summary
    std::string tops;
    for (std::size_t i = 0; i < std::min<std::size_t>(3, cl.top_ports.size());
         ++i) {
      char buf[48];
      std::snprintf(buf, sizeof(buf), "%s(%.0f%%) ",
                    cl.top_ports[i].first.to_string().c_str(),
                    100.0 * cl.top_ports[i].second);
      tops += buf;
    }
    char dominant[64];
    std::snprintf(dominant, sizeof(dominant), "%s (%.0f%%)",
                  cl.dominant_group.c_str(), 100.0 * cl.dominant_fraction);
    std::printf("C%-3d %6zu %6zu %5zu %5zu %6.2f %5.0f  %-22s %s\n", cl.id,
                cl.size(), cl.packets, cl.ports.size(), cl.distinct_slash24,
                cl.silhouette, 100.0 * cl.fingerprint_fraction, dominant,
                tops.c_str());
  }
  return 0;
}
