// Generates and exports a synthetic darknet dataset in the anonymized CSV
// format the paper's authors released alongside their code: the packet
// trace plus a ground-truth label file. Useful to feed the same data into
// other tools or to archive a fixed corpus.
//
// Usage: export_dataset [output_dir]   (default: current directory)
// Environment: DARKVEC_DAYS, DARKVEC_SCALE, DARKVEC_SEED.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "darkvec/net/trace_io.hpp"
#include "darkvec/sim/scenario.hpp"
#include "darkvec/sim/simulator.hpp"

namespace {

double env_or(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v ? std::atof(v) : fallback;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace darkvec;

  const std::string dir = argc > 1 ? argv[1] : ".";

  sim::SimConfig config;
  config.days = static_cast<int>(env_or("DARKVEC_DAYS", 30));
  config.scale = env_or("DARKVEC_SCALE", 1.0);
  config.seed = static_cast<std::uint64_t>(env_or("DARKVEC_SEED", 2021));
  const sim::SimResult sim =
      sim::DarknetSimulator(config).run(sim::paper_scenario());

  const std::string trace_path = dir + "/darknet_trace.csv";
  net::write_csv_file(trace_path, sim.trace);
  std::printf("wrote %zu packets to %s\n", sim.trace.size(),
              trace_path.c_str());

  const std::string labels_path = dir + "/ground_truth.csv";
  std::ofstream labels(labels_path);
  if (!labels) {
    std::fprintf(stderr, "cannot open %s\n", labels_path.c_str());
    return 1;
  }
  labels << "src,class,group\n";
  for (const auto& [ip, group] : sim.groups) {
    labels << ip.to_string() << ','
           << to_string(sim::label_of(sim.labels, ip)) << ',' << group
           << '\n';
  }
  std::printf("wrote %zu sender labels to %s\n", sim.groups.size(),
              labels_path.c_str());
  std::printf("reload with darkvec::net::read_csv_file(\"%s\")\n",
              trace_path.c_str());
  return 0;
}
