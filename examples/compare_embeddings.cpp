// Compares the three sender-embedding approaches of the paper on the same
// trace: DarkVec, IP2VEC and DANTE (plus the Section-4 port-share
// baseline), using the identical leave-one-out 7-NN evaluation.
//
// Environment overrides: DARKVEC_DAYS (default 15), DARKVEC_SCALE,
// DARKVEC_EPOCHS. Note: DarkVec's edge comes from temporal co-occurrence,
// which needs enough packets per sender — at very short windows or tiny
// scales (cf. Figure 6's coverage collapse) the port-profile methods can
// match it.
#include <cstdio>
#include <cstdlib>

#include "darkvec/baselines/dante.hpp"
#include "darkvec/baselines/ip2vec.hpp"
#include "darkvec/baselines/port_features.hpp"
#include "darkvec/core/darkvec.hpp"
#include "darkvec/core/semi_supervised.hpp"
#include "darkvec/net/time.hpp"
#include "darkvec/sim/scenario.hpp"
#include "darkvec/sim/simulator.hpp"

namespace {

double env_or(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v ? std::atof(v) : fallback;
}

void report(const char* method, double accuracy, double coverage,
            std::uint64_t pairs, double seconds) {
  std::printf("  %-14s accuracy %.3f  coverage %5.1f%%  %12llu pairs  "
              "%6.1fs train\n",
              method, accuracy, 100.0 * coverage,
              static_cast<unsigned long long>(pairs), seconds);
}

}  // namespace

int main() {
  using namespace darkvec;

  sim::SimConfig sim_config;
  sim_config.days = static_cast<int>(env_or("DARKVEC_DAYS", 15));
  sim_config.scale = env_or("DARKVEC_SCALE", 0.75);
  const sim::SimResult sim =
      sim::DarknetSimulator(sim_config).run(sim::paper_scenario());
  const auto eval_ips = last_day_active_senders(sim.trace);
  const auto active = net::active_senders(sim.trace, 10);
  std::printf("trace: %zu packets, %zu active senders, %zu eval senders\n\n",
              sim.trace.size(), active.size(), eval_ips.size());

  const int epochs = static_cast<int>(env_or("DARKVEC_EPOCHS", 8));

  // DarkVec.
  DarkVecConfig config;
  config.w2v.epochs = epochs;
  DarkVec dv(config);
  const auto dv_stats = dv.fit(sim.trace);
  const auto dv_eval = evaluate_knn(dv, sim.labels, eval_ips, 7);
  report("DarkVec", dv_eval.accuracy, dv_eval.coverage(), dv_stats.pairs,
         dv_stats.seconds);

  // IP2VEC.
  baselines::Ip2VecOptions ip_options;
  ip_options.w2v.epochs = epochs;
  const auto ip = run_ip2vec(sim.trace, active, ip_options);
  if (ip.completed) {
    const auto eval = evaluate_knn_vectors(ip.sender_vectors, ip.senders,
                                           sim.labels, eval_ips, 7);
    report("IP2VEC", eval.accuracy, eval.coverage(),
           ip.pairs_per_epoch * static_cast<std::uint64_t>(epochs),
           ip.train_seconds);
  }

  // DANTE.
  baselines::DanteOptions dante_options;
  dante_options.w2v.epochs = epochs;
  const auto dante = run_dante(sim.trace, active, dante_options);
  if (dante.completed) {
    const auto eval = evaluate_knn_vectors(dante.sender_vectors,
                                           dante.senders, sim.labels,
                                           eval_ips, 7);
    report("DANTE", eval.accuracy, eval.coverage(),
           dante.skipgrams_per_epoch * static_cast<std::uint64_t>(epochs),
           dante.train_seconds);
  }

  // Port-share baseline (no training).
  const auto features =
      baselines::build_port_features(sim.trace, eval_ips, sim.labels, 5);
  const auto base_eval = evaluate_knn_vectors(features.matrix,
                                              features.senders, sim.labels,
                                              eval_ips, 7);
  report("port-shares", base_eval.accuracy, base_eval.coverage(), 0, 0);

  std::printf("\nexpected ordering (paper, and here at the default "
              "window): DarkVec > IP2VEC and\nthe port-share baseline. "
              "DANTE's corpus explodes at real packet rates (Table 3).\n");
  return 0;
}
