// Semi-supervised workflow of Section 6: train on a month of (simulated)
// darknet traffic, validate the embedding with leave-one-out k-NN over the
// ground truth, then extend the ground truth to unlabeled senders
// (Section 6.4).
//
// Environment overrides: DARKVEC_DAYS (default 30), DARKVEC_SCALE
// (default 1.0), DARKVEC_EPOCHS (default 10).
#include <cstdio>
#include <cstdlib>
#include <map>

#include "darkvec/core/darkvec.hpp"
#include "darkvec/core/semi_supervised.hpp"
#include "darkvec/sim/scenario.hpp"
#include "darkvec/sim/simulator.hpp"

namespace {

double env_or(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v ? std::atof(v) : fallback;
}

}  // namespace

int main() {
  using namespace darkvec;

  sim::SimConfig sim_config;
  sim_config.days = static_cast<int>(env_or("DARKVEC_DAYS", 30));
  sim_config.scale = env_or("DARKVEC_SCALE", 1.0);
  sim_config.seed = 2021;
  sim::DarknetSimulator simulator(sim_config);
  const auto scenario = sim::paper_scenario();
  const sim::SimResult sim = simulator.run(scenario);
  const auto stats = sim.trace.stats();
  std::printf("trace: %zu packets, %zu senders, %zu ports, %d days\n",
              stats.packets, stats.sources, stats.ports, sim_config.days);

  DarkVecConfig config;
  config.w2v.epochs = static_cast<int>(env_or("DARKVEC_EPOCHS", 10));
  DarkVec dv(config);
  const auto train = dv.fit(sim.trace);
  std::printf("corpus: %zu active senders, %zu sentences; trained %llu "
              "pairs in %.1fs\n",
              dv.corpus().vocabulary_size(), dv.corpus().sentences.size(),
              static_cast<unsigned long long>(train.pairs), train.seconds);

  const auto eval_ips = last_day_active_senders(sim.trace);
  const auto eval = evaluate_knn(dv, sim.labels, eval_ips, 7);
  std::printf("\n7-NN leave-one-out: accuracy %.3f over GT classes, "
              "coverage %.1f%%\n\n",
              eval.accuracy, 100.0 * eval.coverage());
  std::printf("%-16s %9s %8s %8s %8s\n", "class", "precision", "recall",
              "f-score", "support");
  for (const sim::GtClass c : sim::kAllGtClasses) {
    const auto& s = eval.report.scores(static_cast<int>(c));
    std::printf("%-16s %9.2f %8.2f %8.2f %8zu\n",
                std::string(to_string(c)).c_str(), s.precision, s.recall,
                s.f1, s.support);
  }

  // Ground-truth extension: propose labels for Unknown senders.
  const auto candidates = extend_ground_truth(dv, sim.labels, 7);
  std::map<sim::GtClass, std::size_t> by_class;
  for (const auto& c : candidates) ++by_class[c.predicted];
  std::printf("\nground-truth extension: %zu unknown senders proposed\n",
              candidates.size());
  for (const auto& [cls, count] : by_class) {
    std::printf("  -> %-16s %zu senders\n",
                std::string(to_string(cls)).c_str(), count);
  }
  std::printf("\nmost confident proposals:\n");
  for (std::size_t i = 0; i < std::min<std::size_t>(5, candidates.size());
       ++i) {
    std::printf("  %-15s -> %-16s avg k-NN distance %.4f\n",
                candidates[i].ip.to_string().c_str(),
                std::string(to_string(candidates[i].predicted)).c_str(),
                candidates[i].avg_distance);
  }
  return 0;
}
