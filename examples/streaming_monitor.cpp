// Streaming monitoring example: retrain DarkVec on a sliding window,
// align snapshots into a common space, and report how the coordinated
// groups evolve — the operational mode behind the paper's Figure 15
// worm-spreading observation.
//
// Environment overrides: DARKVEC_DAYS (default 30), DARKVEC_SCALE,
// DARKVEC_WINDOW_DAYS (default 8), DARKVEC_STEP_DAYS (default 4).
#include <cstdio>
#include <cstdlib>
#include <map>

#include "darkvec/core/streaming.hpp"
#include "darkvec/sim/scenario.hpp"
#include "darkvec/sim/simulator.hpp"

namespace {

double env_or(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v ? std::atof(v) : fallback;
}

}  // namespace

int main() {
  using namespace darkvec;

  sim::SimConfig sim_config;
  sim_config.days = static_cast<int>(env_or("DARKVEC_DAYS", 30));
  sim_config.scale = env_or("DARKVEC_SCALE", 0.5);
  const sim::SimResult sim =
      sim::DarknetSimulator(sim_config).run(sim::paper_scenario());
  std::printf("trace: %zu packets over %d days\n", sim.trace.size(),
              sim_config.days);

  StreamingConfig config;
  config.window_seconds = static_cast<std::int64_t>(
      env_or("DARKVEC_WINDOW_DAYS", 8) * net::kSecondsPerDay);
  config.step_seconds = static_cast<std::int64_t>(
      env_or("DARKVEC_STEP_DAYS", 4) * net::kSecondsPerDay);
  config.darkvec.w2v.epochs = 4;
  config.darkvec.corpus.min_packets = 4;

  const auto snapshots = run_streaming(sim.trace, config);
  std::printf("ran %zu retrains (window %.0fd, step %.0fd)\n\n",
              snapshots.size(), env_or("DARKVEC_WINDOW_DAYS", 8),
              env_or("DARKVEC_STEP_DAYS", 4));

  // Group the oracle populations we want to watch.
  std::map<std::string, std::vector<net::IPv4>> watched;
  for (const auto& [ip, group] : sim.groups) {
    if (group == "unknown4_adb" || group == "unknown6_ssh" ||
        group == "censys") {
      watched[group].push_back(ip);
    }
  }

  for (const auto& [group, members] : watched) {
    std::printf("---- %s (%zu senders total) ----\n", group.c_str(),
                members.size());
    std::printf("  %-10s %10s %12s %12s\n", "day", "embedded",
                "core cluster", "cluster size");
    const auto tracks = track_group(snapshots, members);
    for (std::size_t i = 0; i < tracks.size(); ++i) {
      const auto day =
          (tracks[i].window_end - sim.trace.stats().first_ts) /
          net::kSecondsPerDay;
      std::printf("  %-10lld %10zu %12zu %12zu\n",
                  static_cast<long long>(day), tracks[i].present,
                  tracks[i].clustered_together, tracks[i].cluster_size);
    }
    std::printf("\n");
  }
  std::printf("reading: the ADB worm's 'embedded' and 'core cluster' "
              "columns grow through the\nmonth; persistent scanners stay "
              "flat — exactly the Figure 15 contrast.\n");
  return 0;
}
