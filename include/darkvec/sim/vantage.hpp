// Two-vantage-point split: derives the views of two hypothetical /24
// darknets from one simulated sender population — the setup behind the
// paper's Section 8 question about comparing darknets "collected from
// different vantage points during the same time period", where "the
// darknets could have little overlap in terms of sources".
#pragma once

#include <cstdint>

#include "darkvec/net/trace.hpp"

namespace darkvec::sim {

struct VantageOptions {
  /// Probability that a sender is visible at both darknets (Internet-wide
  /// scanners sweep every /24; targeted or spoofed traffic hits one).
  double both_probability = 0.5;
  std::uint64_t seed = 99;
};

struct VantageSplit {
  net::Trace darknet_a;
  net::Trace darknet_b;
  std::size_t senders_both = 0;
  std::size_t senders_only_a = 0;
  std::size_t senders_only_b = 0;
};

/// Splits `trace` into two vantage points. Senders visible at both have
/// each packet assigned to one of the darknets uniformly (each /24 samples
/// the sender's scan independently); single-vantage senders contribute all
/// packets to their darknet. Deterministic for a fixed seed.
[[nodiscard]] VantageSplit split_vantage_points(
    const net::Trace& trace, const VantageOptions& options = {});

}  // namespace darkvec::sim
