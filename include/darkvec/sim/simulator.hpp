// The darknet traffic simulator: expands populations into packet streams.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "darkvec/net/time.hpp"
#include "darkvec/net/trace.hpp"
#include "darkvec/sim/labels.hpp"
#include "darkvec/sim/population.hpp"

namespace darkvec::sim {

/// Global knobs of one simulation run.
struct SimConfig {
  /// Trace start (default: the paper's capture start, 2021-03-02 UTC).
  std::int64_t t0 = net::kTraceEpoch;
  /// Trace length in days (the paper uses 30).
  int days = 30;
  /// Master seed; every derived stream is forked from it deterministically.
  std::uint64_t seed = 2021;
  /// Multiplies `senders` of populations with `scalable == true`.
  double scale = 1.0;
};

/// Output of a simulation run: the packet trace (sorted by time), the
/// ground-truth labels the pipeline may use, and the hidden generator
/// groups used only for validating unsupervised results.
struct SimResult {
  net::Trace trace;
  LabelMap labels;
  GroupMap groups;
};

/// Synthesizes a darknet trace from a scenario.
///
/// Deterministic: the same (config, scenario) pair always produces the
/// same trace. Populations are expanded independently from forked RNG
/// streams, so adding or removing one population does not perturb others.
class DarknetSimulator {
 public:
  explicit DarknetSimulator(SimConfig config) : config_(config) {}

  /// Runs the simulation over `populations`.
  [[nodiscard]] SimResult run(std::span<const PopulationSpec> populations);

  [[nodiscard]] const SimConfig& config() const { return config_; }

 private:
  SimConfig config_;
};

}  // namespace darkvec::sim
