// Temporal activity processes for simulated senders.
//
// The embedding quality in the paper hinges on *when* coordinated senders
// hit the darknet relative to each other (co-occurrence inside ΔT windows),
// so the simulator models several distinct activity shapes: continuous
// Poisson probing, on-off bursts, team shifts (Censys sub-clusters),
// synchronized impulses (Engin-Umich), sparse irregular probing
// (Stretchoid), worm-like growth (the ADB campaign) and botnet churn.
#pragma once

#include <cstdint>
#include <vector>

#include "darkvec/sim/rng.hpp"

namespace darkvec::sim {

/// A half-open time interval [t0, t1) in Unix seconds.
struct TimeSpan {
  std::int64_t t0 = 0;
  std::int64_t t1 = 0;

  [[nodiscard]] constexpr std::int64_t length() const { return t1 - t0; }
};

/// Homogeneous Poisson arrivals at `rate_per_day` over `span`, sorted.
[[nodiscard]] std::vector<std::int64_t> poisson_arrivals(TimeSpan span,
                                                         double rate_per_day,
                                                         Rng& rng);

/// `n` points uniform over `span`, sorted (sparse irregular senders).
[[nodiscard]] std::vector<std::int64_t> uniform_times(TimeSpan span,
                                                      std::size_t n,
                                                      Rng& rng);

/// Alternating active/idle intervals with exponential lengths of the given
/// means, clipped to `span`. The first interval starts active with a random
/// phase so populations do not synchronize artificially.
[[nodiscard]] std::vector<TimeSpan> on_off_intervals(TimeSpan span,
                                                     double on_hours,
                                                     double off_hours,
                                                     Rng& rng);

/// The activity slots of team `team` out of `teams`, when the period is
/// carved into consecutive slots of `slot_days` assigned round-robin —
/// the Censys sub-cluster schedule of Figure 12.
[[nodiscard]] std::vector<TimeSpan> team_slots(TimeSpan span, int teams,
                                               int team, double slot_days);

/// Activation time for worm-like exponential growth: the fraction of
/// activated senders at time t grows like e^{growth·t}. `u` in [0,1) is the
/// sender's quantile; larger `growth` concentrates activations at the end
/// of the period (the ADB campaign of Figure 15).
[[nodiscard]] std::int64_t growth_activation(TimeSpan span, double u,
                                             double growth);

/// Poisson arrivals restricted to each interval in `active`, merged sorted.
[[nodiscard]] std::vector<std::int64_t> arrivals_in_intervals(
    const std::vector<TimeSpan>& active, double rate_per_day, Rng& rng);

}  // namespace darkvec::sim
