// Ground-truth classes (Table 2 of the paper) and the label maps attached
// to a simulated trace.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>

#include "darkvec/net/ipv4.hpp"

namespace darkvec::sim {

/// The nine ground-truth classes of Table 2 plus Unknown.
///
/// The paper labels senders via the Mirai packet fingerprint (GT1) and the
/// published source ranges of well-known scan projects (GT2-GT9); every
/// other sender is Unknown. The simulator plays the role of those oracles.
enum class GtClass : std::uint8_t {
  kMirai = 0,          ///< GT1: Mirai-like botnet(s), Telnet/ADB ports
  kCensys = 1,         ///< GT2: Censys internet-wide scans, >11k ports
  kStretchoid = 2,     ///< GT3: Stretchoid, sparse irregular probes
  kInternetCensus = 3, ///< GT4: Internet Census project
  kBinaryEdge = 4,     ///< GT5: BinaryEdge scans
  kSharashka = 5,      ///< GT6: Sharashka data feeds
  kIpip = 6,           ///< GT7: Ipip.net geolocation probing
  kShodan = 7,         ///< GT8: Shodan search engine
  kEnginUmich = 8,     ///< GT9: Engin-Umich DNS research scans
  kUnknown = 9,        ///< everything else (2/3 of active senders)
};

/// Number of classes including Unknown.
inline constexpr std::size_t kNumGtClasses = 10;

/// Number of labeled (non-Unknown) classes.
inline constexpr std::size_t kNumKnownClasses = 9;

/// All classes in Table 2 order.
inline constexpr std::array<GtClass, kNumGtClasses> kAllGtClasses = {
    GtClass::kMirai,     GtClass::kCensys,   GtClass::kStretchoid,
    GtClass::kInternetCensus, GtClass::kBinaryEdge, GtClass::kSharashka,
    GtClass::kIpip,      GtClass::kShodan,   GtClass::kEnginUmich,
    GtClass::kUnknown,
};

/// Human-readable class name as used in the paper's tables.
[[nodiscard]] std::string_view to_string(GtClass c);

/// Parses a class name produced by `to_string` (exact match). Unknown
/// names map to GtClass::kUnknown.
[[nodiscard]] GtClass parse_gt_class(std::string_view name);

/// Sender IP -> ground-truth class. Senders absent from the map are
/// Unknown by convention.
using LabelMap = std::unordered_map<net::IPv4, GtClass>;

/// Sender IP -> generator population name ("censys", "unknown4_adb", ...).
/// This is the simulator's hidden oracle used only to *validate* the
/// unsupervised clustering results (the pipeline itself never sees it).
using GroupMap = std::unordered_map<net::IPv4, std::string>;

/// Looks up `ip`, treating missing entries as Unknown.
[[nodiscard]] inline GtClass label_of(const LabelMap& labels, net::IPv4 ip) {
  const auto it = labels.find(ip);
  return it == labels.end() ? GtClass::kUnknown : it->second;
}

}  // namespace darkvec::sim
