// Weighted destination-port selection for simulated senders.
#pragma once

#include <utility>
#include <vector>

#include "darkvec/net/protocol.hpp"
#include "darkvec/sim/rng.hpp"

namespace darkvec::sim {

/// A discrete distribution over (port, protocol) pairs.
///
/// Built from explicit (key, weight) entries; weights need not sum to one
/// (they are normalized internally). Sampling is O(log n) via binary search
/// on the cumulative weights.
class PortTable {
 public:
  PortTable() = default;

  /// Builds from entries. Entries with non-positive weight are dropped.
  explicit PortTable(std::vector<std::pair<net::PortKey, double>> entries);

  /// Draws one (port, protocol) pair. Table must be non-empty.
  [[nodiscard]] net::PortKey sample(Rng& rng) const;

  [[nodiscard]] bool empty() const { return keys_.empty(); }
  [[nodiscard]] std::size_t size() const { return keys_.size(); }
  [[nodiscard]] const std::vector<net::PortKey>& keys() const { return keys_; }

 private:
  std::vector<net::PortKey> keys_;
  std::vector<double> cumulative_;  // normalized, last element == 1.0
};

/// Draws `n` distinct random TCP/UDP ports in [lo, hi] (mostly TCP;
/// `udp_fraction` of them UDP) — used to model the long random-port tails
/// of scanners like Censys (>11 000 distinct ports) or Sharashka.
[[nodiscard]] std::vector<net::PortKey> random_port_keys(
    std::size_t n, Rng& rng, std::uint16_t lo = 1, std::uint16_t hi = 65535,
    double udp_fraction = 0.15);

/// Combines explicit weighted head ports with a uniform random tail:
/// `head` keeps its given fractional weights; the remaining
/// `1 - sum(head weights)` is split equally over `tail` ports.
[[nodiscard]] PortTable make_port_table(
    std::vector<std::pair<net::PortKey, double>> head,
    const std::vector<net::PortKey>& tail);

}  // namespace darkvec::sim
