// Allocation of unique sender addresses with subnet structure.
//
// Cluster inspection in the paper reasons about subnets ("85 IPs in the
// same /24", "113 senders in the same /16", "1412 IPs in 1381 /24s"), so
// the simulator must control how each population's addresses are laid out.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "darkvec/net/ipv4.hpp"
#include "darkvec/sim/rng.hpp"

namespace darkvec::sim {

/// How a population's sender addresses are distributed across subnets.
enum class AddrPolicy : std::uint8_t {
  kRandom,          ///< anywhere in the (simulated) routable space
  kSameSlash24,     ///< all senders in one random /24
  kSameSlash16,     ///< all senders in one random /16
  kFewSlash24,      ///< spread over a small number of /24s
  kDistinctSlash24, ///< (almost) one sender per /24 — botnet-like spread
};

/// Hands out globally unique sender addresses according to per-population
/// policies. Never allocates inside the darknet's own /24 and avoids
/// reserved ranges (0/8, 10/8, 127/8, 224/4 and above).
class AddressAllocator {
 public:
  explicit AddressAllocator(Rng rng) : rng_(rng) {}

  /// Allocates `n` unique addresses under `policy`. For kFewSlash24,
  /// `subnets` controls how many /24s are used. For kSameSlash24 and
  /// kSameSlash16 a non-zero `base` pins the subnet (so several
  /// populations can share it); zero picks a random one.
  [[nodiscard]] std::vector<net::IPv4> allocate(std::size_t n,
                                                AddrPolicy policy,
                                                std::size_t subnets = 1,
                                                std::uint32_t base = 0);

  /// Number of addresses handed out so far.
  [[nodiscard]] std::size_t allocated() const { return used_.size(); }

 private:
  [[nodiscard]] net::IPv4 random_routable();
  [[nodiscard]] net::IPv4 random_slash24_base();
  /// Claims an unused address inside [base, base+span), retrying on
  /// collisions; falls back to a fresh random address if the block is full.
  [[nodiscard]] net::IPv4 claim_in_block(std::uint32_t base,
                                         std::uint32_t span);

  Rng rng_;
  std::unordered_set<net::IPv4> used_;
};

}  // namespace darkvec::sim
