// Declarative description of a sender population.
//
// A scenario (see scenario.hpp) is a list of PopulationSpec; the simulator
// expands each into concrete senders with addresses, port tables and
// activity schedules.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "darkvec/net/protocol.hpp"
#include "darkvec/sim/address_space.hpp"
#include "darkvec/sim/labels.hpp"

namespace darkvec::sim {

/// The activity shape of a population (see temporal.hpp for semantics).
enum class PatternKind : std::uint8_t {
  kPoisson,     ///< continuous probing over the whole period
  kOnOff,       ///< exponential on/off bursts
  kSparse,      ///< a fixed small number of packets at random times
  kImpulse,     ///< population-synchronized short bursts (Engin-Umich)
  kTeamShifts,  ///< teams active in round-robin multi-day slots (Censys)
  kGrowth,      ///< worm-like exponential activation ramp (ADB campaign)
  kChurn,       ///< random join time + exponential lifetime (botnets)
  kDailyBurst,  ///< one burst per day at a population-wide phase
  kHourlyBurst, ///< one burst per hour at a population-wide phase
};

/// Everything needed to synthesize one coordinated group of senders.
///
/// Defaults produce a persistent Poisson prober on one TCP port; scenario
/// builders override fields per population. Fields that only matter for
/// some `pattern` values are documented inline.
struct PopulationSpec {
  /// Hidden oracle name, e.g. "censys" or "unknown4_adb".
  std::string group;
  /// Ground-truth label exposed to the pipeline (kUnknown for the groups
  /// the paper discovers unsupervised).
  GtClass label = GtClass::kUnknown;
  /// Number of senders before scenario scaling.
  std::size_t senders = 1;
  /// If false, scenario scaling leaves `senders` untouched (small GT
  /// classes keep their paper populations so per-class supports match).
  bool scalable = true;

  PatternKind pattern = PatternKind::kPoisson;
  /// Mean packets per day per sender *while active*.
  double packets_per_day = 5.0;

  // kOnOff
  double on_hours = 6.0;
  double off_hours = 18.0;
  /// kOnOff: when true the whole population shares one on/off schedule
  /// (orchestrated scan campaigns); when false each sender has its own
  /// random phase (uncoordinated background).
  bool shared_schedule = false;
  // kSparse: total packets per sender over the whole trace (mean).
  double sparse_packets = 5.0;
  // kImpulse
  int impulses = 4;            ///< synchronized bursts over the period
  double impulse_minutes = 10; ///< burst duration
  double impulse_packets = 12; ///< mean packets per sender per burst
  // kTeamShifts
  int teams = 1;
  double slot_days = 2.0;
  /// kTeamShifts: low whole-period background rate on top of the slots,
  /// so every team member also shows up outside its shifts (keeps the
  /// class visible — and evaluable — on the last day).
  double base_rate_per_day = 0.0;
  // kGrowth
  double growth = 4.0;  ///< ramp steepness (e^{growth·t/T} activation CDF)
  // kChurn
  double lifetime_days = 12.0;
  // kDailyBurst / kHourlyBurst
  double burst_packets = 10.0;  ///< mean packets per burst
  double burst_minutes = 10.0;  ///< burst duration

  /// Explicit head ports with fractional traffic weights (should sum to
  /// <= 1; the residual goes to the random tail).
  std::vector<std::pair<net::PortKey, double>> top_ports;
  /// Number of additional random ports sharing the residual weight.
  std::size_t random_ports = 0;
  /// Explicit extra ports merged into the random tail pool. Used to make
  /// the uncoordinated background *mimic* the GT classes' signature ports:
  /// port profiles alone then stop being discriminative, and only the
  /// temporal co-occurrence DarkVec exploits separates the classes (the
  /// Section 4 motivation).
  std::vector<net::PortKey> extra_pool_ports;
  /// When true (kTeamShifts only) each team draws its own random tail, so
  /// inter-team port sets differ (low Jaccard, Section 7.3.1).
  bool per_team_ports = false;
  /// Size of the shared pool per-team tails are sampled from (0 = each
  /// team draws independently from the whole port space). A pool of
  /// ~3x `random_ports` yields the paper's ~0.19 inter-team Jaccard.
  std::size_t team_port_pool = 0;
  /// When true each sender draws its own small tail of `ports_per_sender`
  /// ports from the population pool — used for the uncoordinated Unknown
  /// background so it does not form an artificial cluster.
  bool per_sender_ports = false;
  std::size_t ports_per_sender = 8;

  AddrPolicy addr = AddrPolicy::kRandom;
  /// Number of /24s for AddrPolicy::kFewSlash24.
  std::size_t addr_subnets = 1;
  /// When non-zero, the base address of the /24 or /16 used by
  /// kSameSlash24/kSameSlash16 — lets several populations share a subnet
  /// (the three Shadowserver groups share one /16 in the paper).
  std::uint32_t addr_base = 0;

  /// Probability that a packet from this population carries the Mirai
  /// fingerprint (1.0 for GT1, 0 elsewhere).
  double fingerprint_prob = 0.0;
};

}  // namespace darkvec::sim
