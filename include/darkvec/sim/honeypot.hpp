// Simulated SSH honeypot.
//
// Section 7.3.3 of the paper validates the unknown6 cluster ("SSH bots")
// against login attempts recorded by honeypots the authors run on their
// premises. This module plays that oracle: brute-forcing populations leave
// credential attempts in a honeypot log, and a cluster can be
// cross-checked against it.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_set>
#include <vector>

#include "darkvec/net/ipv4.hpp"
#include "darkvec/net/trace.hpp"
#include "darkvec/sim/labels.hpp"
#include "darkvec/sim/rng.hpp"

namespace darkvec::sim {

/// One credential attempt seen by the honeypot.
struct HoneypotAttempt {
  std::int64_t ts = 0;
  net::IPv4 src;
  std::string username;
  std::string password;
};

/// The honeypot's view: attempts plus a fast source index.
class HoneypotLog {
 public:
  void add(HoneypotAttempt attempt);

  [[nodiscard]] const std::vector<HoneypotAttempt>& attempts() const {
    return attempts_;
  }
  /// True when the honeypot recorded at least one attempt from `ip`.
  [[nodiscard]] bool contains(net::IPv4 ip) const {
    return sources_.contains(ip);
  }
  [[nodiscard]] std::size_t distinct_sources() const {
    return sources_.size();
  }

 private:
  std::vector<HoneypotAttempt> attempts_;
  std::unordered_set<net::IPv4> sources_;
};

struct HoneypotOptions {
  /// Probability that one SSH packet of a brute-forcing sender has a
  /// matching attempt on the (separately addressed) honeypot.
  double capture_probability = 0.3;
  /// Only packets to these ports count as brute-force attempts.
  std::uint16_t ssh_port = 22;
  std::uint64_t seed = 7;
};

/// Synthesizes the honeypot log for a simulated run: senders of the
/// populations named in `bruteforce_groups` that touch the SSH port leave
/// credential attempts.
[[nodiscard]] HoneypotLog simulate_honeypot(
    const net::Trace& trace, const GroupMap& groups,
    std::span<const std::string> bruteforce_groups,
    const HoneypotOptions& options = {});

/// The paper's validation step: the fraction of `senders` that the
/// honeypot confirms as brute-forcers.
[[nodiscard]] double confirmed_fraction(const HoneypotLog& log,
                                        std::span<const net::IPv4> senders);

}  // namespace darkvec::sim
