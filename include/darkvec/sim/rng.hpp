// Deterministic, platform-independent random number generation.
//
// The standard <random> distributions are not guaranteed to produce the
// same stream across standard library implementations; the simulator and
// the Word2Vec trainer need bit-reproducible runs for testing, so we ship a
// small self-contained generator (SplitMix64) and the handful of samplers
// the library needs.
#pragma once

#include <cmath>
#include <cstdint>

namespace darkvec::sim {

/// SplitMix64: tiny, fast, high-quality 64-bit PRNG. Every stochastic
/// component of the library takes one of these, seeded explicitly.
class Rng {
 public:
  explicit constexpr Rng(std::uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  constexpr std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_int(std::uint64_t n) {
    // Multiply-shift rejection-free mapping; bias is negligible for the
    // ranges used here (ports, indexes).
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next_u64()) * n) >> 64);
  }

  /// Exponential with the given rate (mean 1/rate).
  double exponential(double rate) {
    double u;
    do {
      u = uniform();
    } while (u <= 0.0);
    return -std::log(u) / rate;
  }

  /// Poisson with the given mean. Knuth's method for small means, normal
  /// approximation (rounded, clamped at 0) for large ones.
  std::uint64_t poisson(double mean) {
    if (mean <= 0) return 0;
    if (mean < 30.0) {
      const double limit = std::exp(-mean);
      std::uint64_t k = 0;
      double p = 1.0;
      do {
        ++k;
        p *= uniform();
      } while (p > limit);
      return k - 1;
    }
    const double x = mean + std::sqrt(mean) * normal();
    return x <= 0 ? 0 : static_cast<std::uint64_t>(x + 0.5);
  }

  /// Standard normal via Box-Muller (one value per call; the twin is
  /// discarded to keep the generator stateless beyond `state_`).
  double normal() {
    double u1;
    do {
      u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * 3.14159265358979323846 * u2);
  }

  /// Derives an independent stream for a subcomponent: mixes `salt` into
  /// the current state without perturbing this generator.
  [[nodiscard]] Rng fork(std::uint64_t salt) const {
    return Rng(state_ ^ (salt * 0xD1B54A32D192ED03ull + 0x8CB92BA72F3D8DD7ull));
  }

 private:
  std::uint64_t state_;
};

}  // namespace darkvec::sim
