// Ready-made scenarios.
//
// `paper_scenario()` mirrors the population structure of the paper's
// 30-day /24 capture: the nine ground-truth classes of Table 2, the
// coordinated Unknown groups that Section 7 discovers (Table 5), the
// Shadowserver /16, and the uncoordinated background (active unknowns,
// occasional senders, one-shot backscatter). Sender counts for the large
// populations are scaled-down defaults (see DESIGN.md §6); small GT classes
// keep their paper counts so per-class supports are comparable.
#pragma once

#include <vector>

#include "darkvec/sim/population.hpp"

namespace darkvec::sim {

/// The full paper-like scenario (see file comment).
[[nodiscard]] std::vector<PopulationSpec> paper_scenario();

/// A three-population toy scenario (one Telnet botnet, one HTTP scanner
/// team, background noise) for tests and the quickstart example. Runs in
/// well under a second.
[[nodiscard]] std::vector<PopulationSpec> tiny_scenario();

}  // namespace darkvec::sim
