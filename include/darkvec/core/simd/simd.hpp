// Runtime-dispatched SIMD kernels for the numeric hot paths.
//
// A small set of contiguous-memory primitives — dot products, axpy-style
// updates, the fused dot-strip of the blocked cosine scan, an exact int8
// dot for quantized embeddings and the fused GloVe AdaGrad step — each
// with a scalar reference implementation and AVX2 / AVX-512 variants.
// The variant is selected ONCE at first use via cpuid runtime dispatch
// (std::once_flag), never at compile time alone, so a single binary runs
// on any x86-64 machine and falls back to scalar elsewhere.
//
// Numeric contract (the parity suite under `ctest -L simd` enforces it):
//
//  * The scalar variants reproduce the exact operation order the library
//    used before this layer existed, so DARKVEC_SIMD=off is bit-for-bit
//    the historical behavior.
//  * dot_strip_f32, axpy_f32, scale_add_f32, adagrad_pair_f64 and dot_i8
//    are BIT-IDENTICAL across every dispatch level: their vector variants
//    parallelize across independent elements/columns and keep each
//    element's rounding sequence (separate multiply then add, no FMA
//    contraction; integer arithmetic for dot_i8). The blocked cosine
//    top-k therefore stays bit-identical to the serial scan at every
//    level, preserving the PR 2 oracle.
//  * dot_f32 / dot_f64 are reductions: vector variants use lane-parallel
//    accumulators and so round differently from the scalar chain. They
//    match the scalar reference within the documented ULP-style bound
//    |simd - scalar| <= 64 * eps * sum_i |a_i * b_i| (eps = the element
//    type's machine epsilon); in practice the vector result is closer to
//    the infinitely-precise sum than the scalar chain is.
//
// Override for A/B runs: environment variable DARKVEC_SIMD=off|scalar|
// avx2|avx512 (read once at dispatch), the darkvec CLI --simd flag, or
// force_level()/ScopedLevel from code. The selected level is recorded in
// the obs metrics registry (gauge "simd.dispatch_level") so every
// BENCH_<name>.json artifact carries the level it measured.
//
// Raw intrinsics (_mm*) are confined to src/core/simd/ by project lint
// (tools/darkvec_lint.py, rule raw-intrinsics).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace darkvec::simd {

/// Dispatch levels, ordered from most portable to widest vectors.
enum class Level : int {
  kScalar = 0,  ///< reference implementations, historical bit behavior
  kAvx2 = 1,    ///< AVX2 + FMA, 8-wide float / 4-wide double / 32-wide int8
  kAvx512 = 2,  ///< AVX-512 F/BW/DQ/VL, 16-wide float / 64-wide int8
};

/// One resolved kernel table. All pointers are always non-null.
struct Kernels {
  Level level = Level::kScalar;

  /// Dot over floats with a double accumulator (reduction; ULP contract).
  /// Scalar reference == the historical w2v::dot operation order.
  double (*dot_f32)(const float* a, const float* b, std::size_t n);

  /// Dot over doubles (reduction; ULP contract). GloVe's projection dot.
  double (*dot_f64)(const double* a, const double* b, std::size_t n);

  /// y[i] += a * x[i]. Element-wise; bit-identical across levels.
  void (*axpy_f32)(std::size_t n, float a, const float* x, float* y);

  /// y[i] = a * x[i] + b * y[i]. Element-wise; bit-identical across
  /// levels (three roundings per element, like the scalar expression).
  void (*scale_add_f32)(std::size_t n, float a, const float* x, float b,
                        float* y);

  /// sims[j] = sum_d query[d] * tile[d * width + j] for a [dim x width]
  /// transposed corpus tile — the inner kernel of ml/batch_topk. Each
  /// column keeps one float accumulator walking d in ascending order
  /// (multiply then add), so the result is bit-identical across levels
  /// AND to the serial CosineKnn scan.
  void (*dot_strip_f32)(const float* query, const float* tile,
                        std::size_t width, std::size_t dim, float* sims);

  /// Exact int8 dot with an int32 accumulator; bit-identical across
  /// levels (integer arithmetic). The quantized k-NN scan kernel.
  std::int32_t (*dot_i8)(const std::int8_t* a, const std::int8_t* b,
                         std::size_t n);

  /// Fused GloVe AdaGrad step for one co-occurrence cell: for each d,
  ///   grad_i = g * wj[d];  grad_j = g * wi[d];
  ///   wi[d] -= lr * grad_i / sqrt(gi[d]);
  ///   wj[d] -= lr * grad_j / sqrt(gj[d]);
  ///   gi[d] += grad_i^2;   gj[d] += grad_j^2;
  /// Element-wise with correctly-rounded sqrt/div; bit-identical across
  /// levels.
  void (*adagrad_pair_f64)(std::size_t n, double g, double lr, double* wi,
                           double* wj, double* gi, double* gj);
};

/// The active kernel table. First call resolves the dispatch level
/// (cpuid, then the DARKVEC_SIMD override) under a std::once_flag;
/// subsequent calls are one relaxed atomic load.
[[nodiscard]] const Kernels& kernels();

/// Level of the active table.
[[nodiscard]] Level active_level();

/// Human-readable level name ("scalar", "avx2", "avx512").
[[nodiscard]] const char* level_name(Level level);

/// True when this machine can execute the given level.
[[nodiscard]] bool level_supported(Level level);

/// Every level this machine supports, ascending (kScalar always first).
[[nodiscard]] std::vector<Level> supported_levels();

/// The kernel table for one specific level, independent of the active
/// dispatch. Precondition: level_supported(level).
[[nodiscard]] const Kernels& kernels_for(Level level);

/// Overrides the active dispatch level (A/B runs, tests, the CLI --simd
/// flag). Thread-safe; callers already inside a kernel keep the table
/// they loaded. Precondition: level_supported(level).
void force_level(Level level);

/// Parses "off"/"scalar"/"avx2"/"avx512" (the DARKVEC_SIMD / --simd
/// vocabulary; "off" means scalar). Returns false on unknown input.
[[nodiscard]] bool parse_level(const std::string& text, Level* out);

/// RAII level override: forces `level` on construction, restores the
/// previous level on destruction. For tests and A/B bench loops.
class ScopedLevel {
 public:
  explicit ScopedLevel(Level level) : previous_(active_level()) {
    force_level(level);
  }
  ~ScopedLevel() { force_level(previous_); }
  ScopedLevel(const ScopedLevel&) = delete;
  ScopedLevel& operator=(const ScopedLevel&) = delete;

 private:
  Level previous_;
};

}  // namespace darkvec::simd
