// Shared thread pool and deterministic parallel_for.
//
// Every parallel kernel in the library (batch k-NN, k'-NN graph, LOO
// evaluation, silhouette) runs through this pool. The determinism
// contract: work is split into chunks whose boundaries depend only on
// the iteration count and the grain — never on the thread count or on
// scheduling — and each chunk is executed by exactly one thread. A body
// that writes outputs indexed by the iteration variable alone therefore
// produces bit-identical results for 1, 2, or N threads.
//
// Cancellation: for_each_chunk captures the submitter's ambient
// runtime::RunContext (see core/runtime) and re-installs it in each
// worker, checking it once per chunk. When the context trips, the trip
// is recorded as the job's error, remaining chunks drain without running
// their bodies, and the typed runtime::Interrupted is rethrown on the
// submitting thread once every chunk has settled — the pool itself stays
// reusable after a cancelled loop.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>

namespace darkvec::core {

/// Worker count the global pool is created with: the `DARKVEC_THREADS`
/// environment variable if set to a positive integer, otherwise
/// std::thread::hardware_concurrency() (at least 1).
[[nodiscard]] int default_thread_count();

/// Fixed-size pool of worker threads executing chunked loops.
///
/// The calling thread participates in the work, so a pool of size 1 has
/// no worker threads and runs everything inline. Nested calls from
/// inside a pool body degrade gracefully to inline execution instead of
/// deadlocking.
class ThreadPool {
 public:
  /// `threads` is the total concurrency (callers + workers); values < 1
  /// are clamped to 1.
  explicit ThreadPool(int threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int size() const;

  /// Splits [0, n) into consecutive chunks of `grain` iterations (the
  /// last chunk may be shorter) and calls body(begin, end) once per
  /// chunk; blocks until every chunk completed. Chunk boundaries are a
  /// pure function of (n, grain). The first exception thrown by a body
  /// is rethrown here after the loop drains.
  void for_each_chunk(std::size_t n, std::size_t grain,
                      const std::function<void(std::size_t, std::size_t)>&
                          body);

  /// Process-wide pool, created on first use with default_thread_count()
  /// workers.
  [[nodiscard]] static ThreadPool& global();

  /// Replaces the global pool with one of `threads` workers. Intended
  /// for tests and embedders; must not be called concurrently with work
  /// running on the global pool.
  static void set_global_threads(int threads);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// for_each_chunk on the global pool. A `grain` of 0 picks a chunk size
/// that yields several chunks per thread (good load balance) while
/// keeping chunks large enough to amortize dispatch.
void parallel_for(std::size_t n, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& body);

}  // namespace darkvec::core
