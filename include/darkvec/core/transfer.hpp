// Embedding transfer across time windows or vantage points — the open
// question the paper's Section 8 raises: "to what extent the embedding
// learned in one darknet can be useful in other darknets or at different
// time... the transfer of the embedding, and the transfer of learned
// tasks."
//
// Two Word2Vec runs produce arbitrarily rotated latent spaces, so direct
// vector comparison is meaningless. Given senders present in both
// embeddings (the anchor set), orthogonal Procrustes finds the rotation
// that best maps one space onto the other; tasks (k-NN labeling) can then
// be transferred and their degradation measured.
#pragma once

#include <vector>

#include "darkvec/corpus/corpus.hpp"
#include "darkvec/ml/knn.hpp"
#include "darkvec/sim/labels.hpp"
#include "darkvec/w2v/embedding.hpp"

namespace darkvec {

/// Result of aligning a source embedding onto a target space.
struct Alignment {
  /// dim x dim orthogonal rotation (row-major, applied as v' = v * R).
  std::vector<double> rotation;
  int dim = 0;
  /// Anchor senders used to fit the rotation.
  std::size_t anchors = 0;
  /// Mean cosine similarity between rotated source anchors and their
  /// target counterparts — 1.0 means the spaces match perfectly on the
  /// anchor set.
  double anchor_similarity = 0;
};

/// Fits the orthogonal Procrustes rotation mapping `source` rows onto
/// `target` rows over the senders present in both corpora. Rows are
/// L2-normalized before fitting (directions are what cosine k-NN uses).
/// Throws std::invalid_argument if dims differ or no anchors exist.
[[nodiscard]] Alignment align_embeddings(const corpus::Corpus& source_corpus,
                                         const w2v::Embedding& source,
                                         const corpus::Corpus& target_corpus,
                                         const w2v::Embedding& target);

/// Applies the rotation to every row of `source`.
[[nodiscard]] w2v::Embedding apply_alignment(const Alignment& alignment,
                                             const w2v::Embedding& source);

/// Task-transfer evaluation: label senders of the target window by k-NN
/// voting against the *source* window's labeled senders, after mapping the
/// target embedding into the source space (inverse rotation). Returns the
/// accuracy over target senders with known GT labels.
struct TransferResult {
  double accuracy = 0;       ///< with Procrustes alignment
  double accuracy_raw = 0;   ///< without alignment (direct spaces)
  std::size_t evaluated = 0; ///< labeled target senders scored
  Alignment alignment;
};

[[nodiscard]] TransferResult evaluate_transfer(
    const corpus::Corpus& source_corpus, const w2v::Embedding& source,
    const corpus::Corpus& target_corpus, const w2v::Embedding& target,
    const sim::LabelMap& labels, int k = 7);

}  // namespace darkvec
