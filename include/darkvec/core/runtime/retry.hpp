// Retry with classified errors and jittered exponential backoff.
//
// Real capture pipelines hand us files that are mid-rotation, NFS mounts
// that blip, and model stores that 503. Those failures are *transient*:
// the same read succeeds a moment later. Parse errors, bad magic and
// resource-cap violations are *permanent*: retrying re-reads the same
// poison. io::with_retry encodes that split over the io error taxonomy:
//
//   transient  — plain io::IoError (open/read/rename failures) and
//                io::TruncatedInput (a file still being written can
//                legitimately be short);
//   permanent  — io::ParseError, io::FormatError, io::ResourceLimit,
//                and anything that is not an io::IoError at all.
//
// Backoff is exponential with deterministic decorrelated jitter (seeded
// splitmix64, no global RNG), sleeps through runtime::interruptible_sleep
// so a cancelled run never sits in a backoff wait, and re-checks the
// ambient RunContext between attempts. Header-only.
#pragma once

#include <cstdint>
#include <exception>
#include <utility>

#include "darkvec/core/errors.hpp"
#include "darkvec/core/runtime/runtime.hpp"

namespace darkvec::io {

struct RetryPolicy {
  int max_attempts = 4;           ///< total tries, first one included
  double initial_backoff_s = 0.01;
  double backoff_multiplier = 4.0;
  double max_backoff_s = 1.0;
  std::uint64_t jitter_seed = 0x9E3779B97F4A7C15ull;

  [[nodiscard]] static RetryPolicy none() {
    RetryPolicy p;
    p.max_attempts = 1;
    return p;
  }
  /// Tests: immediate retries, no sleeping between attempts.
  [[nodiscard]] static RetryPolicy immediate(int attempts) {
    RetryPolicy p;
    p.max_attempts = attempts;
    p.initial_backoff_s = 0;
    p.max_backoff_s = 0;
    return p;
  }
  /// The production default for trace/model reads: three attempts,
  /// ~10 ms then ~40 ms of jittered backoff. Cheap enough that a
  /// genuinely missing file still fails in well under 100 ms, long
  /// enough to ride out a mid-rotation rename.
  [[nodiscard]] static RetryPolicy transient_reads() {
    RetryPolicy p;
    p.max_attempts = 3;
    return p;
  }
};

/// True when retrying `e` could plausibly succeed: exactly the plain
/// IoError and TruncatedInput cases described above.
[[nodiscard]] inline bool is_transient(const IoError& e) {
  if (dynamic_cast<const ParseError*>(&e) != nullptr) return false;
  if (dynamic_cast<const FormatError*>(&e) != nullptr) return false;
  if (dynamic_cast<const ResourceLimit*>(&e) != nullptr) return false;
  return true;
}

namespace detail {

inline std::uint64_t splitmix64(std::uint64_t& s) {
  s += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = s;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace detail

/// Runs `fn` up to `policy.max_attempts` times, backing off between
/// transient failures; returns fn's result. Permanent errors and the
/// final transient failure propagate unchanged. runtime::Interrupted
/// always propagates immediately (a cancelled run must not retry), and
/// the backoff sleep itself is interruptible.
template <typename Fn>
auto with_retry(const RetryPolicy& policy, Fn&& fn)
    -> decltype(std::forward<Fn>(fn)()) {
  std::uint64_t jitter_state = policy.jitter_seed;
  double backoff = policy.initial_backoff_s;
  for (int attempt = 1;; ++attempt) {
    try {
      return std::forward<Fn>(fn)();
    } catch (const runtime::Interrupted&) {
      throw;
    } catch (const IoError& e) {
      if (!is_transient(e) || attempt >= policy.max_attempts) throw;
      runtime::note_retry();
    }
    if (backoff > 0) {
      // Decorrelated jitter in [backoff/2, backoff): retries from
      // concurrent readers of the same flaky source spread out instead
      // of stampeding in lockstep.
      const double u =
          static_cast<double>(detail::splitmix64(jitter_state) >> 11) *
          (1.0 / 9007199254740992.0);  // 2^53
      const double sleep_s = backoff * (0.5 + 0.5 * u);
      if (!runtime::interruptible_sleep(sleep_s)) {
        runtime::checkpoint();  // throws the typed stop reason
        throw runtime::Cancelled("cancelled during retry backoff");
      }
      backoff = backoff * policy.backoff_multiplier;
      if (backoff > policy.max_backoff_s) backoff = policy.max_backoff_s;
    }
    runtime::checkpoint();
  }
}

}  // namespace darkvec::io
