// DVCK v1: the crash-safe checkpoint envelope.
//
// All resumable state in the library (SGNS and GloVe optimizer state,
// the streaming replay cursor) is persisted through one format so the
// chaos matrix can make a single guarantee: a checkpoint file on disk is
// either a complete, checksummed snapshot or it does not exist.
//
//   offset  field
//   0       magic "DVCK"
//   4       u32   version (1)
//   8       u32   kind fourcc ("SGNS", "GLOV", "STRM", ...)
//   12      u64   payload size in bytes
//   20      payload (kind-specific, written via io::write_pod/write_array)
//   20+n    u32   CRC32 over bytes [0, 20+n)
//
// Writes go through io::atomic_write_file (tmp + fsync-free rename), so
// a kill at any instant leaves either the previous checkpoint or the new
// one, never a torn file. Loads verify magic, version, kind, size and
// CRC before the caller sees a byte of payload; any damage is a typed
// io::FormatError / io::TruncatedInput, which callers treat as "no
// checkpoint" or surface, per their policy. Header-only.
#pragma once

#include <cstdint>
#include <fstream>
#include <functional>
#include <ios>
#include <sstream>
#include <string>

#include "darkvec/core/atomic_io.hpp"
#include "darkvec/core/byteio.hpp"
#include "darkvec/core/checksum.hpp"
#include "darkvec/core/errors.hpp"

namespace darkvec::runtime {

/// Four-character checkpoint kind tag, e.g. fourcc("SGNS").
[[nodiscard]] constexpr std::uint32_t fourcc(const char (&s)[5]) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(s[0])) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(s[1])) << 8 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(s[2])) << 16 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(s[3])) << 24;
}

inline constexpr char kCheckpointMagic[4] = {'D', 'V', 'C', 'K'};
inline constexpr std::uint32_t kCheckpointVersion = 1;

/// Bumps the runtime.checkpoints_written / runtime.resumes counters
/// (defined in runtime.cpp so this header stays obs-free).
void note_checkpoint_written() noexcept;
void note_resume() noexcept;

/// Serializes `payload_writer`'s bytes into a DVCK v1 envelope and
/// atomically replaces `path` with it. Throws io::IoError on any write
/// failure (the previous file, if any, is left intact).
inline void save_checkpoint_file(
    const std::string& path, std::uint32_t kind,
    const std::function<void(std::ostream&)>& payload_writer) {
  std::ostringstream payload_stream(std::ios::binary);
  payload_writer(payload_stream);
  const std::string payload = payload_stream.str();

  io::atomic_write_file(path, std::ios::binary, [&](std::ostream& out) {
    io::Crc32 crc;
    const auto put = [&](const void* data, std::size_t len) {
      out.write(static_cast<const char*>(data),
                static_cast<std::streamsize>(len));
      crc.update(data, len);
    };
    put(kCheckpointMagic, sizeof kCheckpointMagic);
    const std::uint32_t version = kCheckpointVersion;
    put(&version, sizeof version);
    put(&kind, sizeof kind);
    const std::uint64_t size = payload.size();
    put(&size, sizeof size);
    put(payload.data(), payload.size());
    io::write_pod(out, crc.value());
  });
  note_checkpoint_written();
}

namespace detail {
/// The strict validation path: throws typed io errors on any damage.
inline bool load_checkpoint_strict(
    std::istream& in, const std::string& path, std::uint32_t kind,
    const std::function<void(std::istream&)>& payload_reader) {
  std::ostringstream buf(std::ios::binary);
  buf << in.rdbuf();
  const std::string bytes = buf.str();

  constexpr std::size_t kHeader = 4 + 4 + 4 + 8;
  if (bytes.size() < kHeader + 4) {
    throw io::TruncatedInput("checkpoint " + path + ": " +
                             std::to_string(bytes.size()) +
                             " bytes is shorter than the DVCK envelope");
  }
  std::istringstream hdr(bytes, std::ios::binary);
  char magic[4];
  hdr.read(magic, 4);
  if (std::string(magic, 4) != std::string(kCheckpointMagic, 4)) {
    throw io::FormatError("checkpoint " + path + ": bad magic");
  }
  std::uint32_t version = 0;
  std::uint32_t file_kind = 0;
  std::uint64_t payload_size = 0;
  if (!io::read_pod(hdr, version) || !io::read_pod(hdr, file_kind) ||
      !io::read_pod(hdr, payload_size)) {
    throw io::TruncatedInput("checkpoint " + path + ": truncated header");
  }
  if (version != kCheckpointVersion) {
    throw io::FormatError("checkpoint " + path + ": unsupported version " +
                          std::to_string(version));
  }
  if (file_kind != kind) {
    throw io::FormatError("checkpoint " + path + ": wrong kind tag");
  }
  if (bytes.size() != kHeader + payload_size + 4) {
    throw io::TruncatedInput(
        "checkpoint " + path + ": header declares " +
        std::to_string(payload_size) + " payload bytes, file has " +
        std::to_string(bytes.size() - kHeader - 4));
  }
  const std::uint32_t stored = [&] {
    std::uint32_t d = 0;
    std::memcpy(&d, bytes.data() + bytes.size() - 4, 4);
    return d;
  }();
  const std::uint32_t computed = io::crc32(bytes.data(), bytes.size() - 4);
  if (stored != computed) {
    throw io::FormatError("checkpoint " + path + ": CRC mismatch");
  }

  std::istringstream payload(bytes.substr(kHeader, payload_size),
                             std::ios::binary);
  payload_reader(payload);
  note_resume();
  return true;
}
}  // namespace detail

/// Opens and fully validates the envelope at `path`, then hands the
/// payload to `payload_reader` as a seekable stream. Returns false when
/// the file does not exist (the normal cold-start case). A file that
/// exists but is damaged or of the wrong kind follows `policy`: strict
/// (the default) throws the typed io error, lenient treats it exactly
/// like a missing checkpoint and returns false — "best-effort resume,
/// cold-start when the snapshot is unusable".
inline bool load_checkpoint_file(
    const std::string& path, std::uint32_t kind,
    const std::function<void(std::istream&)>& payload_reader,
    const io::IoPolicy& policy = io::IoPolicy::strict()) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  try {
    return detail::load_checkpoint_strict(in, path, kind, payload_reader);
  } catch (const io::IoError&) {
    if (policy.lenient()) return false;
    throw;
  }
}

}  // namespace darkvec::runtime
