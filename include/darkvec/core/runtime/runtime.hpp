// Execution control: cancellation, deadlines, budgets and degradation.
//
// Every long-running compute path in the library (SGNS/GloVe epochs,
// batch top-k tiles, IVF builds, Louvain passes, streaming windows)
// polls a RunContext at natural work boundaries via DV_CHECK_CANCEL /
// DV_CHECKPOINT. The context bundles:
//
//   * CancellationToken — hierarchical: child() tokens observe their
//     ancestors, so cancelling a request cancels every sub-operation it
//     spawned while sibling requests keep running. cancel() is a single
//     atomic store and is async-signal-safe (the CLI's SIGINT handler
//     calls it directly).
//   * Deadline       — a steady_clock point; Deadline::never() is free.
//   * RunBudget      — wall-clock and max-RSS caps. The wall cap folds
//     into the deadline when the context is constructed; RSS is sampled
//     from /proc/self/statm every 64th check to keep checks cheap.
//   * DegradePolicy  — kStrict turns an expired deadline into a typed
//     DeadlineExceeded throw at the next check; kPartialResults makes
//     check() return normally on deadline expiry so kernels that know
//     how to truncate (batch_topk_bounded, topk_scan_bounded) can emit
//     partial results with a `truncated` flag instead of failing.
//
// Propagation is by thread-local ambient context: a caller installs its
// context with ContextScope, and everything downstream — including the
// core/parallel worker threads, which re-install the submitter's context
// — sees it through runtime::current(). Kernels therefore need no extra
// parameters; DV_CHECKPOINT() is a no-op when no context is installed.
//
// Cost contract: an un-tripped check is one relaxed fetch_add plus a few
// atomic loads (no clock read unless a finite deadline is set), < 10 ns;
// callers place checks at tile/epoch/window granularity, never per
// element. bench_micro_runtime gates the end-to-end overhead at < 1 %.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>

namespace darkvec::runtime {

/// Base of every execution-control interruption. Catch this to treat
/// "stopped early on purpose" uniformly; catch the subclasses to
/// distinguish who pulled the plug.
class Interrupted : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The run's CancellationToken (or an ancestor) was cancelled.
class Cancelled : public Interrupted {
 public:
  using Interrupted::Interrupted;
};

/// The run's Deadline passed while the context demanded strict behavior.
class DeadlineExceeded : public Interrupted {
 public:
  using Interrupted::Interrupted;
};

/// A RunBudget cap (max RSS) was exceeded.
class BudgetExceeded : public Interrupted {
 public:
  using Interrupted::Interrupted;
};

/// Thread-safe, hierarchical cancellation flag. Copies share state;
/// child() creates a token that is cancelled whenever its parent is
/// (but not vice versa). Default-constructed tokens are fresh roots.
class CancellationToken {
 public:
  CancellationToken() : state_(std::make_shared<State>()) {}

  /// A token one level below this one: observes this token's (and all
  /// its ancestors') cancellation, plus its own.
  [[nodiscard]] CancellationToken child() const {
    auto s = std::make_shared<State>();
    s->parent = state_;
    return CancellationToken(std::move(s));
  }

  /// Sets the flag. One atomic store — safe from any thread and from
  /// async signal handlers. Idempotent.
  void cancel() const noexcept {
    state_->flag.store(true, std::memory_order_relaxed);
  }

  /// True once this token or any ancestor has been cancelled.
  [[nodiscard]] bool cancelled() const noexcept {
    for (const State* s = state_.get(); s != nullptr; s = s->parent.get()) {
      if (s->flag.load(std::memory_order_relaxed)) return true;
    }
    return false;
  }

 private:
  struct State {
    std::atomic<bool> flag{false};
    std::shared_ptr<State> parent;
  };
  explicit CancellationToken(std::shared_ptr<State> s)
      : state_(std::move(s)) {}
  std::shared_ptr<State> state_;
};

/// A point in steady time after which a run should stop. The default is
/// "never" and costs nothing to check (no clock read).
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  Deadline() = default;  // never expires

  [[nodiscard]] static Deadline never() { return Deadline(); }
  [[nodiscard]] static Deadline at(Clock::time_point tp) {
    Deadline d;
    d.tp_ = tp;
    return d;
  }
  [[nodiscard]] static Deadline in(double seconds) {
    return at(Clock::now() +
              std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(seconds)));
  }

  [[nodiscard]] bool finite() const noexcept {
    return tp_ != Clock::time_point::max();
  }
  [[nodiscard]] bool expired() const noexcept {
    return finite() && Clock::now() >= tp_;
  }
  /// Seconds left; +inf for a never-deadline, clamped at 0 once passed.
  [[nodiscard]] double remaining_seconds() const noexcept;
  [[nodiscard]] Clock::time_point time_point() const noexcept { return tp_; }

  /// The earlier of the two deadlines.
  [[nodiscard]] static Deadline sooner(Deadline a, Deadline b) {
    return a.tp_ <= b.tp_ ? a : b;
  }

 private:
  Clock::time_point tp_ = Clock::time_point::max();
};

/// Resource caps for one run. Zero means uncapped.
struct RunBudget {
  double max_wall_seconds = 0;    ///< folded into the deadline on arm
  std::uint64_t max_rss_bytes = 0;  ///< checked against /proc/self/statm
};

/// What an expired deadline means to the kernels under this context.
enum class DegradePolicy : std::uint8_t {
  kStrict,          ///< check() throws DeadlineExceeded
  kPartialResults,  ///< check() passes; bounded kernels truncate + flag
};

enum class StopReason : std::uint8_t {
  kNone,
  kCancelled,
  kDeadline,
  kBudget,
};

/// Everything a cooperative kernel consults. Not copyable (it carries
/// the check counter); share by pointer — the pointee must outlive every
/// thread that can observe it through ContextScope.
class RunContext {
 public:
  RunContext() = default;
  RunContext(CancellationToken tok, Deadline dl, RunBudget rb = {},
             DegradePolicy dp = DegradePolicy::kStrict)
      : token(std::move(tok)), deadline(dl), budget(rb), degrade(dp) {
    arm();
  }
  RunContext(const RunContext&) = delete;
  RunContext& operator=(const RunContext&) = delete;

  CancellationToken token;
  Deadline deadline;
  RunBudget budget;
  DegradePolicy degrade = DegradePolicy::kStrict;

  /// Test hook for the chaos matrix: when non-zero, the Nth check()
  /// against this context cancels the token. Deterministic by
  /// construction — the trip point is a count of cooperative
  /// checkpoints, not a timer.
  std::uint64_t trip_after_checks = 0;

  /// Folds budget.max_wall_seconds into the deadline. Called by the
  /// full constructor; call manually after aggregate-style setup.
  void arm() {
    if (budget.max_wall_seconds > 0) {
      deadline = Deadline::sooner(deadline, Deadline::in(budget.max_wall_seconds));
    }
  }

  /// Cheap cooperative checkpoint. Throws Cancelled / DeadlineExceeded /
  /// BudgetExceeded per the policy above; otherwise returns. Thread-safe.
  void check() const;

  /// Non-throwing variant: why the run should stop, or kNone. Unlike
  /// check(), an expired deadline reports kDeadline even under
  /// kPartialResults — bounded kernels use this to decide to truncate.
  [[nodiscard]] StopReason stop_reason() const noexcept;
  [[nodiscard]] bool should_stop() const noexcept {
    return stop_reason() != StopReason::kNone;
  }

  /// Checks observed so far (all threads). Test/bench introspection.
  [[nodiscard]] std::uint64_t checks_observed() const noexcept {
    return checks_.load(std::memory_order_relaxed);
  }

 private:
  [[nodiscard]] bool rss_over_budget() const noexcept;
  mutable std::atomic<std::uint64_t> checks_{0};
  mutable std::atomic<bool> budget_tripped_{false};
  mutable std::atomic<bool> deadline_tripped_{false};
};

/// The ambient context installed by the nearest enclosing ContextScope
/// on this thread, or nullptr. core/parallel workers re-install the
/// submitting thread's context before running chunks, so parallel
/// kernels inherit it transparently.
[[nodiscard]] RunContext* current() noexcept;

/// RAII installer for the ambient context. Restores the previous one on
/// destruction, so scopes nest (an inner operation may tighten the
/// deadline with a child context).
class ContextScope {
 public:
  explicit ContextScope(RunContext* ctx) noexcept;
  ~ContextScope();
  ContextScope(const ContextScope&) = delete;
  ContextScope& operator=(const ContextScope&) = delete;

 private:
  RunContext* prev_;
};

/// check() against the ambient context; no-op when none is installed.
inline void checkpoint() {
  if (RunContext* ctx = current()) ctx->check();
}

/// Bumps the `runtime.retries` counter (io::with_retry's transient
/// failures); here so the header-only retry wrapper needs no direct obs
/// dependency.
void note_retry() noexcept;

/// Sleeps up to `seconds`, waking early (returning false) if `ctx`
/// (or, when ctx is null, the ambient context) asks to stop. The only
/// blessed sleep in the library outside tests — retry backoff and
/// polling loops go through here so they stay cancellable.
bool interruptible_sleep(double seconds, const RunContext* ctx = nullptr);

}  // namespace darkvec::runtime

/// Checkpoint against an explicit context pointer (may be null).
#define DV_CHECK_CANCEL(ctx)                                  \
  do {                                                        \
    const ::darkvec::runtime::RunContext* dv_ctx_ = (ctx);    \
    if (dv_ctx_ != nullptr) dv_ctx_->check();                 \
  } while (false)

/// Checkpoint against the ambient (thread-local) context.
#define DV_CHECKPOINT() ::darkvec::runtime::checkpoint()
