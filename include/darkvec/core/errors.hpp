// Error taxonomy and strict/lenient I/O policy shared by every reader.
//
// Real darknet feeds are hostile inputs: capture pipelines truncate files
// mid-record, interleave garbage lines and corrupt headers. Each reader
// (trace CSV, trace binary, embedding, model) therefore takes an IoPolicy
// and fills an IoReport:
//
//   * strict (the default, and the contract of the legacy signatures):
//     throw a typed error at the first problem;
//   * lenient: skip malformed *records* under a configurable error
//     budget, count them, and keep the first few diagnostics. Structural
//     damage — bad magic, unsupported version, insane header fields — is
//     never recoverable and throws in both modes.
//
// Header-only so the leaf libraries (net, w2v) can use it without a link
// dependency on darkvec_core.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace darkvec::io {

/// Base class of every typed I/O error.
class IoError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A record that does not parse (bad integer field, bad address, wrong
/// field count, invalid enum value).
class ParseError : public IoError {
 public:
  using IoError::IoError;
};

/// Structural damage: bad magic, unsupported version, checksum mismatch,
/// trailing garbage, inconsistent companion files.
class FormatError : public IoError {
 public:
  using IoError::IoError;
};

/// The stream ended before the declared content did.
class TruncatedInput : public IoError {
 public:
  using IoError::IoError;
};

/// A header field demands more than the configured caps allow (e.g. a
/// poisoned record count that would trigger a multi-GB allocation), or a
/// lenient read exhausted its error budget.
class ResourceLimit : public IoError {
 public:
  using IoError::IoError;
};

/// Sanity caps applied to on-disk headers *before* any allocation. A
/// corrupt count/dim field can therefore never trigger an allocation
/// bomb: readers also grow buffers incrementally, so allocation stays
/// proportional to bytes actually present in the stream.
struct IoLimits {
  /// Max records a trace/embedding header may declare (default 2^36:
  /// ~1 TB of 16-byte packet records, far beyond any real capture).
  std::uint64_t max_records = std::uint64_t{1} << 36;
  /// Max embedding dimensionality.
  std::int64_t max_dim = std::int64_t{1} << 16;
};

/// How a reader reacts to malformed input.
enum class IoMode : std::uint8_t {
  kStrict,   ///< throw a typed error at the first malformed record
  kLenient,  ///< skip malformed records, report them
};

struct IoPolicy {
  IoMode mode = IoMode::kStrict;
  /// Lenient only: give up (ResourceLimit) once this many records have
  /// been skipped — a file that is mostly garbage is not worth reading.
  std::size_t error_budget = 10000;
  /// Keep at most this many per-record diagnostics in the report.
  std::size_t max_diagnostics = 8;
  IoLimits limits;

  [[nodiscard]] bool lenient() const { return mode == IoMode::kLenient; }

  [[nodiscard]] static IoPolicy strict() { return IoPolicy{}; }
  [[nodiscard]] static IoPolicy lenient_with(std::size_t budget) {
    IoPolicy p;
    p.mode = IoMode::kLenient;
    p.error_budget = budget;
    return p;
  }
};

/// One skipped/suspect record.
struct IoDiagnostic {
  /// 1-based record (or line) number within the input.
  std::size_t record = 0;
  std::string message;
};

/// What a reader actually did: filled in by the policy-taking overloads,
/// meaningful mostly in lenient mode (strict either succeeds cleanly or
/// throws).
struct IoReport {
  std::size_t records_read = 0;
  std::size_t records_skipped = 0;
  /// True when the input carried a v2 CRC32 footer that matched. For a
  /// multi-file load (load_model) this means every footer present
  /// matched; see checksum_failed for the contradicting case.
  bool checksum_verified = false;
  /// True when a CRC32 footer was present but did not match (lenient
  /// mode records this and keeps going; strict throws instead).
  bool checksum_failed = false;
  /// First `IoPolicy::max_diagnostics` problems, in input order.
  std::vector<IoDiagnostic> diagnostics;
  /// Problems beyond the diagnostics cap (still counted above).
  std::size_t diagnostics_dropped = 0;

  [[nodiscard]] bool clean() const {
    return records_skipped == 0 && diagnostics.empty();
  }

  /// One-line human-readable summary ("read 1200 records, skipped 3 ...").
  [[nodiscard]] std::string summary() const {
    std::string s = "read " + std::to_string(records_read) +
                    " records, skipped " + std::to_string(records_skipped);
    if (checksum_verified) s += ", checksum ok";
    if (checksum_failed) s += ", CHECKSUM MISMATCH";
    if (!diagnostics.empty()) {
      s += "; first problem: record " +
           std::to_string(diagnostics.front().record) + ": " +
           diagnostics.front().message;
    }
    return s;
  }
};

namespace detail {

/// Shared reaction to a malformed record: strict throws E, lenient logs a
/// diagnostic (up to the cap) and throws ResourceLimit past the budget.
/// The caller skips the record iff this returns.
template <typename E = ParseError>
void bad_record(const IoPolicy& policy, IoReport* report,
                std::size_t record_no, const std::string& message) {
  if (!policy.lenient()) throw E(message);
  std::size_t skipped = 1;
  if (report != nullptr) {
    ++report->records_skipped;
    skipped = report->records_skipped;
    if (report->diagnostics.size() < policy.max_diagnostics) {
      report->diagnostics.push_back(IoDiagnostic{record_no, message});
    } else {
      ++report->diagnostics_dropped;
    }
  }
  if (skipped > policy.error_budget) {
    throw ResourceLimit("error budget exhausted (" +
                        std::to_string(policy.error_budget) +
                        " records skipped); last: " + message);
  }
}

/// A structural problem that strict rejects but lenient merely records
/// (e.g. checksum mismatch, trailing bytes): it does not consume a
/// record, so it bypasses the budget.
inline void suspect_input(const IoPolicy& policy, IoReport* report,
                          std::size_t record_no, const std::string& message) {
  if (!policy.lenient()) throw FormatError(message);
  if (report == nullptr) return;
  if (report->diagnostics.size() < policy.max_diagnostics) {
    report->diagnostics.push_back(IoDiagnostic{record_no, message});
  } else {
    ++report->diagnostics_dropped;
  }
}

}  // namespace detail

}  // namespace darkvec::io
