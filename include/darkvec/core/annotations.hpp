// Thread-safety annotations and annotated synchronization primitives.
//
// The parallel determinism contract in core/parallel.hpp and the other
// concurrency invariants of the library are enforced at compile time by
// Clang's -Wthread-safety analysis. Every piece of shared mutable state
// is declared DV_GUARDED_BY a capability (a core::Mutex), and every
// function that touches it either acquires the capability or declares
// DV_REQUIRES — so an unguarded access is a compile error under Clang,
// not a code-review finding. Under GCC (no analysis) the macros expand
// to nothing and the wrappers cost exactly what the std primitives cost.
//
// Project lint (tools/darkvec_lint.py, rule naked-mutex) rejects raw
// std::mutex / std::condition_variable outside this header: shared state
// must use core::Mutex so the analysis can see it.
#pragma once

#include <condition_variable>
#include <mutex>
#include <utility>

#if defined(__clang__)
#define DV_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define DV_THREAD_ANNOTATION(x)
#endif

/// Marks a class as a capability (lockable) for the analysis.
#define DV_CAPABILITY(x) DV_THREAD_ANNOTATION(capability(x))
/// Marks an RAII class whose constructor acquires and destructor releases.
#define DV_SCOPED_CAPABILITY DV_THREAD_ANNOTATION(scoped_lockable)
/// Data member readable/writable only while holding the capability.
#define DV_GUARDED_BY(x) DV_THREAD_ANNOTATION(guarded_by(x))
/// Pointee guarded by the capability (the pointer itself is not).
#define DV_PT_GUARDED_BY(x) DV_THREAD_ANNOTATION(pt_guarded_by(x))
/// Function callable only while holding the listed capabilities.
#define DV_REQUIRES(...) DV_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// Function acquires the capability and does not release it.
#define DV_ACQUIRE(...) DV_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
/// Function releases a held capability.
#define DV_RELEASE(...) DV_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/// Function tries to acquire; first argument is the success return value.
#define DV_TRY_ACQUIRE(...) \
  DV_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
/// Function must NOT be called with the capability held (deadlock guard).
#define DV_EXCLUDES(...) DV_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Runtime assertion to the analysis that the capability is held. Used by
/// worker-thread bodies whose synchronization is established externally
/// (the coordinating thread holds the session lock for the whole call).
#define DV_ASSERT_CAPABILITY(x) DV_THREAD_ANNOTATION(assert_capability(x))
/// Function returns a reference to the named capability.
#define DV_RETURN_CAPABILITY(x) DV_THREAD_ANNOTATION(lock_returned(x))
/// Escape hatch: disables the analysis for one function. Every use needs
/// a comment explaining the external synchronization.
#define DV_NO_THREAD_SAFETY_ANALYSIS \
  DV_THREAD_ANNOTATION(no_thread_safety_analysis)

/// Marks a function whose data races are *by design* (Hogwild SGD:
/// lock-free, last-write-wins updates to shared weights), exempting it
/// from ThreadSanitizer so TSan runs flag real bugs, not the documented
/// algorithm. Every use needs a comment citing the racy-by-design
/// justification.
#if defined(__clang__) || defined(__GNUC__)
#define DV_BENIGN_RACE_FUNCTION __attribute__((no_sanitize("thread")))
#else
#define DV_BENIGN_RACE_FUNCTION
#endif

namespace darkvec::core {

/// std::mutex with a capability annotation so the analysis can track it.
class DV_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() DV_ACQUIRE() { mu_.lock(); }
  void unlock() DV_RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool try_lock() DV_TRY_ACQUIRE(true) {
    return mu_.try_lock();
  }

  /// Tells the analysis this thread may access state guarded by *this:
  /// the capability is held on its behalf by another thread for the
  /// duration of the call (externally-synchronized worker bodies).
  void assert_held() const DV_ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock for core::Mutex, visible to the analysis as a scoped
/// capability (the std::lock_guard equivalent).
class DV_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) DV_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() DV_RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with core::Mutex. wait() requires the mutex
/// held (checked by the analysis); it is released while blocked and
/// reacquired before returning, like std::condition_variable.
class CondVar {
 public:
  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  template <typename Predicate>
  void wait(Mutex& mu, Predicate pred) DV_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock, std::move(pred));
    lock.release();  // the caller's MutexLock still owns the mutex
  }

 private:
  std::condition_variable cv_;
};

}  // namespace darkvec::core
