// CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320) for the v2 on-disk
// formats' integrity footers. Table-driven, computed at compile time;
// header-only so the leaf I/O libraries need no extra link dependency.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace darkvec::io {

namespace detail {

constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32Table =
    make_crc32_table();

}  // namespace detail

/// Incremental CRC32. Feed byte ranges with update(), read the digest
/// with value(); matches zlib's crc32() for the same bytes.
class Crc32 {
 public:
  void update(const void* data, std::size_t len) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    std::uint32_t c = state_;
    for (std::size_t i = 0; i < len; ++i) {
      c = detail::kCrc32Table[(c ^ bytes[i]) & 0xFFu] ^ (c >> 8);
    }
    state_ = c;
  }

  [[nodiscard]] std::uint32_t value() const { return state_ ^ 0xFFFFFFFFu; }

  void reset() { state_ = 0xFFFFFFFFu; }

 private:
  std::uint32_t state_ = 0xFFFFFFFFu;
};

/// One-shot convenience.
[[nodiscard]] inline std::uint32_t crc32(const void* data, std::size_t len) {
  Crc32 crc;
  crc.update(data, len);
  return crc.value();
}

}  // namespace darkvec::io
