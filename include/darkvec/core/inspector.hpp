// Cluster inspection (Section 7.3 / Table 5): per-cluster traffic
// characterization replacing the paper's manual whois/rDNS investigation
// with the simulator's oracle and automatic port/subnet statistics.
#pragma once

#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "darkvec/corpus/corpus.hpp"
#include "darkvec/net/trace.hpp"
#include "darkvec/sim/labels.hpp"

namespace darkvec {

/// Everything Table 5 reports about one cluster, plus the oracle
/// composition used for validation.
struct ClusterInfo {
  int id = 0;
  std::vector<net::IPv4> members;
  std::size_t packets = 0;
  /// Distinct (port, proto) pairs targeted by the cluster.
  std::vector<net::PortKey> ports;
  /// Top ports by traffic share, descending.
  std::vector<std::pair<net::PortKey, double>> top_ports;
  std::size_t distinct_slash24 = 0;
  std::size_t distinct_slash16 = 0;
  /// Fraction of member senders that sent >= 1 Mirai-fingerprint packet.
  double fingerprint_fraction = 0;
  /// Mean silhouette of members (filled by the caller when available).
  double silhouette = 0;
  /// Oracle: generator group -> member count.
  std::unordered_map<std::string, std::size_t> group_composition;
  /// Largest oracle group and its fraction of the cluster.
  std::string dominant_group;
  double dominant_fraction = 0;

  [[nodiscard]] std::size_t size() const { return members.size(); }
};

/// Builds per-cluster reports from a clustering `assignment` over
/// `corpus.words`. `silhouette` may be empty (then 0 is reported); when
/// given it must align with corpus words. Returned clusters are sorted by
/// decreasing size.
[[nodiscard]] std::vector<ClusterInfo> inspect_clusters(
    const net::Trace& trace, const corpus::Corpus& corpus,
    std::span<const int> assignment, const sim::GroupMap& oracle,
    std::span<const double> silhouette = {});

/// Jaccard index of the port sets of two clusters (Section 7.3.1 reports
/// the inter-cluster mean for the Censys sub-clusters).
[[nodiscard]] double port_jaccard(const ClusterInfo& a, const ClusterInfo& b);

/// Mean pairwise port-set Jaccard across the given clusters (0 for < 2).
[[nodiscard]] double mean_pairwise_port_jaccard(
    std::span<const ClusterInfo> clusters);

}  // namespace darkvec
