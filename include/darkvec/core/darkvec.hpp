// The DarkVec pipeline (Figure 4 of the paper): trace -> service-split
// corpus -> single skip-gram embedding -> semi-supervised k-NN /
// unsupervised k'-NN graph + Louvain.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "darkvec/corpus/corpus.hpp"
#include "darkvec/corpus/service_map.hpp"
#include "darkvec/graph/louvain.hpp"
#include "darkvec/ml/knn.hpp"
#include "darkvec/net/trace.hpp"
#include "darkvec/w2v/skipgram.hpp"

namespace darkvec {

/// End-to-end configuration of one DarkVec run. Defaults are the paper's
/// chosen operating point: domain-knowledge services, ΔT = 1 h, activity
/// threshold 10 packets, V = 50, c = 25.
struct DarkVecConfig {
  corpus::ServiceStrategy services = corpus::ServiceStrategy::kDomain;
  /// Top-n for the auto-defined service strategy (the paper uses 10).
  int auto_top_n = 10;
  corpus::CorpusOptions corpus;
  w2v::SkipGramOptions w2v;
  /// Crash-safety knobs of the training loop (checkpoint path, cadence,
  /// resume). Defaults leave checkpointing off.
  w2v::TrainControl train;
};

/// Result of an unsupervised clustering pass.
struct Clustering {
  /// Cluster id per corpus word (same indexing as DarkVec::corpus().words).
  std::vector<int> assignment;
  double modularity = 0;
  int count = 0;
};

/// Trains and holds one DarkVec embedding over a darknet trace.
///
/// Typical use:
///   DarkVec dv(config);
///   dv.fit(trace);                     // corpus + skip-gram training
///   auto& knn = dv.knn();              // cosine index over all senders
///   auto clusters = dv.cluster(3);     // Louvain over the 3-NN graph
class DarkVec {
 public:
  explicit DarkVec(DarkVecConfig config = {});

  /// Builds the corpus from `trace` (must be sorted) and trains the
  /// embedding. Returns training statistics (pairs, wall time).
  w2v::TrainStats fit(const net::Trace& trace);

  /// The tokenized corpus (valid after fit()).
  [[nodiscard]] const corpus::Corpus& corpus() const { return corpus_; }

  /// The trained embedding; row i embeds corpus().words[i].
  [[nodiscard]] const w2v::Embedding& embedding() const;

  /// Lazily built cosine k-NN index over the embedding.
  [[nodiscard]] const ml::CosineKnn& knn() const;

  /// Embedding row of `ip`, or nullopt if the sender did not survive the
  /// activity filter.
  [[nodiscard]] std::optional<std::size_t> index_of(net::IPv4 ip) const;

  /// Unsupervised clustering: Louvain over the k'-NN graph (Section 7).
  [[nodiscard]] Clustering cluster(int k_prime,
                                   std::uint64_t seed = 1) const;

  /// Same clustering with opt-in approximate neighbour lists for the
  /// k'-NN graph. `ann` disabled matches the overload above
  /// bit-identically.
  [[nodiscard]] Clustering cluster(int k_prime, std::uint64_t seed,
                                   const ml::AnnSearchParams& ann) const;

  [[nodiscard]] const DarkVecConfig& config() const { return config_; }

 private:
  DarkVecConfig config_;
  corpus::Corpus corpus_;
  std::unique_ptr<w2v::SkipGramModel> model_;
  mutable std::unique_ptr<ml::CosineKnn> knn_;
};

}  // namespace darkvec
