// Crash-safe file persistence: write to `<path>.tmp`, flush, then rename
// over `path`. POSIX rename is atomic within a filesystem, so a reader
// never observes a half-written file and a crash mid-write leaves any
// previous version of `path` intact. Header-only.
#pragma once

#include <cstdio>
#include <fstream>
#include <ios>
#include <string>
#include <utility>

#include "darkvec/core/errors.hpp"

namespace darkvec::io {

/// Runs `fn(std::ostream&)` against `<path>.tmp` and renames the result
/// over `path` on success. On any failure (fn throws, write error,
/// rename error) the temporary is removed, `path` is untouched, and the
/// error propagates (stream failures become IoError).
template <typename Fn>
void atomic_write_file(const std::string& path, std::ios::openmode mode,
                       Fn&& fn) {
  const std::string tmp = path + ".tmp";
  try {
    {
      std::ofstream out(tmp, mode | std::ios::trunc);
      if (!out) throw IoError("cannot open " + tmp + " for writing");
      std::forward<Fn>(fn)(static_cast<std::ostream&>(out));
      out.flush();
      if (!out) throw IoError("write failed for " + tmp);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
      throw IoError("cannot rename " + tmp + " over " + path);
    }
  } catch (...) {
    std::remove(tmp.c_str());
    throw;
  }
}

}  // namespace darkvec::io
