// Streaming operation: periodic retraining over a sliding window, with
// successive embeddings aligned into a common space.
//
// The paper trains one model per dataset, but its operational story —
// spotting the ADB worm "since the beginning of our trace" and watching
// the cluster grow (Figure 15), or extending the ground truth day by day —
// implies exactly this mode: retrain on the last W days every step,
// cluster, and follow groups across retrains. Successive latent spaces are
// arbitrary rotations of each other, so each snapshot is Procrustes-
// aligned to its predecessor over the shared senders (see transfer.hpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "darkvec/core/darkvec.hpp"
#include "darkvec/core/runtime/runtime.hpp"
#include "darkvec/core/transfer.hpp"
#include "darkvec/net/time.hpp"
#include "darkvec/obs/health.hpp"

namespace darkvec {

struct StreamingConfig {
  /// Sliding training window length.
  std::int64_t window_seconds = 10 * net::kSecondsPerDay;
  /// Retrain period.
  std::int64_t step_seconds = 2 * net::kSecondsPerDay;
  /// Per-retrain DarkVec configuration.
  DarkVecConfig darkvec;
  /// k' of the per-snapshot Louvain clustering.
  int k_prime = 3;
  /// Align each snapshot's embedding onto the previous one (rotations
  /// compose, so all snapshots end up in the first snapshot's space).
  bool align = true;
  /// Emit a degraded placeholder snapshot for windows that cannot be
  /// trained (all-quiet, sub-threshold vocabulary, or a fit/cluster
  /// failure) instead of silently dropping them from the schedule.
  bool record_degraded = true;
  /// Non-empty: after every processed window, persist a DVCK "STRM"
  /// checkpoint to this file (atomically — valid or absent) holding the
  /// window cursor and the alignment anchor, so a killed run can pick up
  /// from the window after the last one it finished.
  std::string checkpoint_path;
  /// Load checkpoint_path (when it exists) and continue from the stored
  /// cursor with the stored anchor instead of starting at the trace head.
  /// Snapshots from the prior run are not re-emitted; the result reports
  /// how many there were.
  bool resume = false;
  /// Model-health monitoring (obs/health.hpp): every window — degraded
  /// ones included — is fed to a HealthMonitor, and the per-window drift
  /// reports land in StreamingResult::health. After a resume the monitor
  /// starts fresh (the checkpoint carries the alignment anchor, not the
  /// drift reference), so the first window after a resume is a new
  /// baseline rather than a spurious churn alarm.
  bool health = true;
  obs::HealthThresholds health_thresholds;
};

/// One retrain of the sliding window.
struct StreamSnapshot {
  std::int64_t window_start = 0;
  std::int64_t window_end = 0;
  /// Senders embedded in this window (row order of `embedding`).
  std::vector<net::IPv4> senders;
  /// Embedding, rotated into the common space when alignment is on.
  w2v::Embedding embedding;
  /// Louvain clustering of this window's embedding.
  Clustering clustering;
  /// Mean anchor cosine to the previous snapshot after alignment
  /// (0 for the first snapshot or when alignment is off/impossible).
  double alignment_similarity = 0;
  /// True when this window produced no usable model (see degraded_reason);
  /// senders/embedding/clustering are empty in that case.
  bool degraded = false;
  std::string degraded_reason;
};

/// One window that threw mid-run: the structured partial-failure report
/// entry (paired with the degraded placeholder snapshot, which carries
/// the same reason inline with the schedule).
struct WindowFailure {
  std::int64_t window_start = 0;
  std::int64_t window_end = 0;
  std::string error;
};

/// Everything a streaming run produced, including what went wrong.
struct StreamingResult {
  std::vector<StreamSnapshot> snapshots;
  /// Windows that threw (std::exception) and were degraded in place.
  std::vector<WindowFailure> failures;
  /// False when the run was stopped early by its RunContext (cancel,
  /// strict deadline, budget). Completed snapshots are still returned.
  bool completed = true;
  runtime::StopReason stop_reason = runtime::StopReason::kNone;
  std::string abort_reason;
  /// True when a checkpoint was loaded; prior_snapshots counts the
  /// windows the earlier run(s) already emitted (not re-emitted here).
  bool resumed = false;
  std::uint64_t prior_snapshots = 0;
  /// One drift report per processed window when StreamingConfig::health
  /// is on (degraded windows get degraded reports). Render/persist with
  /// obs::health_report_json / obs::write_health_report.
  std::vector<obs::WindowHealth> health;
};

/// Runs the sliding-window pipeline over a full (sorted) trace.
///
/// Windows are [end - window, end) for end = t0+window, +step, ... until
/// the trace is exhausted. Each snapshot is self-contained; alignment
/// failures (no shared senders) degrade gracefully to unaligned output.
[[nodiscard]] std::vector<StreamSnapshot> run_streaming(
    const net::Trace& trace, const StreamingConfig& config);

/// run_streaming with full reporting, checkpoint/resume, and cooperative
/// cancellation. Observes the ambient runtime context between windows
/// and inside each window's fit: an interruption stops the stream at the
/// current window and returns everything completed so far (plus the
/// stop reason) rather than throwing — the snapshots are valid work.
/// A window that throws an ordinary exception is degraded and reported
/// in `failures`; the stream continues.
[[nodiscard]] StreamingResult run_streaming_monitored(
    const net::Trace& trace, const StreamingConfig& config);

/// Follows a group of senders through snapshots: for each snapshot,
/// reports how many of them are embedded and the size of the largest
/// cluster fraction they form.
struct GroupTrack {
  std::int64_t window_end = 0;
  /// Group members embedded in this snapshot.
  std::size_t present = 0;
  /// Members inside the single cluster holding most of them.
  std::size_t clustered_together = 0;
  /// Total size of that cluster (members + adopted senders).
  std::size_t cluster_size = 0;
};

[[nodiscard]] std::vector<GroupTrack> track_group(
    std::span<const StreamSnapshot> snapshots,
    std::span<const net::IPv4> group);

}  // namespace darkvec
