// Contract macros: machine-checked statements of the library's invariants.
//
//   DV_PRECONDITION(cond, "Component: what the caller must guarantee")
//   DV_POSTCONDITION(cond, "Component: what this function guarantees")
//   DV_INVARIANT(cond, "Component: what always holds in between")
//
// Each macro names the violated invariant, so a failure reads as a
// diagnosis ("precondition violated: k > 0 [CosineKnn: k must be
// positive] at src/ml/knn.cpp:17"), not a bare abort. Unlike the io::
// error taxonomy (hostile *data*, recoverable by policy), a contract
// violation is a *programming* error in the caller or in the library and
// is never downgraded by IoPolicy.
//
// Build-selectable modes, one per translation unit at include time:
//   (default)              violated contracts throw darkvec::ContractViolation
//                          (derives from std::logic_error)
//   DARKVEC_CONTRACTS_TRAP violated contracts __builtin_trap() — for
//                          sanitizer/fuzz builds where unwinding hides bugs
//   DARKVEC_CONTRACTS_OFF  contracts compile to nothing; the condition is
//                          NOT evaluated (sizeof-guarded, so it must still
//                          parse — contracts cannot rot)
//
// The whole build selects a mode with -DDARKVEC_CONTRACTS=throw|trap|off
// (see the top-level CMakeLists).
#pragma once

#include <stdexcept>
#include <string>

namespace darkvec {

/// Thrown (in the default mode) when a DV_* contract is violated.
class ContractViolation : public std::logic_error {
 public:
  enum class Kind { kPrecondition, kPostcondition, kInvariant };

  ContractViolation(Kind kind, const char* expression, const char* invariant,
                    const char* file, int line)
      : std::logic_error(format(kind, expression, invariant, file, line)),
        kind_(kind) {}

  [[nodiscard]] Kind kind() const noexcept { return kind_; }

 private:
  static std::string format(Kind kind, const char* expression,
                            const char* invariant, const char* file,
                            int line) {
    const char* name = kind == Kind::kPrecondition    ? "precondition"
                       : kind == Kind::kPostcondition ? "postcondition"
                                                      : "invariant";
    std::string s;
    s += name;
    s += " violated: ";
    s += expression;
    s += " [";
    s += invariant;
    s += "] at ";
    s += file;
    s += ":";
    s += std::to_string(line);
    return s;
  }

  Kind kind_;
};

namespace detail {

[[noreturn]] inline void contract_failed(ContractViolation::Kind kind,
                                         const char* expression,
                                         const char* invariant,
                                         const char* file, int line) {
  throw ContractViolation(kind, expression, invariant, file, line);
}

}  // namespace detail
}  // namespace darkvec

#if defined(DARKVEC_CONTRACTS_OFF)
// Off: zero cost, condition unevaluated but still type-checked.
#define DV_CONTRACT_CHECK(kind, cond, invariant) \
  static_cast<void>(sizeof(!(cond)))
#elif defined(DARKVEC_CONTRACTS_TRAP)
#define DV_CONTRACT_CHECK(kind, cond, invariant) \
  ((cond) ? static_cast<void>(0) : __builtin_trap())
#else
#define DV_CONTRACT_CHECK(kind, cond, invariant)                        \
  ((cond) ? static_cast<void>(0)                                        \
          : ::darkvec::detail::contract_failed(                         \
                ::darkvec::ContractViolation::Kind::kind, #cond,        \
                invariant, __FILE__, __LINE__))
#endif

/// What the caller must guarantee before the call.
#define DV_PRECONDITION(cond, invariant) \
  DV_CONTRACT_CHECK(kPrecondition, cond, invariant)
/// What the function guarantees on return.
#define DV_POSTCONDITION(cond, invariant) \
  DV_CONTRACT_CHECK(kPostcondition, cond, invariant)
/// What holds at this point regardless of inputs.
#define DV_INVARIANT(cond, invariant) \
  DV_CONTRACT_CHECK(kInvariant, cond, invariant)
