// Blessed byte-level stream (de)serialization helpers.
//
// This header is the ONLY place in the library allowed to reinterpret
// bytes as objects (lint rule reinterpret-cast). Scalar header fields go
// through a stack byte buffer and std::memcpy, so a load can never be
// misaligned or violate strict aliasing no matter where the caller's
// field lives; bulk arrays are read straight into the caller's typed
// buffer, whose alignment is guaranteed by its own type, through the
// object-representation char* that [basic.types.general] blesses.
//
// All helpers report how many bytes the stream actually yielded instead
// of relying on stream state, because the readers' truncation handling
// (io::TruncatedInput with a record number) needs exact byte counts for
// both diagnostics and CRC folding of partial tails.
#pragma once

#include <cstring>
#include <istream>
#include <ostream>
#include <type_traits>

namespace darkvec::io {

/// Reads sizeof(T) bytes into `out`. Returns false (leaving `out`
/// untouched) if the stream yields fewer bytes.
template <typename T>
[[nodiscard]] bool read_pod(std::istream& in, T& out) {
  static_assert(std::is_trivially_copyable_v<T>,
                "read_pod requires a trivially copyable type");
  char buf[sizeof(T)];
  in.read(buf, sizeof buf);
  if (static_cast<std::size_t>(in.gcount()) != sizeof buf) return false;
  std::memcpy(&out, buf, sizeof buf);
  return true;
}

/// Reads up to `count` elements into `dst`; returns the number of BYTES
/// the stream yielded (callers derive whole elements and fold partial
/// tails into their CRC).
template <typename T>
[[nodiscard]] std::size_t read_array_bytes(std::istream& in, T* dst,
                                           std::size_t count) {
  static_assert(std::is_trivially_copyable_v<T>,
                "read_array_bytes requires a trivially copyable type");
  in.read(reinterpret_cast<char*>(dst),
          static_cast<std::streamsize>(count * sizeof(T)));
  return static_cast<std::size_t>(in.gcount());
}

/// Writes the object representation of `value`.
template <typename T>
void write_pod(std::ostream& out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>,
                "write_pod requires a trivially copyable type");
  char buf[sizeof(T)];
  std::memcpy(buf, &value, sizeof buf);
  out.write(buf, sizeof buf);
}

/// Writes `count` elements from `src`.
template <typename T>
void write_array(std::ostream& out, const T* src, std::size_t count) {
  static_assert(std::is_trivially_copyable_v<T>,
                "write_array requires a trivially copyable type");
  out.write(reinterpret_cast<const char*>(src),
            static_cast<std::streamsize>(count * sizeof(T)));
}

}  // namespace darkvec::io
