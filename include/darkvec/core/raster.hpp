// Activity rasters: the sender-vs-time dot plots of Figures 1b, 9 and
// 12-15, rendered as a boolean presence matrix (and, for terminals, as
// ASCII art by the bench binaries).
#pragma once

#include <string>
#include <vector>

#include "darkvec/net/trace.hpp"

namespace darkvec {

/// Presence matrix: rows are senders (ordered as given), columns are time
/// buckets of `bucket_seconds` starting at the trace start.
struct ActivityRaster {
  std::vector<net::IPv4> senders;           ///< row order
  std::vector<std::vector<bool>> presence;  ///< [sender][bucket]
  std::int64_t t0 = 0;
  std::int64_t bucket_seconds = 0;

  [[nodiscard]] std::size_t buckets() const {
    return presence.empty() ? 0 : presence[0].size();
  }
};

/// Builds the raster of `senders` over `trace` (must be sorted). Senders
/// with no packets keep all-false rows.
[[nodiscard]] ActivityRaster build_raster(
    const net::Trace& trace, std::vector<net::IPv4> senders,
    std::int64_t bucket_seconds);

/// Renders the raster as ASCII: one line per sender, '#' for active
/// buckets, '.' otherwise. `max_rows` subsamples evenly when the sender
/// list is long (0 = all rows).
[[nodiscard]] std::string render_raster(const ActivityRaster& raster,
                                        std::size_t max_rows = 40);

/// Convenience ordering: senders sorted by first packet timestamp (the
/// y-ordering of Figure 1b).
[[nodiscard]] std::vector<net::IPv4> senders_by_first_seen(
    const net::Trace& trace);

}  // namespace darkvec
