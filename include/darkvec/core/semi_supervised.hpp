// Semi-supervised analyses on top of a trained DarkVec embedding:
// the leave-one-out k-NN validation of Section 6 and the ground-truth
// extension procedure of Section 6.4.
#pragma once

#include <vector>

#include "darkvec/core/darkvec.hpp"
#include "darkvec/ml/metrics.hpp"
#include "darkvec/sim/labels.hpp"

namespace darkvec {

/// The evaluation set of the paper: senders that (i) appear in the last
/// day of `trace` and (ii) pass the activity filter over the whole trace.
[[nodiscard]] std::vector<net::IPv4> last_day_active_senders(
    const net::Trace& trace, std::size_t min_packets = 10);

/// Outcome of a leave-one-out k-NN evaluation.
struct KnnEvaluation {
  /// Per-class report over the evaluated senders; class ids follow
  /// sim::GtClass (Unknown included as the last class).
  ml::ClassificationReport report;
  /// The paper's headline accuracy: over GT1-GT9 senders only.
  double accuracy = 0;
  /// Evaluated senders present in the embedding / total evaluated senders
  /// (the "coverage" of Table 3 and Figure 6).
  std::size_t covered = 0;
  std::size_t total = 0;

  [[nodiscard]] double coverage() const {
    return total == 0 ? 0.0
                      : static_cast<double>(covered) /
                            static_cast<double>(total);
  }
};

/// Leave-one-out k-NN over `eval_ips`.
///
/// Each embedded sender votes with its label (`labels`, Unknown when
/// absent). Senders of `eval_ips` missing from the embedding reduce
/// coverage and are excluded from the report, as in the paper.
[[nodiscard]] KnnEvaluation evaluate_knn(const DarkVec& dv,
                                         const sim::LabelMap& labels,
                                         std::span<const net::IPv4> eval_ips,
                                         int k);

/// Same evaluation with opt-in approximate neighbour lists (`ann`
/// threaded down to ml::loo_knn_predict). Disabled is the exact
/// overload above, bit-identically.
[[nodiscard]] KnnEvaluation evaluate_knn(const DarkVec& dv,
                                         const sim::LabelMap& labels,
                                         std::span<const net::IPv4> eval_ips,
                                         int k,
                                         const ml::AnnSearchParams& ann);

/// Same evaluation over an arbitrary sender-vector matrix (used to score
/// the baselines — port features, DANTE, IP2VEC — with identical
/// methodology). `row_ips[i]` names row i of `vectors`.
[[nodiscard]] KnnEvaluation evaluate_knn_vectors(
    const w2v::Embedding& vectors, std::span<const net::IPv4> row_ips,
    const sim::LabelMap& labels, std::span<const net::IPv4> eval_ips, int k);

/// An Unknown sender proposed for labeling by the Section 6.4 procedure.
struct ExtensionCandidate {
  net::IPv4 ip;
  sim::GtClass predicted = sim::GtClass::kUnknown;
  /// Mean cosine distance to its k nearest neighbours.
  double avg_distance = 0;
};

/// Ground-truth extension: Unknown embedded senders whose k-NN majority is
/// a GT class and whose mean neighbour distance does not exceed the
/// largest mean neighbour distance seen among that class's own labeled
/// members. Sorted by increasing distance (most trustworthy first).
[[nodiscard]] std::vector<ExtensionCandidate> extend_ground_truth(
    const DarkVec& dv, const sim::LabelMap& labels, int k);

}  // namespace darkvec
