// Persistence of a trained DarkVec model: the embedding matrix plus the
// sender vocabulary that names its rows. Lets one process train (hours on
// real traces) and others classify/cluster without retraining.
#pragma once

#include <string>
#include <vector>

#include "darkvec/net/ipv4.hpp"
#include "darkvec/w2v/embedding.hpp"

namespace darkvec {

/// A trained sender embedding ready for k-NN / clustering use.
struct SenderModel {
  /// Row i of `embedding` is the vector of `senders[i]`.
  std::vector<net::IPv4> senders;
  w2v::Embedding embedding;

  /// Row of `ip` or -1.
  [[nodiscard]] std::int64_t index_of(net::IPv4 ip) const;
};

/// Writes `model` as `prefix.emb` (binary embedding) and `prefix.vocab`
/// (one dotted-quad address per line, row order). Throws on I/O errors.
void save_model(const std::string& prefix, const SenderModel& model);

/// Loads a model previously written by save_model. Throws on missing
/// files, malformed vocab lines, or a row-count mismatch between the two
/// files.
[[nodiscard]] SenderModel load_model(const std::string& prefix);

}  // namespace darkvec
