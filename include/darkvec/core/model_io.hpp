// Persistence of a trained DarkVec model: the embedding matrix plus the
// sender vocabulary that names its rows. Lets one process train (hours on
// real traces) and others classify/cluster without retraining.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "darkvec/core/annotations.hpp"
#include "darkvec/core/errors.hpp"
#include "darkvec/net/ipv4.hpp"
#include "darkvec/w2v/embedding.hpp"

namespace darkvec {

/// A trained sender embedding ready for k-NN / clustering use.
struct SenderModel {
  SenderModel() = default;
  SenderModel(std::vector<net::IPv4> model_senders,
              w2v::Embedding model_embedding)
      : senders(std::move(model_senders)),
        embedding(std::move(model_embedding)) {}

  // The lazy index (and its mutex) is per-object state, not part of the
  // model's value: copies and moves transfer the data rows and start
  // with a cold index.
  SenderModel(const SenderModel& other)
      : senders(other.senders), embedding(other.embedding) {}
  SenderModel(SenderModel&& other) noexcept
      : senders(std::move(other.senders)),
        embedding(std::move(other.embedding)) {}
  SenderModel& operator=(const SenderModel& other) {
    if (this != &other) {
      senders = other.senders;
      embedding = other.embedding;
      invalidate_index();
    }
    return *this;
  }
  SenderModel& operator=(SenderModel&& other) noexcept {
    if (this != &other) {
      senders = std::move(other.senders);
      embedding = std::move(other.embedding);
      invalidate_index();
    }
    return *this;
  }
  ~SenderModel() = default;

  /// Row i of `embedding` is the vector of `senders[i]`.
  // dv-suppress(guarded-field): single-writer payload; index_mu_ guards only the lazy index
  std::vector<net::IPv4> senders;
  // dv-suppress(guarded-field): single-writer payload; index_mu_ guards only the lazy index
  w2v::Embedding embedding;

  /// Row of `ip` or -1. O(1) through a hash index built lazily on the
  /// first lookup. Safe to call from concurrent readers: the build and
  /// every lookup hold the index mutex. Call invalidate_index() after
  /// mutating `senders`.
  [[nodiscard]] std::int64_t index_of(net::IPv4 ip) const;

  /// Drops the lazy lookup index; the next index_of() rebuilds it.
  void invalidate_index() {
    core::MutexLock lock(index_mu_);
    index_.clear();
  }

 private:
  mutable core::Mutex index_mu_;
  mutable std::unordered_map<net::IPv4, std::int64_t> index_
      DV_GUARDED_BY(index_mu_);
};

/// Writes `model` as `prefix.emb` (v2 binary embedding, CRC32 footer) and
/// `prefix.vocab` (one dotted-quad address per line, row order, plus a
/// `#crc32 <hex>` footer line). Both files are fully written to `.tmp`
/// siblings before either rename, so an interruption any time before the
/// renames leaves a previous model completely intact. Throws io::IoError
/// on failure.
void save_model(const std::string& prefix, const SenderModel& model);

/// Loads a model previously written by save_model (current v2 layout or
/// the v1 layout without checksums). Strict mode throws typed io:: errors
/// on missing files, malformed or duplicate vocab lines, checksum
/// mismatches, or a row-count mismatch between the two files. Lenient
/// mode drops each bad/duplicate vocab row *together with its embedding
/// row* (keeping rows aligned), reconciles a row-count mismatch by
/// truncating to the shorter side, and records everything in `report`.
[[nodiscard]] SenderModel load_model(const std::string& prefix,
                                     const io::IoPolicy& policy,
                                     io::IoReport* report = nullptr);

/// Legacy strict-mode signature.
[[nodiscard]] SenderModel load_model(const std::string& prefix);

}  // namespace darkvec
