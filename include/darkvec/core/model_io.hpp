// Persistence of a trained DarkVec model: the embedding matrix plus the
// sender vocabulary that names its rows. Lets one process train (hours on
// real traces) and others classify/cluster without retraining.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "darkvec/core/errors.hpp"
#include "darkvec/net/ipv4.hpp"
#include "darkvec/w2v/embedding.hpp"

namespace darkvec {

/// A trained sender embedding ready for k-NN / clustering use.
struct SenderModel {
  SenderModel() = default;
  SenderModel(std::vector<net::IPv4> senders, w2v::Embedding embedding)
      : senders(std::move(senders)), embedding(std::move(embedding)) {}

  /// Row i of `embedding` is the vector of `senders[i]`.
  std::vector<net::IPv4> senders;
  w2v::Embedding embedding;

  /// Row of `ip` or -1. O(1) through a hash index built lazily on the
  /// first lookup; call invalidate_index() after mutating `senders`.
  /// (The first lookup is not safe to race with concurrent lookups.)
  [[nodiscard]] std::int64_t index_of(net::IPv4 ip) const;

  /// Drops the lazy lookup index; the next index_of() rebuilds it.
  void invalidate_index() { index_.clear(); }

 private:
  mutable std::unordered_map<net::IPv4, std::int64_t> index_;
};

/// Writes `model` as `prefix.emb` (v2 binary embedding, CRC32 footer) and
/// `prefix.vocab` (one dotted-quad address per line, row order, plus a
/// `#crc32 <hex>` footer line). Both files are fully written to `.tmp`
/// siblings before either rename, so an interruption any time before the
/// renames leaves a previous model completely intact. Throws io::IoError
/// on failure.
void save_model(const std::string& prefix, const SenderModel& model);

/// Loads a model previously written by save_model (current v2 layout or
/// the v1 layout without checksums). Strict mode throws typed io:: errors
/// on missing files, malformed or duplicate vocab lines, checksum
/// mismatches, or a row-count mismatch between the two files. Lenient
/// mode drops each bad/duplicate vocab row *together with its embedding
/// row* (keeping rows aligned), reconciles a row-count mismatch by
/// truncating to the shorter side, and records everything in `report`.
[[nodiscard]] SenderModel load_model(const std::string& prefix,
                                     const io::IoPolicy& policy,
                                     io::IoReport* report = nullptr);

/// Legacy strict-mode signature.
[[nodiscard]] SenderModel load_model(const std::string& prefix);

}  // namespace darkvec
