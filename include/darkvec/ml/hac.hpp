// Hierarchical agglomerative clustering under cosine distance.
//
// Third of the classic clustering algorithms the paper evaluated on the
// embedding (Section 7.1). Implemented with Lance-Williams distance
// updates; O(n^2) memory and roughly O(n^2 log n) time, so callers
// subsample large embeddings.
#pragma once

#include <cstdint>
#include <vector>

#include "darkvec/w2v/embedding.hpp"

namespace darkvec::ml {

enum class Linkage : std::uint8_t {
  kSingle,   ///< min pairwise distance
  kComplete, ///< max pairwise distance
  kAverage,  ///< unweighted average pairwise distance (UPGMA)
};

struct HacResult {
  /// Cluster id per point in [0, clusters).
  std::vector<int> assignment;
  int clusters = 0;
};

/// Agglomerates the rows of `points` down to `n_clusters` clusters using
/// cosine distance and the requested linkage.
[[nodiscard]] HacResult agglomerative(const w2v::Embedding& points,
                                      int n_clusters,
                                      Linkage linkage = Linkage::kAverage);

}  // namespace darkvec::ml
