// DBSCAN (Ester et al.) under cosine distance.
//
// Second of the classic clustering algorithms the paper evaluated on the
// embedding before adopting graph-based clustering (Section 7.1).
#pragma once

#include <cstdint>
#include <vector>

#include "darkvec/w2v/embedding.hpp"

namespace darkvec::ml {

struct DbscanOptions {
  /// Neighbourhood radius in cosine distance (1 - cosine similarity).
  double eps = 0.1;
  /// Minimum neighbourhood size (the point itself included) for a core
  /// point.
  std::size_t min_points = 5;
};

struct DbscanResult {
  /// Cluster id per point in [0, clusters), or kNoise.
  std::vector<int> assignment;
  int clusters = 0;

  static constexpr int kNoise = -1;
};

/// Runs DBSCAN over the rows of `points` with brute-force O(n^2) region
/// queries (fine for the tens of thousands of senders of a darknet day).
[[nodiscard]] DbscanResult dbscan(const w2v::Embedding& points,
                                  const DbscanOptions& options = {});

}  // namespace darkvec::ml
