// Small dense linear algebra: just enough for orthogonal Procrustes
// alignment of embeddings (one-sided Jacobi SVD of small square matrices).
#pragma once

#include <vector>

namespace darkvec::ml {

/// Column-major n x n dense matrix of doubles.
struct SquareMatrix {
  int n = 0;
  std::vector<double> data;  ///< data[col * n + row]

  SquareMatrix() = default;
  explicit SquareMatrix(int size)
      : n(size), data(static_cast<std::size_t>(size) * size, 0.0) {}

  [[nodiscard]] double& at(int row, int col) {
    return data[static_cast<std::size_t>(col) * n + row];
  }
  [[nodiscard]] double at(int row, int col) const {
    return data[static_cast<std::size_t>(col) * n + row];
  }
};

/// Thin SVD of a square matrix: M = U * diag(S) * V^T.
struct SvdResult {
  SquareMatrix u;
  std::vector<double> singular_values;
  SquareMatrix v;
};

/// One-sided Jacobi SVD. Robust for the small (dim x dim, dim <= a few
/// hundred) matrices used in Procrustes alignment. Singular values are
/// non-negative, sorted descending.
[[nodiscard]] SvdResult jacobi_svd(const SquareMatrix& m,
                                   int max_sweeps = 60,
                                   double tolerance = 1e-12);

/// C = A * B.
[[nodiscard]] SquareMatrix multiply(const SquareMatrix& a,
                                    const SquareMatrix& b);

/// A^T.
[[nodiscard]] SquareMatrix transpose(const SquareMatrix& a);

}  // namespace darkvec::ml
