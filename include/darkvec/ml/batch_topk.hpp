// Blocked, multi-threaded batch cosine top-k over an L2-normalized
// embedding matrix.
//
// The serial CosineKnn::query streams the whole corpus once per query;
// all-pairs workloads (the k'-NN graph of Section 7, leave-one-out
// evaluation of Section 6) therefore re-read the n x dim matrix n times
// from memory. This kernel tiles the scan GEMM-style: a block of corpus
// rows is transposed into a [dim x block] scratch tile once and then
// reused by a whole block of queries while it is hot in cache, with the
// inner dim-loop accumulating a register strip of neighbour candidates.
//
// Determinism contract: for every query the candidates are visited in
// ascending corpus order with one float accumulator per (query, corpus)
// pair, exactly like the serial scan, so results — indices *and*
// similarity bits — are identical to CosineKnn::query regardless of
// block sizes or thread count.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "darkvec/core/runtime/runtime.hpp"
#include "darkvec/w2v/embedding.hpp"
#include "darkvec/w2v/quantized.hpp"

namespace darkvec::ml {

/// One neighbour: point index and cosine similarity.
struct Neighbor {
  std::uint32_t index = 0;
  float similarity = 0;
};

namespace detail {

/// Heap order: the worst kept neighbour on top; equal similarities keep
/// the smaller index (deterministic tie-break).
struct WorseFirst {
  bool operator()(const Neighbor& a, const Neighbor& b) const {
    if (a.similarity != b.similarity) return a.similarity > b.similarity;
    return a.index < b.index;
  }
};

/// Bounded min-heap of the k best candidates seen so far. Both the
/// serial and the batch scan feed candidates through this exact type so
/// their outputs cannot diverge.
class TopKHeap {
 public:
  explicit TopKHeap(int k) : k_(k) {}

  void offer(std::uint32_t index, float similarity) {
    if (k_ <= 0) return;
    if (heap_.size() < static_cast<std::size_t>(k_)) {
      heap_.push_back({index, similarity});
      std::push_heap(heap_.begin(), heap_.end(), WorseFirst{});
    } else if (similarity > heap_.front().similarity) {
      std::pop_heap(heap_.begin(), heap_.end(), WorseFirst{});
      heap_.back() = {index, similarity};
      std::push_heap(heap_.begin(), heap_.end(), WorseFirst{});
    }
  }

  /// Destructive: sorts by decreasing similarity and returns the result.
  std::vector<Neighbor> take() {
    std::sort_heap(heap_.begin(), heap_.end(), WorseFirst{});
    return std::move(heap_);
  }

 private:
  int k_ = 0;
  std::vector<Neighbor> heap_;
};

/// Widest multiple of 16 whose transposed [dim x width] float tile fits
/// the ~32 KiB L1 budget (floor 16, so the strip kernel always has full
/// vector lanes). The auto corpus_block of the blocked scan, shared with
/// the IVF index's chunked list tiles. Precondition: dim > 0.
[[nodiscard]] std::size_t auto_tile_width(std::size_t dim);

}  // namespace detail

/// Tile shape of the blocked scan. query_block must be positive
/// (DV_PRECONDITION). corpus_block == 0 (the default) derives the tile
/// width from the embedding's actual dim at runtime so the transposed
/// [dim x corpus_block] float tile fits an L1-sized budget (~32 KiB)
/// regardless of dim; an explicit value is used as-is but must keep the
/// tile under a 4 MiB hard cap (DV_PRECONDITION).
struct BatchTopkOptions {
  std::size_t query_block = 32;
  std::size_t corpus_block = 0;
};

/// For every row id in `queries`, the k nearest corpus rows of
/// `normalized` (which must already be row-wise L2-normalized, as
/// produced by Embedding::normalized()), excluding the query row itself.
/// Runs on the global core::ThreadPool, parallel over query blocks;
/// results are bit-identical to calling CosineKnn::query per id, for
/// any thread count.
[[nodiscard]] std::vector<std::vector<Neighbor>> batch_topk(
    const w2v::Embedding& normalized, std::span<const std::uint32_t> queries,
    int k, const BatchTopkOptions& options = {});

/// int8 variant over a quantized index (built from the normalized
/// matrix). Similarities are reconstructed as
/// dot_i8(i, j) * scale_i * scale_j / ||row_i|| — approximate, within
/// the quantization error of the fp32 results (the bench gate holds
/// recall@10 >= 0.99), not bit-identical. Rows are read in their natural
/// row-major layout (no transpose: the padded stride already feeds the
/// int8 kernel whole vector lanes), so only query_block applies.
[[nodiscard]] std::vector<std::vector<Neighbor>> batch_topk(
    const w2v::QuantizedEmbedding& quantized,
    std::span<const std::uint32_t> queries, int k,
    const BatchTopkOptions& options = {});

/// batch_topk under an explicit RunContext with graceful degradation.
struct BatchTopkResult {
  std::vector<std::vector<Neighbor>> neighbors;
  /// True when the deadline expired under DegradePolicy::kPartialResults
  /// and some queries saw only a prefix of the corpus. Their neighbour
  /// lists are still valid top-k *of the rows scanned so far* — usable
  /// answers, honestly labelled.
  bool truncated = false;
  /// Queries whose scan covered the entire corpus.
  std::size_t complete_queries = 0;
};

/// Like batch_topk, but checks `ctx` once per corpus tile. Cancel and
/// budget trips throw their typed errors as usual; an expired deadline
/// under DegradePolicy::kPartialResults stops the scan at the next tile
/// boundary and returns the partial heaps with `truncated` set (and the
/// `runtime.degraded` counter bumped) instead of throwing. A null `ctx`
/// (or one that never trips) yields exactly batch_topk's results.
[[nodiscard]] BatchTopkResult batch_topk_bounded(
    const w2v::Embedding& normalized, std::span<const std::uint32_t> queries,
    int k, const runtime::RunContext* ctx,
    const BatchTopkOptions& options = {});

/// topk_scan under an explicit RunContext; see batch_topk_bounded.
struct TopkScanResult {
  std::vector<Neighbor> neighbors;
  bool truncated = false;
  std::size_t rows_scanned = 0;  ///< corpus rows the scan actually covered
};

[[nodiscard]] TopkScanResult topk_scan_bounded(
    const w2v::Embedding& normalized, std::span<const float> query,
    float scale, int k, const runtime::RunContext* ctx,
    std::int64_t exclude = -1);

/// Single-query tiled scan over the whole corpus: every similarity is
/// sims[j] = (sum_d query[d] * row_j[d]) * scale via the dispatched
/// dot-strip kernel — one float accumulator per candidate walking dims
/// in ascending order, so the output is bit-identical to the historical
/// serial CosineKnn loop at every dispatch level. `exclude` removes one
/// corpus row (pass a negative value to keep all). The serial engine
/// behind CosineKnn::query / query_vector.
[[nodiscard]] std::vector<Neighbor> topk_scan(const w2v::Embedding& normalized,
                                              std::span<const float> query,
                                              float scale, int k,
                                              std::int64_t exclude = -1);

}  // namespace darkvec::ml
