// Leave-one-out k-NN evaluation (Section 6.1 of the paper).
//
// Every embedded sender — labeled or Unknown — participates as a potential
// neighbour; predictions are made for the evaluated points by majority
// vote over their k nearest neighbours. A neighbourhood dominated by
// Unknown senders yields an Unknown prediction, which counts as a
// misclassification for GT points, exactly as the paper specifies.
#pragma once

#include <span>
#include <vector>

#include "darkvec/ml/knn.hpp"

namespace darkvec::ml {

/// Majority label among `neighbors` given per-point `labels`. Ties are
/// broken by the higher total similarity, then by the lower label id
/// (deterministic).
[[nodiscard]] int majority_vote(std::span<const Neighbor> neighbors,
                                std::span<const int> labels);

/// Leave-one-out k-NN prediction for the points listed in `eval_points`.
///
/// `labels[i]` is the class of embedded point i (use the Unknown class id
/// for unlabeled senders — they vote too). Returns one predicted label per
/// entry of `eval_points`, in order.
[[nodiscard]] std::vector<int> loo_knn_predict(
    const CosineKnn& index, std::span<const int> labels,
    std::span<const std::uint32_t> eval_points, int k);

/// Same prediction with opt-in approximate neighbour lists (`ann`
/// routed through CosineKnn::query_batch). Disabled is the exact
/// overload above, bit-identically.
[[nodiscard]] std::vector<int> loo_knn_predict(
    const CosineKnn& index, std::span<const int> labels,
    std::span<const std::uint32_t> eval_points, int k,
    const AnnSearchParams& ann);

}  // namespace darkvec::ml
