// Lloyd's k-Means with k-means++ seeding.
//
// One of the classic clustering algorithms the paper evaluated on the
// embedded space before settling on graph-based clustering (Section 7.1:
// "these algorithms produce poor results due to the well-known curse of
// dimensionality as well as their difficult parameter tuning").
#pragma once

#include <cstdint>
#include <vector>

#include "darkvec/w2v/embedding.hpp"

namespace darkvec::ml {

struct KMeansOptions {
  int max_iterations = 100;
  /// Relative inertia improvement below which iteration stops.
  double tolerance = 1e-4;
  std::uint64_t seed = 1;
};

struct KMeansResult {
  /// Cluster id per point, in [0, k).
  std::vector<int> assignment;
  /// Final centroids, one row per cluster.
  w2v::Embedding centroids;
  /// Sum of squared euclidean distances to assigned centroids.
  double inertia = 0;
  int iterations = 0;
};

/// Runs k-Means over the rows of `points` (euclidean distance, as the
/// scikit-learn implementation the paper used). k is clamped to the number
/// of points. Deterministic for a fixed seed.
[[nodiscard]] KMeansResult kmeans(const w2v::Embedding& points, int k,
                                  const KMeansOptions& options = {});

}  // namespace darkvec::ml
