// IVF (inverted-file) approximate cosine k-NN beside the exact engine.
//
// The exact scan of ml/batch_topk touches every corpus row per query —
// O(n·dim) — which stops being viable at the paper's 543 900-sender
// population. This index partitions the L2-normalized rows into nlist
// inverted lists with a k-means coarse quantizer (or a caller-supplied
// partition such as Louvain communities), then answers a query by
// ranking the list centroids and scanning only the `nprobe` closest
// lists. Expected rows touched per query drop from n to roughly
// nlist + nprobe · n / nlist: sub-linear at nlist ≈ sqrt(n).
//
// Determinism contract (per nprobe): the probe order is the centroid
// top-nprobe under the same (similarity desc, list id asc) total order
// as the neighbour heap, within-list candidates are visited in ascending
// original row id, and every similarity is produced by the dispatched
// dot-strip kernel — one float accumulator per (query, candidate) pair
// walking dims in ascending order, bit-identical across SIMD levels.
// Queries are independent, so results are also independent of the
// thread count. A returned (query, neighbour) similarity is therefore
// bit-identical to what the exact CosineKnn scan computes for that same
// pair; only the candidate SET is approximate.
//
// Storage: per-list rows are contiguous in "slot" order (list-major,
// ascending original id within a list), pre-transposed into [dim x w]
// chunks of the same L1-sized width as the batch engine's corpus tiles,
// so within-list scans feed dot_strip_f32 directly with no per-query
// transpose. With IvfOptions::quantize the int8 codes of the rows ride
// along (same symmetric per-row scheme as w2v::QuantizedEmbedding) and
// list scans use the dot_i8 kernel instead: similarities then carry
// quantization error but stay deterministic.
//
// On disk: "DVAI" v1 — magic, version, row count, dim, list count,
// default nprobe, quantized flag, normalized centroids, list offsets,
// slot -> original id map, fp32 rows in slot order, optional int8
// scales + codes, CRC32 footer. Strict loads throw typed io:: errors;
// lenient loads degrade to the complete lists present (truncation
// inside the quantized section falls back to an fp32-only index).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "darkvec/core/errors.hpp"
#include "darkvec/ml/batch_topk.hpp"
#include "darkvec/ml/kmeans.hpp"
#include "darkvec/w2v/embedding.hpp"

namespace darkvec::ml {

/// Opt-in switch threaded through the k-NN consumers (CosineKnn,
/// knn_graph, LOO evaluation, DarkVec::cluster): disabled means the
/// exact engine, enabled routes through the IVF index. nprobe == 0
/// uses the index's default operating point.
struct AnnSearchParams {
  bool enabled = false;
  int nprobe = 0;
  /// Non-empty: load a prebuilt DVAI index from this path instead of
  /// building one in-process. A failed or incompatible load no longer
  /// kills the query path — CosineKnn logs it, bumps the
  /// `runtime.ann_fallback` counter once, and answers through the exact
  /// engine for the rest of the process (graceful degradation: correct
  /// answers, approximate speed lost).
  std::string index_path;
};

/// Build-time knobs of the IVF index.
struct IvfOptions {
  /// Number of inverted lists. 0 derives ~sqrt(n), the classic balance
  /// point between centroid ranking and list scanning; always clamped
  /// to [1, n]. Empty lists are dropped after assignment.
  int nlist = 0;
  /// Default lists probed per query (clamped to [1, nlist]). The
  /// operating point the bench gate measures.
  int nprobe = 8;
  /// Store int8 codes and scan lists with the dot_i8 kernel (4x less
  /// memory traffic, quantization error per the DVQ8 contract).
  bool quantize = false;
  /// Coarse-quantizer training (seed, iterations, tolerance).
  KMeansOptions kmeans;
};

/// IVF approximate cosine k-NN index over an L2-normalized embedding.
class IvfIndex {
 public:
  IvfIndex() = default;

  /// Builds from `normalized` (as produced by Embedding::normalized())
  /// with a k-means coarse quantizer. Deterministic for a fixed
  /// options.kmeans.seed.
  [[nodiscard]] static IvfIndex build(const w2v::Embedding& normalized,
                                      const IvfOptions& options = {});

  /// Builds from a caller-supplied partition instead of k-means:
  /// `assignment[i] >= 0` is row i's list (Louvain communities are the
  /// natural choice — the coarse structure the pipeline already
  /// computes). Centroids are the L2-normalized member means;
  /// options.nlist and options.kmeans are ignored.
  [[nodiscard]] static IvfIndex build_with_assignment(
      const w2v::Embedding& normalized, std::span<const int> assignment,
      const IvfOptions& options = {});

  /// Approximate k nearest neighbours of corpus row `i`, excluding `i`
  /// itself — the IVF counterpart of CosineKnn::query. nprobe == 0 uses
  /// default_nprobe().
  [[nodiscard]] std::vector<Neighbor> query(std::size_t i, int k,
                                            int nprobe = 0) const;

  /// Approximate neighbours of an arbitrary (not necessarily
  /// normalized) vector; `exclude` removes one original row id.
  [[nodiscard]] std::vector<Neighbor> query_vector(
      std::span<const float> v, int k, int nprobe = 0,
      std::int64_t exclude = -1) const;

  /// Batch counterpart of query(): same API shape as batch_topk (query
  /// ids in, one Neighbor list per id out), parallel over query blocks
  /// on the global thread pool, deterministic for any thread count.
  [[nodiscard]] std::vector<std::vector<Neighbor>> query_batch(
      std::span<const std::uint32_t> queries, int k, int nprobe = 0) const;

  [[nodiscard]] std::size_t size() const { return ids_.size(); }
  [[nodiscard]] int dim() const { return dim_; }
  [[nodiscard]] std::size_t nlist() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }
  [[nodiscard]] int default_nprobe() const { return default_nprobe_; }
  [[nodiscard]] bool quantized() const { return quantized_; }
  [[nodiscard]] std::size_t list_size(std::size_t l) const {
    return static_cast<std::size_t>(offsets_[l + 1] - offsets_[l]);
  }
  /// Normalized list centroids, one row per list.
  [[nodiscard]] const w2v::Embedding& centroids() const { return centroids_; }

  /// Rows a query at `nprobe` touches on average (centroid ranking plus
  /// the mean probed-list mass) — the denominator of the bench gate's
  /// scan-reduction claim, without running a query.
  [[nodiscard]] double expected_rows_scanned(int nprobe) const;

  /// Binary serialization, "DVAI" v1 (see file comment). save_file()
  /// persists atomically (temp + rename); header fields are capped by
  /// `policy.limits` before any allocation.
  void save(std::ostream& out) const;
  void save_file(const std::string& path) const;
  [[nodiscard]] static IvfIndex load(std::istream& in,
                                     const io::IoPolicy& policy,
                                     io::IoReport* report = nullptr);
  [[nodiscard]] static IvfIndex load_file(const std::string& path,
                                          const io::IoPolicy& policy,
                                          io::IoReport* report = nullptr);

 private:
  /// Shared assembly: compact the partition, compute normalized
  /// centroids, lay out slot-ordered chunked tiles (+ codes).
  [[nodiscard]] static IvfIndex assemble(const w2v::Embedding& normalized,
                                         std::span<const int> assignment,
                                         int clusters,
                                         const IvfOptions& options);
  /// Rebuilds chunk tiles, the centroid tile and slot_of_ from
  /// slot-ordered row-major rows (load path / assemble path).
  void finalize_tiles(const float* rows_slot_major);
  /// Copies the fp32 row stored at `slot` out of its chunk tile.
  void copy_row(std::size_t slot, float* dst) const;
  /// Probed list ids for query `q`, deterministic order (centroid
  /// similarity desc, list id asc).
  void select_probes(std::span<const float> q, int nprobe,
                     std::vector<std::uint32_t>& probes,
                     std::vector<float>& sims_scratch) const;
  /// Single-query search; qslot >= 0 reuses the stored codes of that
  /// slot for the quantized scan, < 0 quantizes `q` on the fly.
  [[nodiscard]] std::vector<Neighbor> search_one(
      std::span<const float> q, std::int64_t qslot, int k, int nprobe,
      std::int64_t exclude, std::size_t* rows_scanned,
      std::vector<float>& sims_scratch,
      std::vector<std::uint32_t>& probes_scratch) const;
  [[nodiscard]] int clamp_nprobe(int nprobe) const;

  int dim_ = 0;
  int default_nprobe_ = 1;
  bool quantized_ = false;
  /// Width of the transposed list chunks (detail::auto_tile_width(dim)).
  std::size_t chunk_ = 0;
  /// Slot ranges per list: list l owns slots [offsets_[l], offsets_[l+1]).
  std::vector<std::uint64_t> offsets_;
  /// Original row id per slot; ascending within each list.
  std::vector<std::uint32_t> ids_;
  /// Original row id -> slot (kNoSlot for ids dropped by a lenient
  /// truncated load).
  std::vector<std::uint32_t> slot_of_;
  /// Normalized centroids, row-major (save/load + introspection).
  w2v::Embedding centroids_;
  /// Centroids pre-transposed into [dim x chunk_] tiles for the probe
  /// ranking scan.
  std::vector<float> centroid_tile_;
  /// Slot-ordered rows as per-list sequences of transposed [dim x w]
  /// chunks (w == chunk_ except a list's last chunk).
  std::vector<float> tiles_;
  /// int8 side (quantize == true): slot-ordered codes at qstride_
  /// (zero-padded to whole vector lanes) and one scale per slot.
  std::size_t qstride_ = 0;
  std::vector<float> scales_;
  std::vector<std::int8_t> codes_;

  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;
};

}  // namespace darkvec::ml
