// Small statistics helpers: empirical CDFs (Figures 1-2) and the Jaccard
// index used to compare cluster port sets (Section 7.3.1).
#pragma once

#include <algorithm>
#include <span>
#include <unordered_set>
#include <vector>

namespace darkvec::ml {

/// Empirical cumulative distribution function over a sample.
class Ecdf {
 public:
  explicit Ecdf(std::vector<double> values) : sorted_(std::move(values)) {
    std::ranges::sort(sorted_);
  }

  /// P[X <= x].
  [[nodiscard]] double operator()(double x) const {
    if (sorted_.empty()) return 0;
    const auto it = std::ranges::upper_bound(sorted_, x);
    return static_cast<double>(std::distance(sorted_.begin(), it)) /
           static_cast<double>(sorted_.size());
  }

  /// Smallest x with ECDF(x) >= q, for q in (0, 1].
  [[nodiscard]] double quantile(double q) const {
    if (sorted_.empty()) return 0;
    const auto rank = static_cast<std::size_t>(std::clamp(
        q * static_cast<double>(sorted_.size()) - 1.0, 0.0,
        static_cast<double>(sorted_.size() - 1)));
    return sorted_[rank];
  }

  [[nodiscard]] std::size_t size() const { return sorted_.size(); }
  [[nodiscard]] const std::vector<double>& sorted() const { return sorted_; }

 private:
  std::vector<double> sorted_;
};

/// Jaccard index |A ∩ B| / |A ∪ B| of two sets given as ranges of unique
/// hashable elements. Empty-vs-empty is defined as 0.
template <typename T>
[[nodiscard]] double jaccard(std::span<const T> a, std::span<const T> b) {
  if (a.empty() && b.empty()) return 0;
  std::unordered_set<T> set_a(a.begin(), a.end());
  std::size_t inter = 0;
  std::unordered_set<T> set_b;
  for (const T& x : b) {
    if (set_b.insert(x).second && set_a.contains(x)) ++inter;
  }
  const std::size_t uni = set_a.size() + set_b.size() - inter;
  return uni == 0 ? 0 : static_cast<double>(inter) / static_cast<double>(uni);
}

}  // namespace darkvec::ml
