// Classification metrics: the per-class precision/recall/F-score reports of
// Tables 4 and 6, plus confusion-matrix access.
#pragma once

#include <span>
#include <vector>

namespace darkvec::ml {

/// Per-class scores. Precision is 0 when nothing was predicted as the
/// class; recall is 0 when the class has no support.
struct ClassScores {
  double precision = 0;
  double recall = 0;
  double f1 = 0;
  std::size_t support = 0;      ///< true instances of the class
  std::size_t predicted = 0;    ///< instances predicted as the class
};

/// Full multi-class report built from parallel label vectors.
class ClassificationReport {
 public:
  /// `y_true[i]` / `y_pred[i]` are class ids in [0, n_classes). The two
  /// spans must be the same length.
  ClassificationReport(std::span<const int> y_true,
                       std::span<const int> y_pred, int n_classes);

  [[nodiscard]] const ClassScores& scores(int cls) const {
    return per_class_[static_cast<std::size_t>(cls)];
  }
  [[nodiscard]] int num_classes() const {
    return static_cast<int>(per_class_.size());
  }

  /// Fraction of correct predictions over all samples.
  [[nodiscard]] double accuracy() const { return accuracy_; }

  /// Fraction of correct predictions restricted to samples whose true
  /// class is in `classes` — the paper's headline accuracy is computed
  /// over GT1-GT9 only, skipping Unknown.
  [[nodiscard]] double accuracy_over(std::span<const int> classes) const;

  /// Support-weighted mean recall over `classes` (equals accuracy_over).
  [[nodiscard]] double weighted_f1_over(std::span<const int> classes) const;

  /// confusion(i, j): samples of true class i predicted as class j.
  [[nodiscard]] std::size_t confusion(int true_cls, int pred_cls) const {
    return confusion_[static_cast<std::size_t>(true_cls) *
                          per_class_.size() +
                      static_cast<std::size_t>(pred_cls)];
  }

 private:
  std::vector<ClassScores> per_class_;
  std::vector<std::size_t> confusion_;
  std::vector<int> y_true_;
  std::vector<int> y_pred_;
  double accuracy_ = 0;
};

}  // namespace darkvec::ml
