// Brute-force cosine k-nearest-neighbour search over an embedding.
//
// The paper uses cosine k-NN both for the semi-supervised classifier
// (Section 6) and to build the k'-NN graph for Louvain clustering
// (Section 7). Sizes are tens of thousands of points, so exact brute force
// on normalized vectors (similarity == dot product) is the right tool.
// Single queries run the serial scan; batch workloads go through the
// blocked multi-threaded kernel of ml/batch_topk.hpp, which returns
// bit-identical results.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

#include "darkvec/ml/ann.hpp"
#include "darkvec/ml/batch_topk.hpp"
#include "darkvec/w2v/embedding.hpp"
#include "darkvec/w2v/quantized.hpp"

namespace darkvec::ml {

/// Exact cosine k-NN index. Rows are L2-normalized at construction; queries
/// are linear scans with a bounded min-heap, O(n·dim) per query.
class CosineKnn {
 public:
  explicit CosineKnn(const w2v::Embedding& embedding)
      : normalized_(embedding.normalized()) {}

  /// The `k` nearest neighbours of point `i`, excluding `i` itself,
  /// ordered by decreasing similarity.
  [[nodiscard]] std::vector<Neighbor> query(std::size_t i, int k) const;

  /// The `k` nearest neighbours of an arbitrary (not necessarily
  /// normalized) vector. `exclude` removes one index from candidates
  /// (pass a negative value to keep all).
  [[nodiscard]] std::vector<Neighbor> query_vector(std::span<const float> v,
                                                   int k,
                                                   std::int64_t exclude = -1)
      const;

  /// Neighbour lists for every point in the contiguous range [lo, hi):
  /// one entry per point, equal to query(i, k) bit-for-bit, computed by
  /// the blocked batch kernel on the global thread pool.
  [[nodiscard]] std::vector<std::vector<Neighbor>> query_batch(
      std::size_t lo, std::size_t hi, int k) const;

  /// Neighbour lists for an arbitrary set of point ids (same guarantee).
  [[nodiscard]] std::vector<std::vector<Neighbor>> query_batch(
      std::span<const std::uint32_t> points, int k) const;

  /// All-pairs neighbour lists: query_batch(0, size(), k). The parallel
  /// path behind k'-NN graph construction and LOO evaluation.
  [[nodiscard]] std::vector<std::vector<Neighbor>> all_neighbors(int k)
      const;

  /// Approximate neighbour lists through the int8 index (built lazily on
  /// first use, then cached). Similarities carry quantization error —
  /// see the QuantizedEmbedding bench gate — in exchange for 4x less
  /// memory traffic per scan.
  [[nodiscard]] std::vector<std::vector<Neighbor>> query_batch_quantized(
      std::span<const std::uint32_t> points, int k) const;

  /// Quantized all-pairs: the int8 counterpart of all_neighbors(k).
  [[nodiscard]] std::vector<std::vector<Neighbor>> all_neighbors_quantized(
      int k) const;

  /// Opt-in approximate routing: params.enabled sends the query through
  /// the lazily built IVF index at params.nprobe (0 = the index
  /// default); disabled falls back to the exact engine, bit-identical
  /// to the overloads above. Returned similarities are exact-engine
  /// bits either way (the IVF fp32 scan shares the kernel and the
  /// rescale); only the candidate set is approximate when enabled.
  [[nodiscard]] std::vector<Neighbor> query(std::size_t i, int k,
                                            const AnnSearchParams& params)
      const;
  [[nodiscard]] std::vector<std::vector<Neighbor>> query_batch(
      std::span<const std::uint32_t> points, int k,
      const AnnSearchParams& params) const;
  [[nodiscard]] std::vector<std::vector<Neighbor>> all_neighbors(
      int k, const AnnSearchParams& params) const;

  /// The lazily built IVF index. The options of the FIRST call win;
  /// later calls return the same immutable index. Call this eagerly to
  /// pick non-default build options (e.g. quantize) before any
  /// AnnSearchParams-taking overload builds it with the defaults.
  [[nodiscard]] const IvfIndex& ann(const IvfOptions& options = {}) const;

  /// The index `params` asks for: the lazily built one, or — when
  /// params.index_path is set — a cached DVAI load. Returns nullptr
  /// when that load failed or does not match this embedding, which the
  /// AnnSearchParams overloads treat as "use the exact engine".
  [[nodiscard]] const IvfIndex* ann_for(const AnnSearchParams& params) const;

  [[nodiscard]] std::size_t size() const { return normalized_.size(); }
  [[nodiscard]] int dim() const { return normalized_.dim(); }
  [[nodiscard]] const w2v::Embedding& normalized() const {
    return normalized_;
  }
  /// The lazily built int8 index (immutable once constructed).
  [[nodiscard]] const w2v::QuantizedEmbedding& quantized() const;

 private:
  w2v::Embedding normalized_;
  /// call_once guards the build; after it returns the object is
  /// immutable, so readers need no further synchronization.
  mutable std::once_flag quant_once_;
  mutable w2v::QuantizedEmbedding quant_;
  /// Same pattern for the IVF index.
  mutable std::once_flag ann_once_;
  mutable std::unique_ptr<IvfIndex> ann_;
  /// And for a DVAI index loaded from AnnSearchParams::index_path. The
  /// first path wins; loaded_ stays null after a failed load (the
  /// fallback-to-exact marker).
  mutable std::once_flag load_once_;
  mutable std::unique_ptr<IvfIndex> loaded_;
};

}  // namespace darkvec::ml
