// Silhouette scores in cosine space (Figure 11 of the paper).
//
// With L2-normalized vectors the cosine distance to a *set* of points
// averages to `1 - dot(v, centroid_sum)/|set|`, so per-sample silhouettes
// cost O(n·clusters·dim) instead of O(n²·dim).
#pragma once

#include <span>
#include <vector>

#include "darkvec/w2v/embedding.hpp"

namespace darkvec::ml {

/// Per-sample silhouette coefficients under cosine distance.
///
/// `assignment[i]` is the cluster id of point i (ids need not be dense, but
/// must be non-negative). Points in singleton clusters get silhouette 0 by
/// convention. `embedding` need not be normalized.
[[nodiscard]] std::vector<double> silhouette_samples(
    const w2v::Embedding& embedding, std::span<const int> assignment);

/// Mean silhouette of each cluster id (index = cluster id; clusters with no
/// points get 0).
[[nodiscard]] std::vector<double> silhouette_by_cluster(
    std::span<const double> samples, std::span<const int> assignment);

}  // namespace darkvec::ml
