// IP2VEC baseline (Ring et al., re-described in Appendix A.2.2 of the
// DarkVec paper): packets are aggregated into flows; each flow emits five
// (target, context) training pairs over a mixed vocabulary of source IPs,
// destination IPs, destination ports and protocols (Figure 17). The model
// trains with negative sampling directly on pairs; a sender's vector is
// the embedding of its source-IP token.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "darkvec/net/time.hpp"
#include "darkvec/net/trace.hpp"
#include "darkvec/w2v/skipgram.hpp"

namespace darkvec::baselines {

struct Ip2VecOptions {
  /// Flow aggregation window: packets of the same (src, dst, port, proto)
  /// within this window collapse into one flow.
  std::int64_t flow_window_seconds = 10 * net::kSecondsPerMinute;
  /// Word2Vec options (window is irrelevant: training is pair-based).
  w2v::SkipGramOptions w2v{.dim = 50, .epochs = 10};
  /// Abort (completed = false) when the pair count per epoch exceeds this
  /// budget — the ">10 hours" row of Table 3. 0 disables the cap.
  std::uint64_t max_pairs_per_epoch = 0;
};

struct Ip2VecResult {
  std::vector<net::IPv4> senders;   ///< row order of sender_vectors
  w2v::Embedding sender_vectors;    ///< src-IP token embeddings
  std::size_t flows = 0;
  std::uint64_t pairs_per_epoch = 0;
  double train_seconds = 0;
  bool completed = false;
};

/// Runs IP2VEC over the packets of `senders` in `trace` (must be sorted).
[[nodiscard]] Ip2VecResult run_ip2vec(const net::Trace& trace,
                                      std::span<const net::IPv4> senders,
                                      const Ip2VecOptions& options = {});

}  // namespace darkvec::baselines
