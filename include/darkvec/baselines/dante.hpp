// DANTE baseline (Cohen et al., re-described in Appendix A.2.1 of the
// DarkVec paper): ports are the words; each sender's chronological port
// sequence inside an observation window is one sentence; a sender is
// embedded as the average of the port vectors it contacted.
//
// DANTE's scalability problem — one sentence per (sender, window) makes
// the skip-gram count explode with the sender population — is reproduced
// faithfully: we count the skip-grams the corpus would generate and abort
// (completed = false) when they exceed `max_pairs`, mirroring the ">10
// days, did not finish" entries of Table 3.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "darkvec/net/time.hpp"
#include "darkvec/net/trace.hpp"
#include "darkvec/w2v/skipgram.hpp"

namespace darkvec::baselines {

struct DanteOptions {
  /// Observation window used to cut per-sender port sequences.
  std::int64_t window_seconds = 3 * net::kSecondsPerHour;
  /// Word2Vec options for the port embedding (DANTE uses small windows —
  /// port sequences are short).
  w2v::SkipGramOptions w2v{.dim = 50, .window = 5, .epochs = 10};
  /// DANTE's sentence augmentation: each per-sender port sequence is
  /// sliced into overlapping sub-sentences of this length with
  /// `sentence_stride` offset. This is what makes DANTE's skip-gram count
  /// explode with active senders (">7 billion skip-grams", Table 3).
  /// 0 disables slicing (one sentence per sender per window).
  std::size_t sentence_window = 32;
  std::size_t sentence_stride = 1;
  /// Training budget: abort when the per-epoch skip-gram count exceeds
  /// this (simulates the paper's DNF). 0 disables the cap.
  std::uint64_t max_pairs_per_epoch = 0;
};

struct DanteResult {
  /// Senders with at least one packet, row order of `sender_vectors`.
  std::vector<net::IPv4> senders;
  /// Averaged port embeddings per sender (empty if !completed).
  w2v::Embedding sender_vectors;
  /// Number of sentences (sender x window sequences) in the corpus,
  /// after augmentation.
  std::size_t sentences = 0;
  /// Raw per-(sender, window) sequence lengths before augmentation —
  /// lets callers project the skip-gram count to other packet rates
  /// (the Table 3 "DNF at paper scale" analysis).
  std::vector<std::size_t> sequence_lengths;
  /// Per-epoch skip-gram pair count of the corpus.
  std::uint64_t skipgrams_per_epoch = 0;
  /// Wall-clock training time (0 if aborted).
  double train_seconds = 0;
  /// False when the pair budget was exceeded and training was skipped.
  bool completed = false;
};

/// Runs DANTE over the packets of `senders` in `trace` (must be sorted).
[[nodiscard]] DanteResult run_dante(const net::Trace& trace,
                                    std::span<const net::IPv4> senders,
                                    const DanteOptions& options = {});

}  // namespace darkvec::baselines
