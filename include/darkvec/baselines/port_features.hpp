// The Section 4 baseline: per-sender traffic shares over the union of each
// ground-truth class's top-5 destination ports, classified with cosine
// k-NN (Table 6). The feature set is intentionally biased towards the GT
// classes, as in the paper.
#pragma once

#include <span>
#include <vector>

#include "darkvec/net/trace.hpp"
#include "darkvec/sim/labels.hpp"
#include "darkvec/w2v/embedding.hpp"

namespace darkvec::baselines {

/// Sender feature matrix of the port-share baseline.
struct PortFeatures {
  /// Row order of `matrix`.
  std::vector<net::IPv4> senders;
  /// One column per selected port, values = fraction of the sender's
  /// packets to that port.
  w2v::Embedding matrix;
  /// The selected ports (columns), in column order.
  std::vector<net::PortKey> ports;
};

/// Builds the baseline features for `senders` from `trace`.
///
/// For each class in `labels` (Unknown included) the top
/// `top_ports_per_class` ports by packets are selected; the merged set
/// forms the columns.
[[nodiscard]] PortFeatures build_port_features(
    const net::Trace& trace, std::span<const net::IPv4> senders,
    const sim::LabelMap& labels, std::size_t top_ports_per_class = 5);

}  // namespace darkvec::baselines
