// Symmetric per-row int8 quantization of an embedding matrix.
//
// Each row is scaled independently: scale = amax / 127 where amax is the
// row's largest |value|, and every element is round-to-nearest of
// value / scale, clamped to [-127, 127]. The reconstruction q * scale is
// therefore within amax / 254 (half a quantization step) of the source
// element, and int8 dot products recover cosine similarities to ~1e-3 on
// unit-norm rows — accurate enough for top-k neighbour ranking (the
// bench gate demands recall@10 >= 0.99 against fp32), at a quarter of
// the memory traffic.
//
// In memory, rows are padded to a 32-byte stride with zero bytes so the
// int8 dot kernel can run whole vector lanes over `stride()` elements
// without a scalar tail (zero padding contributes nothing to the sum).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "darkvec/core/errors.hpp"
#include "darkvec/w2v/embedding.hpp"

namespace darkvec::w2v {

/// Row-major (n x dim) int8 matrix with one fp32 scale per row.
class QuantizedEmbedding {
 public:
  QuantizedEmbedding() = default;

  /// Symmetric per-row quantization of `source` (see file comment).
  [[nodiscard]] static QuantizedEmbedding quantize(const Embedding& source);

  [[nodiscard]] std::size_t size() const { return n_; }
  [[nodiscard]] int dim() const { return dim_; }
  /// Row stride in elements: dim rounded up to a multiple of 32; the
  /// padding bytes are always zero.
  [[nodiscard]] std::size_t stride() const { return stride_; }

  /// Row i including its zero padding (stride() elements).
  [[nodiscard]] std::span<const std::int8_t> row(std::size_t i) const {
    return {data_.data() + i * stride_, stride_};
  }
  [[nodiscard]] float scale(std::size_t i) const { return scales_[i]; }

  /// fp32 reconstruction (q * scale per element) — the round-trip half
  /// of the quantization contract.
  [[nodiscard]] Embedding dequantize() const;

  /// Binary serialization, "DVQ8" format: magic, version, row count,
  /// dim, fp32 scales, unpadded int8 rows, CRC32 footer. save_file()
  /// persists atomically (temp + rename). Header fields are capped by
  /// `policy.limits` before any allocation; in lenient mode a truncated
  /// payload degrades to the whole rows present (reported), strict mode
  /// throws typed io:: errors.
  void save(std::ostream& out) const;
  void save_file(const std::string& path) const;
  [[nodiscard]] static QuantizedEmbedding load(std::istream& in,
                                               const io::IoPolicy& policy,
                                               io::IoReport* report = nullptr);
  [[nodiscard]] static QuantizedEmbedding load_file(
      const std::string& path, const io::IoPolicy& policy,
      io::IoReport* report = nullptr);

 private:
  int dim_ = 0;
  std::size_t n_ = 0;
  std::size_t stride_ = 0;
  std::vector<float> scales_;
  std::vector<std::int8_t> data_;
};

}  // namespace darkvec::w2v
