// GloVe (Pennington et al. 2014), the other embedding family the paper
// cites alongside Word2Vec. Implemented as a comparator for the DarkVec
// corpus: build the windowed co-occurrence matrix, then fit
//   w_i . w~_j + b_i + b~_j ≈ log X_ij
// with the f(x) = min(1, (x/x_max)^alpha) weighting and AdaGrad updates.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "darkvec/w2v/embedding.hpp"
#include "darkvec/w2v/skipgram.hpp"  // Sentence, TrainStats

namespace darkvec::w2v {

struct GloveOptions {
  int dim = 50;
  int window = 25;        ///< co-occurrence window (one side), 1/d weighted
  int epochs = 25;
  double x_max = 10.0;    ///< weighting cutoff
  double alpha = 0.75;    ///< weighting exponent
  double learning_rate = 0.05;
  std::uint64_t seed = 1;
};

/// GloVe trainer over dense word ids. Usage mirrors SkipGramModel:
/// construct with the vocabulary size, `train()` on sentences, read
/// `embedding()` (the sum of the word and context vectors, as the GloVe
/// paper recommends).
class GloveModel {
 public:
  GloveModel(std::size_t vocab_size, GloveOptions options);

  /// Accumulates co-occurrence counts and runs AdaGrad for
  /// `options.epochs` epochs. Deterministic for a fixed seed. Polls the
  /// ambient runtime::RunContext between cell blocks and epochs. The
  /// TrainControl overload adds DVCK "GLOV" checkpointing of the full
  /// optimizer state (vectors, biases, AdaGrad accumulators, RNG) at
  /// epoch boundaries with bit-exact resume (see TrainControl).
  TrainStats train(std::span<const Sentence> sentences);
  TrainStats train(std::span<const Sentence> sentences,
                   const TrainControl& control);

  [[nodiscard]] const Embedding& embedding() const { return combined_; }
  [[nodiscard]] std::size_t vocab_size() const { return vocab_; }

  /// Number of non-zero co-occurrence cells after the last train() call.
  [[nodiscard]] std::size_t nonzero_cells() const { return cells_; }

 private:
  std::size_t vocab_;
  GloveOptions options_;
  Embedding combined_;
  std::size_t cells_ = 0;
};

}  // namespace darkvec::w2v
