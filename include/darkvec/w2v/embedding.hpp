// Dense embedding matrix with cosine-space helpers and (de)serialization.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

namespace darkvec::w2v {

/// A row-major (n x dim) float matrix: one embedding vector per word id.
class Embedding {
 public:
  Embedding() = default;
  Embedding(std::size_t n, int dim)
      : dim_(dim), data_(n * static_cast<std::size_t>(dim), 0.0f) {}
  Embedding(std::vector<float> data, int dim);

  [[nodiscard]] std::size_t size() const {
    return dim_ == 0 ? 0 : data_.size() / static_cast<std::size_t>(dim_);
  }
  [[nodiscard]] int dim() const { return dim_; }

  [[nodiscard]] std::span<const float> vec(std::size_t i) const {
    return {data_.data() + i * static_cast<std::size_t>(dim_),
            static_cast<std::size_t>(dim_)};
  }
  [[nodiscard]] std::span<float> vec(std::size_t i) {
    return {data_.data() + i * static_cast<std::size_t>(dim_),
            static_cast<std::size_t>(dim_)};
  }

  [[nodiscard]] const std::vector<float>& data() const { return data_; }

  /// Cosine similarity between rows i and j (0 if either row is zero).
  [[nodiscard]] double cosine(std::size_t i, std::size_t j) const;

  /// Returns a copy with every row scaled to unit L2 norm (zero rows kept
  /// zero). k-NN code takes normalized embeddings so similarity reduces to
  /// a dot product.
  [[nodiscard]] Embedding normalized() const;

  /// Binary serialization: magic, row count, dim, raw floats.
  void save(std::ostream& out) const;
  void save_file(const std::string& path) const;
  [[nodiscard]] static Embedding load(std::istream& in);
  [[nodiscard]] static Embedding load_file(const std::string& path);

 private:
  int dim_ = 0;
  std::vector<float> data_;
};

/// Dot product of two equal-length vectors.
[[nodiscard]] double dot(std::span<const float> a, std::span<const float> b);

/// Cosine similarity of two vectors (0 if either is zero).
[[nodiscard]] double cosine(std::span<const float> a, std::span<const float> b);

}  // namespace darkvec::w2v
