// Dense embedding matrix with cosine-space helpers and (de)serialization.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "darkvec/core/errors.hpp"

namespace darkvec::w2v {

/// A row-major (n x dim) float matrix: one embedding vector per word id.
class Embedding {
 public:
  Embedding() = default;
  Embedding(std::size_t n, int dim)
      : dim_(dim), data_(n * static_cast<std::size_t>(dim), 0.0f) {}
  Embedding(std::vector<float> data, int dim);

  [[nodiscard]] std::size_t size() const {
    return dim_ == 0 ? 0 : data_.size() / static_cast<std::size_t>(dim_);
  }
  [[nodiscard]] int dim() const { return dim_; }

  [[nodiscard]] std::span<const float> vec(std::size_t i) const {
    return {data_.data() + i * static_cast<std::size_t>(dim_),
            static_cast<std::size_t>(dim_)};
  }
  [[nodiscard]] std::span<float> vec(std::size_t i) {
    return {data_.data() + i * static_cast<std::size_t>(dim_),
            static_cast<std::size_t>(dim_)};
  }

  [[nodiscard]] const std::vector<float>& data() const { return data_; }

  /// Cosine similarity between rows i and j (0 if either row is zero).
  [[nodiscard]] double cosine(std::size_t i, std::size_t j) const;

  /// Returns a copy with every row scaled to unit L2 norm (zero rows kept
  /// zero). k-NN code takes normalized embeddings so similarity reduces to
  /// a dot product.
  [[nodiscard]] Embedding normalized() const;

  /// Binary serialization. save() emits the v2 format — magic, version,
  /// row count, dim, raw floats, CRC32 footer — and save_file() persists
  /// it atomically (temp + rename). load() reads v1 (no version field,
  /// no footer) and v2 files. Header fields are sanity-capped by
  /// `policy.limits` before any allocation; in lenient mode a truncated
  /// float section degrades to the whole rows present (reported), while
  /// strict mode throws typed io:: errors.
  void save(std::ostream& out) const;
  void save_file(const std::string& path) const;
  [[nodiscard]] static Embedding load(std::istream& in,
                                      const io::IoPolicy& policy,
                                      io::IoReport* report = nullptr);
  [[nodiscard]] static Embedding load_file(const std::string& path,
                                           const io::IoPolicy& policy,
                                           io::IoReport* report = nullptr);
  /// Legacy strict-mode signatures.
  [[nodiscard]] static Embedding load(std::istream& in);
  [[nodiscard]] static Embedding load_file(const std::string& path);

 private:
  int dim_ = 0;
  std::vector<float> data_;
};

/// Dot product of two equal-length vectors.
[[nodiscard]] double dot(std::span<const float> a, std::span<const float> b);

/// Cosine similarity of two vectors (0 if either is zero).
[[nodiscard]] double cosine(std::span<const float> a, std::span<const float> b);

}  // namespace darkvec::w2v
