// Generic token <-> dense-id vocabulary.
//
// The DarkVec corpus builder produces its own IP vocabulary, but the
// baselines embed other token kinds (ports for DANTE; mixed flow fields for
// IP2VEC). This small template avoids re-implementing the mapping.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace darkvec::w2v {

/// Maps hashable tokens to dense uint32 ids in insertion order and keeps
/// occurrence counts.
template <typename Token>
class Vocab {
 public:
  /// Returns the id of `token`, inserting it if new, and bumps its count.
  std::uint32_t add(const Token& token) {
    const auto [it, inserted] =
        ids_.try_emplace(token, static_cast<std::uint32_t>(tokens_.size()));
    if (inserted) {
      tokens_.push_back(token);
      counts_.push_back(0);
    }
    ++counts_[it->second];
    return it->second;
  }

  /// Id of `token` or `kNone` if absent. Does not insert.
  [[nodiscard]] std::uint32_t id_of(const Token& token) const {
    const auto it = ids_.find(token);
    return it == ids_.end() ? kNone : it->second;
  }

  [[nodiscard]] const Token& token(std::uint32_t id) const {
    return tokens_[id];
  }

  [[nodiscard]] std::uint64_t count(std::uint32_t id) const {
    return counts_[id];
  }

  [[nodiscard]] std::size_t size() const { return tokens_.size(); }

  [[nodiscard]] const std::vector<Token>& tokens() const { return tokens_; }
  [[nodiscard]] const std::vector<std::uint64_t>& counts() const {
    return counts_;
  }

  static constexpr std::uint32_t kNone = 0xFFFFFFFFu;

 private:
  std::unordered_map<Token, std::uint32_t> ids_;
  std::vector<Token> tokens_;
  std::vector<std::uint64_t> counts_;
};

}  // namespace darkvec::w2v
