// Skip-gram with negative sampling (SGNS), the Word2Vec variant the paper
// trains (via Gensim); re-implemented here after the original word2vec C
// code: unigram^0.75 negative-sampling table, sigmoid lookup table, linear
// learning-rate decay, optional frequent-token subsampling, optional
// lock-free multi-threading (Hogwild).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "darkvec/core/annotations.hpp"
#include "darkvec/w2v/embedding.hpp"

namespace darkvec::w2v {

/// Hyper-parameters of one SGNS training run. Defaults match the paper's
/// chosen operating point (V=50, c=25) and common Word2Vec practice.
struct SkipGramOptions {
  int dim = 50;          ///< embedding size V
  int window = 25;       ///< context window c (one side)
  int negative = 5;      ///< negative samples per positive pair
  int epochs = 10;
  /// Train the CBOW architecture instead of skip-gram: the averaged
  /// context predicts the center word (Appendix A.1 of the paper
  /// describes both; DarkVec uses skip-gram).
  bool cbow = false;
  /// Use hierarchical softmax (Huffman-coded output tree) instead of
  /// negative sampling. The paper attributes part of IP2VEC's cost to
  /// negative sampling; HS is the classic alternative with
  /// O(log vocab) updates per pair. Ignored by train_pairs().
  bool hierarchical_softmax = false;
  double alpha = 0.025;      ///< initial learning rate
  double min_alpha = 1e-4;   ///< learning-rate floor
  double subsample = 1e-3;   ///< frequent-token subsampling t; 0 disables
  bool dynamic_window = true;  ///< word2vec-style uniform window in [1, c]
  int threads = 1;           ///< >1 enables Hogwild (non-deterministic)
  std::uint64_t seed = 1;
};

/// Counters of a training run (Table 3 reports pairs and wall time).
struct TrainStats {
  std::uint64_t tokens = 0;          ///< tokens processed (sum over epochs)
  std::uint64_t pairs = 0;           ///< positive skip-gram pairs trained
  double seconds = 0;                ///< wall-clock training time
  int start_epoch = 0;               ///< first epoch this session ran (resume)
  int epochs_done = 0;               ///< epochs completed in total
  bool resumed = false;              ///< state was restored from a checkpoint
  std::uint64_t checkpoints_written = 0;
};

/// Crash-safe training control, shared by the SGNS and GloVe trainers.
///
/// With a non-empty `checkpoint_path` the trainer atomically replaces
/// that file (DVCK v1 envelope, CRC32 footer) with its full optimizer
/// state every `checkpoint_every` completed epochs, so a kill at any
/// instant leaves either the previous or the new checkpoint on disk,
/// never a torn one. With `resume` set it first restores that state and
/// continues from the next epoch: because per-epoch RNG streams are a
/// pure function of (seed, thread, epoch), a single-threaded resumed run
/// is bit-identical to the uninterrupted run. A checkpoint written under
/// different hyper-parameters or vocabulary is rejected (io::FormatError)
/// rather than silently blended in.
struct TrainControl {
  std::string checkpoint_path;  ///< empty disables checkpointing
  int checkpoint_every = 1;     ///< epochs between checkpoints
  bool resume = false;          ///< restore checkpoint_path before training
};

/// One sentence: a sequence of dense word ids.
using Sentence = std::vector<std::uint32_t>;

/// Skip-gram negative-sampling trainer over dense word ids.
///
/// Usage: construct with the vocabulary size, call `train()` (sentences) or
/// `train_pairs()` (pre-built pairs, used by the IP2VEC baseline), then take
/// `embedding()` (the input vectors). Single-threaded runs with the same
/// seed are bit-reproducible.
class SkipGramModel {
 public:
  SkipGramModel(std::size_t vocab_size, SkipGramOptions options);

  /// Trains over sentences for `options.epochs` epochs. Cooperative:
  /// polls the ambient runtime::RunContext between sentences, so a
  /// cancel or strict deadline raises the typed runtime error (workers
  /// stop at the next sentence boundary first; no thread is left
  /// running). With `control` checkpointing enabled, state saved before
  /// the interrupt survives for a later resume.
  TrainStats train(std::span<const Sentence> sentences);
  TrainStats train(std::span<const Sentence> sentences,
                   const TrainControl& control);

  /// Trains over explicit (input, output) pairs for `options.epochs`
  /// epochs. Negative samples are drawn from the output-token unigram
  /// distribution. Used by pair-based schemes such as IP2VEC.
  TrainStats train_pairs(
      std::span<const std::pair<std::uint32_t, std::uint32_t>> pairs);

  /// The trained input vectors, one row per word id. Briefly takes the
  /// training session lock, so calling it concurrently with train()
  /// blocks until training finishes instead of racing.
  [[nodiscard]] const Embedding& embedding() const {
    core::MutexLock lock(train_mu_);
    return syn0_;
  }

  [[nodiscard]] std::size_t vocab_size() const { return vocab_; }
  [[nodiscard]] const SkipGramOptions& options() const { return options_; }

 private:
  void build_unigram_table(const std::vector<std::uint64_t>& counts)
      DV_REQUIRES(train_mu_);
  /// One SGD step on the pair (input, output): positive update plus
  /// `negative` sampled negatives. `neu1e` is caller-provided scratch.
  /// Racy by design (Hogwild): workers update syn0_/syn1neg_ without
  /// per-row locks, exactly like the word2vec reference implementation.
  void train_pair(std::uint32_t input, std::uint32_t output, float alpha,
                  std::uint64_t& rng_state, float* neu1e)
      DV_REQUIRES(train_mu_) DV_BENIGN_RACE_FUNCTION;
  /// One CBOW step: the mean of the context vectors predicts `center`.
  /// `neu1`/`neu1e` are caller-provided scratch of size dim.
  /// Racy by design (Hogwild), like train_pair.
  void train_cbow(std::span<const std::uint32_t> context,
                  std::uint32_t center, float alpha,
                  std::uint64_t& rng_state, float* neu1, float* neu1e)
      DV_REQUIRES(train_mu_) DV_BENIGN_RACE_FUNCTION;
  /// Builds the Huffman tree for hierarchical softmax from word counts.
  void build_huffman_tree(const std::vector<std::uint64_t>& counts)
      DV_REQUIRES(train_mu_);
  /// One hierarchical-softmax step on (input, output).
  /// Racy by design (Hogwild), like train_pair.
  void train_pair_hs(std::uint32_t input, std::uint32_t output, float alpha,
                     float* neu1e) DV_REQUIRES(train_mu_)
      DV_BENIGN_RACE_FUNCTION;

  /// DVCK "SGNS" payload: fingerprint + counters + weight matrices.
  void save_train_checkpoint(const std::string& path, int epochs_done,
                             std::uint64_t processed, std::uint64_t pairs)
      DV_REQUIRES(train_mu_);
  /// Restores a checkpoint; returns false when `path` does not exist.
  /// Throws io::FormatError on damage or a hyper-parameter mismatch.
  bool load_train_checkpoint(const std::string& path, int* epochs_done,
                             std::uint64_t* processed, std::uint64_t* pairs)
      DV_REQUIRES(train_mu_);

  const std::size_t vocab_;
  const SkipGramOptions options_;
  /// Serializes training sessions and guards the weights: train() and
  /// train_pairs() hold it end to end, so two concurrent sessions (or a
  /// session racing embedding()) queue instead of corrupting weights.
  /// Hogwild workers *inside* one session write the guarded weights
  /// lock-free by design; they assert the capability that the
  /// coordinating thread holds on their behalf (see train()).
  mutable core::Mutex train_mu_;
  Embedding syn0_ DV_GUARDED_BY(train_mu_);  ///< input vectors (embedding)
  std::vector<float> syn1neg_ DV_GUARDED_BY(train_mu_);  ///< output vectors
  std::vector<std::uint32_t> unigram_table_ DV_GUARDED_BY(train_mu_);
  // Hierarchical softmax: per-word Huffman code and inner-node path.
  std::vector<std::vector<std::uint8_t>> hs_code_ DV_GUARDED_BY(train_mu_);
  std::vector<std::vector<std::uint32_t>> hs_point_ DV_GUARDED_BY(train_mu_);
  std::vector<float> syn1hs_ DV_GUARDED_BY(train_mu_);  ///< inner nodes
  std::uint64_t pairs_trained_ DV_GUARDED_BY(train_mu_) = 0;
};

}  // namespace darkvec::w2v
