// Louvain community detection (Blondel et al. 2008), as used by the paper
// for the unsupervised analysis (Section 7.1).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "darkvec/graph/graph.hpp"

namespace darkvec::graph {

/// Result of a Louvain run.
struct LouvainResult {
  /// community[i] is the dense community id of node i, in [0, count).
  std::vector<int> community;
  /// Modularity of the final partition.
  double modularity = 0;
  /// Number of communities.
  int count = 0;
  /// Aggregation levels performed.
  int levels = 0;
};

/// Options for the Louvain run. Defaults match python-louvain.
struct LouvainOptions {
  /// Minimum modularity gain to continue a local-move pass.
  double min_gain = 1e-7;
  /// Seed for the node-visit shuffle (Louvain is order-dependent).
  std::uint64_t seed = 1;
  /// Safety cap on aggregation levels.
  int max_levels = 32;
};

/// Newman modularity of `community` over `g` (python-louvain convention:
/// self-loops count once in total weight, twice in degrees). Range
/// [-0.5, 1].
[[nodiscard]] double modularity(const WeightedGraph& g,
                                std::span<const int> community);

/// Runs Louvain on a finalized graph. Deterministic for a fixed seed.
[[nodiscard]] LouvainResult louvain(const WeightedGraph& g,
                                    const LouvainOptions& options = {});

}  // namespace darkvec::graph
