// k'-NN graph construction over an embedding (Section 7.1): each sender
// points to its k' nearest neighbours, edge weight = cosine similarity.
#pragma once

#include "darkvec/graph/graph.hpp"
#include "darkvec/ml/knn.hpp"

namespace darkvec::graph {

/// Builds the (symmetrized) k'-NN graph of all points in `index`.
///
/// Directed edges u -> v for each of u's k' nearest neighbours are
/// accumulated into an undirected graph; a pair that selects each other
/// ends up with the sum of both directions, mirroring how the paper's
/// directed graph behaves under Louvain. Edges with non-positive cosine
/// similarity are dropped (negative weights are meaningless to
/// modularity).
[[nodiscard]] WeightedGraph knn_graph(const ml::CosineKnn& index,
                                      int k_prime);

/// Same construction with opt-in approximate neighbour lists: when
/// `ann.enabled` the lists come from the IVF index (deterministic per
/// nprobe, but edges to out-of-probe neighbours may be missing);
/// disabled falls back to the exact overload above, bit-identically.
[[nodiscard]] WeightedGraph knn_graph(const ml::CosineKnn& index, int k_prime,
                                      const ml::AnnSearchParams& ann);

}  // namespace darkvec::graph
