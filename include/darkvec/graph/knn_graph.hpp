// k'-NN graph construction over an embedding (Section 7.1): each sender
// points to its k' nearest neighbours, edge weight = cosine similarity.
#pragma once

#include "darkvec/graph/graph.hpp"
#include "darkvec/ml/knn.hpp"

namespace darkvec::graph {

/// Builds the (symmetrized) k'-NN graph of all points in `index`.
///
/// Directed edges u -> v for each of u's k' nearest neighbours are
/// accumulated into an undirected graph; a pair that selects each other
/// ends up with the sum of both directions, mirroring how the paper's
/// directed graph behaves under Louvain. Edges with non-positive cosine
/// similarity are dropped (negative weights are meaningless to
/// modularity).
[[nodiscard]] WeightedGraph knn_graph(const ml::CosineKnn& index,
                                      int k_prime);

}  // namespace darkvec::graph
