// Weighted undirected graph used for the k'-NN graph clustering of
// Section 7. Directed k-NN edges are symmetrized on insertion (weights of
// the two directions accumulate), which is what the reference
// python-louvain pipeline does when handed a directed graph.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace darkvec::graph {

/// One adjacency entry.
struct Edge {
  std::uint32_t to = 0;
  double weight = 0;
};

/// Undirected weighted graph with merged parallel edges and self-loops.
///
/// Build with `add_edge` (accumulating duplicate pairs), then call
/// `finalize()` once before reading adjacency. Degrees follow the
/// python-louvain convention: a self-loop of weight w contributes 2w.
class WeightedGraph {
 public:
  explicit WeightedGraph(std::size_t n);

  /// Adds w to the undirected edge {u, v} (or to the self-loop when
  /// u == v). Must be called before finalize().
  void add_edge(std::uint32_t u, std::uint32_t v, double w);

  /// Merges duplicates and builds adjacency lists.
  void finalize();

  [[nodiscard]] std::size_t num_nodes() const { return n_; }

  /// Neighbours of u (self-loop included once if present). finalize()d.
  [[nodiscard]] std::span<const Edge> neighbors(std::uint32_t u) const;

  /// Weighted degree of u (self-loop counted twice). finalize()d.
  [[nodiscard]] double degree(std::uint32_t u) const { return degree_[u]; }

  /// Self-loop weight of u (0 if none). finalize()d.
  [[nodiscard]] double self_loop(std::uint32_t u) const { return self_[u]; }

  /// Sum of edge weights, each undirected edge once, self-loops once.
  [[nodiscard]] double total_weight() const { return total_weight_; }

 private:
  struct RawEdge {
    std::uint32_t u, v;
    double w;
  };

  std::size_t n_;
  bool finalized_ = false;
  std::vector<RawEdge> raw_;
  // CSR storage after finalize().
  std::vector<std::size_t> offsets_;
  std::vector<Edge> edges_;
  std::vector<double> degree_;
  std::vector<double> self_;
  double total_weight_ = 0;
};

/// Number of connected components (by positive-weight edges).
[[nodiscard]] std::size_t connected_components(const WeightedGraph& g);

}  // namespace darkvec::graph
