// The packet record observed by the darknet sensor.
#pragma once

#include <cstdint>

#include "darkvec/net/ipv4.hpp"
#include "darkvec/net/protocol.hpp"

namespace darkvec::net {

/// One unsolicited packet as captured by the darknet.
///
/// A darknet hosts no services, so the only interesting fields are who sent
/// the packet, when, and to which (address, port, protocol) inside the
/// monitored /24. `mirai_fingerprint` stands in for the well-known Mirai
/// probe signature (TCP sequence number equal to the destination address),
/// which the paper uses as a labeling oracle for the GT1 class.
struct Packet {
  /// Arrival time, seconds since the Unix epoch.
  std::int64_t ts = 0;
  /// Sender address (the "word" of the DarkVec language).
  IPv4 src;
  /// Last octet of the destination address inside the monitored /24.
  std::uint8_t dst_host = 0;
  /// Destination port (0 for ICMP).
  std::uint16_t dst_port = 0;
  /// Transport protocol.
  Protocol proto = Protocol::kTcp;
  /// True when the payload carries the Mirai scanning fingerprint.
  bool mirai_fingerprint = false;

  /// The (port, protocol) pair this packet targets.
  [[nodiscard]] constexpr PortKey port_key() const {
    return PortKey{dst_port, proto};
  }
};

}  // namespace darkvec::net
