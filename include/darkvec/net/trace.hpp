// Trace: an ordered collection of darknet packets plus the descriptive
// statistics used throughout the paper's Section 3 (Table 1, Figures 1-2).
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "darkvec/net/ipv4.hpp"
#include "darkvec/net/packet.hpp"
#include "darkvec/net/protocol.hpp"

namespace darkvec::net {

/// Aggregate statistics of a trace (Table 1 of the paper).
struct TraceStats {
  std::size_t packets = 0;
  std::size_t sources = 0;
  std::size_t ports = 0;  ///< distinct (port, proto) pairs observed
  std::int64_t first_ts = 0;
  std::int64_t last_ts = 0;
};

/// One row of a port ranking: a (port, proto) pair with its packet count
/// and the number of distinct senders that targeted it.
struct PortRankEntry {
  PortKey key;
  std::size_t packets = 0;
  std::size_t sources = 0;
};

/// A chronologically sorted sequence of darknet packets.
///
/// Packets may be appended in any order; `sort()` restores chronological
/// order (the simulator emits per-sender streams and sorts once). All
/// analysis helpers require a sorted trace and say so.
class Trace {
 public:
  Trace() = default;
  explicit Trace(std::vector<Packet> packets);

  void push_back(const Packet& p) { packets_.push_back(p); }
  void append(const Trace& other);
  void reserve(std::size_t n) { packets_.reserve(n); }

  /// Stable-sorts packets by timestamp. Stability keeps the per-sender
  /// emission order for packets sharing a second, which makes corpus
  /// construction deterministic.
  void sort();

  [[nodiscard]] bool empty() const { return packets_.empty(); }
  [[nodiscard]] std::size_t size() const { return packets_.size(); }
  [[nodiscard]] std::span<const Packet> packets() const { return packets_; }
  [[nodiscard]] const Packet& operator[](std::size_t i) const {
    return packets_[i];
  }

  [[nodiscard]] auto begin() const { return packets_.begin(); }
  [[nodiscard]] auto end() const { return packets_.end(); }

  /// Copies the sub-trace with timestamps in [t0, t1). Requires sorted.
  [[nodiscard]] Trace slice(std::int64_t t0, std::int64_t t1) const;

  /// Table-1 style statistics of the whole trace.
  [[nodiscard]] TraceStats stats() const;

  /// Packet count per (port, proto), sorted by decreasing packets
  /// (Figure 1a / Table 1 "Top-3 TCP ports").
  [[nodiscard]] std::vector<PortRankEntry> port_ranking() const;

  /// Total packets observed from each sender (Figure 2a).
  [[nodiscard]] std::unordered_map<IPv4, std::size_t> packets_per_sender()
      const;

  /// Cumulative number of distinct senders seen after each whole day from
  /// `t0`, optionally counting only senders that eventually reach
  /// `min_packets` packets in the full trace (Figure 2b "Filtered" curve).
  /// Requires sorted.
  [[nodiscard]] std::vector<std::size_t> cumulative_senders_per_day(
      std::int64_t t0, std::size_t min_packets = 1) const;

 private:
  std::vector<Packet> packets_;
};

/// The set of senders with at least `min_packets` packets in `trace` —
/// the paper's "active senders" filter (Section 3.1, threshold 10).
[[nodiscard]] std::vector<IPv4> active_senders(const Trace& trace,
                                               std::size_t min_packets);

}  // namespace darkvec::net
