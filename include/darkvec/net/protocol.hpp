// Transport protocol enum and the (port, protocol) pair used as a service
// key throughout the corpus definition.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace darkvec::net {

/// Transport protocol of a darknet packet. The paper sums TCP and UDP for
/// port rankings but keeps them distinct for service definitions
/// (e.g. 53/udp vs 53/tcp in the DNS service, Table 7).
enum class Protocol : std::uint8_t {
  kTcp = 0,
  kUdp = 1,
  kIcmp = 2,
};

/// "tcp", "udp" or "icmp".
[[nodiscard]] std::string_view to_string(Protocol p);

/// Parses "tcp"/"udp"/"icmp" (case-insensitive). nullopt otherwise.
[[nodiscard]] std::optional<Protocol> parse_protocol(std::string_view text);

/// A destination (port, protocol) pair: the unit from which services are
/// built. ICMP has no port; by convention it is represented as port 0 with
/// Protocol::kIcmp.
struct PortKey {
  std::uint16_t port = 0;
  Protocol proto = Protocol::kTcp;

  friend constexpr auto operator<=>(const PortKey&, const PortKey&) = default;

  /// Renders as "23/tcp", "53/udp" or "icmp".
  [[nodiscard]] std::string to_string() const;
};

}  // namespace darkvec::net

template <>
struct std::hash<darkvec::net::PortKey> {
  std::size_t operator()(const darkvec::net::PortKey& k) const noexcept {
    const std::size_t v = (static_cast<std::size_t>(k.proto) << 16) | k.port;
    return v * 0x9E3779B97F4A7C15ull;
  }
};
