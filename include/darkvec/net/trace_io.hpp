// CSV serialization of traces, mirroring the anonymized dataset format the
// paper's authors released (timestamp, source, destination, port, proto,
// fingerprint flag).
#pragma once

#include <iosfwd>
#include <string>

#include "darkvec/core/errors.hpp"
#include "darkvec/net/trace.hpp"

namespace darkvec::net {

/// Writes `trace` as CSV with header
/// `ts,src,dst_host,port,proto,mirai` — one packet per line.
void write_csv(std::ostream& out, const Trace& trace);

/// Convenience overload writing to `path` atomically (temp + rename).
/// Throws io::IoError if the file cannot be written.
void write_csv_file(const std::string& path, const Trace& trace);

/// Parses a trace previously written by `write_csv` under `policy`:
/// strict throws io::ParseError at the first malformed row (with the
/// offending line number); lenient skips malformed rows under the error
/// budget and records them in `report` (may be null).
[[nodiscard]] Trace read_csv(std::istream& in, const io::IoPolicy& policy,
                             io::IoReport* report = nullptr);
[[nodiscard]] Trace read_csv_file(const std::string& path,
                                  const io::IoPolicy& policy,
                                  io::IoReport* report = nullptr);

/// Legacy strict-mode signatures (throw on the first malformed row).
[[nodiscard]] Trace read_csv(std::istream& in);
[[nodiscard]] Trace read_csv_file(const std::string& path);

}  // namespace darkvec::net
