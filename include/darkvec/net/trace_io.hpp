// CSV serialization of traces, mirroring the anonymized dataset format the
// paper's authors released (timestamp, source, destination, port, proto,
// fingerprint flag).
#pragma once

#include <iosfwd>
#include <string>

#include "darkvec/net/trace.hpp"

namespace darkvec::net {

/// Writes `trace` as CSV with header
/// `ts,src,dst_host,port,proto,mirai` — one packet per line.
void write_csv(std::ostream& out, const Trace& trace);

/// Convenience overload writing to `path`. Throws std::runtime_error if the
/// file cannot be opened.
void write_csv_file(const std::string& path, const Trace& trace);

/// Parses a trace previously written by `write_csv`. Throws
/// std::runtime_error on malformed rows (with the offending line number).
[[nodiscard]] Trace read_csv(std::istream& in);

/// Convenience overload reading from `path`.
[[nodiscard]] Trace read_csv_file(const std::string& path);

}  // namespace darkvec::net
