// Compact binary trace serialization.
//
// The paper's capture is 63.5M packets; CSV parsing dominates any analysis
// at that size. This fixed-record binary format round-trips a Trace at
// memcpy speed: a small header (magic, version, count) followed by
// 16-byte packet records.
#pragma once

#include <iosfwd>
#include <string>

#include "darkvec/net/trace.hpp"

namespace darkvec::net {

/// Writes `trace` in the binary format (little-endian host assumed, as the
/// rest of the library).
void write_binary(std::ostream& out, const Trace& trace);
void write_binary_file(const std::string& path, const Trace& trace);

/// Reads a trace previously written by write_binary. Throws
/// std::runtime_error on bad magic, version mismatch or truncation.
[[nodiscard]] Trace read_binary(std::istream& in);
[[nodiscard]] Trace read_binary_file(const std::string& path);

}  // namespace darkvec::net
