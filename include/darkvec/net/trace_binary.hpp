// Compact binary trace serialization.
//
// The paper's capture is 63.5M packets; CSV parsing dominates any analysis
// at that size. This fixed-record binary format round-trips a Trace at
// memcpy speed: a small header (magic, version, count) followed by
// 16-byte packet records.
//
// Version 2 (what write_binary emits) appends a CRC32 footer over every
// preceding byte, so silent corruption is detected at load time; version 1
// files (no footer) remain fully readable. File writes go through the
// atomic temp-then-rename path, so a crash mid-write never clobbers an
// existing file.
#pragma once

#include <iosfwd>
#include <string>

#include "darkvec/core/errors.hpp"
#include "darkvec/net/trace.hpp"

namespace darkvec::net {

/// Writes `trace` in the v2 binary format (little-endian host assumed, as
/// the rest of the library).
void write_binary(std::ostream& out, const Trace& trace);
void write_binary_file(const std::string& path, const Trace& trace);

/// Reads a v1 or v2 trace under `policy`. Structural damage (bad magic,
/// unsupported version, a record count past `policy.limits.max_records`)
/// always throws (io::FormatError / io::ResourceLimit). Record-level
/// damage — invalid protocol bits, truncated tail, checksum mismatch,
/// trailing bytes — throws typed errors in strict mode and is skipped and
/// recorded in `report` in lenient mode.
[[nodiscard]] Trace read_binary(std::istream& in, const io::IoPolicy& policy,
                                io::IoReport* report = nullptr);
[[nodiscard]] Trace read_binary_file(const std::string& path,
                                     const io::IoPolicy& policy,
                                     io::IoReport* report = nullptr);

/// Legacy strict-mode signatures.
[[nodiscard]] Trace read_binary(std::istream& in);
[[nodiscard]] Trace read_binary_file(const std::string& path);

}  // namespace darkvec::net
