// IPv4 address value type.
//
// The whole DarkVec pipeline treats sender IP addresses as opaque "words";
// this type gives them value semantics, fast hashing and subnet arithmetic
// (cluster inspection reasons about /24 and /16 aggregates, cf. Table 5 of
// the paper).
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace darkvec::net {

/// An IPv4 address stored in host byte order.
///
/// Value type: cheap to copy, totally ordered, hashable. Use
/// `IPv4::parse()` to construct from dotted-quad text and `to_string()` to
/// render it back.
class IPv4 {
 public:
  /// Constructs 0.0.0.0.
  constexpr IPv4() = default;

  /// Constructs from a 32-bit value in host byte order
  /// (e.g. `IPv4{0x0A000001}` is 10.0.0.1).
  constexpr explicit IPv4(std::uint32_t value) : value_(value) {}

  /// Constructs from the four dotted-quad octets, most significant first.
  constexpr IPv4(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                 std::uint8_t d)
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  /// Parses "a.b.c.d". Returns std::nullopt on any malformed input
  /// (missing octets, out-of-range values, trailing garbage).
  static std::optional<IPv4> parse(std::string_view text);

  /// The address as a 32-bit host-byte-order value.
  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }

  /// The i-th octet, 0 being the most significant ("a" in a.b.c.d).
  [[nodiscard]] constexpr std::uint8_t octet(int i) const {
    return static_cast<std::uint8_t>(value_ >> (8 * (3 - i)));
  }

  /// The enclosing /24 network address (last octet zeroed).
  [[nodiscard]] constexpr IPv4 slash24() const {
    return IPv4{value_ & 0xFFFFFF00u};
  }

  /// The enclosing /16 network address (last two octets zeroed).
  [[nodiscard]] constexpr IPv4 slash16() const {
    return IPv4{value_ & 0xFFFF0000u};
  }

  /// Renders as dotted quad, e.g. "192.168.8.66".
  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(IPv4, IPv4) = default;

 private:
  std::uint32_t value_ = 0;
};

}  // namespace darkvec::net

template <>
struct std::hash<darkvec::net::IPv4> {
  std::size_t operator()(darkvec::net::IPv4 ip) const noexcept {
    // Fibonacci hashing spreads sequential addresses (common in subnets).
    return static_cast<std::size_t>(ip.value()) * 0x9E3779B97F4A7C15ull;
  }
};
