// Small time helpers shared by the simulator, corpus builder and benches.
// All timestamps in the library are plain std::int64_t seconds since the
// Unix epoch; these helpers keep day/hour arithmetic in one place.
#pragma once

#include <cstdint>
#include <string>

namespace darkvec::net {

inline constexpr std::int64_t kSecondsPerMinute = 60;
inline constexpr std::int64_t kSecondsPerHour = 3600;
inline constexpr std::int64_t kSecondsPerDay = 86400;

/// 2021-03-02 00:00:00 UTC — the first day of the paper's capture.
inline constexpr std::int64_t kTraceEpoch = 1614643200;

/// Zero-based day index of `ts` relative to `t0`.
[[nodiscard]] constexpr std::int64_t day_index(std::int64_t ts,
                                               std::int64_t t0) {
  return (ts - t0) / kSecondsPerDay;
}

/// Zero-based hour index of `ts` relative to `t0`.
[[nodiscard]] constexpr std::int64_t hour_index(std::int64_t ts,
                                                std::int64_t t0) {
  return (ts - t0) / kSecondsPerHour;
}

/// Renders a Unix timestamp as "YYYY-MM-DD HH:MM:SS" (UTC).
[[nodiscard]] std::string format_utc(std::int64_t ts);

}  // namespace darkvec::net
