// Service definitions: the paper's key design knob (Section 5.2).
//
// A service maps each destination (port, protocol) to a semantic group;
// packet sequences are split per service before becoming Word2Vec
// sentences. Three strategies are evaluated in the paper:
//   * single service  — all ports together (worst, Table 4 left),
//   * auto-defined    — top-n popular ports each get a service (n=10),
//   * domain knowledge — the hand-curated 15-service table (Table 7).
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "darkvec/net/protocol.hpp"
#include "darkvec/net/trace.hpp"

namespace darkvec::corpus {

/// Maps (port, protocol) pairs to small dense service ids.
class ServiceMap {
 public:
  virtual ~ServiceMap() = default;

  /// Dense id in [0, num_services()).
  [[nodiscard]] virtual int service_of(net::PortKey key) const = 0;

  [[nodiscard]] virtual int num_services() const = 0;

  /// Human-readable service name ("Telnet", "port 445/tcp", "other", ...).
  [[nodiscard]] virtual std::string name(int service) const = 0;
};

/// Everything in one service — the paper's degenerate baseline definition.
class SingleServiceMap final : public ServiceMap {
 public:
  [[nodiscard]] int service_of(net::PortKey) const override { return 0; }
  [[nodiscard]] int num_services() const override { return 1; }
  [[nodiscard]] std::string name(int) const override { return "all"; }
};

/// One service per top-n (port, protocol) pair of a reference trace plus a
/// catch-all (n+1)-th service (the paper uses n = 10).
class AutoServiceMap final : public ServiceMap {
 public:
  /// Ranks ports by packet count in `trace` and keeps the top `n`.
  AutoServiceMap(const net::Trace& trace, int n = 10);

  [[nodiscard]] int service_of(net::PortKey key) const override;
  [[nodiscard]] int num_services() const override;
  [[nodiscard]] std::string name(int service) const override;

 private:
  std::unordered_map<net::PortKey, int> top_;
  std::vector<net::PortKey> keys_;  // id -> key, for naming
};

/// The hand-curated domain-knowledge mapping of Table 7: 15 named services
/// plus ICMP plus the three port-range fallbacks (system / user /
/// ephemeral).
class DomainServiceMap final : public ServiceMap {
 public:
  DomainServiceMap();

  [[nodiscard]] int service_of(net::PortKey key) const override;
  [[nodiscard]] int num_services() const override;
  [[nodiscard]] std::string name(int service) const override;

  /// Id of a named service ("Telnet", "DNS", ...); -1 if unknown. Useful
  /// for tests and the Figure 3 heatmap.
  [[nodiscard]] int id_of(std::string_view service_name) const;

 private:
  std::unordered_map<net::PortKey, int> table_;
  std::vector<std::string> names_;
  int icmp_ = 0;
  int unknown_system_ = 0;
  int unknown_user_ = 0;
  int unknown_ephemeral_ = 0;
};

/// The paper's three service-definition strategies, for sweep loops.
enum class ServiceStrategy { kSingle, kAuto, kDomain };

[[nodiscard]] std::string_view to_string(ServiceStrategy s);

/// Factory: builds the requested strategy (AutoServiceMap needs `trace`).
[[nodiscard]] std::unique_ptr<ServiceMap> make_service_map(
    ServiceStrategy strategy, const net::Trace& trace, int auto_top_n = 10);

}  // namespace darkvec::corpus
