// Corpus construction: from a packet trace to Word2Vec sentences
// (Section 5.2 of the paper).
//
// Packets of active senders are split by (service, ΔT window); within each
// cell the chronological sequence of sender IP addresses is one sentence.
// The union of all sentences over all services and windows is the corpus.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "darkvec/corpus/service_map.hpp"
#include "darkvec/net/time.hpp"
#include "darkvec/net/trace.hpp"

namespace darkvec::corpus {

/// Dense word id of a sender inside one corpus.
using WordId = std::uint32_t;

/// The tokenized corpus plus the IP<->id mapping.
struct Corpus {
  /// id -> sender address. Ids are assigned in order of first appearance.
  std::vector<net::IPv4> words;
  /// sender address -> id (inverse of `words`).
  std::unordered_map<net::IPv4, WordId> ids;
  /// All sentences, ordered by (time window, service).
  std::vector<std::vector<WordId>> sentences;

  [[nodiscard]] std::size_t vocabulary_size() const { return words.size(); }

  /// Total token count across sentences.
  [[nodiscard]] std::size_t tokens() const;

  /// Id of `ip`, or `kNoWord` if it never entered the corpus.
  [[nodiscard]] WordId id_of(net::IPv4 ip) const;

  static constexpr WordId kNoWord = 0xFFFFFFFFu;
};

/// Knobs of corpus construction.
struct CorpusOptions {
  /// Window length ΔT (the paper uses 1 hour and reports low sensitivity).
  std::int64_t delta_t = net::kSecondsPerHour;
  /// Activity filter: senders with fewer packets in the trace are dropped
  /// (Section 3.1, threshold 10).
  std::size_t min_packets = 10;
};

/// Builds the corpus of `trace` under `services`.
///
/// The trace must be sorted. Senders failing the activity filter are
/// removed both as words and from sentences. Sentences preserve packet
/// arrival order and keep repeated senders (a sender probing twice in a
/// window appears twice, exactly as in the paper's sequences). Sentences
/// with a single token carry no co-occurrence signal and are dropped.
[[nodiscard]] Corpus build_corpus(const net::Trace& trace,
                                  const ServiceMap& services,
                                  const CorpusOptions& options = {});

/// Counts the skip-gram (target, context) pairs a window-`c` training pass
/// over `corpus` generates: sum over sentences of per-token context sizes,
/// truncated at sentence borders. This is the cost metric of Table 3.
[[nodiscard]] std::uint64_t count_skipgrams(const Corpus& corpus, int c);

}  // namespace darkvec::corpus
