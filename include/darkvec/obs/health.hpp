// Model-health observability: embedding and cluster drift signals per
// sliding window, with threshold/EWMA anomaly detection.
//
// The engine-level obs layer (log/metrics/span) says whether the code is
// healthy; this layer says whether the MODEL is — the operational
// question of continuous darknet monitoring (DANTE, Kallitsis et al.):
// did a new campaign arrive, did a cluster split, did a scanner fleet
// retire? A HealthMonitor ingests one HealthInput per window (the
// streaming pipeline feeds it every snapshot; one-shot CLI runs feed it
// a single window) and produces a WindowHealth drift report:
//
//   * vocabulary churn — senders added/retired vs the previous window;
//   * per-cluster drift — each cluster matched to its best-overlap
//     ancestor, with membership churn (Jaccard distance of the sender
//     sets) and centroid drift (cosine distance of the matched cluster
//     centroids, meaningful because streaming Procrustes-aligns
//     successive spaces into one coordinate system);
//   * neighbor overlap@k — for senders present in both windows, how much
//     of each sender's k-NN list (computed within the shared vocabulary)
//     survived; the most sensitive "did the geometry move" probe;
//   * alignment residual — 1 - anchor cosine of the Procrustes fit the
//     caller already performed (transfer.hpp / streaming);
//   * quality trends — mean silhouette and Louvain modularity.
//
// Signals are recorded into ring-buffer Series in the global metrics
// registry (so /metrics exposition and health_report.json share one
// source of truth), and the AnomalyDetector raises structured WARN
// alerts with explainers ("cluster 7: 43% membership churn, centroid
// drift 0.31 — probable split or new campaign").
//
// Layering: this is the one obs component ABOVE ml/w2v (it needs k-NN
// and embeddings), built as its own library (darkvec_health) so the
// leaf obs library stays dependency-free. Everything here is
// deterministic: same inputs produce byte-identical reports across
// thread counts and SIMD levels (the k-NN and silhouette kernels carry
// that contract).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "darkvec/net/ipv4.hpp"
#include "darkvec/w2v/embedding.hpp"

namespace darkvec::obs {

/// Alarm thresholds and detector knobs. Defaults are deliberately loose:
/// windowed retraining is noisy, and a page-worthy alert should mean
/// "the traffic mix changed", not "SGNS jittered".
struct HealthThresholds {
  /// Alert when (added + retired) / union exceeds this.
  double max_vocab_churn = 0.5;
  /// Per-cluster Jaccard-distance alarm (clusters >= min_cluster_size).
  double max_membership_churn = 0.6;
  /// Per-cluster centroid cosine-distance alarm.
  double max_centroid_drift = 0.35;
  /// Alert when mean k-NN list overlap with the previous window drops
  /// below this.
  double min_neighbor_overlap = 0.3;
  /// Alert when 1 - Procrustes anchor similarity exceeds this.
  double max_alignment_residual = 0.5;
  /// EWMA z-score detector: |x - ewma| > z_threshold * sigma fires, but
  /// only after `warmup_windows` samples of a signal have been seen.
  double ewma_alpha = 0.3;
  double z_threshold = 3.0;
  int warmup_windows = 3;
  /// k of the neighbor-overlap probe.
  int overlap_k = 10;
  /// Shared-sender query budget of the overlap probe: at most this many
  /// (evenly strided, deterministic) senders are used as queries so
  /// health cost stays a sliver of the window cost. 0 = all.
  std::size_t overlap_sample = 2048;
  /// Clusters smaller than this never alarm (tiny clusters churn freely).
  std::size_t min_cluster_size = 5;

  /// Parses "key=value,key=value" overrides (the CLI's
  /// --health-thresholds): vocab-churn, membership-churn, centroid-drift,
  /// neighbor-overlap, alignment-residual, ewma-alpha, z, warmup, k,
  /// sample, min-cluster. Returns nullopt (and leaves *out untouched) on
  /// an unknown key or a malformed pair.
  [[nodiscard]] static std::optional<HealthThresholds> parse(
      std::string_view spec);
  [[nodiscard]] static std::optional<HealthThresholds> parse(
      std::string_view spec, HealthThresholds base);
};

/// Vocabulary churn between consecutive windows.
struct VocabChurn {
  std::size_t added = 0;    ///< senders in this window only
  std::size_t retired = 0;  ///< senders in the previous window only
  std::size_t shared = 0;   ///< senders in both
  std::size_t current = 0;  ///< this window's vocabulary size

  /// (added + retired) / |union|; 0 when both windows are empty.
  [[nodiscard]] double churn() const {
    const std::size_t uni = shared + added + retired;
    return uni == 0 ? 0.0
                    : static_cast<double>(added + retired) /
                          static_cast<double>(uni);
  }
};

/// One current cluster matched against the previous window's partition.
struct ClusterDrift {
  int cluster = -1;       ///< current window cluster id
  int matched_prev = -1;  ///< best-overlap previous cluster (-1 = new)
  std::size_t size = 0;
  std::size_t prev_size = 0;  ///< size of the matched ancestor
  std::size_t shared = 0;     ///< senders in both clusters
  /// Jaccard distance of the member sets: 1 - shared/|union| (1.0 for a
  /// brand-new cluster).
  double membership_churn = 1.0;
  /// 1 - cosine(current centroid, matched ancestor centroid); 0 for a
  /// new cluster (there is nothing to drift from).
  double centroid_drift = 0.0;
};

/// One raised alarm. `signal` is a stable machine key; `detail` is the
/// human explainer that also goes to the WARN log.
struct HealthAlert {
  std::string signal;  ///< e.g. "cluster-drift", "vocab-churn", "zscore"
  std::string detail;
  double value = 0;
  double threshold = 0;
  int cluster = -1;  ///< involved cluster id, -1 when not cluster-scoped
};

/// The per-window drift report.
struct WindowHealth {
  std::int64_t window_start = 0;
  std::int64_t window_end = 0;
  bool degraded = false;
  std::string degraded_reason;
  /// False for the first observed window (nothing to diff against):
  /// churn/overlap/drift fields are identity values then.
  bool has_previous = false;

  std::size_t senders = 0;
  int clusters = 0;
  VocabChurn vocab;
  double neighbor_overlap = 1.0;    ///< mean overlap@k, 1 when no previous
  double alignment_residual = 0.0;  ///< 1 - anchor similarity
  double silhouette = 0.0;          ///< mean sample silhouette
  double modularity = 0.0;
  /// Per-cluster drift, sorted by current cluster id. Clusters below
  /// min_cluster_size are reported but never alarmed.
  std::vector<ClusterDrift> cluster_drift;
  std::vector<HealthAlert> alerts;

  /// One JSON object (schema in EXPERIMENTS.md).
  [[nodiscard]] std::string to_json() const;
};

/// What one window hands the monitor. Spans/pointers are borrowed for
/// the observe() call only.
struct HealthInput {
  std::int64_t window_start = 0;
  std::int64_t window_end = 0;
  /// Senders embedded this window; row i of `embedding` embeds senders[i].
  std::span<const net::IPv4> senders;
  /// Need not be normalized; when windows are meant to be compared the
  /// caller must have aligned them into one space (streaming does).
  const w2v::Embedding* embedding = nullptr;
  /// Cluster id per sender (same indexing as `senders`).
  std::span<const int> assignment;
  double modularity = 0;
  /// Mean Procrustes anchor cosine vs the previous window; pass 1.0
  /// when unknown/inapplicable (residual then reads 0).
  double alignment_similarity = 1.0;
  /// A degraded window (no trainable model): signals are skipped, the
  /// previous reference window is kept, and a degraded-window alert is
  /// raised so outages never pass silently.
  bool degraded = false;
  std::string_view degraded_reason;
};

/// EWMA mean/variance tracker with a z-score trigger; one per signal
/// inside the monitor, usable standalone in tests. Warmup: the first
/// `warmup` samples update the estimate but never fire.
class EwmaDetector {
 public:
  EwmaDetector(double alpha, double z, int warmup)
      : alpha_(alpha), z_(z), warmup_(warmup) {}

  /// Feeds one sample; returns the |z-score| that fired, or nullopt.
  std::optional<double> update(double value);

  [[nodiscard]] double mean() const { return mean_; }
  [[nodiscard]] int samples() const { return samples_; }

 private:
  double alpha_;
  double z_;
  int warmup_;
  double mean_ = 0;
  double var_ = 0;
  int samples_ = 0;
};

/// Ingests windows, keeps the previous window as the drift reference,
/// records signals into the metrics registry, and raises alerts.
/// Single-threaded by design: one monitor per stream, fed in window
/// order (the streaming loop is sequential anyway).
class HealthMonitor {
 public:
  explicit HealthMonitor(HealthThresholds thresholds = {});
  ~HealthMonitor();
  HealthMonitor(const HealthMonitor&) = delete;
  HealthMonitor& operator=(const HealthMonitor&) = delete;

  /// Computes the drift report for one window, updates the reference
  /// state (non-degraded windows only), records metrics and logs one
  /// WARN per alert. Deterministic for fixed inputs.
  WindowHealth observe(const HealthInput& input);

  /// Every report observed so far, in order.
  [[nodiscard]] const std::vector<WindowHealth>& history() const {
    return history_;
  }
  [[nodiscard]] const HealthThresholds& thresholds() const {
    return thresholds_;
  }
  /// Alerts raised across all windows.
  [[nodiscard]] std::size_t alerts_total() const;

  /// The full health_report.json body:
  /// {"schema":1,"thresholds":{...},"windows":[...],"alerts_total":N}.
  [[nodiscard]] std::string report_json() const;
  /// Atomically persists report_json() (+ trailing newline) to `path`.
  void write_report(const std::string& path) const;

 private:
  struct PrevWindow;  // previous snapshot state (pimpl keeps deps here)

  HealthThresholds thresholds_;
  std::vector<WindowHealth> history_;
  std::unique_ptr<PrevWindow> prev_;
  std::vector<std::pair<std::string, EwmaDetector>> detectors_;

  EwmaDetector& detector(std::string_view signal);
};

/// The health_report.json body for an already-computed window sequence
/// (e.g. StreamingResult::health, whose monitor is long gone):
/// {"schema":1,"thresholds":{...},"windows":[...],"alerts_total":N}.
[[nodiscard]] std::string health_report_json(
    const HealthThresholds& thresholds, std::span<const WindowHealth> windows);

/// Atomically persists health_report_json() (+ trailing newline).
void write_health_report(const std::string& path,
                         const HealthThresholds& thresholds,
                         std::span<const WindowHealth> windows);

}  // namespace darkvec::obs
