// Umbrella header for the observability layer: structured logging
// (log.hpp), the metrics registry (metrics.hpp) and span tracing
// (span.hpp). See DESIGN.md §11 for the architecture.
#pragma once

#include "darkvec/obs/log.hpp"
#include "darkvec/obs/metric_names.hpp"
#include "darkvec/obs/metrics.hpp"
#include "darkvec/obs/span.hpp"
// obs/health.hpp (model-quality drift monitoring) is deliberately NOT
// part of this umbrella: it sits ABOVE the ml/w2v layers, while this
// header is included by every leaf library. Include it directly.
