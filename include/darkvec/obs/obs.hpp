// Umbrella header for the observability layer: structured logging
// (log.hpp), the metrics registry (metrics.hpp) and span tracing
// (span.hpp). See DESIGN.md §11 for the architecture.
#pragma once

#include "darkvec/obs/log.hpp"
#include "darkvec/obs/metrics.hpp"
#include "darkvec/obs/span.hpp"
