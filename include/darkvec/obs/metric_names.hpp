// Central registry of every metric name the library exports.
//
// Exposition names are an API: dashboards, alerts and the bench-artifact
// schema all key on them, so a silently renamed counter is a breaking
// change nobody reviews. Every obs::counter/gauge/histogram/series call
// site must reference one of these constants — the project lint (rule
// metric-name-literal) rejects ad-hoc string literals at metric call
// sites anywhere outside this header.
//
// Naming convention: `<subsystem>.<noun>` with dots, lower_snake nouns;
// the Prometheus exposition maps non-alphanumerics to underscores and
// prefixes `darkvec_` (metrics.cpp). Keep the constants sorted by
// subsystem so a reviewer can diff the exported surface at a glance.
#pragma once

#include <string_view>

namespace darkvec::obs::names {

// ann — the IVF approximate k-NN index (ml/ann).
inline constexpr std::string_view kAnnCandidatesScanned =
    "ann.candidates_scanned";
inline constexpr std::string_view kAnnListsProbed = "ann.lists_probed";
inline constexpr std::string_view kAnnQueries = "ann.queries";

// health — model-quality signals per streaming window (obs/health).
inline constexpr std::string_view kHealthAlerts = "health.alerts";
inline constexpr std::string_view kHealthAlignmentResidual =
    "health.alignment_residual";
inline constexpr std::string_view kHealthClusters = "health.clusters";
inline constexpr std::string_view kHealthDegradedWindows =
    "health.degraded_windows";
inline constexpr std::string_view kHealthMaxCentroidDrift =
    "health.max_centroid_drift";
inline constexpr std::string_view kHealthMaxMembershipChurn =
    "health.max_membership_churn";
inline constexpr std::string_view kHealthModularity = "health.modularity";
inline constexpr std::string_view kHealthNeighborOverlap =
    "health.neighbor_overlap";
inline constexpr std::string_view kHealthObserveSeconds =
    "health.observe_seconds";
inline constexpr std::string_view kHealthSilhouette = "health.silhouette";
inline constexpr std::string_view kHealthVocabChurn = "health.vocab_churn";
inline constexpr std::string_view kHealthWindows = "health.windows";

// io — readers and on-disk formats.
inline constexpr std::string_view kIoAnnRows = "io.ann_rows";
inline constexpr std::string_view kIoEmbeddingRows = "io.embedding_rows";
inline constexpr std::string_view kIoQuantizedRows = "io.quantized_rows";
inline constexpr std::string_view kIoRecordsRead = "io.records_read";
inline constexpr std::string_view kIoRecordsSkipped = "io.records_skipped";

// knn — exact cosine top-k engines (ml/knn, ml/batch_topk).
inline constexpr std::string_view kKnnGraphEdges = "knn.graph_edges";
inline constexpr std::string_view kKnnQueries = "knn.queries";
inline constexpr std::string_view kKnnQueriesI8 = "knn.queries_i8";

// louvain — community detection (graph/louvain).
inline constexpr std::string_view kLouvainLevels = "louvain.levels";
inline constexpr std::string_view kLouvainModularity = "louvain.modularity";
inline constexpr std::string_view kLouvainMoves = "louvain.moves";
inline constexpr std::string_view kLouvainPasses = "louvain.passes";

// runtime — execution control (core/runtime).
inline constexpr std::string_view kRuntimeAnnFallback = "runtime.ann_fallback";
inline constexpr std::string_view kRuntimeBudgetExceeded =
    "runtime.budget_exceeded";
inline constexpr std::string_view kRuntimeCancelled = "runtime.cancelled";
inline constexpr std::string_view kRuntimeCheckpointsWritten =
    "runtime.checkpoints_written";
inline constexpr std::string_view kRuntimeDeadlineExceeded =
    "runtime.deadline_exceeded";
inline constexpr std::string_view kRuntimeDegraded = "runtime.degraded";
inline constexpr std::string_view kRuntimeResumes = "runtime.resumes";
inline constexpr std::string_view kRuntimeRetries = "runtime.retries";

// sim — the darknet traffic simulator.
inline constexpr std::string_view kSimPackets = "sim.packets";

// simd — the runtime-dispatched kernel layer (core/simd).
inline constexpr std::string_view kSimdDispatchLevel = "simd.dispatch_level";

// streaming — the sliding-window pipeline (core/streaming).
inline constexpr std::string_view kStreamingAlignmentSimilarity =
    "streaming.alignment_similarity";
inline constexpr std::string_view kStreamingDegradedWindows =
    "streaming.degraded_windows";
inline constexpr std::string_view kStreamingSnapshots = "streaming.snapshots";
inline constexpr std::string_view kStreamingWindowSeconds =
    "streaming.window_seconds";

// w2v — embedding training and persistence.
inline constexpr std::string_view kW2vGlovePairs = "w2v.glove.pairs";
inline constexpr std::string_view kW2vPairs = "w2v.pairs";
inline constexpr std::string_view kW2vTokens = "w2v.tokens";

}  // namespace darkvec::obs::names
