// Metrics registry: named counters, gauges and fixed-bucket histograms.
//
// Hot-path contract: an increment is one relaxed fetch_add on a
// cache-line-padded shard picked by a per-thread stripe id, so
// concurrent writers (the thread pool, Hogwild trainers) never contend
// on a shared line. Relaxed ordering is sufficient because atomic RMW
// operations are exact regardless of ordering — the merge on scrape sums
// the shards and always sees the true total once writers are quiescent;
// ordering would only matter for cross-metric consistency, which a
// monitoring scrape does not need (see DESIGN.md §11).
//
// Metrics are always on (no enable flag): the per-event cost is a
// handful of nanoseconds and the library batches increments per chunk,
// not per element, on hot paths. Handles returned by the registry are
// stable for the process lifetime — cache them in a function-local
// static:
//
//   static obs::Counter& c = obs::counter("io.records_read");
//   c.add(n);
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "darkvec/core/annotations.hpp"

namespace darkvec::obs {

namespace detail {
/// Dense per-thread stripe id (assigned on first use, never reused).
[[nodiscard]] std::uint32_t thread_stripe();
}  // namespace detail

/// Monotonic counter, sharded to keep concurrent add() uncontended.
class Counter {
 public:
  static constexpr std::size_t kShards = 16;

  void add(std::uint64_t delta = 1) noexcept {
    shards_[detail::thread_stripe() % kShards].v.fetch_add(
        delta, std::memory_order_relaxed);
  }
  /// Sum over shards; exact once concurrent writers are quiescent.
  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.v.load(std::memory_order_relaxed);
    }
    return total;
  }
  void reset() noexcept {
    for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Shard, kShards> shards_{};
};

/// Last-write-wins scalar (thread-safe set/add/value).
class Gauge {
 public:
  void set(double value) noexcept {
    v_.store(value, std::memory_order_relaxed);
  }
  void add(double delta) noexcept {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + delta,
                                     std::memory_order_relaxed,
                                     std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { set(0); }

 private:
  std::atomic<double> v_{0};
};

/// Fixed-boundary histogram with Prometheus "le" semantics: a sample x
/// lands in the first bucket whose upper bound satisfies x <= bound; the
/// last bucket is the implicit +inf overflow. Boundaries are fixed at
/// registration and must be strictly increasing.
class Histogram {
 public:
  explicit Histogram(std::span<const double> bounds);

  void observe(double value) noexcept;

  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) counts; size() == bounds().size() + 1.
  [[nodiscard]] std::vector<std::uint64_t> counts() const;
  [[nodiscard]] std::uint64_t count() const;
  [[nodiscard]] double sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  void reset() noexcept;

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> counts_;
  std::atomic<double> sum_{0};
};

/// Fixed-capacity ring-buffer time series: the newest `capacity` samples
/// of a windowed signal (one record() per streaming window, not per
/// event). Unlike a Gauge it keeps history, so drift detectors and the
/// health report can look at trends without an external TSDB; unlike a
/// Histogram it preserves order. Appends take a mutex — the intended
/// rate is per-window, never per-element.
class Series {
 public:
  explicit Series(std::size_t capacity);

  void record(double value) noexcept;
  /// Samples oldest -> newest (at most `capacity()` of them).
  [[nodiscard]] std::vector<double> values() const;
  /// Total samples ever recorded (>= values().size()).
  [[nodiscard]] std::uint64_t count() const;
  /// Most recent sample (0 when empty).
  [[nodiscard]] double last() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  void reset() noexcept;

 private:
  const std::size_t capacity_;
  mutable core::Mutex mu_;
  std::vector<double> ring_ DV_GUARDED_BY(mu_);
  std::uint64_t total_ DV_GUARDED_BY(mu_) = 0;
};

/// Point-in-time copy of every registered metric.
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    std::uint64_t value;
  };
  struct GaugeValue {
    std::string name;
    double value;
  };
  struct HistogramValue {
    std::string name;
    std::vector<double> bounds;
    std::vector<std::uint64_t> counts;  ///< non-cumulative, +inf last
    std::uint64_t count;
    double sum;
  };
  struct SeriesValue {
    std::string name;
    std::size_t capacity;
    std::uint64_t count;
    std::vector<double> values;  ///< oldest -> newest
  };
  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;
  std::vector<SeriesValue> series;

  /// {"counters":{...},"gauges":{...},"histograms":{...},"series":{...}}
  [[nodiscard]] std::string to_json() const;
  /// Prometheus text exposition (names prefixed darkvec_, dots and
  /// dashes mapped to underscores, histograms as cumulative _bucket).
  /// A series exports its latest sample as a gauge — Prometheus already
  /// keeps history server-side; the ring buffer is for in-process
  /// consumers (the anomaly detector, health_report.json).
  [[nodiscard]] std::string to_prometheus() const;
};

/// Name -> metric map. Registration takes a mutex; returned references
/// stay valid for the process lifetime. Re-registering a name returns
/// the existing metric (histogram bounds of later calls are ignored).
class Registry {
 public:
  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  [[nodiscard]] Histogram& histogram(std::string_view name,
                                     std::span<const double> bounds);
  /// Ring-buffer series; like histogram(), the capacity of the FIRST
  /// registration wins and later calls return the existing series.
  [[nodiscard]] Series& series(std::string_view name, std::size_t capacity);

  [[nodiscard]] MetricsSnapshot snapshot() const;
  /// Zeroes every value but keeps all registrations, so cached handles
  /// stay valid (tests run scenarios back to back).
  void reset_values();

 private:
  mutable core::Mutex mu_;
  // Deques-of-unique_ptr semantics via vector<unique_ptr>: the pointees
  // never move, so handles survive rehash/growth.
  std::vector<std::pair<std::string, std::unique_ptr<Counter>>> counters_
      DV_GUARDED_BY(mu_);
  std::vector<std::pair<std::string, std::unique_ptr<Gauge>>> gauges_
      DV_GUARDED_BY(mu_);
  std::vector<std::pair<std::string, std::unique_ptr<Histogram>>> histograms_
      DV_GUARDED_BY(mu_);
  std::vector<std::pair<std::string, std::unique_ptr<Series>>> series_
      DV_GUARDED_BY(mu_);
};

/// Process-wide registry (leaky singleton; usable from atexit handlers).
[[nodiscard]] Registry& registry();

/// Shorthands for the global registry.
[[nodiscard]] inline Counter& counter(std::string_view name) {
  return registry().counter(name);
}
[[nodiscard]] inline Gauge& gauge(std::string_view name) {
  return registry().gauge(name);
}
[[nodiscard]] inline Histogram& histogram(std::string_view name,
                                          std::span<const double> bounds) {
  return registry().histogram(name, bounds);
}
[[nodiscard]] inline Histogram& histogram(std::string_view name,
                                          std::initializer_list<double> b) {
  return registry().histogram(name,
                              std::span<const double>(b.begin(), b.size()));
}
/// Default ring capacity: generous for per-window signals (a 30-day
/// trace at 2-day steps is 15 samples; 256 covers months of replay).
inline constexpr std::size_t kDefaultSeriesCapacity = 256;
[[nodiscard]] inline Series& series(
    std::string_view name, std::size_t capacity = kDefaultSeriesCapacity) {
  return registry().series(name, capacity);
}

}  // namespace darkvec::obs
