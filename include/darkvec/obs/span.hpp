// Span tracing: RAII timers recording into per-thread buffers,
// exportable as Chrome trace-event JSON (chrome://tracing, Perfetto).
//
// A Span brackets a region of work. When tracing is enabled it stamps
// steady-clock begin/end and appends one complete ("ph":"X") event to
// the calling thread's buffer; buffers are merged at export, one track
// per thread, so spans opened inside thread-pool workers or the Hogwild
// trainer threads appear on their own rows and nest naturally under
// whatever was open on that thread.
//
// Disabled cost: tracing is off by default, and a disabled Span is one
// relaxed atomic load and a branch — no clock read, no allocation. The
// DV_SPAN macros additionally compile to nothing under
// DARKVEC_OBS_STRIP_SPANS (cmake -DDARKVEC_OBS=OFF), for builds that
// must prove zero overhead. Span names must be string literals (or
// otherwise outlive the tracer): buffers store the pointer only.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace darkvec::obs {

namespace detail {
// Constant-initialized so the hot-path check never runs a static guard.
extern std::atomic<bool> g_tracing_enabled;
}  // namespace detail

/// One recorded span. Times are nanoseconds on the steady clock,
/// relative to the tracer's epoch (first use in the process).
struct TraceEvent {
  const char* name = nullptr;
  const char* arg_name = nullptr;  ///< optional integer argument
  std::int64_t arg = 0;
  std::int64_t start_ns = 0;
  std::int64_t dur_ns = 0;
  std::uint32_t thread_id = 0;
};

/// Global span collector.
class Tracer {
 public:
  [[nodiscard]] static Tracer& instance();

  static bool enabled() {
    return detail::g_tracing_enabled.load(std::memory_order_relaxed);
  }
  void set_enabled(bool on);

  /// Total recorded spans across all thread buffers.
  [[nodiscard]] std::size_t event_count() const;
  /// Merged copy of every thread's buffer (stable order: by thread,
  /// then record order). Safe while other threads keep recording.
  [[nodiscard]] std::vector<TraceEvent> events() const;
  /// Drops every recorded span; thread buffers stay registered.
  void clear();

  /// Chrome trace-event JSON: {"traceEvents":[...]}, ts/dur in
  /// microseconds, one tid per recording thread. Loads in Perfetto.
  void write_chrome_trace(std::ostream& out) const;
  /// Atomic file variant (write-to-tmp-then-rename).
  void write_chrome_trace_file(const std::string& path) const;

  /// Internal: appends one finished span to the caller's buffer.
  void record(const TraceEvent& event);
  /// Internal: nanoseconds since the tracer epoch.
  [[nodiscard]] static std::int64_t now_ns();

 private:
  Tracer() = default;
  struct Impl;
  [[nodiscard]] Impl& impl() const;
};

/// RAII span. Construct to open, destroy to close-and-record. When
/// tracing is disabled at construction the destructor does nothing,
/// even if tracing gets enabled mid-span.
class Span {
 public:
  explicit Span(const char* name) {
    if (Tracer::enabled()) open(name, nullptr, 0);
  }
  /// With one integer argument shown in the trace viewer ("args").
  Span(const char* name, const char* arg_name, std::int64_t arg) {
    if (Tracer::enabled()) open(name, arg_name, arg);
  }
  ~Span() {
    if (name_ != nullptr) close();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  void open(const char* name, const char* arg_name, std::int64_t arg);
  void close();

  const char* name_ = nullptr;
  const char* arg_name_ = nullptr;
  std::int64_t arg_ = 0;
  std::int64_t start_ns_ = 0;
};

}  // namespace darkvec::obs

#define DV_OBS_CONCAT_INNER(a, b) a##b
#define DV_OBS_CONCAT(a, b) DV_OBS_CONCAT_INNER(a, b)

#if defined(DARKVEC_OBS_STRIP_SPANS)
#define DV_SPAN(name) ((void)0)
#define DV_SPAN_ARG(name, arg_name, arg) ((void)0)
#else
/// Scoped span: DV_SPAN("graph.louvain");
#define DV_SPAN(name)                                     \
  [[maybe_unused]] const ::darkvec::obs::Span DV_OBS_CONCAT( \
      dv_span_, __LINE__)(name)
/// Scoped span with one integer argument:
/// DV_SPAN_ARG("w2v.epoch", "epoch", epoch);
#define DV_SPAN_ARG(name, arg_name, arg)                  \
  [[maybe_unused]] const ::darkvec::obs::Span DV_OBS_CONCAT( \
      dv_span_, __LINE__)(name, arg_name,                 \
                          static_cast<std::int64_t>(arg))
#endif
