// Structured logging: leveled records with typed key/value fields,
// routed through a thread-safe global logger to pluggable sinks.
//
// Design constraints, in order:
//   * off-by-default: the default level is kWarn, so a library user who
//     never touches obs sees only warnings/errors on stderr;
//   * cheap when disabled: every DV_LOG_* macro checks the level with a
//     single relaxed atomic load before evaluating its arguments, and the
//     whole macro body can be compiled out (DARKVEC_OBS_STRIP_LOGS or a
//     DARKVEC_OBS_MIN_LOG_LEVEL above the call's level);
//   * structured: a record is (level, component, message, fields), never
//     a preformatted string, so the JSON-lines sink emits machine-
//     readable output and the text sink stays human-readable;
//   * thread-safe: sink dispatch is serialized by a core::Mutex from
//     core/annotations.hpp, so sinks themselves need no locking.
//
// src/ and include/ must route diagnostics through this logger — the
// project lint (rule raw-iostream) rejects std::cerr/std::cout there.
#pragma once

#include <atomic>
#include <chrono>
#include <concepts>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <optional>
#include <ostream>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "darkvec/core/annotations.hpp"

namespace darkvec::obs {

enum class Level : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

[[nodiscard]] std::string_view to_string(Level level);
/// Parses "trace"/"debug"/"info"/"warn"/"error"/"off" (case-sensitive).
[[nodiscard]] std::optional<Level> parse_level(std::string_view name);

/// One typed key/value attachment of a log record.
struct Field {
  enum class Kind : std::uint8_t { kString, kInt, kUint, kDouble, kBool };

  Field(std::string_view k, std::string_view v)
      : key(k), kind(Kind::kString), str(v) {}
  Field(std::string_view k, const char* v)
      : key(k), kind(Kind::kString), str(v) {}
  Field(std::string_view k, const std::string& v)
      : key(k), kind(Kind::kString), str(v) {}
  template <std::signed_integral T>
    requires(!std::same_as<T, bool>)
  Field(std::string_view k, T v)
      : key(k), kind(Kind::kInt), i(static_cast<std::int64_t>(v)) {}
  template <std::unsigned_integral T>
    requires(!std::same_as<T, bool>)
  Field(std::string_view k, T v)
      : key(k), kind(Kind::kUint), u(static_cast<std::uint64_t>(v)) {}
  Field(std::string_view k, double v)
      : key(k), kind(Kind::kDouble), d(v) {}
  Field(std::string_view k, bool v) : key(k), kind(Kind::kBool), b(v) {}

  std::string key;
  Kind kind;
  std::string str;
  std::int64_t i = 0;
  std::uint64_t u = 0;
  double d = 0;
  bool b = false;

  /// Value rendered as text ("42", "1.5", "true", or the string itself).
  [[nodiscard]] std::string value_text() const;
  /// Value rendered as a JSON token (strings quoted and escaped).
  [[nodiscard]] std::string value_json() const;
};

/// One log event, handed to every sink. The string views and the field
/// span are valid only for the duration of the write() call.
struct LogRecord {
  Level level = Level::kInfo;
  std::string_view component;
  std::string_view message;
  std::span<const Field> fields;
  std::chrono::system_clock::time_point wall_time;
  /// Small dense id of the emitting thread (stable per thread).
  std::uint32_t thread_id = 0;
};

/// Sink interface. write() calls are serialized by the owning Logger, so
/// implementations need no internal locking.
class LogSink {
 public:
  virtual ~LogSink() = default;
  virtual void write(const LogRecord& record) = 0;
};

/// Human-readable single-line text to stderr:
///   2021-03-01T00:00:00.000Z WARN  streaming degraded window start=0 ...
class StderrTextSink final : public LogSink {
 public:
  void write(const LogRecord& record) override;
};

/// One JSON object per record, one record per line:
///   {"ts":"...","level":"warn","component":"streaming","msg":"...",
///    "tid":0,"fields":{"window_start":0,...}}
/// Owns the stream when constructed from a path; flushes every line so
/// crashed runs keep their tail.
class JsonLinesSink final : public LogSink {
 public:
  /// Appends to `path`; throws std::runtime_error when unwritable.
  explicit JsonLinesSink(const std::string& path);
  /// Writes to a caller-owned stream (tests, stderr wrapping).
  explicit JsonLinesSink(std::ostream& out);
  void write(const LogRecord& record) override;

 private:
  std::unique_ptr<std::ostream> owned_;
  std::ostream* out_;
};

/// Keeps every record in memory (deep copies); for tests and probes.
class MemorySink final : public LogSink {
 public:
  struct Entry {
    Level level;
    std::string component;
    std::string message;
    std::vector<Field> fields;

    /// First field with this key, if any.
    [[nodiscard]] const Field* field(std::string_view key) const;
  };
  void write(const LogRecord& record) override;
  /// Snapshot of everything captured so far (copy; safe to inspect while
  /// other threads keep logging).
  [[nodiscard]] std::vector<Entry> entries() const;

 private:
  mutable core::Mutex mu_;
  std::vector<Entry> entries_ DV_GUARDED_BY(mu_);
};

/// Leveled fan-out to a set of sinks. With no sink configured, records
/// fall back to a built-in StderrTextSink so warnings are never lost.
class Logger {
 public:
  Logger();

  /// Hot-path gate: one relaxed atomic load.
  [[nodiscard]] bool enabled(Level level) const {
    return static_cast<int>(level) >= level_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] Level level() const {
    return static_cast<Level>(level_.load(std::memory_order_relaxed));
  }
  void set_level(Level level) {
    level_.store(static_cast<int>(level), std::memory_order_relaxed);
  }

  /// Adds a sink; the logger takes ownership. Replaces the implicit
  /// stderr fallback (add a StderrTextSink explicitly to keep both).
  void add_sink(std::unique_ptr<LogSink> sink);
  /// Drops every sink and restores the stderr fallback (tests).
  void clear_sinks();

  void log(Level level, std::string_view component, std::string_view message,
           std::initializer_list<Field> fields = {});

 private:
  std::atomic<int> level_;
  mutable core::Mutex mu_;
  std::vector<std::unique_ptr<LogSink>> sinks_ DV_GUARDED_BY(mu_);
  StderrTextSink fallback_ DV_GUARDED_BY(mu_);
};

/// Process-wide logger. Never destroyed (leaky singleton), so atexit
/// handlers and static destructors may still log.
[[nodiscard]] Logger& logger();

namespace detail {
/// Escapes `text` into a JSON string body (no surrounding quotes).
[[nodiscard]] std::string json_escape(std::string_view text);
/// Small dense id of the calling thread, shared with span tracing.
[[nodiscard]] std::uint32_t thread_id();
}  // namespace detail

}  // namespace darkvec::obs

// ---------------------------------------------------------------------------
// Logging macros. Arguments after the message are obs::Field initializers:
//
//   DV_LOG_WARN("streaming", "degraded window",
//               {"window_start", start}, {"reason", reason});
//
// The level gate runs before any argument is evaluated. Compile-time
// stripping: define DARKVEC_OBS_STRIP_LOGS to drop every call, or set
// DARKVEC_OBS_MIN_LOG_LEVEL (0=trace .. 4=error) to drop calls below it.
#ifndef DARKVEC_OBS_MIN_LOG_LEVEL
#define DARKVEC_OBS_MIN_LOG_LEVEL 0
#endif

#define DV_LOG_AT_LEVEL(level_, component_, message_, ...)               \
  do {                                                                   \
    if (::darkvec::obs::logger().enabled(level_)) {                     \
      ::darkvec::obs::logger().log(level_, component_, message_,        \
                                   {__VA_ARGS__});                      \
    }                                                                    \
  } while (false)

#if defined(DARKVEC_OBS_STRIP_LOGS)
#define DV_LOG_TRACE(...) ((void)0)
#define DV_LOG_DEBUG(...) ((void)0)
#define DV_LOG_INFO(...) ((void)0)
#define DV_LOG_WARN(...) ((void)0)
#define DV_LOG_ERROR(...) ((void)0)
#else
#if DARKVEC_OBS_MIN_LOG_LEVEL <= 0
#define DV_LOG_TRACE(...) \
  DV_LOG_AT_LEVEL(::darkvec::obs::Level::kTrace, __VA_ARGS__)
#else
#define DV_LOG_TRACE(...) ((void)0)
#endif
#if DARKVEC_OBS_MIN_LOG_LEVEL <= 1
#define DV_LOG_DEBUG(...) \
  DV_LOG_AT_LEVEL(::darkvec::obs::Level::kDebug, __VA_ARGS__)
#else
#define DV_LOG_DEBUG(...) ((void)0)
#endif
#if DARKVEC_OBS_MIN_LOG_LEVEL <= 2
#define DV_LOG_INFO(...) \
  DV_LOG_AT_LEVEL(::darkvec::obs::Level::kInfo, __VA_ARGS__)
#else
#define DV_LOG_INFO(...) ((void)0)
#endif
#if DARKVEC_OBS_MIN_LOG_LEVEL <= 3
#define DV_LOG_WARN(...) \
  DV_LOG_AT_LEVEL(::darkvec::obs::Level::kWarn, __VA_ARGS__)
#else
#define DV_LOG_WARN(...) ((void)0)
#endif
#if DARKVEC_OBS_MIN_LOG_LEVEL <= 4
#define DV_LOG_ERROR(...) \
  DV_LOG_AT_LEVEL(::darkvec::obs::Level::kError, __VA_ARGS__)
#else
#define DV_LOG_ERROR(...) ((void)0)
#endif
#endif  // DARKVEC_OBS_STRIP_LOGS
