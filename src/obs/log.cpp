#include "darkvec/obs/log.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <stdexcept>
#include <utility>

namespace darkvec::obs {
namespace {

/// RFC3339 UTC with milliseconds ("2021-03-01T00:00:00.000Z").
std::string format_wall_time(std::chrono::system_clock::time_point tp) {
  const auto since_epoch = tp.time_since_epoch();
  const auto secs =
      std::chrono::duration_cast<std::chrono::seconds>(since_epoch);
  const auto millis =
      std::chrono::duration_cast<std::chrono::milliseconds>(since_epoch) -
      std::chrono::duration_cast<std::chrono::milliseconds>(secs);
  const std::time_t t = static_cast<std::time_t>(secs.count());
  std::tm tm{};
  gmtime_r(&t, &tm);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec, static_cast<int>(millis.count()));
  return buf;
}

}  // namespace

std::string_view to_string(Level level) {
  switch (level) {
    case Level::kTrace:
      return "trace";
    case Level::kDebug:
      return "debug";
    case Level::kInfo:
      return "info";
    case Level::kWarn:
      return "warn";
    case Level::kError:
      return "error";
    case Level::kOff:
      return "off";
  }
  return "unknown";
}

std::optional<Level> parse_level(std::string_view name) {
  for (const Level l : {Level::kTrace, Level::kDebug, Level::kInfo,
                        Level::kWarn, Level::kError, Level::kOff}) {
    if (name == to_string(l)) return l;
  }
  return std::nullopt;
}

std::string Field::value_text() const {
  switch (kind) {
    case Kind::kString:
      return str;
    case Kind::kInt:
      return std::to_string(i);
    case Kind::kUint:
      return std::to_string(u);
    case Kind::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.6g", d);
      return buf;
    }
    case Kind::kBool:
      return b ? "true" : "false";
  }
  return {};
}

std::string Field::value_json() const {
  // GCC 12 -Wrestrict false-positives on `const char* + std::string`;
  // build through += instead (same workaround as the CLI arg parser).
  if (kind == Kind::kString) {
    std::string out = "\"";
    out += detail::json_escape(str);
    out += '"';
    return out;
  }
  if (kind == Kind::kDouble) {
    // JSON has no inf/nan tokens; degrade to a quoted string.
    if (d != d || d > 1.7e308 || d < -1.7e308) {
      std::string out = "\"";
      out += value_text();
      out += '"';
      return out;
    }
  }
  return value_text();
}

void StderrTextSink::write(const LogRecord& record) {
  std::string line = format_wall_time(record.wall_time);
  line += ' ';
  std::string level(to_string(record.level));
  for (char& c : level) c = static_cast<char>(std::toupper(c));
  line += level;
  line.append(6 - std::min<std::size_t>(5, level.size()), ' ');
  line += record.component;
  line += ' ';
  line += record.message;
  for (const Field& f : record.fields) {
    line += ' ';
    line += f.key;
    line += '=';
    line += f.value_text();
  }
  line += '\n';
  std::fputs(line.c_str(), stderr);
}

JsonLinesSink::JsonLinesSink(const std::string& path) {
  auto file = std::make_unique<std::ofstream>(path, std::ios::app);
  if (!*file) {
    throw std::runtime_error("JsonLinesSink: cannot open " + path);
  }
  owned_ = std::move(file);
  out_ = owned_.get();
}

JsonLinesSink::JsonLinesSink(std::ostream& out) : out_(&out) {}

void JsonLinesSink::write(const LogRecord& record) {
  std::string line = "{\"ts\":\"";
  line += format_wall_time(record.wall_time);
  line += "\",\"level\":\"";
  line += to_string(record.level);
  line += "\",\"component\":\"";
  line += detail::json_escape(record.component);
  line += "\",\"msg\":\"";
  line += detail::json_escape(record.message);
  line += "\",\"tid\":";
  line += std::to_string(record.thread_id);
  if (!record.fields.empty()) {
    line += ",\"fields\":{";
    bool first = true;
    for (const Field& f : record.fields) {
      if (!first) line += ',';
      first = false;
      line += '"';
      line += detail::json_escape(f.key);
      line += "\":";
      line += f.value_json();
    }
    line += '}';
  }
  line += "}\n";
  *out_ << line << std::flush;
}

const Field* MemorySink::Entry::field(std::string_view key) const {
  for (const Field& f : fields) {
    if (f.key == key) return &f;
  }
  return nullptr;
}

void MemorySink::write(const LogRecord& record) {
  Entry entry;
  entry.level = record.level;
  entry.component = std::string(record.component);
  entry.message = std::string(record.message);
  entry.fields.assign(record.fields.begin(), record.fields.end());
  core::MutexLock lock(mu_);
  entries_.push_back(std::move(entry));
}

std::vector<MemorySink::Entry> MemorySink::entries() const {
  core::MutexLock lock(mu_);
  return entries_;
}

Logger::Logger() : level_(static_cast<int>(Level::kWarn)) {}

void Logger::add_sink(std::unique_ptr<LogSink> sink) {
  core::MutexLock lock(mu_);
  sinks_.push_back(std::move(sink));
}

void Logger::clear_sinks() {
  core::MutexLock lock(mu_);
  sinks_.clear();
}

void Logger::log(Level level, std::string_view component,
                 std::string_view message,
                 std::initializer_list<Field> fields) {
  if (!enabled(level)) return;
  LogRecord record;
  record.level = level;
  record.component = component;
  record.message = message;
  record.fields = std::span<const Field>(fields.begin(), fields.size());
  record.wall_time = std::chrono::system_clock::now();
  record.thread_id = detail::thread_id();
  core::MutexLock lock(mu_);
  if (sinks_.empty()) {
    fallback_.write(record);
    return;
  }
  for (const auto& sink : sinks_) sink->write(record);
}

Logger& logger() {
  // Leaked: destructors and atexit handlers may still log.
  static Logger* instance = new Logger();
  return *instance;
}

namespace detail {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::uint32_t thread_id() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace detail

}  // namespace darkvec::obs
