#include "darkvec/obs/metrics.hpp"

#include <algorithm>
#include <cstdio>

#include "darkvec/obs/log.hpp"

namespace darkvec::obs {
namespace {

/// Prometheus metric name: darkvec_ prefix, [a-zA-Z0-9_] body.
std::string prom_name(std::string_view name) {
  std::string out = "darkvec_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9');
    out += ok ? c : '_';
  }
  return out;
}

std::string format_double(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

template <typename Vec>
auto* find_metric(Vec& metrics, std::string_view name) {
  for (auto& [key, ptr] : metrics) {
    if (key == name) return ptr.get();
  }
  return static_cast<decltype(metrics.front().second.get())>(nullptr);
}

}  // namespace

namespace detail {
std::uint32_t thread_stripe() { return thread_id(); }
}  // namespace detail

Histogram::Histogram(std::span<const double> bounds)
    : bounds_(bounds.begin(), bounds.end()),
      counts_(bounds.size() + 1) {}

void Histogram::observe(double value) noexcept {
  // First bound >= value ("le" semantics); end() = overflow bucket.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  counts_[idx].fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + value,
                                     std::memory_order_relaxed,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<std::uint64_t> Histogram::counts() const {
  std::vector<std::uint64_t> out(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    out[i] = counts_[i].load(std::memory_order_relaxed);
  }
  return out;
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (const auto& c : counts_) total += c.load(std::memory_order_relaxed);
  return total;
}

void Histogram::reset() noexcept {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

Counter& Registry::counter(std::string_view name) {
  core::MutexLock lock(mu_);
  if (Counter* existing = find_metric(counters_, name)) return *existing;
  counters_.emplace_back(std::string(name), std::make_unique<Counter>());
  return *counters_.back().second;
}

Gauge& Registry::gauge(std::string_view name) {
  core::MutexLock lock(mu_);
  if (Gauge* existing = find_metric(gauges_, name)) return *existing;
  gauges_.emplace_back(std::string(name), std::make_unique<Gauge>());
  return *gauges_.back().second;
}

Histogram& Registry::histogram(std::string_view name,
                               std::span<const double> bounds) {
  core::MutexLock lock(mu_);
  if (Histogram* existing = find_metric(histograms_, name)) return *existing;
  histograms_.emplace_back(std::string(name),
                           std::make_unique<Histogram>(bounds));
  return *histograms_.back().second;
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot snap;
  core::MutexLock lock(mu_);
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.push_back({name, c->value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.push_back({name, g->value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    snap.histograms.push_back(
        {name, h->bounds(), h->counts(), h->count(), h->sum()});
  }
  return snap;
}

void Registry::reset_values() {
  core::MutexLock lock(mu_);
  for (const auto& [name, c] : counters_) c->reset();
  for (const auto& [name, g] : gauges_) g->reset();
  for (const auto& [name, h] : histograms_) h->reset();
}

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& c : counters) {
    if (!first) out += ',';
    first = false;
    out += '"' + detail::json_escape(c.name) + "\":" + std::to_string(c.value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& g : gauges) {
    if (!first) out += ',';
    first = false;
    out += '"' + detail::json_escape(g.name) + "\":" + format_double(g.value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& h : histograms) {
    if (!first) out += ',';
    first = false;
    out += '"' + detail::json_escape(h.name) + "\":{\"bounds\":[";
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      if (i > 0) out += ',';
      out += format_double(h.bounds[i]);
    }
    out += "],\"counts\":[";
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      if (i > 0) out += ',';
      out += std::to_string(h.counts[i]);
    }
    out += "],\"count\":" + std::to_string(h.count);
    out += ",\"sum\":" + format_double(h.sum) + '}';
  }
  out += "}}";
  return out;
}

std::string MetricsSnapshot::to_prometheus() const {
  std::string out;
  for (const auto& c : counters) {
    const std::string name = prom_name(c.name);
    out += "# TYPE " + name + " counter\n";
    out += name + ' ' + std::to_string(c.value) + '\n';
  }
  for (const auto& g : gauges) {
    const std::string name = prom_name(g.name);
    out += "# TYPE " + name + " gauge\n";
    out += name + ' ' + format_double(g.value) + '\n';
  }
  for (const auto& h : histograms) {
    const std::string name = prom_name(h.name);
    out += "# TYPE " + name + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += h.counts[i];
      out += name + "_bucket{le=\"" + format_double(h.bounds[i]) + "\"} " +
             std::to_string(cumulative) + '\n';
    }
    out += name + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + '\n';
    out += name + "_sum " + format_double(h.sum) + '\n';
    out += name + "_count " + std::to_string(h.count) + '\n';
  }
  return out;
}

Registry& registry() {
  // Leaked: bench atexit handlers scrape after main() returns.
  static Registry* instance = new Registry();
  return *instance;
}

}  // namespace darkvec::obs
