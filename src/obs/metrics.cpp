#include "darkvec/obs/metrics.hpp"

#include <algorithm>
#include <cstdio>

#include "darkvec/obs/log.hpp"

namespace darkvec::obs {
namespace {

/// Prometheus metric name: darkvec_ prefix, [a-zA-Z0-9_] body.
std::string prom_name(std::string_view name) {
  std::string out = "darkvec_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9');
    out += ok ? c : '_';
  }
  return out;
}

std::string format_double(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

template <typename Vec>
auto* find_metric(Vec& metrics, std::string_view name) {
  for (auto& [key, ptr] : metrics) {
    if (key == name) return ptr.get();
  }
  return static_cast<decltype(metrics.front().second.get())>(nullptr);
}

}  // namespace

namespace detail {
std::uint32_t thread_stripe() { return thread_id(); }
}  // namespace detail

Histogram::Histogram(std::span<const double> bounds)
    : bounds_(bounds.begin(), bounds.end()),
      counts_(bounds.size() + 1) {}

void Histogram::observe(double value) noexcept {
  // First bound >= value ("le" semantics); end() = overflow bucket.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  counts_[idx].fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + value,
                                     std::memory_order_relaxed,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<std::uint64_t> Histogram::counts() const {
  std::vector<std::uint64_t> out(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    out[i] = counts_[i].load(std::memory_order_relaxed);
  }
  return out;
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (const auto& c : counts_) total += c.load(std::memory_order_relaxed);
  return total;
}

void Histogram::reset() noexcept {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

Series::Series(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {
  core::MutexLock lock(mu_);
  ring_.reserve(capacity_);
}

void Series::record(double value) noexcept {
  core::MutexLock lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(value);
  } else {
    ring_[total_ % capacity_] = value;
  }
  ++total_;
}

std::vector<double> Series::values() const {
  core::MutexLock lock(mu_);
  if (total_ <= capacity_) return ring_;
  // The ring wrapped: the oldest surviving sample sits at total_ % cap.
  std::vector<double> out;
  out.reserve(capacity_);
  const std::size_t head = total_ % capacity_;
  out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(head),
             ring_.end());
  out.insert(out.end(), ring_.begin(),
             ring_.begin() + static_cast<std::ptrdiff_t>(head));
  return out;
}

std::uint64_t Series::count() const {
  core::MutexLock lock(mu_);
  return total_;
}

double Series::last() const {
  core::MutexLock lock(mu_);
  if (total_ == 0) return 0;
  return ring_[(total_ - 1) % capacity_];
}

void Series::reset() noexcept {
  core::MutexLock lock(mu_);
  ring_.clear();
  total_ = 0;
}

Counter& Registry::counter(std::string_view name) {
  core::MutexLock lock(mu_);
  if (Counter* existing = find_metric(counters_, name)) return *existing;
  counters_.emplace_back(std::string(name), std::make_unique<Counter>());
  return *counters_.back().second;
}

Gauge& Registry::gauge(std::string_view name) {
  core::MutexLock lock(mu_);
  if (Gauge* existing = find_metric(gauges_, name)) return *existing;
  gauges_.emplace_back(std::string(name), std::make_unique<Gauge>());
  return *gauges_.back().second;
}

Histogram& Registry::histogram(std::string_view name,
                               std::span<const double> bounds) {
  core::MutexLock lock(mu_);
  if (Histogram* existing = find_metric(histograms_, name)) return *existing;
  histograms_.emplace_back(std::string(name),
                           std::make_unique<Histogram>(bounds));
  return *histograms_.back().second;
}

Series& Registry::series(std::string_view name, std::size_t capacity) {
  core::MutexLock lock(mu_);
  if (Series* existing = find_metric(series_, name)) return *existing;
  series_.emplace_back(std::string(name), std::make_unique<Series>(capacity));
  return *series_.back().second;
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot snap;
  core::MutexLock lock(mu_);
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.push_back({name, c->value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.push_back({name, g->value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    snap.histograms.push_back(
        {name, h->bounds(), h->counts(), h->count(), h->sum()});
  }
  snap.series.reserve(series_.size());
  for (const auto& [name, s] : series_) {
    snap.series.push_back({name, s->capacity(), s->count(), s->values()});
  }
  return snap;
}

void Registry::reset_values() {
  core::MutexLock lock(mu_);
  for (const auto& [name, c] : counters_) c->reset();
  for (const auto& [name, g] : gauges_) g->reset();
  for (const auto& [name, h] : histograms_) h->reset();
  for (const auto& [name, s] : series_) s->reset();
}

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& c : counters) {
    if (!first) out += ',';
    first = false;
    out += '"' + detail::json_escape(c.name) + "\":" + std::to_string(c.value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& g : gauges) {
    if (!first) out += ',';
    first = false;
    out += '"' + detail::json_escape(g.name) + "\":" + format_double(g.value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& h : histograms) {
    if (!first) out += ',';
    first = false;
    out += '"' + detail::json_escape(h.name) + "\":{\"bounds\":[";
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      if (i > 0) out += ',';
      out += format_double(h.bounds[i]);
    }
    out += "],\"counts\":[";
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      if (i > 0) out += ',';
      out += std::to_string(h.counts[i]);
    }
    out += "],\"count\":" + std::to_string(h.count);
    out += ",\"sum\":" + format_double(h.sum) + '}';
  }
  out += "},\"series\":{";
  first = true;
  for (const auto& s : series) {
    if (!first) out += ',';
    first = false;
    out += '"' + detail::json_escape(s.name) + "\":{\"capacity\":" +
           std::to_string(s.capacity) + ",\"count\":" +
           std::to_string(s.count) + ",\"values\":[";
    for (std::size_t i = 0; i < s.values.size(); ++i) {
      if (i > 0) out += ',';
      out += format_double(s.values[i]);
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

std::string MetricsSnapshot::to_prometheus() const {
  std::string out;
  for (const auto& c : counters) {
    const std::string name = prom_name(c.name);
    out += "# TYPE " + name + " counter\n";
    out += name + ' ' + std::to_string(c.value) + '\n';
  }
  for (const auto& g : gauges) {
    const std::string name = prom_name(g.name);
    out += "# TYPE " + name + " gauge\n";
    out += name + ' ' + format_double(g.value) + '\n';
  }
  for (const auto& h : histograms) {
    const std::string name = prom_name(h.name);
    out += "# TYPE " + name + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += h.counts[i];
      out += name + "_bucket{le=\"" + format_double(h.bounds[i]) + "\"} " +
             std::to_string(cumulative) + '\n';
    }
    out += name + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + '\n';
    out += name + "_sum " + format_double(h.sum) + '\n';
    out += name + "_count " + std::to_string(h.count) + '\n';
  }
  for (const auto& s : series) {
    // Latest sample only: Prometheus keeps its own history.
    const std::string name = prom_name(s.name);
    out += "# TYPE " + name + " gauge\n";
    out += name + ' ' +
           format_double(s.values.empty() ? 0.0 : s.values.back()) + '\n';
  }
  return out;
}

Registry& registry() {
  // Leaked: bench atexit handlers scrape after main() returns.
  static Registry* instance = new Registry();
  return *instance;
}

}  // namespace darkvec::obs
