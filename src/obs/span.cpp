#include "darkvec/obs/span.hpp"

#include <chrono>
#include <cstdio>
#include <memory>
#include <ostream>

#include "darkvec/core/annotations.hpp"
#include "darkvec/core/atomic_io.hpp"
#include "darkvec/obs/log.hpp"

namespace darkvec::obs {

namespace detail {
std::atomic<bool> g_tracing_enabled{false};
}  // namespace detail

namespace {

/// Spans recorded by one thread. The owning thread appends, the exporter
/// reads; both take the buffer's own (uncontended) mutex, so exporting
/// while workers are still tracing is safe. shared_ptr ownership keeps
/// the buffer alive after the thread exits (the Hogwild trainer spawns
/// short-lived threads every epoch).
struct ThreadTraceBuffer {
  core::Mutex mu;
  std::vector<TraceEvent> events DV_GUARDED_BY(mu);
  // dv-suppress(guarded-field): written once before the buffer is published
  std::uint32_t thread_id = 0;
};

}  // namespace

struct Tracer::Impl {
  core::Mutex mu;
  std::vector<std::shared_ptr<ThreadTraceBuffer>> buffers DV_GUARDED_BY(mu);
  const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();

  ThreadTraceBuffer& local_buffer() {
    thread_local std::shared_ptr<ThreadTraceBuffer> buffer;
    if (!buffer) {
      buffer = std::make_shared<ThreadTraceBuffer>();
      buffer->thread_id = obs::detail::thread_id();
      core::MutexLock lock(mu);
      buffers.push_back(buffer);
    }
    return *buffer;
  }
};

Tracer& Tracer::instance() {
  // Leaked: spans may close during static destruction.
  static Tracer* tracer = new Tracer();
  return *tracer;
}

Tracer::Impl& Tracer::impl() const {
  static Impl* impl = new Impl();
  return *impl;
}

void Tracer::set_enabled(bool on) {
  if (on) static_cast<void>(impl());  // pin the epoch before the first span
  detail::g_tracing_enabled.store(on, std::memory_order_relaxed);
}

std::int64_t Tracer::now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - instance().impl().epoch)
      .count();
}

void Tracer::record(const TraceEvent& event) {
  ThreadTraceBuffer& buffer = impl().local_buffer();
  TraceEvent copy = event;
  copy.thread_id = buffer.thread_id;
  core::MutexLock lock(buffer.mu);
  buffer.events.push_back(copy);
}

std::size_t Tracer::event_count() const {
  Impl& state = impl();
  core::MutexLock lock(state.mu);
  std::size_t total = 0;
  for (const auto& buffer : state.buffers) {
    core::MutexLock buffer_lock(buffer->mu);
    total += buffer->events.size();
  }
  return total;
}

std::vector<TraceEvent> Tracer::events() const {
  Impl& state = impl();
  core::MutexLock lock(state.mu);
  std::vector<TraceEvent> out;
  for (const auto& buffer : state.buffers) {
    core::MutexLock buffer_lock(buffer->mu);
    out.insert(out.end(), buffer->events.begin(), buffer->events.end());
  }
  return out;
}

void Tracer::clear() {
  Impl& state = impl();
  core::MutexLock lock(state.mu);
  for (const auto& buffer : state.buffers) {
    core::MutexLock buffer_lock(buffer->mu);
    buffer->events.clear();
  }
}

void Tracer::write_chrome_trace(std::ostream& out) const {
  const std::vector<TraceEvent> all = events();
  out << "{\"traceEvents\":[";
  bool first = true;
  char buf[64];
  for (const TraceEvent& e : all) {
    if (!first) out << ',';
    first = false;
    out << "{\"name\":\"" << detail::json_escape(e.name)
        << "\",\"ph\":\"X\",\"pid\":1,\"tid\":" << e.thread_id;
    // Chrome trace timestamps are microseconds; keep ns precision via
    // fractional values.
    std::snprintf(buf, sizeof(buf), "%.3f",
                  static_cast<double>(e.start_ns) / 1000.0);
    out << ",\"ts\":" << buf;
    std::snprintf(buf, sizeof(buf), "%.3f",
                  static_cast<double>(e.dur_ns) / 1000.0);
    out << ",\"dur\":" << buf;
    if (e.arg_name != nullptr) {
      out << ",\"args\":{\"" << detail::json_escape(e.arg_name)
          << "\":" << e.arg << '}';
    }
    out << '}';
  }
  out << "],\"displayTimeUnit\":\"ms\"}\n";
}

void Tracer::write_chrome_trace_file(const std::string& path) const {
  io::atomic_write_file(path, std::ios::out, [&](std::ostream& out) {
    write_chrome_trace(out);
  });
}

void Span::open(const char* name, const char* arg_name, std::int64_t arg) {
  name_ = name;
  arg_name_ = arg_name;
  arg_ = arg;
  start_ns_ = Tracer::now_ns();
}

void Span::close() {
  TraceEvent event;
  event.name = name_;
  event.arg_name = arg_name_;
  event.arg = arg_;
  event.start_ns = start_ns_;
  event.dur_ns = Tracer::now_ns() - start_ns_;
  Tracer::instance().record(event);
}

}  // namespace darkvec::obs
