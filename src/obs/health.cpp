#include "darkvec/obs/health.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "darkvec/core/atomic_io.hpp"
#include "darkvec/core/contracts.hpp"
#include "darkvec/ml/knn.hpp"
#include "darkvec/ml/silhouette.hpp"
#include "darkvec/obs/log.hpp"
#include "darkvec/obs/metric_names.hpp"
#include "darkvec/obs/metrics.hpp"

namespace darkvec::obs {
namespace {

std::string fmt_double(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Human-facing %.2f-style rendering for alert explainers.
std::string fmt2(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

std::string fmt_pct(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.0f%%", 100.0 * v);
  return buf;
}

/// Unit-normalizes a double vector in place; returns false for a zero
/// vector (left untouched).
bool normalize(std::vector<double>& v) {
  double norm_sq = 0;
  for (const double x : v) norm_sq += x * x;
  if (norm_sq <= 0) return false;
  const double inv = 1.0 / std::sqrt(norm_sq);
  for (double& x : v) x *= inv;
  return true;
}

/// Sorted distinct cluster ids of an assignment.
std::vector<int> distinct_clusters(std::span<const int> assignment) {
  std::vector<int> ids(assignment.begin(), assignment.end());
  std::ranges::sort(ids);
  const auto [first, last] = std::ranges::unique(ids);
  ids.erase(first, last);
  return ids;
}

/// Unit centroid per cluster id (aligned with `ids`), accumulated in
/// row order with double precision — deterministic across thread counts
/// and SIMD levels by construction.
std::vector<std::vector<double>> unit_centroids(
    const w2v::Embedding& unit, std::span<const int> assignment,
    std::span<const int> ids) {
  const auto dim = static_cast<std::size_t>(unit.dim());
  std::unordered_map<int, std::size_t> slot;
  slot.reserve(ids.size());
  for (std::size_t s = 0; s < ids.size(); ++s) slot.emplace(ids[s], s);
  std::vector<std::vector<double>> centroids(
      ids.size(), std::vector<double>(dim, 0.0));
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    auto& c = centroids[slot.at(assignment[i])];
    const auto v = unit.vec(i);
    for (std::size_t d = 0; d < dim; ++d) c[d] += v[d];
  }
  for (auto& c : centroids) normalize(c);
  return centroids;
}

double dot(std::span<const double> a, std::span<const double> b) {
  double acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

}  // namespace

// ---------------------------------------------------------------------------
// HealthThresholds

std::optional<HealthThresholds> HealthThresholds::parse(
    std::string_view spec) {
  return parse(spec, HealthThresholds{});
}

std::optional<HealthThresholds> HealthThresholds::parse(
    std::string_view spec, HealthThresholds base) {
  HealthThresholds out = base;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string_view::npos) comma = spec.size();
    const std::string_view pair = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (pair.empty()) continue;
    const std::size_t eq = pair.find('=');
    if (eq == std::string_view::npos) return std::nullopt;
    const std::string_view key = pair.substr(0, eq);
    const std::string value(pair.substr(eq + 1));
    char* end = nullptr;
    const double v = std::strtod(value.c_str(), &end);
    if (value.empty() || end != value.c_str() + value.size()) {
      return std::nullopt;
    }
    if (key == "vocab-churn") {
      out.max_vocab_churn = v;
    } else if (key == "membership-churn") {
      out.max_membership_churn = v;
    } else if (key == "centroid-drift") {
      out.max_centroid_drift = v;
    } else if (key == "neighbor-overlap") {
      out.min_neighbor_overlap = v;
    } else if (key == "alignment-residual") {
      out.max_alignment_residual = v;
    } else if (key == "ewma-alpha") {
      out.ewma_alpha = v;
    } else if (key == "z") {
      out.z_threshold = v;
    } else if (key == "warmup") {
      out.warmup_windows = static_cast<int>(v);
    } else if (key == "k") {
      out.overlap_k = static_cast<int>(v);
    } else if (key == "sample") {
      out.overlap_sample = static_cast<std::size_t>(v);
    } else if (key == "min-cluster") {
      out.min_cluster_size = static_cast<std::size_t>(v);
    } else {
      return std::nullopt;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// EwmaDetector

std::optional<double> EwmaDetector::update(double value) {
  std::optional<double> fired;
  if (samples_ == 0) {
    mean_ = value;
  } else {
    const double sigma = std::sqrt(var_);
    if (samples_ >= warmup_ && sigma > 1e-12) {
      const double z = std::abs(value - mean_) / sigma;
      if (z > z_) fired = z;
    }
    const double diff = value - mean_;
    mean_ += alpha_ * diff;
    var_ = (1.0 - alpha_) * (var_ + alpha_ * diff * diff);
  }
  ++samples_;
  return fired;
}

// ---------------------------------------------------------------------------
// HealthMonitor

/// Drift reference: everything observe() needs from the last
/// non-degraded window.
struct HealthMonitor::PrevWindow {
  std::unordered_map<net::IPv4, std::uint32_t> index;  ///< sender -> row
  std::vector<int> assignment;
  int dim = 0;
  w2v::Embedding unit;  ///< L2-normalized rows, caller-aligned space
  std::vector<int> cluster_ids;             ///< sorted distinct
  std::vector<std::size_t> cluster_sizes;   ///< aligned with cluster_ids
  std::vector<std::vector<double>> centroids;  ///< aligned, unit L2
};

HealthMonitor::HealthMonitor(HealthThresholds thresholds)
    : thresholds_(thresholds) {}

HealthMonitor::~HealthMonitor() = default;

EwmaDetector& HealthMonitor::detector(std::string_view signal) {
  for (auto& [name, det] : detectors_) {
    if (name == signal) return det;
  }
  detectors_.emplace_back(
      std::string(signal),
      EwmaDetector(thresholds_.ewma_alpha, thresholds_.z_threshold,
                   thresholds_.warmup_windows));
  return detectors_.back().second;
}

std::size_t HealthMonitor::alerts_total() const {
  std::size_t total = 0;
  for (const WindowHealth& w : history_) total += w.alerts.size();
  return total;
}

WindowHealth HealthMonitor::observe(const HealthInput& input) {
  WindowHealth report;
  report.window_start = input.window_start;
  report.window_end = input.window_end;
  report.degraded = input.degraded;
  report.degraded_reason = std::string(input.degraded_reason);

  static Counter& windows_counter = counter(names::kHealthWindows);
  windows_counter.add(1);

  const auto raise = [&](std::string signal, std::string detail, double value,
                         double threshold, int cluster = -1) {
    DV_LOG_WARN("health", "model-health alert", {"signal", signal},
                {"window_end", report.window_end}, {"value", value},
                {"threshold", threshold}, {"cluster", cluster},
                {"detail", detail});
    static Counter& alerts_counter = counter(names::kHealthAlerts);
    alerts_counter.add(1);
    report.alerts.push_back({std::move(signal), std::move(detail), value,
                             threshold, cluster});
  };

  if (input.degraded) {
    static Counter& degraded_counter = counter(names::kHealthDegradedWindows);
    degraded_counter.add(1);
    raise("degraded-window",
          "degraded window: " + report.degraded_reason +
              " — no model-quality signals this window",
          1.0, 0.0);
    history_.push_back(report);
    return history_.back();
  }

  DV_PRECONDITION(input.embedding != nullptr,
                  "health: non-degraded window needs an embedding");
  DV_PRECONDITION(input.senders.size() == input.embedding->size(),
                  "health: one embedding row per sender");
  DV_PRECONDITION(input.assignment.size() == input.senders.size(),
                  "health: one cluster id per sender");

  const std::size_t n = input.senders.size();
  report.senders = n;
  report.modularity = input.modularity;
  report.has_previous = prev_ != nullptr;

  const w2v::Embedding unit = input.embedding->normalized();

  // Mean silhouette — the per-window quality trend.
  if (n > 0) {
    const auto samples = ml::silhouette_samples(unit, input.assignment);
    double sum = 0;
    for (const double s : samples) sum += s;
    report.silhouette = sum / static_cast<double>(n);
  }

  // Current partition: ids, sizes, unit centroids.
  const std::vector<int> ids = distinct_clusters(input.assignment);
  report.clusters = static_cast<int>(ids.size());
  std::unordered_map<int, std::size_t> slot;
  slot.reserve(ids.size());
  for (std::size_t s = 0; s < ids.size(); ++s) slot.emplace(ids[s], s);
  std::vector<std::size_t> sizes(ids.size(), 0);
  for (const int c : input.assignment) ++sizes[slot.at(c)];
  const std::vector<std::vector<double>> centroids =
      unit_centroids(unit, input.assignment, ids);

  double max_membership_churn = 0;
  double max_centroid_drift = 0;

  if (prev_ == nullptr) {
    // Baseline window: report the partition, diff nothing, alarm nothing.
    for (std::size_t s = 0; s < ids.size(); ++s) {
      ClusterDrift drift;
      drift.cluster = ids[s];
      drift.size = sizes[s];
      drift.membership_churn = 0.0;
      report.cluster_drift.push_back(drift);
    }
    report.vocab.current = n;
  } else {
    // Vocabulary churn.
    report.vocab.current = n;
    for (const net::IPv4 ip : input.senders) {
      if (prev_->index.contains(ip)) {
        ++report.vocab.shared;
      } else {
        ++report.vocab.added;
      }
    }
    report.vocab.retired = prev_->index.size() - report.vocab.shared;

    // Neighbor overlap@k within the shared vocabulary. Both restricted
    // embeddings list shared senders in current-window row order, so a
    // neighbor index means the same sender on both sides.
    std::vector<std::uint32_t> shared_cur;
    std::vector<std::uint32_t> shared_prev;
    shared_cur.reserve(report.vocab.shared);
    shared_prev.reserve(report.vocab.shared);
    for (std::size_t i = 0; i < n; ++i) {
      const auto it = prev_->index.find(input.senders[i]);
      if (it == prev_->index.end()) continue;
      shared_cur.push_back(static_cast<std::uint32_t>(i));
      shared_prev.push_back(it->second);
    }
    const std::size_t m = shared_cur.size();
    const int k_eff = static_cast<int>(std::min<std::size_t>(
        static_cast<std::size_t>(std::max(thresholds_.overlap_k, 0)),
        m > 0 ? m - 1 : 0));
    if (k_eff > 0) {
      w2v::Embedding cur_sub(m, unit.dim());
      w2v::Embedding prev_sub(m, prev_->dim);
      for (std::size_t j = 0; j < m; ++j) {
        const auto cv = unit.vec(shared_cur[j]);
        std::ranges::copy(cv, cur_sub.vec(j).begin());
        const auto pv = prev_->unit.vec(shared_prev[j]);
        std::ranges::copy(pv, prev_sub.vec(j).begin());
      }
      // Deterministic strided query sample keeps the probe O(q·m·dim).
      std::vector<std::uint32_t> queries;
      const std::size_t budget =
          thresholds_.overlap_sample == 0 ? m : thresholds_.overlap_sample;
      const std::size_t q_count = std::min(m, budget);
      queries.reserve(q_count);
      for (std::size_t q = 0; q < q_count; ++q) {
        queries.push_back(static_cast<std::uint32_t>(q * m / q_count));
      }
      const ml::CosineKnn cur_index(cur_sub);
      const ml::CosineKnn prev_index(prev_sub);
      const auto cur_lists = cur_index.query_batch(queries, k_eff);
      const auto prev_lists = prev_index.query_batch(queries, k_eff);
      double overlap_sum = 0;
      std::vector<std::uint32_t> a;
      std::vector<std::uint32_t> b;
      for (std::size_t q = 0; q < queries.size(); ++q) {
        a.clear();
        b.clear();
        for (const auto& nb : cur_lists[q]) {
          a.push_back(static_cast<std::uint32_t>(nb.index));
        }
        for (const auto& nb : prev_lists[q]) {
          b.push_back(static_cast<std::uint32_t>(nb.index));
        }
        std::ranges::sort(a);
        std::ranges::sort(b);
        std::size_t inter = 0;
        for (std::size_t i = 0, j = 0; i < a.size() && j < b.size();) {
          if (a[i] < b[j]) {
            ++i;
          } else if (b[j] < a[i]) {
            ++j;
          } else {
            ++inter, ++i, ++j;
          }
        }
        overlap_sum +=
            static_cast<double>(inter) / static_cast<double>(k_eff);
      }
      report.neighbor_overlap =
          queries.empty() ? 1.0
                          : overlap_sum / static_cast<double>(queries.size());
    } else {
      // No shared geometry to compare; churn signals carry the story.
      report.neighbor_overlap = m > 0 ? 1.0 : 0.0;
    }

    report.alignment_residual =
        std::clamp(1.0 - input.alignment_similarity, 0.0, 2.0);

    // Per-cluster drift: match each current cluster to the previous
    // cluster holding most of its members.
    const bool same_dim = prev_->dim == unit.dim();
    for (std::size_t s = 0; s < ids.size(); ++s) {
      ClusterDrift drift;
      drift.cluster = ids[s];
      drift.size = sizes[s];
      // Ordered map: ties resolve toward the smallest previous id, and
      // no hash-iteration order can leak into the persisted report.
      std::map<int, std::size_t> prev_counts;
      for (std::size_t i = 0; i < n; ++i) {
        if (input.assignment[i] != ids[s]) continue;
        const auto it = prev_->index.find(input.senders[i]);
        if (it == prev_->index.end()) continue;
        ++prev_counts[prev_->assignment[it->second]];
      }
      for (const auto& [prev_id, count] : prev_counts) {
        if (count > drift.shared) {
          drift.shared = count;
          drift.matched_prev = prev_id;
        }
      }
      if (drift.matched_prev >= 0) {
        const auto prev_slot = static_cast<std::size_t>(
            std::ranges::lower_bound(prev_->cluster_ids, drift.matched_prev) -
            prev_->cluster_ids.begin());
        drift.prev_size = prev_->cluster_sizes[prev_slot];
        const std::size_t uni =
            drift.size + drift.prev_size - drift.shared;
        drift.membership_churn =
            uni == 0 ? 0.0
                     : 1.0 - static_cast<double>(drift.shared) /
                                 static_cast<double>(uni);
        if (same_dim) {
          drift.centroid_drift = std::clamp(
              1.0 - dot(centroids[s], prev_->centroids[prev_slot]), 0.0, 2.0);
        }
      }
      if (drift.size >= thresholds_.min_cluster_size) {
        max_membership_churn =
            std::max(max_membership_churn, drift.membership_churn);
        max_centroid_drift = std::max(max_centroid_drift, drift.centroid_drift);
      }
      report.cluster_drift.push_back(drift);
    }

    // Threshold alarms, most specific first.
    for (const ClusterDrift& drift : report.cluster_drift) {
      if (drift.size < thresholds_.min_cluster_size) continue;
      if (drift.matched_prev < 0) {
        raise("new-cluster",
              "cluster " + std::to_string(drift.cluster) + ": " +
                  std::to_string(drift.size) +
                  " senders with no ancestor overlap — probable new campaign",
              static_cast<double>(drift.size),
              static_cast<double>(thresholds_.min_cluster_size),
              drift.cluster);
      } else if (drift.membership_churn > thresholds_.max_membership_churn ||
                 drift.centroid_drift > thresholds_.max_centroid_drift) {
        raise("cluster-drift",
              "cluster " + std::to_string(drift.cluster) + ": " +
                  fmt_pct(drift.membership_churn) + " membership churn, " +
                  "centroid drift " + fmt2(drift.centroid_drift) +
                  " — probable split or new campaign",
              std::max(drift.membership_churn, drift.centroid_drift),
              drift.membership_churn > thresholds_.max_membership_churn
                  ? thresholds_.max_membership_churn
                  : thresholds_.max_centroid_drift,
              drift.cluster);
      }
    }
    if (report.vocab.churn() > thresholds_.max_vocab_churn) {
      raise("vocab-churn",
            "vocabulary churn " + fmt_pct(report.vocab.churn()) + ": " +
                std::to_string(report.vocab.added) + " senders added, " +
                std::to_string(report.vocab.retired) +
                " retired — traffic mix changed",
            report.vocab.churn(), thresholds_.max_vocab_churn);
    }
    if (report.neighbor_overlap < thresholds_.min_neighbor_overlap) {
      raise("neighbor-overlap",
            "k-NN neighbor overlap " + fmt2(report.neighbor_overlap) +
                " below " + fmt2(thresholds_.min_neighbor_overlap) +
                " — embedding geometry moved",
            report.neighbor_overlap, thresholds_.min_neighbor_overlap);
    }
    if (report.alignment_residual > thresholds_.max_alignment_residual) {
      raise("alignment-residual",
            "Procrustes residual " + fmt2(report.alignment_residual) +
                " above " + fmt2(thresholds_.max_alignment_residual) +
                " — snapshot spaces no longer align",
            report.alignment_residual, thresholds_.max_alignment_residual);
    }
  }

  // EWMA z-score trend detectors (fed from the first window on; warmup
  // keeps the cold start quiet).
  const std::pair<std::string_view, double> trended[] = {
      {"vocab_churn", report.vocab.churn()},
      {"neighbor_overlap", report.neighbor_overlap},
      {"silhouette", report.silhouette},
      {"modularity", report.modularity},
  };
  for (const auto& [signal, value] : trended) {
    if (const auto z = detector(signal).update(value)) {
      raise("zscore-" + std::string(signal),
            std::string(signal) + " = " + fmt2(value) + " deviates " +
                fmt2(*z) + " sigma from its EWMA trend",
            value, thresholds_.z_threshold);
    }
  }

  // Ring-buffer series: the registry is the one source of truth the
  // JSON/Prometheus exposition and the report share.
  series(names::kHealthVocabChurn).record(report.vocab.churn());
  series(names::kHealthNeighborOverlap).record(report.neighbor_overlap);
  series(names::kHealthAlignmentResidual).record(report.alignment_residual);
  series(names::kHealthSilhouette).record(report.silhouette);
  series(names::kHealthModularity).record(report.modularity);
  series(names::kHealthClusters)
      .record(static_cast<double>(report.clusters));
  series(names::kHealthMaxMembershipChurn).record(max_membership_churn);
  series(names::kHealthMaxCentroidDrift).record(max_centroid_drift);

  DV_LOG_INFO("health", "drift report", {"window_end", report.window_end},
              {"senders", report.senders}, {"clusters", report.clusters},
              {"vocab_churn", report.vocab.churn()},
              {"neighbor_overlap", report.neighbor_overlap},
              {"silhouette", report.silhouette},
              {"alerts", report.alerts.size()});

  // This window becomes the next reference.
  auto next = std::make_unique<PrevWindow>();
  next->index.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    next->index.emplace(input.senders[i], static_cast<std::uint32_t>(i));
  }
  next->assignment.assign(input.assignment.begin(), input.assignment.end());
  next->dim = unit.dim();
  next->unit = unit;
  next->cluster_ids = ids;
  next->cluster_sizes = sizes;
  next->centroids = centroids;
  prev_ = std::move(next);

  history_.push_back(report);
  return history_.back();
}

// ---------------------------------------------------------------------------
// JSON rendering

std::string WindowHealth::to_json() const {
  std::string out = "{\"window_start\":" + std::to_string(window_start) +
                    ",\"window_end\":" + std::to_string(window_end) +
                    ",\"degraded\":" + (degraded ? "true" : "false");
  if (degraded) {
    out += ",\"degraded_reason\":\"" + detail::json_escape(degraded_reason) +
           '"';
  }
  out += ",\"has_previous\":";
  out += has_previous ? "true" : "false";
  out += ",\"senders\":" + std::to_string(senders);
  out += ",\"clusters\":" + std::to_string(clusters);
  out += ",\"vocab\":{\"added\":" + std::to_string(vocab.added) +
         ",\"retired\":" + std::to_string(vocab.retired) +
         ",\"shared\":" + std::to_string(vocab.shared) +
         ",\"current\":" + std::to_string(vocab.current) +
         ",\"churn\":" + fmt_double(vocab.churn()) + '}';
  out += ",\"neighbor_overlap\":" + fmt_double(neighbor_overlap);
  out += ",\"alignment_residual\":" + fmt_double(alignment_residual);
  out += ",\"silhouette\":" + fmt_double(silhouette);
  out += ",\"modularity\":" + fmt_double(modularity);
  out += ",\"cluster_drift\":[";
  for (std::size_t i = 0; i < cluster_drift.size(); ++i) {
    const ClusterDrift& d = cluster_drift[i];
    if (i > 0) out += ',';
    out += "{\"cluster\":" + std::to_string(d.cluster) +
           ",\"matched_prev\":" + std::to_string(d.matched_prev) +
           ",\"size\":" + std::to_string(d.size) +
           ",\"prev_size\":" + std::to_string(d.prev_size) +
           ",\"shared\":" + std::to_string(d.shared) +
           ",\"membership_churn\":" + fmt_double(d.membership_churn) +
           ",\"centroid_drift\":" + fmt_double(d.centroid_drift) + '}';
  }
  out += "],\"alerts\":[";
  for (std::size_t i = 0; i < alerts.size(); ++i) {
    const HealthAlert& a = alerts[i];
    if (i > 0) out += ',';
    out += "{\"signal\":\"" + detail::json_escape(a.signal) +
           "\",\"detail\":\"" + detail::json_escape(a.detail) +
           "\",\"value\":" + fmt_double(a.value) +
           ",\"threshold\":" + fmt_double(a.threshold) +
           ",\"cluster\":" + std::to_string(a.cluster) + '}';
  }
  out += "]}";
  return out;
}

std::string health_report_json(const HealthThresholds& thresholds,
                               std::span<const WindowHealth> windows) {
  std::size_t alerts_total = 0;
  for (const WindowHealth& w : windows) alerts_total += w.alerts.size();
  std::string out = "{\"schema\":1,\"thresholds\":{";
  out += "\"max_vocab_churn\":" + fmt_double(thresholds.max_vocab_churn);
  out += ",\"max_membership_churn\":" +
         fmt_double(thresholds.max_membership_churn);
  out += ",\"max_centroid_drift\":" +
         fmt_double(thresholds.max_centroid_drift);
  out += ",\"min_neighbor_overlap\":" +
         fmt_double(thresholds.min_neighbor_overlap);
  out += ",\"max_alignment_residual\":" +
         fmt_double(thresholds.max_alignment_residual);
  out += ",\"ewma_alpha\":" + fmt_double(thresholds.ewma_alpha);
  out += ",\"z_threshold\":" + fmt_double(thresholds.z_threshold);
  out += ",\"warmup_windows\":" + std::to_string(thresholds.warmup_windows);
  out += ",\"overlap_k\":" + std::to_string(thresholds.overlap_k);
  out += ",\"overlap_sample\":" + std::to_string(thresholds.overlap_sample);
  out += ",\"min_cluster_size\":" +
         std::to_string(thresholds.min_cluster_size);
  out += "},\"windows\":[";
  for (std::size_t i = 0; i < windows.size(); ++i) {
    if (i > 0) out += ',';
    out += windows[i].to_json();
  }
  out += "],\"alerts_total\":" + std::to_string(alerts_total) + '}';
  return out;
}

void write_health_report(const std::string& path,
                         const HealthThresholds& thresholds,
                         std::span<const WindowHealth> windows) {
  io::atomic_write_file(path, std::ios::out, [&](std::ostream& out) {
    out << health_report_json(thresholds, windows) << '\n';
  });
}

std::string HealthMonitor::report_json() const {
  return health_report_json(thresholds_, history_);
}

void HealthMonitor::write_report(const std::string& path) const {
  write_health_report(path, thresholds_, history_);
}

}  // namespace darkvec::obs
