#include "darkvec/corpus/service_map.hpp"

#include <algorithm>

namespace darkvec::corpus {
namespace {

using net::PortKey;
using net::Protocol;

constexpr PortKey tcp(std::uint16_t p) { return PortKey{p, Protocol::kTcp}; }
constexpr PortKey udp(std::uint16_t p) { return PortKey{p, Protocol::kUdp}; }

}  // namespace

// ---------------------------------------------------------------- Auto --

AutoServiceMap::AutoServiceMap(const net::Trace& trace, int n) {
  const auto ranking = trace.port_ranking();
  const int top = std::min<int>(n, static_cast<int>(ranking.size()));
  keys_.reserve(static_cast<std::size_t>(top));
  for (int i = 0; i < top; ++i) {
    top_.emplace(ranking[static_cast<std::size_t>(i)].key, i);
    keys_.push_back(ranking[static_cast<std::size_t>(i)].key);
  }
}

int AutoServiceMap::service_of(PortKey key) const {
  const auto it = top_.find(key);
  return it == top_.end() ? static_cast<int>(keys_.size()) : it->second;
}

int AutoServiceMap::num_services() const {
  return static_cast<int>(keys_.size()) + 1;
}

std::string AutoServiceMap::name(int service) const {
  if (service >= 0 && service < static_cast<int>(keys_.size())) {
    return "port " + keys_[static_cast<std::size_t>(service)].to_string();
  }
  return "other";
}

// -------------------------------------------------------------- Domain --

DomainServiceMap::DomainServiceMap() {
  const auto add = [this](const std::string& name,
                          const std::vector<PortKey>& keys) {
    const int id = static_cast<int>(names_.size());
    names_.push_back(name);
    for (const PortKey& k : keys) table_.emplace(k, id);
    return id;
  };

  // Table 7 of the paper, verbatim.
  add("Telnet", {tcp(23), tcp(992)});
  add("SSH", {tcp(22)});
  add("Kerberos", {tcp(88), udp(88), tcp(543), tcp(544), tcp(749), tcp(7004),
                   udp(750), tcp(750), tcp(751), udp(752), tcp(754), udp(464),
                   tcp(464)});
  add("HTTP", {tcp(80), tcp(443), tcp(8080)});
  add("Proxy", {tcp(1080), tcp(6446), tcp(2121), tcp(8081), tcp(57000)});
  add("Mail", {tcp(25), tcp(143), tcp(174), tcp(209), tcp(465), tcp(587),
               tcp(110), tcp(995), tcp(993)});
  add("Database",
      {tcp(210), tcp(5432), tcp(775), tcp(1433), udp(1433), tcp(1434),
       udp(1434), tcp(3306), tcp(27017), tcp(27018), tcp(27019), tcp(3050),
       tcp(3351), tcp(1583)});
  add("DNS", {tcp(853), udp(853), udp(5353), tcp(53), udp(53)});
  add("Netbios",
      {tcp(137), udp(137), tcp(138), udp(138), tcp(139), udp(139)});
  add("Netbios-SMB", {tcp(445)});
  add("P2P", {tcp(119),  tcp(375),  tcp(425),  tcp(1214), tcp(412),
              tcp(1412), tcp(2412), tcp(4662), udp(12155), udp(6771),
              udp(6881), udp(6882), udp(6883), udp(6884), udp(6885),
              udp(6886), udp(6887), tcp(6881), tcp(6882), tcp(6883),
              tcp(6884), tcp(6885), tcp(6886), tcp(6887), tcp(6969),
              tcp(7000), tcp(9000), tcp(9091), tcp(6346), udp(6346),
              tcp(6347), udp(6347)});
  add("FTP", {tcp(20), tcp(21), udp(69), tcp(989), tcp(990), udp(2431),
              udp(2433), tcp(2811), tcp(8021)});
  icmp_ = add("ICMP", {});
  unknown_system_ = add("Unknown System", {});
  unknown_user_ = add("Unknown User", {});
  unknown_ephemeral_ = add("Unknown Ephemeral", {});
}

int DomainServiceMap::service_of(PortKey key) const {
  if (key.proto == Protocol::kIcmp) return icmp_;
  const auto it = table_.find(key);
  if (it != table_.end()) return it->second;
  if (key.port <= 1023) return unknown_system_;
  if (key.port <= 49151) return unknown_user_;
  return unknown_ephemeral_;
}

int DomainServiceMap::num_services() const {
  return static_cast<int>(names_.size());
}

std::string DomainServiceMap::name(int service) const {
  if (service < 0 || service >= num_services()) return "?";
  return names_[static_cast<std::size_t>(service)];
}

int DomainServiceMap::id_of(std::string_view service_name) const {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == service_name) return static_cast<int>(i);
  }
  return -1;
}

// ------------------------------------------------------------- factory --

std::string_view to_string(ServiceStrategy s) {
  switch (s) {
    case ServiceStrategy::kSingle:
      return "single";
    case ServiceStrategy::kAuto:
      return "auto";
    case ServiceStrategy::kDomain:
      return "domain";
  }
  return "domain";
}

std::unique_ptr<ServiceMap> make_service_map(ServiceStrategy strategy,
                                             const net::Trace& trace,
                                             int auto_top_n) {
  switch (strategy) {
    case ServiceStrategy::kSingle:
      return std::make_unique<SingleServiceMap>();
    case ServiceStrategy::kAuto:
      return std::make_unique<AutoServiceMap>(trace, auto_top_n);
    case ServiceStrategy::kDomain:
      return std::make_unique<DomainServiceMap>();
  }
  return std::make_unique<DomainServiceMap>();
}

}  // namespace darkvec::corpus
