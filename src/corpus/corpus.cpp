#include "darkvec/corpus/corpus.hpp"

#include <algorithm>
#include <map>

namespace darkvec::corpus {

std::size_t Corpus::tokens() const {
  std::size_t n = 0;
  for (const auto& s : sentences) n += s.size();
  return n;
}

WordId Corpus::id_of(net::IPv4 ip) const {
  const auto it = ids.find(ip);
  return it == ids.end() ? kNoWord : it->second;
}

Corpus build_corpus(const net::Trace& trace, const ServiceMap& services,
                    const CorpusOptions& options) {
  Corpus corpus;
  if (trace.empty()) return corpus;

  // Activity filter over the whole trace.
  std::unordered_map<net::IPv4, std::size_t> totals =
      trace.packets_per_sender();

  const std::int64_t t0 = trace[0].ts;
  // (window, service) -> sentence under construction. std::map keeps the
  // output ordering deterministic: by window, then by service id.
  std::map<std::pair<std::int64_t, int>, std::vector<WordId>> open;
  std::int64_t current_window = 0;

  const auto flush = [&] {
    for (auto& [key, sentence] : open) {
      if (sentence.size() >= 2) corpus.sentences.push_back(std::move(sentence));
    }
    open.clear();
  };

  for (const net::Packet& p : trace) {
    if (totals[p.src] < options.min_packets) continue;
    const std::int64_t window = (p.ts - t0) / options.delta_t;
    if (window != current_window) {
      flush();
      current_window = window;
    }
    const int service = services.service_of(p.port_key());

    WordId id;
    const auto it = corpus.ids.find(p.src);
    if (it == corpus.ids.end()) {
      id = static_cast<WordId>(corpus.words.size());
      corpus.ids.emplace(p.src, id);
      corpus.words.push_back(p.src);
    } else {
      id = it->second;
    }
    open[{window, service}].push_back(id);
  }
  flush();
  return corpus;
}

std::uint64_t count_skipgrams(const Corpus& corpus, int c) {
  std::uint64_t pairs = 0;
  for (const auto& s : corpus.sentences) {
    const auto n = static_cast<std::int64_t>(s.size());
    for (std::int64_t i = 0; i < n; ++i) {
      const std::int64_t lo = std::max<std::int64_t>(0, i - c);
      const std::int64_t hi = std::min<std::int64_t>(n - 1, i + c);
      pairs += static_cast<std::uint64_t>(hi - lo);  // excludes i itself
    }
  }
  return pairs;
}

}  // namespace darkvec::corpus
