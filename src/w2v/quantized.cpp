#include "darkvec/w2v/quantized.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "darkvec/core/atomic_io.hpp"
#include "darkvec/core/byteio.hpp"
#include "darkvec/core/checksum.hpp"
#include "darkvec/core/contracts.hpp"
#include "darkvec/obs/obs.hpp"

namespace darkvec::w2v {
namespace {

constexpr std::uint32_t kMagic = 0x44565138;  // "DVQ8"
constexpr std::uint32_t kVersion = 2;         // CRC32-footed, like DVE2
constexpr std::size_t kStrideAlign = 32;

std::size_t padded_stride(int dim) {
  return (static_cast<std::size_t>(dim) + kStrideAlign - 1) &
         ~(kStrideAlign - 1);
}

}  // namespace

QuantizedEmbedding QuantizedEmbedding::quantize(const Embedding& source) {
  QuantizedEmbedding out;
  out.dim_ = source.dim();
  out.n_ = source.size();
  out.stride_ = out.dim_ > 0 ? padded_stride(out.dim_) : 0;
  out.scales_.assign(out.n_, 0.0f);
  out.data_.assign(out.n_ * out.stride_, 0);
  for (std::size_t i = 0; i < out.n_; ++i) {
    const auto src = source.vec(i);
    float amax = 0.0f;
    for (const float v : src) amax = std::max(amax, std::abs(v));
    if (amax == 0.0f) continue;  // zero row: scale 0, all-zero codes
    const float scale = amax / 127.0f;
    out.scales_[i] = scale;
    std::int8_t* dst = out.data_.data() + i * out.stride_;
    for (std::size_t d = 0; d < src.size(); ++d) {
      const long q = std::lround(src[d] / scale);
      dst[d] = static_cast<std::int8_t>(std::clamp(q, -127l, 127l));
    }
  }
  return out;
}

Embedding QuantizedEmbedding::dequantize() const {
  if (dim_ <= 0) return {};
  Embedding out(n_, dim_);
  for (std::size_t i = 0; i < n_; ++i) {
    const std::int8_t* src = data_.data() + i * stride_;
    const float scale = scales_[i];
    auto dst = out.vec(i);
    for (std::size_t d = 0; d < dst.size(); ++d) {
      dst[d] = static_cast<float>(src[d]) * scale;
    }
  }
  return out;
}

void QuantizedEmbedding::save(std::ostream& out) const {
  io::Crc32 crc;
  const auto put = [&](const void* data, std::size_t len) {
    crc.update(data, len);
    out.write(static_cast<const char*>(data),
              static_cast<std::streamsize>(len));
  };
  const std::uint64_t n = n_;
  const std::int32_t d = dim_;
  put(&kMagic, sizeof(kMagic));
  put(&kVersion, sizeof(kVersion));
  put(&n, sizeof(n));
  put(&d, sizeof(d));
  put(scales_.data(), scales_.size() * sizeof(float));
  // Rows are stored unpadded; the in-memory stride is rebuilt on load.
  for (std::size_t i = 0; i < n_; ++i) {
    put(data_.data() + i * stride_, static_cast<std::size_t>(dim_));
  }
  io::write_pod(out, crc.value());
}

void QuantizedEmbedding::save_file(const std::string& path) const {
  io::atomic_write_file(path, std::ios::binary, [&](std::ostream& out) {
    save(out);
  });
}

QuantizedEmbedding QuantizedEmbedding::load(std::istream& in,
                                            const io::IoPolicy& policy,
                                            io::IoReport* report) {
  DV_SPAN("io.load_quantized");
  io::Crc32 crc;
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  std::uint64_t n = 0;
  std::int32_t d = 0;
  if (!io::read_pod(in, magic) || magic != kMagic) {
    throw io::FormatError("QuantizedEmbedding: bad magic");
  }
  if (!io::read_pod(in, version) || version != kVersion) {
    throw io::FormatError("QuantizedEmbedding: unsupported version");
  }
  if (!io::read_pod(in, n) || !io::read_pod(in, d)) {
    throw io::TruncatedInput("QuantizedEmbedding: truncated header");
  }
  if (d <= 0) {
    throw io::FormatError("QuantizedEmbedding: non-positive dimension");
  }
  if (d > policy.limits.max_dim) {
    throw io::ResourceLimit("QuantizedEmbedding: dimension " +
                            std::to_string(d) + " over the cap of " +
                            std::to_string(policy.limits.max_dim));
  }
  if (n > policy.limits.max_records) {
    throw io::ResourceLimit(
        "QuantizedEmbedding: header declares " + std::to_string(n) +
        " rows, cap is " + std::to_string(policy.limits.max_records));
  }
  crc.update(&magic, sizeof(magic));
  crc.update(&version, sizeof(version));
  crc.update(&n, sizeof(n));
  crc.update(&d, sizeof(d));

  const auto dim = static_cast<std::size_t>(d);
  const std::size_t stride = padded_stride(d);

  // Scales first; a short read here caps how many rows can survive.
  // Chunked so a lying row count cannot force an allocation ahead of the
  // bytes the stream actually yields (same policy as Embedding::load).
  std::vector<float> scales;
  scales.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(n, std::uint64_t{1} << 16)));
  {
    std::vector<float> buffer(std::size_t{1} << 12);
    std::uint64_t remaining = n;
    while (remaining > 0) {
      const std::size_t chunk = static_cast<std::size_t>(
          std::min<std::uint64_t>(remaining, buffer.size()));
      const std::size_t got = io::read_array_bytes(in, buffer.data(), chunk);
      crc.update(buffer.data(), got);
      scales.insert(scales.end(), buffer.begin(),
                    buffer.begin() + static_cast<std::ptrdiff_t>(
                                         got / sizeof(float)));
      if (got < chunk * sizeof(float)) break;
      remaining -= chunk;
    }
  }
  // A short scale section means the stream ended before any row data:
  // nothing survives.
  bool truncated = scales.size() < n;
  std::size_t rows = truncated ? 0 : scales.size();

  std::vector<std::int8_t> data;
  data.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(n * stride, std::uint64_t{1} << 20)));
  std::vector<std::int8_t> rowbuf(dim);
  std::size_t rows_read = 0;
  while (rows_read < n && !truncated) {
    const std::size_t got = io::read_array_bytes(in, rowbuf.data(), dim);
    crc.update(rowbuf.data(), got);
    if (got < dim) {
      truncated = true;
      break;
    }
    // Append the row followed by its zero padding: growth tracks bytes
    // actually present.
    data.insert(data.end(), rowbuf.begin(), rowbuf.end());
    data.resize(data.size() + (stride - dim), 0);
    ++rows_read;
  }
  if (truncated) {
    rows = std::min(rows, rows_read);
    io::detail::bad_record<io::TruncatedInput>(
        policy, report, rows + 1,
        "QuantizedEmbedding: stream ends inside row " +
            std::to_string(rows + 1) + " of a declared " + std::to_string(n));
  } else {
    rows = rows_read;
    std::uint32_t stored = 0;
    if (!io::read_pod(in, stored)) {
      io::detail::bad_record<io::TruncatedInput>(
          policy, report, static_cast<std::size_t>(n),
          "QuantizedEmbedding: missing CRC32 footer");
    } else if (stored != crc.value()) {
      if (report != nullptr) report->checksum_failed = true;
      io::detail::suspect_input(policy, report, 0,
                                "QuantizedEmbedding: CRC32 mismatch");
    } else if (report != nullptr) {
      report->checksum_verified = true;
    }
    if (in.peek() != std::istream::traits_type::eof()) {
      io::detail::suspect_input(policy, report, 0,
                                "QuantizedEmbedding: trailing data");
    }
  }

  QuantizedEmbedding out;
  out.dim_ = d;
  out.n_ = rows;
  out.stride_ = stride;
  scales.resize(rows);
  data.resize(rows * stride);
  out.scales_ = std::move(scales);
  out.data_ = std::move(data);
  if (report != nullptr) report->records_read += rows;
  static obs::Counter& rows_counter = obs::counter(obs::names::kIoQuantizedRows);
  rows_counter.add(rows);
  if (truncated) {
    DV_LOG_WARN("io", "quantized embedding truncated", {"rows", rows},
                {"declared", n});
  }
  DV_LOG_DEBUG("io", "quantized embedding loaded", {"rows", rows},
               {"dim", d});
  return out;
}

QuantizedEmbedding QuantizedEmbedding::load_file(const std::string& path,
                                                 const io::IoPolicy& policy,
                                                 io::IoReport* report) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw io::IoError("QuantizedEmbedding: cannot open " + path);
  return load(in, policy, report);
}

}  // namespace darkvec::w2v
