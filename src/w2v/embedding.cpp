#include "darkvec/w2v/embedding.hpp"

#include <cmath>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace darkvec::w2v {
namespace {

constexpr std::uint32_t kMagic = 0x44564543;  // "DVEC"

}  // namespace

Embedding::Embedding(std::vector<float> data, int dim)
    : dim_(dim), data_(std::move(data)) {
  if (dim <= 0 || data_.size() % static_cast<std::size_t>(dim) != 0) {
    throw std::invalid_argument("Embedding: data size not a multiple of dim");
  }
}

double dot(std::span<const float> a, std::span<const float> b) {
  double acc = 0;
  for (std::size_t k = 0; k < a.size(); ++k) acc += double{a[k]} * b[k];
  return acc;
}

double cosine(std::span<const float> a, std::span<const float> b) {
  const double ab = dot(a, b);
  const double aa = dot(a, a);
  const double bb = dot(b, b);
  if (aa <= 0 || bb <= 0) return 0;
  return ab / std::sqrt(aa * bb);
}

double Embedding::cosine(std::size_t i, std::size_t j) const {
  return w2v::cosine(vec(i), vec(j));
}

Embedding Embedding::normalized() const {
  Embedding out(size(), dim_);
  for (std::size_t i = 0; i < size(); ++i) {
    const auto src = vec(i);
    const double norm = std::sqrt(dot(src, src));
    auto dst = out.vec(i);
    if (norm > 0) {
      for (std::size_t k = 0; k < src.size(); ++k) {
        dst[k] = static_cast<float>(src[k] / norm);
      }
    }
  }
  return out;
}

void Embedding::save(std::ostream& out) const {
  const std::uint64_t n = size();
  const std::int32_t d = dim_;
  out.write(reinterpret_cast<const char*>(&kMagic), sizeof(kMagic));
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  out.write(reinterpret_cast<const char*>(&d), sizeof(d));
  out.write(reinterpret_cast<const char*>(data_.data()),
            static_cast<std::streamsize>(data_.size() * sizeof(float)));
}

void Embedding::save_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("Embedding: cannot open " + path);
  save(out);
}

Embedding Embedding::load(std::istream& in) {
  std::uint32_t magic = 0;
  std::uint64_t n = 0;
  std::int32_t d = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (!in || magic != kMagic) {
    throw std::runtime_error("Embedding: bad magic");
  }
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  in.read(reinterpret_cast<char*>(&d), sizeof(d));
  if (!in || d <= 0) throw std::runtime_error("Embedding: bad header");
  std::vector<float> data(n * static_cast<std::uint64_t>(d));
  in.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(data.size() * sizeof(float)));
  if (!in) throw std::runtime_error("Embedding: truncated data");
  return Embedding{std::move(data), d};
}

Embedding Embedding::load_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("Embedding: cannot open " + path);
  return load(in);
}

}  // namespace darkvec::w2v
