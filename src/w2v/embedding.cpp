#include "darkvec/w2v/embedding.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>

#include "darkvec/core/atomic_io.hpp"
#include "darkvec/core/byteio.hpp"
#include "darkvec/core/checksum.hpp"
#include "darkvec/core/contracts.hpp"
#include "darkvec/obs/obs.hpp"

namespace darkvec::w2v {
namespace {

constexpr std::uint32_t kMagicV1 = 0x44564543;  // "DVEC": n, d, floats
constexpr std::uint32_t kMagicV2 = 0x44564532;  // "DVE2": + version + CRC32
constexpr std::uint32_t kVersionV2 = 2;

}  // namespace

Embedding::Embedding(std::vector<float> data, int dim)
    : dim_(dim), data_(std::move(data)) {
  DV_PRECONDITION(dim > 0, "Embedding: dim must be positive");
  DV_PRECONDITION(data_.size() % static_cast<std::size_t>(dim) == 0,
                  "Embedding: data size is a multiple of dim");
}

double dot(std::span<const float> a, std::span<const float> b) {
  double acc = 0;
  for (std::size_t k = 0; k < a.size(); ++k) acc += double{a[k]} * b[k];
  return acc;
}

double cosine(std::span<const float> a, std::span<const float> b) {
  const double ab = dot(a, b);
  const double aa = dot(a, a);
  const double bb = dot(b, b);
  if (aa <= 0 || bb <= 0) return 0;
  return ab / std::sqrt(aa * bb);
}

double Embedding::cosine(std::size_t i, std::size_t j) const {
  return w2v::cosine(vec(i), vec(j));
}

Embedding Embedding::normalized() const {
  Embedding out(size(), dim_);
  for (std::size_t i = 0; i < size(); ++i) {
    const auto src = vec(i);
    const double norm = std::sqrt(dot(src, src));
    auto dst = out.vec(i);
    if (norm > 0) {
      for (std::size_t k = 0; k < src.size(); ++k) {
        dst[k] = static_cast<float>(src[k] / norm);
      }
    }
  }
  return out;
}

void Embedding::save(std::ostream& out) const {
  io::Crc32 crc;
  const auto put = [&](const void* data, std::size_t len) {
    crc.update(data, len);
    out.write(static_cast<const char*>(data),
              static_cast<std::streamsize>(len));
  };
  const std::uint64_t n = size();
  const std::int32_t d = dim_;
  put(&kMagicV2, sizeof(kMagicV2));
  put(&kVersionV2, sizeof(kVersionV2));
  put(&n, sizeof(n));
  put(&d, sizeof(d));
  put(data_.data(), data_.size() * sizeof(float));
  io::write_pod(out, crc.value());
}

void Embedding::save_file(const std::string& path) const {
  io::atomic_write_file(path, std::ios::binary, [&](std::ostream& out) {
    save(out);
  });
}

Embedding Embedding::load(std::istream& in, const io::IoPolicy& policy,
                          io::IoReport* report) {
  DV_SPAN("io.load_embedding");
  io::Crc32 crc;
  std::uint32_t magic = 0;
  std::uint64_t n = 0;
  std::int32_t d = 0;
  if (!io::read_pod(in, magic) || (magic != kMagicV1 && magic != kMagicV2)) {
    throw io::FormatError("Embedding: bad magic");
  }
  const bool v2 = magic == kMagicV2;
  std::uint32_t version = 0;
  if (v2) {
    if (!io::read_pod(in, version) || version != kVersionV2) {
      throw io::FormatError("Embedding: unsupported version");
    }
  }
  if (!io::read_pod(in, n) || !io::read_pod(in, d)) {
    throw io::TruncatedInput("Embedding: truncated header");
  }
  if (d <= 0) throw io::FormatError("Embedding: non-positive dimension");
  if (d > policy.limits.max_dim) {
    throw io::ResourceLimit("Embedding: dimension " + std::to_string(d) +
                            " over the cap of " +
                            std::to_string(policy.limits.max_dim));
  }
  if (n > policy.limits.max_records) {
    throw io::ResourceLimit(
        "Embedding: header declares " + std::to_string(n) +
        " rows, cap is " + std::to_string(policy.limits.max_records));
  }
  crc.update(&magic, sizeof(magic));
  if (v2) crc.update(&version, sizeof(version));
  crc.update(&n, sizeof(n));
  crc.update(&d, sizeof(d));

  const auto dim = static_cast<std::uint64_t>(d);
  std::vector<float> data;
  // Growth stays proportional to bytes actually present, so a lying row
  // count cannot force an allocation past one chunk ahead of the stream.
  data.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(n * dim, std::uint64_t{1} << 20)));
  std::vector<float> buffer(std::size_t{1} << 16);
  std::uint64_t remaining = n * dim;
  bool truncated = false;
  while (remaining > 0 && !truncated) {
    const std::size_t chunk = static_cast<std::size_t>(
        std::min<std::uint64_t>(remaining, buffer.size()));
    const std::size_t got = io::read_array_bytes(in, buffer.data(), chunk);
    crc.update(buffer.data(), got);
    data.insert(data.end(), buffer.begin(),
                buffer.begin() + static_cast<std::ptrdiff_t>(
                                     got / sizeof(float)));
    if (got < chunk * sizeof(float)) {
      io::detail::bad_record<io::TruncatedInput>(
          policy, report, data.size() / dim + 1,
          "Embedding: stream ends inside row " +
              std::to_string(data.size() / dim + 1) + " of a declared " +
              std::to_string(n));
      truncated = true;  // lenient: keep the whole rows present
    }
    remaining -= chunk;
  }
  if (truncated) data.resize((data.size() / dim) * dim);

  if (v2 && !truncated) {
    std::uint32_t stored = 0;
    if (!io::read_pod(in, stored)) {
      io::detail::bad_record<io::TruncatedInput>(
          policy, report, static_cast<std::size_t>(n),
          "Embedding: missing CRC32 footer");
    } else if (stored != crc.value()) {
      if (report != nullptr) report->checksum_failed = true;
      io::detail::suspect_input(policy, report, 0,
                                "Embedding: CRC32 mismatch");
    } else if (report != nullptr) {
      report->checksum_verified = true;
    }
  }
  if (!truncated && in.peek() != std::istream::traits_type::eof()) {
    io::detail::suspect_input(policy, report, 0,
                              "Embedding: trailing data after matrix");
  }
  if (report != nullptr) report->records_read += data.size() / dim;
  static obs::Counter& rows_counter = obs::counter(obs::names::kIoEmbeddingRows);
  rows_counter.add(data.size() / dim);
  if (truncated) {
    DV_LOG_WARN("io", "embedding truncated", {"rows", data.size() / dim},
                {"declared", n});
  }
  DV_LOG_DEBUG("io", "embedding loaded", {"rows", data.size() / dim},
               {"dim", d});
  return Embedding{std::move(data), d};
}

Embedding Embedding::load_file(const std::string& path,
                               const io::IoPolicy& policy,
                               io::IoReport* report) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw io::IoError("Embedding: cannot open " + path);
  return load(in, policy, report);
}

Embedding Embedding::load(std::istream& in) {
  return load(in, io::IoPolicy{});
}

Embedding Embedding::load_file(const std::string& path) {
  return load_file(path, io::IoPolicy{});
}

}  // namespace darkvec::w2v
