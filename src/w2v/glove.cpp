#include "darkvec/core/contracts.hpp"
#include "darkvec/w2v/glove.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <unordered_map>

#include "darkvec/core/simd/simd.hpp"
#include "darkvec/obs/obs.hpp"

namespace darkvec::w2v {
namespace {

inline std::uint64_t next_rand(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

inline double rand_unit(std::uint64_t& state) {
  return static_cast<double>(next_rand(state) >> 11) * 0x1.0p-53;
}

}  // namespace

GloveModel::GloveModel(std::size_t vocab_size, GloveOptions options)
    : vocab_(vocab_size), options_(options) {
  DV_PRECONDITION(options.dim > 0, "Glove: dim must be positive");
  DV_PRECONDITION(options.window > 0, "Glove: window must be positive");
}

TrainStats GloveModel::train(std::span<const Sentence> sentences) {
  const auto t_start = std::chrono::steady_clock::now();
  DV_SPAN_ARG("w2v.glove.train", "vocab", vocab_);
  TrainStats stats;
  const auto dim = static_cast<std::size_t>(options_.dim);

  // ---- windowed co-occurrence counts (1/d distance weighting) -----------
  std::unordered_map<std::uint64_t, double> counts;
  for (const Sentence& s : sentences) {
    const auto n = static_cast<std::int64_t>(s.size());
    stats.tokens += s.size();
    for (std::int64_t i = 0; i < n; ++i) {
      DV_PRECONDITION(s[static_cast<std::size_t>(i)] < vocab_,
                      "Glove: every word id is < vocab_size");
      const std::int64_t hi =
          std::min<std::int64_t>(n - 1, i + options_.window);
      for (std::int64_t j = i + 1; j <= hi; ++j) {
        const double w = 1.0 / static_cast<double>(j - i);
        const std::uint64_t a = s[static_cast<std::size_t>(i)];
        const std::uint64_t b = s[static_cast<std::size_t>(j)];
        counts[(a << 32) | b] += w;
        counts[(b << 32) | a] += w;  // symmetric
      }
    }
  }
  cells_ = counts.size();
  if (counts.empty()) {
    combined_ = Embedding(vocab_, options_.dim);
    return stats;
  }

  // Flatten for deterministic shuffled iteration.
  struct Cell {
    std::uint32_t i, j;
    double x;
  };
  std::vector<Cell> cells;
  cells.reserve(counts.size());
  for (const auto& [key, x] : counts) {
    cells.push_back({static_cast<std::uint32_t>(key >> 32),
                     static_cast<std::uint32_t>(key & 0xFFFFFFFFu), x});
  }
  std::ranges::sort(cells, [](const Cell& a, const Cell& b) {
    if (a.i != b.i) return a.i < b.i;
    return a.j < b.j;
  });

  // ---- parameters and AdaGrad accumulators -------------------------------
  std::uint64_t rng = options_.seed * 0x9E3779B97F4A7C15ull + 3;
  std::vector<double> w(vocab_ * dim);
  std::vector<double> wt(vocab_ * dim);
  for (double& v : w) v = (rand_unit(rng) - 0.5) / options_.dim;
  for (double& v : wt) v = (rand_unit(rng) - 0.5) / options_.dim;
  std::vector<double> b(vocab_, 0.0);
  std::vector<double> bt(vocab_, 0.0);
  std::vector<double> gw(vocab_ * dim, 1.0);
  std::vector<double> gwt(vocab_ * dim, 1.0);
  std::vector<double> gb(vocab_, 1.0);
  std::vector<double> gbt(vocab_, 1.0);

  std::vector<std::size_t> order(cells.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  const double lr = options_.learning_rate;
  const simd::Kernels& kern = simd::kernels();
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    DV_SPAN_ARG("w2v.glove.epoch", "epoch", epoch);
    // Seeded Fisher-Yates shuffle per epoch.
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[next_rand(rng) % i]);
    }
    for (const std::size_t idx : order) {
      const Cell& cell = cells[idx];
      double* wi = w.data() + cell.i * dim;
      double* wj = wt.data() + cell.j * dim;
      const double dot_ij =
          b[cell.i] + bt[cell.j] - std::log(cell.x) + kern.dot_f64(wi, wj, dim);
      const double weight =
          cell.x < options_.x_max
              ? std::pow(cell.x / options_.x_max, options_.alpha)
              : 1.0;
      const double g = weight * dot_ij;

      // Fused pair update: grad_j reads the pre-update wi, so both rows
      // must advance together (w and wt are distinct arrays, no aliasing
      // even when cell.i == cell.j).
      kern.adagrad_pair_f64(dim, g, lr, wi, wj, gw.data() + cell.i * dim,
                            gwt.data() + cell.j * dim);
      b[cell.i] -= lr * g / std::sqrt(gb[cell.i]);
      bt[cell.j] -= lr * g / std::sqrt(gbt[cell.j]);
      gb[cell.i] += g * g;
      gbt[cell.j] += g * g;
      ++stats.pairs;
    }
  }

  // Combined representation: w + w~ (GloVe paper, Section 4.2).
  combined_ = Embedding(vocab_, options_.dim);
  for (std::size_t i = 0; i < vocab_; ++i) {
    auto row = combined_.vec(i);
    for (std::size_t d = 0; d < dim; ++d) {
      row[d] = static_cast<float>(w[i * dim + d] + wt[i * dim + d]);
    }
  }
  stats.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_start)
          .count();
  static obs::Counter& pairs_counter = obs::counter("w2v.glove.pairs");
  pairs_counter.add(stats.pairs);
  DV_LOG_DEBUG("w2v", "glove training complete", {"cells", cells_},
               {"pairs", stats.pairs}, {"seconds", stats.seconds},
               {"epochs", options_.epochs});
  return stats;
}

}  // namespace darkvec::w2v
