#include "darkvec/core/contracts.hpp"
#include "darkvec/w2v/glove.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <unordered_map>

#include "darkvec/core/byteio.hpp"
#include "darkvec/core/runtime/checkpoint.hpp"
#include "darkvec/core/runtime/runtime.hpp"
#include "darkvec/core/simd/simd.hpp"
#include "darkvec/obs/obs.hpp"

namespace darkvec::w2v {
namespace {

inline std::uint64_t next_rand(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

inline double rand_unit(std::uint64_t& state) {
  return static_cast<double>(next_rand(state) >> 11) * 0x1.0p-53;
}

// FNV-1a over the options that make a GLOV checkpoint compatible.
std::uint64_t glove_fingerprint(std::size_t vocab, const GloveOptions& o) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFFu;
      h *= 1099511628211ull;
    }
  };
  mix(vocab);
  mix(static_cast<std::uint64_t>(o.dim));
  mix(static_cast<std::uint64_t>(o.window));
  mix(static_cast<std::uint64_t>(o.epochs));
  mix(std::bit_cast<std::uint64_t>(o.x_max));
  mix(std::bit_cast<std::uint64_t>(o.alpha));
  mix(std::bit_cast<std::uint64_t>(o.learning_rate));
  mix(o.seed);
  return h;
}

}  // namespace

GloveModel::GloveModel(std::size_t vocab_size, GloveOptions options)
    : vocab_(vocab_size), options_(options) {
  DV_PRECONDITION(options.dim > 0, "Glove: dim must be positive");
  DV_PRECONDITION(options.window > 0, "Glove: window must be positive");
}

TrainStats GloveModel::train(std::span<const Sentence> sentences) {
  return train(sentences, TrainControl{});
}

TrainStats GloveModel::train(std::span<const Sentence> sentences,
                             const TrainControl& control) {
  const auto t_start = std::chrono::steady_clock::now();
  DV_SPAN_ARG("w2v.glove.train", "vocab", vocab_);
  runtime::RunContext* const ctx = runtime::current();
  TrainStats stats;
  const auto dim = static_cast<std::size_t>(options_.dim);

  // ---- windowed co-occurrence counts (1/d distance weighting) -----------
  std::unordered_map<std::uint64_t, double> counts;
  for (const Sentence& s : sentences) {
    DV_CHECK_CANCEL(ctx);
    const auto n = static_cast<std::int64_t>(s.size());
    stats.tokens += s.size();
    for (std::int64_t i = 0; i < n; ++i) {
      DV_PRECONDITION(s[static_cast<std::size_t>(i)] < vocab_,
                      "Glove: every word id is < vocab_size");
      const std::int64_t hi =
          std::min<std::int64_t>(n - 1, i + options_.window);
      for (std::int64_t j = i + 1; j <= hi; ++j) {
        const double w = 1.0 / static_cast<double>(j - i);
        const std::uint64_t a = s[static_cast<std::size_t>(i)];
        const std::uint64_t b = s[static_cast<std::size_t>(j)];
        counts[(a << 32) | b] += w;
        counts[(b << 32) | a] += w;  // symmetric
      }
    }
  }
  cells_ = counts.size();
  if (counts.empty()) {
    combined_ = Embedding(vocab_, options_.dim);
    return stats;
  }

  // Flatten for deterministic shuffled iteration.
  struct Cell {
    std::uint32_t i, j;
    double x;
  };
  std::vector<Cell> cells;
  cells.reserve(counts.size());
  for (const auto& [key, x] : counts) {
    cells.push_back({static_cast<std::uint32_t>(key >> 32),
                     static_cast<std::uint32_t>(key & 0xFFFFFFFFu), x});
  }
  std::ranges::sort(cells, [](const Cell& a, const Cell& b) {
    if (a.i != b.i) return a.i < b.i;
    return a.j < b.j;
  });

  // ---- parameters and AdaGrad accumulators -------------------------------
  std::uint64_t rng = options_.seed * 0x9E3779B97F4A7C15ull + 3;
  std::vector<double> w(vocab_ * dim);
  std::vector<double> wt(vocab_ * dim);
  for (double& v : w) v = (rand_unit(rng) - 0.5) / options_.dim;
  for (double& v : wt) v = (rand_unit(rng) - 0.5) / options_.dim;
  std::vector<double> b(vocab_, 0.0);
  std::vector<double> bt(vocab_, 0.0);
  std::vector<double> gw(vocab_ * dim, 1.0);
  std::vector<double> gwt(vocab_ * dim, 1.0);
  std::vector<double> gb(vocab_, 1.0);
  std::vector<double> gbt(vocab_, 1.0);

  std::vector<std::size_t> order(cells.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  // DVCK "GLOV" checkpoints: the optimizer state is entirely local to
  // this call, so the payload writers/readers live here too. The cells
  // and their sort order are deterministic functions of the corpus and
  // are recomputed on resume rather than persisted.
  const std::uint64_t fingerprint = glove_fingerprint(vocab_, options_);
  const auto save_ckpt = [&](int epochs_done, std::uint64_t& rng_state,
                             std::uint64_t pairs) {
    runtime::save_checkpoint_file(
        control.checkpoint_path, runtime::fourcc("GLOV"),
        [&](std::ostream& out) {
          io::write_pod(out, fingerprint);
          io::write_pod(out, static_cast<std::int32_t>(epochs_done));
          io::write_pod(out, pairs);
          io::write_pod(out, rng_state);
          io::write_array(out, w.data(), w.size());
          io::write_array(out, wt.data(), wt.size());
          io::write_array(out, b.data(), b.size());
          io::write_array(out, bt.data(), bt.size());
          io::write_array(out, gw.data(), gw.size());
          io::write_array(out, gwt.data(), gwt.size());
          io::write_array(out, gb.data(), gb.size());
          io::write_array(out, gbt.data(), gbt.size());
        });
  };
  int start_epoch = 0;
  if (control.resume && !control.checkpoint_path.empty()) {
    const bool loaded = runtime::load_checkpoint_file(
        control.checkpoint_path, runtime::fourcc("GLOV"),
        [&](std::istream& in) {
          std::uint64_t fp = 0;
          std::int32_t epoch = 0;
          std::uint64_t pairs = 0;
          if (!io::read_pod(in, fp) || !io::read_pod(in, epoch) ||
              !io::read_pod(in, pairs) || !io::read_pod(in, rng)) {
            throw io::TruncatedInput("GLOV checkpoint: truncated counters");
          }
          if (fp != fingerprint) {
            throw io::FormatError(
                "GLOV checkpoint: hyper-parameter/vocabulary fingerprint "
                "mismatch — refusing to resume");
          }
          start_epoch = epoch;
          stats.pairs = pairs;
          const auto read_all = [&](std::vector<double>& v,
                                    const char* what) {
            if (io::read_array_bytes(in, v.data(), v.size()) !=
                v.size() * sizeof(double)) {
              throw io::TruncatedInput(std::string("GLOV checkpoint: "
                                                   "truncated ") +
                                       what);
            }
          };
          read_all(w, "w");
          read_all(wt, "wt");
          read_all(b, "b");
          read_all(bt, "bt");
          read_all(gw, "gw");
          read_all(gwt, "gwt");
          read_all(gb, "gb");
          read_all(gbt, "gbt");
        });
    stats.resumed = loaded;
  }
  stats.start_epoch = start_epoch;
  stats.epochs_done = start_epoch;
  const int checkpoint_every = std::max(1, control.checkpoint_every);

  const double lr = options_.learning_rate;
  const simd::Kernels& kern = simd::kernels();
  for (int epoch = start_epoch; epoch < options_.epochs; ++epoch) {
    DV_SPAN_ARG("w2v.glove.epoch", "epoch", epoch);
    DV_CHECK_CANCEL(ctx);
    // Stateless per-epoch Fisher-Yates: the permutation is a pure
    // function of (seed, epoch), so a resumed run replays the exact
    // visit order of an uninterrupted one. A running-rng in-place
    // shuffle would make epoch k's order depend on every earlier
    // epoch's — unrecoverable from an epoch-boundary checkpoint.
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::uint64_t shuffle_rng =
        options_.seed * 0x9E3779B97F4A7C15ull +
        0xA24BAED4963EE407ull * (static_cast<std::uint64_t>(epoch) + 1);
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[next_rand(shuffle_rng) % i]);
    }
    std::size_t cells_done = 0;
    for (const std::size_t idx : order) {
      if ((cells_done++ & 4095u) == 0) DV_CHECK_CANCEL(ctx);
      const Cell& cell = cells[idx];
      double* wi = w.data() + cell.i * dim;
      double* wj = wt.data() + cell.j * dim;
      const double dot_ij =
          b[cell.i] + bt[cell.j] - std::log(cell.x) + kern.dot_f64(wi, wj, dim);
      const double weight =
          cell.x < options_.x_max
              ? std::pow(cell.x / options_.x_max, options_.alpha)
              : 1.0;
      const double g = weight * dot_ij;

      // Fused pair update: grad_j reads the pre-update wi, so both rows
      // must advance together (w and wt are distinct arrays, no aliasing
      // even when cell.i == cell.j).
      kern.adagrad_pair_f64(dim, g, lr, wi, wj, gw.data() + cell.i * dim,
                            gwt.data() + cell.j * dim);
      b[cell.i] -= lr * g / std::sqrt(gb[cell.i]);
      bt[cell.j] -= lr * g / std::sqrt(gbt[cell.j]);
      gb[cell.i] += g * g;
      gbt[cell.j] += g * g;
      ++stats.pairs;
    }
    stats.epochs_done = epoch + 1;
    if (!control.checkpoint_path.empty() &&
        (epoch + 1) % checkpoint_every == 0) {
      save_ckpt(epoch + 1, rng, stats.pairs);
      ++stats.checkpoints_written;
    }
  }

  // Combined representation: w + w~ (GloVe paper, Section 4.2).
  combined_ = Embedding(vocab_, options_.dim);
  for (std::size_t i = 0; i < vocab_; ++i) {
    if ((i & 1023u) == 0) DV_CHECK_CANCEL(ctx);  // row-granular cancel
    auto row = combined_.vec(i);
    for (std::size_t d = 0; d < dim; ++d) {
      row[d] = static_cast<float>(w[i * dim + d] + wt[i * dim + d]);
    }
  }
  stats.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_start)
          .count();
  static obs::Counter& pairs_counter = obs::counter(obs::names::kW2vGlovePairs);
  pairs_counter.add(stats.pairs);
  DV_LOG_DEBUG("w2v", "glove training complete", {"cells", cells_},
               {"pairs", stats.pairs}, {"seconds", stats.seconds},
               {"epochs", options_.epochs});
  return stats;
}

}  // namespace darkvec::w2v
