#include "darkvec/w2v/skipgram.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cmath>
#include <exception>
#include <thread>

#include "darkvec/core/byteio.hpp"
#include "darkvec/core/contracts.hpp"
#include "darkvec/core/runtime/checkpoint.hpp"
#include "darkvec/core/runtime/runtime.hpp"
#include "darkvec/core/simd/simd.hpp"
#include "darkvec/obs/obs.hpp"

namespace darkvec::w2v {
namespace {

// Sigmoid lookup table, as in the original word2vec C code.
constexpr int kExpTableSize = 1000;
constexpr double kMaxExp = 6.0;

const float* exp_table() {
  static const std::vector<float> table = [] {
    std::vector<float> t(kExpTableSize);
    for (int i = 0; i < kExpTableSize; ++i) {
      const double x =
          (static_cast<double>(i) / kExpTableSize * 2.0 - 1.0) * kMaxExp;
      const double e = std::exp(x);
      t[static_cast<std::size_t>(i)] = static_cast<float>(e / (e + 1.0));
    }
    return t;
  }();
  return table.data();
}

inline std::uint64_t next_rand(std::uint64_t& state) {
  // SplitMix64 step; fast and adequate for sampling decisions.
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

inline double rand_unit(std::uint64_t& state) {
  return static_cast<double>(next_rand(state) >> 11) * 0x1.0p-53;
}

// FNV-1a over the hyper-parameters that make checkpoints compatible: a
// resume under a different configuration would silently blend two
// optimization problems, so the trainer rejects it instead.
std::uint64_t sgns_fingerprint(std::size_t vocab,
                               const SkipGramOptions& o) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFFu;
      h *= 1099511628211ull;
    }
  };
  mix(vocab);
  mix(static_cast<std::uint64_t>(o.dim));
  mix(static_cast<std::uint64_t>(o.window));
  mix(static_cast<std::uint64_t>(o.negative));
  mix(static_cast<std::uint64_t>(o.epochs));
  mix(o.cbow ? 1 : 0);
  mix(o.hierarchical_softmax ? 2 : 0);
  mix(std::bit_cast<std::uint64_t>(o.alpha));
  mix(std::bit_cast<std::uint64_t>(o.min_alpha));
  mix(std::bit_cast<std::uint64_t>(o.subsample));
  mix(o.dynamic_window ? 4 : 0);
  mix(o.seed);
  return h;
}

}  // namespace

SkipGramModel::SkipGramModel(std::size_t vocab_size, SkipGramOptions options)
    : vocab_(vocab_size),
      options_(options),
      syn0_(vocab_size, options.dim),
      syn1neg_(vocab_size * static_cast<std::size_t>(options.dim), 0.0f) {
  DV_PRECONDITION(options.dim > 0, "SkipGram: dim must be positive");
  DV_PRECONDITION(options.window > 0, "SkipGram: window must be positive");
  DV_PRECONDITION(!(options.cbow && options.hierarchical_softmax),
                  "SkipGram: CBOW with hierarchical softmax is not "
                  "implemented");
  std::uint64_t rng = options.seed * 0x9E3779B97F4A7C15ull + 1;
  for (std::size_t i = 0; i < vocab_size; ++i) {
    auto row = syn0_.vec(i);
    for (float& v : row) {
      v = static_cast<float>((rand_unit(rng) - 0.5) / options.dim);
    }
  }
}

void SkipGramModel::build_unigram_table(
    const std::vector<std::uint64_t>& counts) {
  if (vocab_ == 0) {
    // No words to sample: leave the table empty rather than filling a
    // megabyte of out-of-range word-0 ids. Training paths return before
    // drawing negatives when the corpus is empty.
    unigram_table_.clear();
    return;
  }
  const std::size_t table_size = std::clamp<std::size_t>(
      vocab_ * 64, std::size_t{1} << 20, std::size_t{1} << 24);
  unigram_table_.assign(table_size, 0);
  double total_pow = 0;
  for (const std::uint64_t c : counts) {
    total_pow += std::pow(static_cast<double>(c), 0.75);
  }
  if (total_pow <= 0) {
    // Degenerate corpus (all counts zero): uniform table.
    for (std::size_t i = 0; i < table_size; ++i) {
      unigram_table_[i] = static_cast<std::uint32_t>(i % vocab_);
    }
    return;
  }
  std::size_t word = 0;
  double cumulative =
      std::pow(static_cast<double>(counts[0]), 0.75) / total_pow;
  for (std::size_t i = 0; i < table_size; ++i) {
    unigram_table_[i] = static_cast<std::uint32_t>(word);
    if (static_cast<double>(i + 1) / static_cast<double>(table_size) >
        cumulative) {
      if (word + 1 < vocab_) {
        ++word;
        cumulative +=
            std::pow(static_cast<double>(counts[word]), 0.75) / total_pow;
      }
    }
  }
}

void SkipGramModel::train_pair(std::uint32_t input, std::uint32_t output,
                               float alpha, std::uint64_t& rng_state,
                               float* neu1e) {
  const auto n = static_cast<std::size_t>(options_.dim);
  const simd::Kernels& kern = simd::kernels();
  float* in = syn0_.vec(input).data();
  std::fill(neu1e, neu1e + n, 0.0f);
  for (int d = 0; d <= options_.negative; ++d) {
    std::uint32_t target;
    float label;
    if (d == 0) {
      target = output;
      label = 1.0f;
    } else {
      target = unigram_table_[next_rand(rng_state) % unigram_table_.size()];
      if (target == output) continue;
      label = 0.0f;
    }
    float* out = syn1neg_.data() + static_cast<std::size_t>(target) * n;
    const double f = kern.dot_f32(in, out, n);
    float g;
    if (f > kMaxExp) {
      g = (label - 1.0f) * alpha;
    } else if (f < -kMaxExp) {
      g = label * alpha;
    } else {
      const int idx = static_cast<int>((f + kMaxExp) *
                                       (kExpTableSize / kMaxExp / 2.0));
      g = (label - exp_table()[idx]) * alpha;
    }
    if (g == 0.0f) continue;
    kern.axpy_f32(n, g, out, neu1e);
    kern.axpy_f32(n, g, in, out);
  }
  // a = 1.0f: 1.0f * x rounds exactly to x, so this is `in[k] += neu1e[k]`.
  kern.axpy_f32(n, 1.0f, neu1e, in);
}

void SkipGramModel::build_huffman_tree(
    const std::vector<std::uint64_t>& counts) {
  const std::size_t v = vocab_;
  hs_code_.assign(v, {});
  hs_point_.assign(v, {});
  if (v < 2) {
    syn1hs_.clear();
    return;
  }
  // Nodes 0..v-1 are leaves, v..2v-2 inner nodes.
  const std::size_t total = 2 * v - 1;
  std::vector<std::uint64_t> count(total, 0);
  std::vector<std::uint32_t> parent(total, 0);
  std::vector<std::uint8_t> binary(total, 0);
  for (std::size_t i = 0; i < v; ++i) count[i] = counts[i];

  // Min-heap of (count, node); deterministic tie-break on node id.
  const auto cmp = [&](std::size_t a, std::size_t b) {
    if (count[a] != count[b]) return count[a] > count[b];
    return a > b;
  };
  std::vector<std::size_t> heap(v);
  for (std::size_t i = 0; i < v; ++i) heap[i] = i;
  std::make_heap(heap.begin(), heap.end(), cmp);

  std::size_t next_inner = v;
  while (heap.size() > 1) {
    std::pop_heap(heap.begin(), heap.end(), cmp);
    const std::size_t a = heap.back();
    heap.pop_back();
    std::pop_heap(heap.begin(), heap.end(), cmp);
    const std::size_t b = heap.back();
    heap.pop_back();
    const std::size_t m = next_inner++;
    count[m] = count[a] + count[b];
    parent[a] = static_cast<std::uint32_t>(m);
    parent[b] = static_cast<std::uint32_t>(m);
    binary[b] = 1;
    heap.push_back(m);
    std::push_heap(heap.begin(), heap.end(), cmp);
  }
  const std::size_t root = heap.front();

  syn1hs_.assign((v - 1) * static_cast<std::size_t>(options_.dim), 0.0f);
  for (std::size_t leaf = 0; leaf < v; ++leaf) {
    std::vector<std::uint8_t> code;
    std::vector<std::uint32_t> point;
    std::size_t node = leaf;
    while (node != root) {
      code.push_back(binary[node]);
      point.push_back(parent[node] - static_cast<std::uint32_t>(v));
      node = parent[node];
    }
    hs_code_[leaf] = std::move(code);
    hs_point_[leaf] = std::move(point);
  }
}

void SkipGramModel::train_pair_hs(std::uint32_t input, std::uint32_t output,
                                  float alpha, float* neu1e) {
  const auto n = static_cast<std::size_t>(options_.dim);
  const simd::Kernels& kern = simd::kernels();
  float* in = syn0_.vec(input).data();
  std::fill(neu1e, neu1e + n, 0.0f);
  const auto& code = hs_code_[output];
  const auto& point = hs_point_[output];
  for (std::size_t b = 0; b < code.size(); ++b) {
    float* out = syn1hs_.data() + static_cast<std::size_t>(point[b]) * n;
    const double f = kern.dot_f32(in, out, n);
    if (f <= -kMaxExp || f >= kMaxExp) {
      // Saturated: gradient (label - sigmoid) is ~0 or ±1; follow
      // word2vec.c and skip the update entirely.
      continue;
    }
    const int idx = static_cast<int>((f + kMaxExp) *
                                     (kExpTableSize / kMaxExp / 2.0));
    const float g =
        (1.0f - static_cast<float>(code[b]) - exp_table()[idx]) * alpha;
    kern.axpy_f32(n, g, out, neu1e);
    kern.axpy_f32(n, g, in, out);
  }
  kern.axpy_f32(n, 1.0f, neu1e, in);
}

void SkipGramModel::train_cbow(std::span<const std::uint32_t> context,
                               std::uint32_t center, float alpha,
                               std::uint64_t& rng_state, float* neu1,
                               float* neu1e) {
  const auto n = static_cast<std::size_t>(options_.dim);
  const simd::Kernels& kern = simd::kernels();
  std::fill(neu1, neu1 + n, 0.0f);
  std::fill(neu1e, neu1e + n, 0.0f);
  for (const std::uint32_t w : context) {
    kern.axpy_f32(n, 1.0f, syn0_.vec(w).data(), neu1);
  }
  // y = inv*y + 0*y: the ±0 terms share y's sign, so this is exactly the
  // historical `neu1[k] *= inv`.
  const float inv = 1.0f / static_cast<float>(context.size());
  kern.scale_add_f32(n, inv, neu1, 0.0f, neu1);

  for (int d = 0; d <= options_.negative; ++d) {
    std::uint32_t target;
    float label;
    if (d == 0) {
      target = center;
      label = 1.0f;
    } else {
      target = unigram_table_[next_rand(rng_state) % unigram_table_.size()];
      if (target == center) continue;
      label = 0.0f;
    }
    float* out = syn1neg_.data() + static_cast<std::size_t>(target) * n;
    const double f = kern.dot_f32(neu1, out, n);
    float g;
    if (f > kMaxExp) {
      g = (label - 1.0f) * alpha;
    } else if (f < -kMaxExp) {
      g = label * alpha;
    } else {
      const int idx = static_cast<int>((f + kMaxExp) *
                                       (kExpTableSize / kMaxExp / 2.0));
      g = (label - exp_table()[idx]) * alpha;
    }
    if (g == 0.0f) continue;
    kern.axpy_f32(n, g, out, neu1e);
    kern.axpy_f32(n, g, neu1, out);
  }
  for (const std::uint32_t w : context) {
    kern.axpy_f32(n, 1.0f, neu1e, syn0_.vec(w).data());
  }
}

void SkipGramModel::save_train_checkpoint(const std::string& path,
                                          int epochs_done,
                                          std::uint64_t processed,
                                          std::uint64_t pairs) {
  runtime::save_checkpoint_file(
      path, runtime::fourcc("SGNS"), [&](std::ostream& out) {
        io::write_pod(out, sgns_fingerprint(vocab_, options_));
        io::write_pod(out, static_cast<std::int32_t>(epochs_done));
        io::write_pod(out, processed);
        io::write_pod(out, pairs);
        io::write_array(out, syn0_.data().data(), syn0_.data().size());
        io::write_array(out, syn1neg_.data(), syn1neg_.size());
        const std::uint64_t hs = syn1hs_.size();
        io::write_pod(out, hs);
        io::write_array(out, syn1hs_.data(), syn1hs_.size());
      });
}

bool SkipGramModel::load_train_checkpoint(const std::string& path,
                                          int* epochs_done,
                                          std::uint64_t* processed,
                                          std::uint64_t* pairs) {
  return runtime::load_checkpoint_file(
      path, runtime::fourcc("SGNS"), [&](std::istream& in) {
        std::uint64_t fp = 0;
        std::int32_t epoch = 0;
        if (!io::read_pod(in, fp) || !io::read_pod(in, epoch) ||
            !io::read_pod(in, *processed) || !io::read_pod(in, *pairs)) {
          throw io::TruncatedInput("SGNS checkpoint: truncated counters");
        }
        if (fp != sgns_fingerprint(vocab_, options_)) {
          throw io::FormatError(
              "SGNS checkpoint: hyper-parameter/vocabulary fingerprint "
              "mismatch — refusing to resume");
        }
        *epochs_done = epoch;
        const std::size_t dim = static_cast<std::size_t>(options_.dim);
        std::vector<float> w0(vocab_ * dim);
        if (io::read_array_bytes(in, w0.data(), w0.size()) !=
            w0.size() * sizeof(float)) {
          throw io::TruncatedInput("SGNS checkpoint: truncated syn0");
        }
        syn0_ = Embedding(std::move(w0), options_.dim);
        if (io::read_array_bytes(in, syn1neg_.data(), syn1neg_.size()) !=
            syn1neg_.size() * sizeof(float)) {
          throw io::TruncatedInput("SGNS checkpoint: truncated syn1neg");
        }
        std::uint64_t hs = 0;
        if (!io::read_pod(in, hs) || hs != syn1hs_.size()) {
          throw io::FormatError("SGNS checkpoint: syn1hs size mismatch");
        }
        if (io::read_array_bytes(in, syn1hs_.data(), syn1hs_.size()) !=
            syn1hs_.size() * sizeof(float)) {
          throw io::TruncatedInput("SGNS checkpoint: truncated syn1hs");
        }
      });
}

TrainStats SkipGramModel::train(std::span<const Sentence> sentences) {
  return train(sentences, TrainControl{});
}

TrainStats SkipGramModel::train(std::span<const Sentence> sentences,
                                const TrainControl& control) {
  const auto t_start = std::chrono::steady_clock::now();
  DV_SPAN_ARG("w2v.train", "vocab", vocab_);
  runtime::RunContext* const ctx = runtime::current();
  // Held for the whole session: the weights below are guarded by it, and
  // the Hogwild workers assert this thread holds it on their behalf.
  core::MutexLock session(train_mu_);
  TrainStats stats;

  std::vector<std::uint64_t> counts(vocab_, 0);
  std::uint64_t total_tokens = 0;
  for (const Sentence& s : sentences) {
    for (const std::uint32_t w : s) {
      DV_PRECONDITION(w < vocab_, "SkipGram: every word id is < vocab_size");
      ++counts[w];
      ++total_tokens;
    }
  }
  if (total_tokens == 0) return stats;
  if (options_.hierarchical_softmax) {
    build_huffman_tree(counts);
  } else {
    build_unigram_table(counts);
  }

  // Subsampling keep probabilities (word2vec formula).
  std::vector<float> keep(vocab_, 1.0f);
  if (options_.subsample > 0) {
    const double t = options_.subsample;
    for (std::size_t w = 0; w < vocab_; ++w) {
      if (counts[w] == 0) continue;
      const double f =
          static_cast<double>(counts[w]) / static_cast<double>(total_tokens);
      keep[w] = static_cast<float>(
          std::min(1.0, (std::sqrt(f / t) + 1.0) * (t / f)));
    }
  }

  // Resume after the tables above exist: the restore overwrites the
  // weight matrices (the tables themselves are deterministic functions
  // of the corpus and need no persistence).
  int start_epoch = 0;
  std::uint64_t processed_init = 0;
  std::uint64_t pairs_init = 0;
  if (control.resume && !control.checkpoint_path.empty() &&
      load_train_checkpoint(control.checkpoint_path, &start_epoch,
                            &processed_init, &pairs_init)) {
    stats.resumed = true;
    DV_LOG_INFO("w2v", "resumed from checkpoint",
                {"path", control.checkpoint_path},
                {"epochs_done", start_epoch});
  }
  stats.start_epoch = start_epoch;
  stats.epochs_done = start_epoch;

  const std::uint64_t total_work =
      total_tokens * static_cast<std::uint64_t>(options_.epochs) + 1;
  std::atomic<std::uint64_t> processed{processed_init};
  std::atomic<std::uint64_t> pairs_total{pairs_init};

  // Cooperative-stop plumbing: workers are raw std::threads (Hogwild),
  // so a runtime::Cancelled must not escape them. The first thread that
  // trips stores the exception and raises stop; everyone else drains at
  // the next sentence boundary and the coordinator rethrows after join.
  std::atomic<bool> stop{false};
  std::atomic<bool> error_claimed{false};
  std::exception_ptr first_error;  // claim via error_claimed; read after join

  const auto worker = [&](int tid, std::size_t lo, std::size_t hi,
                          int epoch) {
    // Externally synchronized: the thread running train() holds train_mu_
    // for the whole session; within it, weight writes are Hogwild-racy by
    // design (lock-free SGD, word2vec.c style).
    train_mu_.assert_held();
    DV_SPAN_ARG("w2v.shard", "tid", tid);
    std::vector<float> neu1e(static_cast<std::size_t>(options_.dim));
    std::vector<float> neu1(static_cast<std::size_t>(options_.dim));
    std::vector<std::uint32_t> context;
    std::uint64_t rng = options_.seed * 0xD1342543DE82EF95ull +
                        static_cast<std::uint64_t>(tid) * 0x9E3779B9ull +
                        static_cast<std::uint64_t>(epoch) + 17;
    std::uint64_t local_pairs = 0;
    std::vector<std::uint32_t> sen;
    try {
    for (std::size_t si = lo; si < hi; ++si) {
      if (stop.load(std::memory_order_relaxed)) break;
      DV_CHECK_CANCEL(ctx);
      const Sentence& raw = sentences[si];
      sen.clear();
      for (const std::uint32_t w : raw) {
        if (keep[w] >= 1.0f || rand_unit(rng) < keep[w]) sen.push_back(w);
      }
      const std::uint64_t done = processed.fetch_add(
          raw.size(), std::memory_order_relaxed);
      const double frac =
          static_cast<double>(done) / static_cast<double>(total_work);
      const float alpha = static_cast<float>(
          std::max(options_.min_alpha, options_.alpha * (1.0 - frac)));
      const auto n = static_cast<std::int64_t>(sen.size());
      for (std::int64_t i = 0; i < n; ++i) {
        const std::int64_t b =
            options_.dynamic_window
                ? 1 + static_cast<std::int64_t>(
                          next_rand(rng) %
                          static_cast<std::uint64_t>(options_.window))
                : options_.window;
        const std::int64_t jlo = std::max<std::int64_t>(0, i - b);
        const std::int64_t jhi = std::min<std::int64_t>(n - 1, i + b);
        if (options_.cbow) {
          context.clear();
          for (std::int64_t j = jlo; j <= jhi; ++j) {
            if (j != i) context.push_back(sen[static_cast<std::size_t>(j)]);
          }
          if (!context.empty()) {
            train_cbow(context, sen[static_cast<std::size_t>(i)], alpha,
                       rng, neu1.data(), neu1e.data());
            local_pairs += context.size();
          }
          continue;
        }
        for (std::int64_t j = jlo; j <= jhi; ++j) {
          if (j == i) continue;
          if (options_.hierarchical_softmax) {
            train_pair_hs(sen[static_cast<std::size_t>(i)],
                          sen[static_cast<std::size_t>(j)], alpha,
                          neu1e.data());
          } else {
            train_pair(sen[static_cast<std::size_t>(i)],
                       sen[static_cast<std::size_t>(j)], alpha, rng,
                       neu1e.data());
          }
          ++local_pairs;
        }
      }
    }
    } catch (...) {
      if (!error_claimed.exchange(true)) {
        first_error = std::current_exception();
      }
      stop.store(true, std::memory_order_relaxed);
    }
    pairs_total.fetch_add(local_pairs, std::memory_order_relaxed);
  };

  static obs::Histogram& epoch_hist = obs::histogram(
      "w2v.epoch_seconds",
      std::initializer_list<double>{0.01, 0.1, 1.0, 10.0, 60.0, 600.0});

  const int threads = std::max(1, options_.threads);
  const int checkpoint_every = std::max(1, control.checkpoint_every);
  for (int epoch = start_epoch; epoch < options_.epochs; ++epoch) {
    const auto epoch_start = std::chrono::steady_clock::now();
    DV_SPAN_ARG("w2v.epoch", "epoch", epoch);
    DV_CHECK_CANCEL(ctx);  // epoch-granular cancel before spawning workers
    if (threads == 1) {
      worker(0, 0, sentences.size(), epoch);
    } else {
      std::vector<std::thread> pool;
      pool.reserve(static_cast<std::size_t>(threads));
      const std::size_t chunk =
          (sentences.size() + static_cast<std::size_t>(threads) - 1) /
          static_cast<std::size_t>(threads);
      for (int t = 0; t < threads; ++t) {
        const std::size_t lo =
            std::min(sentences.size(), static_cast<std::size_t>(t) * chunk);
        const std::size_t hi = std::min(sentences.size(), lo + chunk);
        pool.emplace_back(worker, t, lo, hi, epoch);
      }
      for (std::thread& th : pool) th.join();
    }
    if (stop.load(std::memory_order_relaxed)) break;  // interrupted epoch
    stats.epochs_done = epoch + 1;
    if (!control.checkpoint_path.empty() &&
        (epoch + 1) % checkpoint_every == 0) {
      // Epoch boundary: the weights, the RNG recipe (pure function of
      // seed/thread/epoch) and the processed counter fully determine the
      // rest of the run, so this snapshot resumes bit-exactly.
      save_train_checkpoint(control.checkpoint_path, epoch + 1,
                            processed.load(), pairs_total.load());
      ++stats.checkpoints_written;
    }
    const double epoch_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      epoch_start)
            .count();
    epoch_hist.observe(epoch_seconds);
    // Decayed learning rate at the end of this epoch (what the next
    // token would train with) and epoch throughput.
    const double frac = static_cast<double>(processed.load()) /
                        static_cast<double>(total_work);
    const double alpha_now =
        std::max(options_.min_alpha, options_.alpha * (1.0 - frac));
    DV_LOG_DEBUG("w2v", "epoch done", {"epoch", epoch},
                 {"tokens_per_s", epoch_seconds > 0
                                      ? static_cast<double>(total_tokens) /
                                            epoch_seconds
                                      : 0.0},
                 {"alpha", alpha_now}, {"threads", threads});
  }

  if (first_error != nullptr) std::rethrow_exception(first_error);

  static obs::Counter& tokens_counter = obs::counter(obs::names::kW2vTokens);
  static obs::Counter& pairs_counter = obs::counter(obs::names::kW2vPairs);
  stats.tokens = processed.load();
  stats.pairs = pairs_total.load();
  pairs_trained_ += stats.pairs;
  tokens_counter.add(stats.tokens);
  pairs_counter.add(stats.pairs);
  stats.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_start)
          .count();
  DV_LOG_INFO("w2v", "training complete", {"tokens", stats.tokens},
              {"pairs", stats.pairs}, {"seconds", stats.seconds},
              {"epochs", options_.epochs}, {"vocab", vocab_});
  return stats;
}

TrainStats SkipGramModel::train_pairs(
    std::span<const std::pair<std::uint32_t, std::uint32_t>> pairs) {
  const auto t_start = std::chrono::steady_clock::now();
  core::MutexLock session(train_mu_);
  TrainStats stats;
  if (pairs.empty()) return stats;

  std::vector<std::uint64_t> counts(vocab_, 0);
  for (const auto& [in, out] : pairs) {
    DV_PRECONDITION(in < vocab_ && out < vocab_,
                    "SkipGram: every word id is < vocab_size");
    ++counts[out];
  }
  build_unigram_table(counts);

  const std::uint64_t total_work =
      pairs.size() * static_cast<std::uint64_t>(options_.epochs) + 1;
  std::vector<float> neu1e(static_cast<std::size_t>(options_.dim));
  std::uint64_t rng = options_.seed * 0xD1342543DE82EF95ull + 29;
  std::uint64_t done = 0;
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    for (const auto& [in, out] : pairs) {
      if ((done & 4095u) == 0) DV_CHECKPOINT();
      const double frac =
          static_cast<double>(done) / static_cast<double>(total_work);
      const float alpha = static_cast<float>(
          std::max(options_.min_alpha, options_.alpha * (1.0 - frac)));
      train_pair(in, out, alpha, rng, neu1e.data());
      ++done;
    }
  }
  stats.tokens = done;
  stats.pairs = done;
  pairs_trained_ += done;
  stats.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_start)
          .count();
  return stats;
}

}  // namespace darkvec::w2v
