#include "darkvec/core/streaming.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "darkvec/core/byteio.hpp"
#include "darkvec/core/runtime/checkpoint.hpp"
#include "darkvec/obs/obs.hpp"

namespace darkvec {
namespace {

constexpr std::uint32_t kStreamKind = runtime::fourcc("STRM");

/// Alignment anchor persisted across a kill: the previous window's
/// sender list and (aligned) embedding. align_embeddings only consults
/// Corpus::words / id_of, so a corpus rebuilt from the word list alone
/// is a faithful anchor.
struct Anchor {
  corpus::Corpus corpus;
  w2v::Embedding embedding;
  bool valid = false;
};

void save_stream_checkpoint(const std::string& path, std::int64_t next_end,
                            bool stream_complete,
                            std::uint64_t snapshots_done,
                            const Anchor& anchor) {
  runtime::save_checkpoint_file(path, kStreamKind, [&](std::ostream& out) {
    io::write_pod(out, next_end);
    io::write_pod(out, static_cast<std::uint8_t>(stream_complete ? 1 : 0));
    io::write_pod(out, snapshots_done);
    io::write_pod(out, static_cast<std::uint8_t>(anchor.valid ? 1 : 0));
    if (anchor.valid) {
      const auto count =
          static_cast<std::uint64_t>(anchor.corpus.words.size());
      io::write_pod(out, count);
      io::write_array(out, anchor.corpus.words.data(),
                      anchor.corpus.words.size());
      anchor.embedding.save(out);
    }
  });
}

bool load_stream_checkpoint(const std::string& path, std::int64_t* next_end,
                            bool* stream_complete,
                            std::uint64_t* snapshots_done, Anchor* anchor) {
  return runtime::load_checkpoint_file(
      path, kStreamKind, [&](std::istream& in) {
        std::uint8_t complete = 0;
        std::uint8_t has_anchor = 0;
        std::uint64_t count = 0;
        if (!io::read_pod(in, *next_end) || !io::read_pod(in, complete) ||
            !io::read_pod(in, *snapshots_done) ||
            !io::read_pod(in, has_anchor)) {
          throw io::TruncatedInput("streaming checkpoint: truncated cursor");
        }
        *stream_complete = complete != 0;
        anchor->valid = false;
        if (has_anchor == 0) return;
        if (!io::read_pod(in, count)) {
          throw io::TruncatedInput(
              "streaming checkpoint: truncated anchor size");
        }
        if (count > io::IoLimits{}.max_records) {
          throw io::ResourceLimit(
              "streaming checkpoint: anchor declares " +
              std::to_string(count) + " words, cap is " +
              std::to_string(io::IoLimits{}.max_records));
        }
        anchor->corpus = corpus::Corpus{};
        anchor->corpus.words.resize(count);
        const std::size_t want = count * sizeof(net::IPv4);
        if (io::read_array_bytes(in, anchor->corpus.words.data(), count) !=
            want) {
          throw io::TruncatedInput(
              "streaming checkpoint: truncated anchor words");
        }
        anchor->corpus.ids.reserve(count);
        for (std::size_t i = 0; i < anchor->corpus.words.size(); ++i) {
          anchor->corpus.ids.emplace(anchor->corpus.words[i],
                                     static_cast<corpus::WordId>(i));
        }
        anchor->embedding = w2v::Embedding::load(in);
        anchor->valid = true;
      });
}

}  // namespace

std::vector<StreamSnapshot> run_streaming(const net::Trace& trace,
                                          const StreamingConfig& config) {
  return run_streaming_monitored(trace, config).snapshots;
}

StreamingResult run_streaming_monitored(const net::Trace& trace,
                                        const StreamingConfig& config) {
  StreamingResult result;
  if (trace.empty() || config.window_seconds <= 0 ||
      config.step_seconds <= 0) {
    return result;
  }
  const std::int64_t t0 = trace[0].ts;
  const std::int64_t t_last = trace[trace.size() - 1].ts;
  runtime::RunContext* const ctx = runtime::current();

  // The previous window's state: snapshots store aligned embeddings, so
  // anchoring to it composes all rotations into the first window's space.
  Anchor anchor;

  // Windows emitted across *all* runs of this stream (the checkpoint
  // carries the count forward through kills).
  std::uint64_t snapshots_done = 0;

  // Model-health monitor: fed every window in order; drift reports land
  // in result.health. Observe time is accumulated separately from model
  // time so the <2% overhead gate (bench_micro_health) can measure it.
  std::optional<obs::HealthMonitor> health;
  if (config.health) health.emplace(config.health_thresholds);
  const auto observe_health = [&](const obs::HealthInput& input) {
    if (!health) return;
    const auto t_obs = std::chrono::steady_clock::now();
    result.health.push_back(health->observe(input));
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t_obs;
    static obs::Gauge& observe_gauge =
        obs::gauge(obs::names::kHealthObserveSeconds);
    observe_gauge.add(dt.count());
  };

  std::int64_t end = t0 + config.window_seconds;
  if (config.resume && !config.checkpoint_path.empty()) {
    std::int64_t next_end = 0;
    bool stream_complete = false;
    if (load_stream_checkpoint(config.checkpoint_path, &next_end,
                               &stream_complete, &snapshots_done, &anchor)) {
      result.resumed = true;
      result.prior_snapshots = snapshots_done;
      DV_LOG_INFO("stream", "resumed from checkpoint",
                  {"path", config.checkpoint_path}, {"next_end", next_end},
                  {"prior_snapshots", snapshots_done},
                  {"complete", stream_complete});
      if (stream_complete) return result;  // nothing left to do
      end = next_end;
    }
  }

  // Emits a placeholder for a window that produced no model. The window
  // is always advanced by the caller, so a run of quiet or broken
  // windows can never stall the stream. Degraded windows are always
  // logged and counted, even when no placeholder snapshot is recorded —
  // silently dropped windows are exactly what an operator needs to see.
  const auto record_degraded = [&](std::int64_t window_end,
                                   std::string reason) {
    static obs::Counter& degraded_counter =
        obs::counter(obs::names::kStreamingDegradedWindows);
    degraded_counter.add(1);
    DV_LOG_WARN("stream", "degraded window",
                {"window_start", window_end - config.window_seconds},
                {"window_end", window_end}, {"reason", reason});
    obs::HealthInput input;
    input.window_start = window_end - config.window_seconds;
    input.window_end = window_end;
    input.degraded = true;
    input.degraded_reason = reason;
    observe_health(input);
    if (!config.record_degraded) return;
    StreamSnapshot snapshot;
    snapshot.window_start = window_end - config.window_seconds;
    snapshot.window_end = window_end;
    snapshot.degraded = true;
    snapshot.degraded_reason = std::move(reason);
    result.snapshots.push_back(std::move(snapshot));
  };

  // Window ends advance by `step` until the trace end is covered; the
  // final window may reach past the last packet.
  bool done = false;
  while (!done) {
    done = end > t_last;
    DV_SPAN_ARG("stream.window", "window_end", end);
    const auto t_window = std::chrono::steady_clock::now();

    // A fit/cluster failure degrades this window instead of killing the
    // stream. An *interruption* (cancel, strict deadline, budget) is not
    // a window failure: it must be caught before std::exception or a ^C
    // would read as an endless run of degraded windows. It ends the
    // stream, keeping everything already built.
    try {
      DV_CHECK_CANCEL(ctx);
      const net::Trace window =
          trace.slice(end - config.window_seconds, end);
      if (window.empty()) {
        record_degraded(end, "no packets in window");
      } else {
        DarkVec dv(config.darkvec);
        dv.fit(window);
        if (dv.corpus().vocabulary_size() == 0) {
          record_degraded(end, "no senders above the activity threshold");
        } else {
          StreamSnapshot snapshot;
          snapshot.window_start = end - config.window_seconds;
          snapshot.window_end = end;
          snapshot.senders = dv.corpus().words;
          snapshot.clustering = dv.cluster(config.k_prime);

          w2v::Embedding embedding = dv.embedding().normalized();
          if (config.align && anchor.valid) {
            try {
              const Alignment alignment =
                  align_embeddings(dv.corpus(), embedding, anchor.corpus,
                                   anchor.embedding);
              embedding = apply_alignment(alignment, embedding);
              snapshot.alignment_similarity = alignment.anchor_similarity;
            } catch (const std::invalid_argument&) {
              // No shared senders: keep the raw space.
              snapshot.alignment_similarity = 0;
            }
          }
          snapshot.embedding = std::move(embedding);

          // The *aligned* embedding becomes the next anchor target, so
          // rotations compose into the first snapshot's space.
          anchor.corpus = dv.corpus();
          anchor.embedding = snapshot.embedding;
          anchor.valid = true;

          static obs::Counter& snapshots_counter =
              obs::counter(obs::names::kStreamingSnapshots);
          snapshots_counter.add(1);
          obs::gauge(obs::names::kStreamingAlignmentSimilarity)
              .set(snapshot.alignment_similarity);
          DV_LOG_INFO("stream", "snapshot",
                      {"window_start", snapshot.window_start},
                      {"window_end", snapshot.window_end},
                      {"senders", snapshot.senders.size()},
                      {"clusters", snapshot.clustering.count},
                      {"alignment_similarity",
                       snapshot.alignment_similarity});

          result.snapshots.push_back(std::move(snapshot));

          // Model work is done: book its time before the (separately
          // accounted) health probes run.
          obs::gauge(obs::names::kStreamingWindowSeconds)
              .add(std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t_window)
                       .count());

          const StreamSnapshot& snap = result.snapshots.back();
          obs::HealthInput input;
          input.window_start = snap.window_start;
          input.window_end = snap.window_end;
          input.senders = snap.senders;
          input.embedding = &snap.embedding;
          input.assignment = snap.clustering.assignment;
          input.modularity = snap.clustering.modularity;
          // With alignment off, windows share no common space and the
          // Procrustes residual is meaningless — report identity.
          input.alignment_similarity =
              config.align ? snap.alignment_similarity : 1.0;
          observe_health(input);
        }
      }
    } catch (const runtime::Interrupted& e) {
      result.completed = false;
      result.abort_reason = e.what();
      result.stop_reason =
          ctx != nullptr ? ctx->stop_reason() : runtime::StopReason::kNone;
      DV_LOG_WARN("stream", "stream interrupted", {"window_end", end},
                  {"reason", result.abort_reason});
      break;
    } catch (const std::exception& e) {
      result.failures.push_back(
          {end - config.window_seconds, end,
           std::string("window failed: ") + e.what()});
      record_degraded(end, std::string("window failed: ") + e.what());
    }

    // Persist the cursor after every processed window — completed or
    // degraded — so a kill resumes at the next one, never re-running
    // finished work or skipping a window.
    if (!config.checkpoint_path.empty()) {
      // Degraded placeholders count as emitted: prior_snapshots must
      // match what the earlier run actually returned.
      save_stream_checkpoint(config.checkpoint_path,
                             end + config.step_seconds, done,
                             snapshots_done + result.snapshots.size(),
                             anchor);
    }
    end += config.step_seconds;
  }
  return result;
}

std::vector<GroupTrack> track_group(std::span<const StreamSnapshot> snapshots,
                                    std::span<const net::IPv4> group) {
  const std::unordered_set<net::IPv4> members(group.begin(), group.end());
  std::vector<GroupTrack> tracks;
  tracks.reserve(snapshots.size());
  for (const StreamSnapshot& snapshot : snapshots) {
    GroupTrack track;
    track.window_end = snapshot.window_end;

    std::unordered_map<int, std::size_t> member_clusters;
    std::unordered_map<int, std::size_t> cluster_sizes;
    for (std::size_t i = 0; i < snapshot.senders.size(); ++i) {
      const int cluster = snapshot.clustering.assignment[i];
      ++cluster_sizes[cluster];
      if (members.contains(snapshot.senders[i])) {
        ++track.present;
        ++member_clusters[cluster];
      }
    }
    // Ties break toward the smallest cluster id: hash iteration order
    // must not leak into which cluster_size gets reported.
    int best_cluster = -1;
    for (const auto& [cluster, count] : member_clusters) {
      if (count > track.clustered_together ||
          (count == track.clustered_together && best_cluster >= 0 &&
           cluster < best_cluster)) {
        track.clustered_together = count;
        best_cluster = cluster;
      }
    }
    if (best_cluster >= 0) track.cluster_size = cluster_sizes[best_cluster];
    tracks.push_back(track);
  }
  return tracks;
}

}  // namespace darkvec
