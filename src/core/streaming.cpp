#include "darkvec/core/streaming.hpp"

#include <algorithm>
#include <exception>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "darkvec/obs/obs.hpp"

namespace darkvec {

std::vector<StreamSnapshot> run_streaming(const net::Trace& trace,
                                          const StreamingConfig& config) {
  std::vector<StreamSnapshot> snapshots;
  if (trace.empty() || config.window_seconds <= 0 ||
      config.step_seconds <= 0) {
    return snapshots;
  }
  const std::int64_t t0 = trace[0].ts;
  const std::int64_t t_last = trace[trace.size() - 1].ts;

  const corpus::Corpus* previous_corpus = nullptr;
  const w2v::Embedding* previous_embedding = nullptr;
  // Own the previous state (snapshots store aligned embeddings).
  corpus::Corpus prev_corpus_storage;
  w2v::Embedding prev_embedding_storage;

  // Emits a placeholder for a window that produced no model. The window
  // is always advanced by the caller, so a run of quiet or broken
  // windows can never stall the stream. Degraded windows are always
  // logged and counted, even when no placeholder snapshot is recorded —
  // silently dropped windows are exactly what an operator needs to see.
  const auto record_degraded = [&](std::int64_t end, std::string reason) {
    static obs::Counter& degraded_counter =
        obs::counter("streaming.degraded_windows");
    degraded_counter.add(1);
    DV_LOG_WARN("stream", "degraded window",
                {"window_start", end - config.window_seconds},
                {"window_end", end}, {"reason", reason});
    if (!config.record_degraded) return;
    StreamSnapshot snapshot;
    snapshot.window_start = end - config.window_seconds;
    snapshot.window_end = end;
    snapshot.degraded = true;
    snapshot.degraded_reason = std::move(reason);
    snapshots.push_back(std::move(snapshot));
  };

  // Window ends advance by `step` until the trace end is covered; the
  // final window may reach past the last packet.
  std::int64_t end = t0 + config.window_seconds;
  bool done = false;
  while (!done) {
    done = end > t_last;
    DV_SPAN_ARG("stream.window", "window_end", end);
    const net::Trace window =
        trace.slice(end - config.window_seconds, end);
    if (window.empty()) {
      record_degraded(end, "no packets in window");
      end += config.step_seconds;
      continue;
    }

    // A fit/cluster failure degrades this window instead of killing the
    // stream: the snapshot records the reason and the next window starts
    // fresh against the last good anchor.
    try {
      DarkVec dv(config.darkvec);
      dv.fit(window);
      if (dv.corpus().vocabulary_size() == 0) {
        record_degraded(end, "no senders above the activity threshold");
        end += config.step_seconds;
        continue;
      }

      StreamSnapshot snapshot;
      snapshot.window_start = end - config.window_seconds;
      snapshot.window_end = end;
      snapshot.senders = dv.corpus().words;
      snapshot.clustering = dv.cluster(config.k_prime);

      w2v::Embedding embedding = dv.embedding().normalized();
      if (config.align && previous_corpus != nullptr) {
        try {
          const Alignment alignment =
              align_embeddings(dv.corpus(), embedding, *previous_corpus,
                               *previous_embedding);
          embedding = apply_alignment(alignment, embedding);
          snapshot.alignment_similarity = alignment.anchor_similarity;
        } catch (const std::invalid_argument&) {
          // No shared senders: keep the raw space.
          snapshot.alignment_similarity = 0;
        }
      }
      snapshot.embedding = std::move(embedding);

      // The *aligned* embedding becomes the next anchor target, so
      // rotations compose into the first snapshot's space.
      prev_corpus_storage = dv.corpus();
      prev_embedding_storage = snapshot.embedding;
      previous_corpus = &prev_corpus_storage;
      previous_embedding = &prev_embedding_storage;

      static obs::Counter& snapshots_counter =
          obs::counter("streaming.snapshots");
      snapshots_counter.add(1);
      obs::gauge("streaming.alignment_similarity")
          .set(snapshot.alignment_similarity);
      DV_LOG_INFO("stream", "snapshot",
                  {"window_start", snapshot.window_start},
                  {"window_end", snapshot.window_end},
                  {"senders", snapshot.senders.size()},
                  {"clusters", snapshot.clustering.count},
                  {"alignment_similarity", snapshot.alignment_similarity});

      snapshots.push_back(std::move(snapshot));
    } catch (const std::exception& e) {
      record_degraded(end, std::string("window failed: ") + e.what());
    }
    end += config.step_seconds;
  }
  return snapshots;
}

std::vector<GroupTrack> track_group(std::span<const StreamSnapshot> snapshots,
                                    std::span<const net::IPv4> group) {
  const std::unordered_set<net::IPv4> members(group.begin(), group.end());
  std::vector<GroupTrack> tracks;
  tracks.reserve(snapshots.size());
  for (const StreamSnapshot& snapshot : snapshots) {
    GroupTrack track;
    track.window_end = snapshot.window_end;

    std::unordered_map<int, std::size_t> member_clusters;
    std::unordered_map<int, std::size_t> cluster_sizes;
    for (std::size_t i = 0; i < snapshot.senders.size(); ++i) {
      const int cluster = snapshot.clustering.assignment[i];
      ++cluster_sizes[cluster];
      if (members.contains(snapshot.senders[i])) {
        ++track.present;
        ++member_clusters[cluster];
      }
    }
    int best_cluster = -1;
    for (const auto& [cluster, count] : member_clusters) {
      if (count > track.clustered_together) {
        track.clustered_together = count;
        best_cluster = cluster;
      }
    }
    if (best_cluster >= 0) track.cluster_size = cluster_sizes[best_cluster];
    tracks.push_back(track);
  }
  return tracks;
}

}  // namespace darkvec
