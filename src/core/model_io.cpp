#include "darkvec/core/model_io.hpp"

#include <charconv>
#include <cstdio>
#include <fstream>
#include <string_view>
#include <unordered_set>
#include <utility>

#include "darkvec/core/checksum.hpp"
#include "darkvec/core/contracts.hpp"
#include "darkvec/core/runtime/retry.hpp"

namespace darkvec {
namespace {

constexpr std::string_view kVocabFooterPrefix = "#crc32 ";

void write_vocab(std::ostream& out, const std::vector<net::IPv4>& senders) {
  io::Crc32 crc;
  for (const net::IPv4 ip : senders) {
    const std::string line = ip.to_string() + '\n';
    crc.update(line.data(), line.size());
    out << line;
  }
  char footer[20];
  std::snprintf(footer, sizeof(footer), "#crc32 %08x\n", crc.value());
  out << footer;
}

}  // namespace

std::int64_t SenderModel::index_of(net::IPv4 ip) const {
  core::MutexLock lock(index_mu_);
  if (index_.empty() && !senders.empty()) {
    index_.reserve(senders.size());
    // First entry wins, matching the old linear scan on duplicates.
    for (std::size_t i = 0; i < senders.size(); ++i) {
      index_.emplace(senders[i], static_cast<std::int64_t>(i));
    }
  }
  const auto it = index_.find(ip);
  return it == index_.end() ? -1 : it->second;
}

void save_model(const std::string& prefix, const SenderModel& model) {
  DV_PRECONDITION(model.senders.size() == model.embedding.size(),
                  "save_model: one vocab row per embedding row");
  // Two-phase commit: write both temporaries completely, then rename.
  // An interruption before the renames leaves any previous model intact.
  const std::string emb_path = prefix + ".emb";
  const std::string vocab_path = prefix + ".vocab";
  const std::string emb_tmp = emb_path + ".tmp";
  const std::string vocab_tmp = vocab_path + ".tmp";
  try {
    {
      std::ofstream out(emb_tmp, std::ios::binary | std::ios::trunc);
      if (!out) throw io::IoError("save_model: cannot open " + emb_tmp);
      model.embedding.save(out);
      out.flush();
      if (!out) throw io::IoError("save_model: write failed for " + emb_tmp);
    }
    {
      std::ofstream out(vocab_tmp, std::ios::trunc);
      if (!out) throw io::IoError("save_model: cannot open " + vocab_tmp);
      write_vocab(out, model.senders);
      out.flush();
      if (!out) {
        throw io::IoError("save_model: write failed for " + vocab_tmp);
      }
    }
    if (std::rename(emb_tmp.c_str(), emb_path.c_str()) != 0 ||
        std::rename(vocab_tmp.c_str(), vocab_path.c_str()) != 0) {
      throw io::IoError("save_model: rename failed for " + prefix);
    }
  } catch (...) {
    std::remove(emb_tmp.c_str());
    std::remove(vocab_tmp.c_str());
    throw;
  }
}

namespace {

SenderModel load_model_once(const std::string& prefix,
                            const io::IoPolicy& policy,
                            io::IoReport* report) {
  SenderModel model;
  model.embedding =
      w2v::Embedding::load_file(prefix + ".emb", policy, report);
  std::ifstream vocab(prefix + ".vocab");
  if (!vocab) {
    throw io::IoError("load_model: cannot open " + prefix + ".vocab");
  }

  io::Crc32 crc;
  std::unordered_set<net::IPv4> seen;
  // (row, address) per accepted vocab line; `row` counts every data line
  // so addresses stay aligned with embedding rows when some are dropped.
  std::vector<std::pair<std::size_t, net::IPv4>> accepted;
  std::size_t rows = 0;
  bool dropped_rows = false;
  bool footer_seen = false;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(vocab, line)) {
    ++line_no;
    if (line.rfind(kVocabFooterPrefix, 0) == 0) {
      std::uint32_t stored = 0;
      const char* hex = line.data() + kVocabFooterPrefix.size();
      const auto [p, ec] =
          std::from_chars(hex, line.data() + line.size(), stored, 16);
      // The report covers the model pair: checksum_verified means every
      // footer present matched, so a vocab failure overrides an .emb
      // match and a vocab match never masks an earlier .emb failure.
      if (ec != std::errc{} || p != line.data() + line.size()) {
        if (report != nullptr) {
          report->checksum_failed = true;
          report->checksum_verified = false;
        }
        io::detail::suspect_input(policy, report, line_no,
                                  "load_model: malformed vocab footer");
      } else if (stored != crc.value()) {
        if (report != nullptr) {
          report->checksum_failed = true;
          report->checksum_verified = false;
        }
        io::detail::suspect_input(policy, report, line_no,
                                  "load_model: vocab CRC32 mismatch");
      } else if (report != nullptr) {
        report->checksum_verified = !report->checksum_failed;
      }
      footer_seen = true;
      continue;
    }
    crc.update(line.data(), line.size());
    crc.update("\n", 1);
    if (line.empty()) continue;
    if (footer_seen) {
      io::detail::suspect_input(policy, report, line_no,
                                "load_model: vocab data after footer");
      continue;
    }
    const std::size_t row = rows++;
    const auto ip = net::IPv4::parse(line);
    if (!ip) {
      io::detail::bad_record(policy, report, line_no,
                             "load_model: bad address at vocab line " +
                                 std::to_string(line_no));
      dropped_rows = true;
      continue;
    }
    if (!seen.insert(*ip).second) {
      io::detail::bad_record(policy, report, line_no,
                             "load_model: duplicate address " +
                                 ip->to_string() + " at vocab line " +
                                 std::to_string(line_no));
      dropped_rows = true;
      continue;
    }
    accepted.emplace_back(row, *ip);
  }

  const std::size_t emb_rows = model.embedding.size();
  if (rows != emb_rows) {
    const std::string message =
        "load_model: vocab rows (" + std::to_string(rows) +
        ") do not match embedding rows (" + std::to_string(emb_rows) + ")";
    if (!policy.lenient()) throw io::FormatError(message);
    io::detail::suspect_input(policy, report, 0, message);
  }
  if (dropped_rows || rows != emb_rows) {
    // Compact: keep each accepted address together with its embedding
    // row, so row i of the result is still the vector of senders[i].
    std::vector<net::IPv4> kept;
    std::vector<float> data;
    const int dim = model.embedding.dim();
    data.reserve(accepted.size() * static_cast<std::size_t>(dim));
    for (const auto& [row, ip] : accepted) {
      if (row >= emb_rows) continue;  // vocab longer than embedding
      const auto v = model.embedding.vec(row);
      data.insert(data.end(), v.begin(), v.end());
      kept.push_back(ip);
    }
    model.embedding = w2v::Embedding{std::move(data), dim};
    model.senders = std::move(kept);
  } else {
    model.senders.reserve(accepted.size());
    for (const auto& [row, ip] : accepted) model.senders.push_back(ip);
  }
  if (report != nullptr) report->records_read += model.senders.size();
  return model;
}

}  // namespace

SenderModel load_model(const std::string& prefix, const io::IoPolicy& policy,
                       io::IoReport* report) {
  // Transient failures (the store mid-write, a blipping mount) get a
  // short jittered-backoff retry; each attempt starts a fresh report so
  // diagnostics never accumulate across tries.
  return io::with_retry(io::RetryPolicy::transient_reads(), [&] {
    if (report != nullptr) *report = io::IoReport{};
    return load_model_once(prefix, policy, report);
  });
}

SenderModel load_model(const std::string& prefix) {
  return load_model(prefix, io::IoPolicy{});
}

}  // namespace darkvec
