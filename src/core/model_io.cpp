#include "darkvec/core/model_io.hpp"

#include <fstream>
#include <stdexcept>

namespace darkvec {

std::int64_t SenderModel::index_of(net::IPv4 ip) const {
  for (std::size_t i = 0; i < senders.size(); ++i) {
    if (senders[i] == ip) return static_cast<std::int64_t>(i);
  }
  return -1;
}

void save_model(const std::string& prefix, const SenderModel& model) {
  if (model.senders.size() != model.embedding.size()) {
    throw std::invalid_argument("save_model: vocab/embedding size mismatch");
  }
  model.embedding.save_file(prefix + ".emb");
  std::ofstream vocab(prefix + ".vocab");
  if (!vocab) {
    throw std::runtime_error("save_model: cannot open " + prefix + ".vocab");
  }
  for (const net::IPv4 ip : model.senders) {
    vocab << ip.to_string() << '\n';
  }
}

SenderModel load_model(const std::string& prefix) {
  SenderModel model;
  model.embedding = w2v::Embedding::load_file(prefix + ".emb");
  std::ifstream vocab(prefix + ".vocab");
  if (!vocab) {
    throw std::runtime_error("load_model: cannot open " + prefix + ".vocab");
  }
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(vocab, line)) {
    ++line_no;
    if (line.empty()) continue;
    const auto ip = net::IPv4::parse(line);
    if (!ip) {
      throw std::runtime_error("load_model: bad address at vocab line " +
                               std::to_string(line_no));
    }
    model.senders.push_back(*ip);
  }
  if (model.senders.size() != model.embedding.size()) {
    throw std::runtime_error("load_model: vocab rows (" +
                             std::to_string(model.senders.size()) +
                             ") do not match embedding rows (" +
                             std::to_string(model.embedding.size()) + ")");
  }
  return model;
}

}  // namespace darkvec
