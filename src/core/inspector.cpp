#include "darkvec/core/inspector.hpp"

#include <algorithm>
#include <unordered_set>

#include "darkvec/ml/stats.hpp"

namespace darkvec {

std::vector<ClusterInfo> inspect_clusters(const net::Trace& trace,
                                          const corpus::Corpus& corpus,
                                          std::span<const int> assignment,
                                          const sim::GroupMap& oracle,
                                          std::span<const double> silhouette) {
  int max_id = -1;
  for (const int c : assignment) max_id = std::max(max_id, c);
  std::vector<ClusterInfo> clusters(static_cast<std::size_t>(max_id + 1));
  for (std::size_t c = 0; c < clusters.size(); ++c) {
    clusters[c].id = static_cast<int>(c);
  }

  // Membership, oracle composition and silhouette means.
  std::vector<std::size_t> sil_count(clusters.size(), 0);
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    ClusterInfo& cl = clusters[static_cast<std::size_t>(assignment[i])];
    const net::IPv4 ip = corpus.words[i];
    cl.members.push_back(ip);
    const auto it = oracle.find(ip);
    ++cl.group_composition[it == oracle.end() ? "?" : it->second];
    if (!silhouette.empty()) {
      cl.silhouette += silhouette[i];
      ++sil_count[static_cast<std::size_t>(assignment[i])];
    }
  }
  for (std::size_t c = 0; c < clusters.size(); ++c) {
    if (sil_count[c] > 0) {
      clusters[c].silhouette /= static_cast<double>(sil_count[c]);
    }
  }

  // Traffic statistics per cluster: one pass over the trace.
  std::unordered_map<net::IPv4, int> cluster_of;
  cluster_of.reserve(assignment.size());
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    cluster_of.emplace(corpus.words[i], assignment[i]);
  }
  std::vector<std::unordered_map<net::PortKey, std::size_t>> port_counts(
      clusters.size());
  std::vector<std::unordered_set<net::IPv4>> fingerprinted(clusters.size());
  for (const net::Packet& p : trace) {
    const auto it = cluster_of.find(p.src);
    if (it == cluster_of.end()) continue;
    const auto c = static_cast<std::size_t>(it->second);
    ++clusters[c].packets;
    ++port_counts[c][p.port_key()];
    if (p.mirai_fingerprint) fingerprinted[c].insert(p.src);
  }

  for (std::size_t c = 0; c < clusters.size(); ++c) {
    ClusterInfo& cl = clusters[c];
    // Ports, sorted by traffic share.
    cl.top_ports.reserve(port_counts[c].size());
    for (const auto& [key, count] : port_counts[c]) {
      cl.ports.push_back(key);
      cl.top_ports.emplace_back(
          key, cl.packets > 0 ? static_cast<double>(count) /
                                    static_cast<double>(cl.packets)
                              : 0.0);
    }
    std::ranges::sort(cl.ports);
    std::ranges::sort(cl.top_ports, [](const auto& a, const auto& b) {
      if (a.second != b.second) return a.second > b.second;
      return a.first < b.first;
    });
    // Subnets.
    std::unordered_set<net::IPv4> s24, s16;
    for (const net::IPv4 ip : cl.members) {
      s24.insert(ip.slash24());
      s16.insert(ip.slash16());
    }
    cl.distinct_slash24 = s24.size();
    cl.distinct_slash16 = s16.size();
    cl.fingerprint_fraction =
        cl.members.empty()
            ? 0.0
            : static_cast<double>(fingerprinted[c].size()) /
                  static_cast<double>(cl.members.size());
    // Oracle dominance.
    for (const auto& [group, count] : cl.group_composition) {
      const double frac = static_cast<double>(count) /
                          static_cast<double>(cl.members.size());
      if (frac > cl.dominant_fraction) {
        cl.dominant_fraction = frac;
        cl.dominant_group = group;
      }
    }
    std::ranges::sort(cl.members);
  }

  std::ranges::sort(clusters, [](const ClusterInfo& a, const ClusterInfo& b) {
    if (a.size() != b.size()) return a.size() > b.size();
    return a.id < b.id;
  });
  return clusters;
}

double port_jaccard(const ClusterInfo& a, const ClusterInfo& b) {
  return ml::jaccard<net::PortKey>(a.ports, b.ports);
}

double mean_pairwise_port_jaccard(std::span<const ClusterInfo> clusters) {
  if (clusters.size() < 2) return 0;
  double total = 0;
  std::size_t pairs = 0;
  for (std::size_t i = 0; i < clusters.size(); ++i) {
    for (std::size_t j = i + 1; j < clusters.size(); ++j) {
      total += port_jaccard(clusters[i], clusters[j]);
      ++pairs;
    }
  }
  return total / static_cast<double>(pairs);
}

}  // namespace darkvec
