#include "darkvec/core/raster.hpp"

#include <algorithm>
#include <unordered_map>

namespace darkvec {

ActivityRaster build_raster(const net::Trace& trace,
                            std::vector<net::IPv4> senders,
                            std::int64_t bucket_seconds) {
  ActivityRaster raster;
  raster.senders = std::move(senders);
  raster.bucket_seconds = bucket_seconds;
  if (trace.empty() || raster.senders.empty() || bucket_seconds <= 0) {
    return raster;
  }
  raster.t0 = trace[0].ts;
  const std::int64_t t_end = trace[trace.size() - 1].ts;
  const auto n_buckets =
      static_cast<std::size_t>((t_end - raster.t0) / bucket_seconds + 1);

  std::unordered_map<net::IPv4, std::size_t> row_of;
  row_of.reserve(raster.senders.size());
  for (std::size_t i = 0; i < raster.senders.size(); ++i) {
    row_of.emplace(raster.senders[i], i);
  }
  raster.presence.assign(raster.senders.size(),
                         std::vector<bool>(n_buckets, false));
  for (const net::Packet& p : trace) {
    const auto it = row_of.find(p.src);
    if (it == row_of.end()) continue;
    const auto bucket =
        static_cast<std::size_t>((p.ts - raster.t0) / bucket_seconds);
    raster.presence[it->second][bucket] = true;
  }
  return raster;
}

std::string render_raster(const ActivityRaster& raster, std::size_t max_rows) {
  std::string out;
  const std::size_t rows = raster.senders.size();
  if (rows == 0) return out;
  const std::size_t shown =
      max_rows == 0 ? rows : std::min(rows, max_rows);
  out.reserve(shown * (raster.buckets() + 1));
  for (std::size_t r = 0; r < shown; ++r) {
    // Even subsampling keeps the overall shape when rows are capped.
    const std::size_t src = rows <= shown ? r : r * rows / shown;
    for (const bool b : raster.presence[src]) out.push_back(b ? '#' : '.');
    out.push_back('\n');
  }
  return out;
}

std::vector<net::IPv4> senders_by_first_seen(const net::Trace& trace) {
  std::vector<net::IPv4> out;
  std::unordered_map<net::IPv4, bool> seen;
  for (const net::Packet& p : trace) {
    if (seen.emplace(p.src, true).second) out.push_back(p.src);
  }
  return out;
}

}  // namespace darkvec
