#include "darkvec/core/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace darkvec::core {
namespace {

// Set while a thread executes chunks, so nested for_each_chunk calls run
// inline instead of waiting on workers that are already busy.
thread_local bool inside_pool_body = false;

}  // namespace

int default_thread_count() {
  if (const char* v = std::getenv("DARKVEC_THREADS")) {
    const int n = std::atoi(v);
    if (n > 0) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

struct ThreadPool::Impl {
  // One chunked loop. Heap-allocated and shared so a worker that wakes
  // late still holds a valid (already exhausted) job instead of racing
  // against the next submission's state.
  struct Job {
    std::size_t n = 0;
    std::size_t grain = 1;
    std::size_t chunk_count = 0;
    const std::function<void(std::size_t, std::size_t)>* body = nullptr;
    std::atomic<std::size_t> next_chunk{0};
    std::atomic<std::size_t> chunks_left{0};
    std::atomic<bool> error_set{false};
    std::exception_ptr error;
    std::mutex done_mutex;
    std::condition_variable done;
  };

  explicit Impl(int threads) : size(std::max(threads, 1)) {
    workers.reserve(static_cast<std::size_t>(size - 1));
    for (int t = 0; t < size - 1; ++t) {
      workers.emplace_back([this] { worker_loop(); });
    }
  }

  ~Impl() {
    {
      std::lock_guard lock(mutex);
      stop = true;
    }
    work_ready.notify_all();
    for (std::thread& th : workers) th.join();
  }

  void worker_loop() {
    std::uint64_t seen = 0;
    for (;;) {
      std::shared_ptr<Job> job;
      {
        std::unique_lock lock(mutex);
        work_ready.wait(lock, [&] { return stop || generation != seen; });
        if (stop) return;
        seen = generation;
        job = current;
      }
      if (job) run_chunks(*job);
    }
  }

  // Claims chunks until `job` is exhausted; the last finisher wakes the
  // submitting thread.
  void run_chunks(Job& job) {
    inside_pool_body = true;
    for (;;) {
      const std::size_t c = job.next_chunk.fetch_add(1);
      if (c >= job.chunk_count) break;
      const std::size_t begin = c * job.grain;
      const std::size_t end = std::min(begin + job.grain, job.n);
      try {
        if (!job.error_set.load(std::memory_order_relaxed)) {
          (*job.body)(begin, end);
        }
      } catch (...) {
        if (!job.error_set.exchange(true)) {
          job.error = std::current_exception();
        }
      }
      if (job.chunks_left.fetch_sub(1) == 1) {
        std::lock_guard lock(job.done_mutex);
        job.done.notify_all();
      }
    }
    inside_pool_body = false;
  }

  void for_each_chunk(
      std::size_t count, std::size_t chunk,
      const std::function<void(std::size_t, std::size_t)>& fn) {
    if (count == 0) return;
    chunk = std::max<std::size_t>(chunk, 1);
    const std::size_t chunks = (count + chunk - 1) / chunk;
    // Inline when there is nothing to fan out to, or when called from a
    // pool body (the workers are busy: queueing would deadlock).
    if (size == 1 || chunks == 1 || inside_pool_body) {
      for (std::size_t c = 0; c < chunks; ++c) {
        fn(c * chunk, std::min((c + 1) * chunk, count));
      }
      return;
    }

    std::lock_guard submit(submit_mutex);
    auto job = std::make_shared<Job>();
    job->n = count;
    job->grain = chunk;
    job->chunk_count = chunks;
    job->body = &fn;
    job->chunks_left.store(chunks);
    {
      std::lock_guard lock(mutex);
      current = job;
      ++generation;
    }
    work_ready.notify_all();
    run_chunks(*job);  // the submitting thread works too
    {
      std::unique_lock lock(job->done_mutex);
      job->done.wait(lock, [&] { return job->chunks_left.load() == 0; });
    }
    {
      std::lock_guard lock(mutex);
      if (current == job) current = nullptr;
    }
    if (job->error) std::rethrow_exception(job->error);
  }

  const int size;
  std::vector<std::thread> workers;

  std::mutex submit_mutex;  // serializes jobs from concurrent submitters
  std::mutex mutex;         // guards current/generation/stop
  std::condition_variable work_ready;
  bool stop = false;
  std::uint64_t generation = 0;
  std::shared_ptr<Job> current;
};

ThreadPool::ThreadPool(int threads)
    : impl_(std::make_unique<Impl>(threads)) {}

ThreadPool::~ThreadPool() = default;

int ThreadPool::size() const { return impl_->size; }

void ThreadPool::for_each_chunk(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
  impl_->for_each_chunk(n, grain, body);
}

namespace {

std::unique_ptr<ThreadPool>& global_slot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}

std::mutex& global_mutex() {
  static std::mutex m;
  return m;
}

}  // namespace

ThreadPool& ThreadPool::global() {
  std::lock_guard lock(global_mutex());
  auto& slot = global_slot();
  if (!slot) slot = std::make_unique<ThreadPool>(default_thread_count());
  return *slot;
}

void ThreadPool::set_global_threads(int threads) {
  std::lock_guard lock(global_mutex());
  global_slot() = std::make_unique<ThreadPool>(threads);
}

void parallel_for(std::size_t n, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& body) {
  ThreadPool& pool = ThreadPool::global();
  if (grain == 0) {
    // Aim for ~4 chunks per thread but never fewer than 16 iterations
    // per chunk. Note the auto grain depends on the pool size; kernels
    // that must be bit-identical across thread counts either write
    // outputs indexed by the iteration alone (all in-tree callers) or
    // pass an explicit grain.
    const auto threads = static_cast<std::size_t>(pool.size());
    grain = std::max<std::size_t>(16, (n + threads * 4 - 1) / (threads * 4));
  }
  pool.for_each_chunk(n, grain, body);
}

}  // namespace darkvec::core
