#include "darkvec/core/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>
#include <thread>
#include <vector>

#include "darkvec/core/annotations.hpp"
#include "darkvec/core/runtime/runtime.hpp"

namespace darkvec::core {
namespace {

// Set while a thread executes chunks, so nested for_each_chunk calls run
// inline instead of waiting on workers that are already busy.
thread_local bool inside_pool_body = false;

}  // namespace

int default_thread_count() {
  if (const char* v = std::getenv("DARKVEC_THREADS")) {
    const int n = std::atoi(v);
    if (n > 0) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

struct ThreadPool::Impl {
  // One chunked loop. Heap-allocated and shared so a worker that wakes
  // late still holds a valid (already exhausted) job instead of racing
  // against the next submission's state.
  struct Job {
    // dv-suppress(guarded-field): set at submit, immutable once published
    std::size_t n = 0;
    // dv-suppress(guarded-field): set at submit, immutable once published
    std::size_t grain = 1;
    // dv-suppress(guarded-field): set at submit, immutable once published
    std::size_t chunk_count = 0;
    const std::function<void(std::size_t, std::size_t)>* body = nullptr;
    std::atomic<std::size_t> next_chunk{0};
    std::atomic<std::size_t> chunks_left{0};
    std::atomic<bool> error_set{false};
    // The submitter's ambient RunContext, re-installed in every worker
    // so cancellation/deadlines propagate into pool bodies. The
    // submitter blocks until chunks_left hits zero, so the pointee
    // outlives every chunk.
    // dv-suppress(guarded-field): set at submit, immutable once published
    runtime::RunContext* ctx = nullptr;
    Mutex done_mutex;
    // First exception thrown by a body; error_set's winner writes it, the
    // submitter reads it after the done wait — both under done_mutex.
    std::exception_ptr error DV_GUARDED_BY(done_mutex);
    CondVar done;
  };

  explicit Impl(int threads) : size(std::max(threads, 1)) {
    workers.reserve(static_cast<std::size_t>(size - 1));
    for (int t = 0; t < size - 1; ++t) {
      workers.emplace_back([this] { worker_loop(); });
    }
  }

  ~Impl() {
    {
      MutexLock lock(mutex);
      stop = true;
    }
    work_ready.notify_all();
    for (std::thread& th : workers) th.join();
  }

  void worker_loop() {
    std::uint64_t seen = 0;
    for (;;) {
      std::shared_ptr<Job> job;
      {
        MutexLock lock(mutex);
        work_ready.wait(mutex, [&] {
          mutex.assert_held();  // held for us by the enclosing wait()
          return stop || generation != seen;
        });
        if (stop) return;
        seen = generation;
        job = current;
      }
      if (job) run_chunks(*job);
    }
  }

  // Claims chunks until `job` is exhausted; the last finisher wakes the
  // submitting thread.
  void run_chunks(Job& job) {
    inside_pool_body = true;
    runtime::ContextScope runtime_scope(job.ctx);
    for (;;) {
      const std::size_t c = job.next_chunk.fetch_add(1);
      if (c >= job.chunk_count) break;
      const std::size_t begin = c * job.grain;
      const std::size_t end = std::min(begin + job.grain, job.n);
      try {
        if (!job.error_set.load(std::memory_order_relaxed)) {
          // A cancel/deadline trip lands in the job's error slot like
          // any body exception: the remaining chunks drain (claimed but
          // skipped), the pool stays reusable, and the submitter
          // rethrows the typed Interrupted after the loop settles.
          if (job.ctx != nullptr) job.ctx->check();
          (*job.body)(begin, end);
        }
      } catch (...) {
        if (!job.error_set.exchange(true)) {
          MutexLock lock(job.done_mutex);
          job.error = std::current_exception();
        }
      }
      if (job.chunks_left.fetch_sub(1) == 1) {
        MutexLock lock(job.done_mutex);
        job.done.notify_all();
      }
    }
    inside_pool_body = false;
  }

  void for_each_chunk(
      std::size_t count, std::size_t chunk,
      const std::function<void(std::size_t, std::size_t)>& fn) {
    if (count == 0) return;
    chunk = std::max<std::size_t>(chunk, 1);
    const std::size_t chunks = (count + chunk - 1) / chunk;
    // Inline when there is nothing to fan out to, or when called from a
    // pool body (the workers are busy: queueing would deadlock).
    if (size == 1 || chunks == 1 || inside_pool_body) {
      for (std::size_t c = 0; c < chunks; ++c) {
        DV_CHECKPOINT();  // same cancellation granularity as the pool path
        fn(c * chunk, std::min((c + 1) * chunk, count));
      }
      return;
    }

    MutexLock submit(submit_mutex);
    auto job = std::make_shared<Job>();
    job->n = count;
    job->grain = chunk;
    job->chunk_count = chunks;
    job->body = &fn;
    job->ctx = runtime::current();
    job->chunks_left.store(chunks);
    {
      MutexLock lock(mutex);
      current = job;
      ++generation;
    }
    work_ready.notify_all();
    run_chunks(*job);  // the submitting thread works too
    std::exception_ptr error;
    {
      MutexLock lock(job->done_mutex);
      job->done.wait(job->done_mutex,
                     [&] { return job->chunks_left.load() == 0; });
      error = job->error;
    }
    {
      MutexLock lock(mutex);
      if (current == job) current = nullptr;
    }
    if (error) std::rethrow_exception(error);
  }

  const int size;
  // dv-suppress(guarded-field): filled in the ctor, joined in the dtor only
  std::vector<std::thread> workers;

  Mutex submit_mutex;  // serializes jobs from concurrent submitters
  Mutex mutex;         // guards current/generation/stop
  CondVar work_ready;
  bool stop DV_GUARDED_BY(mutex) = false;
  std::uint64_t generation DV_GUARDED_BY(mutex) = 0;
  std::shared_ptr<Job> current DV_GUARDED_BY(mutex);
};

ThreadPool::ThreadPool(int threads)
    : impl_(std::make_unique<Impl>(threads)) {}

ThreadPool::~ThreadPool() = default;

int ThreadPool::size() const { return impl_->size; }

void ThreadPool::for_each_chunk(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
  impl_->for_each_chunk(n, grain, body);
}

namespace {

// The process-wide pool and the mutex guarding its replacement, bundled
// so the analysis sees the guard relation (function-local statics cannot
// carry DV_GUARDED_BY).
struct GlobalPool {
  Mutex mu;
  std::unique_ptr<ThreadPool> pool DV_GUARDED_BY(mu);
};

GlobalPool& global_pool() {
  static GlobalPool g;
  return g;
}

}  // namespace

ThreadPool& ThreadPool::global() {
  GlobalPool& g = global_pool();
  MutexLock lock(g.mu);
  if (!g.pool) g.pool = std::make_unique<ThreadPool>(default_thread_count());
  return *g.pool;
}

void ThreadPool::set_global_threads(int threads) {
  GlobalPool& g = global_pool();
  MutexLock lock(g.mu);
  g.pool = std::make_unique<ThreadPool>(threads);
}

void parallel_for(std::size_t n, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& body) {
  ThreadPool& pool = ThreadPool::global();
  if (grain == 0) {
    // Aim for ~4 chunks per thread but never fewer than 16 iterations
    // per chunk. Note the auto grain depends on the pool size; kernels
    // that must be bit-identical across thread counts either write
    // outputs indexed by the iteration alone (all in-tree callers) or
    // pass an explicit grain.
    const auto threads = static_cast<std::size_t>(pool.size());
    grain = std::max<std::size_t>(16, (n + threads * 4 - 1) / (threads * 4));
  }
  pool.for_each_chunk(n, grain, body);
}

}  // namespace darkvec::core
