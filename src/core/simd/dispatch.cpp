// Kernel dispatch: picks the widest vector variant the CPU supports,
// once, at first use. Selection order: DARKVEC_SIMD override if set and
// supported (else a warning and auto-detection), otherwise the best of
// cpuid. The decision is recorded in the obs metrics registry (gauge
// obs::names::kSimdDispatchLevel) so bench artifacts carry the level they ran at.
#include "darkvec/core/simd/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <mutex>

#include "darkvec/core/annotations.hpp"
#include "darkvec/core/contracts.hpp"
#include "darkvec/obs/obs.hpp"
#include "kernels.hpp"

namespace darkvec::simd {
namespace {

constexpr Kernels kScalarKernels = {
    Level::kScalar,
    detail::dot_f32_scalar,
    detail::dot_f64_scalar,
    detail::axpy_f32_scalar,
    detail::scale_add_f32_scalar,
    detail::dot_strip_f32_scalar,
    detail::dot_i8_scalar,
    detail::adagrad_pair_f64_scalar,
};

#if defined(DARKVEC_SIMD_HAVE_AVX2)
constexpr Kernels kAvx2Kernels = {
    Level::kAvx2,
    detail::dot_f32_avx2,
    detail::dot_f64_avx2,
    detail::axpy_f32_avx2,
    detail::scale_add_f32_avx2,
    detail::dot_strip_f32_avx2,
    detail::dot_i8_avx2,
    detail::adagrad_pair_f64_avx2,
};
#endif

#if defined(DARKVEC_SIMD_HAVE_AVX512)
constexpr Kernels kAvx512Kernels = {
    Level::kAvx512,
    detail::dot_f32_avx512,
    detail::dot_f64_avx512,
    detail::axpy_f32_avx512,
    detail::scale_add_f32_avx512,
    detail::dot_strip_f32_avx512,
    detail::dot_i8_avx512,
    detail::adagrad_pair_f64_avx512,
};
#endif

/// cpuid probe for one level. Compile-time availability of the variant
/// TU is necessary but never sufficient: the running CPU decides.
bool cpu_supports(Level level) {
  switch (level) {
    case Level::kScalar:
      return true;
    case Level::kAvx2:
#if defined(DARKVEC_SIMD_HAVE_AVX2)
      return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
      return false;
#endif
    case Level::kAvx512:
#if defined(DARKVEC_SIMD_HAVE_AVX512)
      return __builtin_cpu_supports("avx512f") &&
             __builtin_cpu_supports("avx512bw") &&
             __builtin_cpu_supports("avx512dq") &&
             __builtin_cpu_supports("avx512vl");
#else
      return false;
#endif
  }
  return false;
}

const Kernels* table_for(Level level) {
  switch (level) {
#if defined(DARKVEC_SIMD_HAVE_AVX2)
    case Level::kAvx2:
      return &kAvx2Kernels;
#endif
#if defined(DARKVEC_SIMD_HAVE_AVX512)
    case Level::kAvx512:
      return &kAvx512Kernels;
#endif
    default:
      return &kScalarKernels;
  }
}

Level best_supported() {
  if (cpu_supports(Level::kAvx512)) return Level::kAvx512;
  if (cpu_supports(Level::kAvx2)) return Level::kAvx2;
  return Level::kScalar;
}

void record_level(Level level) {
  static obs::Gauge& gauge = obs::gauge(obs::names::kSimdDispatchLevel);
  gauge.set(static_cast<double>(static_cast<int>(level)));
}

/// The dispatch singleton. Selection happens exactly once under the
/// std::once_flag; force_level() overrides are serialized by mu_ and
/// published through the atomic so hot-path readers never take a lock.
class Dispatch {
 public:
  static Dispatch& instance() {
    static Dispatch dispatch;
    return dispatch;
  }

  const Kernels& active() {
    std::call_once(once_, [this] { init(); });
    return *active_.load(std::memory_order_acquire);
  }

  void force(Level level) DV_EXCLUDES(mu_) {
    std::call_once(once_, [this] { init(); });
    DV_PRECONDITION(level_supported(level),
                    "simd: forced dispatch level is supported on this CPU");
    core::MutexLock lock(mu_);
    active_.store(table_for(level), std::memory_order_release);
    record_level(level);
  }

 private:
  void init() {
    Level level = best_supported();
    const char* env = std::getenv("DARKVEC_SIMD");
    if (env != nullptr && *env != '\0') {
      Level requested;
      if (!parse_level(env, &requested)) {
        DV_LOG_WARN("simd", "unrecognized DARKVEC_SIMD value, using "
                            "auto-detection",
                    {"value", env}, {"selected", level_name(level)});
      } else if (!cpu_supports(requested)) {
        DV_LOG_WARN("simd", "DARKVEC_SIMD level unsupported on this CPU, "
                            "using auto-detection",
                    {"requested", level_name(requested)},
                    {"selected", level_name(level)});
      } else {
        level = requested;
      }
    }
    active_.store(table_for(level), std::memory_order_release);
    record_level(level);
    DV_LOG_DEBUG("simd", "dispatch selected", {"level", level_name(level)},
                 {"avx2", cpu_supports(Level::kAvx2)},
                 {"avx512", cpu_supports(Level::kAvx512)});
  }

  std::once_flag once_;
  /// Serializes force() writers; readers go through the atomic only.
  core::Mutex mu_;
  std::atomic<const Kernels*> active_{nullptr};
};

}  // namespace

const Kernels& kernels() { return Dispatch::instance().active(); }

Level active_level() { return kernels().level; }

const char* level_name(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kAvx2:
      return "avx2";
    case Level::kAvx512:
      return "avx512";
  }
  return "unknown";
}

bool level_supported(Level level) { return cpu_supports(level); }

std::vector<Level> supported_levels() {
  std::vector<Level> levels = {Level::kScalar};
  if (cpu_supports(Level::kAvx2)) levels.push_back(Level::kAvx2);
  if (cpu_supports(Level::kAvx512)) levels.push_back(Level::kAvx512);
  return levels;
}

const Kernels& kernels_for(Level level) {
  DV_PRECONDITION(level_supported(level),
                  "simd: requested kernel table is supported on this CPU");
  return *table_for(level);
}

void force_level(Level level) { Dispatch::instance().force(level); }

bool parse_level(const std::string& text, Level* out) {
  if (text == "off" || text == "scalar") {
    *out = Level::kScalar;
  } else if (text == "avx2") {
    *out = Level::kAvx2;
  } else if (text == "avx512") {
    *out = Level::kAvx512;
  } else {
    return false;
  }
  return true;
}

}  // namespace darkvec::simd
