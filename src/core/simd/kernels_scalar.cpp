// Scalar reference kernels. These reproduce the exact operation order
// the hot paths used before the simd layer existed (double-accumulator
// float dots, ascending-index float accumulation in the strip kernel),
// so a DARKVEC_SIMD=off run is bit-for-bit the historical behavior and
// every vector variant has a precise oracle to be tested against.
#include "kernels.hpp"

#include <cmath>

#include "darkvec/core/annotations.hpp"

namespace darkvec::simd::detail {

// dot_f32 / axpy_f32 touch the SGNS weight matrices from the Hogwild
// workers (lock-free, last-write-wins by design, like word2vec.c); the
// racy-by-design exemption lives on the kernels so TSan runs over the
// trainer flag real bugs, not the documented algorithm. All other
// callers pass thread-local or immutable buffers.
DV_BENIGN_RACE_FUNCTION
double dot_f32_scalar(const float* a, const float* b, std::size_t n) {
  double acc = 0;
  for (std::size_t i = 0; i < n; ++i) acc += double{a[i]} * b[i];
  return acc;
}

double dot_f64_scalar(const double* a, const double* b, std::size_t n) {
  double acc = 0;
  for (std::size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

// Racy by design under Hogwild; see dot_f32_scalar.
DV_BENIGN_RACE_FUNCTION
void axpy_f32_scalar(std::size_t n, float a, const float* x, float* y) {
  for (std::size_t i = 0; i < n; ++i) y[i] += a * x[i];
}

void scale_add_f32_scalar(std::size_t n, float a, const float* x, float b,
                          float* y) {
  for (std::size_t i = 0; i < n; ++i) y[i] = a * x[i] + b * y[i];
}

void dot_strip_f32_scalar(const float* query, const float* tile,
                          std::size_t width, std::size_t dim, float* sims) {
  // Register strip of 8 columns per dim sweep (the historical
  // ml/batch_topk inner loop). Per (query, column) pair the arithmetic
  // is one float accumulator walking d ascending with a separate
  // multiply and add — identical whether columns advance 1, 8 or 16 at
  // a time, which is exactly why the vector variants can be
  // bit-identical to this reference.
  constexpr std::size_t kStrip = 8;
  std::size_t j = 0;
  for (; j + kStrip <= width; j += kStrip) {
    float lane[kStrip] = {};
    for (std::size_t d = 0; d < dim; ++d) {
      const float qd = query[d];
      const float* t = tile + d * width + j;
      for (std::size_t r = 0; r < kStrip; ++r) lane[r] += qd * t[r];
    }
    for (std::size_t r = 0; r < kStrip; ++r) sims[j + r] = lane[r];
  }
  for (; j < width; ++j) {
    float acc = 0;
    for (std::size_t d = 0; d < dim; ++d) acc += query[d] * tile[d * width + j];
    sims[j] = acc;
  }
}

std::int32_t dot_i8_scalar(const std::int8_t* a, const std::int8_t* b,
                           std::size_t n) {
  std::int32_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += std::int32_t{a[i]} * std::int32_t{b[i]};
  }
  return acc;
}

void adagrad_pair_f64_scalar(std::size_t n, double g, double lr, double* wi,
                             double* wj, double* gi, double* gj) {
  for (std::size_t d = 0; d < n; ++d) {
    const double grad_i = g * wj[d];
    const double grad_j = g * wi[d];
    wi[d] -= lr * grad_i / std::sqrt(gi[d]);
    wj[d] -= lr * grad_j / std::sqrt(gj[d]);
    gi[d] += grad_i * grad_i;
    gj[d] += grad_j * grad_j;
  }
}

}  // namespace darkvec::simd::detail
