// AVX-512 kernel variants (F/BW/DQ/VL feature set). Same discipline as
// kernels_avx2.cpp: raw intrinsics are confined here, the TU is compiled
// with -mavx512f -mavx512bw -mavx512dq -mavx512vl -ffp-contract=off, and
// the functions run only after cpuid dispatch confirms support.
// Element-wise kernels keep separate multiply/add so each element's
// rounding sequence matches the scalar reference bit-for-bit; reductions
// use FMA under the ULP contract.
#include "kernels.hpp"

#if defined(DARKVEC_SIMD_HAVE_AVX512)

#include <immintrin.h>

#include "darkvec/core/annotations.hpp"

namespace darkvec::simd::detail {
namespace {

/// Fixed-order horizontal sum of 16 float lanes into a double.
inline double hsum512_ps(__m512 v) {
  alignas(64) float lane[16];
  _mm512_store_ps(lane, v);
  double acc = 0;
  for (int i = 0; i < 16; i += 2) {
    acc += double{lane[i]} + lane[i + 1];
  }
  return acc;
}

inline double hsum512_pd(__m512d v) {
  alignas(64) double lane[8];
  _mm512_store_pd(lane, v);
  return ((lane[0] + lane[1]) + (lane[2] + lane[3])) +
         ((lane[4] + lane[5]) + (lane[6] + lane[7]));
}

/// Horizontal sum of 16 int32 lanes (exact). Hand-rolled instead of
/// _mm512_reduce_add_epi32: GCC 12's reduce builtins expand through
/// _mm256_undefined_si256 and trip -Wuninitialized under -Werror.
inline std::int32_t hsum512_epi32(__m512i v) {
  alignas(64) std::int32_t lane[16];
  _mm512_store_si512(static_cast<__m512i*>(static_cast<void*>(lane)), v);
  std::int32_t acc = 0;
  for (int i = 0; i < 16; ++i) acc += lane[i];
  return acc;
}

}  // namespace

// Racy by design under Hogwild SGD (see kernels_scalar.cpp).
DV_BENIGN_RACE_FUNCTION
double dot_f32_avx512(const float* a, const float* b, std::size_t n) {
  __m512 acc0 = _mm512_setzero_ps();
  __m512 acc1 = _mm512_setzero_ps();
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i),
                           acc0);
    acc1 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i + 16),
                           _mm512_loadu_ps(b + i + 16), acc1);
  }
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i),
                           acc0);
  }
  double acc = hsum512_ps(_mm512_add_ps(acc0, acc1));
  for (; i < n; ++i) acc += double{a[i]} * b[i];
  return acc;
}

double dot_f64_avx512(const double* a, const double* b, std::size_t n) {
  __m512d acc0 = _mm512_setzero_pd();
  __m512d acc1 = _mm512_setzero_pd();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm512_fmadd_pd(_mm512_loadu_pd(a + i), _mm512_loadu_pd(b + i),
                           acc0);
    acc1 = _mm512_fmadd_pd(_mm512_loadu_pd(a + i + 8),
                           _mm512_loadu_pd(b + i + 8), acc1);
  }
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm512_fmadd_pd(_mm512_loadu_pd(a + i), _mm512_loadu_pd(b + i),
                           acc0);
  }
  double acc = hsum512_pd(_mm512_add_pd(acc0, acc1));
  for (; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

// Racy by design under Hogwild SGD; see dot_f32_avx512.
DV_BENIGN_RACE_FUNCTION
void axpy_f32_avx512(std::size_t n, float a, const float* x, float* y) {
  const __m512 va = _mm512_set1_ps(a);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512 prod = _mm512_mul_ps(va, _mm512_loadu_ps(x + i));
    _mm512_storeu_ps(y + i, _mm512_add_ps(_mm512_loadu_ps(y + i), prod));
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

void scale_add_f32_avx512(std::size_t n, float a, const float* x, float b,
                          float* y) {
  const __m512 va = _mm512_set1_ps(a);
  const __m512 vb = _mm512_set1_ps(b);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512 ax = _mm512_mul_ps(va, _mm512_loadu_ps(x + i));
    const __m512 by = _mm512_mul_ps(vb, _mm512_loadu_ps(y + i));
    _mm512_storeu_ps(y + i, _mm512_add_ps(ax, by));
  }
  for (; i < n; ++i) y[i] = a * x[i] + b * y[i];
}

void dot_strip_f32_avx512(const float* query, const float* tile,
                          std::size_t width, std::size_t dim, float* sims) {
  std::size_t j = 0;
  // 32 columns per dim sweep (two zmm accumulators). Each column lane
  // keeps one float accumulator walking d ascending with separate
  // mul/add — bit-identical to the scalar reference.
  for (; j + 32 <= width; j += 32) {
    __m512 acc0 = _mm512_setzero_ps();
    __m512 acc1 = _mm512_setzero_ps();
    for (std::size_t d = 0; d < dim; ++d) {
      const __m512 qd = _mm512_set1_ps(query[d]);
      const float* t = tile + d * width + j;
      acc0 = _mm512_add_ps(acc0, _mm512_mul_ps(qd, _mm512_loadu_ps(t)));
      acc1 = _mm512_add_ps(acc1, _mm512_mul_ps(qd, _mm512_loadu_ps(t + 16)));
    }
    _mm512_storeu_ps(sims + j, acc0);
    _mm512_storeu_ps(sims + j + 16, acc1);
  }
  for (; j + 16 <= width; j += 16) {
    __m512 acc = _mm512_setzero_ps();
    for (std::size_t d = 0; d < dim; ++d) {
      const __m512 qd = _mm512_set1_ps(query[d]);
      const float* t = tile + d * width + j;
      acc = _mm512_add_ps(acc, _mm512_mul_ps(qd, _mm512_loadu_ps(t)));
    }
    _mm512_storeu_ps(sims + j, acc);
  }
  for (; j < width; ++j) {
    float acc = 0;
    for (std::size_t d = 0; d < dim; ++d) acc += query[d] * tile[d * width + j];
    sims[j] = acc;
  }
}

std::int32_t dot_i8_avx512(const std::int8_t* a, const std::int8_t* b,
                           std::size_t n) {
  // Widen 32 int8 lanes to i16 (sign-extending, exact), multiply-add
  // pairs into i32. AVX-512 has no vpsignb, so the widening route
  // replaces the AVX2 abs/sign trick; arithmetic stays exact.
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i va8 =
        _mm256_loadu_si256(static_cast<const __m256i*>(
            static_cast<const void*>(a + i)));
    const __m256i vb8 =
        _mm256_loadu_si256(static_cast<const __m256i*>(
            static_cast<const void*>(b + i)));
    const __m512i va16 = _mm512_cvtepi8_epi16(va8);
    const __m512i vb16 = _mm512_cvtepi8_epi16(vb8);
    acc = _mm512_add_epi32(acc, _mm512_madd_epi16(va16, vb16));
  }
  std::int32_t sum = hsum512_epi32(acc);
  for (; i < n; ++i) sum += std::int32_t{a[i]} * std::int32_t{b[i]};
  return sum;
}

void adagrad_pair_f64_avx512(std::size_t n, double g, double lr, double* wi,
                             double* wj, double* gi, double* gj) {
  const __m512d vg = _mm512_set1_pd(g);
  const __m512d vlr = _mm512_set1_pd(lr);
  std::size_t d = 0;
  // Per-lane scalar sequence with correctly-rounded vsqrtpd/vdivpd;
  // bit-identical to the reference.
  for (; d + 8 <= n; d += 8) {
    const __m512d vwi = _mm512_loadu_pd(wi + d);
    const __m512d vwj = _mm512_loadu_pd(wj + d);
    const __m512d grad_i = _mm512_mul_pd(vg, vwj);
    const __m512d grad_j = _mm512_mul_pd(vg, vwi);
    const __m512d vgi = _mm512_loadu_pd(gi + d);
    const __m512d vgj = _mm512_loadu_pd(gj + d);
    const __m512d step_i = _mm512_div_pd(_mm512_mul_pd(vlr, grad_i),
                                         _mm512_sqrt_pd(vgi));
    const __m512d step_j = _mm512_div_pd(_mm512_mul_pd(vlr, grad_j),
                                         _mm512_sqrt_pd(vgj));
    _mm512_storeu_pd(wi + d, _mm512_sub_pd(vwi, step_i));
    _mm512_storeu_pd(wj + d, _mm512_sub_pd(vwj, step_j));
    _mm512_storeu_pd(gi + d,
                     _mm512_add_pd(vgi, _mm512_mul_pd(grad_i, grad_i)));
    _mm512_storeu_pd(gj + d,
                     _mm512_add_pd(vgj, _mm512_mul_pd(grad_j, grad_j)));
  }
  if (d < n) adagrad_pair_f64_scalar(n - d, g, lr, wi + d, wj + d, gi + d,
                                     gj + d);
}

}  // namespace darkvec::simd::detail

#endif  // DARKVEC_SIMD_HAVE_AVX512
