// Internal per-level kernel declarations shared by the dispatch unit and
// the per-architecture translation units. The AVX2/AVX-512 TUs are the
// only files in the tree compiled with -mavx2/-mavx512* (plus
// -ffp-contract=off so the compiler cannot fuse the deliberately
// separate multiply/add sequences into FMAs and break the bit-identity
// contract); dispatch.cpp calls them only after cpuid says the
// instructions exist.
#pragma once

#include <cstddef>
#include <cstdint>

namespace darkvec::simd::detail {

// ---- scalar reference (kernels_scalar.cpp) -----------------------------
double dot_f32_scalar(const float* a, const float* b, std::size_t n);
double dot_f64_scalar(const double* a, const double* b, std::size_t n);
void axpy_f32_scalar(std::size_t n, float a, const float* x, float* y);
void scale_add_f32_scalar(std::size_t n, float a, const float* x, float b,
                          float* y);
void dot_strip_f32_scalar(const float* query, const float* tile,
                          std::size_t width, std::size_t dim, float* sims);
std::int32_t dot_i8_scalar(const std::int8_t* a, const std::int8_t* b,
                           std::size_t n);
void adagrad_pair_f64_scalar(std::size_t n, double g, double lr, double* wi,
                             double* wj, double* gi, double* gj);

#if defined(DARKVEC_SIMD_HAVE_AVX2)
// ---- AVX2 + FMA (kernels_avx2.cpp) -------------------------------------
double dot_f32_avx2(const float* a, const float* b, std::size_t n);
double dot_f64_avx2(const double* a, const double* b, std::size_t n);
void axpy_f32_avx2(std::size_t n, float a, const float* x, float* y);
void scale_add_f32_avx2(std::size_t n, float a, const float* x, float b,
                        float* y);
void dot_strip_f32_avx2(const float* query, const float* tile,
                        std::size_t width, std::size_t dim, float* sims);
std::int32_t dot_i8_avx2(const std::int8_t* a, const std::int8_t* b,
                         std::size_t n);
void adagrad_pair_f64_avx2(std::size_t n, double g, double lr, double* wi,
                           double* wj, double* gi, double* gj);
#endif

#if defined(DARKVEC_SIMD_HAVE_AVX512)
// ---- AVX-512 F/BW/DQ/VL (kernels_avx512.cpp) ---------------------------
double dot_f32_avx512(const float* a, const float* b, std::size_t n);
double dot_f64_avx512(const double* a, const double* b, std::size_t n);
void axpy_f32_avx512(std::size_t n, float a, const float* x, float* y);
void scale_add_f32_avx512(std::size_t n, float a, const float* x, float b,
                          float* y);
void dot_strip_f32_avx512(const float* query, const float* tile,
                          std::size_t width, std::size_t dim, float* sims);
std::int32_t dot_i8_avx512(const std::int8_t* a, const std::int8_t* b,
                           std::size_t n);
void adagrad_pair_f64_avx512(std::size_t n, double g, double lr, double* wi,
                             double* wj, double* gi, double* gj);
#endif

}  // namespace darkvec::simd::detail
