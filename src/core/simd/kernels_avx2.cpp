// AVX2 + FMA kernel variants. This TU (and the AVX-512 sibling) is the
// only place outside kernels_avx512.cpp where raw intrinsics are allowed
// (lint rule raw-intrinsics); it is compiled with -mavx2 -mfma
// -ffp-contract=off and must only be *called* after cpuid dispatch
// (dispatch.cpp) has confirmed the instructions exist.
//
// Bit-identity discipline: element-wise kernels (axpy, scale_add,
// dot_strip, adagrad, int8 dot) use separate multiply and add — never
// FMA — so each element sees exactly the scalar reference's rounding
// sequence. Reduction kernels (dot_f32/dot_f64) do use FMA and
// lane-parallel accumulators; they are covered by the ULP contract
// instead (see core/simd/simd.hpp).
#include "kernels.hpp"

#if defined(DARKVEC_SIMD_HAVE_AVX2)

#include <immintrin.h>

#include "darkvec/core/annotations.hpp"

namespace darkvec::simd::detail {
namespace {

/// Fixed-order horizontal sum of 8 float lanes into a double.
inline double hsum256_ps(__m256 v) {
  alignas(32) float lane[8];
  _mm256_store_ps(lane, v);
  // Pairwise in a fixed tree so the result is deterministic.
  const double s01 = double{lane[0]} + lane[1];
  const double s23 = double{lane[2]} + lane[3];
  const double s45 = double{lane[4]} + lane[5];
  const double s67 = double{lane[6]} + lane[7];
  return (s01 + s23) + (s45 + s67);
}

/// Fixed-order horizontal sum of 4 double lanes.
inline double hsum256_pd(__m256d v) {
  alignas(32) double lane[4];
  _mm256_store_pd(lane, v);
  return (lane[0] + lane[1]) + (lane[2] + lane[3]);
}

/// Horizontal sum of 8 int32 lanes (exact).
inline std::int32_t hsum256_epi32(__m256i v) {
  const __m128i lo = _mm256_castsi256_si128(v);
  const __m128i hi = _mm256_extracti128_si256(v, 1);
  __m128i s = _mm_add_epi32(lo, hi);
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(1, 0, 3, 2)));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(2, 3, 0, 1)));
  return _mm_cvtsi128_si32(s);
}

}  // namespace

// Racy by design under Hogwild SGD (see kernels_scalar.cpp); the
// exemption keeps TSan runs over the trainer focused on real bugs.
DV_BENIGN_RACE_FUNCTION
double dot_f32_avx2(const float* a, const float* b, std::size_t n) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8),
                           _mm256_loadu_ps(b + i + 8), acc1);
  }
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
  }
  double acc = hsum256_ps(_mm256_add_ps(acc0, acc1));
  for (; i < n; ++i) acc += double{a[i]} * b[i];
  return acc;
}

double dot_f64_avx2(const double* a, const double* b, std::size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i),
                           acc0);
    acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 4),
                           _mm256_loadu_pd(b + i + 4), acc1);
  }
  for (; i + 4 <= n; i += 4) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i),
                           acc0);
  }
  double acc = hsum256_pd(_mm256_add_pd(acc0, acc1));
  for (; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

// Racy by design under Hogwild SGD; see dot_f32_avx2.
DV_BENIGN_RACE_FUNCTION
void axpy_f32_avx2(std::size_t n, float a, const float* x, float* y) {
  const __m256 va = _mm256_set1_ps(a);
  std::size_t i = 0;
  // mul + add (not FMA): per element identical to `y[i] += a * x[i]`.
  for (; i + 8 <= n; i += 8) {
    const __m256 prod = _mm256_mul_ps(va, _mm256_loadu_ps(x + i));
    _mm256_storeu_ps(y + i, _mm256_add_ps(_mm256_loadu_ps(y + i), prod));
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

void scale_add_f32_avx2(std::size_t n, float a, const float* x, float b,
                        float* y) {
  const __m256 va = _mm256_set1_ps(a);
  const __m256 vb = _mm256_set1_ps(b);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 ax = _mm256_mul_ps(va, _mm256_loadu_ps(x + i));
    const __m256 by = _mm256_mul_ps(vb, _mm256_loadu_ps(y + i));
    _mm256_storeu_ps(y + i, _mm256_add_ps(ax, by));
  }
  for (; i < n; ++i) y[i] = a * x[i] + b * y[i];
}

void dot_strip_f32_avx2(const float* query, const float* tile,
                        std::size_t width, std::size_t dim, float* sims) {
  std::size_t j = 0;
  // 16 columns per dim sweep: two ymm accumulators hide the add latency.
  // Each column lane keeps one float accumulator walking d ascending
  // with separate mul/add — bit-identical to the scalar reference.
  for (; j + 16 <= width; j += 16) {
    __m256 acc0 = _mm256_setzero_ps();
    __m256 acc1 = _mm256_setzero_ps();
    for (std::size_t d = 0; d < dim; ++d) {
      const __m256 qd = _mm256_set1_ps(query[d]);
      const float* t = tile + d * width + j;
      acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(qd, _mm256_loadu_ps(t)));
      acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(qd, _mm256_loadu_ps(t + 8)));
    }
    _mm256_storeu_ps(sims + j, acc0);
    _mm256_storeu_ps(sims + j + 8, acc1);
  }
  for (; j + 8 <= width; j += 8) {
    __m256 acc = _mm256_setzero_ps();
    for (std::size_t d = 0; d < dim; ++d) {
      const __m256 qd = _mm256_set1_ps(query[d]);
      const float* t = tile + d * width + j;
      acc = _mm256_add_ps(acc, _mm256_mul_ps(qd, _mm256_loadu_ps(t)));
    }
    _mm256_storeu_ps(sims + j, acc);
  }
  for (; j < width; ++j) {
    float acc = 0;
    for (std::size_t d = 0; d < dim; ++d) acc += query[d] * tile[d * width + j];
    sims[j] = acc;
  }
}

std::int32_t dot_i8_avx2(const std::int8_t* a, const std::int8_t* b,
                         std::size_t n) {
  // maddubs needs unsigned x signed: multiply |a| by b carrying a's
  // sign. Pair sums fit i16 (2 * 127 * 127 = 32258 < 32767); madd with
  // ones widens to i32. Exact integer arithmetic at every step.
  const __m256i ones = _mm256_set1_epi16(1);
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i va =
        _mm256_loadu_si256(static_cast<const __m256i*>(
            static_cast<const void*>(a + i)));
    const __m256i vb =
        _mm256_loadu_si256(static_cast<const __m256i*>(
            static_cast<const void*>(b + i)));
    const __m256i abs_a = _mm256_abs_epi8(va);
    const __m256i sgn_b = _mm256_sign_epi8(vb, va);
    const __m256i p16 = _mm256_maddubs_epi16(abs_a, sgn_b);
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(p16, ones));
  }
  std::int32_t sum = hsum256_epi32(acc);
  for (; i < n; ++i) sum += std::int32_t{a[i]} * std::int32_t{b[i]};
  return sum;
}

void adagrad_pair_f64_avx2(std::size_t n, double g, double lr, double* wi,
                           double* wj, double* gi, double* gj) {
  const __m256d vg = _mm256_set1_pd(g);
  const __m256d vlr = _mm256_set1_pd(lr);
  std::size_t d = 0;
  // Per-lane: mul, mul, sqrt, div, sub, mul, add — the exact scalar
  // sequence with correctly-rounded vsqrtpd/vdivpd, so bit-identical.
  for (; d + 4 <= n; d += 4) {
    const __m256d vwi = _mm256_loadu_pd(wi + d);
    const __m256d vwj = _mm256_loadu_pd(wj + d);
    const __m256d grad_i = _mm256_mul_pd(vg, vwj);
    const __m256d grad_j = _mm256_mul_pd(vg, vwi);
    const __m256d vgi = _mm256_loadu_pd(gi + d);
    const __m256d vgj = _mm256_loadu_pd(gj + d);
    const __m256d step_i = _mm256_div_pd(_mm256_mul_pd(vlr, grad_i),
                                         _mm256_sqrt_pd(vgi));
    const __m256d step_j = _mm256_div_pd(_mm256_mul_pd(vlr, grad_j),
                                         _mm256_sqrt_pd(vgj));
    _mm256_storeu_pd(wi + d, _mm256_sub_pd(vwi, step_i));
    _mm256_storeu_pd(wj + d, _mm256_sub_pd(vwj, step_j));
    _mm256_storeu_pd(gi + d,
                     _mm256_add_pd(vgi, _mm256_mul_pd(grad_i, grad_i)));
    _mm256_storeu_pd(gj + d,
                     _mm256_add_pd(vgj, _mm256_mul_pd(grad_j, grad_j)));
  }
  if (d < n) adagrad_pair_f64_scalar(n - d, g, lr, wi + d, wj + d, gi + d,
                                     gj + d);
}

}  // namespace darkvec::simd::detail

#endif  // DARKVEC_SIMD_HAVE_AVX2
