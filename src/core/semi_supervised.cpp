#include "darkvec/core/semi_supervised.hpp"

#include <algorithm>
#include <array>
#include <unordered_set>

#include "darkvec/core/parallel.hpp"
#include "darkvec/ml/evaluation.hpp"
#include "darkvec/net/time.hpp"

namespace darkvec {
namespace {

/// Dense label vector over corpus words (GtClass as int).
std::vector<int> word_labels(const corpus::Corpus& corpus,
                             const sim::LabelMap& labels) {
  std::vector<int> out(corpus.words.size(),
                       static_cast<int>(sim::GtClass::kUnknown));
  for (std::size_t i = 0; i < corpus.words.size(); ++i) {
    out[i] = static_cast<int>(sim::label_of(labels, corpus.words[i]));
  }
  return out;
}

}  // namespace

std::vector<net::IPv4> last_day_active_senders(const net::Trace& trace,
                                               std::size_t min_packets) {
  std::vector<net::IPv4> out;
  if (trace.empty()) return out;
  const std::int64_t end = trace[trace.size() - 1].ts + 1;
  const std::int64_t start = end - net::kSecondsPerDay;
  const net::Trace last_day = trace.slice(start, end);

  const auto totals = trace.packets_per_sender();
  std::unordered_set<net::IPv4> seen;
  for (const net::Packet& p : last_day) {
    if (!seen.insert(p.src).second) continue;
    const auto it = totals.find(p.src);
    if (it != totals.end() && it->second >= min_packets) out.push_back(p.src);
  }
  std::ranges::sort(out);
  return out;
}

namespace {

KnnEvaluation evaluate_knn_impl(const ml::CosineKnn& index,
                                std::span<const int> all_labels,
                                const std::unordered_map<net::IPv4,
                                                         std::size_t>& rows,
                                std::span<const net::IPv4> eval_ips, int k,
                                const ml::AnnSearchParams& ann = {}) {
  std::vector<std::uint32_t> points;
  std::vector<int> y_true;
  std::size_t covered = 0;
  for (const net::IPv4 ip : eval_ips) {
    const auto it = rows.find(ip);
    if (it == rows.end()) continue;
    ++covered;
    points.push_back(static_cast<std::uint32_t>(it->second));
    y_true.push_back(all_labels[it->second]);
  }

  const auto y_pred = ml::loo_knn_predict(index, all_labels, points, k, ann);
  ml::ClassificationReport report(y_true, y_pred,
                                  static_cast<int>(sim::kNumGtClasses));

  // Headline accuracy: GT1-GT9 only.
  std::array<int, sim::kNumKnownClasses> known{};
  for (std::size_t c = 0; c < sim::kNumKnownClasses; ++c) {
    known[c] = static_cast<int>(c);
  }
  KnnEvaluation out{std::move(report), 0.0, covered, eval_ips.size()};
  out.accuracy = out.report.accuracy_over(known);
  return out;
}

}  // namespace

KnnEvaluation evaluate_knn(const DarkVec& dv, const sim::LabelMap& labels,
                           std::span<const net::IPv4> eval_ips, int k) {
  return evaluate_knn(dv, labels, eval_ips, k, ml::AnnSearchParams{});
}

KnnEvaluation evaluate_knn(const DarkVec& dv, const sim::LabelMap& labels,
                           std::span<const net::IPv4> eval_ips, int k,
                           const ml::AnnSearchParams& ann) {
  const auto all_labels = word_labels(dv.corpus(), labels);
  std::unordered_map<net::IPv4, std::size_t> rows;
  rows.reserve(dv.corpus().words.size());
  for (std::size_t i = 0; i < dv.corpus().words.size(); ++i) {
    rows.emplace(dv.corpus().words[i], i);
  }
  return evaluate_knn_impl(dv.knn(), all_labels, rows, eval_ips, k, ann);
}

KnnEvaluation evaluate_knn_vectors(const w2v::Embedding& vectors,
                                   std::span<const net::IPv4> row_ips,
                                   const sim::LabelMap& labels,
                                   std::span<const net::IPv4> eval_ips,
                                   int k) {
  std::vector<int> all_labels(row_ips.size());
  std::unordered_map<net::IPv4, std::size_t> rows;
  rows.reserve(row_ips.size());
  for (std::size_t i = 0; i < row_ips.size(); ++i) {
    all_labels[i] = static_cast<int>(sim::label_of(labels, row_ips[i]));
    rows.emplace(row_ips[i], i);
  }
  const ml::CosineKnn index(vectors);
  return evaluate_knn_impl(index, all_labels, rows, eval_ips, k);
}

std::vector<ExtensionCandidate> extend_ground_truth(
    const DarkVec& dv, const sim::LabelMap& labels, int k) {
  const auto& corpus = dv.corpus();
  const auto all_labels = word_labels(corpus, labels);
  const ml::CosineKnn& index = dv.knn();
  const auto n = corpus.words.size();

  // Mean k-NN distance per point, and per-class maximum over its labeled
  // members — the acceptance threshold of Section 6.4. Neighbour lists
  // come from one blocked batch query; the per-point pass writes only
  // avg_distance[i]/majority[i], so it parallelizes deterministically,
  // while the cross-point class maxima reduce serially afterwards.
  const auto neighbor_lists = index.query_batch(0, n, k);
  std::vector<double> avg_distance(n, 0.0);
  std::vector<int> majority(n, static_cast<int>(sim::GtClass::kUnknown));
  core::parallel_for(n, 0, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      const auto& neighbors = neighbor_lists[i];
      double dist = 0;
      for (const ml::Neighbor& nb : neighbors) dist += 1.0 - nb.similarity;
      avg_distance[i] =
          neighbors.empty() ? 1.0
                            : dist / static_cast<double>(neighbors.size());
      majority[i] = ml::majority_vote(neighbors, all_labels);
    }
  });
  std::array<double, sim::kNumGtClasses> max_class_distance{};
  for (std::size_t i = 0; i < n; ++i) {
    const int own = all_labels[i];
    if (own != static_cast<int>(sim::GtClass::kUnknown)) {
      auto& mx = max_class_distance[static_cast<std::size_t>(own)];
      mx = std::max(mx, avg_distance[i]);
    }
  }

  std::vector<ExtensionCandidate> out;
  for (std::size_t i = 0; i < n; ++i) {
    if (all_labels[i] != static_cast<int>(sim::GtClass::kUnknown)) continue;
    const int pred = majority[i];
    if (pred == static_cast<int>(sim::GtClass::kUnknown)) continue;
    if (avg_distance[i] >
        max_class_distance[static_cast<std::size_t>(pred)]) {
      continue;
    }
    out.push_back(ExtensionCandidate{corpus.words[i],
                                     static_cast<sim::GtClass>(pred),
                                     avg_distance[i]});
  }
  std::ranges::sort(out, [](const ExtensionCandidate& a,
                            const ExtensionCandidate& b) {
    if (a.avg_distance != b.avg_distance) {
      return a.avg_distance < b.avg_distance;
    }
    return a.ip < b.ip;
  });
  return out;
}

}  // namespace darkvec
