#include "darkvec/core/contracts.hpp"
#include "darkvec/core/darkvec.hpp"

#include <stdexcept>

#include "darkvec/graph/knn_graph.hpp"
#include "darkvec/obs/obs.hpp"

namespace darkvec {

DarkVec::DarkVec(DarkVecConfig config) : config_(std::move(config)) {}

w2v::TrainStats DarkVec::fit(const net::Trace& trace) {
  DV_SPAN_ARG("darkvec.fit", "packets", trace.size());
  const auto services = corpus::make_service_map(config_.services, trace,
                                                 config_.auto_top_n);
  corpus_ = corpus::build_corpus(trace, *services, config_.corpus);
  knn_.reset();
  model_ = std::make_unique<w2v::SkipGramModel>(corpus_.vocabulary_size(),
                                                config_.w2v);
  return model_->train(corpus_.sentences, config_.train);
}

const w2v::Embedding& DarkVec::embedding() const {
  DV_PRECONDITION(model_ != nullptr, "DarkVec: embedding() requires fit()");
  return model_->embedding();
}

const ml::CosineKnn& DarkVec::knn() const {
  if (!knn_) knn_ = std::make_unique<ml::CosineKnn>(embedding());
  return *knn_;
}

std::optional<std::size_t> DarkVec::index_of(net::IPv4 ip) const {
  const auto id = corpus_.id_of(ip);
  if (id == corpus::Corpus::kNoWord) return std::nullopt;
  return static_cast<std::size_t>(id);
}

Clustering DarkVec::cluster(int k_prime, std::uint64_t seed) const {
  return cluster(k_prime, seed, ml::AnnSearchParams{});
}

Clustering DarkVec::cluster(int k_prime, std::uint64_t seed,
                            const ml::AnnSearchParams& ann) const {
  DV_SPAN_ARG("darkvec.cluster", "k_prime", k_prime);
  const graph::WeightedGraph g = graph::knn_graph(knn(), k_prime, ann);
  graph::LouvainOptions options;
  options.seed = seed;
  const graph::LouvainResult lr = graph::louvain(g, options);
  Clustering out;
  out.assignment = lr.community;
  out.modularity = lr.modularity;
  out.count = lr.count;
  return out;
}

}  // namespace darkvec
