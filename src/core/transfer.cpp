#include "darkvec/core/contracts.hpp"
#include "darkvec/core/transfer.hpp"

#include <stdexcept>

#include "darkvec/ml/evaluation.hpp"
#include "darkvec/ml/linalg.hpp"

namespace darkvec {
namespace {

/// Anchor rows: (source row, target row) for senders in both corpora.
std::vector<std::pair<std::size_t, std::size_t>> anchor_rows(
    const corpus::Corpus& source_corpus, const corpus::Corpus& target_corpus) {
  std::vector<std::pair<std::size_t, std::size_t>> anchors;
  for (std::size_t i = 0; i < source_corpus.words.size(); ++i) {
    const auto j = target_corpus.id_of(source_corpus.words[i]);
    if (j != corpus::Corpus::kNoWord) {
      anchors.emplace_back(i, static_cast<std::size_t>(j));
    }
  }
  return anchors;
}

}  // namespace

Alignment align_embeddings(const corpus::Corpus& source_corpus,
                           const w2v::Embedding& source,
                           const corpus::Corpus& target_corpus,
                           const w2v::Embedding& target) {
  DV_PRECONDITION(source.dim() == target.dim(),
                  "align_embeddings: embeddings share one dimension");
  const auto anchors = anchor_rows(source_corpus, target_corpus);
  DV_PRECONDITION(!anchors.empty(),
                  "align_embeddings: the corpora share at least one sender");
  const int dim = source.dim();
  const w2v::Embedding a = source.normalized();
  const w2v::Embedding b = target.normalized();

  // M = A^T B over anchor rows.
  ml::SquareMatrix m(dim);
  for (const auto& [i, j] : anchors) {
    const auto va = a.vec(i);
    const auto vb = b.vec(j);
    for (int row = 0; row < dim; ++row) {
      for (int col = 0; col < dim; ++col) {
        m.at(row, col) += double{va[static_cast<std::size_t>(row)]} *
                          vb[static_cast<std::size_t>(col)];
      }
    }
  }
  const ml::SvdResult svd = ml::jacobi_svd(m);
  const ml::SquareMatrix r = ml::multiply(svd.u, ml::transpose(svd.v));

  Alignment alignment;
  alignment.dim = dim;
  alignment.anchors = anchors.size();
  alignment.rotation.resize(static_cast<std::size_t>(dim) * dim);
  for (int row = 0; row < dim; ++row) {
    for (int col = 0; col < dim; ++col) {
      alignment.rotation[static_cast<std::size_t>(row) * dim + col] =
          r.at(row, col);
    }
  }

  // Anchor fit quality.
  const w2v::Embedding rotated = apply_alignment(alignment, a);
  double total = 0;
  for (const auto& [i, j] : anchors) {
    total += w2v::cosine(rotated.vec(i), b.vec(j));
  }
  alignment.anchor_similarity = total / static_cast<double>(anchors.size());
  return alignment;
}

w2v::Embedding apply_alignment(const Alignment& alignment,
                               const w2v::Embedding& source) {
  DV_PRECONDITION(source.dim() == alignment.dim,
                  "apply_alignment: source matches the alignment dimension");
  const int dim = alignment.dim;
  w2v::Embedding out(source.size(), dim);
  for (std::size_t i = 0; i < source.size(); ++i) {
    const auto src = source.vec(i);
    auto dst = out.vec(i);
    for (int col = 0; col < dim; ++col) {
      double acc = 0;
      for (int row = 0; row < dim; ++row) {
        acc += double{src[static_cast<std::size_t>(row)]} *
               alignment.rotation[static_cast<std::size_t>(row) * dim + col];
      }
      dst[static_cast<std::size_t>(col)] = static_cast<float>(acc);
    }
  }
  return out;
}

TransferResult evaluate_transfer(const corpus::Corpus& source_corpus,
                                 const w2v::Embedding& source,
                                 const corpus::Corpus& target_corpus,
                                 const w2v::Embedding& target,
                                 const sim::LabelMap& labels, int k) {
  TransferResult result;
  // Fit target -> source, then classify target senders in source space.
  result.alignment =
      align_embeddings(target_corpus, target, source_corpus, source);
  const w2v::Embedding target_in_source =
      apply_alignment(result.alignment, target.normalized());
  const w2v::Embedding target_raw = target.normalized();

  const ml::CosineKnn index(source);
  std::vector<int> source_labels(source_corpus.words.size());
  for (std::size_t i = 0; i < source_corpus.words.size(); ++i) {
    source_labels[i] =
        static_cast<int>(sim::label_of(labels, source_corpus.words[i]));
  }

  std::size_t correct_aligned = 0;
  std::size_t correct_raw = 0;
  for (std::size_t j = 0; j < target_corpus.words.size(); ++j) {
    const net::IPv4 ip = target_corpus.words[j];
    const sim::GtClass truth = sim::label_of(labels, ip);
    if (truth == sim::GtClass::kUnknown) continue;
    // Skip anchors: a sender present in the source window would match its
    // own source vector, which is not transfer.
    if (source_corpus.id_of(ip) != corpus::Corpus::kNoWord) continue;
    ++result.evaluated;

    const auto aligned_nb = index.query_vector(target_in_source.vec(j), k);
    if (ml::majority_vote(aligned_nb, source_labels) ==
        static_cast<int>(truth)) {
      ++correct_aligned;
    }
    const auto raw_nb = index.query_vector(target_raw.vec(j), k);
    if (ml::majority_vote(raw_nb, source_labels) ==
        static_cast<int>(truth)) {
      ++correct_raw;
    }
  }
  if (result.evaluated > 0) {
    result.accuracy = static_cast<double>(correct_aligned) /
                      static_cast<double>(result.evaluated);
    result.accuracy_raw = static_cast<double>(correct_raw) /
                          static_cast<double>(result.evaluated);
  }
  return result;
}

}  // namespace darkvec
