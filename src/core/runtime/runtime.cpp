#include "darkvec/core/runtime/runtime.hpp"

#include "darkvec/core/runtime/checkpoint.hpp"

#include <chrono>
#include <cstdio>
#include <limits>
#include <thread>

#include "darkvec/obs/metric_names.hpp"
#include "darkvec/obs/metrics.hpp"

namespace darkvec::runtime {
namespace {

thread_local RunContext* tls_current = nullptr;

obs::Counter& cancelled_counter() {
  static obs::Counter& c = obs::counter(obs::names::kRuntimeCancelled);
  return c;
}
obs::Counter& deadline_counter() {
  static obs::Counter& c = obs::counter(obs::names::kRuntimeDeadlineExceeded);
  return c;
}
obs::Counter& budget_counter() {
  static obs::Counter& c = obs::counter(obs::names::kRuntimeBudgetExceeded);
  return c;
}

/// Resident set in bytes via /proc/self/statm (second field, pages).
/// Returns 0 when unavailable (non-Linux), which disables the RSS cap.
std::uint64_t current_rss_bytes() {
#ifdef __linux__
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  unsigned long long vm = 0;
  unsigned long long rss_pages = 0;
  const int got = std::fscanf(f, "%llu %llu", &vm, &rss_pages);
  std::fclose(f);
  if (got != 2) return 0;
  return static_cast<std::uint64_t>(rss_pages) * 4096u;
#else
  return 0;
#endif
}

}  // namespace

double Deadline::remaining_seconds() const noexcept {
  if (!finite()) return std::numeric_limits<double>::infinity();
  const auto left = tp_ - Clock::now();
  const double s = std::chrono::duration<double>(left).count();
  return s > 0 ? s : 0.0;
}

bool RunContext::rss_over_budget() const noexcept {
  const std::uint64_t rss = current_rss_bytes();
  return rss != 0 && rss > budget.max_rss_bytes;
}

void RunContext::check() const {
  const std::uint64_t n =
      checks_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (trip_after_checks != 0 && n >= trip_after_checks) {
    // The chaos matrix's deterministic interrupt: behaves exactly like
    // an external cancel, including waking every sibling thread.
    token.cancel();
  }
  if (token.cancelled()) {
    cancelled_counter().add();
    throw Cancelled("run cancelled");
  }
  // The clock read behind Deadline::expired() can be a syscall on
  // virtualized hosts, so it is sampled on the first check and every
  // 16th after, and latched once seen expired. That keeps checkpoints
  // in the low-nanosecond range the hot loops were budgeted for, at the
  // cost of the deadline firing up to 15 checks late.
  if (deadline_tripped_.load(std::memory_order_relaxed) ||
      ((n == 1 || (n & 15u) == 0) && deadline.expired())) {
    deadline_tripped_.store(true, std::memory_order_relaxed);
    if (degrade != DegradePolicy::kPartialResults) {
      deadline_counter().add();
      throw DeadlineExceeded("deadline exceeded");
    }
    // Partial-results mode: the caller is expected to consult
    // stop_reason()/deadline and truncate; check() stays quiet so work
    // already in flight can finish its tile.
  }
  if (budget.max_rss_bytes != 0 &&
      (budget_tripped_.load(std::memory_order_relaxed) ||
       ((n & 63u) == 0 && rss_over_budget()))) {
    budget_tripped_.store(true, std::memory_order_relaxed);
    budget_counter().add();
    throw BudgetExceeded("memory budget exceeded");
  }
}

StopReason RunContext::stop_reason() const noexcept {
  if (token.cancelled()) return StopReason::kCancelled;
  if (trip_after_checks != 0 &&
      checks_.load(std::memory_order_relaxed) >= trip_after_checks) {
    return StopReason::kCancelled;
  }
  if (budget_tripped_.load(std::memory_order_relaxed)) {
    return StopReason::kBudget;
  }
  if (deadline.expired()) return StopReason::kDeadline;
  return StopReason::kNone;
}

void note_retry() noexcept {
  static obs::Counter& c = obs::counter(obs::names::kRuntimeRetries);
  c.add();
}

void note_checkpoint_written() noexcept {
  static obs::Counter& c = obs::counter(obs::names::kRuntimeCheckpointsWritten);
  c.add();
}

void note_resume() noexcept {
  static obs::Counter& c = obs::counter(obs::names::kRuntimeResumes);
  c.add();
}

RunContext* current() noexcept { return tls_current; }

ContextScope::ContextScope(RunContext* ctx) noexcept : prev_(tls_current) {
  tls_current = ctx;
}

ContextScope::~ContextScope() { tls_current = prev_; }

bool interruptible_sleep(double seconds, const RunContext* ctx) {
  if (ctx == nullptr) ctx = current();
  constexpr double kSliceSeconds = 0.02;
  const Deadline until = Deadline::in(seconds);
  for (;;) {
    if (ctx != nullptr && ctx->should_stop()) return false;
    const double left = until.remaining_seconds();
    if (left <= 0) return true;
    const double slice = left < kSliceSeconds ? left : kSliceSeconds;
    std::this_thread::sleep_for(std::chrono::duration<double>(slice));
  }
}

}  // namespace darkvec::runtime
