#include "darkvec/core/contracts.hpp"
#include "darkvec/sim/ports.hpp"

#include <algorithm>
#include <unordered_set>

namespace darkvec::sim {

PortTable::PortTable(std::vector<std::pair<net::PortKey, double>> entries) {
  double total = 0;
  for (const auto& [key, w] : entries) {
    if (w > 0) total += w;
  }
  if (total <= 0) return;
  keys_.reserve(entries.size());
  cumulative_.reserve(entries.size());
  double acc = 0;
  for (const auto& [key, w] : entries) {
    if (w <= 0) continue;
    acc += w / total;
    keys_.push_back(key);
    cumulative_.push_back(acc);
  }
  cumulative_.back() = 1.0;  // guard against rounding
}

net::PortKey PortTable::sample(Rng& rng) const {
  DV_PRECONDITION(!keys_.empty(),
                  "PortTable: sample() requires a non-empty table");
  const double u = rng.uniform();
  const auto it = std::ranges::lower_bound(cumulative_, u);
  const auto idx = static_cast<std::size_t>(
      std::distance(cumulative_.begin(),
                    it == cumulative_.end() ? it - 1 : it));
  return keys_[idx];
}

std::vector<net::PortKey> random_port_keys(std::size_t n, Rng& rng,
                                           std::uint16_t lo, std::uint16_t hi,
                                           double udp_fraction) {
  std::unordered_set<net::PortKey> seen;
  std::vector<net::PortKey> out;
  out.reserve(n);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  while (out.size() < n && seen.size() < span * 2) {
    const auto port =
        static_cast<std::uint16_t>(lo + rng.uniform_int(span));
    const net::Protocol proto = rng.uniform() < udp_fraction
                                    ? net::Protocol::kUdp
                                    : net::Protocol::kTcp;
    const net::PortKey key{port, proto};
    if (seen.insert(key).second) out.push_back(key);
  }
  return out;
}

PortTable make_port_table(std::vector<std::pair<net::PortKey, double>> head,
                          const std::vector<net::PortKey>& tail) {
  double head_weight = 0;
  for (const auto& [key, w] : head) head_weight += w;
  if (!tail.empty()) {
    const double residual = std::max(0.0, 1.0 - head_weight);
    const double each = residual / static_cast<double>(tail.size());
    for (const net::PortKey& key : tail) head.emplace_back(key, each);
  }
  return PortTable{std::move(head)};
}

}  // namespace darkvec::sim
