#include "darkvec/sim/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <string_view>

#include "darkvec/obs/obs.hpp"
#include "darkvec/sim/ports.hpp"
#include "darkvec/sim/temporal.hpp"

namespace darkvec::sim {
namespace {

std::uint64_t hash_name(std::string_view name) {
  // FNV-1a: stable population stream identity across scenario reordering.
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ull;
  }
  return h;
}

/// Timestamps of one sender according to the population pattern.
std::vector<std::int64_t> sender_times(
    const PopulationSpec& spec, TimeSpan span, std::size_t index,
    std::size_t n_senders, const std::vector<std::int64_t>& impulse_times,
    const std::vector<TimeSpan>& shared_intervals, double burst_phase_sec,
    Rng& rng) {
  switch (spec.pattern) {
    case PatternKind::kPoisson:
      return poisson_arrivals(span, spec.packets_per_day, rng);
    case PatternKind::kOnOff: {
      const auto active =
          spec.shared_schedule
              ? shared_intervals
              : on_off_intervals(span, spec.on_hours, spec.off_hours, rng);
      return arrivals_in_intervals(active, spec.packets_per_day, rng);
    }
    case PatternKind::kSparse: {
      const auto n = std::max<std::uint64_t>(1, rng.poisson(spec.sparse_packets));
      return uniform_times(span, n, rng);
    }
    case PatternKind::kImpulse: {
      std::vector<std::int64_t> out;
      const auto len =
          static_cast<std::int64_t>(spec.impulse_minutes * net::kSecondsPerMinute);
      for (const std::int64_t start : impulse_times) {
        const auto n = rng.poisson(spec.impulse_packets);
        auto burst = uniform_times(TimeSpan{start, start + len}, n, rng);
        out.insert(out.end(), burst.begin(), burst.end());
      }
      std::ranges::sort(out);
      return out;
    }
    case PatternKind::kTeamShifts: {
      const int team = static_cast<int>(index % static_cast<std::size_t>(
                                                    std::max(spec.teams, 1)));
      const auto slots = team_slots(span, spec.teams, team, spec.slot_days);
      auto times = arrivals_in_intervals(slots, spec.packets_per_day, rng);
      if (spec.base_rate_per_day > 0) {
        auto base = poisson_arrivals(span, spec.base_rate_per_day, rng);
        times.insert(times.end(), base.begin(), base.end());
        std::ranges::sort(times);
      }
      return times;
    }
    case PatternKind::kGrowth: {
      // Quantile from the sender index keeps the activation curve smooth
      // even for small populations; jitter decorrelates neighbours.
      const double u = (static_cast<double>(index) + rng.uniform()) /
                       static_cast<double>(std::max<std::size_t>(n_senders, 1));
      const std::int64_t act = growth_activation(span, u, spec.growth);
      return poisson_arrivals(TimeSpan{act, span.t1}, spec.packets_per_day,
                              rng);
    }
    case PatternKind::kChurn: {
      const auto life_span = static_cast<double>(span.length());
      const auto lifetime = static_cast<std::int64_t>(
          rng.exponential(1.0 / (spec.lifetime_days * net::kSecondsPerDay)));
      const auto join =
          span.t0 +
          static_cast<std::int64_t>(rng.uniform(-0.5, 1.0) * life_span);
      const TimeSpan active{std::max(join, span.t0),
                            std::min(join + lifetime, span.t1)};
      if (active.length() <= 0) return {};
      return poisson_arrivals(active, spec.packets_per_day, rng);
    }
    case PatternKind::kDailyBurst:
    case PatternKind::kHourlyBurst: {
      const std::int64_t period = spec.pattern == PatternKind::kDailyBurst
                                      ? net::kSecondsPerDay
                                      : net::kSecondsPerHour;
      const auto burst_len = static_cast<std::int64_t>(
          spec.burst_minutes * net::kSecondsPerMinute);
      // Population-wide phase plus a small stable per-sender offset.
      const auto offset =
          static_cast<std::int64_t>(rng.uniform(0.0, 60.0));
      std::vector<std::int64_t> out;
      for (std::int64_t t = span.t0; t < span.t1; t += period) {
        const std::int64_t start =
            t + static_cast<std::int64_t>(burst_phase_sec) % period + offset;
        if (start >= span.t1) break;
        const auto n = rng.poisson(spec.burst_packets);
        auto burst = uniform_times(
            TimeSpan{start, std::min(start + burst_len, span.t1)}, n, rng);
        out.insert(out.end(), burst.begin(), burst.end());
      }
      std::ranges::sort(out);
      return out;
    }
  }
  return {};
}

}  // namespace

SimResult DarknetSimulator::run(std::span<const PopulationSpec> populations) {
  DV_SPAN_ARG("sim.run", "populations", populations.size());
  const Rng master(config_.seed);
  AddressAllocator allocator(master.fork(0xADD2));
  const TimeSpan span{config_.t0,
                      config_.t0 + config_.days * net::kSecondsPerDay};
  SimResult result;

  for (const PopulationSpec& spec : populations) {
    DV_SPAN("sim.population");
    const std::size_t packets_before = result.trace.size();
    Rng prng = master.fork(hash_name(spec.group));
    const std::size_t n =
        spec.scalable
            ? std::max<std::size_t>(
                  1, static_cast<std::size_t>(std::llround(
                         static_cast<double>(spec.senders) * config_.scale)))
            : spec.senders;

    const auto ips =
        allocator.allocate(n, spec.addr, spec.addr_subnets, spec.addr_base);

    // -- population-level shared context -------------------------------
    Rng ports_rng = prng.fork(0x1);
    std::vector<net::PortKey> shared_tail =
        random_port_keys(spec.random_ports, ports_rng);
    shared_tail.insert(shared_tail.end(), spec.extra_pool_ports.begin(),
                       spec.extra_pool_ports.end());

    std::vector<PortTable> team_tables;
    if (spec.pattern == PatternKind::kTeamShifts && spec.per_team_ports) {
      // Team tails are sampled from the explicit pool when given (shared
      // port universes across populations), else from a private random
      // pool of `team_port_pool` ports, else drawn independently.
      const std::vector<net::PortKey> pool =
          !spec.extra_pool_ports.empty()
              ? spec.extra_pool_ports
              : (spec.team_port_pool > 0
                     ? random_port_keys(spec.team_port_pool, ports_rng)
                     : std::vector<net::PortKey>{});
      team_tables.reserve(static_cast<std::size_t>(std::max(spec.teams, 1)));
      for (int t = 0; t < std::max(spec.teams, 1); ++t) {
        std::vector<net::PortKey> tail;
        if (pool.empty()) {
          tail = random_port_keys(spec.random_ports, ports_rng);
        } else {
          // Distinct sample of `random_ports` entries from the shared pool
          // (partial Fisher-Yates on an index permutation).
          std::vector<std::size_t> idx(pool.size());
          for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
          const std::size_t take = std::min(spec.random_ports, pool.size());
          for (std::size_t i = 0; i < take; ++i) {
            const std::size_t j =
                i + ports_rng.uniform_int(idx.size() - i);
            std::swap(idx[i], idx[j]);
            tail.push_back(pool[idx[i]]);
          }
        }
        team_tables.push_back(make_port_table(spec.top_ports, tail));
      }
    }
    const PortTable shared_table = make_port_table(spec.top_ports, shared_tail);

    std::vector<std::int64_t> impulse_times;
    if (spec.pattern == PatternKind::kImpulse) {
      Rng irng = prng.fork(0x2);
      impulse_times = uniform_times(span,
                                    static_cast<std::size_t>(
                                        std::max(spec.impulses, 0)),
                                    irng);
    }
    std::vector<TimeSpan> shared_intervals;
    if (spec.pattern == PatternKind::kOnOff && spec.shared_schedule) {
      Rng org = prng.fork(0x5);
      shared_intervals =
          on_off_intervals(span, spec.on_hours, spec.off_hours, org);
    }
    Rng phase_rng = prng.fork(0x3);
    const double burst_phase_sec =
        phase_rng.uniform() * (spec.pattern == PatternKind::kHourlyBurst
                                   ? net::kSecondsPerHour
                                   : net::kSecondsPerDay);

    // -- per-sender emission --------------------------------------------
    for (std::size_t i = 0; i < n; ++i) {
      Rng srng = prng.fork(0x1000 + i);
      const auto times = sender_times(spec, span, i, n, impulse_times,
                                      shared_intervals, burst_phase_sec, srng);
      if (times.empty()) continue;

      const PortTable* table = &shared_table;
      PortTable own_table;
      if (!team_tables.empty()) {
        table = &team_tables[i % team_tables.size()];
      } else if (spec.per_sender_ports && !shared_tail.empty()) {
        // Each sender samples its own small subset of the population pool.
        std::vector<net::PortKey> subset;
        subset.reserve(spec.ports_per_sender);
        for (std::size_t k = 0; k < spec.ports_per_sender; ++k) {
          subset.push_back(
              shared_tail[srng.uniform_int(shared_tail.size())]);
        }
        own_table = make_port_table(spec.top_ports, subset);
        table = &own_table;
      }

      for (const std::int64_t ts : times) {
        net::Packet p;
        p.ts = ts;
        p.src = ips[i];
        p.dst_host = static_cast<std::uint8_t>(srng.uniform_int(256));
        const net::PortKey key = table->sample(srng);
        p.dst_port = key.port;
        p.proto = key.proto;
        p.mirai_fingerprint = spec.fingerprint_prob > 0 &&
                              srng.uniform() < spec.fingerprint_prob;
        result.trace.push_back(p);
      }
      if (spec.label != GtClass::kUnknown) result.labels[ips[i]] = spec.label;
      result.groups[ips[i]] = spec.group;
    }
    DV_LOG_DEBUG("sim", "population generated", {"group", spec.group},
                 {"senders", n},
                 {"packets", result.trace.size() - packets_before});
  }

  static obs::Counter& packets_counter = obs::counter(obs::names::kSimPackets);
  packets_counter.add(result.trace.size());
  DV_LOG_INFO("sim", "simulation complete",
              {"populations", populations.size()},
              {"packets", result.trace.size()},
              {"senders", result.groups.size()});

  result.trace.sort();
  return result;
}

}  // namespace darkvec::sim
