#include "darkvec/sim/labels.hpp"

namespace darkvec::sim {

std::string_view to_string(GtClass c) {
  switch (c) {
    case GtClass::kMirai:
      return "Mirai-like";
    case GtClass::kCensys:
      return "Censys";
    case GtClass::kStretchoid:
      return "Stretchoid";
    case GtClass::kInternetCensus:
      return "Internet-census";
    case GtClass::kBinaryEdge:
      return "Binaryedge";
    case GtClass::kSharashka:
      return "Sharashka";
    case GtClass::kIpip:
      return "Ipip";
    case GtClass::kShodan:
      return "Shodan";
    case GtClass::kEnginUmich:
      return "Engin-umich";
    case GtClass::kUnknown:
      return "Unknown";
  }
  return "Unknown";
}

GtClass parse_gt_class(std::string_view name) {
  for (const GtClass c : kAllGtClasses) {
    if (to_string(c) == name) return c;
  }
  return GtClass::kUnknown;
}

}  // namespace darkvec::sim
