#include "darkvec/sim/vantage.hpp"

#include <unordered_map>

#include "darkvec/sim/rng.hpp"

namespace darkvec::sim {

VantageSplit split_vantage_points(const net::Trace& trace,
                                  const VantageOptions& options) {
  VantageSplit split;
  Rng rng(options.seed);

  enum class Visibility : std::uint8_t { kBoth, kOnlyA, kOnlyB };
  std::unordered_map<net::IPv4, Visibility> visibility;

  for (const net::Packet& p : trace) {
    auto it = visibility.find(p.src);
    if (it == visibility.end()) {
      Visibility v;
      if (rng.uniform() < options.both_probability) {
        v = Visibility::kBoth;
        ++split.senders_both;
      } else if (rng.uniform() < 0.5) {
        v = Visibility::kOnlyA;
        ++split.senders_only_a;
      } else {
        v = Visibility::kOnlyB;
        ++split.senders_only_b;
      }
      it = visibility.emplace(p.src, v).first;
    }
    switch (it->second) {
      case Visibility::kBoth:
        if (rng.uniform() < 0.5) {
          split.darknet_a.push_back(p);
        } else {
          split.darknet_b.push_back(p);
        }
        break;
      case Visibility::kOnlyA:
        split.darknet_a.push_back(p);
        break;
      case Visibility::kOnlyB:
        split.darknet_b.push_back(p);
        break;
    }
  }
  return split;
}

}  // namespace darkvec::sim
