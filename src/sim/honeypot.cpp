#include "darkvec/sim/honeypot.hpp"

#include <array>

namespace darkvec::sim {
namespace {

constexpr std::array<const char*, 8> kUsernames = {
    "root", "admin", "user", "pi", "test", "ubuntu", "oracle", "guest"};
constexpr std::array<const char*, 8> kPasswords = {
    "123456", "password", "admin", "root", "12345678", "qwerty", "1234",
    "default"};

}  // namespace

void HoneypotLog::add(HoneypotAttempt attempt) {
  sources_.insert(attempt.src);
  attempts_.push_back(std::move(attempt));
}

HoneypotLog simulate_honeypot(const net::Trace& trace, const GroupMap& groups,
                              std::span<const std::string> bruteforce_groups,
                              const HoneypotOptions& options) {
  HoneypotLog log;
  const std::unordered_set<std::string> wanted(bruteforce_groups.begin(),
                                               bruteforce_groups.end());
  Rng rng(options.seed);
  for (const net::Packet& p : trace) {
    if (p.dst_port != options.ssh_port ||
        p.proto != net::Protocol::kTcp) {
      continue;
    }
    const auto it = groups.find(p.src);
    if (it == groups.end() || !wanted.contains(it->second)) continue;
    if (rng.uniform() >= options.capture_probability) continue;
    HoneypotAttempt attempt;
    attempt.ts = p.ts;
    attempt.src = p.src;
    attempt.username = kUsernames[rng.uniform_int(kUsernames.size())];
    attempt.password = kPasswords[rng.uniform_int(kPasswords.size())];
    log.add(std::move(attempt));
  }
  return log;
}

double confirmed_fraction(const HoneypotLog& log,
                          std::span<const net::IPv4> senders) {
  if (senders.empty()) return 0;
  std::size_t confirmed = 0;
  for (const net::IPv4 ip : senders) {
    if (log.contains(ip)) ++confirmed;
  }
  return static_cast<double>(confirmed) /
         static_cast<double>(senders.size());
}

}  // namespace darkvec::sim
