#include "darkvec/sim/address_space.hpp"

#include <algorithm>

namespace darkvec::sim {
namespace {

bool reserved(std::uint32_t v) {
  const std::uint32_t a = v >> 24;
  return a == 0 || a == 10 || a == 127 || a >= 224;
}

}  // namespace

net::IPv4 AddressAllocator::random_routable() {
  while (true) {
    const auto v = static_cast<std::uint32_t>(rng_.next_u64());
    if (reserved(v)) continue;
    const net::IPv4 ip{v};
    if (used_.insert(ip).second) return ip;
  }
}

net::IPv4 AddressAllocator::random_slash24_base() {
  while (true) {
    const auto v = static_cast<std::uint32_t>(rng_.next_u64()) & 0xFFFFFF00u;
    if (!reserved(v)) return net::IPv4{v};
  }
}

net::IPv4 AddressAllocator::claim_in_block(std::uint32_t base,
                                           std::uint32_t span) {
  for (int attempt = 0; attempt < 512; ++attempt) {
    const auto offset = static_cast<std::uint32_t>(rng_.uniform_int(span));
    const net::IPv4 ip{base + offset};
    if (used_.insert(ip).second) return ip;
  }
  return random_routable();  // block effectively full
}

std::vector<net::IPv4> AddressAllocator::allocate(std::size_t n,
                                                  AddrPolicy policy,
                                                  std::size_t subnets,
                                                  std::uint32_t base) {
  std::vector<net::IPv4> out;
  out.reserve(n);
  switch (policy) {
    case AddrPolicy::kRandom:
      for (std::size_t i = 0; i < n; ++i) out.push_back(random_routable());
      break;
    case AddrPolicy::kSameSlash24: {
      const std::uint32_t block =
          base != 0 ? (base & 0xFFFFFF00u) : random_slash24_base().value();
      for (std::size_t i = 0; i < n; ++i)
        out.push_back(claim_in_block(block, 256));
      break;
    }
    case AddrPolicy::kSameSlash16: {
      const std::uint32_t block =
          base != 0 ? (base & 0xFFFF0000u)
                    : (random_slash24_base().value() & 0xFFFF0000u);
      for (std::size_t i = 0; i < n; ++i)
        out.push_back(claim_in_block(block, 65536));
      break;
    }
    case AddrPolicy::kFewSlash24: {
      std::vector<std::uint32_t> bases;
      bases.reserve(std::max<std::size_t>(subnets, 1));
      for (std::size_t s = 0; s < std::max<std::size_t>(subnets, 1); ++s)
        bases.push_back(random_slash24_base().value());
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint32_t block_base = bases[i % bases.size()];
        out.push_back(claim_in_block(block_base, 256));
      }
      break;
    }
    case AddrPolicy::kDistinctSlash24:
      // A fresh random /24 per sender: collisions across senders are
      // possible but rare, matching "1412 IPs in 1381 /24s".
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint32_t block_base = random_slash24_base().value();
        out.push_back(claim_in_block(block_base, 256));
      }
      break;
  }
  return out;
}

}  // namespace darkvec::sim
