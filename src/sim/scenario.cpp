#include "darkvec/sim/scenario.hpp"

#include "darkvec/sim/ports.hpp"

namespace darkvec::sim {
namespace {

using net::PortKey;
using net::Protocol;

constexpr PortKey tcp(std::uint16_t p) { return PortKey{p, Protocol::kTcp}; }
constexpr PortKey udp(std::uint16_t p) { return PortKey{p, Protocol::kUdp}; }
constexpr PortKey icmp() { return PortKey{0, Protocol::kIcmp}; }

}  // namespace

std::vector<PopulationSpec> paper_scenario() {
  std::vector<PopulationSpec> pops;

  // Shared port universes: a GT class and the independent actors that scan
  // the same services draw their "random" tails from the same pre-drawn
  // pool. On a real darknet many actors probe the same port universe,
  // which is exactly why port profiles alone cannot separate the classes
  // (Section 4) while temporal co-occurrence can.
  Rng pool_rng(0xDA2C);
  const auto censys_pool = random_port_keys(1250, pool_rng);
  const auto census_pool = random_port_keys(225, pool_rng);
  const auto binaryedge_pool = random_port_keys(16, pool_rng);
  const auto ipip_pool = random_port_keys(36, pool_rng);

  // ---- GT1: Mirai-like botnet(s). Telnet/ADB ports, per-packet Mirai
  // fingerprint, heavy node churn, sources spread across the Internet.
  {
    PopulationSpec p;
    p.group = "mirai";
    p.label = GtClass::kMirai;
    p.senders = 1200;
    p.pattern = PatternKind::kChurn;
    p.lifetime_days = 15;
    p.packets_per_day = 8;
    p.top_ports = {{tcp(23), 0.896}, {tcp(2323), 0.039}, {tcp(5555), 0.017},
                   {tcp(26), 0.013},  {tcp(9530), 0.0084}};
    p.random_ports = 70;
    p.fingerprint_prob = 1.0;
    pops.push_back(p);
  }

  // ---- GT2: Censys. Teams of scanners active in shifted multi-day slots,
  // each team sweeping its own large set of ports (Figure 12).
  {
    PopulationSpec p;
    p.group = "censys";
    p.label = GtClass::kCensys;
    p.senders = 168;
    p.scalable = false;
    p.pattern = PatternKind::kTeamShifts;
    p.teams = 7;
    p.slot_days = 2;
    p.packets_per_day = 60;  // while the team's slot is active
    p.base_rate_per_day = 3;  // sporadic activity outside the slots
    p.top_ports = {{tcp(5060), 0.034}, {tcp(2000), 0.029}, {tcp(443), 0.004},
                   {tcp(445), 0.004},  {tcp(5432), 0.004}};
    p.random_ports = 400;
    p.per_team_ports = true;
    p.extra_pool_ports = censys_pool;  // shared pool -> Jaccard ~0.19
    p.addr = AddrPolicy::kFewSlash24;
    p.addr_subnets = 12;
    pops.push_back(p);
  }

  // ---- GT3: Stretchoid. Few packets per sender at irregular times — the
  // class DarkVec struggles with (low recall, Figure 9a).
  {
    PopulationSpec p;
    p.group = "stretchoid";
    p.label = GtClass::kStretchoid;
    p.senders = 104;
    p.scalable = false;
    p.pattern = PatternKind::kSparse;
    p.sparse_packets = 14;
    p.top_ports = {{tcp(22), 0.035}, {tcp(443), 0.035}, {tcp(21), 0.027},
                   {tcp(9200), 0.027}, {tcp(139), 0.018}};
    p.random_ports = 85;
    p.addr = AddrPolicy::kFewSlash24;
    p.addr_subnets = 20;
    pops.push_back(p);
  }

  // ---- GT4: Internet Census.
  {
    PopulationSpec p;
    p.group = "internet_census";
    p.label = GtClass::kInternetCensus;
    p.senders = 103;
    p.scalable = false;
    p.pattern = PatternKind::kOnOff;
    p.shared_schedule = true;  // orchestrated campaign
    p.on_hours = 3;
    p.off_hours = 9;
    p.packets_per_day = 16;  // while the campaign is on (avg ~4/day)
    p.top_ports = {{tcp(5060), 0.104}, {udp(161), 0.098}, {tcp(2000), 0.077},
                   {tcp(443), 0.065},  {udp(53), 0.029}};
    p.extra_pool_ports = census_pool;
    p.addr = AddrPolicy::kFewSlash24;
    p.addr_subnets = 4;
    pops.push_back(p);
  }

  // ---- GT5: BinaryEdge.
  {
    PopulationSpec p;
    p.group = "binaryedge";
    p.label = GtClass::kBinaryEdge;
    p.senders = 101;
    p.scalable = false;
    p.pattern = PatternKind::kOnOff;
    p.shared_schedule = true;
    p.on_hours = 3;
    p.off_hours = 9;
    p.packets_per_day = 12;  // avg ~3/day
    p.top_ports = {{tcp(15), 0.10},  {tcp(3000), 0.096}, {tcp(4222), 0.067},
                   {tcp(587), 0.066}, {tcp(9100), 0.058}};
    p.extra_pool_ports = binaryedge_pool;
    p.addr = AddrPolicy::kFewSlash24;
    p.addr_subnets = 8;
    pops.push_back(p);
  }

  // ---- GT6: Sharashka — near-uniform spread over hundreds of ports.
  {
    PopulationSpec p;
    p.group = "sharashka";
    p.label = GtClass::kSharashka;
    p.senders = 50;
    p.scalable = false;
    p.pattern = PatternKind::kOnOff;
    p.shared_schedule = true;
    p.on_hours = 3;
    p.off_hours = 9;
    p.packets_per_day = 16;  // avg ~4/day
    p.random_ports = 480;
    p.addr = AddrPolicy::kFewSlash24;
    p.addr_subnets = 3;
    pops.push_back(p);
  }

  // ---- GT7: Ipip — SIP-heavy probing plus ICMP.
  {
    PopulationSpec p;
    p.group = "ipip";
    p.label = GtClass::kIpip;
    p.senders = 49;
    p.scalable = false;
    p.pattern = PatternKind::kOnOff;
    p.shared_schedule = true;
    p.on_hours = 4;
    p.off_hours = 8;
    p.packets_per_day = 36;  // avg ~12/day
    p.top_ports = {{tcp(5060), 0.415}, {icmp(), 0.109}, {tcp(8000), 0.023},
                   {tcp(8888), 0.021}, {tcp(22), 0.021}};
    p.extra_pool_ports = ipip_pool;
    p.addr = AddrPolicy::kFewSlash24;
    p.addr_subnets = 2;
    pops.push_back(p);
  }

  // ---- GT8: Shodan — flat spread over hundreds of ports.
  {
    PopulationSpec p;
    p.group = "shodan";
    p.label = GtClass::kShodan;
    p.senders = 23;
    p.scalable = false;
    p.pattern = PatternKind::kOnOff;
    p.shared_schedule = true;
    p.on_hours = 4;
    p.off_hours = 8;
    p.packets_per_day = 60;  // avg ~20/day
    p.top_ports = {{tcp(443), 0.009}, {tcp(80), 0.009}, {tcp(2222), 0.009},
                   {tcp(2000), 0.007}, {tcp(2087), 0.007}};
    p.random_ports = 345;
    p.addr = AddrPolicy::kFewSlash24;
    p.addr_subnets = 6;
    pops.push_back(p);
  }

  // ---- GT9: Engin-Umich — 10 senders, DNS only, synchronized impulses
  // (Figure 9b).
  {
    PopulationSpec p;
    p.group = "engin_umich";
    p.label = GtClass::kEnginUmich;
    p.senders = 10;
    p.scalable = false;
    p.pattern = PatternKind::kImpulse;
    p.impulses = 5;
    p.impulse_minutes = 8;
    p.impulse_packets = 10;
    p.top_ports = {{udp(53), 1.0}};
    p.addr = AddrPolicy::kSameSlash24;
    pops.push_back(p);
  }

  // ---- Shadowserver: three groups sharing one /16, same port family with
  // different intensities (Section 7.3.2, Figure 13). Unknown to the GT.
  constexpr std::uint32_t kShadowserverSlash16 = 0xCB4C0000u;  // 203.76.0.0
  {
    PopulationSpec p;
    p.group = "shadowserver_g1";
    p.senders = 61;
    p.scalable = false;
    p.pattern = PatternKind::kOnOff;
    p.shared_schedule = true;
    p.on_hours = 3;
    p.off_hours = 6;
    p.packets_per_day = 12;
    p.top_ports = {{udp(623), 0.10}, {udp(123), 0.10}, {udp(111), 0.03},
                   {udp(137), 0.03}, {udp(5683), 0.02}, {udp(3389), 0.02}};
    p.random_ports = 41;
    p.addr = AddrPolicy::kSameSlash16;
    p.addr_base = kShadowserverSlash16;
    pops.push_back(p);
  }
  {
    PopulationSpec p;
    p.group = "shadowserver_g2";
    p.senders = 36;
    p.scalable = false;
    p.pattern = PatternKind::kOnOff;
    p.shared_schedule = true;
    p.on_hours = 2;
    p.off_hours = 7;
    p.packets_per_day = 18;  // denser bursts: the weakest sub-group
    p.top_ports = {{udp(5683), 0.13}, {udp(3389), 0.12}, {udp(623), 0.03},
                   {udp(123), 0.03},  {udp(111), 0.02},  {udp(137), 0.02}};
    p.random_ports = 36;
    p.addr = AddrPolicy::kSameSlash16;
    p.addr_base = kShadowserverSlash16;
    pops.push_back(p);
  }
  {
    PopulationSpec p;
    p.group = "shadowserver_g3";
    p.senders = 16;
    p.scalable = false;
    p.pattern = PatternKind::kOnOff;
    p.shared_schedule = true;
    p.on_hours = 3;
    p.off_hours = 6;
    p.packets_per_day = 12;
    p.top_ports = {{udp(111), 0.35}, {udp(137), 0.28}, {udp(623), 0.02},
                   {udp(123), 0.02}, {udp(5683), 0.02}, {udp(3389), 0.02}};
    p.random_ports = 45;
    p.addr = AddrPolicy::kSameSlash16;
    p.addr_base = kShadowserverSlash16;
    pops.push_back(p);
  }

  // ---- unknown1: NetBIOS scan from one /24 (Cogent), very regular.
  {
    PopulationSpec p;
    p.group = "unknown1_netbios";
    p.senders = 85;
    p.scalable = false;
    p.pattern = PatternKind::kDailyBurst;
    p.burst_packets = 7;
    p.burst_minutes = 20;
    p.top_ports = {{udp(137), 0.60}};
    p.random_ports = 17;
    p.addr = AddrPolicy::kSameSlash24;
    pops.push_back(p);
  }

  // ---- unknown2: SMTP scan from one /24 in a cloud range.
  {
    PopulationSpec p;
    p.group = "unknown2_smtp";
    p.senders = 10;
    p.scalable = false;
    p.pattern = PatternKind::kPoisson;
    p.packets_per_day = 5.5;
    p.top_ports = {{tcp(25), 0.76}};
    p.random_ports = 11;
    p.addr = AddrPolicy::kSameSlash24;
    pops.push_back(p);
  }

  // ---- unknown3: SMB scan, 61 IPs scattered over 23 /24s.
  {
    PopulationSpec p;
    p.group = "unknown3_smb";
    p.senders = 61;
    p.scalable = false;
    p.pattern = PatternKind::kDailyBurst;
    p.burst_packets = 6;
    p.burst_minutes = 30;
    p.top_ports = {{tcp(445), 0.995}};
    p.random_ports = 4;
    p.addr = AddrPolicy::kFewSlash24;
    p.addr_subnets = 23;
    pops.push_back(p);
  }

  // ---- unknown4: ADB worm — exponential activation ramp (Figure 15).
  {
    PopulationSpec p;
    p.group = "unknown4_adb";
    p.senders = 150;
    p.pattern = PatternKind::kGrowth;
    p.growth = 3.5;
    p.packets_per_day = 20;
    p.top_ports = {{tcp(5555), 0.75}};
    p.random_ports = 140;
    pops.push_back(p);
  }

  // ---- unknown5 companion population: Mirai-like behaviour *without* the
  // fingerprint. Cluster C18 in the paper mixes these with GT1.
  {
    PopulationSpec p;
    p.group = "mirai_nofp";
    p.senders = 420;  // ~26%% of the Mirai-like population (unknown5: 71%% fp)
    p.pattern = PatternKind::kChurn;
    p.lifetime_days = 15;
    p.packets_per_day = 8;
    p.top_ports = {{tcp(23), 0.877}, {tcp(2323), 0.02}, {udp(2000), 0.01}};
    p.random_ports = 80;
    pops.push_back(p);
  }

  // ---- unknown6: SSH brute-force bots — bursty, 88% on 22/TCP.
  {
    PopulationSpec p;
    p.group = "unknown6_ssh";
    p.senders = 150;
    p.pattern = PatternKind::kOnOff;
    p.shared_schedule = true;
    p.on_hours = 4;
    p.off_hours = 20;
    p.packets_per_day = 48;  // brute-force burst rate while on
    p.top_ports = {{tcp(22), 0.88}};
    p.random_ports = 115;
    pops.push_back(p);
  }

  // ---- unknown7: horizontal scanner, equal share over ~148 ports, daily.
  {
    PopulationSpec p;
    p.group = "unknown7_horizontal";
    p.senders = 80;
    p.pattern = PatternKind::kDailyBurst;
    p.burst_packets = 10;
    p.burst_minutes = 45;
    p.random_ports = 148;
    pops.push_back(p);
  }

  // ---- unknown8: small scanner, equal share over 69 ports, hourly.
  {
    PopulationSpec p;
    p.group = "unknown8_hourly";
    p.senders = 22;
    p.scalable = false;
    p.pattern = PatternKind::kHourlyBurst;
    p.burst_packets = 0.8;
    p.burst_minutes = 5;
    p.random_ports = 69;
    pops.push_back(p);
  }

  // ---- Port-profile mimics: independent, uncoordinated actors scanning
  // the same services as the GT classes (SIP sweeps, SMB/Telnet/SSH
  // scanners, DNS probers, ...). On a real darknet these make port
  // profiles ambiguous — the paper's Section 4 point — while DarkVec still
  // separates the classes through temporal co-occurrence. The paper calls
  // this out explicitly for DNS: "there are a lot of other senders that
  // target port 53", yet Engin-Umich's 10 impulsive senders stay separable.
  {
    PopulationSpec p;
    p.group = "mimic_dns";
    p.senders = 80;
    p.pattern = PatternKind::kPoisson;
    p.packets_per_day = 4;
    p.top_ports = {{udp(53), 0.9}};
    p.random_ports = 10;
    p.per_sender_ports = true;
    p.ports_per_sender = 4;
    pops.push_back(p);
  }
  {
    PopulationSpec p;
    p.group = "mimic_sip";
    p.senders = 100;
    p.pattern = PatternKind::kPoisson;
    p.packets_per_day = 6;
    p.top_ports = {{tcp(5060), 0.415}, {icmp(), 0.109}, {tcp(8000), 0.023},
                   {tcp(8888), 0.021}, {tcp(22), 0.021}};
    p.extra_pool_ports = ipip_pool;
    pops.push_back(p);
  }
  {
    PopulationSpec p;
    p.group = "mimic_binaryedge";
    p.senders = 160;
    p.pattern = PatternKind::kPoisson;
    p.packets_per_day = 3;
    p.top_ports = {{tcp(15), 0.10},  {tcp(3000), 0.096}, {tcp(4222), 0.067},
                   {tcp(587), 0.066}, {tcp(9100), 0.058}};
    p.extra_pool_ports = binaryedge_pool;
    pops.push_back(p);
  }
  {
    PopulationSpec p;
    p.group = "mimic_census";
    p.senders = 160;
    p.pattern = PatternKind::kPoisson;
    p.packets_per_day = 4;
    p.top_ports = {{tcp(5060), 0.104}, {udp(161), 0.098}, {tcp(2000), 0.077},
                   {tcp(443), 0.065},  {udp(53), 0.029}};
    p.extra_pool_ports = census_pool;
    pops.push_back(p);
  }
  {
    PopulationSpec p;
    p.group = "mimic_stretchoid";
    p.senders = 70;
    p.pattern = PatternKind::kSparse;
    p.sparse_packets = 14;
    p.top_ports = {{tcp(22), 0.035}, {tcp(443), 0.035}, {tcp(21), 0.027},
                   {tcp(9200), 0.027}, {tcp(139), 0.018}};
    p.random_ports = 85;
    pops.push_back(p);
  }
  {
    PopulationSpec p;
    p.group = "mimic_censys";
    p.senders = 200;
    p.pattern = PatternKind::kPoisson;
    p.packets_per_day = 9;
    p.top_ports = {{tcp(5060), 0.034}, {tcp(2000), 0.029}, {tcp(443), 0.004},
                   {tcp(445), 0.004},  {tcp(5432), 0.004}};
    p.extra_pool_ports = censys_pool;
    p.per_sender_ports = true;
    p.ports_per_sender = 60;
    pops.push_back(p);
  }
  {
    PopulationSpec p;
    p.group = "mimic_smb";
    p.senders = 120;
    p.pattern = PatternKind::kPoisson;
    p.packets_per_day = 4;
    p.top_ports = {{tcp(445), 0.8}};
    p.random_ports = 12;
    p.per_sender_ports = true;
    p.ports_per_sender = 4;
    pops.push_back(p);
  }
  {
    PopulationSpec p;
    p.group = "mimic_ssh";
    p.senders = 100;
    p.pattern = PatternKind::kPoisson;
    p.packets_per_day = 5;
    p.top_ports = {{tcp(22), 0.8}};
    p.random_ports = 12;
    p.per_sender_ports = true;
    p.ports_per_sender = 4;
    pops.push_back(p);
  }

  // ---- Background: active-but-uncoordinated unknowns. Port mix mirrors
  // the Unknown row of Table 2; each sender probes its own small subset.
  {
    PopulationSpec p;
    p.group = "background_active";
    p.senders = 1500;
    p.pattern = PatternKind::kOnOff;
    p.on_hours = 12;
    p.off_hours = 24;
    p.packets_per_day = 4;
    p.top_ports = {{tcp(445), 0.15}, {tcp(5555), 0.12}, {tcp(1433), 0.05},
                   {udp(123), 0.04}, {tcp(6379), 0.04}};
    p.random_ports = 120;
    // Mimic the GT classes' signature ports: background senders touch the
    // same ports as the scanners (as on a real darknet), so port profiles
    // alone cannot separate the classes — only temporal co-occurrence can.
    p.extra_pool_ports = {
        tcp(23),   tcp(2323), tcp(5555), tcp(26),   tcp(9530), tcp(5060),
        tcp(2000), tcp(443),  tcp(445),  tcp(5432), tcp(22),   tcp(9200),
        tcp(139),  tcp(21),   udp(161),  udp(53),   tcp(15),   tcp(3000),
        tcp(4222), tcp(587),  tcp(9100), icmp(),    tcp(8000), tcp(8888),
        tcp(80),   tcp(2222), tcp(2087), tcp(25),   udp(137),  udp(111),
        udp(623),  udp(123),  tcp(1433), tcp(6379),
    };
    p.per_sender_ports = true;
    p.ports_per_sender = 8;
    pops.push_back(p);
  }

  // ---- Occasional senders: 2-9 packets/month — below the activity filter.
  {
    PopulationSpec p;
    p.group = "background_occasional";
    p.senders = 7000;
    p.pattern = PatternKind::kSparse;
    p.sparse_packets = 4;
    p.random_ports = 250;
    // Mimic the GT classes' signature ports: background senders touch the
    // same ports as the scanners (as on a real darknet), so port profiles
    // alone cannot separate the classes — only temporal co-occurrence can.
    p.extra_pool_ports = {
        tcp(23),   tcp(2323), tcp(5555), tcp(26),   tcp(9530), tcp(5060),
        tcp(2000), tcp(443),  tcp(445),  tcp(5432), tcp(22),   tcp(9200),
        tcp(139),  tcp(21),   udp(161),  udp(53),   tcp(15),   tcp(3000),
        tcp(4222), tcp(587),  tcp(9100), icmp(),    tcp(8000), tcp(8888),
        tcp(80),   tcp(2222), tcp(2087), tcp(25),   udp(137),  udp(111),
        udp(623),  udp(123),  tcp(1433), tcp(6379),
    };
    p.per_sender_ports = true;
    p.ports_per_sender = 3;
    pops.push_back(p);
  }

  // ---- Backscatter: victims of spoofed-source attacks, seen once or
  // twice (36% of all senders appear exactly once in the paper).
  {
    PopulationSpec p;
    p.group = "background_backscatter";
    p.senders = 9000;
    p.pattern = PatternKind::kSparse;
    p.sparse_packets = 0.4;  // max(1, Poisson(0.4)): mostly single packets
    p.random_ports = 2000;
    p.per_sender_ports = true;
    p.ports_per_sender = 2;
    pops.push_back(p);
  }

  return pops;
}

std::vector<PopulationSpec> tiny_scenario() {
  std::vector<PopulationSpec> pops;
  {
    PopulationSpec p;
    p.group = "toy_botnet";
    p.label = GtClass::kMirai;
    p.senders = 40;
    p.scalable = false;
    p.pattern = PatternKind::kPoisson;
    p.packets_per_day = 20;
    p.top_ports = {{tcp(23), 0.9}, {tcp(2323), 0.1}};
    p.fingerprint_prob = 1.0;
    pops.push_back(p);
  }
  {
    PopulationSpec p;
    p.group = "toy_scanner";
    p.label = GtClass::kCensys;
    p.senders = 20;
    p.scalable = false;
    p.pattern = PatternKind::kTeamShifts;
    p.teams = 2;
    p.slot_days = 1;
    p.packets_per_day = 40;
    p.top_ports = {{tcp(80), 0.3}, {tcp(443), 0.3}, {tcp(8080), 0.2}};
    p.random_ports = 20;
    p.addr = AddrPolicy::kSameSlash24;
    pops.push_back(p);
  }
  {
    PopulationSpec p;
    p.group = "toy_noise";
    p.senders = 60;
    p.scalable = false;
    p.pattern = PatternKind::kPoisson;
    p.packets_per_day = 6;
    p.random_ports = 200;
    p.per_sender_ports = true;
    p.ports_per_sender = 4;
    pops.push_back(p);
  }
  return pops;
}

}  // namespace darkvec::sim
