#include "darkvec/sim/temporal.hpp"

#include <algorithm>
#include <cmath>

#include "darkvec/net/time.hpp"

namespace darkvec::sim {

std::vector<std::int64_t> poisson_arrivals(TimeSpan span, double rate_per_day,
                                           Rng& rng) {
  std::vector<std::int64_t> out;
  if (rate_per_day <= 0 || span.length() <= 0) return out;
  const double rate_per_sec =
      rate_per_day / static_cast<double>(net::kSecondsPerDay);
  double t = static_cast<double>(span.t0);
  const auto end = static_cast<double>(span.t1);
  while (true) {
    t += rng.exponential(rate_per_sec);
    if (t >= end) break;
    out.push_back(static_cast<std::int64_t>(t));
  }
  return out;
}

std::vector<std::int64_t> uniform_times(TimeSpan span, std::size_t n,
                                        Rng& rng) {
  std::vector<std::int64_t> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(span.t0 +
                  static_cast<std::int64_t>(
                      rng.uniform() * static_cast<double>(span.length())));
  }
  std::ranges::sort(out);
  return out;
}

std::vector<TimeSpan> on_off_intervals(TimeSpan span, double on_hours,
                                       double off_hours, Rng& rng) {
  std::vector<TimeSpan> out;
  if (span.length() <= 0 || on_hours <= 0) return out;
  const double on_mean = on_hours * net::kSecondsPerHour;
  const double off_mean = off_hours * net::kSecondsPerHour;
  // Random initial phase within one on+off cycle.
  double t = static_cast<double>(span.t0) -
             rng.uniform() * (on_mean + off_mean);
  const auto end = static_cast<double>(span.t1);
  bool active = true;
  while (t < end) {
    const double len =
        active ? rng.exponential(1.0 / on_mean)
               : (off_mean > 0 ? rng.exponential(1.0 / off_mean) : 0.0);
    if (active) {
      const auto lo = std::max(t, static_cast<double>(span.t0));
      const auto hi = std::min(t + len, end);
      if (hi > lo) {
        out.push_back(TimeSpan{static_cast<std::int64_t>(lo),
                               static_cast<std::int64_t>(hi)});
      }
    }
    t += len;
    active = !active;
  }
  return out;
}

std::vector<TimeSpan> team_slots(TimeSpan span, int teams, int team,
                                 double slot_days) {
  std::vector<TimeSpan> out;
  if (teams <= 0 || slot_days <= 0) return out;
  const auto slot_len =
      static_cast<std::int64_t>(slot_days * net::kSecondsPerDay);
  std::int64_t t = span.t0;
  int slot = 0;
  while (t < span.t1) {
    const std::int64_t t1 = std::min(t + slot_len, span.t1);
    if (slot % teams == team) out.push_back(TimeSpan{t, t1});
    t = t1;
    ++slot;
  }
  return out;
}

std::int64_t growth_activation(TimeSpan span, double u, double growth) {
  if (growth <= 0) {
    return span.t0 +
           static_cast<std::int64_t>(u * static_cast<double>(span.length()));
  }
  // Inverse CDF of f(t) ∝ e^{growth·t/T} on [0, T].
  const double T = static_cast<double>(span.length());
  const double x = std::log1p(u * (std::exp(growth) - 1.0)) / growth;
  return span.t0 + static_cast<std::int64_t>(x * T);
}

std::vector<std::int64_t> arrivals_in_intervals(
    const std::vector<TimeSpan>& active, double rate_per_day, Rng& rng) {
  std::vector<std::int64_t> out;
  for (const TimeSpan& span : active) {
    auto part = poisson_arrivals(span, rate_per_day, rng);
    out.insert(out.end(), part.begin(), part.end());
  }
  std::ranges::sort(out);
  return out;
}

}  // namespace darkvec::sim
