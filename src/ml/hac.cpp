#include "darkvec/ml/hac.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

namespace darkvec::ml {
namespace {

/// Lance-Williams coefficients: d(k, i∪j) from d(k,i), d(k,j).
double merge_distance(Linkage linkage, double dki, double dkj,
                      std::size_t size_i, std::size_t size_j) {
  switch (linkage) {
    case Linkage::kSingle:
      return std::min(dki, dkj);
    case Linkage::kComplete:
      return std::max(dki, dkj);
    case Linkage::kAverage: {
      const double total = static_cast<double>(size_i + size_j);
      return (static_cast<double>(size_i) * dki +
              static_cast<double>(size_j) * dkj) /
             total;
    }
  }
  return std::min(dki, dkj);
}

}  // namespace

HacResult agglomerative(const w2v::Embedding& points, int n_clusters,
                        Linkage linkage) {
  HacResult result;
  const std::size_t n = points.size();
  result.assignment.assign(n, 0);
  if (n == 0) return result;
  const auto target = static_cast<std::size_t>(
      std::clamp<std::size_t>(static_cast<std::size_t>(
                                  std::max(n_clusters, 1)),
                              1, n));

  const w2v::Embedding unit = points.normalized();
  // Dense distance matrix (cosine distance).
  std::vector<double> dist(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double d = 1.0 - w2v::dot(unit.vec(i), unit.vec(j));
      dist[i * n + j] = d;
      dist[j * n + i] = d;
    }
  }

  std::vector<bool> alive(n, true);
  std::vector<std::size_t> size(n, 1);
  std::vector<int> parent(n);
  std::iota(parent.begin(), parent.end(), 0);

  std::size_t remaining = n;
  while (remaining > target) {
    // Find the closest live pair.
    double best = std::numeric_limits<double>::infinity();
    std::size_t bi = 0;
    std::size_t bj = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (!alive[i]) continue;
      for (std::size_t j = i + 1; j < n; ++j) {
        if (!alive[j]) continue;
        if (dist[i * n + j] < best) {
          best = dist[i * n + j];
          bi = i;
          bj = j;
        }
      }
    }
    // Merge bj into bi.
    for (std::size_t k = 0; k < n; ++k) {
      if (!alive[k] || k == bi || k == bj) continue;
      const double d = merge_distance(linkage, dist[k * n + bi],
                                      dist[k * n + bj], size[bi], size[bj]);
      dist[k * n + bi] = d;
      dist[bi * n + k] = d;
    }
    alive[bj] = false;
    size[bi] += size[bj];
    parent[bj] = static_cast<int>(bi);
    --remaining;
  }

  // Path-compress to the live roots and renumber densely.
  const auto root_of = [&](std::size_t i) {
    std::size_t r = i;
    while (parent[r] != static_cast<int>(r)) {
      r = static_cast<std::size_t>(parent[r]);
    }
    return r;
  };
  std::vector<int> dense(n, -1);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t root = root_of(i);
    if (dense[root] < 0) dense[root] = result.clusters++;
    result.assignment[i] = dense[root];
  }
  return result;
}

}  // namespace darkvec::ml
