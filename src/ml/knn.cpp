#include "darkvec/ml/knn.hpp"

#include <cmath>
#include <numeric>

#include "darkvec/core/contracts.hpp"
#include "darkvec/core/runtime/retry.hpp"
#include "darkvec/obs/obs.hpp"

namespace darkvec::ml {

std::vector<Neighbor> CosineKnn::query(std::size_t i, int k) const {
  DV_PRECONDITION(i < normalized_.size(),
                  "CosineKnn: query row is a valid embedding row");
  return query_vector(normalized_.vec(i), k, static_cast<std::int64_t>(i));
}

std::vector<Neighbor> CosineKnn::query_vector(std::span<const float> v, int k,
                                              std::int64_t exclude) const {
  DV_PRECONDITION(v.size() == static_cast<std::size_t>(normalized_.dim()),
                  "CosineKnn: query vector matches the index dimension");
  if (k <= 0) return {};
  // Normalize the query so results are true cosine similarities. The
  // tiled scan keeps one float accumulator per candidate walking dims
  // ascending — the dispatched twin of the historical serial loop, so
  // results stay bit-identical while single-query latency matches the
  // batch path's per-row cost.
  const double norm = std::sqrt(w2v::dot(v, v));
  const float inv = norm > 0 ? static_cast<float>(1.0 / norm) : 0.0f;
  return topk_scan(normalized_, v, inv, k, exclude);
}

std::vector<std::vector<Neighbor>> CosineKnn::query_batch(std::size_t lo,
                                                          std::size_t hi,
                                                          int k) const {
  std::vector<std::uint32_t> points(hi > lo ? hi - lo : 0);
  std::iota(points.begin(), points.end(), static_cast<std::uint32_t>(lo));
  return batch_topk(normalized_, points, k);
}

std::vector<std::vector<Neighbor>> CosineKnn::query_batch(
    std::span<const std::uint32_t> points, int k) const {
  return batch_topk(normalized_, points, k);
}

std::vector<std::vector<Neighbor>> CosineKnn::all_neighbors(int k) const {
  return query_batch(0, normalized_.size(), k);
}

const w2v::QuantizedEmbedding& CosineKnn::quantized() const {
  std::call_once(quant_once_, [this] {
    quant_ = w2v::QuantizedEmbedding::quantize(normalized_);
  });
  return quant_;
}

std::vector<std::vector<Neighbor>> CosineKnn::query_batch_quantized(
    std::span<const std::uint32_t> points, int k) const {
  return batch_topk(quantized(), points, k);
}

std::vector<std::vector<Neighbor>> CosineKnn::all_neighbors_quantized(
    int k) const {
  std::vector<std::uint32_t> points(normalized_.size());
  std::iota(points.begin(), points.end(), 0u);
  return batch_topk(quantized(), points, k);
}

const IvfIndex& CosineKnn::ann(const IvfOptions& options) const {
  std::call_once(ann_once_, [&] {
    ann_ = std::make_unique<IvfIndex>(IvfIndex::build(normalized_, options));
  });
  return *ann_;
}

const IvfIndex* CosineKnn::ann_for(const AnnSearchParams& params) const {
  if (params.index_path.empty()) return &ann();
  std::call_once(load_once_, [&] {
    static obs::Counter& fallback_counter =
        obs::counter(obs::names::kRuntimeAnnFallback);
    try {
      auto idx = std::make_unique<IvfIndex>(
          io::with_retry(io::RetryPolicy::transient_reads(), [&] {
            return IvfIndex::load_file(params.index_path,
                                       io::IoPolicy::strict());
          }));
      if (idx->size() != normalized_.size() ||
          idx->dim() != normalized_.dim()) {
        throw io::FormatError(
            "DVAI index shape " + std::to_string(idx->size()) + "x" +
            std::to_string(idx->dim()) + " does not match the embedding");
      }
      loaded_ = std::move(idx);
    } catch (const io::IoError& e) {
      // Degrade, don't die: the exact engine answers every query the
      // index would have, just without the sub-linear scan.
      fallback_counter.add();
      DV_LOG_WARN("knn", "DVAI index load failed; using the exact engine",
                  {"path", params.index_path}, {"error", e.what()});
    }
  });
  return loaded_.get();
}

std::vector<Neighbor> CosineKnn::query(std::size_t i, int k,
                                       const AnnSearchParams& params) const {
  if (!params.enabled) return query(i, k);
  const IvfIndex* idx = ann_for(params);
  if (idx == nullptr) return query(i, k);
  return idx->query(i, k, params.nprobe);
}

std::vector<std::vector<Neighbor>> CosineKnn::query_batch(
    std::span<const std::uint32_t> points, int k,
    const AnnSearchParams& params) const {
  if (!params.enabled) return query_batch(points, k);
  const IvfIndex* idx = ann_for(params);
  if (idx == nullptr) return query_batch(points, k);
  return idx->query_batch(points, k, params.nprobe);
}

std::vector<std::vector<Neighbor>> CosineKnn::all_neighbors(
    int k, const AnnSearchParams& params) const {
  if (!params.enabled) return all_neighbors(k);
  const IvfIndex* idx = ann_for(params);
  if (idx == nullptr) return all_neighbors(k);
  std::vector<std::uint32_t> points(normalized_.size());
  std::iota(points.begin(), points.end(), 0u);
  return idx->query_batch(points, k, params.nprobe);
}

}  // namespace darkvec::ml
