#include "darkvec/ml/knn.hpp"

#include <algorithm>
#include <cmath>

namespace darkvec::ml {
namespace {

// Min-heap ordering on similarity so the worst kept neighbour sits on top.
struct WorseFirst {
  bool operator()(const Neighbor& a, const Neighbor& b) const {
    if (a.similarity != b.similarity) return a.similarity > b.similarity;
    return a.index < b.index;  // deterministic tie-break
  }
};

}  // namespace

std::vector<Neighbor> CosineKnn::query(std::size_t i, int k) const {
  return query_vector(normalized_.vec(i), k, static_cast<std::int64_t>(i));
}

std::vector<Neighbor> CosineKnn::query_vector(std::span<const float> v, int k,
                                              std::int64_t exclude) const {
  std::vector<Neighbor> heap;
  if (k <= 0) return heap;
  // Normalize the query so results are true cosine similarities.
  const double norm = std::sqrt(w2v::dot(v, v));
  const float inv = norm > 0 ? static_cast<float>(1.0 / norm) : 0.0f;

  heap.reserve(static_cast<std::size_t>(k) + 1);
  const std::size_t n = normalized_.size();
  for (std::size_t j = 0; j < n; ++j) {
    if (static_cast<std::int64_t>(j) == exclude) continue;
    const auto row = normalized_.vec(j);
    float sim = 0;
    for (std::size_t d = 0; d < row.size(); ++d) sim += v[d] * row[d];
    sim *= inv;
    if (heap.size() < static_cast<std::size_t>(k)) {
      heap.push_back({static_cast<std::uint32_t>(j), sim});
      std::push_heap(heap.begin(), heap.end(), WorseFirst{});
    } else if (sim > heap.front().similarity) {
      std::pop_heap(heap.begin(), heap.end(), WorseFirst{});
      heap.back() = {static_cast<std::uint32_t>(j), sim};
      std::push_heap(heap.begin(), heap.end(), WorseFirst{});
    }
  }
  // sort_heap with WorseFirst yields decreasing similarity.
  std::sort_heap(heap.begin(), heap.end(), WorseFirst{});
  return heap;
}

}  // namespace darkvec::ml
