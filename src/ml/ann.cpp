#include "darkvec/ml/ann.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>

#include "darkvec/core/atomic_io.hpp"
#include "darkvec/core/byteio.hpp"
#include "darkvec/core/checksum.hpp"
#include "darkvec/core/contracts.hpp"
#include "darkvec/core/parallel.hpp"
#include "darkvec/core/runtime/runtime.hpp"
#include "darkvec/core/simd/simd.hpp"
#include "darkvec/obs/obs.hpp"

namespace darkvec::ml {
namespace {

constexpr std::uint32_t kMagic = 0x44564149;  // "DVAI"
constexpr std::uint32_t kVersion = 1;
// int8 rows are padded to whole vector lanes, like w2v::QuantizedEmbedding.
constexpr std::size_t kQStrideAlign = 32;
// Queries are independent, so the block size only amortizes scratch
// buffers and counter updates; it never affects results.
constexpr std::size_t kQueryBlock = 16;

std::size_t padded_qstride(int dim) {
  return (static_cast<std::size_t>(dim) + kQStrideAlign - 1) &
         ~(kQStrideAlign - 1);
}

/// Symmetric int8 quantization of one row (scale = amax / 127), zero
/// padding to `stride` — the DVQ8 scheme, applied slot-by-slot.
float quantize_row(std::span<const float> src, std::int8_t* dst,
                   std::size_t stride) {
  std::fill(dst, dst + stride, std::int8_t{0});
  float amax = 0.0f;
  for (const float v : src) amax = std::max(amax, std::abs(v));
  if (amax == 0.0f) return 0.0f;
  const float scale = amax / 127.0f;
  for (std::size_t d = 0; d < src.size(); ++d) {
    const long q = std::lround(src[d] / scale);
    dst[d] = static_cast<std::int8_t>(std::clamp(q, -127l, 127l));
  }
  return scale;
}

/// Chunked typed read: appends up to `count` elements to `out`, folding
/// every byte that arrived (including a partial tail) into `crc`, with
/// allocation growing proportionally to bytes actually present — a
/// poisoned header count can never trigger an allocation bomb. Returns
/// true iff all `count` elements arrived.
template <typename T>
bool read_chunked(std::istream& in, io::Crc32& crc, std::uint64_t count,
                  std::vector<T>& out) {
  std::vector<T> buffer(std::size_t{1} << 12);
  std::uint64_t remaining = count;
  while (remaining > 0) {
    const std::size_t chunk = static_cast<std::size_t>(
        std::min<std::uint64_t>(remaining, buffer.size()));
    const std::size_t got = io::read_array_bytes(in, buffer.data(), chunk);
    crc.update(buffer.data(), got);
    out.insert(out.end(), buffer.begin(),
               buffer.begin() + static_cast<std::ptrdiff_t>(got / sizeof(T)));
    if (got < chunk * sizeof(T)) return false;
    remaining -= chunk;
  }
  return true;
}

}  // namespace

int IvfIndex::clamp_nprobe(int nprobe) const {
  const int nl = static_cast<int>(nlist());
  if (nl == 0) return 0;
  if (nprobe <= 0) nprobe = default_nprobe_;
  return std::clamp(nprobe, 1, nl);
}

double IvfIndex::expected_rows_scanned(int nprobe) const {
  const std::size_t nl = nlist();
  const std::size_t n = ids_.size();
  if (nl == 0 || n == 0) return 0.0;
  // Probability that a uniformly chosen query probes list l is
  // approximated as uniform over lists; the centroid ranking itself
  // touches every centroid once.
  const int np = clamp_nprobe(nprobe);
  return static_cast<double>(nl) +
         static_cast<double>(np) * static_cast<double>(n) /
             static_cast<double>(nl);
}

void IvfIndex::finalize_tiles(const float* rows_slot_major) {
  const auto dim = static_cast<std::size_t>(dim_);
  const std::size_t n = ids_.size();
  const std::size_t nl = nlist();
  chunk_ = dim > 0 ? detail::auto_tile_width(dim) : 0;

  tiles_.assign(n * dim, 0.0f);
  for (std::size_t l = 0; l < nl; ++l) {
    if ((l & 63u) == 0) DV_CHECKPOINT();
    const std::size_t base = offsets_[l];
    const std::size_t ls = list_size(l);
    for (std::size_t c0 = 0; c0 < ls; c0 += chunk_) {
      const std::size_t cw = std::min(chunk_, ls - c0);
      float* tile = tiles_.data() + (base + c0) * dim;
      for (std::size_t jj = 0; jj < cw; ++jj) {
        const float* row = rows_slot_major + (base + c0 + jj) * dim;
        for (std::size_t d = 0; d < dim; ++d) tile[d * cw + jj] = row[d];
      }
    }
  }

  centroid_tile_.assign(nl * dim, 0.0f);
  for (std::size_t c0 = 0; c0 < nl; c0 += chunk_) {
    const std::size_t cw = std::min(chunk_, nl - c0);
    float* tile = centroid_tile_.data() + c0 * dim;
    for (std::size_t jj = 0; jj < cw; ++jj) {
      const float* row = centroids_.vec(c0 + jj).data();
      for (std::size_t d = 0; d < dim; ++d) tile[d * cw + jj] = row[d];
    }
  }

  std::uint32_t max_id = 0;
  for (const std::uint32_t id : ids_) max_id = std::max(max_id, id);
  slot_of_.assign(n > 0 ? static_cast<std::size_t>(max_id) + 1 : 0, kNoSlot);
  for (std::size_t s = 0; s < n; ++s) {
    slot_of_[ids_[s]] = static_cast<std::uint32_t>(s);
  }
}

void IvfIndex::copy_row(std::size_t slot, float* dst) const {
  const auto it =
      std::upper_bound(offsets_.begin(), offsets_.end(), slot);
  const auto l = static_cast<std::size_t>(it - offsets_.begin()) - 1;
  const std::size_t base = offsets_[l];
  const std::size_t ls = list_size(l);
  const std::size_t c0 = ((slot - base) / chunk_) * chunk_;
  const std::size_t cw = std::min(chunk_, ls - c0);
  const auto dim = static_cast<std::size_t>(dim_);
  const float* tile = tiles_.data() + (base + c0) * dim;
  const std::size_t jj = slot - base - c0;
  for (std::size_t d = 0; d < dim; ++d) dst[d] = tile[d * cw + jj];
}

IvfIndex IvfIndex::assemble(const w2v::Embedding& normalized,
                            std::span<const int> assignment, int clusters,
                            const IvfOptions& options) {
  const std::size_t n = normalized.size();
  const auto dim = static_cast<std::size_t>(normalized.dim());
  DV_PRECONDITION(assignment.size() == n,
                  "IvfIndex: one list assignment per embedding row");
  DV_PRECONDITION(clusters > 0, "IvfIndex: at least one list");

  // Compact the partition: count members, drop empty lists, remap.
  std::vector<std::uint64_t> counts(static_cast<std::size_t>(clusters), 0);
  for (const int a : assignment) {
    DV_PRECONDITION(a >= 0 && a < clusters,
                    "IvfIndex: assignments are valid list ids");
    ++counts[static_cast<std::size_t>(a)];
  }
  std::vector<std::uint32_t> remap(static_cast<std::size_t>(clusters), 0);
  std::size_t nl = 0;
  for (std::size_t c = 0; c < counts.size(); ++c) {
    remap[c] = static_cast<std::uint32_t>(nl);
    if (counts[c] > 0) ++nl;
  }

  IvfIndex out;
  out.dim_ = normalized.dim();
  out.offsets_.assign(nl + 1, 0);
  for (std::size_t c = 0; c < counts.size(); ++c) {
    if (counts[c] > 0) out.offsets_[remap[c] + 1] = counts[c];
  }
  for (std::size_t l = 0; l < nl; ++l) out.offsets_[l + 1] += out.offsets_[l];

  // Slot layout: rows in ascending original id within each list (the
  // determinism contract's within-list visit order).
  out.ids_.resize(n);
  std::vector<std::uint64_t> cursor(out.offsets_.begin(),
                                    out.offsets_.end() - 1);
  for (std::size_t i = 0; i < n; ++i) {
    const auto l = remap[static_cast<std::size_t>(assignment[i])];
    out.ids_[cursor[l]++] = static_cast<std::uint32_t>(i);
  }

  // Centroids: L2-normalized member means (for k-means-built indexes
  // this refits the final assignment; for caller partitions it is the
  // natural prototype). Zero-mass means stay zero rows.
  out.centroids_ = w2v::Embedding(nl, out.dim_);
  std::vector<double> sum(dim);
  for (std::size_t l = 0; l < nl; ++l) {
    if ((l & 63u) == 0) DV_CHECKPOINT();  // list-granular build cancel
    std::fill(sum.begin(), sum.end(), 0.0);
    for (std::size_t s = out.offsets_[l]; s < out.offsets_[l + 1]; ++s) {
      const auto row = normalized.vec(out.ids_[s]);
      for (std::size_t d = 0; d < dim; ++d) sum[d] += double{row[d]};
    }
    double norm2 = 0;
    for (const double v : sum) norm2 += v * v;
    const double inv = norm2 > 0 ? 1.0 / std::sqrt(norm2) : 0.0;
    auto dst = out.centroids_.vec(l);
    for (std::size_t d = 0; d < dim; ++d) {
      dst[d] = static_cast<float>(sum[d] * inv);
    }
  }

  // Gather rows into slot order once, then lay out the chunk tiles.
  std::vector<float> rows(n * dim);
  for (std::size_t s = 0; s < n; ++s) {
    const auto row = normalized.vec(out.ids_[s]);
    std::copy(row.begin(), row.end(), rows.begin() + s * dim);
  }
  out.finalize_tiles(rows.data());

  if (options.quantize) {
    out.quantized_ = true;
    out.qstride_ = padded_qstride(out.dim_);
    out.scales_.assign(n, 0.0f);
    out.codes_.assign(n * out.qstride_, 0);
    for (std::size_t s = 0; s < n; ++s) {
      out.scales_[s] = quantize_row(
          std::span<const float>(rows.data() + s * dim, dim),
          out.codes_.data() + s * out.qstride_, out.qstride_);
    }
  }

  out.default_nprobe_ =
      std::clamp(options.nprobe, 1, static_cast<int>(nl));
  return out;
}

IvfIndex IvfIndex::build(const w2v::Embedding& normalized,
                         const IvfOptions& options) {
  const std::size_t n = normalized.size();
  DV_SPAN_ARG("ml.ann.build", "rows", n);
  if (n == 0 || normalized.dim() == 0) {
    IvfIndex out;
    out.dim_ = normalized.dim();
    out.offsets_.assign(1, 0);
    return out;
  }
  int nl = options.nlist;
  if (nl <= 0) {
    nl = static_cast<int>(std::lround(std::sqrt(static_cast<double>(n))));
  }
  nl = std::clamp<int>(nl, 1, static_cast<int>(std::min<std::size_t>(
                                  n, std::size_t{1} << 30)));

  std::vector<int> assignment;
  if (nl == 1) {
    assignment.assign(n, 0);
  } else {
    assignment = kmeans(normalized, nl, options.kmeans).assignment;
  }
  IvfIndex out = assemble(normalized, assignment, nl, options);
  DV_LOG_DEBUG("ann", "ivf index built", {"rows", n},
               {"nlist", out.nlist()}, {"nprobe", out.default_nprobe_},
               {"quantized", out.quantized_});
  return out;
}

IvfIndex IvfIndex::build_with_assignment(const w2v::Embedding& normalized,
                                         std::span<const int> assignment,
                                         const IvfOptions& options) {
  const std::size_t n = normalized.size();
  DV_SPAN_ARG("ml.ann.build", "rows", n);
  if (n == 0 || normalized.dim() == 0) {
    IvfIndex out;
    out.dim_ = normalized.dim();
    out.offsets_.assign(1, 0);
    return out;
  }
  int clusters = 0;
  for (const int a : assignment) clusters = std::max(clusters, a + 1);
  IvfIndex out = assemble(normalized, assignment, std::max(clusters, 1),
                          options);
  DV_LOG_DEBUG("ann", "ivf index built from partition", {"rows", n},
               {"nlist", out.nlist()}, {"nprobe", out.default_nprobe_});
  return out;
}

void IvfIndex::select_probes(std::span<const float> q, int nprobe,
                             std::vector<std::uint32_t>& probes,
                             std::vector<float>& sims_scratch) const {
  const std::size_t nl = nlist();
  const auto dim = static_cast<std::size_t>(dim_);
  // The centroid ranking reuses the neighbour heap's total order
  // (similarity desc, id asc), so the probe sequence is deterministic —
  // including across SIMD levels, because dot_strip_f32 is
  // bit-identical there. No inverse-norm rescale: a positive common
  // factor cannot change the ranking.
  detail::TopKHeap heap(nprobe);
  for (std::size_t c0 = 0; c0 < nl; c0 += chunk_) {
    const std::size_t cw = std::min(chunk_, nl - c0);
    simd::kernels().dot_strip_f32(q.data(),
                                  centroid_tile_.data() + c0 * dim, cw, dim,
                                  sims_scratch.data());
    for (std::size_t jj = 0; jj < cw; ++jj) {
      heap.offer(static_cast<std::uint32_t>(c0 + jj), sims_scratch[jj]);
    }
  }
  probes.clear();
  for (const Neighbor& nb : heap.take()) probes.push_back(nb.index);
}

std::vector<Neighbor> IvfIndex::search_one(
    std::span<const float> q, std::int64_t qslot, int k, int nprobe,
    std::int64_t exclude, std::size_t* rows_scanned,
    std::vector<float>& sims_scratch,
    std::vector<std::uint32_t>& probes_scratch) const {
  detail::TopKHeap heap(k);
  const std::size_t n = ids_.size();
  const auto dim = static_cast<std::size_t>(dim_);
  if (k <= 0 || n == 0 || dim == 0) return heap.take();

  select_probes(q, nprobe, probes_scratch, sims_scratch);
  const simd::Kernels& kern = simd::kernels();

  if (quantized_) {
    // Mirror the quantized batch engine: similarity is
    // dot_i8 * scale_q * scale_row / ||q||, with the query norm
    // reconstructed from its own int8 self-dot.
    const std::int8_t* qcodes = nullptr;
    float qrow_scale = 0.0f;
    std::vector<std::int8_t> local;
    if (qslot >= 0) {
      qcodes = codes_.data() +
               static_cast<std::size_t>(qslot) * qstride_;
      qrow_scale = scales_[static_cast<std::size_t>(qslot)];
    } else {
      local.resize(qstride_);
      qrow_scale = quantize_row(q, local.data(), qstride_);
      qcodes = local.data();
    }
    const double self =
        static_cast<double>(kern.dot_i8(qcodes, qcodes, qstride_)) *
        qrow_scale * qrow_scale;
    const float inv =
        self > 0 ? static_cast<float>(1.0 / std::sqrt(self)) : 0.0f;
    const float qscale = qrow_scale * inv;
    for (const std::uint32_t l : probes_scratch) {
      const std::size_t base = offsets_[l];
      const std::size_t ls = list_size(l);
      for (std::size_t s = base; s < base + ls; ++s) {
        const std::uint32_t id = ids_[s];
        if (static_cast<std::int64_t>(id) == exclude) continue;
        const std::int32_t raw =
            kern.dot_i8(qcodes, codes_.data() + s * qstride_, qstride_);
        heap.offer(id, static_cast<float>(raw) * qscale * scales_[s]);
      }
      *rows_scanned += ls;
    }
    return heap.take();
  }

  // fp32 scan: the same dot-strip + 1/sqrt(dot(q, q)) rescale as the
  // exact engine, so a returned similarity is bit-identical to what the
  // exhaustive scan computes for the same (query, neighbour) pair.
  const double norm = std::sqrt(w2v::dot(q, q));
  const float inv = norm > 0 ? static_cast<float>(1.0 / norm) : 0.0f;
  for (const std::uint32_t l : probes_scratch) {
    const std::size_t base = offsets_[l];
    const std::size_t ls = list_size(l);
    for (std::size_t c0 = 0; c0 < ls; c0 += chunk_) {
      const std::size_t cw = std::min(chunk_, ls - c0);
      kern.dot_strip_f32(q.data(), tiles_.data() + (base + c0) * dim, cw,
                         dim, sims_scratch.data());
      for (std::size_t jj = 0; jj < cw; ++jj) {
        const std::uint32_t id = ids_[base + c0 + jj];
        if (static_cast<std::int64_t>(id) == exclude) continue;
        heap.offer(id, sims_scratch[jj] * inv);
      }
    }
    *rows_scanned += ls;
  }
  return heap.take();
}

std::vector<std::vector<Neighbor>> IvfIndex::query_batch(
    std::span<const std::uint32_t> queries, int k, int nprobe) const {
  const std::size_t nq = queries.size();
  std::vector<std::vector<Neighbor>> out(nq);
  const std::size_t n = ids_.size();
  const auto dim = static_cast<std::size_t>(dim_);
  if (k <= 0 || nq == 0 || n == 0 || dim == 0) return out;

  DV_SPAN_ARG("ml.ann.query_batch", "queries", nq);
  const auto t_start = std::chrono::steady_clock::now();
  const int np = clamp_nprobe(nprobe);

  static obs::Counter& queries_counter = obs::counter(obs::names::kAnnQueries);
  static obs::Counter& lists_counter = obs::counter(obs::names::kAnnListsProbed);
  static obs::Counter& rows_counter = obs::counter(obs::names::kAnnCandidatesScanned);

  // Queries are independent, so any block split yields the same output;
  // each block amortizes its scratch buffers and counter updates.
  core::parallel_for(nq, kQueryBlock, [&](std::size_t qlo, std::size_t qhi) {
    std::vector<float> sims(std::max(chunk_, std::size_t{1}));
    std::vector<std::uint32_t> probes;
    std::vector<float> qrow(dim);
    std::size_t rows_scanned = 0;
    for (std::size_t qi = qlo; qi < qhi; ++qi) {
      const std::uint32_t id = queries[qi];
      DV_PRECONDITION(id < slot_of_.size() && slot_of_[id] != kNoSlot,
                      "IvfIndex: every query id is an indexed row");
      const std::size_t slot = slot_of_[id];
      copy_row(slot, qrow.data());
      out[qi] = search_one(qrow, static_cast<std::int64_t>(slot), k, np,
                           static_cast<std::int64_t>(id), &rows_scanned,
                           sims, probes);
    }
    lists_counter.add((qhi - qlo) * static_cast<std::size_t>(np));
    rows_counter.add(rows_scanned);
  });
  queries_counter.add(nq);

  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_start)
          .count();
  DV_LOG_DEBUG("ann", "query_batch done", {"queries", nq}, {"k", k},
               {"nprobe", np},
               {"queries_per_s",
                seconds > 0 ? static_cast<double>(nq) / seconds : 0.0});
  return out;
}

std::vector<Neighbor> IvfIndex::query(std::size_t i, int k, int nprobe) const {
  DV_PRECONDITION(i < slot_of_.size() && slot_of_[i] != kNoSlot,
                  "IvfIndex: query id is an indexed row");
  const std::size_t slot = slot_of_[i];
  const auto dim = static_cast<std::size_t>(dim_);
  std::vector<float> qrow(dim);
  copy_row(slot, qrow.data());
  std::vector<float> sims(std::max(chunk_, std::size_t{1}));
  std::vector<std::uint32_t> probes;
  std::size_t rows_scanned = 0;
  const int np = clamp_nprobe(nprobe);
  auto out = search_one(qrow, static_cast<std::int64_t>(slot), k, np,
                        static_cast<std::int64_t>(i), &rows_scanned, sims,
                        probes);
  static obs::Counter& queries_counter = obs::counter(obs::names::kAnnQueries);
  static obs::Counter& lists_counter = obs::counter(obs::names::kAnnListsProbed);
  static obs::Counter& rows_counter = obs::counter(obs::names::kAnnCandidatesScanned);
  queries_counter.add(1);
  lists_counter.add(static_cast<std::size_t>(np));
  rows_counter.add(rows_scanned);
  return out;
}

std::vector<Neighbor> IvfIndex::query_vector(std::span<const float> v, int k,
                                             int nprobe,
                                             std::int64_t exclude) const {
  DV_PRECONDITION(v.size() == static_cast<std::size_t>(dim_),
                  "IvfIndex: query vector matches the index dimension");
  std::vector<float> sims(std::max(chunk_, std::size_t{1}));
  std::vector<std::uint32_t> probes;
  std::size_t rows_scanned = 0;
  const int np = clamp_nprobe(nprobe);
  auto out = search_one(v, -1, k, np, exclude, &rows_scanned, sims, probes);
  static obs::Counter& queries_counter = obs::counter(obs::names::kAnnQueries);
  static obs::Counter& lists_counter = obs::counter(obs::names::kAnnListsProbed);
  static obs::Counter& rows_counter = obs::counter(obs::names::kAnnCandidatesScanned);
  queries_counter.add(1);
  lists_counter.add(static_cast<std::size_t>(np));
  rows_counter.add(rows_scanned);
  return out;
}

void IvfIndex::save(std::ostream& out) const {
  io::Crc32 crc;
  const auto put = [&](const void* data, std::size_t len) {
    crc.update(data, len);
    out.write(static_cast<const char*>(data),
              static_cast<std::streamsize>(len));
  };
  const std::uint64_t n = ids_.size();
  const std::int32_t d = dim_;
  const auto nl = static_cast<std::uint32_t>(nlist());
  const auto np = static_cast<std::uint32_t>(default_nprobe_);
  const std::uint8_t qz = quantized_ ? 1 : 0;
  put(&kMagic, sizeof(kMagic));
  put(&kVersion, sizeof(kVersion));
  put(&n, sizeof(n));
  put(&d, sizeof(d));
  put(&nl, sizeof(nl));
  put(&np, sizeof(np));
  put(&qz, sizeof(qz));

  const auto dim = static_cast<std::size_t>(std::max(dim_, 0));
  for (std::size_t l = 0; l < nl; ++l) {
    put(centroids_.vec(l).data(), dim * sizeof(float));
  }
  if (offsets_.empty()) {
    const std::uint64_t zero = 0;
    put(&zero, sizeof(zero));
  } else {
    put(offsets_.data(), offsets_.size() * sizeof(std::uint64_t));
  }
  put(ids_.data(), ids_.size() * sizeof(std::uint32_t));
  // Rows go out in slot order, un-transposed from the chunk tiles (the
  // in-memory tile layout is rebuilt on load from dim alone).
  std::vector<float> rowbuf(dim);
  for (std::size_t s = 0; s < n; ++s) {
    copy_row(s, rowbuf.data());
    put(rowbuf.data(), dim * sizeof(float));
  }
  if (quantized_) {
    put(scales_.data(), scales_.size() * sizeof(float));
    // Codes are stored unpadded; the stride is rebuilt on load.
    for (std::size_t s = 0; s < n; ++s) {
      put(codes_.data() + s * qstride_, dim);
    }
  }
  io::write_pod(out, crc.value());
}

void IvfIndex::save_file(const std::string& path) const {
  io::atomic_write_file(path, std::ios::binary, [&](std::ostream& out) {
    save(out);
  });
}

IvfIndex IvfIndex::load(std::istream& in, const io::IoPolicy& policy,
                        io::IoReport* report) {
  DV_SPAN("io.load_ann");
  io::Crc32 crc;
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  std::uint64_t n = 0;
  std::int32_t d = 0;
  std::uint32_t nl = 0;
  std::uint32_t np = 0;
  std::uint8_t qz = 0;
  if (!io::read_pod(in, magic) || magic != kMagic) {
    throw io::FormatError("IvfIndex: bad magic");
  }
  if (!io::read_pod(in, version) || version != kVersion) {
    throw io::FormatError("IvfIndex: unsupported version");
  }
  if (!io::read_pod(in, n) || !io::read_pod(in, d) || !io::read_pod(in, nl) ||
      !io::read_pod(in, np) || !io::read_pod(in, qz)) {
    throw io::TruncatedInput("IvfIndex: truncated header");
  }
  if (d < 0 || (d == 0 && n > 0)) {
    throw io::FormatError("IvfIndex: invalid dimension");
  }
  if (d > policy.limits.max_dim) {
    throw io::ResourceLimit("IvfIndex: dimension " + std::to_string(d) +
                            " over the cap of " +
                            std::to_string(policy.limits.max_dim));
  }
  if (n > policy.limits.max_records) {
    throw io::ResourceLimit("IvfIndex: header declares " + std::to_string(n) +
                            " rows, cap is " +
                            std::to_string(policy.limits.max_records));
  }
  if (nl > n) {
    throw io::FormatError("IvfIndex: more lists than rows");
  }
  if (qz > 1) {
    throw io::FormatError("IvfIndex: invalid quantized flag");
  }
  crc.update(&magic, sizeof(magic));
  crc.update(&version, sizeof(version));
  crc.update(&n, sizeof(n));
  crc.update(&d, sizeof(d));
  crc.update(&nl, sizeof(nl));
  crc.update(&np, sizeof(np));
  crc.update(&qz, sizeof(qz));

  const auto dim = static_cast<std::size_t>(d);
  IvfIndex out;
  out.dim_ = d;
  bool truncated = false;
  std::size_t bad_at = 0;  // 1-based record number for the diagnostic
  std::string bad_what;

  std::vector<float> centroids;
  std::vector<std::uint64_t> offsets;
  std::vector<std::uint32_t> ids;
  std::vector<float> rows;
  std::vector<float> scales;
  std::vector<std::int8_t> codes;
  std::size_t rows_kept = 0;
  std::size_t lists_kept = 0;
  bool quantized = qz == 1;

  // Layout sections in order; a short read anywhere discards everything
  // not structurally complete (lenient) or throws (strict, via
  // bad_record below).
  if (!read_chunked(in, crc, static_cast<std::uint64_t>(nl) * dim,
                    centroids) ||
      !read_chunked(in, crc, static_cast<std::uint64_t>(nl) + 1, offsets) ||
      !read_chunked(in, crc, n, ids)) {
    truncated = true;
    quantized = false;
    bad_at = 1;
    bad_what = "IvfIndex: stream ends inside the layout sections";
  } else {
    // Structural validation: the layout must describe a consistent
    // index in both modes (a bit flip here is unrecoverable damage).
    if (offsets.front() != 0 || offsets.back() != n ||
        !std::is_sorted(offsets.begin(), offsets.end())) {
      throw io::FormatError("IvfIndex: inconsistent list offsets");
    }
    std::vector<bool> seen(n, false);
    for (const std::uint32_t id : ids) {
      if (id >= n || seen[id]) {
        throw io::FormatError("IvfIndex: slot map is not a permutation");
      }
      seen[id] = true;
    }

    if (!read_chunked(in, crc, n * dim, rows)) {
      // Keep the lists whose rows all arrived.
      const std::size_t whole_rows = dim > 0 ? rows.size() / dim : 0;
      while (lists_kept < nl &&
             offsets[lists_kept + 1] <= whole_rows) {
        ++lists_kept;
      }
      rows_kept = offsets[lists_kept];
      // The int8 sections live after the rows, so they are gone too.
      quantized = false;
      truncated = true;
      bad_at = whole_rows + 1;
      bad_what = "IvfIndex: stream ends inside row " +
                 std::to_string(whole_rows + 1) + " of a declared " +
                 std::to_string(n);
    } else {
      rows_kept = static_cast<std::size_t>(n);
      lists_kept = nl;
      if (quantized) {
        if (!read_chunked(in, crc, n, scales) ||
            !read_chunked(in, crc, n * dim, codes)) {
          // The fp32 side is complete: degrade to an exact-storage
          // index instead of dropping everything.
          quantized = false;
          truncated = true;
          bad_at = rows_kept;
          bad_what =
              "IvfIndex: stream ends inside the int8 section; "
              "falling back to fp32-only";
        }
      }
    }
  }

  if (truncated) {
    io::detail::bad_record<io::TruncatedInput>(policy, report, bad_at,
                                               bad_what);
  } else {
    std::uint32_t stored = 0;
    if (!io::read_pod(in, stored)) {
      io::detail::bad_record<io::TruncatedInput>(
          policy, report, static_cast<std::size_t>(n),
          "IvfIndex: missing CRC32 footer");
    } else if (stored != crc.value()) {
      if (report != nullptr) report->checksum_failed = true;
      io::detail::suspect_input(policy, report, 0,
                                "IvfIndex: CRC32 mismatch");
    } else if (report != nullptr) {
      report->checksum_verified = true;
    }
    if (in.peek() != std::istream::traits_type::eof()) {
      io::detail::suspect_input(policy, report, 0,
                                "IvfIndex: trailing data");
    }
  }

  out.quantized_ = quantized;
  if (offsets.size() >= lists_kept + 1) {
    out.offsets_.assign(offsets.begin(),
                        offsets.begin() +
                            static_cast<std::ptrdiff_t>(lists_kept + 1));
  } else {
    out.offsets_.assign(1, 0);  // layout sections themselves were short
  }
  ids.resize(rows_kept);
  out.ids_ = std::move(ids);
  out.centroids_ = w2v::Embedding(lists_kept, d);
  for (std::size_t l = 0; l < lists_kept; ++l) {
    std::copy(centroids.begin() + static_cast<std::ptrdiff_t>(l * dim),
              centroids.begin() + static_cast<std::ptrdiff_t>((l + 1) * dim),
              out.centroids_.vec(l).begin());
  }
  rows.resize(rows_kept * dim);
  out.finalize_tiles(rows.data());
  if (quantized) {
    out.qstride_ = padded_qstride(d);
    out.scales_ = std::move(scales);
    out.codes_.assign(rows_kept * out.qstride_, 0);
    for (std::size_t s = 0; s < rows_kept; ++s) {
      std::copy(codes.begin() + static_cast<std::ptrdiff_t>(s * dim),
                codes.begin() + static_cast<std::ptrdiff_t>((s + 1) * dim),
                out.codes_.begin() +
                    static_cast<std::ptrdiff_t>(s * out.qstride_));
    }
  }
  out.default_nprobe_ = std::clamp(
      static_cast<int>(np), 1,
      std::max(1, static_cast<int>(lists_kept)));

  if (report != nullptr) report->records_read += rows_kept;
  static obs::Counter& rows_counter = obs::counter(obs::names::kIoAnnRows);
  rows_counter.add(rows_kept);
  if (truncated) {
    DV_LOG_WARN("io", "ivf index truncated", {"rows", rows_kept},
                {"declared", n});
  }
  DV_LOG_DEBUG("io", "ivf index loaded", {"rows", rows_kept},
               {"nlist", lists_kept}, {"dim", d});
  return out;
}

IvfIndex IvfIndex::load_file(const std::string& path,
                             const io::IoPolicy& policy,
                             io::IoReport* report) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw io::IoError("IvfIndex: cannot open " + path);
  return load(in, policy, report);
}

}  // namespace darkvec::ml
