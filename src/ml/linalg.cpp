#include "darkvec/ml/linalg.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace darkvec::ml {

SquareMatrix multiply(const SquareMatrix& a, const SquareMatrix& b) {
  // SquareMatrix is column-major (data[col * n + row]), so the jki order
  // below walks c's and a's columns with stride 1 in the inner loop.
  // Lifting each column to a raw pointer lets the compiler vectorize the
  // axpy without re-deriving the index arithmetic per element.
  const int n = a.n;
  SquareMatrix c(n);
  for (int col = 0; col < n; ++col) {
    double* c_col = &c.data[static_cast<std::size_t>(col) * n];
    for (int k = 0; k < n; ++k) {
      const double bkc = b.at(k, col);
      if (bkc == 0) continue;
      const double* a_col = &a.data[static_cast<std::size_t>(k) * n];
      for (int row = 0; row < n; ++row) c_col[row] += a_col[row] * bkc;
    }
  }
  return c;
}

SquareMatrix transpose(const SquareMatrix& a) {
  // Blocked so both the stride-1 reads (a's columns) and the stride-n
  // writes (t's rows) stay within one cache-resident tile.
  constexpr int kBlock = 64;
  const int n = a.n;
  SquareMatrix t(n);
  for (int cb = 0; cb < n; cb += kBlock) {
    const int ce = std::min(cb + kBlock, n);
    for (int rb = 0; rb < n; rb += kBlock) {
      const int re = std::min(rb + kBlock, n);
      for (int col = cb; col < ce; ++col) {
        for (int row = rb; row < re; ++row) {
          t.at(col, row) = a.at(row, col);
        }
      }
    }
  }
  return t;
}

SvdResult jacobi_svd(const SquareMatrix& m, int max_sweeps,
                     double tolerance) {
  const int n = m.n;
  SquareMatrix u = m;  // columns orthogonalized in place
  SquareMatrix v(n);   // accumulated right rotations
  for (int i = 0; i < n; ++i) v.at(i, i) = 1.0;

  // One-sided Jacobi: rotate column pairs of U until orthogonal.
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    bool converged = true;
    for (int p = 0; p < n - 1; ++p) {
      for (int q = p + 1; q < n; ++q) {
        double alpha = 0;
        double beta = 0;
        double gamma = 0;
        for (int row = 0; row < n; ++row) {
          const double up = u.at(row, p);
          const double uq = u.at(row, q);
          alpha += up * up;
          beta += uq * uq;
          gamma += up * uq;
        }
        if (std::abs(gamma) <=
            tolerance * std::sqrt(std::max(alpha * beta, 1e-300))) {
          continue;
        }
        converged = false;
        const double zeta = (beta - alpha) / (2.0 * gamma);
        const double t =
            (zeta >= 0 ? 1.0 : -1.0) /
            (std::abs(zeta) + std::sqrt(1.0 + zeta * zeta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        for (int row = 0; row < n; ++row) {
          const double up = u.at(row, p);
          const double uq = u.at(row, q);
          u.at(row, p) = c * up - s * uq;
          u.at(row, q) = s * up + c * uq;
        }
        for (int row = 0; row < n; ++row) {
          const double vp = v.at(row, p);
          const double vq = v.at(row, q);
          v.at(row, p) = c * vp - s * vq;
          v.at(row, q) = s * vp + c * vq;
        }
      }
    }
    if (converged) break;
  }

  // Singular values are the column norms; normalize U's columns.
  SvdResult result;
  result.singular_values.assign(static_cast<std::size_t>(n), 0.0);
  for (int col = 0; col < n; ++col) {
    double norm = 0;
    for (int row = 0; row < n; ++row) {
      norm += u.at(row, col) * u.at(row, col);
    }
    norm = std::sqrt(norm);
    result.singular_values[static_cast<std::size_t>(col)] = norm;
    if (norm > 0) {
      for (int row = 0; row < n; ++row) u.at(row, col) /= norm;
    }
  }

  // Sort descending by singular value.
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::ranges::sort(order, [&](int a, int b) {
    return result.singular_values[static_cast<std::size_t>(a)] >
           result.singular_values[static_cast<std::size_t>(b)];
  });
  SvdResult sorted;
  sorted.u = SquareMatrix(n);
  sorted.v = SquareMatrix(n);
  sorted.singular_values.assign(static_cast<std::size_t>(n), 0.0);
  for (int col = 0; col < n; ++col) {
    const int src = order[static_cast<std::size_t>(col)];
    sorted.singular_values[static_cast<std::size_t>(col)] =
        result.singular_values[static_cast<std::size_t>(src)];
    for (int row = 0; row < n; ++row) {
      sorted.u.at(row, col) = u.at(row, src);
      sorted.v.at(row, col) = v.at(row, src);
    }
  }
  return sorted;
}

}  // namespace darkvec::ml
