#include "darkvec/ml/batch_topk.hpp"

#include <atomic>
#include <chrono>
#include <cmath>

#include "darkvec/core/contracts.hpp"
#include "darkvec/core/parallel.hpp"
#include "darkvec/core/runtime/runtime.hpp"
#include "darkvec/core/simd/simd.hpp"
#include "darkvec/obs/obs.hpp"

namespace darkvec::ml {
namespace {

obs::Counter& degraded_counter() {
  static obs::Counter& c = obs::counter(obs::names::kRuntimeDegraded);
  return c;
}

// True when `ctx` asks this scan to stop early and keep what it has:
// the deadline expired under kPartialResults. Cancel/budget trips throw
// out of ctx->check() instead, so they never reach this path.
bool should_truncate(const runtime::RunContext* ctx) {
  return ctx != nullptr &&
         ctx->degrade == runtime::DegradePolicy::kPartialResults &&
         ctx->deadline.expired();
}

// Auto tile-width budget: keep the transposed [dim x corpus_block]
// float tile around L1 size so the inner dim-sweep streams from cache.
constexpr std::size_t kTileBudgetBytes = std::size_t{32} * 1024;
// Hard cap on any tile, including explicitly requested ones.
constexpr std::size_t kTileBytesMax = std::size_t{4} * 1024 * 1024;

// Tile width for a given dim: requested value if nonzero, otherwise the
// auto width derived from the L1 budget.
std::size_t tile_width(std::size_t requested, std::size_t dim) {
  if (requested != 0) return requested;
  return detail::auto_tile_width(dim);
}

}  // namespace

namespace detail {

std::size_t auto_tile_width(std::size_t dim) {
  const std::size_t fit = kTileBudgetBytes / (dim * sizeof(float));
  return std::max<std::size_t>(16, fit & ~std::size_t{15});
}

}  // namespace detail

namespace {

// Shared implementation of the exact fp32 scan. `ctx` may be null; when
// it is the deadline-truncation branch is dead and the loop is the
// historical one. Outputs for the bounded wrapper: `truncated` /
// `complete_queries` (ignored when null).
std::vector<std::vector<Neighbor>> batch_topk_impl(
    const w2v::Embedding& normalized, std::span<const std::uint32_t> queries,
    int k, const BatchTopkOptions& options, const runtime::RunContext* ctx,
    bool* truncated, std::size_t* complete_queries) {
  const std::size_t nq = queries.size();
  std::vector<std::vector<Neighbor>> out(nq);
  DV_PRECONDITION(options.query_block > 0,
                  "batch_topk: query_block is positive");
  const std::size_t n = normalized.size();
  const auto dim = static_cast<std::size_t>(normalized.dim());
  if (complete_queries != nullptr) *complete_queries = nq;
  if (k <= 0 || nq == 0 || n == 0 || dim == 0) return out;

  DV_SPAN_ARG("ml.batch_topk", "queries", nq);
  const auto t_start = std::chrono::steady_clock::now();

  const std::size_t qb = options.query_block;
  const std::size_t cb = tile_width(options.corpus_block, dim);
  DV_PRECONDITION(cb * dim * sizeof(float) <= kTileBytesMax,
                  "batch_topk: corpus tile fits the 4 MiB cap");

  // The serial path rescales every similarity by the query's inverse
  // norm even for already-unit rows (1/sqrt(dot) is close to but not
  // exactly 1.0f); reproduce that for bit parity.
  std::vector<float> inv(nq);
  for (std::size_t i = 0; i < nq; ++i) {
    DV_PRECONDITION(queries[i] < n,
                    "batch_topk: every query id is a valid corpus row");
    const auto v = normalized.vec(queries[i]);
    const double norm = std::sqrt(w2v::dot(v, v));
    inv[i] = norm > 0 ? static_cast<float>(1.0 / norm) : 0.0f;
  }

  std::atomic<bool> any_truncated{false};
  std::atomic<std::size_t> complete{0};

  // Parallel over query blocks: each block of queries is owned by one
  // chunk, and within a chunk candidates arrive in ascending corpus
  // order, so the output is independent of the thread count.
  core::parallel_for(nq, qb, [&](std::size_t qlo, std::size_t qhi) {
    DV_SPAN_ARG("ml.batch_topk.block", "queries", qhi - qlo);
    std::vector<float> tile(cb * dim);
    std::vector<float> sims(cb);
    std::vector<detail::TopKHeap> heaps;
    heaps.reserve(qhi - qlo);
    for (std::size_t qi = qlo; qi < qhi; ++qi) heaps.emplace_back(k);

    bool chunk_truncated = false;
    for (std::size_t jb = 0; jb < n; jb += cb) {
      if (ctx != nullptr) {
        ctx->check();
        if (should_truncate(ctx)) {
          // Deadline passed, degradation allowed: keep the heaps built
          // from tiles [0, jb) — a valid top-k of the prefix scanned.
          chunk_truncated = jb < n;
          break;
        }
      }
      const std::size_t je = std::min(jb + cb, n);
      const std::size_t width = je - jb;
      // Transpose the corpus block once; it is then reused by every
      // query of the chunk while hot in cache.
      for (std::size_t j = jb; j < je; ++j) {
        const float* row = normalized.vec(j).data();
        for (std::size_t d = 0; d < dim; ++d) {
          tile[d * width + (j - jb)] = row[d];
        }
      }
      for (std::size_t qi = qlo; qi < qhi; ++qi) {
        simd::kernels().dot_strip_f32(normalized.vec(queries[qi]).data(),
                                      tile.data(), width, dim, sims.data());
        detail::TopKHeap& heap = heaps[qi - qlo];
        const float scale = inv[qi];
        for (std::size_t jj = 0; jj < width; ++jj) {
          const auto j = static_cast<std::uint32_t>(jb + jj);
          if (j == queries[qi]) continue;  // leave-one-out
          heap.offer(j, sims[jj] * scale);
        }
      }
    }
    for (std::size_t qi = qlo; qi < qhi; ++qi) {
      out[qi] = heaps[qi - qlo].take();
    }
    if (chunk_truncated) {
      any_truncated.store(true, std::memory_order_relaxed);
    } else {
      complete.fetch_add(qhi - qlo, std::memory_order_relaxed);
    }
  });

  if (truncated != nullptr) *truncated = any_truncated.load();
  if (complete_queries != nullptr) *complete_queries = complete.load();
  if (any_truncated.load()) degraded_counter().add();

  static obs::Counter& queries_counter = obs::counter(obs::names::kKnnQueries);
  queries_counter.add(nq);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_start)
          .count();
  DV_LOG_DEBUG("knn", "batch_topk done", {"queries", nq},
               {"corpus_rows", n}, {"k", k},
               {"queries_per_s",
                seconds > 0 ? static_cast<double>(nq) / seconds : 0.0});
  return out;
}

}  // namespace

std::vector<std::vector<Neighbor>> batch_topk(
    const w2v::Embedding& normalized, std::span<const std::uint32_t> queries,
    int k, const BatchTopkOptions& options) {
  return batch_topk_impl(normalized, queries, k, options, nullptr, nullptr,
                         nullptr);
}

BatchTopkResult batch_topk_bounded(const w2v::Embedding& normalized,
                                   std::span<const std::uint32_t> queries,
                                   int k, const runtime::RunContext* ctx,
                                   const BatchTopkOptions& options) {
  BatchTopkResult result;
  result.neighbors = batch_topk_impl(normalized, queries, k, options, ctx,
                                     &result.truncated,
                                     &result.complete_queries);
  return result;
}

std::vector<std::vector<Neighbor>> batch_topk(
    const w2v::QuantizedEmbedding& quantized,
    std::span<const std::uint32_t> queries, int k,
    const BatchTopkOptions& options) {
  DV_PRECONDITION(options.query_block > 0,
                  "batch_topk: query_block is positive");
  const std::size_t nq = queries.size();
  std::vector<std::vector<Neighbor>> out(nq);
  const std::size_t n = quantized.size();
  const std::size_t stride = quantized.stride();
  if (k <= 0 || nq == 0 || n == 0 || quantized.dim() == 0) return out;

  DV_SPAN_ARG("ml.batch_topk_i8", "queries", nq);
  const auto t_start = std::chrono::steady_clock::now();
  const simd::Kernels& kern = simd::kernels();

  // Inverse query norm, reconstructed from the int8 self-dot: mirrors
  // the fp32 path's 1/sqrt(dot(q, q)) rescale.
  std::vector<float> inv(nq);
  for (std::size_t i = 0; i < nq; ++i) {
    DV_PRECONDITION(queries[i] < n,
                    "batch_topk: every query id is a valid corpus row");
    const auto q = quantized.row(queries[i]);
    const double self = static_cast<double>(kern.dot_i8(q.data(), q.data(),
                                                        stride)) *
                        quantized.scale(queries[i]) *
                        quantized.scale(queries[i]);
    inv[i] = self > 0 ? static_cast<float>(1.0 / std::sqrt(self)) : 0.0f;
  }

  const std::size_t qb = options.query_block;
  core::parallel_for(nq, qb, [&](std::size_t qlo, std::size_t qhi) {
    for (std::size_t qi = qlo; qi < qhi; ++qi) {
      const auto q = quantized.row(queries[qi]);
      const float qscale = quantized.scale(queries[qi]) * inv[qi];
      detail::TopKHeap heap(k);
      for (std::size_t j = 0; j < n; ++j) {
        if (j == queries[qi]) continue;  // leave-one-out
        const std::int32_t raw =
            kern.dot_i8(q.data(), quantized.row(j).data(), stride);
        heap.offer(static_cast<std::uint32_t>(j),
                   static_cast<float>(raw) * qscale * quantized.scale(j));
      }
      out[qi] = heap.take();
    }
  });

  static obs::Counter& queries_counter = obs::counter(obs::names::kKnnQueriesI8);
  queries_counter.add(nq);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_start)
          .count();
  DV_LOG_DEBUG("knn", "batch_topk_i8 done", {"queries", nq},
               {"corpus_rows", n}, {"k", k},
               {"queries_per_s",
                seconds > 0 ? static_cast<double>(nq) / seconds : 0.0});
  return out;
}

std::vector<Neighbor> topk_scan(const w2v::Embedding& normalized,
                                std::span<const float> query, float scale,
                                int k, std::int64_t exclude) {
  return topk_scan_bounded(normalized, query, scale, k, nullptr, exclude)
      .neighbors;
}

TopkScanResult topk_scan_bounded(const w2v::Embedding& normalized,
                                 std::span<const float> query, float scale,
                                 int k, const runtime::RunContext* ctx,
                                 std::int64_t exclude) {
  TopkScanResult result;
  detail::TopKHeap heap(k);
  const std::size_t n = normalized.size();
  const auto dim = static_cast<std::size_t>(normalized.dim());
  if (k <= 0 || n == 0 || dim == 0) {
    result.neighbors = heap.take();
    return result;
  }

  const std::size_t cb = detail::auto_tile_width(dim);
  std::vector<float> tile(cb * dim);
  std::vector<float> sims(cb);
  for (std::size_t jb = 0; jb < n; jb += cb) {
    if (ctx != nullptr) {
      ctx->check();
      if (should_truncate(ctx)) {
        result.truncated = true;
        degraded_counter().add();
        break;
      }
    }
    const std::size_t je = std::min(jb + cb, n);
    const std::size_t width = je - jb;
    for (std::size_t j = jb; j < je; ++j) {
      const float* row = normalized.vec(j).data();
      for (std::size_t d = 0; d < dim; ++d) {
        tile[d * width + (j - jb)] = row[d];
      }
    }
    simd::kernels().dot_strip_f32(query.data(), tile.data(), width, dim,
                                  sims.data());
    for (std::size_t jj = 0; jj < width; ++jj) {
      const std::size_t j = jb + jj;
      if (static_cast<std::int64_t>(j) == exclude) continue;
      heap.offer(static_cast<std::uint32_t>(j), sims[jj] * scale);
    }
    result.rows_scanned = je;
  }
  result.neighbors = heap.take();
  return result;
}

}  // namespace darkvec::ml
