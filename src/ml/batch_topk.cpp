#include "darkvec/ml/batch_topk.hpp"

#include <chrono>
#include <cmath>

#include "darkvec/core/contracts.hpp"
#include "darkvec/core/parallel.hpp"
#include "darkvec/obs/obs.hpp"

namespace darkvec::ml {
namespace {

// Register strip width of the inner kernel: one query against kStrip
// consecutive corpus rows per dim-sweep. Each lane keeps its own float
// accumulator walking d in ascending order, so every (query, corpus)
// pair sees exactly the operation sequence of the serial scan.
constexpr std::size_t kStrip = 8;

// sims[jj] = dot(query, tile column jj) for a [dim x width] transposed
// corpus tile (tile[d * width + jj]).
void dot_strip(const float* query, const float* tile, std::size_t width,
               std::size_t dim, float* sims) {
  std::size_t jj = 0;
  for (; jj + kStrip <= width; jj += kStrip) {
    float lane[kStrip] = {};
    for (std::size_t d = 0; d < dim; ++d) {
      const float qd = query[d];
      const float* t = tile + d * width + jj;
      for (std::size_t r = 0; r < kStrip; ++r) lane[r] += qd * t[r];
    }
    for (std::size_t r = 0; r < kStrip; ++r) sims[jj + r] = lane[r];
  }
  for (; jj < width; ++jj) {
    float acc = 0;
    for (std::size_t d = 0; d < dim; ++d) acc += query[d] * tile[d * width + jj];
    sims[jj] = acc;
  }
}

}  // namespace

std::vector<std::vector<Neighbor>> batch_topk(
    const w2v::Embedding& normalized, std::span<const std::uint32_t> queries,
    int k, const BatchTopkOptions& options) {
  const std::size_t nq = queries.size();
  std::vector<std::vector<Neighbor>> out(nq);
  const std::size_t n = normalized.size();
  const auto dim = static_cast<std::size_t>(normalized.dim());
  if (k <= 0 || nq == 0 || n == 0 || dim == 0) return out;

  DV_SPAN_ARG("ml.batch_topk", "queries", nq);
  const auto t_start = std::chrono::steady_clock::now();

  const std::size_t qb = std::max<std::size_t>(options.query_block, 1);
  const std::size_t cb = std::max<std::size_t>(options.corpus_block, kStrip);

  // The serial path rescales every similarity by the query's inverse
  // norm even for already-unit rows (1/sqrt(dot) is close to but not
  // exactly 1.0f); reproduce that for bit parity.
  std::vector<float> inv(nq);
  for (std::size_t i = 0; i < nq; ++i) {
    DV_PRECONDITION(queries[i] < n,
                    "batch_topk: every query id is a valid corpus row");
    const auto v = normalized.vec(queries[i]);
    const double norm = std::sqrt(w2v::dot(v, v));
    inv[i] = norm > 0 ? static_cast<float>(1.0 / norm) : 0.0f;
  }

  // Parallel over query blocks: each block of queries is owned by one
  // chunk, and within a chunk candidates arrive in ascending corpus
  // order, so the output is independent of the thread count.
  core::parallel_for(nq, qb, [&](std::size_t qlo, std::size_t qhi) {
    DV_SPAN_ARG("ml.batch_topk.block", "queries", qhi - qlo);
    std::vector<float> tile(cb * dim);
    std::vector<float> sims(cb);
    std::vector<detail::TopKHeap> heaps;
    heaps.reserve(qhi - qlo);
    for (std::size_t qi = qlo; qi < qhi; ++qi) heaps.emplace_back(k);

    for (std::size_t jb = 0; jb < n; jb += cb) {
      const std::size_t je = std::min(jb + cb, n);
      const std::size_t width = je - jb;
      // Transpose the corpus block once; it is then reused by every
      // query of the chunk while hot in cache.
      for (std::size_t j = jb; j < je; ++j) {
        const float* row = normalized.vec(j).data();
        for (std::size_t d = 0; d < dim; ++d) {
          tile[d * width + (j - jb)] = row[d];
        }
      }
      for (std::size_t qi = qlo; qi < qhi; ++qi) {
        dot_strip(normalized.vec(queries[qi]).data(), tile.data(), width,
                  dim, sims.data());
        detail::TopKHeap& heap = heaps[qi - qlo];
        const float scale = inv[qi];
        for (std::size_t jj = 0; jj < width; ++jj) {
          const auto j = static_cast<std::uint32_t>(jb + jj);
          if (j == queries[qi]) continue;  // leave-one-out
          heap.offer(j, sims[jj] * scale);
        }
      }
    }
    for (std::size_t qi = qlo; qi < qhi; ++qi) {
      out[qi] = heaps[qi - qlo].take();
    }
  });

  static obs::Counter& queries_counter = obs::counter("knn.queries");
  queries_counter.add(nq);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_start)
          .count();
  DV_LOG_DEBUG("knn", "batch_topk done", {"queries", nq},
               {"corpus_rows", n}, {"k", k},
               {"queries_per_s",
                seconds > 0 ? static_cast<double>(nq) / seconds : 0.0});
  return out;
}

}  // namespace darkvec::ml
