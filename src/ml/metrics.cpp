#include "darkvec/core/contracts.hpp"
#include "darkvec/ml/metrics.hpp"

#include <algorithm>

namespace darkvec::ml {

ClassificationReport::ClassificationReport(std::span<const int> y_true,
                                           std::span<const int> y_pred,
                                           int n_classes)
    : per_class_(static_cast<std::size_t>(std::max(n_classes, 0))),
      confusion_(per_class_.size() * per_class_.size(), 0),
      y_true_(y_true.begin(), y_true.end()),
      y_pred_(y_pred.begin(), y_pred.end()) {
  DV_PRECONDITION(y_true.size() == y_pred.size(),
                  "ClassificationReport: y_true and y_pred have equal length");
  std::size_t correct = 0;
  for (std::size_t i = 0; i < y_true.size(); ++i) {
    const int t = y_true[i];
    const int p = y_pred[i];
    DV_PRECONDITION(t >= 0 && t < n_classes && p >= 0 && p < n_classes,
                    "ClassificationReport: labels lie in [0, n_classes)");
    ++confusion_[static_cast<std::size_t>(t) * per_class_.size() +
                 static_cast<std::size_t>(p)];
    if (t == p) ++correct;
  }
  accuracy_ = y_true.empty()
                  ? 0.0
                  : static_cast<double>(correct) /
                        static_cast<double>(y_true.size());

  for (int c = 0; c < n_classes; ++c) {
    ClassScores& s = per_class_[static_cast<std::size_t>(c)];
    std::size_t tp = confusion(c, c);
    for (int j = 0; j < n_classes; ++j) {
      s.support += confusion(c, j);
      s.predicted += confusion(j, c);
    }
    s.precision = s.predicted > 0 ? static_cast<double>(tp) /
                                        static_cast<double>(s.predicted)
                                  : 0.0;
    s.recall = s.support > 0
                   ? static_cast<double>(tp) / static_cast<double>(s.support)
                   : 0.0;
    s.f1 = (s.precision + s.recall) > 0
               ? 2.0 * s.precision * s.recall / (s.precision + s.recall)
               : 0.0;
  }
}

double ClassificationReport::accuracy_over(std::span<const int> classes)
    const {
  std::size_t total = 0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < y_true_.size(); ++i) {
    if (std::ranges::find(classes, y_true_[i]) == classes.end()) continue;
    ++total;
    if (y_true_[i] == y_pred_[i]) ++correct;
  }
  return total == 0 ? 0.0
                    : static_cast<double>(correct) /
                          static_cast<double>(total);
}

double ClassificationReport::weighted_f1_over(
    std::span<const int> classes) const {
  double acc = 0;
  std::size_t total = 0;
  for (const int c : classes) {
    const ClassScores& s = per_class_[static_cast<std::size_t>(c)];
    acc += s.f1 * static_cast<double>(s.support);
    total += s.support;
  }
  return total == 0 ? 0.0 : acc / static_cast<double>(total);
}

}  // namespace darkvec::ml
