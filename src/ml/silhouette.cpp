#include "darkvec/core/contracts.hpp"
#include "darkvec/ml/silhouette.hpp"

#include <algorithm>
#include <limits>

#include "darkvec/core/parallel.hpp"

namespace darkvec::ml {

std::vector<double> silhouette_samples(const w2v::Embedding& embedding,
                                       std::span<const int> assignment) {
  const std::size_t n = embedding.size();
  DV_PRECONDITION(assignment.size() == n,
                  "silhouette: one assignment per embedding row");
  std::vector<double> out(n, 0.0);
  if (n == 0) return out;

  const w2v::Embedding unit = embedding.normalized();
  const int max_cluster = *std::ranges::max_element(assignment);
  const auto n_clusters = static_cast<std::size_t>(max_cluster + 1);
  const auto dim = static_cast<std::size_t>(unit.dim());

  // Centroid sums and sizes per cluster.
  std::vector<double> sums(n_clusters * dim, 0.0);
  std::vector<std::size_t> sizes(n_clusters, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const auto c = static_cast<std::size_t>(assignment[i]);
    ++sizes[c];
    const auto v = unit.vec(i);
    for (std::size_t d = 0; d < dim; ++d) sums[c * dim + d] += v[d];
  }

  // The centroid sums above accumulate serially (double addition is
  // order-sensitive); the per-point scores below write out[i] alone, so
  // the loop parallelizes with bit-identical results.
  core::parallel_for(n, 0, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      const auto ci = static_cast<std::size_t>(assignment[i]);
      if (sizes[ci] <= 1) {
        out[i] = 0.0;  // singleton convention
        continue;
      }
      const auto v = unit.vec(i);
      double a = 0;
      double b = std::numeric_limits<double>::infinity();
      for (std::size_t c = 0; c < n_clusters; ++c) {
        if (sizes[c] == 0) continue;
        double dot_sum = 0;
        for (std::size_t d = 0; d < dim; ++d) {
          dot_sum += v[d] * sums[c * dim + d];
        }
        if (c == ci) {
          // Exclude the point itself (its self-similarity is 1).
          a = 1.0 - (dot_sum - 1.0) / static_cast<double>(sizes[c] - 1);
        } else {
          const double mean_dist =
              1.0 - dot_sum / static_cast<double>(sizes[c]);
          b = std::min(b, mean_dist);
        }
      }
      const double denom = std::max(a, b);
      out[i] = denom > 0 ? (b - a) / denom : 0.0;
    }
  });
  return out;
}

std::vector<double> silhouette_by_cluster(std::span<const double> samples,
                                          std::span<const int> assignment) {
  DV_PRECONDITION(samples.size() == assignment.size(),
                  "silhouette: one assignment per sample");
  int max_cluster = -1;
  for (const int c : assignment) max_cluster = std::max(max_cluster, c);
  std::vector<double> mean(static_cast<std::size_t>(max_cluster + 1), 0.0);
  std::vector<std::size_t> count(mean.size(), 0);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const auto c = static_cast<std::size_t>(assignment[i]);
    mean[c] += samples[i];
    ++count[c];
  }
  for (std::size_t c = 0; c < mean.size(); ++c) {
    if (count[c] > 0) mean[c] /= static_cast<double>(count[c]);
  }
  return mean;
}

}  // namespace darkvec::ml
