#include "darkvec/ml/kmeans.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "darkvec/core/runtime/runtime.hpp"
#include "darkvec/sim/rng.hpp"

namespace darkvec::ml {
namespace {

double squared_distance(std::span<const float> a, std::span<const float> b) {
  double acc = 0;
  for (std::size_t d = 0; d < a.size(); ++d) {
    const double diff = double{a[d]} - b[d];
    acc += diff * diff;
  }
  return acc;
}

}  // namespace

KMeansResult kmeans(const w2v::Embedding& points, int k,
                    const KMeansOptions& options) {
  KMeansResult result;
  const std::size_t n = points.size();
  const auto dim = static_cast<std::size_t>(points.dim());
  result.assignment.assign(n, 0);
  if (n == 0 || k <= 0) {
    result.centroids = w2v::Embedding(0, points.dim());
    return result;
  }
  const auto clusters = static_cast<std::size_t>(
      std::min<std::size_t>(static_cast<std::size_t>(k), n));

  // --- k-means++ seeding --------------------------------------------------
  sim::Rng rng(options.seed);
  std::vector<std::size_t> seeds;
  seeds.push_back(rng.uniform_int(n));
  std::vector<double> nearest(n, std::numeric_limits<double>::infinity());
  while (seeds.size() < clusters) {
    DV_CHECKPOINT();  // seed-granular cancellation during k-means++
    double total = 0;
    for (std::size_t i = 0; i < n; ++i) {
      nearest[i] = std::min(
          nearest[i], squared_distance(points.vec(i),
                                       points.vec(seeds.back())));
      total += nearest[i];
    }
    if (total <= 0) {
      // All remaining points coincide with a seed; pick arbitrarily.
      seeds.push_back(rng.uniform_int(n));
      continue;
    }
    double target = rng.uniform() * total;
    std::size_t chosen = n - 1;
    for (std::size_t i = 0; i < n; ++i) {
      target -= nearest[i];
      if (target <= 0) {
        chosen = i;
        break;
      }
    }
    seeds.push_back(chosen);
  }

  result.centroids = w2v::Embedding(clusters, points.dim());
  for (std::size_t c = 0; c < clusters; ++c) {
    const auto src = points.vec(seeds[c]);
    std::ranges::copy(src, result.centroids.vec(c).begin());
  }

  // --- Lloyd iterations -----------------------------------------------------
  std::vector<double> sums(clusters * dim);
  std::vector<std::size_t> counts(clusters);
  double previous_inertia = std::numeric_limits<double>::infinity();
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    DV_CHECKPOINT();  // Lloyd-iteration cancellation granularity
    result.iterations = iter + 1;
    // Assign.
    double inertia = 0;
    for (std::size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::infinity();
      int best_c = 0;
      for (std::size_t c = 0; c < clusters; ++c) {
        const double d =
            squared_distance(points.vec(i), result.centroids.vec(c));
        if (d < best) {
          best = d;
          best_c = static_cast<int>(c);
        }
      }
      result.assignment[i] = best_c;
      inertia += best;
    }
    result.inertia = inertia;

    // Update.
    std::ranges::fill(sums, 0.0);
    std::ranges::fill(counts, 0);
    for (std::size_t i = 0; i < n; ++i) {
      const auto c = static_cast<std::size_t>(result.assignment[i]);
      ++counts[c];
      const auto v = points.vec(i);
      for (std::size_t d = 0; d < dim; ++d) sums[c * dim + d] += v[d];
    }
    for (std::size_t c = 0; c < clusters; ++c) {
      if (counts[c] == 0) continue;  // empty cluster keeps its centroid
      auto centroid = result.centroids.vec(c);
      for (std::size_t d = 0; d < dim; ++d) {
        centroid[d] =
            static_cast<float>(sums[c * dim + d] /
                               static_cast<double>(counts[c]));
      }
    }

    if (previous_inertia - inertia <=
        options.tolerance * std::max(previous_inertia, 1e-12)) {
      break;
    }
    previous_inertia = inertia;
  }
  return result;
}

}  // namespace darkvec::ml
