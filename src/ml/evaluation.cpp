#include "darkvec/ml/evaluation.hpp"

#include <algorithm>
#include <unordered_map>

namespace darkvec::ml {

int majority_vote(std::span<const Neighbor> neighbors,
                  std::span<const int> labels) {
  std::unordered_map<int, std::pair<int, double>> votes;  // label -> (n, sim)
  for (const Neighbor& nb : neighbors) {
    auto& [count, sim] = votes[labels[nb.index]];
    ++count;
    sim += nb.similarity;
  }
  int best = -1;
  int best_count = -1;
  double best_sim = 0;
  for (const auto& [label, cs] : votes) {
    const auto [count, sim] = cs;
    const bool wins = count > best_count ||
                      (count == best_count && sim > best_sim) ||
                      (count == best_count && sim == best_sim && label < best);
    if (wins) {
      best = label;
      best_count = count;
      best_sim = sim;
    }
  }
  return best;
}

std::vector<int> loo_knn_predict(const CosineKnn& index,
                                 std::span<const int> labels,
                                 std::span<const std::uint32_t> eval_points,
                                 int k) {
  std::vector<int> predictions;
  predictions.reserve(eval_points.size());
  for (const std::uint32_t p : eval_points) {
    const auto neighbors = index.query(p, k);
    predictions.push_back(majority_vote(neighbors, labels));
  }
  return predictions;
}

}  // namespace darkvec::ml
