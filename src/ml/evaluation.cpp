#include "darkvec/ml/evaluation.hpp"

#include <algorithm>
#include <unordered_map>

#include "darkvec/core/parallel.hpp"

namespace darkvec::ml {

int majority_vote(std::span<const Neighbor> neighbors,
                  std::span<const int> labels) {
  std::unordered_map<int, std::pair<int, double>> votes;  // label -> (n, sim)
  for (const Neighbor& nb : neighbors) {
    auto& [count, sim] = votes[labels[nb.index]];
    ++count;
    sim += nb.similarity;
  }
  int best = -1;
  int best_count = -1;
  double best_sim = 0;
  for (const auto& [label, cs] : votes) {
    const auto [count, sim] = cs;
    const bool wins = count > best_count ||
                      (count == best_count && sim > best_sim) ||
                      (count == best_count && sim == best_sim && label < best);
    if (wins) {
      best = label;
      best_count = count;
      best_sim = sim;
    }
  }
  return best;
}

std::vector<int> loo_knn_predict(const CosineKnn& index,
                                 std::span<const int> labels,
                                 std::span<const std::uint32_t> eval_points,
                                 int k) {
  return loo_knn_predict(index, labels, eval_points, k, AnnSearchParams{});
}

std::vector<int> loo_knn_predict(const CosineKnn& index,
                                 std::span<const int> labels,
                                 std::span<const std::uint32_t> eval_points,
                                 int k, const AnnSearchParams& ann) {
  // One blocked batch query for all evaluation points, then parallel
  // majority votes; predictions[i] depends on eval_points[i] alone, so
  // the result is independent of the thread count.
  const auto neighbor_lists = index.query_batch(eval_points, k, ann);
  std::vector<int> predictions(eval_points.size());
  core::parallel_for(
      eval_points.size(), 0, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          predictions[i] = majority_vote(neighbor_lists[i], labels);
        }
      });
  return predictions;
}

}  // namespace darkvec::ml
