#include "darkvec/ml/dbscan.hpp"

#include <deque>

namespace darkvec::ml {

DbscanResult dbscan(const w2v::Embedding& points,
                    const DbscanOptions& options) {
  DbscanResult result;
  const std::size_t n = points.size();
  result.assignment.assign(n, DbscanResult::kNoise);
  if (n == 0) return result;

  const w2v::Embedding unit = points.normalized();
  // Cosine distance <= eps  <=>  dot >= 1 - eps on unit vectors.
  const double min_dot = 1.0 - options.eps;

  const auto neighbors_of = [&](std::size_t i) {
    std::vector<std::size_t> out;
    const auto vi = unit.vec(i);
    for (std::size_t j = 0; j < n; ++j) {
      if (w2v::dot(vi, unit.vec(j)) >= min_dot) out.push_back(j);
    }
    return out;  // includes i itself
  };

  std::vector<bool> visited(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    if (visited[i]) continue;
    visited[i] = true;
    const auto seeds = neighbors_of(i);
    if (seeds.size() < options.min_points) continue;  // noise (for now)

    const int cluster = result.clusters++;
    result.assignment[i] = cluster;
    std::deque<std::size_t> queue(seeds.begin(), seeds.end());
    while (!queue.empty()) {
      const std::size_t j = queue.front();
      queue.pop_front();
      if (result.assignment[j] == DbscanResult::kNoise) {
        result.assignment[j] = cluster;  // border point adoption
      }
      if (visited[j]) continue;
      visited[j] = true;
      const auto expansion = neighbors_of(j);
      if (expansion.size() >= options.min_points) {
        queue.insert(queue.end(), expansion.begin(), expansion.end());
      }
    }
  }
  return result;
}

}  // namespace darkvec::ml
