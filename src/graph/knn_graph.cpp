#include "darkvec/graph/knn_graph.hpp"

#include "darkvec/core/runtime/runtime.hpp"
#include "darkvec/obs/obs.hpp"

namespace darkvec::graph {

WeightedGraph knn_graph(const ml::CosineKnn& index, int k_prime) {
  return knn_graph(index, k_prime, ml::AnnSearchParams{});
}

WeightedGraph knn_graph(const ml::CosineKnn& index, int k_prime,
                        const ml::AnnSearchParams& ann) {
  const std::size_t n = index.size();
  DV_SPAN_ARG("graph.knn_graph", "nodes", n);
  // All neighbour lists at once through the blocked parallel kernel (or
  // the IVF index when ann.enabled); edges are then inserted serially
  // in ascending source order, so the graph is bit-identical for any
  // thread count.
  const auto all = index.all_neighbors(k_prime, ann);
  WeightedGraph g(n);
  std::size_t edges = 0;
  for (std::size_t u = 0; u < n; ++u) {
    // The parallel scan above observes the ambient context through the
    // pool; the serial insertion loop checks it directly per block.
    if ((u & 1023u) == 0) DV_CHECKPOINT();
    for (const ml::Neighbor& nb : all[u]) {
      if (nb.similarity <= 0) continue;
      g.add_edge(static_cast<std::uint32_t>(u), nb.index, nb.similarity);
      ++edges;
    }
  }
  g.finalize();
  static obs::Counter& edges_counter = obs::counter(obs::names::kKnnGraphEdges);
  edges_counter.add(edges);
  DV_LOG_DEBUG("graph", "knn graph built", {"nodes", n}, {"edges", edges},
               {"k_prime", k_prime});
  return g;
}

}  // namespace darkvec::graph
