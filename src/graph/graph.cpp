#include "darkvec/core/contracts.hpp"
#include "darkvec/graph/graph.hpp"

#include <algorithm>

namespace darkvec::graph {

WeightedGraph::WeightedGraph(std::size_t n) : n_(n) {}

void WeightedGraph::add_edge(std::uint32_t u, std::uint32_t v, double w) {
  DV_PRECONDITION(!finalized_, "WeightedGraph: add_edge() before finalize()");
  DV_PRECONDITION(u < n_ && v < n_,
                  "WeightedGraph: edge endpoints are valid nodes");
  if (u > v) std::swap(u, v);
  raw_.push_back({u, v, w});
}

void WeightedGraph::finalize() {
  if (finalized_) return;
  finalized_ = true;
  std::ranges::sort(raw_, [](const RawEdge& a, const RawEdge& b) {
    if (a.u != b.u) return a.u < b.u;
    return a.v < b.v;
  });
  // Merge duplicates.
  std::vector<RawEdge> merged;
  merged.reserve(raw_.size());
  for (const RawEdge& e : raw_) {
    if (!merged.empty() && merged.back().u == e.u && merged.back().v == e.v) {
      merged.back().w += e.w;
    } else {
      merged.push_back(e);
    }
  }
  raw_ = std::move(merged);

  degree_.assign(n_, 0.0);
  self_.assign(n_, 0.0);
  std::vector<std::size_t> counts(n_, 0);
  total_weight_ = 0;
  for (const RawEdge& e : raw_) {
    total_weight_ += e.w;
    if (e.u == e.v) {
      self_[e.u] = e.w;
      degree_[e.u] += 2 * e.w;
      ++counts[e.u];
    } else {
      degree_[e.u] += e.w;
      degree_[e.v] += e.w;
      ++counts[e.u];
      ++counts[e.v];
    }
  }
  offsets_.assign(n_ + 1, 0);
  for (std::size_t i = 0; i < n_; ++i) offsets_[i + 1] = offsets_[i] + counts[i];
  edges_.resize(offsets_[n_]);
  std::vector<std::size_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const RawEdge& e : raw_) {
    edges_[cursor[e.u]++] = Edge{e.v, e.w};
    if (e.u != e.v) edges_[cursor[e.v]++] = Edge{e.u, e.w};
  }
  raw_.clear();
  raw_.shrink_to_fit();
}

std::span<const Edge> WeightedGraph::neighbors(std::uint32_t u) const {
  DV_PRECONDITION(finalized_,
                  "WeightedGraph: neighbors() requires finalize()");
  return {edges_.data() + offsets_[u], offsets_[u + 1] - offsets_[u]};
}

std::size_t connected_components(const WeightedGraph& g) {
  const std::size_t n = g.num_nodes();
  std::vector<bool> visited(n, false);
  std::vector<std::uint32_t> stack;
  std::size_t components = 0;
  for (std::uint32_t start = 0; start < n; ++start) {
    if (visited[start]) continue;
    ++components;
    visited[start] = true;
    stack.push_back(start);
    while (!stack.empty()) {
      const std::uint32_t u = stack.back();
      stack.pop_back();
      for (const Edge& e : g.neighbors(u)) {
        if (e.weight > 0 && !visited[e.to]) {
          visited[e.to] = true;
          stack.push_back(e.to);
        }
      }
    }
  }
  return components;
}

}  // namespace darkvec::graph
