#include "darkvec/core/contracts.hpp"
#include "darkvec/graph/louvain.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <unordered_map>

#include "darkvec/core/runtime/runtime.hpp"
#include "darkvec/obs/obs.hpp"
#include "darkvec/sim/rng.hpp"

namespace darkvec::graph {
namespace {

/// One level of local moving. Returns the (non-dense) community of each
/// node and the modularity gain achieved.
struct LevelResult {
  std::vector<int> community;
  bool improved = false;
  /// Local-moving sweeps over all nodes until no move improved.
  int passes = 0;
  /// Nodes that changed community across all passes.
  std::size_t moves = 0;
};

LevelResult one_level(const WeightedGraph& g, double min_gain,
                      sim::Rng& rng) {
  const std::size_t n = g.num_nodes();
  const double m = g.total_weight();
  LevelResult result;
  result.community.resize(n);
  std::iota(result.community.begin(), result.community.end(), 0);
  if (m <= 0) return result;

  // Community aggregates: total degree and internal weight.
  std::vector<double> tot(n), in(n);
  for (std::uint32_t u = 0; u < n; ++u) {
    tot[u] = g.degree(u);
    in[u] = g.self_loop(u);
  }

  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  for (std::size_t i = n; i > 1; --i) {  // Fisher-Yates
    std::swap(order[i - 1], order[rng.uniform_int(i)]);
  }

  std::unordered_map<int, double> links;  // community -> weight from node
  bool moved_any = true;
  while (moved_any && result.passes < 64) {
    // Cancellation granularity: one local-moving pass. Aborting between
    // passes leaves no partial community state visible to the caller.
    DV_CHECKPOINT();
    moved_any = false;
    ++result.passes;
    for (const std::uint32_t u : order) {
      const int old_com = result.community[u];
      const double ku = g.degree(u);

      links.clear();
      for (const Edge& e : g.neighbors(u)) {
        if (e.to == u) continue;
        links[result.community[e.to]] += e.weight;
      }
      const double w_old = links.contains(old_com) ? links[old_com] : 0.0;

      // Remove u from its community.
      tot[static_cast<std::size_t>(old_com)] -= ku;
      in[static_cast<std::size_t>(old_com)] -= 2 * w_old + g.self_loop(u);

      // Best target community (python-louvain gain formula).
      int best_com = old_com;
      double best_gain = 0;
      for (const auto& [com, w_uc] : links) {
        const double gain =
            w_uc - tot[static_cast<std::size_t>(com)] * ku / (2.0 * m);
        if (gain > best_gain + min_gain ||
            (gain > best_gain && com < best_com)) {
          best_gain = gain;
          best_com = com;
        }
      }

      // Insert u into the best community.
      const double w_new = links.contains(best_com) ? links[best_com] : 0.0;
      tot[static_cast<std::size_t>(best_com)] += ku;
      in[static_cast<std::size_t>(best_com)] += 2 * w_new + g.self_loop(u);
      result.community[u] = best_com;
      if (best_com != old_com) {
        moved_any = true;
        result.improved = true;
        ++result.moves;
      }
    }
  }
  return result;
}

/// Renumbers community ids to dense [0, count) and returns count.
int renumber(std::vector<int>& community) {
  std::unordered_map<int, int> dense;
  for (int& c : community) {
    const auto [it, inserted] =
        dense.try_emplace(c, static_cast<int>(dense.size()));
    c = it->second;
  }
  return static_cast<int>(dense.size());
}

/// Builds the aggregated graph where each community becomes one node.
WeightedGraph aggregate(const WeightedGraph& g,
                        std::span<const int> community, int n_communities) {
  WeightedGraph agg(static_cast<std::size_t>(n_communities));
  for (std::uint32_t u = 0; u < g.num_nodes(); ++u) {
    const auto cu = static_cast<std::uint32_t>(community[u]);
    if (g.self_loop(u) > 0) agg.add_edge(cu, cu, g.self_loop(u));
    for (const Edge& e : g.neighbors(u)) {
      if (e.to <= u) continue;  // undirected edges once; skips self-loops
      agg.add_edge(cu, static_cast<std::uint32_t>(community[e.to]), e.weight);
    }
  }
  agg.finalize();
  return agg;
}

}  // namespace

double modularity(const WeightedGraph& g, std::span<const int> community) {
  DV_PRECONDITION(community.size() == g.num_nodes(),
                  "modularity: one community entry per node");
  const double m = g.total_weight();
  if (m <= 0) return 0;

  std::unordered_map<int, double> tot;  // community -> degree sum
  std::unordered_map<int, double> in;   // community -> internal weight
  for (std::uint32_t u = 0; u < g.num_nodes(); ++u) {
    tot[community[u]] += g.degree(u);
    in[community[u]] += g.self_loop(u);
    for (const Edge& e : g.neighbors(u)) {
      if (e.to <= u) continue;
      if (community[e.to] == community[u]) in[community[u]] += e.weight;
    }
  }
  double q = 0;
  for (const auto& [com, degree_sum] : tot) {
    const double inc = in.contains(com) ? in[com] : 0.0;
    q += inc / m - (degree_sum / (2.0 * m)) * (degree_sum / (2.0 * m));
  }
  return q;
}

LouvainResult louvain(const WeightedGraph& g, const LouvainOptions& options) {
  LouvainResult result;
  const std::size_t n = g.num_nodes();
  result.community.resize(n);
  std::iota(result.community.begin(), result.community.end(), 0);
  if (n == 0) return result;

  DV_SPAN_ARG("graph.louvain", "nodes", n);
  static obs::Counter& passes_counter = obs::counter(obs::names::kLouvainPasses);
  static obs::Counter& moves_counter = obs::counter(obs::names::kLouvainMoves);
  static obs::Counter& levels_counter = obs::counter(obs::names::kLouvainLevels);

  sim::Rng rng(options.seed);
  // `current` is the working (aggregated) graph; `mapping` maps original
  // nodes to current-graph nodes.
  WeightedGraph current(0);
  const WeightedGraph* graph = &g;
  std::vector<int> mapping(n);
  std::iota(mapping.begin(), mapping.end(), 0);

  for (int level = 0; level < options.max_levels; ++level) {
    DV_SPAN_ARG("graph.louvain.level", "level", level);
    DV_CHECKPOINT();
    LevelResult lr = one_level(*graph, options.min_gain, rng);
    passes_counter.add(static_cast<std::uint64_t>(lr.passes));
    moves_counter.add(lr.moves);
    if (!lr.improved && level > 0) break;
    const int count = renumber(lr.community);
    DV_LOG_DEBUG("graph", "louvain level", {"level", level},
                 {"communities", count}, {"passes", lr.passes},
                 {"moves", lr.moves});
    for (std::size_t i = 0; i < n; ++i) {
      mapping[i] = lr.community[static_cast<std::size_t>(mapping[i])];
    }
    result.levels = level + 1;
    if (!lr.improved) break;
    current = aggregate(*graph, lr.community, count);
    graph = &current;
    if (static_cast<std::size_t>(count) == lr.community.size()) break;
  }

  result.community = mapping;
  result.count = renumber(result.community);
  result.modularity = modularity(g, result.community);
  levels_counter.add(static_cast<std::uint64_t>(result.levels));
  obs::gauge(obs::names::kLouvainModularity).set(result.modularity);
  DV_LOG_DEBUG("graph", "louvain done", {"communities", result.count},
               {"levels", result.levels}, {"modularity", result.modularity});
  return result;
}

}  // namespace darkvec::graph
