#include "darkvec/net/time.hpp"

#include <cstdio>
#include <ctime>

namespace darkvec::net {

std::string format_utc(std::int64_t ts) {
  const auto t = static_cast<std::time_t>(ts);
  std::tm tm{};
  gmtime_r(&t, &tm);
  char buf[80];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d %02d:%02d:%02d",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec);
  return buf;
}

}  // namespace darkvec::net
