#include "darkvec/net/trace_io.hpp"

#include <charconv>
#include <fstream>
#include <optional>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "darkvec/core/atomic_io.hpp"
#include "darkvec/obs/obs.hpp"

namespace darkvec::net {
namespace {

std::vector<std::string_view> split(std::string_view line, char sep) {
  std::vector<std::string_view> fields;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = line.find(sep, start);
    if (pos == std::string_view::npos) {
      fields.push_back(line.substr(start));
      return fields;
    }
    fields.push_back(line.substr(start, pos - start));
    start = pos + 1;
  }
}

template <typename T>
std::optional<T> parse_int(std::string_view text) {
  T value{};
  auto [p, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || p != text.data() + text.size()) return std::nullopt;
  return value;
}

/// Parses one data row; returns the failure message on malformed input.
std::optional<std::string> parse_row(std::string_view line, Packet& out) {
  const auto fields = split(line, ',');
  if (fields.size() != 6) return "expected 6 fields";
  const auto ts = parse_int<std::int64_t>(fields[0]);
  if (!ts) return "bad timestamp";
  const auto src = IPv4::parse(fields[1]);
  if (!src) return "bad source address";
  const auto dst_host = parse_int<std::uint8_t>(fields[2]);
  if (!dst_host) return "bad destination host";
  const auto dst_port = parse_int<std::uint16_t>(fields[3]);
  if (!dst_port) return "bad port";
  const auto proto = parse_protocol(fields[4]);
  if (!proto) return "bad protocol";
  const auto mirai = parse_int<int>(fields[5]);
  if (!mirai) return "bad fingerprint flag";
  out.ts = *ts;
  out.src = *src;
  out.dst_host = *dst_host;
  out.dst_port = *dst_port;
  out.proto = *proto;
  out.mirai_fingerprint = *mirai != 0;
  return std::nullopt;
}

}  // namespace

void write_csv(std::ostream& out, const Trace& trace) {
  out << "ts,src,dst_host,port,proto,mirai\n";
  for (const Packet& p : trace) {
    out << p.ts << ',' << p.src.to_string() << ',' << int{p.dst_host} << ','
        << p.dst_port << ',' << to_string(p.proto) << ','
        << int{p.mirai_fingerprint} << '\n';
  }
}

void write_csv_file(const std::string& path, const Trace& trace) {
  io::atomic_write_file(path, std::ios::out, [&](std::ostream& out) {
    write_csv(out, trace);
  });
}

Trace read_csv(std::istream& in, const io::IoPolicy& policy,
               io::IoReport* report) {
  DV_SPAN("io.read_csv");
  std::vector<Packet> packets;
  std::string line;
  std::size_t line_no = 0;
  std::size_t skipped = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (line_no == 1 && line.rfind("ts,", 0) == 0) continue;  // header
    Packet p;
    if (const auto error = parse_row(line, p)) {
      io::detail::bad_record(policy, report, line_no,
                             "trace csv: " + *error + " at line " +
                                 std::to_string(line_no));
      ++skipped;
      continue;
    }
    packets.push_back(p);
    if (report != nullptr) ++report->records_read;
  }
  // Counted locally so metrics do not depend on the caller passing a
  // report (the lenient path may return with rows silently dropped).
  static obs::Counter& read_counter = obs::counter(obs::names::kIoRecordsRead);
  static obs::Counter& skipped_counter = obs::counter(obs::names::kIoRecordsSkipped);
  read_counter.add(packets.size());
  skipped_counter.add(skipped);
  if (skipped > 0) {
    DV_LOG_WARN("io", "trace csv rows skipped", {"skipped", skipped},
                {"read", packets.size()});
  }
  DV_LOG_DEBUG("io", "trace csv read", {"records", packets.size()},
               {"skipped", skipped});
  return Trace{std::move(packets)};
}

Trace read_csv_file(const std::string& path, const io::IoPolicy& policy,
                    io::IoReport* report) {
  std::ifstream in(path);
  if (!in) throw io::IoError("trace csv: cannot open " + path);
  return read_csv(in, policy, report);
}

Trace read_csv(std::istream& in) { return read_csv(in, io::IoPolicy{}); }

Trace read_csv_file(const std::string& path) {
  return read_csv_file(path, io::IoPolicy{});
}

}  // namespace darkvec::net
