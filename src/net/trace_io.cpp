#include "darkvec/net/trace_io.hpp"

#include <charconv>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace darkvec::net {
namespace {

std::vector<std::string_view> split(std::string_view line, char sep) {
  std::vector<std::string_view> fields;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = line.find(sep, start);
    if (pos == std::string_view::npos) {
      fields.push_back(line.substr(start));
      return fields;
    }
    fields.push_back(line.substr(start, pos - start));
    start = pos + 1;
  }
}

template <typename T>
T parse_int_or_throw(std::string_view text, std::size_t line_no) {
  T value{};
  auto [p, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || p != text.data() + text.size()) {
    throw std::runtime_error("trace csv: bad integer field at line " +
                             std::to_string(line_no));
  }
  return value;
}

}  // namespace

void write_csv(std::ostream& out, const Trace& trace) {
  out << "ts,src,dst_host,port,proto,mirai\n";
  for (const Packet& p : trace) {
    out << p.ts << ',' << p.src.to_string() << ',' << int{p.dst_host} << ','
        << p.dst_port << ',' << to_string(p.proto) << ','
        << int{p.mirai_fingerprint} << '\n';
  }
}

void write_csv_file(const std::string& path, const Trace& trace) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("trace csv: cannot open " + path);
  write_csv(out, trace);
}

Trace read_csv(std::istream& in) {
  std::vector<Packet> packets;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (line_no == 1 && line.rfind("ts,", 0) == 0) continue;  // header
    const auto fields = split(line, ',');
    if (fields.size() != 6) {
      throw std::runtime_error("trace csv: expected 6 fields at line " +
                               std::to_string(line_no));
    }
    Packet p;
    p.ts = parse_int_or_throw<std::int64_t>(fields[0], line_no);
    const auto src = IPv4::parse(fields[1]);
    if (!src) {
      throw std::runtime_error("trace csv: bad source address at line " +
                               std::to_string(line_no));
    }
    p.src = *src;
    p.dst_host = parse_int_or_throw<std::uint8_t>(fields[2], line_no);
    p.dst_port = parse_int_or_throw<std::uint16_t>(fields[3], line_no);
    const auto proto = parse_protocol(fields[4]);
    if (!proto) {
      throw std::runtime_error("trace csv: bad protocol at line " +
                               std::to_string(line_no));
    }
    p.proto = *proto;
    p.mirai_fingerprint = parse_int_or_throw<int>(fields[5], line_no) != 0;
    packets.push_back(p);
  }
  return Trace{std::move(packets)};
}

Trace read_csv_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("trace csv: cannot open " + path);
  return read_csv(in);
}

}  // namespace darkvec::net
