#include "darkvec/net/ipv4.hpp"

#include <array>
#include <charconv>

namespace darkvec::net {

std::optional<IPv4> IPv4::parse(std::string_view text) {
  std::array<std::uint8_t, 4> octets{};
  const char* p = text.data();
  const char* end = text.data() + text.size();
  for (int i = 0; i < 4; ++i) {
    unsigned value = 0;
    auto [next, ec] = std::from_chars(p, end, value);
    if (ec != std::errc{} || next == p || value > 255) return std::nullopt;
    octets[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(value);
    p = next;
    if (i < 3) {
      if (p == end || *p != '.') return std::nullopt;
      ++p;
    }
  }
  if (p != end) return std::nullopt;
  return IPv4{octets[0], octets[1], octets[2], octets[3]};
}

std::string IPv4::to_string() const {
  std::string out;
  out.reserve(15);
  for (int i = 0; i < 4; ++i) {
    if (i > 0) out.push_back('.');
    out += std::to_string(octet(i));
  }
  return out;
}

}  // namespace darkvec::net
