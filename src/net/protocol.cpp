#include "darkvec/net/protocol.hpp"

#include <algorithm>
#include <cctype>

namespace darkvec::net {

std::string_view to_string(Protocol p) {
  switch (p) {
    case Protocol::kTcp:
      return "tcp";
    case Protocol::kUdp:
      return "udp";
    case Protocol::kIcmp:
      return "icmp";
  }
  return "tcp";
}

std::optional<Protocol> parse_protocol(std::string_view text) {
  std::string lower(text);
  std::ranges::transform(lower, lower.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  if (lower == "tcp") return Protocol::kTcp;
  if (lower == "udp") return Protocol::kUdp;
  if (lower == "icmp") return Protocol::kIcmp;
  return std::nullopt;
}

std::string PortKey::to_string() const {
  if (proto == Protocol::kIcmp) return "icmp";
  return std::to_string(port) + "/" + std::string(net::to_string(proto));
}

}  // namespace darkvec::net
