#include "darkvec/net/trace.hpp"

#include <algorithm>
#include <unordered_set>

#include "darkvec/net/time.hpp"

namespace darkvec::net {

Trace::Trace(std::vector<Packet> packets) : packets_(std::move(packets)) {}

void Trace::append(const Trace& other) {
  packets_.insert(packets_.end(), other.packets_.begin(),
                  other.packets_.end());
}

void Trace::sort() {
  std::ranges::stable_sort(packets_, {}, &Packet::ts);
}

Trace Trace::slice(std::int64_t t0, std::int64_t t1) const {
  const auto lo = std::ranges::lower_bound(packets_, t0, {}, &Packet::ts);
  const auto hi = std::ranges::lower_bound(packets_, t1, {}, &Packet::ts);
  return Trace{std::vector<Packet>(lo, hi)};
}

TraceStats Trace::stats() const {
  TraceStats s;
  s.packets = packets_.size();
  if (packets_.empty()) return s;
  std::unordered_set<IPv4> sources;
  std::unordered_set<PortKey> ports;
  s.first_ts = packets_.front().ts;
  s.last_ts = packets_.front().ts;
  for (const Packet& p : packets_) {
    sources.insert(p.src);
    ports.insert(p.port_key());
    s.first_ts = std::min(s.first_ts, p.ts);
    s.last_ts = std::max(s.last_ts, p.ts);
  }
  s.sources = sources.size();
  s.ports = ports.size();
  return s;
}

std::vector<PortRankEntry> Trace::port_ranking() const {
  struct Agg {
    std::size_t packets = 0;
    std::unordered_set<IPv4> sources;
  };
  std::unordered_map<PortKey, Agg> agg;
  for (const Packet& p : packets_) {
    Agg& a = agg[p.port_key()];
    ++a.packets;
    a.sources.insert(p.src);
  }
  std::vector<PortRankEntry> out;
  out.reserve(agg.size());
  for (auto& [key, a] : agg) {
    out.push_back({key, a.packets, a.sources.size()});
  }
  std::ranges::sort(out, [](const PortRankEntry& x, const PortRankEntry& y) {
    if (x.packets != y.packets) return x.packets > y.packets;
    return x.key < y.key;
  });
  return out;
}

std::unordered_map<IPv4, std::size_t> Trace::packets_per_sender() const {
  std::unordered_map<IPv4, std::size_t> counts;
  counts.reserve(packets_.size() / 4 + 1);
  for (const Packet& p : packets_) ++counts[p.src];
  return counts;
}

std::vector<std::size_t> Trace::cumulative_senders_per_day(
    std::int64_t t0, std::size_t min_packets) const {
  if (packets_.empty()) return {};
  std::unordered_map<IPv4, std::size_t> totals;
  if (min_packets > 1) totals = packets_per_sender();

  const std::int64_t last_day = day_index(packets_.back().ts, t0);
  std::vector<std::size_t> cumulative(
      static_cast<std::size_t>(std::max<std::int64_t>(last_day + 1, 1)), 0);
  std::unordered_set<IPv4> seen;
  std::size_t day_pos = 0;
  std::size_t count = 0;
  for (const Packet& p : packets_) {
    const auto day =
        static_cast<std::size_t>(std::max<std::int64_t>(day_index(p.ts, t0), 0));
    while (day_pos < day) cumulative[day_pos++] = count;
    if (min_packets > 1 && totals[p.src] < min_packets) continue;
    if (seen.insert(p.src).second) ++count;
  }
  while (day_pos < cumulative.size()) cumulative[day_pos++] = count;
  return cumulative;
}

std::vector<IPv4> active_senders(const Trace& trace, std::size_t min_packets) {
  std::vector<IPv4> out;
  for (const auto& [ip, count] : trace.packets_per_sender()) {
    if (count >= min_packets) out.push_back(ip);
  }
  std::ranges::sort(out);
  return out;
}

}  // namespace darkvec::net
