#include "darkvec/net/trace_binary.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "darkvec/core/atomic_io.hpp"
#include "darkvec/core/byteio.hpp"
#include "darkvec/core/checksum.hpp"
#include "darkvec/obs/obs.hpp"

namespace darkvec::net {
namespace {

constexpr std::uint32_t kMagic = 0x44564B54;  // "DVKT"
constexpr std::uint32_t kVersionV1 = 1;
constexpr std::uint32_t kVersionV2 = 2;  // v1 + CRC32 footer

// 16-byte on-disk record.
struct Record {
  std::int64_t ts;
  std::uint32_t src;
  std::uint16_t dst_port;
  std::uint8_t dst_host;
  std::uint8_t flags;  // bit 0-1 proto, bit 2 fingerprint
};
static_assert(sizeof(Record) == 16);

Record pack(const Packet& p) {
  Record r;
  r.ts = p.ts;
  r.src = p.src.value();
  r.dst_port = p.dst_port;
  r.dst_host = p.dst_host;
  r.flags = static_cast<std::uint8_t>(
      (static_cast<std::uint8_t>(p.proto) & 0x3) |
      (p.mirai_fingerprint ? 0x4 : 0));
  return r;
}

/// False iff the record's protocol bits are invalid.
bool unpack(const Record& r, Packet& p) {
  const auto proto = static_cast<std::uint8_t>(r.flags & 0x3);
  if (proto > 2) return false;
  p.ts = r.ts;
  p.src = IPv4{r.src};
  p.dst_port = r.dst_port;
  p.dst_host = r.dst_host;
  p.proto = static_cast<Protocol>(proto);
  p.mirai_fingerprint = (r.flags & 0x4) != 0;
  return true;
}

}  // namespace

void write_binary(std::ostream& out, const Trace& trace) {
  io::Crc32 crc;
  const auto put = [&](const void* data, std::size_t len) {
    crc.update(data, len);
    out.write(static_cast<const char*>(data),
              static_cast<std::streamsize>(len));
  };
  const std::uint64_t count = trace.size();
  put(&kMagic, sizeof(kMagic));
  put(&kVersionV2, sizeof(kVersionV2));
  put(&count, sizeof(count));
  // Buffered record writes: one syscall-sized chunk at a time.
  std::vector<Record> buffer;
  buffer.reserve(4096);
  for (const Packet& p : trace) {
    buffer.push_back(pack(p));
    if (buffer.size() == buffer.capacity()) {
      put(buffer.data(), buffer.size() * sizeof(Record));
      buffer.clear();
    }
  }
  if (!buffer.empty()) put(buffer.data(), buffer.size() * sizeof(Record));
  io::write_pod(out, crc.value());
}

void write_binary_file(const std::string& path, const Trace& trace) {
  io::atomic_write_file(path, std::ios::binary, [&](std::ostream& out) {
    write_binary(out, trace);
  });
}

Trace read_binary(std::istream& in, const io::IoPolicy& policy,
                  io::IoReport* report) {
  DV_SPAN("io.read_binary");
  io::Crc32 crc;
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  std::uint64_t count = 0;
  if (!io::read_pod(in, magic) || magic != kMagic) {
    throw io::FormatError("trace binary: bad magic");
  }
  if (!io::read_pod(in, version) ||
      (version != kVersionV1 && version != kVersionV2)) {
    throw io::FormatError("trace binary: unsupported version");
  }
  if (!io::read_pod(in, count)) {
    throw io::TruncatedInput("trace binary: truncated header");
  }
  if (count > policy.limits.max_records) {
    throw io::ResourceLimit(
        "trace binary: header declares " + std::to_string(count) +
        " records, cap is " + std::to_string(policy.limits.max_records));
  }
  crc.update(&magic, sizeof(magic));
  crc.update(&version, sizeof(version));
  crc.update(&count, sizeof(count));

  std::vector<Packet> packets;
  // Growth stays proportional to bytes actually present: a lying header
  // cannot force an allocation past one chunk ahead of the stream.
  packets.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(count, std::uint64_t{1} << 20)));
  std::vector<Record> buffer(4096);
  std::uint64_t remaining = count;
  std::uint64_t record_no = 0;
  bool truncated = false;
  while (remaining > 0 && !truncated) {
    const std::size_t chunk = static_cast<std::size_t>(
        std::min<std::uint64_t>(remaining, buffer.size()));
    const std::size_t got = io::read_array_bytes(in, buffer.data(), chunk);
    const std::size_t whole = got / sizeof(Record);
    crc.update(buffer.data(), got);
    for (std::size_t i = 0; i < whole; ++i) {
      ++record_no;
      Packet p;
      if (!unpack(buffer[i], p)) {
        io::detail::bad_record(policy, report,
                               static_cast<std::size_t>(record_no),
                               "trace binary: bad protocol in record " +
                                   std::to_string(record_no));
        continue;
      }
      packets.push_back(p);
      if (report != nullptr) ++report->records_read;
    }
    if (got < chunk * sizeof(Record)) {
      io::detail::bad_record<io::TruncatedInput>(
          policy, report, static_cast<std::size_t>(record_no + 1),
          "trace binary: stream ends after record " +
              std::to_string(record_no) + " of a declared " +
              std::to_string(count));
      truncated = true;  // lenient: keep what we have
    }
    remaining -= chunk;
  }

  if (version == kVersionV2 && !truncated) {
    std::uint32_t stored = 0;
    if (!io::read_pod(in, stored)) {
      io::detail::bad_record<io::TruncatedInput>(
          policy, report, static_cast<std::size_t>(record_no),
          "trace binary: missing CRC32 footer");
    } else if (stored != crc.value()) {
      if (report != nullptr) report->checksum_failed = true;
      io::detail::suspect_input(policy, report,
                                static_cast<std::size_t>(record_no),
                                "trace binary: CRC32 mismatch");
    } else if (report != nullptr) {
      report->checksum_verified = true;
    }
  }
  if (!truncated && in.peek() != std::istream::traits_type::eof()) {
    io::detail::suspect_input(
        policy, report, static_cast<std::size_t>(record_no),
        "trace binary: trailing data after declared records");
  }
  static obs::Counter& read_counter = obs::counter(obs::names::kIoRecordsRead);
  static obs::Counter& skipped_counter = obs::counter(obs::names::kIoRecordsSkipped);
  read_counter.add(packets.size());
  const std::uint64_t skipped = record_no - packets.size();
  skipped_counter.add(skipped);
  if (skipped > 0 || truncated) {
    DV_LOG_WARN("io", "trace binary records dropped",
                {"skipped", skipped}, {"read", packets.size()},
                {"truncated", truncated});
  }
  DV_LOG_DEBUG("io", "trace binary read", {"records", packets.size()},
               {"declared", count}, {"version", version});
  return Trace{std::move(packets)};
}

Trace read_binary_file(const std::string& path, const io::IoPolicy& policy,
                       io::IoReport* report) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw io::IoError("trace binary: cannot open " + path);
  return read_binary(in, policy, report);
}

Trace read_binary(std::istream& in) { return read_binary(in, io::IoPolicy{}); }

Trace read_binary_file(const std::string& path) {
  return read_binary_file(path, io::IoPolicy{});
}

}  // namespace darkvec::net
