#include "darkvec/net/trace_binary.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>
#include <vector>

namespace darkvec::net {
namespace {

constexpr std::uint32_t kMagic = 0x44564B54;  // "DVKT"
constexpr std::uint32_t kVersion = 1;

// 16-byte on-disk record.
struct Record {
  std::int64_t ts;
  std::uint32_t src;
  std::uint16_t dst_port;
  std::uint8_t dst_host;
  std::uint8_t flags;  // bit 0-1 proto, bit 2 fingerprint
};
static_assert(sizeof(Record) == 16);

Record pack(const Packet& p) {
  Record r;
  r.ts = p.ts;
  r.src = p.src.value();
  r.dst_port = p.dst_port;
  r.dst_host = p.dst_host;
  r.flags = static_cast<std::uint8_t>(
      (static_cast<std::uint8_t>(p.proto) & 0x3) |
      (p.mirai_fingerprint ? 0x4 : 0));
  return r;
}

Packet unpack(const Record& r) {
  Packet p;
  p.ts = r.ts;
  p.src = IPv4{r.src};
  p.dst_port = r.dst_port;
  p.dst_host = r.dst_host;
  const auto proto = static_cast<std::uint8_t>(r.flags & 0x3);
  if (proto > 2) throw std::runtime_error("trace binary: bad protocol");
  p.proto = static_cast<Protocol>(proto);
  p.mirai_fingerprint = (r.flags & 0x4) != 0;
  return p;
}

}  // namespace

void write_binary(std::ostream& out, const Trace& trace) {
  const std::uint64_t count = trace.size();
  out.write(reinterpret_cast<const char*>(&kMagic), sizeof(kMagic));
  out.write(reinterpret_cast<const char*>(&kVersion), sizeof(kVersion));
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  // Buffered record writes: one syscall-sized chunk at a time.
  std::vector<Record> buffer;
  buffer.reserve(4096);
  for (const Packet& p : trace) {
    buffer.push_back(pack(p));
    if (buffer.size() == buffer.capacity()) {
      out.write(reinterpret_cast<const char*>(buffer.data()),
                static_cast<std::streamsize>(buffer.size() * sizeof(Record)));
      buffer.clear();
    }
  }
  if (!buffer.empty()) {
    out.write(reinterpret_cast<const char*>(buffer.data()),
              static_cast<std::streamsize>(buffer.size() * sizeof(Record)));
  }
}

void write_binary_file(const std::string& path, const Trace& trace) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("trace binary: cannot open " + path);
  write_binary(out, trace);
}

Trace read_binary(std::istream& in) {
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  std::uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (!in || magic != kMagic) {
    throw std::runtime_error("trace binary: bad magic");
  }
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  if (!in || version != kVersion) {
    throw std::runtime_error("trace binary: unsupported version");
  }
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in) throw std::runtime_error("trace binary: truncated header");

  std::vector<Packet> packets;
  packets.reserve(count);
  std::vector<Record> buffer(4096);
  std::uint64_t remaining = count;
  while (remaining > 0) {
    const std::size_t chunk =
        static_cast<std::size_t>(std::min<std::uint64_t>(remaining,
                                                         buffer.size()));
    in.read(reinterpret_cast<char*>(buffer.data()),
            static_cast<std::streamsize>(chunk * sizeof(Record)));
    if (!in) throw std::runtime_error("trace binary: truncated data");
    for (std::size_t i = 0; i < chunk; ++i) {
      packets.push_back(unpack(buffer[i]));
    }
    remaining -= chunk;
  }
  return Trace{std::move(packets)};
}

Trace read_binary_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("trace binary: cannot open " + path);
  return read_binary(in);
}

}  // namespace darkvec::net
