#include "darkvec/baselines/dante.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "darkvec/w2v/vocab.hpp"

namespace darkvec::baselines {

DanteResult run_dante(const net::Trace& trace,
                      std::span<const net::IPv4> senders,
                      const DanteOptions& options) {
  DanteResult result;
  if (trace.empty() || senders.empty()) return result;

  const std::unordered_set<net::IPv4> wanted(senders.begin(), senders.end());
  const std::int64_t t0 = trace[0].ts;

  // Sentence per (sender, window): the chronological port sequence.
  w2v::Vocab<net::PortKey> ports;
  std::unordered_map<net::IPv4, std::size_t> row_of;
  std::vector<std::vector<w2v::Sentence>> per_sender;  // sender -> sentences
  std::vector<std::int64_t> open_window;               // sender -> window id

  for (const net::Packet& p : trace) {
    if (!wanted.contains(p.src)) continue;
    const auto [it, inserted] = row_of.try_emplace(p.src, per_sender.size());
    if (inserted) {
      result.senders.push_back(p.src);
      per_sender.emplace_back();
      open_window.push_back(-1);
    }
    const std::size_t row = it->second;
    const std::int64_t window = (p.ts - t0) / options.window_seconds;
    if (window != open_window[row]) {
      per_sender[row].emplace_back();
      open_window[row] = window;
    }
    per_sender[row].back().push_back(ports.add(p.port_key()));
  }

  // Per-sender flat token lists for the averaging step below (kept before
  // augmentation so every packet counts exactly once).
  std::vector<std::vector<std::uint32_t>> sender_tokens(per_sender.size());
  for (std::size_t row = 0; row < per_sender.size(); ++row) {
    for (const w2v::Sentence& s : per_sender[row]) {
      result.sequence_lengths.push_back(s.size());
      sender_tokens[row].insert(sender_tokens[row].end(), s.begin(),
                                s.end());
    }
  }

  // Flatten the corpus, applying DANTE's overlapping-window sentence
  // augmentation, and count its cost.
  std::vector<w2v::Sentence> corpus;
  const std::size_t win = options.sentence_window;
  const std::size_t stride = std::max<std::size_t>(options.sentence_stride, 1);
  for (auto& sentences : per_sender) {
    for (auto& s : sentences) {
      if (win == 0 || s.size() <= win) {
        ++result.sentences;
        corpus.push_back(std::move(s));
        continue;
      }
      for (std::size_t start = 0; start + win <= s.size();
           start += stride) {
        ++result.sentences;
        corpus.emplace_back(s.begin() + static_cast<std::ptrdiff_t>(start),
                            s.begin() + static_cast<std::ptrdiff_t>(start +
                                                                    win));
      }
    }
  }
  const int c = options.w2v.window;
  for (const auto& s : corpus) {
    const auto n = static_cast<std::int64_t>(s.size());
    for (std::int64_t i = 0; i < n; ++i) {
      const std::int64_t lo = std::max<std::int64_t>(0, i - c);
      const std::int64_t hi = std::min<std::int64_t>(n - 1, i + c);
      result.skipgrams_per_epoch += static_cast<std::uint64_t>(hi - lo);
    }
  }

  if (options.max_pairs_per_epoch > 0 &&
      result.skipgrams_per_epoch > options.max_pairs_per_epoch) {
    return result;  // completed = false: the paper's DNF case
  }

  w2v::SkipGramModel model(ports.size(), options.w2v);
  const w2v::TrainStats stats = model.train(corpus);
  result.train_seconds = stats.seconds;

  // Sender vector = mean of the port vectors it contacted (occurrence
  // weighted, as averaging over the packet sequence implies).
  const int dim = options.w2v.dim;
  result.sender_vectors = w2v::Embedding(result.senders.size(), dim);
  for (std::size_t row = 0; row < sender_tokens.size(); ++row) {
    auto dst = result.sender_vectors.vec(row);
    for (const std::uint32_t port_id : sender_tokens[row]) {
      const auto v = model.embedding().vec(port_id);
      for (int d = 0; d < dim; ++d) {
        dst[static_cast<std::size_t>(d)] += v[static_cast<std::size_t>(d)];
      }
    }
    if (!sender_tokens[row].empty()) {
      for (float& x : dst) {
        x /= static_cast<float>(sender_tokens[row].size());
      }
    }
  }

  result.completed = true;
  return result;
}

}  // namespace darkvec::baselines
