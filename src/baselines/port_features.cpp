#include "darkvec/baselines/port_features.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "darkvec/core/parallel.hpp"

namespace darkvec::baselines {

PortFeatures build_port_features(const net::Trace& trace,
                                 std::span<const net::IPv4> senders,
                                 const sim::LabelMap& labels,
                                 std::size_t top_ports_per_class) {
  PortFeatures out;
  out.senders.assign(senders.begin(), senders.end());

  std::unordered_set<net::IPv4> wanted(senders.begin(), senders.end());

  // Per-class port counters.
  std::array<std::unordered_map<net::PortKey, std::size_t>,
             sim::kNumGtClasses>
      class_ports;
  for (const net::Packet& p : trace) {
    if (!wanted.contains(p.src)) continue;
    const auto cls = static_cast<std::size_t>(sim::label_of(labels, p.src));
    ++class_ports[cls][p.port_key()];
  }

  // Top-N per class, merged.
  std::vector<net::PortKey> columns;
  std::unordered_set<net::PortKey> selected;
  for (const auto& counter : class_ports) {
    std::vector<std::pair<net::PortKey, std::size_t>> ranked(counter.begin(),
                                                             counter.end());
    std::ranges::sort(ranked, [](const auto& a, const auto& b) {
      if (a.second != b.second) return a.second > b.second;
      return a.first < b.first;
    });
    for (std::size_t i = 0;
         i < std::min(top_ports_per_class, ranked.size()); ++i) {
      if (selected.insert(ranked[i].first).second) {
        columns.push_back(ranked[i].first);
      }
    }
  }
  std::ranges::sort(columns);
  out.ports = columns;

  std::unordered_map<net::PortKey, std::size_t> column_of;
  for (std::size_t c = 0; c < columns.size(); ++c) {
    column_of.emplace(columns[c], c);
  }
  std::unordered_map<net::IPv4, std::size_t> row_of;
  for (std::size_t r = 0; r < out.senders.size(); ++r) {
    row_of.emplace(out.senders[r], r);
  }

  // Traffic shares.
  out.matrix = w2v::Embedding(out.senders.size(),
                              static_cast<int>(columns.size()));
  std::vector<std::size_t> totals(out.senders.size(), 0);
  for (const net::Packet& p : trace) {
    const auto rit = row_of.find(p.src);
    if (rit == row_of.end()) continue;
    ++totals[rit->second];
    const auto cit = column_of.find(p.port_key());
    if (cit == column_of.end()) continue;
    out.matrix.vec(rit->second)[cit->second] += 1.0f;
  }
  // Per-row rescale to traffic shares; rows are independent, so this
  // runs on the shared pool (the k-NN classification over this matrix
  // goes through the batch kernel in loo_knn_predict).
  core::parallel_for(out.senders.size(), 0,
                     [&](std::size_t lo, std::size_t hi) {
                       for (std::size_t r = lo; r < hi; ++r) {
                         if (totals[r] == 0) continue;
                         auto row = out.matrix.vec(r);
                         for (float& v : row) {
                           v /= static_cast<float>(totals[r]);
                         }
                       }
                     });
  return out;
}

}  // namespace darkvec::baselines
