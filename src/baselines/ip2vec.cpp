#include "darkvec/baselines/ip2vec.hpp"

#include <unordered_map>
#include <unordered_set>

#include "darkvec/w2v/vocab.hpp"

namespace darkvec::baselines {
namespace {

// Token encoding: tag in the top byte, value below. Source and destination
// IP tokens are distinct kinds, as in IP2VEC.
enum class Kind : std::uint64_t { kSrc = 1, kDst = 2, kPort = 3, kProto = 4 };

constexpr std::uint64_t token(Kind kind, std::uint64_t value) {
  return (static_cast<std::uint64_t>(kind) << 56) | value;
}

struct FlowKey {
  std::uint32_t src;
  std::uint8_t dst_host;
  std::uint16_t port;
  std::uint8_t proto;

  bool operator==(const FlowKey&) const = default;
};

struct FlowKeyHash {
  std::size_t operator()(const FlowKey& k) const noexcept {
    std::uint64_t v = (static_cast<std::uint64_t>(k.src) << 32) |
                      (static_cast<std::uint64_t>(k.dst_host) << 24) |
                      (static_cast<std::uint64_t>(k.port) << 8) | k.proto;
    return v * 0x9E3779B97F4A7C15ull;
  }
};

}  // namespace

Ip2VecResult run_ip2vec(const net::Trace& trace,
                        std::span<const net::IPv4> senders,
                        const Ip2VecOptions& options) {
  Ip2VecResult result;
  if (trace.empty() || senders.empty()) return result;
  const std::unordered_set<net::IPv4> wanted(senders.begin(), senders.end());
  const std::int64_t t0 = trace[0].ts;

  // Flow aggregation, then five training pairs per flow (Figure 17):
  // (src,dst) (src,port) (src,proto) (port,dst) (proto,dst).
  w2v::Vocab<std::uint64_t> vocab;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
  std::unordered_map<FlowKey, std::int64_t, FlowKeyHash> open_flows;
  std::vector<std::pair<net::IPv4, std::uint32_t>> src_tokens;

  for (const net::Packet& p : trace) {
    if (!wanted.contains(p.src)) continue;
    const FlowKey key{p.src.value(), p.dst_host, p.dst_port,
                      static_cast<std::uint8_t>(p.proto)};
    const std::int64_t window = (p.ts - t0) / options.flow_window_seconds;
    const auto it = open_flows.find(key);
    if (it != open_flows.end() && it->second == window) continue;
    open_flows[key] = window;
    ++result.flows;

    const std::uint32_t src = vocab.add(token(Kind::kSrc, p.src.value()));
    const std::uint32_t dst = vocab.add(token(Kind::kDst, p.dst_host));
    const std::uint32_t port = vocab.add(token(
        Kind::kPort, (static_cast<std::uint64_t>(p.proto) << 16) | p.dst_port));
    const std::uint32_t proto =
        vocab.add(token(Kind::kProto, static_cast<std::uint64_t>(p.proto)));
    pairs.emplace_back(src, dst);
    pairs.emplace_back(src, port);
    pairs.emplace_back(src, proto);
    pairs.emplace_back(port, dst);
    pairs.emplace_back(proto, dst);
  }
  result.pairs_per_epoch = pairs.size();

  if (options.max_pairs_per_epoch > 0 &&
      result.pairs_per_epoch > options.max_pairs_per_epoch) {
    return result;  // completed = false
  }

  w2v::SkipGramModel model(vocab.size(), options.w2v);
  const w2v::TrainStats stats = model.train_pairs(pairs);
  result.train_seconds = stats.seconds;

  // Extract src-token vectors, one row per sender actually seen.
  std::unordered_set<net::IPv4> emitted;
  for (const net::IPv4 ip : senders) {
    const std::uint32_t id = vocab.id_of(token(Kind::kSrc, ip.value()));
    if (id == w2v::Vocab<std::uint64_t>::kNone) continue;
    if (!emitted.insert(ip).second) continue;
    result.senders.push_back(ip);
    src_tokens.emplace_back(ip, id);
  }
  result.sender_vectors =
      w2v::Embedding(result.senders.size(), options.w2v.dim);
  for (std::size_t r = 0; r < src_tokens.size(); ++r) {
    const auto src_vec = model.embedding().vec(src_tokens[r].second);
    auto dst_vec = result.sender_vectors.vec(r);
    std::copy(src_vec.begin(), src_vec.end(), dst_vec.begin());
  }
  result.completed = true;
  return result;
}

}  // namespace darkvec::baselines
