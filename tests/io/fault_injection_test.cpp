// Corruption matrix: every reader must survive seeded bit-flips,
// truncation and short reads — loading with an accurate IoReport
// (lenient) or throwing a typed io:: error (strict), never crashing,
// hanging or allocating past the header caps.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "darkvec/core/model_io.hpp"
#include "darkvec/ml/ann.hpp"
#include "darkvec/net/time.hpp"
#include "darkvec/net/trace_binary.hpp"
#include "darkvec/net/trace_io.hpp"
#include "darkvec/sim/rng.hpp"
#include "darkvec/w2v/embedding.hpp"
#include "darkvec/w2v/quantized.hpp"
#include "fault_injection.hpp"

namespace darkvec {
namespace {

constexpr std::size_t kVariants = 100;

net::Trace random_trace(std::size_t n, std::uint64_t seed) {
  sim::Rng rng(seed);
  net::Trace t;
  for (std::size_t i = 0; i < n; ++i) {
    net::Packet p;
    p.ts = net::kTraceEpoch +
           static_cast<std::int64_t>(rng.uniform_int(100000));
    p.src = net::IPv4{static_cast<std::uint32_t>(rng.next_u64())};
    p.dst_host = static_cast<std::uint8_t>(rng.uniform_int(256));
    p.dst_port = static_cast<std::uint16_t>(rng.uniform_int(65536));
    p.proto = static_cast<net::Protocol>(rng.uniform_int(3));
    if (p.proto == net::Protocol::kIcmp) p.dst_port = 0;
    p.mirai_fingerprint = rng.uniform() < 0.5;
    t.push_back(p);
  }
  t.sort();
  return t;
}

/// The seeded damage for matrix variant `seed`: a third flips bits, a
/// third truncates, a third does both; every variant uses a different
/// short-read window.
test::FaultSpec variant_spec(std::size_t seed, std::size_t file_size) {
  test::FaultSpec spec;
  spec.seed = seed;
  if (seed % 3 != 1) spec.bit_flips = 1 + seed % 5;
  if (seed % 3 != 0 && file_size > 0) {
    spec.truncate_at = (seed * 131) % file_size;
  }
  return spec;
}

std::size_t variant_chunk(std::size_t seed) { return 1 + (seed * 7) % 64; }

/// Drives one reader over the full corruption matrix. `load` is called
/// with a corrupted stream, a policy and a report; it returns the number
/// of records it decoded.
template <typename LoadFn>
void run_matrix(const std::string& golden, LoadFn load) {
  for (std::size_t seed = 1; seed <= kVariants; ++seed) {
    const test::FaultSpec spec = variant_spec(seed, golden.size());
    const std::size_t chunk = variant_chunk(seed);
    SCOPED_TRACE("variant seed " + std::to_string(seed));
    {
      test::FaultyStream in(golden, spec, chunk);
      io::IoReport report;
      try {
        (void)load(in, io::IoPolicy::strict(), &report);
      } catch (const io::IoError&) {
        // Typed rejection is a valid strict outcome.
      } catch (const std::exception& e) {
        FAIL() << "untyped error escaped the strict reader: " << e.what();
      }
    }
    {
      test::FaultyStream in(golden, spec, chunk);
      io::IoReport report;
      try {
        const std::size_t records = load(in, io::IoPolicy::lenient_with(1 << 20), &report);
        EXPECT_EQ(records, report.records_read)
            << "lenient report disagrees with the decoded record count";
      } catch (const io::IoError&) {
        // Structural damage (header bytes) is fatal in both modes.
      } catch (const std::exception& e) {
        FAIL() << "untyped error escaped the lenient reader: " << e.what();
      }
    }
  }
}

TEST(CorruptionMatrix, TraceCsv) {
  std::ostringstream out;
  net::write_csv(out, random_trace(300, 21));
  run_matrix(out.str(), [](std::istream& in, const io::IoPolicy& policy,
                           io::IoReport* report) {
    return net::read_csv(in, policy, report).size();
  });
}

TEST(CorruptionMatrix, TraceBinary) {
  std::ostringstream out;
  net::write_binary(out, random_trace(300, 22));
  run_matrix(out.str(), [](std::istream& in, const io::IoPolicy& policy,
                           io::IoReport* report) {
    return net::read_binary(in, policy, report).size();
  });
}

TEST(CorruptionMatrix, Embedding) {
  w2v::Embedding e(64, 16);
  sim::Rng rng(23);
  for (std::size_t i = 0; i < e.size(); ++i) {
    for (int d = 0; d < e.dim(); ++d) {
      e.vec(i)[static_cast<std::size_t>(d)] =
          static_cast<float>(rng.uniform());
    }
  }
  std::ostringstream out;
  e.save(out);
  run_matrix(out.str(), [](std::istream& in, const io::IoPolicy& policy,
                           io::IoReport* report) {
    return w2v::Embedding::load(in, policy, report).size();
  });
}

TEST(CorruptionMatrix, QuantizedEmbedding) {
  w2v::Embedding e(48, 12);
  sim::Rng rng(31);
  for (std::size_t i = 0; i < e.size(); ++i) {
    for (int d = 0; d < e.dim(); ++d) {
      e.vec(i)[static_cast<std::size_t>(d)] =
          static_cast<float>(rng.uniform() * 2.0 - 1.0);
    }
  }
  std::ostringstream out;
  w2v::QuantizedEmbedding::quantize(e).save(out);
  run_matrix(out.str(), [](std::istream& in, const io::IoPolicy& policy,
                           io::IoReport* report) {
    return w2v::QuantizedEmbedding::load(in, policy, report).size();
  });
}

TEST(CorruptionMatrix, IvfIndex) {
  w2v::Embedding e(48, 12);
  sim::Rng rng(37);
  for (std::size_t i = 0; i < e.size(); ++i) {
    for (int d = 0; d < e.dim(); ++d) {
      e.vec(i)[static_cast<std::size_t>(d)] =
          static_cast<float>(rng.uniform() * 2.0 - 1.0);
    }
  }
  const w2v::Embedding unit = e.normalized();
  // Quantized variant: the DVAI stream then carries every section
  // (centroids, layout, fp32 rows, scales, int8 codes, footer).
  ml::IvfOptions options;
  options.nlist = 6;
  options.quantize = true;
  std::ostringstream out;
  ml::IvfIndex::build(unit, options).save(out);
  run_matrix(out.str(), [](std::istream& in, const io::IoPolicy& policy,
                           io::IoReport* report) {
    return ml::IvfIndex::load(in, policy, report).size();
  });
}

TEST(CorruptionMatrix, Model) {
  SenderModel model;
  sim::Rng rng(24);
  for (std::uint32_t i = 0; i < 48; ++i) {
    model.senders.push_back(
        net::IPv4{static_cast<std::uint32_t>(rng.next_u64())});
  }
  model.embedding = w2v::Embedding(48, 8);
  const std::string prefix = ::testing::TempDir() + "/fuzz_model";
  save_model(prefix, model);
  std::string emb_bytes, vocab_bytes;
  {
    std::ifstream emb(prefix + ".emb", std::ios::binary);
    std::ostringstream tmp;
    tmp << emb.rdbuf();
    emb_bytes = tmp.str();
  }
  {
    std::ifstream vocab(prefix + ".vocab");
    std::ostringstream tmp;
    tmp << vocab.rdbuf();
    vocab_bytes = tmp.str();
  }

  const std::string target = ::testing::TempDir() + "/fuzz_model_damaged";
  for (std::size_t seed = 1; seed <= kVariants; ++seed) {
    SCOPED_TRACE("variant seed " + std::to_string(seed));
    // Even seeds damage the embedding, odd seeds the vocab.
    const bool hit_emb = seed % 2 == 0;
    const std::string emb_out =
        hit_emb ? test::corrupt(emb_bytes, variant_spec(seed, emb_bytes.size()))
                : emb_bytes;
    const std::string vocab_out =
        hit_emb ? vocab_bytes
                : test::corrupt(vocab_bytes,
                                variant_spec(seed, vocab_bytes.size()));
    std::ofstream(target + ".emb", std::ios::binary) << emb_out;
    std::ofstream(target + ".vocab") << vocab_out;
    try {
      (void)load_model(target);
    } catch (const io::IoError&) {
    } catch (const std::exception& e) {
      FAIL() << "untyped error escaped strict load_model: " << e.what();
    }
    io::IoReport report;
    try {
      const SenderModel loaded =
          load_model(target, io::IoPolicy::lenient_with(1 << 20), &report);
      EXPECT_EQ(loaded.senders.size(), loaded.embedding.size())
          << "lenient load_model broke the row alignment";
      EXPECT_GE(report.records_read, loaded.senders.size());
    } catch (const io::IoError&) {
    } catch (const std::exception& e) {
      FAIL() << "untyped error escaped lenient load_model: " << e.what();
    }
  }
}

// A poisoned count field may never drive an allocation: the caps reject
// it before any buffer is sized, in both modes.
TEST(CorruptionMatrix, PoisonedTraceCountIsCapped) {
  std::string header;
  const std::uint32_t magic = 0x44564B54;
  const std::uint32_t version = 1;
  const std::uint64_t count = std::uint64_t{1} << 60;
  header.append(reinterpret_cast<const char*>(&magic), 4);
  header.append(reinterpret_cast<const char*>(&version), 4);
  header.append(reinterpret_cast<const char*>(&count), 8);
  {
    std::istringstream in(header);
    EXPECT_THROW((void)net::read_binary(in), io::ResourceLimit);
  }
  {
    std::istringstream in(header);
    io::IoReport report;
    EXPECT_THROW((void)net::read_binary(in, io::IoPolicy::lenient_with(100),
                                        &report),
                 io::ResourceLimit);
  }
}

TEST(CorruptionMatrix, PoisonedEmbeddingHeaderIsCapped) {
  const auto header = [](std::uint64_t n, std::int32_t d) {
    std::string bytes;
    const std::uint32_t magic = 0x44564543;  // v1
    bytes.append(reinterpret_cast<const char*>(&magic), 4);
    bytes.append(reinterpret_cast<const char*>(&n), 8);
    bytes.append(reinterpret_cast<const char*>(&d), 4);
    return bytes;
  };
  {
    std::istringstream in(header(std::uint64_t{1} << 60, 50));
    EXPECT_THROW((void)w2v::Embedding::load(in), io::ResourceLimit);
  }
  {
    std::istringstream in(header(10, 1 << 24));
    EXPECT_THROW((void)w2v::Embedding::load(in), io::ResourceLimit);
  }
  // A count under the cap but past the stream's actual content stops at
  // the truncation without allocating the declared size.
  {
    std::istringstream in(header(std::uint64_t{1} << 30, 50));
    EXPECT_THROW((void)w2v::Embedding::load(in), io::TruncatedInput);
  }
}

TEST(CorruptionMatrix, LenientBudgetIsEnforced) {
  std::string garbage = "ts,src,dst_host,port,proto,mirai\n";
  for (int i = 0; i < 50; ++i) garbage += "not,a,valid,row,at,all\n";
  std::istringstream in(garbage);
  io::IoReport report;
  EXPECT_THROW(
      (void)net::read_csv(in, io::IoPolicy::lenient_with(10), &report),
      io::ResourceLimit);
  EXPECT_EQ(report.records_skipped, 11u);  // the budget-breaking record
}

}  // namespace
}  // namespace darkvec
