// Reader edge cases: empty/header-only inputs, trailing garbage,
// duplicate vocab rows, zero-dimension headers, v1 back-compat and the
// crash-safety of the atomic writers.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "darkvec/core/atomic_io.hpp"
#include "darkvec/core/model_io.hpp"
#include "darkvec/net/trace_binary.hpp"
#include "darkvec/net/trace_io.hpp"
#include "darkvec/w2v/embedding.hpp"

namespace darkvec {
namespace {

void append(std::string& bytes, const void* data, std::size_t len) {
  bytes.append(static_cast<const char*>(data), len);
}

// ---------------------------------------------------------------- CSV --

TEST(ReaderEdgeCases, CsvEmptyFile) {
  std::istringstream in("");
  io::IoReport report;
  EXPECT_TRUE(net::read_csv(in, io::IoPolicy::strict(), &report).empty());
  EXPECT_TRUE(report.clean());
}

TEST(ReaderEdgeCases, CsvHeaderOnlyFile) {
  std::istringstream in("ts,src,dst_host,port,proto,mirai\n");
  io::IoReport report;
  EXPECT_TRUE(net::read_csv(in, io::IoPolicy::strict(), &report).empty());
  EXPECT_EQ(report.records_read, 0u);
  EXPECT_TRUE(report.clean());
}

TEST(ReaderEdgeCases, CsvLenientSkipsAndReports) {
  std::istringstream in(
      "ts,src,dst_host,port,proto,mirai\n"
      "1000,1.2.3.4,0,80,tcp,0\n"
      "complete garbage\n"
      "2000,5.6.7.8,1,443,udp,1\n");
  io::IoReport report;
  const auto trace =
      net::read_csv(in, io::IoPolicy::lenient_with(100), &report);
  EXPECT_EQ(trace.size(), 2u);
  EXPECT_EQ(report.records_read, 2u);
  EXPECT_EQ(report.records_skipped, 1u);
  ASSERT_EQ(report.diagnostics.size(), 1u);
  EXPECT_EQ(report.diagnostics[0].record, 3u);
}

// ------------------------------------------------------- trace binary --

std::string v1_trace_bytes() {
  // Hand-built v1 file (magic, version 1, count, one 16-byte record),
  // exactly what the pre-v2 writer produced.
  std::string bytes;
  const std::uint32_t magic = 0x44564B54;
  const std::uint32_t version = 1;
  const std::uint64_t count = 1;
  const std::int64_t ts = 1614902530;
  const std::uint32_t src = 0x0A000001;  // 10.0.0.1
  const std::uint16_t port = 23;
  const std::uint8_t host = 7;
  const std::uint8_t flags = 0x4 | 0x0;  // fingerprinted TCP
  append(bytes, &magic, 4);
  append(bytes, &version, 4);
  append(bytes, &count, 8);
  append(bytes, &ts, 8);
  append(bytes, &src, 4);
  append(bytes, &port, 2);
  append(bytes, &host, 1);
  append(bytes, &flags, 1);
  return bytes;
}

TEST(ReaderEdgeCases, TraceBinaryV1StillLoads) {
  std::istringstream in(v1_trace_bytes());
  io::IoReport report;
  const auto trace = net::read_binary(in, io::IoPolicy::strict(), &report);
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace[0].ts, 1614902530);
  EXPECT_EQ(trace[0].src, (net::IPv4{10, 0, 0, 1}));
  EXPECT_EQ(trace[0].dst_port, 23);
  EXPECT_EQ(trace[0].dst_host, 7);
  EXPECT_EQ(trace[0].proto, net::Protocol::kTcp);
  EXPECT_TRUE(trace[0].mirai_fingerprint);
  EXPECT_FALSE(report.checksum_verified);  // v1 has no footer
}

TEST(ReaderEdgeCases, TraceBinaryV2VerifiesChecksum) {
  std::stringstream buffer;
  net::Trace t;
  net::Packet p;
  p.ts = 1000;
  p.src = net::IPv4{1, 2, 3, 4};
  t.push_back(p);
  net::write_binary(buffer, t);
  io::IoReport report;
  EXPECT_EQ(net::read_binary(buffer, io::IoPolicy::strict(), &report).size(),
            1u);
  EXPECT_TRUE(report.checksum_verified);
}

TEST(ReaderEdgeCases, TraceBinaryTrailingGarbage) {
  std::string bytes = v1_trace_bytes();
  bytes += "garbage past the declared record count";
  {
    std::istringstream in(bytes);
    EXPECT_THROW((void)net::read_binary(in), io::FormatError);
  }
  {
    std::istringstream in(bytes);
    io::IoReport report;
    const auto trace =
        net::read_binary(in, io::IoPolicy::lenient_with(10), &report);
    EXPECT_EQ(trace.size(), 1u);
    EXPECT_FALSE(report.diagnostics.empty());
  }
}

// ----------------------------------------------------------- embedding --

std::string v1_embedding_bytes(std::uint64_t n, std::int32_t d) {
  std::string bytes;
  const std::uint32_t magic = 0x44564543;
  append(bytes, &magic, 4);
  append(bytes, &n, 8);
  append(bytes, &d, 4);
  for (std::uint64_t i = 0; i < n * static_cast<std::uint64_t>(d > 0 ? d : 0);
       ++i) {
    const float v = static_cast<float>(i) * 0.5f;
    append(bytes, &v, 4);
  }
  return bytes;
}

TEST(ReaderEdgeCases, EmbeddingV1StillLoadsByteIdentically) {
  std::istringstream in(v1_embedding_bytes(3, 2));
  const auto e = w2v::Embedding::load(in);
  ASSERT_EQ(e.size(), 3u);
  ASSERT_EQ(e.dim(), 2);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(e.data()[i], static_cast<float>(i) * 0.5f);
  }
}

TEST(ReaderEdgeCases, EmbeddingZeroDimensionHeader) {
  {
    std::istringstream in(v1_embedding_bytes(3, 0));
    EXPECT_THROW((void)w2v::Embedding::load(in), io::FormatError);
  }
  {  // lenient cannot recover a meaningless dimension either
    std::istringstream in(v1_embedding_bytes(3, 0));
    io::IoReport report;
    EXPECT_THROW((void)w2v::Embedding::load(
                     in, io::IoPolicy::lenient_with(10), &report),
                 io::FormatError);
  }
  {
    std::istringstream in(v1_embedding_bytes(3, -5));
    EXPECT_THROW((void)w2v::Embedding::load(in), io::FormatError);
  }
}

TEST(ReaderEdgeCases, EmbeddingLenientTruncationKeepsWholeRows) {
  w2v::Embedding e(4, 3);
  for (std::size_t i = 0; i < 12; ++i) e.vec(i / 3)[i % 3] = float(i);
  std::stringstream buffer;
  e.save(buffer);
  const std::string full = buffer.str();
  // Cut inside row 2's floats (header is 20 bytes, rows are 12 bytes).
  std::istringstream cut(full.substr(0, 20 + 12 + 12 + 5));
  io::IoReport report;
  const auto partial =
      w2v::Embedding::load(cut, io::IoPolicy::lenient_with(10), &report);
  EXPECT_EQ(partial.size(), 2u);
  EXPECT_EQ(report.records_read, 2u);
  EXPECT_EQ(report.records_skipped, 1u);
}

// --------------------------------------------------------------- model --

SenderModel three_row_model() {
  SenderModel model;
  model.senders = {net::IPv4{10, 0, 0, 1}, net::IPv4{10, 0, 0, 2},
                   net::IPv4{10, 0, 0, 3}};
  model.embedding = w2v::Embedding(3, 2);
  for (std::size_t i = 0; i < 3; ++i) {
    model.embedding.vec(i)[0] = static_cast<float>(i + 1);
  }
  return model;
}

TEST(ReaderEdgeCases, ModelDuplicateVocabAddresses) {
  const std::string prefix = ::testing::TempDir() + "/edge_model_dup";
  save_model(prefix, three_row_model());
  std::ofstream vocab(prefix + ".vocab");
  vocab << "10.0.0.1\n10.0.0.1\n10.0.0.3\n";  // row 1 duplicates row 0
  vocab.close();
  EXPECT_THROW((void)load_model(prefix), io::ParseError);
  io::IoReport report;
  const SenderModel lenient =
      load_model(prefix, io::IoPolicy::lenient_with(10), &report);
  ASSERT_EQ(lenient.senders.size(), 2u);
  EXPECT_EQ(lenient.embedding.size(), 2u);
  EXPECT_EQ(lenient.senders[0], (net::IPv4{10, 0, 0, 1}));
  EXPECT_EQ(lenient.senders[1], (net::IPv4{10, 0, 0, 3}));
  // The duplicate's embedding row was dropped with it: row 1 now holds
  // 10.0.0.3's vector.
  EXPECT_EQ(lenient.embedding.vec(1)[0], 3.0f);
  EXPECT_EQ(report.records_skipped, 1u);
}

TEST(ReaderEdgeCases, ModelV1VocabWithoutFooterStillLoads) {
  const std::string prefix = ::testing::TempDir() + "/edge_model_v1";
  const SenderModel model = three_row_model();
  save_model(prefix, model);
  // Rewrite the vocab as the v1 writer did: no #crc32 footer.
  std::ofstream vocab(prefix + ".vocab");
  vocab << "10.0.0.1\n10.0.0.2\n10.0.0.3\n";
  vocab.close();
  const SenderModel loaded = load_model(prefix);
  EXPECT_EQ(loaded.senders, model.senders);
  EXPECT_EQ(loaded.embedding.data(), model.embedding.data());
}

TEST(ReaderEdgeCases, ModelVocabChecksumDetectsEdit) {
  const std::string prefix = ::testing::TempDir() + "/edge_model_crc";
  save_model(prefix, three_row_model());
  // Flip one address without updating the footer.
  std::ifstream in(prefix + ".vocab");
  std::stringstream content;
  content << in.rdbuf();
  in.close();
  std::string text = content.str();
  text.replace(text.find("10.0.0.2"), 8, "10.9.9.2");
  std::ofstream(prefix + ".vocab") << text;
  EXPECT_THROW((void)load_model(prefix), io::FormatError);
  io::IoReport report;
  const SenderModel lenient =
      load_model(prefix, io::IoPolicy::lenient_with(10), &report);
  EXPECT_EQ(lenient.senders.size(), 3u);
  EXPECT_FALSE(report.checksum_verified);
  EXPECT_FALSE(report.diagnostics.empty());
}

// ------------------------------------------------- atomic persistence --

TEST(ReaderEdgeCases, AtomicWriteLeavesTargetIntactOnFailure) {
  const std::string path = ::testing::TempDir() + "/atomic_target.txt";
  io::atomic_write_file(path, std::ios::out,
                        [](std::ostream& out) { out << "version 1"; });
  EXPECT_THROW(io::atomic_write_file(path, std::ios::out,
                                     [](std::ostream& out) {
                                       out << "half-written";
                                       throw std::runtime_error("crash");
                                     }),
               std::runtime_error);
  std::ifstream in(path);
  std::string content;
  std::getline(in, content);
  EXPECT_EQ(content, "version 1");
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST(ReaderEdgeCases, InterruptedSaveModelKeepsPreviousModel) {
  const std::string dir = ::testing::TempDir() + "/edge_model_atomic";
  std::filesystem::create_directories(dir);
  const std::string prefix = dir + "/model";
  const SenderModel original = three_row_model();
  save_model(prefix, original);
  // Force a failure after the embedding temp is written but before any
  // rename: the vocab temp path is blocked by a directory.
  std::filesystem::create_directories(prefix + ".vocab.tmp");
  SenderModel changed = original;
  changed.embedding.vec(0)[0] = 99.0f;
  EXPECT_THROW(save_model(prefix, changed), io::IoError);
  std::filesystem::remove_all(prefix + ".vocab.tmp");
  EXPECT_FALSE(std::filesystem::exists(prefix + ".emb.tmp"));
  const SenderModel loaded = load_model(prefix);
  EXPECT_EQ(loaded.embedding.data(), original.embedding.data());
  EXPECT_EQ(loaded.senders, original.senders);
}

}  // namespace
}  // namespace darkvec
