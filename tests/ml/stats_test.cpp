#include "darkvec/ml/stats.hpp"

#include <gtest/gtest.h>

#include <string>

namespace darkvec::ml {
namespace {

TEST(Ecdf, StepFunctionValues) {
  const Ecdf ecdf({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(ecdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(ecdf(1.0), 0.25);
  EXPECT_DOUBLE_EQ(ecdf(2.5), 0.5);
  EXPECT_DOUBLE_EQ(ecdf(4.0), 1.0);
  EXPECT_DOUBLE_EQ(ecdf(100.0), 1.0);
}

TEST(Ecdf, HandlesDuplicates) {
  const Ecdf ecdf({1.0, 1.0, 1.0, 5.0});
  EXPECT_DOUBLE_EQ(ecdf(1.0), 0.75);
  EXPECT_DOUBLE_EQ(ecdf(4.9), 0.75);
  EXPECT_DOUBLE_EQ(ecdf(5.0), 1.0);
}

TEST(Ecdf, UnsortedInputIsSorted) {
  const Ecdf ecdf({3.0, 1.0, 2.0});
  EXPECT_DOUBLE_EQ(ecdf(1.5), 1.0 / 3.0);
  EXPECT_EQ(ecdf.sorted().front(), 1.0);
  EXPECT_EQ(ecdf.sorted().back(), 3.0);
}

TEST(Ecdf, Quantiles) {
  const Ecdf ecdf({10.0, 20.0, 30.0, 40.0, 50.0});
  EXPECT_DOUBLE_EQ(ecdf.quantile(0.2), 10.0);
  EXPECT_DOUBLE_EQ(ecdf.quantile(0.5), 20.0);
  EXPECT_DOUBLE_EQ(ecdf.quantile(1.0), 50.0);
}

TEST(Ecdf, EmptySample) {
  const Ecdf ecdf({});
  EXPECT_DOUBLE_EQ(ecdf(1.0), 0.0);
  EXPECT_DOUBLE_EQ(ecdf.quantile(0.5), 0.0);
  EXPECT_EQ(ecdf.size(), 0u);
}

TEST(Jaccard, IdenticalSets) {
  const std::vector<int> a = {1, 2, 3};
  EXPECT_DOUBLE_EQ(jaccard<int>(a, a), 1.0);
}

TEST(Jaccard, DisjointSets) {
  const std::vector<int> a = {1, 2};
  const std::vector<int> b = {3, 4};
  EXPECT_DOUBLE_EQ(jaccard<int>(a, b), 0.0);
}

TEST(Jaccard, PartialOverlap) {
  const std::vector<int> a = {1, 2, 3};
  const std::vector<int> b = {2, 3, 4, 5};
  // intersection 2, union 5.
  EXPECT_DOUBLE_EQ(jaccard<int>(a, b), 0.4);
}

TEST(Jaccard, Symmetric) {
  const std::vector<int> a = {1, 2, 3, 7, 9};
  const std::vector<int> b = {2, 9, 11};
  EXPECT_DOUBLE_EQ(jaccard<int>(a, b), jaccard<int>(b, a));
}

TEST(Jaccard, DuplicatesInInputIgnored) {
  const std::vector<int> a = {1, 1, 1, 2};
  const std::vector<int> b = {1, 2, 2};
  EXPECT_DOUBLE_EQ(jaccard<int>(a, b), 1.0);
}

TEST(Jaccard, EmptySets) {
  const std::vector<int> empty;
  const std::vector<int> a = {1};
  EXPECT_DOUBLE_EQ(jaccard<int>(empty, empty), 0.0);
  EXPECT_DOUBLE_EQ(jaccard<int>(a, empty), 0.0);
}

TEST(Jaccard, WorksWithStrings) {
  const std::vector<std::string> a = {"23/tcp", "80/tcp"};
  const std::vector<std::string> b = {"80/tcp", "443/tcp"};
  EXPECT_NEAR(jaccard<std::string>(a, b), 1.0 / 3.0, 1e-12);
}

}  // namespace
}  // namespace darkvec::ml
