#include "darkvec/ml/knn.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace darkvec::ml {
namespace {

/// Four 2-D points: 0 and 1 nearly parallel, 2 orthogonal to them,
/// 3 opposite to 0.
w2v::Embedding directions() {
  w2v::Embedding e(4, 2);
  e.vec(0)[0] = 1.0f;   e.vec(0)[1] = 0.0f;
  e.vec(1)[0] = 0.95f;  e.vec(1)[1] = 0.1f;
  e.vec(2)[0] = 0.0f;   e.vec(2)[1] = 1.0f;
  e.vec(3)[0] = -1.0f;  e.vec(3)[1] = 0.0f;
  return e;
}

TEST(CosineKnn, NearestNeighbourIsMostParallel) {
  const CosineKnn index{directions()};
  const auto neighbors = index.query(0, 3);
  ASSERT_EQ(neighbors.size(), 3u);
  EXPECT_EQ(neighbors[0].index, 1u);
  EXPECT_EQ(neighbors[1].index, 2u);
  EXPECT_EQ(neighbors[2].index, 3u);
  EXPECT_GT(neighbors[0].similarity, 0.99f);
  EXPECT_NEAR(neighbors[1].similarity, 0.0f, 1e-5);
  EXPECT_NEAR(neighbors[2].similarity, -1.0f, 1e-5);
}

TEST(CosineKnn, ExcludesSelf) {
  const CosineKnn index{directions()};
  for (std::size_t i = 0; i < 4; ++i) {
    for (const Neighbor& nb : index.query(i, 3)) {
      EXPECT_NE(nb.index, i);
    }
  }
}

TEST(CosineKnn, KLargerThanPopulation) {
  const CosineKnn index{directions()};
  EXPECT_EQ(index.query(0, 100).size(), 3u);
}

TEST(CosineKnn, KZeroOrNegative) {
  const CosineKnn index{directions()};
  EXPECT_TRUE(index.query(0, 0).empty());
  EXPECT_TRUE(index.query(0, -1).empty());
}

TEST(CosineKnn, QueryVectorWithoutExclusion) {
  const CosineKnn index{directions()};
  const std::vector<float> q = {1.0f, 0.0f};
  const auto neighbors = index.query_vector(q, 2);
  ASSERT_EQ(neighbors.size(), 2u);
  EXPECT_EQ(neighbors[0].index, 0u);  // exact match included
  EXPECT_NEAR(neighbors[0].similarity, 1.0f, 1e-6);
}

TEST(CosineKnn, QueryVectorIsScaleInvariant) {
  const CosineKnn index{directions()};
  const std::vector<float> q1 = {2.0f, 1.0f};
  const std::vector<float> q2 = {20.0f, 10.0f};
  const auto n1 = index.query_vector(q1, 4);
  const auto n2 = index.query_vector(q2, 4);
  ASSERT_EQ(n1.size(), n2.size());
  for (std::size_t i = 0; i < n1.size(); ++i) {
    EXPECT_EQ(n1[i].index, n2[i].index);
    EXPECT_NEAR(n1[i].similarity, n2[i].similarity, 1e-5);
  }
}

TEST(CosineKnn, ResultsSortedByDecreasingSimilarity) {
  w2v::Embedding e(20, 3);
  std::uint32_t state = 99;
  for (std::size_t i = 0; i < 20; ++i) {
    for (int d = 0; d < 3; ++d) {
      state = state * 1664525u + 1013904223u;
      e.vec(i)[static_cast<std::size_t>(d)] =
          static_cast<float>(state % 1000) / 500.0f - 1.0f;
    }
  }
  const CosineKnn index{e};
  const auto neighbors = index.query(0, 10);
  for (std::size_t i = 1; i < neighbors.size(); ++i) {
    EXPECT_GE(neighbors[i - 1].similarity, neighbors[i].similarity);
  }
}

TEST(CosineKnn, TieBreakIsDeterministic) {
  // Three identical vectors: ties broken by index.
  w2v::Embedding e(3, 2);
  for (std::size_t i = 0; i < 3; ++i) e.vec(i)[0] = 1.0f;
  const CosineKnn index{e};
  const auto n1 = index.query(0, 2);
  const auto n2 = index.query(0, 2);
  ASSERT_EQ(n1.size(), 2u);
  EXPECT_EQ(n1[0].index, n2[0].index);
  EXPECT_EQ(n1[1].index, n2[1].index);
}

TEST(CosineKnn, ZeroQueryVectorReturnsZeroSimilarity) {
  const CosineKnn index{directions()};
  const std::vector<float> zero = {0.0f, 0.0f};
  const auto neighbors = index.query_vector(zero, 4);
  for (const Neighbor& nb : neighbors) EXPECT_EQ(nb.similarity, 0.0f);
}

TEST(CosineKnn, SizeAndDim) {
  const CosineKnn index{directions()};
  EXPECT_EQ(index.size(), 4u);
  EXPECT_EQ(index.dim(), 2);
}

}  // namespace
}  // namespace darkvec::ml
