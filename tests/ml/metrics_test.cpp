#include "darkvec/ml/metrics.hpp"
#include "darkvec/core/contracts.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace darkvec::ml {
namespace {

TEST(Metrics, PerfectPredictions) {
  const std::vector<int> y = {0, 1, 2, 0, 1, 2};
  const ClassificationReport report(y, y, 3);
  EXPECT_DOUBLE_EQ(report.accuracy(), 1.0);
  for (int c = 0; c < 3; ++c) {
    EXPECT_DOUBLE_EQ(report.scores(c).precision, 1.0);
    EXPECT_DOUBLE_EQ(report.scores(c).recall, 1.0);
    EXPECT_DOUBLE_EQ(report.scores(c).f1, 1.0);
    EXPECT_EQ(report.scores(c).support, 2u);
  }
}

TEST(Metrics, HandComputedConfusion) {
  // true:  0 0 0 1 1 2
  // pred:  0 0 1 1 0 2
  const std::vector<int> y_true = {0, 0, 0, 1, 1, 2};
  const std::vector<int> y_pred = {0, 0, 1, 1, 0, 2};
  const ClassificationReport report(y_true, y_pred, 3);
  EXPECT_NEAR(report.accuracy(), 4.0 / 6.0, 1e-12);

  // Class 0: tp=2, predicted=3, support=3.
  EXPECT_NEAR(report.scores(0).precision, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(report.scores(0).recall, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(report.scores(0).f1, 2.0 / 3.0, 1e-12);
  // Class 1: tp=1, predicted=2, support=2.
  EXPECT_NEAR(report.scores(1).precision, 0.5, 1e-12);
  EXPECT_NEAR(report.scores(1).recall, 0.5, 1e-12);
  // Class 2 perfect.
  EXPECT_NEAR(report.scores(2).f1, 1.0, 1e-12);

  EXPECT_EQ(report.confusion(0, 0), 2u);
  EXPECT_EQ(report.confusion(0, 1), 1u);
  EXPECT_EQ(report.confusion(1, 0), 1u);
  EXPECT_EQ(report.confusion(1, 1), 1u);
  EXPECT_EQ(report.confusion(2, 2), 1u);
  EXPECT_EQ(report.confusion(2, 0), 0u);
}

TEST(Metrics, ClassNeverPredictedHasZeroPrecision) {
  const std::vector<int> y_true = {0, 1};
  const std::vector<int> y_pred = {0, 0};
  const ClassificationReport report(y_true, y_pred, 2);
  EXPECT_DOUBLE_EQ(report.scores(1).precision, 0.0);
  EXPECT_DOUBLE_EQ(report.scores(1).recall, 0.0);
  EXPECT_DOUBLE_EQ(report.scores(1).f1, 0.0);
}

TEST(Metrics, ClassWithNoSupport) {
  const std::vector<int> y_true = {0, 0};
  const std::vector<int> y_pred = {0, 1};
  const ClassificationReport report(y_true, y_pred, 2);
  EXPECT_EQ(report.scores(1).support, 0u);
  EXPECT_DOUBLE_EQ(report.scores(1).recall, 0.0);
  // Predicted once but never true: precision 0.
  EXPECT_DOUBLE_EQ(report.scores(1).precision, 0.0);
}

TEST(Metrics, AccuracyOverSubset) {
  // The paper's headline accuracy skips the Unknown class.
  const std::vector<int> y_true = {0, 0, 1, 1, 2, 2, 2, 2};
  const std::vector<int> y_pred = {0, 0, 1, 0, 2, 0, 0, 0};
  const ClassificationReport report(y_true, y_pred, 3);
  const std::vector<int> known = {0, 1};
  EXPECT_NEAR(report.accuracy_over(known), 3.0 / 4.0, 1e-12);
  const std::vector<int> all = {0, 1, 2};
  EXPECT_NEAR(report.accuracy_over(all), report.accuracy(), 1e-12);
}

TEST(Metrics, AccuracyOverEmptySubset) {
  const std::vector<int> y = {0};
  const ClassificationReport report(y, y, 1);
  EXPECT_DOUBLE_EQ(report.accuracy_over(std::vector<int>{}), 0.0);
}

TEST(Metrics, WeightedF1OverSubset) {
  const std::vector<int> y_true = {0, 0, 0, 1};
  const std::vector<int> y_pred = {0, 0, 1, 1};
  const ClassificationReport report(y_true, y_pred, 2);
  // class 0: p=1, r=2/3, f1=0.8, support 3; class 1: p=0.5, r=1, f1=2/3,
  // support 1. Weighted: (0.8*3 + 2/3*1)/4.
  const std::vector<int> both = {0, 1};
  EXPECT_NEAR(report.weighted_f1_over(both), (0.8 * 3 + 2.0 / 3.0) / 4.0,
              1e-9);
}

TEST(Metrics, EmptyInput) {
  const ClassificationReport report(std::vector<int>{}, std::vector<int>{},
                                    3);
  EXPECT_DOUBLE_EQ(report.accuracy(), 0.0);
  EXPECT_EQ(report.scores(0).support, 0u);
}

TEST(Metrics, LengthMismatchThrows) {
  const std::vector<int> a = {0, 1};
  const std::vector<int> b = {0};
  EXPECT_THROW(ClassificationReport(a, b, 2), darkvec::ContractViolation);
}

TEST(Metrics, LabelOutOfRangeThrows) {
  const std::vector<int> y_true = {0, 5};
  const std::vector<int> y_pred = {0, 0};
  EXPECT_THROW(ClassificationReport(y_true, y_pred, 2), darkvec::ContractViolation);
  const std::vector<int> neg = {0, -1};
  EXPECT_THROW(ClassificationReport(neg, y_pred, 2), darkvec::ContractViolation);
}

TEST(Metrics, SupportWeightedRecallEqualsAccuracy) {
  // Sanity property stated in the paper's footnote 8.
  const std::vector<int> y_true = {0, 0, 0, 1, 1, 2, 2, 2, 2, 2};
  const std::vector<int> y_pred = {0, 1, 0, 1, 1, 2, 2, 0, 1, 2};
  const ClassificationReport report(y_true, y_pred, 3);
  double weighted_recall = 0;
  std::size_t total = 0;
  for (int c = 0; c < 3; ++c) {
    weighted_recall += report.scores(c).recall *
                       static_cast<double>(report.scores(c).support);
    total += report.scores(c).support;
  }
  EXPECT_NEAR(weighted_recall / static_cast<double>(total),
              report.accuracy(), 1e-12);
}

}  // namespace
}  // namespace darkvec::ml
