// Parity and determinism of the blocked batch top-k engine against the
// serial CosineKnn scan. The contract is bit-identity: same neighbour
// indices AND same similarity floats, for any thread count and any tile
// shape.
#include "darkvec/ml/batch_topk.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

#include "darkvec/core/contracts.hpp"
#include "darkvec/core/parallel.hpp"
#include "darkvec/ml/evaluation.hpp"
#include "darkvec/ml/knn.hpp"

namespace darkvec::ml {
namespace {

w2v::Embedding random_embedding(std::size_t n, int dim,
                                std::uint32_t seed) {
  w2v::Embedding e(n, dim);
  std::uint32_t state = seed;
  for (std::size_t i = 0; i < n; ++i) {
    for (int d = 0; d < dim; ++d) {
      state = state * 1664525u + 1013904223u;
      e.vec(i)[static_cast<std::size_t>(d)] =
          static_cast<float>(state % 2000) / 1000.0f - 1.0f;
    }
  }
  return e;
}

void expect_identical(const std::vector<Neighbor>& batch,
                      const std::vector<Neighbor>& serial) {
  ASSERT_EQ(batch.size(), serial.size());
  for (std::size_t r = 0; r < batch.size(); ++r) {
    EXPECT_EQ(batch[r].index, serial[r].index);
    // Bit-exact, not approximate: the kernels share accumulation order.
    EXPECT_EQ(batch[r].similarity, serial[r].similarity);
  }
}

class BatchTopkThreads : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    core::ThreadPool::set_global_threads(GetParam());
  }
  void TearDown() override {
    core::ThreadPool::set_global_threads(core::default_thread_count());
  }
};

TEST_P(BatchTopkThreads, MatchesSerialQueryOnRandomEmbeddings) {
  const auto e = random_embedding(337, 17, 42);
  const CosineKnn index(e);
  const auto batch = index.query_batch(0, index.size(), 5);
  ASSERT_EQ(batch.size(), index.size());
  for (std::size_t i = 0; i < index.size(); ++i) {
    expect_identical(batch[i], index.query(i, 5));
  }
}

TEST_P(BatchTopkThreads, MatchesSerialOnArbitraryPointSets) {
  const auto e = random_embedding(211, 29, 7);
  const CosineKnn index(e);
  std::vector<std::uint32_t> points = {0, 210, 13, 13, 101, 57};
  const auto batch = index.query_batch(points, 4);
  ASSERT_EQ(batch.size(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    expect_identical(batch[i], index.query(points[i], 4));
  }
}

TEST_P(BatchTopkThreads, LooPredictionsMatchAcrossThreadCounts) {
  const auto e = random_embedding(150, 11, 3);
  const CosineKnn index(e);
  std::vector<int> labels(150);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    labels[i] = static_cast<int>(i % 4);
  }
  std::vector<std::uint32_t> points(150);
  std::iota(points.begin(), points.end(), 0u);
  const auto predictions = loo_knn_predict(index, labels, points, 5);

  core::ThreadPool::set_global_threads(1);
  const auto serial = loo_knn_predict(index, labels, points, 5);
  EXPECT_EQ(predictions, serial);
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, BatchTopkThreads,
                         ::testing::Values(1, 2, 8));

TEST(BatchTopk, SmallTilesStillMatchSerial) {
  // Degenerate tile shapes exercise the strip remainder paths.
  const auto e = random_embedding(97, 13, 9);
  const w2v::Embedding unit = e.normalized();
  const CosineKnn index(e);
  std::vector<std::uint32_t> points(97);
  std::iota(points.begin(), points.end(), 0u);
  for (const BatchTopkOptions options :
       {BatchTopkOptions{1, 8}, BatchTopkOptions{3, 9},
        BatchTopkOptions{97, 200}}) {
    const auto batch = batch_topk(unit, points, 6, options);
    for (std::size_t i = 0; i < points.size(); ++i) {
      expect_identical(batch[i], index.query(i, 6));
    }
  }
}

TEST(BatchTopk, KLargerThanPopulation) {
  const auto e = random_embedding(10, 4, 1);
  const CosineKnn index(e);
  const auto batch = index.query_batch(0, 10, 50);
  for (std::size_t i = 0; i < 10; ++i) {
    ASSERT_EQ(batch[i].size(), 9u);  // everyone but self
    expect_identical(batch[i], index.query(i, 50));
  }
}

TEST(BatchTopk, KZeroOrNegativeYieldsEmptyLists) {
  const auto e = random_embedding(10, 4, 1);
  const CosineKnn index(e);
  for (const auto& lists : {index.query_batch(0, 10, 0),
                            index.query_batch(0, 10, -3)}) {
    ASSERT_EQ(lists.size(), 10u);
    for (const auto& l : lists) EXPECT_TRUE(l.empty());
  }
}

TEST(BatchTopk, EmptyRangeAndEmptyIndex) {
  const auto e = random_embedding(10, 4, 1);
  const CosineKnn index(e);
  EXPECT_TRUE(index.query_batch(5, 5, 3).empty());

  const w2v::Embedding none;
  EXPECT_TRUE(batch_topk(none, {}, 3).empty());
}

TEST(BatchTopk, QueryBlockZeroIsRejected) {
  // query_block == 0 used to be silently clamped; it is now a contract
  // violation on both the fp32 and the quantized overload.
  const auto e = random_embedding(12, 5, 4);
  const w2v::Embedding unit = e.normalized();
  const auto quant = w2v::QuantizedEmbedding::quantize(unit);
  const std::vector<std::uint32_t> points = {0, 1, 2};
  EXPECT_THROW((void)batch_topk(unit, points, 3, BatchTopkOptions{0, 0}),
               darkvec::ContractViolation);
  EXPECT_THROW((void)batch_topk(quant, points, 3, BatchTopkOptions{0, 0}),
               darkvec::ContractViolation);
}

TEST(BatchTopk, DuplicateUnsortedAndBoundaryIdsExact) {
  // Duplicate, unsorted and boundary-adjacent (0 and n-1) query ids all
  // come back in input order, each bit-identical to the serial query.
  const auto e = random_embedding(64, 9, 11);
  const CosineKnn index(e);
  const std::vector<std::uint32_t> points = {63, 0, 17, 17, 63, 1, 62};
  const auto batch = index.query_batch(points, 5);
  ASSERT_EQ(batch.size(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    expect_identical(batch[i], index.query(points[i], 5));
  }
}

TEST(BatchTopk, DuplicateUnsortedAndBoundaryIdsQuantized) {
  // The int8 path must be self-consistent on the same hostile id sets:
  // duplicates yield identical lists, and every list excludes its query.
  const auto e = random_embedding(64, 9, 13);
  const CosineKnn index(e);
  const std::vector<std::uint32_t> points = {63, 0, 17, 17, 63, 1, 62};
  const auto batch = index.query_batch_quantized(points, 5);
  ASSERT_EQ(batch.size(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    ASSERT_EQ(batch[i].size(), 5u);
    for (const Neighbor& nb : batch[i]) EXPECT_NE(nb.index, points[i]);
  }
  expect_identical(batch[2], batch[3]);  // 17 twice
  expect_identical(batch[0], batch[4]);  // 63 twice
  const auto single = index.query_batch_quantized(
      std::vector<std::uint32_t>{17}, 5);
  expect_identical(batch[2], single[0]);
}

TEST(BatchTopk, EdgeKValuesExactAndQuantized) {
  const auto e = random_embedding(10, 4, 17);
  const CosineKnn index(e);
  const std::vector<std::uint32_t> points = {9, 0, 5};
  // k >= n clamps to everyone-but-self on both paths.
  for (const auto& lists :
       {index.query_batch(points, 10), index.query_batch(points, 500),
        index.query_batch_quantized(points, 10),
        index.query_batch_quantized(points, 500)}) {
    ASSERT_EQ(lists.size(), points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
      EXPECT_EQ(lists[i].size(), 9u);
      for (const Neighbor& nb : lists[i]) EXPECT_NE(nb.index, points[i]);
    }
  }
  // k == 0 yields empty lists, one per query, on both paths.
  for (const auto& lists : {index.query_batch(points, 0),
                            index.query_batch_quantized(points, 0)}) {
    ASSERT_EQ(lists.size(), points.size());
    for (const auto& l : lists) EXPECT_TRUE(l.empty());
  }
}

TEST(BatchTopk, TopkScanMatchesSerialQuery) {
  // The exported single-query scan is the serial engine itself: same
  // bits as CosineKnn::query for every row, with and without exclusion.
  const auto e = random_embedding(73, 19, 29);
  const w2v::Embedding unit = e.normalized();
  const CosineKnn index(e);
  for (const std::size_t i : {std::size_t{0}, std::size_t{36},
                              std::size_t{72}}) {
    const auto q = unit.vec(i);
    const auto inv =
        static_cast<float>(1.0 / std::sqrt(w2v::dot(q, q)));
    expect_identical(index.query(i, 7),
                     topk_scan(unit, q, inv, 7,
                               static_cast<std::int64_t>(i)));
    expect_identical(index.query_vector(q, 7),
                     topk_scan(unit, q, inv, 7));
  }
}

TEST(BatchTopk, ZeroRowsGetZeroSimilarity) {
  // A zero row stays zero after normalization; its similarities are 0
  // in both paths.
  w2v::Embedding e(4, 3);
  e.vec(1)[0] = 1.0f;
  e.vec(2)[1] = 1.0f;
  e.vec(3)[2] = -1.0f;
  const CosineKnn index(e);
  const auto batch = index.query_batch(0, 4, 3);
  for (std::size_t i = 0; i < 4; ++i) {
    expect_identical(batch[i], index.query(i, 3));
  }
  for (const Neighbor& nb : batch[0]) EXPECT_EQ(nb.similarity, 0.0f);
}

}  // namespace
}  // namespace darkvec::ml
