#include "darkvec/ml/linalg.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "darkvec/sim/rng.hpp"

namespace darkvec::ml {
namespace {

SquareMatrix random_matrix(int n, std::uint64_t seed) {
  sim::Rng rng(seed);
  SquareMatrix m(n);
  for (double& x : m.data) x = rng.uniform(-1.0, 1.0);
  return m;
}

SquareMatrix identity(int n) {
  SquareMatrix m(n);
  for (int i = 0; i < n; ++i) m.at(i, i) = 1.0;
  return m;
}

double max_abs_diff(const SquareMatrix& a, const SquareMatrix& b) {
  double best = 0;
  for (std::size_t i = 0; i < a.data.size(); ++i) {
    best = std::max(best, std::abs(a.data[i] - b.data[i]));
  }
  return best;
}

/// U * diag(s) * V^T.
SquareMatrix reconstruct(const SvdResult& svd) {
  const int n = svd.u.n;
  SquareMatrix us(n);
  for (int col = 0; col < n; ++col) {
    for (int row = 0; row < n; ++row) {
      us.at(row, col) = svd.u.at(row, col) *
                        svd.singular_values[static_cast<std::size_t>(col)];
    }
  }
  return multiply(us, transpose(svd.v));
}

TEST(Linalg, MultiplyIdentity) {
  const SquareMatrix a = random_matrix(5, 1);
  EXPECT_LT(max_abs_diff(multiply(a, identity(5)), a), 1e-12);
  EXPECT_LT(max_abs_diff(multiply(identity(5), a), a), 1e-12);
}

TEST(Linalg, MultiplyHandComputed) {
  SquareMatrix a(2);
  a.at(0, 0) = 1;
  a.at(0, 1) = 2;
  a.at(1, 0) = 3;
  a.at(1, 1) = 4;
  SquareMatrix b(2);
  b.at(0, 0) = 5;
  b.at(0, 1) = 6;
  b.at(1, 0) = 7;
  b.at(1, 1) = 8;
  const SquareMatrix c = multiply(a, b);
  EXPECT_DOUBLE_EQ(c.at(0, 0), 19);
  EXPECT_DOUBLE_EQ(c.at(0, 1), 22);
  EXPECT_DOUBLE_EQ(c.at(1, 0), 43);
  EXPECT_DOUBLE_EQ(c.at(1, 1), 50);
}

TEST(Linalg, TransposeInvolution) {
  const SquareMatrix a = random_matrix(6, 2);
  EXPECT_LT(max_abs_diff(transpose(transpose(a)), a), 1e-15);
}

class SvdSizes : public ::testing::TestWithParam<int> {};

TEST_P(SvdSizes, ReconstructsInput) {
  const int n = GetParam();
  const SquareMatrix m = random_matrix(n, 7);
  const SvdResult svd = jacobi_svd(m);
  EXPECT_LT(max_abs_diff(reconstruct(svd), m), 1e-8);
}

TEST_P(SvdSizes, FactorsAreOrthogonal) {
  const int n = GetParam();
  const SquareMatrix m = random_matrix(n, 8);
  const SvdResult svd = jacobi_svd(m);
  EXPECT_LT(max_abs_diff(multiply(transpose(svd.u), svd.u), identity(n)),
            1e-8);
  EXPECT_LT(max_abs_diff(multiply(transpose(svd.v), svd.v), identity(n)),
            1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SvdSizes, ::testing::Values(1, 2, 3, 8, 20,
                                                            50));

TEST(Svd, SingularValuesSortedNonNegative) {
  const SvdResult svd = jacobi_svd(random_matrix(10, 9));
  for (std::size_t i = 0; i < svd.singular_values.size(); ++i) {
    EXPECT_GE(svd.singular_values[i], 0.0);
    if (i > 0) {
      EXPECT_LE(svd.singular_values[i], svd.singular_values[i - 1]);
    }
  }
}

TEST(Svd, DiagonalMatrixKnownValues) {
  SquareMatrix m(3);
  m.at(0, 0) = 2;
  m.at(1, 1) = -5;  // singular value is |−5| = 5
  m.at(2, 2) = 1;
  const SvdResult svd = jacobi_svd(m);
  EXPECT_NEAR(svd.singular_values[0], 5.0, 1e-10);
  EXPECT_NEAR(svd.singular_values[1], 2.0, 1e-10);
  EXPECT_NEAR(svd.singular_values[2], 1.0, 1e-10);
}

TEST(Svd, RankDeficientMatrix) {
  // Rank-1 outer product: one non-zero singular value.
  SquareMatrix m(4);
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) {
      m.at(r, c) = (r + 1.0) * (c + 1.0);
    }
  }
  const SvdResult svd = jacobi_svd(m);
  EXPECT_GT(svd.singular_values[0], 1.0);
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_NEAR(svd.singular_values[i], 0.0, 1e-8);
  }
  EXPECT_LT(max_abs_diff(reconstruct(svd), m), 1e-8);
}

}  // namespace
}  // namespace darkvec::ml
