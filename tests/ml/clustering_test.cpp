// Tests for the classic clustering algorithms the paper compared against
// graph-based clustering (Section 7.1): k-Means, DBSCAN, HAC.
#include <gtest/gtest.h>

#include "darkvec/ml/dbscan.hpp"
#include "darkvec/ml/hac.hpp"
#include "darkvec/ml/kmeans.hpp"
#include "darkvec/sim/rng.hpp"

namespace darkvec::ml {
namespace {

/// Three tight blobs in 2-D (euclidean and angular separation both hold).
w2v::Embedding three_blobs(std::size_t per_blob, std::uint64_t seed) {
  sim::Rng rng(seed);
  const float centers[3][2] = {{10, 0}, {0, 10}, {-10, -10}};
  w2v::Embedding e(3 * per_blob, 2);
  for (std::size_t i = 0; i < 3 * per_blob; ++i) {
    const std::size_t b = i / per_blob;
    e.vec(i)[0] = centers[b][0] + static_cast<float>(rng.normal() * 0.3);
    e.vec(i)[1] = centers[b][1] + static_cast<float>(rng.normal() * 0.3);
  }
  return e;
}

/// True when the assignment groups each blob consistently and separates
/// different blobs.
template <typename Assignment>
bool blobs_recovered(const Assignment& assignment, std::size_t per_blob) {
  for (std::size_t b = 0; b < 3; ++b) {
    const int label = assignment[b * per_blob];
    if (label < 0) return false;
    for (std::size_t i = 0; i < per_blob; ++i) {
      if (assignment[b * per_blob + i] != label) return false;
    }
    for (std::size_t other = 0; other < 3; ++other) {
      if (other != b && assignment[other * per_blob] == label) return false;
    }
  }
  return true;
}

// ---- k-Means ---------------------------------------------------------------

TEST(KMeans, RecoversBlobs) {
  const auto e = three_blobs(30, 1);
  const KMeansResult r = kmeans(e, 3);
  EXPECT_TRUE(blobs_recovered(r.assignment, 30));
  EXPECT_GT(r.iterations, 0);
}

TEST(KMeans, DeterministicForSeed) {
  const auto e = three_blobs(20, 2);
  KMeansOptions o;
  o.seed = 9;
  const KMeansResult r1 = kmeans(e, 3, o);
  const KMeansResult r2 = kmeans(e, 3, o);
  EXPECT_EQ(r1.assignment, r2.assignment);
  EXPECT_DOUBLE_EQ(r1.inertia, r2.inertia);
}

TEST(KMeans, InertiaDecreasesWithMoreClusters) {
  const auto e = three_blobs(20, 3);
  const double i2 = kmeans(e, 2).inertia;
  const double i3 = kmeans(e, 3).inertia;
  const double i6 = kmeans(e, 6).inertia;
  EXPECT_GT(i2, i3);
  EXPECT_GE(i3, i6);
}

TEST(KMeans, KClampedToPointCount) {
  w2v::Embedding e(2, 2);
  e.vec(0)[0] = 1;
  e.vec(1)[0] = -1;
  const KMeansResult r = kmeans(e, 10);
  EXPECT_EQ(r.centroids.size(), 2u);
  EXPECT_NE(r.assignment[0], r.assignment[1]);
}

TEST(KMeans, SingleCluster) {
  const auto e = three_blobs(10, 4);
  const KMeansResult r = kmeans(e, 1);
  for (const int a : r.assignment) EXPECT_EQ(a, 0);
}

TEST(KMeans, EmptyInput) {
  const KMeansResult r = kmeans(w2v::Embedding(0, 3), 3);
  EXPECT_TRUE(r.assignment.empty());
  EXPECT_EQ(r.centroids.size(), 0u);
}

TEST(KMeans, AssignmentsInRange) {
  const auto e = three_blobs(15, 5);
  const KMeansResult r = kmeans(e, 4);
  for (const int a : r.assignment) {
    EXPECT_GE(a, 0);
    EXPECT_LT(a, 4);
  }
}

// ---- DBSCAN ----------------------------------------------------------------

TEST(Dbscan, RecoversAngularBlobs) {
  const auto e = three_blobs(30, 6);
  DbscanOptions o;
  o.eps = 0.05;
  o.min_points = 4;
  const DbscanResult r = dbscan(e, o);
  EXPECT_EQ(r.clusters, 3);
  EXPECT_TRUE(blobs_recovered(r.assignment, 30));
}

TEST(Dbscan, SparsePointsAreNoise) {
  // Two dense bundles plus one orthogonal outlier.
  w2v::Embedding e(9, 3);
  for (std::size_t i = 0; i < 4; ++i) e.vec(i)[0] = 1.0f;
  for (std::size_t i = 4; i < 8; ++i) e.vec(i)[1] = 1.0f;
  e.vec(8)[2] = 1.0f;
  DbscanOptions o;
  o.eps = 0.01;
  o.min_points = 3;
  const DbscanResult r = dbscan(e, o);
  EXPECT_EQ(r.clusters, 2);
  EXPECT_EQ(r.assignment[8], DbscanResult::kNoise);
}

TEST(Dbscan, MinPointsTooHighYieldsAllNoise) {
  const auto e = three_blobs(5, 7);
  DbscanOptions o;
  o.eps = 0.05;
  o.min_points = 50;
  const DbscanResult r = dbscan(e, o);
  EXPECT_EQ(r.clusters, 0);
  for (const int a : r.assignment) EXPECT_EQ(a, DbscanResult::kNoise);
}

TEST(Dbscan, LargeEpsMergesEverything) {
  const auto e = three_blobs(10, 8);
  DbscanOptions o;
  o.eps = 2.0;  // cosine distance upper bound on these points
  o.min_points = 2;
  const DbscanResult r = dbscan(e, o);
  EXPECT_EQ(r.clusters, 1);
}

TEST(Dbscan, EmptyInput) {
  const DbscanResult r = dbscan(w2v::Embedding(0, 3));
  EXPECT_TRUE(r.assignment.empty());
  EXPECT_EQ(r.clusters, 0);
}

// ---- HAC -------------------------------------------------------------------

class HacLinkage : public ::testing::TestWithParam<Linkage> {};

TEST_P(HacLinkage, RecoversBlobsAtTargetThree) {
  const auto e = three_blobs(20, 9);
  const HacResult r = agglomerative(e, 3, GetParam());
  EXPECT_EQ(r.clusters, 3);
  EXPECT_TRUE(blobs_recovered(r.assignment, 20));
}

INSTANTIATE_TEST_SUITE_P(Linkages, HacLinkage,
                         ::testing::Values(Linkage::kSingle,
                                           Linkage::kComplete,
                                           Linkage::kAverage));

TEST(Hac, OneClusterMergesAll) {
  const auto e = three_blobs(10, 10);
  const HacResult r = agglomerative(e, 1);
  EXPECT_EQ(r.clusters, 1);
  for (const int a : r.assignment) EXPECT_EQ(a, 0);
}

TEST(Hac, NClustersEqualsPointsIsIdentity) {
  const auto e = three_blobs(5, 11);
  const HacResult r = agglomerative(e, static_cast<int>(e.size()));
  EXPECT_EQ(r.clusters, static_cast<int>(e.size()));
}

TEST(Hac, TargetClampedToPointCount) {
  w2v::Embedding e(3, 2);
  for (std::size_t i = 0; i < 3; ++i) e.vec(i)[0] = 1.0f + i;
  const HacResult r = agglomerative(e, 100);
  EXPECT_EQ(r.clusters, 3);
}

TEST(Hac, EmptyInput) {
  const HacResult r = agglomerative(w2v::Embedding(0, 2), 3);
  EXPECT_TRUE(r.assignment.empty());
  EXPECT_EQ(r.clusters, 0);
}

TEST(Hac, DenseClusterIds) {
  const auto e = three_blobs(8, 12);
  const HacResult r = agglomerative(e, 5);
  EXPECT_EQ(r.clusters, 5);
  for (const int a : r.assignment) {
    EXPECT_GE(a, 0);
    EXPECT_LT(a, 5);
  }
}

}  // namespace
}  // namespace darkvec::ml
