#include "darkvec/ml/silhouette.hpp"
#include "darkvec/core/contracts.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "darkvec/sim/rng.hpp"

namespace darkvec::ml {
namespace {

/// Brute-force reference silhouette under cosine distance.
std::vector<double> reference_silhouette(const w2v::Embedding& embedding,
                                         std::span<const int> assignment) {
  const w2v::Embedding unit = embedding.normalized();
  const std::size_t n = unit.size();
  std::vector<double> out(n, 0.0);
  int max_c = 0;
  for (const int c : assignment) max_c = std::max(max_c, c);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> total(static_cast<std::size_t>(max_c + 1), 0.0);
    std::vector<std::size_t> count(static_cast<std::size_t>(max_c + 1), 0);
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const double dist = 1.0 - w2v::dot(unit.vec(i), unit.vec(j));
      total[static_cast<std::size_t>(assignment[j])] += dist;
      ++count[static_cast<std::size_t>(assignment[j])];
    }
    const auto ci = static_cast<std::size_t>(assignment[i]);
    if (count[ci] == 0) {
      out[i] = 0;
      continue;
    }
    const double a = total[ci] / static_cast<double>(count[ci]);
    double b = std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < total.size(); ++c) {
      if (c == ci || count[c] == 0) continue;
      b = std::min(b, total[c] / static_cast<double>(count[c]));
    }
    const double denom = std::max(a, b);
    out[i] = denom > 0 ? (b - a) / denom : 0.0;
  }
  return out;
}

w2v::Embedding random_embedding(std::size_t n, int dim, std::uint64_t seed) {
  sim::Rng rng(seed);
  w2v::Embedding e(n, dim);
  for (std::size_t i = 0; i < n; ++i) {
    for (int d = 0; d < dim; ++d) {
      e.vec(i)[static_cast<std::size_t>(d)] =
          static_cast<float>(rng.uniform(-1.0, 1.0));
    }
  }
  return e;
}

TEST(Silhouette, WellSeparatedClustersScoreNearOne) {
  // Two tight clusters along orthogonal axes.
  w2v::Embedding e(8, 2);
  for (std::size_t i = 0; i < 4; ++i) {
    e.vec(i)[0] = 1.0f;
    e.vec(i)[1] = 0.02f * static_cast<float>(i);
  }
  for (std::size_t i = 4; i < 8; ++i) {
    e.vec(i)[0] = 0.02f * static_cast<float>(i - 4);
    e.vec(i)[1] = 1.0f;
  }
  const std::vector<int> assignment = {0, 0, 0, 0, 1, 1, 1, 1};
  const auto s = silhouette_samples(e, assignment);
  for (const double v : s) EXPECT_GT(v, 0.9);
}

TEST(Silhouette, WrongAssignmentScoresNegative) {
  w2v::Embedding e(4, 2);
  e.vec(0)[0] = 1.0f;
  e.vec(1)[0] = 1.0f;
  e.vec(2)[1] = 1.0f;
  e.vec(3)[1] = 1.0f;
  // Point 1 assigned to the wrong cluster.
  const std::vector<int> assignment = {0, 1, 1, 1};
  const auto s = silhouette_samples(e, assignment);
  EXPECT_LT(s[1], 0.0);
}

TEST(Silhouette, SingletonClusterIsZero) {
  w2v::Embedding e(3, 2);
  e.vec(0)[0] = 1.0f;
  e.vec(1)[1] = 1.0f;
  e.vec(2)[0] = 1.0f;
  const std::vector<int> assignment = {0, 1, 0};
  const auto s = silhouette_samples(e, assignment);
  EXPECT_EQ(s[1], 0.0);
}

TEST(Silhouette, MatchesBruteForceReference) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const w2v::Embedding e = random_embedding(60, 5, seed);
    sim::Rng rng(seed + 100);
    std::vector<int> assignment(60);
    for (int& a : assignment) {
      a = static_cast<int>(rng.uniform_int(4));
    }
    const auto fast = silhouette_samples(e, assignment);
    const auto slow = reference_silhouette(e, assignment);
    ASSERT_EQ(fast.size(), slow.size());
    for (std::size_t i = 0; i < fast.size(); ++i) {
      EXPECT_NEAR(fast[i], slow[i], 1e-6) << "seed " << seed << " i " << i;
    }
  }
}

TEST(Silhouette, SizeMismatchThrows) {
  const w2v::Embedding e(3, 2);
  const std::vector<int> assignment = {0, 1};
  EXPECT_THROW(silhouette_samples(e, assignment), darkvec::ContractViolation);
}

TEST(Silhouette, EmptyInput) {
  const w2v::Embedding e(0, 2);
  EXPECT_TRUE(silhouette_samples(e, {}).empty());
}

TEST(SilhouetteByCluster, AveragesPerCluster) {
  const std::vector<double> samples = {1.0, 0.5, -0.5, 0.0};
  const std::vector<int> assignment = {0, 0, 1, 1};
  const auto means = silhouette_by_cluster(samples, assignment);
  ASSERT_EQ(means.size(), 2u);
  EXPECT_DOUBLE_EQ(means[0], 0.75);
  EXPECT_DOUBLE_EQ(means[1], -0.25);
}

TEST(SilhouetteByCluster, MismatchThrows) {
  const std::vector<double> samples = {1.0};
  const std::vector<int> assignment = {0, 1};
  EXPECT_THROW(silhouette_by_cluster(samples, assignment),
               darkvec::ContractViolation);
}

}  // namespace
}  // namespace darkvec::ml
