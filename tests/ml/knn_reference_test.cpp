// Property test: CosineKnn against a naive full-sort reference over random
// embeddings — indices, ordering and similarity values must agree.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "darkvec/ml/knn.hpp"
#include "darkvec/sim/rng.hpp"

namespace darkvec::ml {
namespace {

w2v::Embedding random_embedding(std::size_t n, int dim, std::uint64_t seed) {
  sim::Rng rng(seed);
  w2v::Embedding e(n, dim);
  for (std::size_t i = 0; i < n; ++i) {
    for (int d = 0; d < dim; ++d) {
      e.vec(i)[static_cast<std::size_t>(d)] =
          static_cast<float>(rng.uniform(-1.0, 1.0));
    }
  }
  return e;
}

std::vector<Neighbor> reference_query(const w2v::Embedding& e,
                                      std::size_t query, int k) {
  std::vector<Neighbor> all;
  for (std::size_t j = 0; j < e.size(); ++j) {
    if (j == query) continue;
    all.push_back({static_cast<std::uint32_t>(j),
                   static_cast<float>(e.cosine(query, j))});
  }
  std::ranges::sort(all, [](const Neighbor& a, const Neighbor& b) {
    if (a.similarity != b.similarity) return a.similarity > b.similarity;
    return a.index < b.index;
  });
  all.resize(std::min<std::size_t>(all.size(), static_cast<std::size_t>(k)));
  return all;
}

struct Case {
  std::size_t n;
  int dim;
  int k;
};

class KnnReference : public ::testing::TestWithParam<Case> {};

TEST_P(KnnReference, MatchesNaiveFullSort) {
  const auto [n, dim, k] = GetParam();
  const w2v::Embedding e = random_embedding(n, dim, n * 31 + dim);
  const CosineKnn index{e};
  for (std::size_t q = 0; q < std::min<std::size_t>(n, 10); ++q) {
    const auto fast = index.query(q, k);
    const auto slow = reference_query(e, q, k);
    ASSERT_EQ(fast.size(), slow.size()) << "query " << q;
    for (std::size_t i = 0; i < fast.size(); ++i) {
      // Similarities computed by two float paths: compare values, and
      // indices whenever similarities are not near-tied.
      EXPECT_NEAR(fast[i].similarity, slow[i].similarity, 1e-5)
          << "query " << q << " rank " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, KnnReference,
                         ::testing::Values(Case{20, 3, 5}, Case{50, 8, 7},
                                           Case{100, 16, 3},
                                           Case{200, 50, 10},
                                           Case{30, 2, 30}));

}  // namespace
}  // namespace darkvec::ml
