#include "darkvec/ml/evaluation.hpp"

#include <gtest/gtest.h>

namespace darkvec::ml {
namespace {

TEST(MajorityVote, SimpleMajority) {
  const std::vector<Neighbor> neighbors = {{0, 0.9f}, {1, 0.8f}, {2, 0.7f}};
  const std::vector<int> labels = {5, 5, 3};
  EXPECT_EQ(majority_vote(neighbors, labels), 5);
}

TEST(MajorityVote, TieBrokenByTotalSimilarity) {
  const std::vector<Neighbor> neighbors = {
      {0, 0.9f}, {1, 0.1f}, {2, 0.5f}, {3, 0.6f}};
  const std::vector<int> labels = {1, 1, 2, 2};
  // label 1: 2 votes sim 1.0; label 2: 2 votes sim 1.1 -> label 2 wins.
  EXPECT_EQ(majority_vote(neighbors, labels), 2);
}

TEST(MajorityVote, ExactTieBrokenByLowerLabel) {
  const std::vector<Neighbor> neighbors = {{0, 0.5f}, {1, 0.5f}};
  const std::vector<int> labels = {7, 3};
  EXPECT_EQ(majority_vote(neighbors, labels), 3);
}

TEST(MajorityVote, EmptyNeighborhood) {
  EXPECT_EQ(majority_vote({}, std::vector<int>{}), -1);
}

TEST(MajorityVote, UnknownCanWin) {
  // The paper counts Unknown-dominated neighbourhoods as misclassified;
  // the vote itself must honestly return the Unknown label.
  const std::vector<Neighbor> neighbors = {{0, 0.9f}, {1, 0.8f}, {2, 0.9f}};
  const std::vector<int> labels = {9, 9, 1};
  EXPECT_EQ(majority_vote(neighbors, labels), 9);
}

/// Embedding with three obvious groups along coordinate axes.
w2v::Embedding grouped_embedding() {
  // Points 0-2 on +x, 3-5 on +y, 6-8 on +z, with small per-point noise.
  w2v::Embedding e(9, 3);
  for (std::size_t i = 0; i < 9; ++i) {
    const std::size_t axis = i / 3;
    e.vec(i)[axis] = 1.0f;
    e.vec(i)[(axis + 1) % 3] = 0.01f * static_cast<float>(i % 3);
  }
  return e;
}

TEST(LooKnn, RecoversGroupLabels) {
  const CosineKnn index{grouped_embedding()};
  const std::vector<int> labels = {0, 0, 0, 1, 1, 1, 2, 2, 2};
  std::vector<std::uint32_t> points(9);
  for (std::uint32_t i = 0; i < 9; ++i) points[i] = i;
  const auto pred = loo_knn_predict(index, labels, points, 2);
  ASSERT_EQ(pred.size(), 9u);
  for (std::size_t i = 0; i < 9; ++i) {
    EXPECT_EQ(pred[i], labels[i]) << "point " << i;
  }
}

TEST(LooKnn, EvaluatesOnlyRequestedPoints) {
  const CosineKnn index{grouped_embedding()};
  const std::vector<int> labels = {0, 0, 0, 1, 1, 1, 2, 2, 2};
  const std::vector<std::uint32_t> points = {0, 4};
  const auto pred = loo_knn_predict(index, labels, points, 2);
  ASSERT_EQ(pred.size(), 2u);
  EXPECT_EQ(pred[0], 0);
  EXPECT_EQ(pred[1], 1);
}

TEST(LooKnn, LargeKDriftsToGlobalMajority) {
  const CosineKnn index{grouped_embedding()};
  // One minority point among eight of another class.
  const std::vector<int> labels = {0, 1, 1, 1, 1, 1, 1, 1, 1};
  const std::vector<std::uint32_t> points = {0};
  const auto pred = loo_knn_predict(index, labels, points, 8);
  EXPECT_EQ(pred[0], 1);  // swamped, as in Figure 7's large-k regime
}

TEST(LooKnn, EmptyEvalSet) {
  const CosineKnn index{grouped_embedding()};
  const std::vector<int> labels(9, 0);
  EXPECT_TRUE(loo_knn_predict(index, labels, {}, 3).empty());
}

}  // namespace
}  // namespace darkvec::ml
