// IVF approximate index: determinism (thread counts, SIMD levels,
// repeated runs), recall against the exact engine, exact-bit similarity
// for returned pairs, the Louvain-seeded build, the DVAI round-trip and
// its strict/lenient degradation, and the opt-in routing through
// CosineKnn and its consumers.
#include "darkvec/ml/ann.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <numeric>
#include <sstream>
#include <vector>

#include "darkvec/core/contracts.hpp"
#include "darkvec/core/parallel.hpp"
#include "darkvec/core/simd/simd.hpp"
#include "darkvec/graph/knn_graph.hpp"
#include "darkvec/ml/evaluation.hpp"
#include "darkvec/ml/knn.hpp"
#include "darkvec/obs/metric_names.hpp"
#include "darkvec/obs/metrics.hpp"

namespace darkvec::ml {
namespace {

/// Points drawn around `centers` unit-norm prototypes with small uniform
/// noise: the cluster structure IVF exploits, with continuous values so
/// similarity ties are not a concern.
w2v::Embedding clustered_embedding(std::size_t n, int dim,
                                   std::size_t centers, std::uint32_t seed) {
  std::uint32_t state = seed;
  const auto next = [&state] {
    state = state * 1664525u + 1013904223u;
    return static_cast<float>(state % 2000) / 1000.0f - 1.0f;
  };
  std::vector<std::vector<float>> proto(centers, std::vector<float>(
                                                     static_cast<std::size_t>(
                                                         dim)));
  for (auto& c : proto) {
    double norm2 = 0;
    for (auto& v : c) {
      v = next();
      norm2 += double{v} * v;
    }
    const auto inv = static_cast<float>(1.0 / std::sqrt(norm2));
    for (auto& v : c) v *= inv;
  }
  w2v::Embedding e(n, dim);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& c = proto[i % centers];
    for (int d = 0; d < dim; ++d) {
      e.vec(i)[static_cast<std::size_t>(d)] =
          c[static_cast<std::size_t>(d)] + 0.05f * next();
    }
  }
  return e;
}

void expect_identical(const std::vector<Neighbor>& a,
                      const std::vector<Neighbor>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t r = 0; r < a.size(); ++r) {
    EXPECT_EQ(a[r].index, b[r].index);
    EXPECT_EQ(a[r].similarity, b[r].similarity);
  }
}

double recall_against(const std::vector<std::vector<Neighbor>>& approx,
                      const std::vector<std::vector<Neighbor>>& exact) {
  double hits = 0;
  double total = 0;
  for (std::size_t i = 0; i < approx.size(); ++i) {
    for (const Neighbor& nb : approx[i]) {
      for (const Neighbor& ref : exact[i]) {
        if (ref.index == nb.index) {
          hits += 1;
          break;
        }
      }
    }
    total += static_cast<double>(exact[i].size());
  }
  return total > 0 ? hits / total : 1.0;
}

std::vector<std::uint32_t> all_points(std::size_t n) {
  std::vector<std::uint32_t> points(n);
  std::iota(points.begin(), points.end(), 0u);
  return points;
}

TEST(IvfIndex, FullProbeMatchesExactEngine) {
  // Probing every list makes the candidate set exhaustive, so results
  // must equal the exact engine's — indices and similarity bits.
  const auto e = clustered_embedding(240, 12, 8, 5);
  const w2v::Embedding unit = e.normalized();
  const CosineKnn exact(e);
  IvfOptions options;
  options.nlist = 10;
  const IvfIndex index = IvfIndex::build(unit, options);
  const auto points = all_points(unit.size());
  const auto approx = index.query_batch(
      points, 6, static_cast<int>(index.nlist()));
  const auto truth = exact.query_batch(points, 6);
  for (std::size_t i = 0; i < points.size(); ++i) {
    expect_identical(approx[i], truth[i]);
  }
}

TEST(IvfIndex, RecallOnClusteredDataAtDefaultNprobe) {
  const auto e = clustered_embedding(600, 16, 12, 77);
  const w2v::Embedding unit = e.normalized();
  const CosineKnn exact(e);
  IvfOptions options;
  options.nlist = 24;
  options.nprobe = 4;
  const IvfIndex index = IvfIndex::build(unit, options);
  const auto points = all_points(unit.size());
  const double recall = recall_against(index.query_batch(points, 10),
                                       exact.query_batch(points, 10));
  EXPECT_GE(recall, 0.95);
  // The knob trades recall monotonically at the extremes.
  const double full = recall_against(
      index.query_batch(points, 10, static_cast<int>(index.nlist())),
      exact.query_batch(points, 10));
  EXPECT_EQ(full, 1.0);
}

TEST(IvfIndex, ReturnedSimilaritiesAreExactEngineBits) {
  // A returned pair's similarity must be bit-identical to what the
  // exact scan computes for that same pair: the fp32 IVF scan shares
  // the dot-strip kernel and the 1/sqrt(dot) rescale.
  const auto e = clustered_embedding(180, 10, 6, 31);
  const w2v::Embedding unit = e.normalized();
  const CosineKnn exact(e);
  const IvfIndex index = IvfIndex::build(unit);
  const int k_all = static_cast<int>(unit.size());
  const auto points = all_points(unit.size());
  const auto truth = exact.query_batch(points, k_all);
  const auto approx = index.query_batch(points, 5);
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (const Neighbor& nb : approx[i]) {
      bool found = false;
      for (const Neighbor& ref : truth[i]) {
        if (ref.index == nb.index) {
          EXPECT_EQ(ref.similarity, nb.similarity);
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found);
    }
  }
}

class IvfThreads : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    core::ThreadPool::set_global_threads(GetParam());
  }
  void TearDown() override {
    core::ThreadPool::set_global_threads(core::default_thread_count());
  }
};

TEST_P(IvfThreads, ResultsAreThreadCountIndependent) {
  const auto e = clustered_embedding(300, 14, 10, 19);
  const w2v::Embedding unit = e.normalized();
  const IvfIndex index = IvfIndex::build(unit);
  const auto points = all_points(unit.size());
  const auto here = index.query_batch(points, 8);

  core::ThreadPool::set_global_threads(1);
  const auto serial = index.query_batch(points, 8);
  ASSERT_EQ(here.size(), serial.size());
  for (std::size_t i = 0; i < here.size(); ++i) {
    expect_identical(here[i], serial[i]);
  }
  // query() and query_batch() agree entry by entry.
  for (const std::uint32_t p : {0u, 150u, 299u}) {
    expect_identical(here[p], index.query(p, 8));
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, IvfThreads,
                         ::testing::Values(1, 2, 8));

TEST(IvfIndex, ResultsAreSimdLevelIndependent) {
  // dot_strip_f32 and dot_i8 are bit-identical across dispatch levels
  // and the probe ranking uses them too, so the whole IVF answer —
  // probe order, candidate sims, final lists — is level-independent.
  const auto e = clustered_embedding(220, 18, 8, 43);
  const w2v::Embedding unit = e.normalized();
  for (const bool quantize : {false, true}) {
    IvfOptions options;
    options.quantize = quantize;
    const IvfIndex index = IvfIndex::build(unit, options);
    const auto points = all_points(unit.size());
    std::vector<std::vector<Neighbor>> reference;
    {
      simd::ScopedLevel scoped(simd::Level::kScalar);
      reference = index.query_batch(points, 7);
    }
    for (const simd::Level level : simd::supported_levels()) {
      simd::ScopedLevel scoped(level);
      const auto got = index.query_batch(points, 7);
      ASSERT_EQ(got.size(), reference.size());
      for (std::size_t i = 0; i < got.size(); ++i) {
        expect_identical(got[i], reference[i]);
      }
    }
  }
}

TEST(IvfIndex, LouvainStyleAssignmentSeedsTheLists) {
  const auto e = clustered_embedding(120, 8, 4, 3);
  const w2v::Embedding unit = e.normalized();
  // The generator assigns point i to cluster i % 4: hand that partition
  // over as if it came from Louvain, with an empty community (id 4) to
  // confirm empty lists are dropped.
  std::vector<int> assignment(unit.size());
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    assignment[i] = static_cast<int>(i % 4) < 2 ? static_cast<int>(i % 4)
                                                : static_cast<int>(i % 4) + 1;
  }
  const IvfIndex index =
      IvfIndex::build_with_assignment(unit, assignment, IvfOptions{});
  EXPECT_EQ(index.nlist(), 4u);  // ids {0, 1, 3, 4} compacted
  EXPECT_EQ(index.size(), unit.size());

  // Probing only the query's own community finds its intra-cluster
  // neighbours: the generator keeps clusters tight.
  const CosineKnn exact(e);
  const auto points = all_points(unit.size());
  const double recall = recall_against(index.query_batch(points, 5, 1),
                                       exact.query_batch(points, 5));
  EXPECT_GE(recall, 0.9);
}

TEST(IvfIndex, QuantizedPathIsAccurateAndSelfConsistent) {
  const auto e = clustered_embedding(400, 16, 10, 57);
  const w2v::Embedding unit = e.normalized();
  const CosineKnn exact(e);
  IvfOptions options;
  options.quantize = true;
  options.nlist = 16;
  options.nprobe = 4;
  const IvfIndex index = IvfIndex::build(unit, options);
  EXPECT_TRUE(index.quantized());
  const auto points = all_points(unit.size());
  const auto once = index.query_batch(points, 10);
  const auto twice = index.query_batch(points, 10);
  for (std::size_t i = 0; i < once.size(); ++i) {
    expect_identical(once[i], twice[i]);
  }
  // The right oracle for the int8 path is the exact quantized engine:
  // inside a tight cluster int8 resolution reorders near-equidistant
  // neighbours, so fp32-exact recall is bounded by quantization, not by
  // the IVF routing. Against the quantized scan only routing matters.
  EXPECT_GE(recall_against(once, exact.query_batch_quantized(points, 10)),
            0.95);
  EXPECT_GE(recall_against(once, exact.query_batch(points, 10)), 0.8);
}

TEST(IvfIndex, SaveLoadRoundTripPreservesAnswers) {
  for (const bool quantize : {false, true}) {
    const auto e = clustered_embedding(150, 12, 6, 91);
    const w2v::Embedding unit = e.normalized();
    IvfOptions options;
    options.quantize = quantize;
    options.nprobe = 3;
    const IvfIndex index = IvfIndex::build(unit, options);
    std::ostringstream out;
    index.save(out);

    std::istringstream in(out.str());
    io::IoReport report;
    const IvfIndex loaded = IvfIndex::load(in, io::IoPolicy::strict(),
                                           &report);
    EXPECT_TRUE(report.checksum_verified);
    EXPECT_EQ(report.records_read, index.size());
    EXPECT_EQ(loaded.size(), index.size());
    EXPECT_EQ(loaded.nlist(), index.nlist());
    EXPECT_EQ(loaded.default_nprobe(), index.default_nprobe());
    EXPECT_EQ(loaded.quantized(), quantize);

    const auto points = all_points(unit.size());
    const auto before = index.query_batch(points, 6);
    const auto after = loaded.query_batch(points, 6);
    for (std::size_t i = 0; i < before.size(); ++i) {
      expect_identical(before[i], after[i]);
    }
  }
}

TEST(IvfIndex, StrictLoadRejectsDamage) {
  const auto e = clustered_embedding(60, 8, 4, 13);
  const IvfIndex index = IvfIndex::build(e.normalized());
  std::ostringstream out;
  index.save(out);
  const std::string golden = out.str();

  {
    std::string bytes = golden;
    bytes[0] ^= 0x40;  // magic
    std::istringstream in(bytes);
    EXPECT_THROW((void)IvfIndex::load(in, io::IoPolicy::strict()),
                 io::FormatError);
  }
  {
    std::istringstream in(golden.substr(0, golden.size() / 2));
    EXPECT_THROW((void)IvfIndex::load(in, io::IoPolicy::strict()),
                 io::TruncatedInput);
  }
  {
    std::string bytes = golden;
    bytes[bytes.size() - 8] ^= 0x01;  // payload bit: CRC must catch it
    std::istringstream in(bytes);
    EXPECT_THROW((void)IvfIndex::load(in, io::IoPolicy::strict()),
                 io::IoError);
  }
}

TEST(IvfIndex, LenientTruncationKeepsWholeLists) {
  const auto e = clustered_embedding(90, 10, 3, 23);
  const w2v::Embedding unit = e.normalized();
  const IvfIndex index = IvfIndex::build(unit);
  std::ostringstream out;
  index.save(out);
  const std::string golden = out.str();

  // Cut inside the rows section: everything after the header, the
  // centroids and the layout arrays, but before the last row.
  std::istringstream in(golden.substr(0, golden.size() - 200));
  io::IoReport report;
  const IvfIndex loaded =
      IvfIndex::load(in, io::IoPolicy::lenient_with(100), &report);
  EXPECT_LT(loaded.size(), index.size());
  EXPECT_EQ(report.records_read, loaded.size());
  EXPECT_GE(report.records_skipped, 1u);
  EXPECT_LE(loaded.nlist(), index.nlist());
  // Whatever survived still answers queries.
  if (loaded.size() > 0) {
    std::vector<float> q(static_cast<std::size_t>(loaded.dim()), 0.1f);
    const auto got = loaded.query_vector(q, 3);
    EXPECT_LE(got.size(), std::size_t{3});
  }
}

TEST(IvfIndex, LenientQuantizedTruncationFallsBackToFp32) {
  const auto e = clustered_embedding(80, 8, 4, 29);
  const w2v::Embedding unit = e.normalized();
  IvfOptions options;
  options.quantize = true;
  const IvfIndex index = IvfIndex::build(unit, options);
  std::ostringstream out;
  index.save(out);
  const std::string golden = out.str();

  // Cut inside the int8 codes (the last section before the footer): the
  // fp32 side is complete, so the index degrades instead of shrinking.
  std::istringstream in(golden.substr(0, golden.size() - 50));
  io::IoReport report;
  const IvfIndex loaded =
      IvfIndex::load(in, io::IoPolicy::lenient_with(100), &report);
  EXPECT_EQ(loaded.size(), index.size());
  EXPECT_FALSE(loaded.quantized());
  EXPECT_EQ(report.records_read, loaded.size());

  // A cut inside the fp32 rows of a quantized index loses the int8
  // sections entirely: the survivor is a smaller fp32-only index
  // (regression: this used to index past the unread code arrays).
  std::istringstream deep(golden.substr(0, golden.size() / 2));
  io::IoReport deep_report;
  const IvfIndex partial =
      IvfIndex::load(deep, io::IoPolicy::lenient_with(100), &deep_report);
  EXPECT_LT(partial.size(), index.size());
  EXPECT_FALSE(partial.quantized());
  EXPECT_EQ(deep_report.records_read, partial.size());
  if (partial.size() > 0) {
    std::vector<float> q(static_cast<std::size_t>(partial.dim()), 0.2f);
    EXPECT_LE(partial.query_vector(q, 3).size(), std::size_t{3});
  }
}

TEST(IvfIndex, EdgeCases) {
  // Empty embedding: an empty index that answers nothing.
  const IvfIndex empty = IvfIndex::build(w2v::Embedding{});
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_TRUE(empty.query_vector({}, 5).empty());

  // One row: the self-exclusion leaves nothing to return.
  w2v::Embedding one(1, 3);
  one.vec(0)[0] = 1.0f;
  const IvfIndex single = IvfIndex::build(one.normalized());
  EXPECT_EQ(single.nlist(), 1u);
  EXPECT_TRUE(single.query(0, 5).empty());

  // k == 0, k >= n, and nprobe past nlist all behave.
  const auto e = clustered_embedding(40, 6, 4, 41);
  const w2v::Embedding unit = e.normalized();
  const IvfIndex index = IvfIndex::build(unit);
  EXPECT_TRUE(index.query(0, 0).empty());
  const auto big = index.query(0, 500, 10000);
  EXPECT_EQ(big.size(), unit.size() - 1);
  EXPECT_GT(index.expected_rows_scanned(index.default_nprobe()), 0.0);
  EXPECT_THROW((void)index.query(unit.size(), 3),
               darkvec::ContractViolation);
}

TEST(IvfIndex, MetricsCountProbesAndCandidates) {
  const auto e = clustered_embedding(200, 10, 5, 67);
  const w2v::Embedding unit = e.normalized();
  IvfOptions options;
  options.nlist = 10;
  options.nprobe = 2;
  const IvfIndex index = IvfIndex::build(unit, options);
  auto& queries = obs::counter(obs::names::kAnnQueries);
  auto& lists = obs::counter(obs::names::kAnnListsProbed);
  auto& rows = obs::counter(obs::names::kAnnCandidatesScanned);
  const auto q0 = queries.value();
  const auto l0 = lists.value();
  const auto r0 = rows.value();
  const auto points = all_points(unit.size());
  (void)index.query_batch(points, 5);
  EXPECT_EQ(queries.value() - q0, unit.size());
  EXPECT_EQ(lists.value() - l0, unit.size() * 2);
  const auto scanned = rows.value() - r0;
  EXPECT_GT(scanned, 0u);
  // Sub-linear: far fewer candidate rows than the n^2 exact scan.
  EXPECT_LT(scanned, unit.size() * unit.size());
}

TEST(CosineKnnAnn, ParamsRouteBetweenExactAndApproximate) {
  const auto e = clustered_embedding(150, 12, 6, 83);
  const CosineKnn index(e);
  const auto points = all_points(index.size());

  // Disabled params are the exact engine, bit for bit.
  const auto exact = index.query_batch(points, 5);
  const auto routed = index.query_batch(points, 5, AnnSearchParams{});
  for (std::size_t i = 0; i < exact.size(); ++i) {
    expect_identical(exact[i], routed[i]);
  }

  // Enabled params are the IVF index, bit for bit.
  AnnSearchParams on;
  on.enabled = true;
  on.nprobe = 2;
  const auto approx = index.query_batch(points, 5, on);
  const auto direct = index.ann().query_batch(points, 5, 2);
  for (std::size_t i = 0; i < approx.size(); ++i) {
    expect_identical(approx[i], direct[i]);
  }
  expect_identical(index.query(7, 5, on), index.ann().query(7, 5, 2));
}

TEST(CosineKnnAnn, ConsumersAcceptTheOptIn) {
  const auto e = clustered_embedding(160, 10, 4, 101);
  const CosineKnn index(e);
  AnnSearchParams on;
  on.enabled = true;

  // knn_graph: the approximate graph covers every node and only keeps
  // positive-similarity edges, like the exact one.
  const auto g = graph::knn_graph(index, 4, on);
  EXPECT_EQ(g.num_nodes(), index.size());

  // LOO prediction: clustered labels are recovered almost everywhere
  // even probing approximately.
  std::vector<int> labels(index.size());
  for (std::size_t i = 0; i < labels.size(); ++i) {
    labels[i] = static_cast<int>(i % 4);
  }
  const auto points = all_points(index.size());
  const auto exact_pred = loo_knn_predict(index, labels, points, 5);
  const auto approx_pred = loo_knn_predict(index, labels, points, 5, on);
  ASSERT_EQ(exact_pred.size(), approx_pred.size());
  std::size_t agree = 0;
  for (std::size_t i = 0; i < exact_pred.size(); ++i) {
    agree += exact_pred[i] == approx_pred[i] ? 1 : 0;
  }
  EXPECT_GE(static_cast<double>(agree) /
                static_cast<double>(exact_pred.size()),
            0.9);
}

}  // namespace
}  // namespace darkvec::ml
