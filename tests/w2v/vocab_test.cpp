#include "darkvec/w2v/vocab.hpp"

#include <gtest/gtest.h>

#include <string>

namespace darkvec::w2v {
namespace {

TEST(Vocab, AssignsDenseIdsInInsertionOrder) {
  Vocab<std::string> v;
  EXPECT_EQ(v.add("alpha"), 0u);
  EXPECT_EQ(v.add("beta"), 1u);
  EXPECT_EQ(v.add("alpha"), 0u);
  EXPECT_EQ(v.add("gamma"), 2u);
  EXPECT_EQ(v.size(), 3u);
}

TEST(Vocab, CountsOccurrences) {
  Vocab<int> v;
  v.add(7);
  v.add(7);
  v.add(7);
  v.add(9);
  EXPECT_EQ(v.count(v.id_of(7)), 3u);
  EXPECT_EQ(v.count(v.id_of(9)), 1u);
}

TEST(Vocab, IdOfAbsentTokenIsNone) {
  Vocab<int> v;
  v.add(1);
  EXPECT_EQ(v.id_of(2), (Vocab<int>::kNone));
}

TEST(Vocab, IdOfDoesNotInsert) {
  Vocab<int> v;
  (void)v.id_of(42);
  EXPECT_EQ(v.size(), 0u);
}

TEST(Vocab, TokenLookupIsInverseOfAdd) {
  Vocab<std::string> v;
  const auto id = v.add("10.0.0.1");
  EXPECT_EQ(v.token(id), "10.0.0.1");
}

TEST(Vocab, TokensAndCountsVectorsAlign) {
  Vocab<char> v;
  v.add('a');
  v.add('b');
  v.add('a');
  ASSERT_EQ(v.tokens().size(), 2u);
  ASSERT_EQ(v.counts().size(), 2u);
  EXPECT_EQ(v.tokens()[0], 'a');
  EXPECT_EQ(v.counts()[0], 2u);
  EXPECT_EQ(v.counts()[1], 1u);
}

}  // namespace
}  // namespace darkvec::w2v
