#include "darkvec/w2v/embedding.hpp"
#include "darkvec/core/contracts.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

namespace darkvec::w2v {
namespace {

Embedding small_embedding() {
  Embedding e(3, 2);
  e.vec(0)[0] = 1.0f;
  e.vec(0)[1] = 0.0f;
  e.vec(1)[0] = 0.0f;
  e.vec(1)[1] = 2.0f;
  e.vec(2)[0] = 3.0f;
  e.vec(2)[1] = 3.0f;
  return e;
}

TEST(Embedding, SizeAndDim) {
  const Embedding e(5, 7);
  EXPECT_EQ(e.size(), 5u);
  EXPECT_EQ(e.dim(), 7);
}

TEST(Embedding, DefaultIsEmpty) {
  const Embedding e;
  EXPECT_EQ(e.size(), 0u);
  EXPECT_EQ(e.dim(), 0);
}

TEST(Embedding, DataConstructorValidates) {
  EXPECT_THROW(Embedding(std::vector<float>(7), 2), darkvec::ContractViolation);
  EXPECT_NO_THROW(Embedding(std::vector<float>(8), 2));
}

TEST(Embedding, Dot) {
  const Embedding e = small_embedding();
  EXPECT_DOUBLE_EQ(dot(e.vec(0), e.vec(1)), 0.0);
  EXPECT_DOUBLE_EQ(dot(e.vec(0), e.vec(2)), 3.0);
  EXPECT_DOUBLE_EQ(dot(e.vec(2), e.vec(2)), 18.0);
}

TEST(Embedding, CosineKnownAngles) {
  const Embedding e = small_embedding();
  EXPECT_NEAR(e.cosine(0, 1), 0.0, 1e-9);          // orthogonal
  EXPECT_NEAR(e.cosine(0, 2), std::sqrt(0.5), 1e-6);  // 45 degrees
  EXPECT_NEAR(e.cosine(2, 2), 1.0, 1e-9);          // identical
}

TEST(Embedding, CosineOfZeroVectorIsZero) {
  Embedding e(2, 3);
  e.vec(1)[0] = 1.0f;
  EXPECT_EQ(e.cosine(0, 1), 0.0);
  EXPECT_EQ(e.cosine(0, 0), 0.0);
}

TEST(Embedding, CosineScaleInvariant) {
  Embedding e(2, 2);
  e.vec(0)[0] = 1.0f;
  e.vec(0)[1] = 2.0f;
  e.vec(1)[0] = 10.0f;
  e.vec(1)[1] = 20.0f;
  EXPECT_NEAR(e.cosine(0, 1), 1.0, 1e-6);
}

TEST(Embedding, NormalizedRowsHaveUnitNorm) {
  const Embedding n = small_embedding().normalized();
  for (std::size_t i = 0; i < n.size(); ++i) {
    EXPECT_NEAR(dot(n.vec(i), n.vec(i)), 1.0, 1e-6) << i;
  }
}

TEST(Embedding, NormalizedKeepsZeroRowsZero) {
  Embedding e(2, 2);
  e.vec(1)[0] = 5.0f;
  const Embedding n = e.normalized();
  EXPECT_EQ(n.vec(0)[0], 0.0f);
  EXPECT_EQ(n.vec(0)[1], 0.0f);
}

TEST(Embedding, NormalizedPreservesCosine) {
  const Embedding e = small_embedding();
  const Embedding n = e.normalized();
  for (std::size_t i = 0; i < e.size(); ++i) {
    for (std::size_t j = 0; j < e.size(); ++j) {
      EXPECT_NEAR(e.cosine(i, j), dot(n.vec(i), n.vec(j)), 1e-6);
    }
  }
}

TEST(Embedding, SaveLoadRoundTrip) {
  const Embedding e = small_embedding();
  std::stringstream buffer;
  e.save(buffer);
  const Embedding loaded = Embedding::load(buffer);
  ASSERT_EQ(loaded.size(), e.size());
  ASSERT_EQ(loaded.dim(), e.dim());
  EXPECT_EQ(loaded.data(), e.data());
}

TEST(Embedding, SaveLoadEmptyMatrix) {
  const Embedding e(0, 4);
  std::stringstream buffer;
  e.save(buffer);
  const Embedding loaded = Embedding::load(buffer);
  EXPECT_EQ(loaded.size(), 0u);
  EXPECT_EQ(loaded.dim(), 4);
}

TEST(Embedding, LoadRejectsBadMagic) {
  std::stringstream buffer("not an embedding file at all");
  EXPECT_THROW(Embedding::load(buffer), std::runtime_error);
}

TEST(Embedding, LoadRejectsTruncatedData) {
  const Embedding e = small_embedding();
  std::stringstream buffer;
  e.save(buffer);
  const std::string full = buffer.str();
  std::stringstream truncated(full.substr(0, full.size() - 4));
  EXPECT_THROW(Embedding::load(truncated), std::runtime_error);
}

TEST(Embedding, FileRoundTrip) {
  const Embedding e = small_embedding();
  const std::string path = ::testing::TempDir() + "/darkvec_emb_test.bin";
  e.save_file(path);
  const Embedding loaded = Embedding::load_file(path);
  EXPECT_EQ(loaded.data(), e.data());
}

TEST(Embedding, MissingFileThrows) {
  EXPECT_THROW(Embedding::load_file("/nonexistent/emb.bin"),
               std::runtime_error);
}

}  // namespace
}  // namespace darkvec::w2v
