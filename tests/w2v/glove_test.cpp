#include "darkvec/w2v/glove.hpp"
#include "darkvec/core/contracts.hpp"

#include <gtest/gtest.h>

#include "darkvec/sim/rng.hpp"

namespace darkvec::w2v {
namespace {

GloveOptions test_options() {
  GloveOptions o;
  o.dim = 16;
  o.window = 3;
  o.epochs = 30;
  o.seed = 7;
  return o;
}

std::vector<Sentence> two_communities(int repeats, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<Sentence> corpus;
  for (int r = 0; r < repeats; ++r) {
    Sentence a, b;
    for (int i = 0; i < 8; ++i) {
      a.push_back(static_cast<std::uint32_t>(rng.uniform_int(5)));
      b.push_back(static_cast<std::uint32_t>(5 + rng.uniform_int(5)));
    }
    corpus.push_back(a);
    corpus.push_back(b);
  }
  return corpus;
}

double mean_cosine(const Embedding& e, std::uint32_t lo1, std::uint32_t hi1,
                   std::uint32_t lo2, std::uint32_t hi2) {
  double total = 0;
  int count = 0;
  for (std::uint32_t i = lo1; i < hi1; ++i) {
    for (std::uint32_t j = lo2; j < hi2; ++j) {
      if (i == j) continue;
      total += e.cosine(i, j);
      ++count;
    }
  }
  return total / count;
}

TEST(Glove, LearnsCoOccurrenceCommunities) {
  const auto corpus = two_communities(150, 3);
  GloveModel model(10, test_options());
  model.train(corpus);
  const Embedding& e = model.embedding();
  const double within = mean_cosine(e, 0, 5, 0, 5);
  const double across = mean_cosine(e, 0, 5, 5, 10);
  EXPECT_GT(within, across + 0.3);
}

TEST(Glove, Deterministic) {
  const auto corpus = two_communities(30, 3);
  GloveModel m1(10, test_options());
  GloveModel m2(10, test_options());
  m1.train(corpus);
  m2.train(corpus);
  EXPECT_EQ(m1.embedding().data(), m2.embedding().data());
}

TEST(Glove, CoOccurrenceCellCount) {
  // Sentence {0,1,2}, window >= 2: symmetric pairs (0,1),(0,2),(1,2) and
  // mirrors -> 6 cells.
  GloveOptions o = test_options();
  o.window = 5;
  GloveModel model(3, o);
  const std::vector<Sentence> corpus = {{0, 1, 2}};
  model.train(corpus);
  EXPECT_EQ(model.nonzero_cells(), 6u);
}

TEST(Glove, StatsCountCellsTimesEpochs) {
  GloveOptions o = test_options();
  o.epochs = 4;
  GloveModel model(3, o);
  const std::vector<Sentence> corpus = {{0, 1, 2}};
  const TrainStats stats = model.train(corpus);
  EXPECT_EQ(stats.pairs, 24u);  // 6 cells x 4 epochs
  EXPECT_EQ(stats.tokens, 3u);
}

TEST(Glove, EmptyCorpus) {
  GloveModel model(4, test_options());
  const TrainStats stats = model.train(std::vector<Sentence>{});
  EXPECT_EQ(stats.pairs, 0u);
  EXPECT_EQ(model.embedding().size(), 4u);
}

TEST(Glove, OutOfRangeWordThrows) {
  GloveModel model(4, test_options());
  const std::vector<Sentence> corpus = {{0, 7}};
  EXPECT_THROW(model.train(corpus), darkvec::ContractViolation);
}

TEST(Glove, InvalidOptionsThrow) {
  GloveOptions bad = test_options();
  bad.dim = 0;
  EXPECT_THROW(GloveModel(4, bad), darkvec::ContractViolation);
  GloveOptions bad_window = test_options();
  bad_window.window = 0;
  EXPECT_THROW(GloveModel(4, bad_window), darkvec::ContractViolation);
}

}  // namespace
}  // namespace darkvec::w2v
