#include "darkvec/w2v/skipgram.hpp"
#include "darkvec/core/contracts.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "darkvec/sim/rng.hpp"

namespace darkvec::w2v {
namespace {

SkipGramOptions test_options() {
  SkipGramOptions o;
  o.dim = 16;
  o.window = 3;
  o.negative = 5;
  o.epochs = 15;
  o.subsample = 0;  // keep the tiny corpora intact
  o.seed = 7;
  return o;
}

/// Corpus with two token communities: {0..4} co-occur, {5..9} co-occur,
/// never across. The learned embedding must place same-community tokens
/// closer than cross-community ones.
std::vector<Sentence> two_communities(int repeats, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<Sentence> corpus;
  for (int r = 0; r < repeats; ++r) {
    Sentence a, b;
    for (int i = 0; i < 8; ++i) {
      a.push_back(static_cast<std::uint32_t>(rng.uniform_int(5)));
      b.push_back(static_cast<std::uint32_t>(5 + rng.uniform_int(5)));
    }
    corpus.push_back(a);
    corpus.push_back(b);
  }
  return corpus;
}

double mean_cosine(const Embedding& e, std::uint32_t lo1, std::uint32_t hi1,
                   std::uint32_t lo2, std::uint32_t hi2) {
  double total = 0;
  int count = 0;
  for (std::uint32_t i = lo1; i < hi1; ++i) {
    for (std::uint32_t j = lo2; j < hi2; ++j) {
      if (i == j) continue;
      total += e.cosine(i, j);
      ++count;
    }
  }
  return total / count;
}

TEST(SkipGram, LearnsCoOccurrenceCommunities) {
  const auto corpus = two_communities(200, 3);
  SkipGramModel model(10, test_options());
  model.train(corpus);
  const Embedding& e = model.embedding();
  const double within_a = mean_cosine(e, 0, 5, 0, 5);
  const double within_b = mean_cosine(e, 5, 10, 5, 10);
  const double across = mean_cosine(e, 0, 5, 5, 10);
  EXPECT_GT(within_a, across + 0.3);
  EXPECT_GT(within_b, across + 0.3);
}

TEST(SkipGram, SingleThreadIsDeterministic) {
  const auto corpus = two_communities(50, 3);
  SkipGramModel m1(10, test_options());
  SkipGramModel m2(10, test_options());
  m1.train(corpus);
  m2.train(corpus);
  EXPECT_EQ(m1.embedding().data(), m2.embedding().data());
}

TEST(SkipGram, DifferentSeedsDifferentEmbeddings) {
  const auto corpus = two_communities(50, 3);
  SkipGramOptions o1 = test_options();
  SkipGramOptions o2 = test_options();
  o2.seed = 8;
  SkipGramModel m1(10, o1);
  SkipGramModel m2(10, o2);
  m1.train(corpus);
  m2.train(corpus);
  EXPECT_NE(m1.embedding().data(), m2.embedding().data());
}

TEST(SkipGram, InitializationDependsOnSeedOnly) {
  SkipGramModel m1(4, test_options());
  SkipGramModel m2(4, test_options());
  EXPECT_EQ(m1.embedding().data(), m2.embedding().data());
}

TEST(SkipGram, StatsCountTokensAndPairs) {
  SkipGramOptions o = test_options();
  o.epochs = 2;
  o.dynamic_window = false;
  o.window = 10;  // full window on short sentences
  SkipGramModel model(4, o);
  const std::vector<Sentence> corpus = {{0, 1, 2, 3}};
  const TrainStats stats = model.train(corpus);
  EXPECT_EQ(stats.tokens, 8u);      // 4 tokens x 2 epochs
  EXPECT_EQ(stats.pairs, 24u);      // 4*3 ordered pairs x 2 epochs
  EXPECT_GE(stats.seconds, 0.0);
}

TEST(SkipGram, DynamicWindowTrainsFewerPairs) {
  SkipGramOptions fixed = test_options();
  fixed.epochs = 5;
  fixed.window = 5;
  fixed.dynamic_window = false;
  SkipGramOptions dynamic = fixed;
  dynamic.dynamic_window = true;
  const auto corpus = two_communities(20, 4);
  SkipGramModel mf(10, fixed);
  SkipGramModel md(10, dynamic);
  const auto sf = mf.train(corpus);
  const auto sd = md.train(corpus);
  EXPECT_LT(sd.pairs, sf.pairs);
  EXPECT_GT(sd.pairs, 0u);
}

TEST(SkipGram, SubsamplingReducesProcessedTokens) {
  // One dominant token: subsampling must drop many of its occurrences.
  std::vector<Sentence> corpus;
  for (int i = 0; i < 100; ++i) {
    corpus.push_back({0, 0, 0, 0, 0, 0, 0, 1, 2, 3});
  }
  SkipGramOptions with = test_options();
  with.epochs = 1;
  with.subsample = 1e-3;
  SkipGramOptions without = with;
  without.subsample = 0;
  SkipGramModel mw(4, with);
  SkipGramModel mo(4, without);
  const auto sw = mw.train(corpus);
  const auto so = mo.train(corpus);
  EXPECT_LT(sw.pairs, so.pairs / 2);
}

TEST(SkipGram, EmptyCorpusIsNoOp) {
  SkipGramModel model(4, test_options());
  const TrainStats stats = model.train(std::vector<Sentence>{});
  EXPECT_EQ(stats.tokens, 0u);
  EXPECT_EQ(stats.pairs, 0u);
}

TEST(SkipGram, EmptyVocabIsHarmless) {
  // vocab 0 must train to nothing — in particular the unigram table must
  // not be filled with word ids that don't exist.
  SkipGramModel model(0, test_options());
  EXPECT_EQ(model.vocab_size(), 0u);
  EXPECT_EQ(model.embedding().size(), 0u);
  const TrainStats stats = model.train(std::vector<Sentence>{{}, {}});
  EXPECT_EQ(stats.tokens, 0u);
  EXPECT_EQ(stats.pairs, 0u);
}

TEST(SkipGram, OutOfRangeWordThrows) {
  SkipGramModel model(4, test_options());
  const std::vector<Sentence> corpus = {{0, 1, 4}};
  EXPECT_THROW(model.train(corpus), darkvec::ContractViolation);
}

TEST(SkipGram, InvalidOptionsThrow) {
  SkipGramOptions bad_dim = test_options();
  bad_dim.dim = 0;
  EXPECT_THROW(SkipGramModel(4, bad_dim), darkvec::ContractViolation);
  SkipGramOptions bad_window = test_options();
  bad_window.window = 0;
  EXPECT_THROW(SkipGramModel(4, bad_window), darkvec::ContractViolation);
}

TEST(SkipGram, VocabSizeExposed) {
  SkipGramModel model(42, test_options());
  EXPECT_EQ(model.vocab_size(), 42u);
  EXPECT_EQ(model.embedding().size(), 42u);
  EXPECT_EQ(model.embedding().dim(), 16);
}

TEST(SkipGram, HogwildThreadsStillLearn) {
  // Multi-threaded training is lock-free and non-deterministic, but must
  // still produce a usable embedding.
  const auto corpus = two_communities(200, 3);
  SkipGramOptions o = test_options();
  o.threads = 2;
  SkipGramModel model(10, o);
  const TrainStats stats = model.train(corpus);
  EXPECT_GT(stats.pairs, 0u);
  const Embedding& e = model.embedding();
  const double within = mean_cosine(e, 0, 5, 0, 5);
  const double across = mean_cosine(e, 0, 5, 5, 10);
  EXPECT_GT(within, across + 0.2);
}

// ---- CBOW architecture -----------------------------------------------------

TEST(Cbow, LearnsCoOccurrenceCommunities) {
  const auto corpus = two_communities(200, 3);
  SkipGramOptions o = test_options();
  o.cbow = true;
  SkipGramModel model(10, o);
  model.train(corpus);
  const Embedding& e = model.embedding();
  const double within = mean_cosine(e, 0, 5, 0, 5);
  const double across = mean_cosine(e, 0, 5, 5, 10);
  EXPECT_GT(within, across + 0.3);
}

TEST(Cbow, DeterministicForSeed) {
  const auto corpus = two_communities(50, 3);
  SkipGramOptions o = test_options();
  o.cbow = true;
  SkipGramModel m1(10, o);
  SkipGramModel m2(10, o);
  m1.train(corpus);
  m2.train(corpus);
  EXPECT_EQ(m1.embedding().data(), m2.embedding().data());
}

TEST(Cbow, CountsContextTokensAsPairs) {
  SkipGramOptions o = test_options();
  o.cbow = true;
  o.epochs = 1;
  o.dynamic_window = false;
  o.window = 10;
  SkipGramModel model(4, o);
  const std::vector<Sentence> corpus = {{0, 1, 2, 3}};
  const TrainStats stats = model.train(corpus);
  // Each of the 4 positions aggregates the 3 other tokens.
  EXPECT_EQ(stats.pairs, 12u);
}

TEST(Cbow, DiffersFromSkipGram) {
  const auto corpus = two_communities(50, 3);
  SkipGramOptions sg = test_options();
  SkipGramOptions cb = test_options();
  cb.cbow = true;
  SkipGramModel m1(10, sg);
  SkipGramModel m2(10, cb);
  m1.train(corpus);
  m2.train(corpus);
  EXPECT_NE(m1.embedding().data(), m2.embedding().data());
}

// ---- hierarchical softmax ----------------------------------------------

TEST(HierarchicalSoftmax, LearnsCoOccurrenceCommunities) {
  const auto corpus = two_communities(200, 3);
  SkipGramOptions o = test_options();
  o.hierarchical_softmax = true;
  SkipGramModel model(10, o);
  model.train(corpus);
  const Embedding& e = model.embedding();
  const double within = mean_cosine(e, 0, 5, 0, 5);
  const double across = mean_cosine(e, 0, 5, 5, 10);
  EXPECT_GT(within, across + 0.3);
}

TEST(HierarchicalSoftmax, DeterministicForSeed) {
  const auto corpus = two_communities(50, 3);
  SkipGramOptions o = test_options();
  o.hierarchical_softmax = true;
  SkipGramModel m1(10, o);
  SkipGramModel m2(10, o);
  m1.train(corpus);
  m2.train(corpus);
  EXPECT_EQ(m1.embedding().data(), m2.embedding().data());
}

TEST(HierarchicalSoftmax, DiffersFromNegativeSampling) {
  const auto corpus = two_communities(50, 3);
  SkipGramOptions hs = test_options();
  hs.hierarchical_softmax = true;
  SkipGramModel m1(10, test_options());
  SkipGramModel m2(10, hs);
  m1.train(corpus);
  m2.train(corpus);
  EXPECT_NE(m1.embedding().data(), m2.embedding().data());
}

TEST(HierarchicalSoftmax, SingleWordVocabIsHarmless) {
  SkipGramOptions o = test_options();
  o.hierarchical_softmax = true;
  o.epochs = 1;
  SkipGramModel model(1, o);
  const std::vector<Sentence> corpus = {{0, 0, 0}};
  EXPECT_NO_THROW(model.train(corpus));
}

TEST(HierarchicalSoftmax, CbowComboRejected) {
  SkipGramOptions o = test_options();
  o.hierarchical_softmax = true;
  o.cbow = true;
  EXPECT_THROW(SkipGramModel(4, o), darkvec::ContractViolation);
}

// ---- pair-based training (IP2VEC path) -----------------------------------

TEST(SkipGramPairs, IdenticalContextDistributionsAlignInputs) {
  // The property SGNS guarantees: input tokens trained against the same
  // output contexts end up with aligned input vectors. Tokens 0 and 1
  // share context {2,3,4}; tokens 5 and 6 share context {7,8,9}.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
  for (int i = 0; i < 2000; ++i) {
    for (std::uint32_t t : {2u, 3u, 4u}) {
      pairs.emplace_back(0, t);
      pairs.emplace_back(1, t);
    }
    for (std::uint32_t t : {7u, 8u, 9u}) {
      pairs.emplace_back(5, t);
      pairs.emplace_back(6, t);
    }
  }
  SkipGramOptions o = test_options();
  o.epochs = 5;
  SkipGramModel model(10, o);
  model.train_pairs(pairs);
  const Embedding& e = model.embedding();
  EXPECT_GT(e.cosine(0, 1), e.cosine(0, 5) + 0.3);
  EXPECT_GT(e.cosine(5, 6), e.cosine(1, 6) + 0.3);
}

TEST(SkipGramPairs, StatsCountPairsTimesEpochs) {
  SkipGramOptions o = test_options();
  o.epochs = 3;
  SkipGramModel model(4, o);
  const std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs = {
      {0, 1}, {2, 3}};
  const TrainStats stats = model.train_pairs(pairs);
  EXPECT_EQ(stats.pairs, 6u);
}

TEST(SkipGramPairs, OutOfRangeThrows) {
  SkipGramModel model(4, test_options());
  const std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs = {{0, 9}};
  EXPECT_THROW(model.train_pairs(pairs), darkvec::ContractViolation);
}

TEST(SkipGramPairs, EmptyPairsIsNoOp) {
  SkipGramModel model(4, test_options());
  const TrainStats stats = model.train_pairs({});
  EXPECT_EQ(stats.pairs, 0u);
}

}  // namespace
}  // namespace darkvec::w2v
