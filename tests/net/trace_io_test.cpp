#include "darkvec/net/trace_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "darkvec/net/time.hpp"
#include "darkvec/sim/rng.hpp"

namespace darkvec::net {
namespace {

Trace random_trace(std::size_t n, std::uint64_t seed) {
  sim::Rng rng(seed);
  Trace t;
  for (std::size_t i = 0; i < n; ++i) {
    Packet p;
    p.ts = kTraceEpoch + static_cast<std::int64_t>(rng.uniform_int(100000));
    p.src = IPv4{static_cast<std::uint32_t>(rng.next_u64())};
    p.dst_host = static_cast<std::uint8_t>(rng.uniform_int(256));
    p.dst_port = static_cast<std::uint16_t>(rng.uniform_int(65536));
    const auto proto = rng.uniform_int(3);
    p.proto = static_cast<Protocol>(proto);
    if (p.proto == Protocol::kIcmp) p.dst_port = 0;
    p.mirai_fingerprint = rng.uniform() < 0.3;
    t.push_back(p);
  }
  t.sort();
  return t;
}

bool packets_equal(const Packet& a, const Packet& b) {
  return a.ts == b.ts && a.src == b.src && a.dst_host == b.dst_host &&
         a.dst_port == b.dst_port && a.proto == b.proto &&
         a.mirai_fingerprint == b.mirai_fingerprint;
}

TEST(TraceIo, WritesHeaderAndRows) {
  Trace t;
  Packet p;
  p.ts = 1614902530;
  p.src = IPv4{10, 0, 0, 1};
  p.dst_host = 15;
  p.dst_port = 22;
  p.proto = Protocol::kTcp;
  p.mirai_fingerprint = true;
  t.push_back(p);
  std::ostringstream out;
  write_csv(out, t);
  EXPECT_EQ(out.str(), "ts,src,dst_host,port,proto,mirai\n"
                       "1614902530,10.0.0.1,15,22,tcp,1\n");
}

TEST(TraceIo, RoundTripProperty) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Trace original = random_trace(200, seed);
    std::stringstream buffer;
    write_csv(buffer, original);
    const Trace loaded = read_csv(buffer);
    ASSERT_EQ(loaded.size(), original.size());
    for (std::size_t i = 0; i < original.size(); ++i) {
      EXPECT_TRUE(packets_equal(loaded[i], original[i])) << "packet " << i;
    }
  }
}

TEST(TraceIo, ReadsWithoutHeader) {
  std::istringstream in("1000,1.2.3.4,0,80,tcp,0\n");
  const Trace t = read_csv(in);
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t[0].dst_port, 80);
}

TEST(TraceIo, SkipsEmptyLines) {
  std::istringstream in(
      "ts,src,dst_host,port,proto,mirai\n\n1000,1.2.3.4,0,80,tcp,0\n\n");
  EXPECT_EQ(read_csv(in).size(), 1u);
}

TEST(TraceIo, EmptyInputYieldsEmptyTrace) {
  std::istringstream in("");
  EXPECT_TRUE(read_csv(in).empty());
}

struct BadRowCase {
  const char* row;
};

class TraceIoRejects : public ::testing::TestWithParam<BadRowCase> {};

TEST_P(TraceIoRejects, ThrowsOnMalformedRow) {
  std::istringstream in(GetParam().row);
  EXPECT_THROW(read_csv(in), std::runtime_error) << GetParam().row;
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, TraceIoRejects,
    ::testing::Values(
        BadRowCase{"1000,1.2.3.4,0,80,tcp\n"},          // missing field
        BadRowCase{"1000,1.2.3.4,0,80,tcp,0,extra\n"},  // extra field
        BadRowCase{"xx,1.2.3.4,0,80,tcp,0\n"},          // bad timestamp
        BadRowCase{"1000,999.2.3.4,0,80,tcp,0\n"},      // bad address
        BadRowCase{"1000,1.2.3.4,300,80,tcp,0\n"},      // dst_host overflow
        BadRowCase{"1000,1.2.3.4,0,99999,tcp,0\n"},     // port overflow
        BadRowCase{"1000,1.2.3.4,0,80,sctp,0\n"},       // bad protocol
        BadRowCase{"1000,1.2.3.4,0,80,tcp,maybe\n"}));  // bad flag

TEST(TraceIo, FileRoundTrip) {
  const Trace original = random_trace(50, 99);
  const std::string path = ::testing::TempDir() + "/darkvec_trace_test.csv";
  write_csv_file(path, original);
  const Trace loaded = read_csv_file(path);
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_TRUE(packets_equal(loaded[i], original[i]));
  }
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW(read_csv_file("/nonexistent/path/trace.csv"),
               std::runtime_error);
}

TEST(TraceIo, UnwritableFileThrows) {
  Trace t;
  EXPECT_THROW(write_csv_file("/nonexistent/dir/trace.csv", t),
               std::runtime_error);
}

}  // namespace
}  // namespace darkvec::net
