#include "darkvec/net/trace_binary.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "darkvec/net/time.hpp"
#include "darkvec/sim/rng.hpp"

namespace darkvec::net {
namespace {

Trace random_trace(std::size_t n, std::uint64_t seed) {
  sim::Rng rng(seed);
  Trace t;
  for (std::size_t i = 0; i < n; ++i) {
    Packet p;
    p.ts = kTraceEpoch + static_cast<std::int64_t>(rng.uniform_int(1000000));
    p.src = IPv4{static_cast<std::uint32_t>(rng.next_u64())};
    p.dst_host = static_cast<std::uint8_t>(rng.uniform_int(256));
    p.dst_port = static_cast<std::uint16_t>(rng.uniform_int(65536));
    p.proto = static_cast<Protocol>(rng.uniform_int(3));
    if (p.proto == Protocol::kIcmp) p.dst_port = 0;
    p.mirai_fingerprint = rng.uniform() < 0.5;
    t.push_back(p);
  }
  t.sort();
  return t;
}

bool traces_equal(const Trace& a, const Trace& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].ts != b[i].ts || a[i].src != b[i].src ||
        a[i].dst_host != b[i].dst_host || a[i].dst_port != b[i].dst_port ||
        a[i].proto != b[i].proto ||
        a[i].mirai_fingerprint != b[i].mirai_fingerprint) {
      return false;
    }
  }
  return true;
}

TEST(TraceBinary, RoundTripProperty) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Trace original = random_trace(500, seed);
    std::stringstream buffer;
    write_binary(buffer, original);
    EXPECT_TRUE(traces_equal(read_binary(buffer), original)) << seed;
  }
}

TEST(TraceBinary, LargeTraceCrossesBufferBoundaries) {
  // More packets than the 4096-record I/O buffer.
  const Trace original = random_trace(10000, 42);
  std::stringstream buffer;
  write_binary(buffer, original);
  EXPECT_TRUE(traces_equal(read_binary(buffer), original));
}

TEST(TraceBinary, EmptyTrace) {
  std::stringstream buffer;
  write_binary(buffer, Trace{});
  EXPECT_TRUE(read_binary(buffer).empty());
}

TEST(TraceBinary, RejectsBadMagic) {
  std::stringstream buffer("this is definitely not a trace file");
  EXPECT_THROW(read_binary(buffer), std::runtime_error);
}

TEST(TraceBinary, RejectsTruncation) {
  const Trace original = random_trace(100, 7);
  std::stringstream buffer;
  write_binary(buffer, original);
  const std::string full = buffer.str();
  std::stringstream truncated(full.substr(0, full.size() - 8));
  EXPECT_THROW(read_binary(truncated), std::runtime_error);
}

TEST(TraceBinary, FileRoundTrip) {
  const Trace original = random_trace(200, 9);
  const std::string path = ::testing::TempDir() + "/darkvec_trace.dvkt";
  write_binary_file(path, original);
  EXPECT_TRUE(traces_equal(read_binary_file(path), original));
}

TEST(TraceBinary, MissingFileThrows) {
  EXPECT_THROW(read_binary_file("/nonexistent/trace.dvkt"),
               std::runtime_error);
}

TEST(TraceBinary, IsSmallerThanCsv) {
  const Trace original = random_trace(1000, 11);
  std::stringstream bin;
  write_binary(bin, original);
  // 16 bytes per record + 16-byte header + 4-byte CRC32 footer.
  EXPECT_EQ(bin.str().size(), 20u + 16u * original.size());
}

}  // namespace
}  // namespace darkvec::net
