#include "darkvec/net/protocol.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace darkvec::net {
namespace {

TEST(Protocol, ToStringNames) {
  EXPECT_EQ(to_string(Protocol::kTcp), "tcp");
  EXPECT_EQ(to_string(Protocol::kUdp), "udp");
  EXPECT_EQ(to_string(Protocol::kIcmp), "icmp");
}

TEST(Protocol, ParseAcceptsCanonicalNames) {
  EXPECT_EQ(parse_protocol("tcp"), Protocol::kTcp);
  EXPECT_EQ(parse_protocol("udp"), Protocol::kUdp);
  EXPECT_EQ(parse_protocol("icmp"), Protocol::kIcmp);
}

TEST(Protocol, ParseIsCaseInsensitive) {
  EXPECT_EQ(parse_protocol("TCP"), Protocol::kTcp);
  EXPECT_EQ(parse_protocol("Udp"), Protocol::kUdp);
  EXPECT_EQ(parse_protocol("ICMP"), Protocol::kIcmp);
}

TEST(Protocol, ParseRejectsGarbage) {
  EXPECT_FALSE(parse_protocol("").has_value());
  EXPECT_FALSE(parse_protocol("sctp").has_value());
  EXPECT_FALSE(parse_protocol("tcp ").has_value());
}

TEST(Protocol, RoundTripProperty) {
  for (const Protocol p :
       {Protocol::kTcp, Protocol::kUdp, Protocol::kIcmp}) {
    EXPECT_EQ(parse_protocol(to_string(p)), p);
  }
}

TEST(PortKey, ToStringFormats) {
  EXPECT_EQ((PortKey{23, Protocol::kTcp}).to_string(), "23/tcp");
  EXPECT_EQ((PortKey{53, Protocol::kUdp}).to_string(), "53/udp");
  EXPECT_EQ((PortKey{0, Protocol::kIcmp}).to_string(), "icmp");
}

TEST(PortKey, OrderingByPortThenProto) {
  EXPECT_LT((PortKey{22, Protocol::kTcp}), (PortKey{23, Protocol::kTcp}));
  EXPECT_LT((PortKey{23, Protocol::kTcp}), (PortKey{23, Protocol::kUdp}));
}

TEST(PortKey, EqualityDistinguishesProtocol) {
  EXPECT_NE((PortKey{53, Protocol::kTcp}), (PortKey{53, Protocol::kUdp}));
  EXPECT_EQ((PortKey{53, Protocol::kUdp}), (PortKey{53, Protocol::kUdp}));
}

TEST(PortKey, HashDistinguishesProtocolAndPort) {
  std::unordered_set<PortKey> keys;
  for (std::uint16_t p = 0; p < 512; ++p) {
    keys.insert(PortKey{p, Protocol::kTcp});
    keys.insert(PortKey{p, Protocol::kUdp});
  }
  EXPECT_EQ(keys.size(), 1024u);
}

}  // namespace
}  // namespace darkvec::net
