#include "darkvec/net/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "darkvec/net/time.hpp"

namespace darkvec::net {
namespace {

Packet make_packet(std::int64_t ts, IPv4 src, std::uint16_t port,
                   Protocol proto = Protocol::kTcp) {
  Packet p;
  p.ts = ts;
  p.src = src;
  p.dst_port = port;
  p.proto = proto;
  return p;
}

const IPv4 kA{10, 0, 0, 1};
const IPv4 kB{10, 0, 0, 2};
const IPv4 kC{192, 168, 1, 1};

Trace small_trace() {
  Trace t;
  const std::int64_t t0 = kTraceEpoch;
  t.push_back(make_packet(t0 + 5, kA, 23));
  t.push_back(make_packet(t0 + 1, kB, 445));
  t.push_back(make_packet(t0 + 9, kA, 23));
  t.push_back(make_packet(t0 + 2, kC, 53, Protocol::kUdp));
  t.push_back(make_packet(t0 + 9, kB, 23));
  t.sort();
  return t;
}

TEST(Trace, SortOrdersByTimestamp) {
  const Trace t = small_trace();
  for (std::size_t i = 1; i < t.size(); ++i) {
    EXPECT_LE(t[i - 1].ts, t[i].ts);
  }
}

TEST(Trace, SortIsStableWithinSameSecond) {
  Trace t;
  t.push_back(make_packet(100, kA, 1));
  t.push_back(make_packet(100, kB, 2));
  t.push_back(make_packet(100, kC, 3));
  t.sort();
  EXPECT_EQ(t[0].src, kA);
  EXPECT_EQ(t[1].src, kB);
  EXPECT_EQ(t[2].src, kC);
}

TEST(Trace, StatsCountsDistinctSourcesAndPorts) {
  const TraceStats s = small_trace().stats();
  EXPECT_EQ(s.packets, 5u);
  EXPECT_EQ(s.sources, 3u);
  EXPECT_EQ(s.ports, 3u);  // 23/tcp, 445/tcp, 53/udp
  EXPECT_EQ(s.first_ts, kTraceEpoch + 1);
  EXPECT_EQ(s.last_ts, kTraceEpoch + 9);
}

TEST(Trace, StatsOfEmptyTrace) {
  const TraceStats s = Trace{}.stats();
  EXPECT_EQ(s.packets, 0u);
  EXPECT_EQ(s.sources, 0u);
  EXPECT_EQ(s.ports, 0u);
}

TEST(Trace, SliceSelectsHalfOpenInterval) {
  const Trace t = small_trace();
  const Trace s = t.slice(kTraceEpoch + 2, kTraceEpoch + 9);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[0].ts, kTraceEpoch + 2);
  EXPECT_EQ(s[1].ts, kTraceEpoch + 5);
}

TEST(Trace, SliceEmptyRange) {
  const Trace t = small_trace();
  EXPECT_TRUE(t.slice(kTraceEpoch + 100, kTraceEpoch + 200).empty());
  EXPECT_TRUE(t.slice(kTraceEpoch + 9, kTraceEpoch + 9).empty());
}

TEST(Trace, AppendConcatenates) {
  Trace a = small_trace();
  Trace b = small_trace();
  a.append(b);
  EXPECT_EQ(a.size(), 10u);
}

TEST(Trace, PortRankingSortedByPackets) {
  const auto ranking = small_trace().port_ranking();
  ASSERT_EQ(ranking.size(), 3u);
  EXPECT_EQ(ranking[0].key, (PortKey{23, Protocol::kTcp}));
  EXPECT_EQ(ranking[0].packets, 3u);
  EXPECT_EQ(ranking[0].sources, 2u);  // kA and kB hit 23/tcp
}

TEST(Trace, PortRankingTieBreaksByKey) {
  Trace t;
  t.push_back(make_packet(1, kA, 80));
  t.push_back(make_packet(2, kA, 22));
  t.sort();
  const auto ranking = t.port_ranking();
  ASSERT_EQ(ranking.size(), 2u);
  EXPECT_EQ(ranking[0].key.port, 22);  // equal packets: lower key first
}

TEST(Trace, PacketsPerSender) {
  const auto counts = small_trace().packets_per_sender();
  EXPECT_EQ(counts.at(kA), 2u);
  EXPECT_EQ(counts.at(kB), 2u);
  EXPECT_EQ(counts.at(kC), 1u);
}

TEST(Trace, CumulativeSendersPerDayUnfiltered) {
  Trace t;
  t.push_back(make_packet(kTraceEpoch + 10, kA, 23));
  t.push_back(make_packet(kTraceEpoch + kSecondsPerDay + 10, kB, 23));
  t.push_back(make_packet(kTraceEpoch + 2 * kSecondsPerDay + 10, kA, 23));
  t.push_back(make_packet(kTraceEpoch + 2 * kSecondsPerDay + 20, kC, 23));
  t.sort();
  const auto cumulative = t.cumulative_senders_per_day(kTraceEpoch);
  ASSERT_EQ(cumulative.size(), 3u);
  EXPECT_EQ(cumulative[0], 1u);
  EXPECT_EQ(cumulative[1], 2u);
  EXPECT_EQ(cumulative[2], 3u);
}

TEST(Trace, CumulativeSendersPerDayFilteredDropsLightSenders) {
  Trace t;
  // kA sends 3 packets, kB only 1.
  t.push_back(make_packet(kTraceEpoch + 1, kA, 23));
  t.push_back(make_packet(kTraceEpoch + 2, kB, 23));
  t.push_back(make_packet(kTraceEpoch + kSecondsPerDay + 1, kA, 23));
  t.push_back(make_packet(kTraceEpoch + kSecondsPerDay + 2, kA, 23));
  t.sort();
  const auto cumulative = t.cumulative_senders_per_day(kTraceEpoch, 3);
  ASSERT_EQ(cumulative.size(), 2u);
  EXPECT_EQ(cumulative[0], 1u);  // only kA qualifies
  EXPECT_EQ(cumulative[1], 1u);
}

TEST(Trace, CumulativeSendersOfEmptyTrace) {
  EXPECT_TRUE(Trace{}.cumulative_senders_per_day(kTraceEpoch).empty());
}

TEST(Trace, ActiveSendersThreshold) {
  const Trace t = small_trace();
  const auto active2 = active_senders(t, 2);
  EXPECT_EQ(active2.size(), 2u);  // kA, kB
  EXPECT_TRUE(std::ranges::is_sorted(active2));
  const auto active1 = active_senders(t, 1);
  EXPECT_EQ(active1.size(), 3u);
  EXPECT_TRUE(active_senders(t, 10).empty());
}

TEST(Trace, PortKeyOfIcmpPacket) {
  Packet p = make_packet(0, kA, 0, Protocol::kIcmp);
  EXPECT_EQ(p.port_key(), (PortKey{0, Protocol::kIcmp}));
}

}  // namespace
}  // namespace darkvec::net
