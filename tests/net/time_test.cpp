#include "darkvec/net/time.hpp"

#include <gtest/gtest.h>

namespace darkvec::net {
namespace {

TEST(Time, TraceEpochIsCaptureStart) {
  // 2021-03-02 00:00:00 UTC, the first day of the paper's dataset.
  EXPECT_EQ(format_utc(kTraceEpoch), "2021-03-02 00:00:00");
}

TEST(Time, DayIndex) {
  EXPECT_EQ(day_index(kTraceEpoch, kTraceEpoch), 0);
  EXPECT_EQ(day_index(kTraceEpoch + kSecondsPerDay - 1, kTraceEpoch), 0);
  EXPECT_EQ(day_index(kTraceEpoch + kSecondsPerDay, kTraceEpoch), 1);
  EXPECT_EQ(day_index(kTraceEpoch + 29 * kSecondsPerDay, kTraceEpoch), 29);
}

TEST(Time, HourIndex) {
  EXPECT_EQ(hour_index(kTraceEpoch, kTraceEpoch), 0);
  EXPECT_EQ(hour_index(kTraceEpoch + 3599, kTraceEpoch), 0);
  EXPECT_EQ(hour_index(kTraceEpoch + 3600, kTraceEpoch), 1);
  EXPECT_EQ(hour_index(kTraceEpoch + kSecondsPerDay, kTraceEpoch), 24);
}

TEST(Time, FormatUtcKnownTimestamps) {
  EXPECT_EQ(format_utc(0), "1970-01-01 00:00:00");
  EXPECT_EQ(format_utc(1614902530), "2021-03-05 00:02:10");
}

TEST(Time, ConstantsAreConsistent) {
  EXPECT_EQ(kSecondsPerHour, 60 * kSecondsPerMinute);
  EXPECT_EQ(kSecondsPerDay, 24 * kSecondsPerHour);
}

}  // namespace
}  // namespace darkvec::net
