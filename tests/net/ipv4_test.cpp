#include "darkvec/net/ipv4.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace darkvec::net {
namespace {

TEST(IPv4, DefaultIsZero) {
  EXPECT_EQ(IPv4{}.value(), 0u);
  EXPECT_EQ(IPv4{}.to_string(), "0.0.0.0");
}

TEST(IPv4, OctetConstructor) {
  const IPv4 ip{192, 168, 8, 66};
  EXPECT_EQ(ip.value(), 0xC0A80842u);
  EXPECT_EQ(ip.octet(0), 192);
  EXPECT_EQ(ip.octet(1), 168);
  EXPECT_EQ(ip.octet(2), 8);
  EXPECT_EQ(ip.octet(3), 66);
}

TEST(IPv4, ValueConstructorMatchesOctets) {
  EXPECT_EQ(IPv4{0x0A000001u}, (IPv4{10, 0, 0, 1}));
}

TEST(IPv4, ToStringRendersDottedQuad) {
  EXPECT_EQ((IPv4{10, 185, 61, 74}).to_string(), "10.185.61.74");
  EXPECT_EQ((IPv4{255, 255, 255, 255}).to_string(), "255.255.255.255");
}

TEST(IPv4, ParseValid) {
  const auto ip = IPv4::parse("10.24.33.0");
  ASSERT_TRUE(ip.has_value());
  EXPECT_EQ(*ip, (IPv4{10, 24, 33, 0}));
}

TEST(IPv4, ParseBoundaryValues) {
  EXPECT_EQ(IPv4::parse("0.0.0.0"), IPv4{});
  EXPECT_EQ(IPv4::parse("255.255.255.255"), (IPv4{255, 255, 255, 255}));
}

struct BadAddressCase {
  const char* text;
};

class IPv4ParseRejects : public ::testing::TestWithParam<BadAddressCase> {};

TEST_P(IPv4ParseRejects, ReturnsNullopt) {
  EXPECT_FALSE(IPv4::parse(GetParam().text).has_value()) << GetParam().text;
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, IPv4ParseRejects,
    ::testing::Values(BadAddressCase{""}, BadAddressCase{"1.2.3"},
                      BadAddressCase{"1.2.3.4.5"}, BadAddressCase{"256.1.1.1"},
                      BadAddressCase{"1.2.3.999"}, BadAddressCase{"a.b.c.d"},
                      BadAddressCase{"1..2.3"}, BadAddressCase{"1.2.3.4 "},
                      BadAddressCase{" 1.2.3.4"}, BadAddressCase{"1.2.3.-4"},
                      BadAddressCase{"1,2,3,4"}, BadAddressCase{"1.2.3.4x"}));

TEST(IPv4, ParseToStringRoundTripProperty) {
  // Deterministic pseudo-random sweep across the address space.
  std::uint32_t v = 0x12345678;
  for (int i = 0; i < 500; ++i) {
    v = v * 1664525u + 1013904223u;
    const IPv4 ip{v};
    const auto parsed = IPv4::parse(ip.to_string());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, ip);
  }
}

TEST(IPv4, Slash24MasksLastOctet) {
  EXPECT_EQ((IPv4{10, 1, 2, 3}).slash24(), (IPv4{10, 1, 2, 0}));
  EXPECT_EQ((IPv4{10, 1, 2, 0}).slash24(), (IPv4{10, 1, 2, 0}));
}

TEST(IPv4, Slash16MasksLastTwoOctets) {
  EXPECT_EQ((IPv4{10, 1, 2, 3}).slash16(), (IPv4{10, 1, 0, 0}));
}

TEST(IPv4, OrderingIsNumeric) {
  EXPECT_LT((IPv4{1, 0, 0, 0}), (IPv4{2, 0, 0, 0}));
  EXPECT_LT((IPv4{10, 0, 0, 1}), (IPv4{10, 0, 0, 2}));
  EXPECT_GT((IPv4{200, 0, 0, 0}), (IPv4{100, 255, 255, 255}));
}

TEST(IPv4, HashSpreadsSequentialAddresses) {
  // Sequential addresses within a /24 must not collide (botnet subnets).
  std::unordered_set<std::size_t> hashes;
  for (int i = 0; i < 256; ++i) {
    hashes.insert(std::hash<IPv4>{}(
        IPv4{10, 0, 0, static_cast<std::uint8_t>(i)}));
  }
  EXPECT_EQ(hashes.size(), 256u);
}

TEST(IPv4, UsableAsUnorderedSetKey) {
  std::unordered_set<IPv4> set;
  set.insert(IPv4{10, 0, 0, 1});
  set.insert(IPv4{10, 0, 0, 1});
  set.insert(IPv4{10, 0, 0, 2});
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.contains(IPv4{10, 0, 0, 1}));
}

}  // namespace
}  // namespace darkvec::net
