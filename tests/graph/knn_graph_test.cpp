#include "darkvec/graph/knn_graph.hpp"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "darkvec/core/parallel.hpp"
#include "darkvec/graph/louvain.hpp"

namespace darkvec::graph {
namespace {

/// Two tight direction bundles in 2-D.
w2v::Embedding two_bundles() {
  w2v::Embedding e(6, 2);
  for (std::size_t i = 0; i < 3; ++i) {
    e.vec(i)[0] = 1.0f;
    e.vec(i)[1] = 0.05f * static_cast<float>(i);
  }
  for (std::size_t i = 3; i < 6; ++i) {
    e.vec(i)[0] = -1.0f;
    e.vec(i)[1] = -0.05f * static_cast<float>(i - 3);
  }
  return e;
}

TEST(KnnGraph, EdgesConnectNearestNeighbours) {
  const ml::CosineKnn index{two_bundles()};
  const WeightedGraph g = knn_graph(index, 2);
  EXPECT_EQ(g.num_nodes(), 6u);
  // Each node's neighbours are within its own bundle.
  for (std::uint32_t u = 0; u < 6; ++u) {
    for (const Edge& e : g.neighbors(u)) {
      EXPECT_EQ(u < 3, e.to < 3) << "edge " << u << "->" << e.to;
    }
  }
  EXPECT_EQ(connected_components(g), 2u);
}

TEST(KnnGraph, WeightsAreCosineSimilarities) {
  const ml::CosineKnn index{two_bundles()};
  const WeightedGraph g = knn_graph(index, 1);
  for (std::uint32_t u = 0; u < 6; ++u) {
    for (const Edge& e : g.neighbors(u)) {
      EXPECT_GT(e.weight, 0.0);
      EXPECT_LE(e.weight, 2.0 + 1e-9);  // mutual selection sums directions
    }
  }
}

TEST(KnnGraph, MutualNeighborsAccumulateBothDirections) {
  // Two points only: they pick each other, so the single undirected edge
  // carries twice the cosine similarity.
  w2v::Embedding e(2, 2);
  e.vec(0)[0] = 1.0f;
  e.vec(1)[0] = 1.0f;
  e.vec(1)[1] = 0.1f;
  const ml::CosineKnn index{e};
  const WeightedGraph g = knn_graph(index, 1);
  ASSERT_EQ(g.neighbors(0).size(), 1u);
  const double cos = e.cosine(0, 1);
  EXPECT_NEAR(g.neighbors(0)[0].weight, 2.0 * cos, 1e-6);
}

TEST(KnnGraph, NegativeSimilaritiesAreDropped) {
  // Two opposite points: cosine -1, no edge survives.
  w2v::Embedding e(2, 2);
  e.vec(0)[0] = 1.0f;
  e.vec(1)[0] = -1.0f;
  const ml::CosineKnn index{e};
  const WeightedGraph g = knn_graph(index, 1);
  EXPECT_TRUE(g.neighbors(0).empty());
  EXPECT_TRUE(g.neighbors(1).empty());
}

TEST(KnnGraph, IdenticalAcrossThreadCounts) {
  // A larger pseudo-random embedding so the batch kernel actually fans
  // out across several chunks; the resulting graph must be identical —
  // edges, weights (bit-exact) and degrees — for 1, 2 and 8 threads.
  w2v::Embedding e(300, 8);
  std::uint32_t state = 12345;
  for (std::size_t i = 0; i < 300; ++i) {
    for (int d = 0; d < 8; ++d) {
      state = state * 1664525u + 1013904223u;
      e.vec(i)[static_cast<std::size_t>(d)] =
          static_cast<float>(state % 2000) / 1000.0f - 1.0f;
    }
  }
  const ml::CosineKnn index{e};

  using Snapshot = std::vector<std::tuple<std::uint32_t, std::uint32_t,
                                          double, double>>;
  std::vector<Snapshot> runs;
  for (const int threads : {1, 2, 8}) {
    core::ThreadPool::set_global_threads(threads);
    const WeightedGraph g = knn_graph(index, 5);
    Snapshot s;
    for (std::uint32_t u = 0; u < g.num_nodes(); ++u) {
      for (const Edge& edge : g.neighbors(u)) {
        s.emplace_back(u, edge.to, edge.weight, g.degree(u));
      }
    }
    runs.push_back(std::move(s));
  }
  core::ThreadPool::set_global_threads(core::default_thread_count());
  EXPECT_FALSE(runs[0].empty());
  EXPECT_EQ(runs[0], runs[1]);
  EXPECT_EQ(runs[0], runs[2]);
}

TEST(KnnGraph, LouvainOnKnnGraphRecoversBundles) {
  const ml::CosineKnn index{two_bundles()};
  const WeightedGraph g = knn_graph(index, 2);
  const LouvainResult r = louvain(g);
  EXPECT_EQ(r.count, 2);
}

}  // namespace
}  // namespace darkvec::graph
