#include "darkvec/graph/louvain.hpp"
#include "darkvec/core/contracts.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace darkvec::graph {
namespace {

/// Two 4-cliques joined by a single weak bridge.
WeightedGraph two_cliques() {
  WeightedGraph g(8);
  for (std::uint32_t base : {0u, 4u}) {
    for (std::uint32_t i = 0; i < 4; ++i) {
      for (std::uint32_t j = i + 1; j < 4; ++j) {
        g.add_edge(base + i, base + j, 1.0);
      }
    }
  }
  g.add_edge(3, 4, 0.1);  // bridge
  g.finalize();
  return g;
}

/// Ring of `k` triangles, each triangle connected to the next by one edge
/// — the classic Louvain test graph.
WeightedGraph triangle_ring(std::uint32_t k) {
  WeightedGraph g(3 * k);
  for (std::uint32_t t = 0; t < k; ++t) {
    const std::uint32_t a = 3 * t;
    g.add_edge(a, a + 1, 1.0);
    g.add_edge(a + 1, a + 2, 1.0);
    g.add_edge(a, a + 2, 1.0);
    g.add_edge(a + 2, (a + 3) % (3 * k), 1.0);
  }
  g.finalize();
  return g;
}

TEST(Modularity, SingletonPartitionOfCliquePair) {
  const WeightedGraph g = two_cliques();
  std::vector<int> singleton(8);
  for (int i = 0; i < 8; ++i) singleton[static_cast<std::size_t>(i)] = i;
  // All-singleton partitions have no internal edges: Q < 0.
  EXPECT_LT(modularity(g, singleton), 0.0);
}

TEST(Modularity, GoodPartitionBeatsBadPartition) {
  const WeightedGraph g = two_cliques();
  const std::vector<int> good = {0, 0, 0, 0, 1, 1, 1, 1};
  const std::vector<int> bad = {0, 1, 0, 1, 0, 1, 0, 1};
  EXPECT_GT(modularity(g, good), modularity(g, bad));
  EXPECT_GT(modularity(g, good), 0.4);
}

TEST(Modularity, HandComputedTwoNodeGraph) {
  // Single edge of weight 1: m=1. Partition together: Q = 1/1 - (2/2)^2 = 0.
  WeightedGraph g(2);
  g.add_edge(0, 1, 1.0);
  g.finalize();
  EXPECT_NEAR(modularity(g, std::vector<int>{0, 0}), 0.0, 1e-12);
  // Apart: Q = 0 - (1/2)^2 - (1/2)^2 = -0.5 (the lower bound).
  EXPECT_NEAR(modularity(g, std::vector<int>{0, 1}), -0.5, 1e-12);
}

TEST(Modularity, SizeMismatchThrows) {
  const WeightedGraph g = two_cliques();
  EXPECT_THROW(static_cast<void>(modularity(g, std::vector<int>{0, 1})),
               darkvec::ContractViolation);
}

TEST(Louvain, SeparatesTwoCliques) {
  const LouvainResult r = louvain(two_cliques());
  EXPECT_EQ(r.count, 2);
  // All members of each clique share a community.
  for (int i = 1; i < 4; ++i) {
    EXPECT_EQ(r.community[static_cast<std::size_t>(i)], r.community[0]);
  }
  for (int i = 5; i < 8; ++i) {
    EXPECT_EQ(r.community[static_cast<std::size_t>(i)], r.community[4]);
  }
  EXPECT_NE(r.community[0], r.community[4]);
  EXPECT_GT(r.modularity, 0.4);
}

TEST(Louvain, TriangleRingFindsTriangles) {
  const std::uint32_t k = 8;
  const LouvainResult r = louvain(triangle_ring(k));
  // Louvain may merge adjacent triangles at coarse levels, but for a ring
  // of 8 it recovers communities of whole triangles.
  EXPECT_GE(r.count, 4);
  EXPECT_LE(r.count, 8);
  for (std::uint32_t t = 0; t < k; ++t) {
    EXPECT_EQ(r.community[3 * t], r.community[3 * t + 1]);
    EXPECT_EQ(r.community[3 * t], r.community[3 * t + 2]);
  }
  EXPECT_GT(r.modularity, 0.5);
}

TEST(Louvain, CommunityIdsAreDense) {
  const LouvainResult r = louvain(triangle_ring(5));
  std::unordered_set<int> ids(r.community.begin(), r.community.end());
  EXPECT_EQ(static_cast<int>(ids.size()), r.count);
  for (const int c : ids) {
    EXPECT_GE(c, 0);
    EXPECT_LT(c, r.count);
  }
}

TEST(Louvain, ModularityFieldMatchesRecomputation) {
  const WeightedGraph g = triangle_ring(6);
  const LouvainResult r = louvain(g);
  EXPECT_NEAR(r.modularity, modularity(g, r.community), 1e-12);
}

TEST(Louvain, DeterministicForFixedSeed) {
  const WeightedGraph g = triangle_ring(6);
  LouvainOptions o;
  o.seed = 5;
  const LouvainResult r1 = louvain(g, o);
  const LouvainResult r2 = louvain(g, o);
  EXPECT_EQ(r1.community, r2.community);
  EXPECT_EQ(r1.modularity, r2.modularity);
}

TEST(Louvain, DisconnectedComponentsStaySeparate) {
  WeightedGraph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(2, 3, 1.0);
  g.finalize();
  const LouvainResult r = louvain(g);
  EXPECT_EQ(r.count, 2);
  EXPECT_EQ(r.community[0], r.community[1]);
  EXPECT_EQ(r.community[2], r.community[3]);
  EXPECT_NE(r.community[0], r.community[2]);
}

TEST(Louvain, EmptyGraph) {
  WeightedGraph g(0);
  g.finalize();
  const LouvainResult r = louvain(g);
  EXPECT_EQ(r.count, 0);
  EXPECT_TRUE(r.community.empty());
}

TEST(Louvain, EdgelessGraphKeepsSingletons) {
  WeightedGraph g(5);
  g.finalize();
  const LouvainResult r = louvain(g);
  EXPECT_EQ(r.count, 5);
}

TEST(Louvain, StarGraphIsOneCommunity) {
  WeightedGraph g(5);
  for (std::uint32_t i = 1; i < 5; ++i) g.add_edge(0, i, 1.0);
  g.finalize();
  const LouvainResult r = louvain(g);
  EXPECT_EQ(r.count, 1);
}

TEST(Louvain, WeightsMatter) {
  // Path a-b-c where a-b is heavy and b-c is light: expect {a,b} {c} or
  // one community; never {a} {b,c}.
  WeightedGraph g(3);
  g.add_edge(0, 1, 10.0);
  g.add_edge(1, 2, 0.1);
  g.finalize();
  const LouvainResult r = louvain(g);
  EXPECT_EQ(r.community[0], r.community[1]);
}

}  // namespace
}  // namespace darkvec::graph
