// Exhaustive verification of Louvain on tiny graphs: enumerate every
// partition of n <= 8 nodes (restricted-growth strings), find the true
// modularity optimum, and require Louvain to come within a small factor.
// Also cross-checks modularity() against an independent edge-sum
// formulation.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <vector>

#include "darkvec/graph/louvain.hpp"
#include "darkvec/sim/rng.hpp"

namespace darkvec::graph {
namespace {

/// Independent modularity implementation: Q = sum_ij [A_ij - k_i k_j / 2m]
/// * delta(c_i, c_j) / 2m over ordered pairs, with A_ii = 2*self_loop.
double reference_modularity(const WeightedGraph& g,
                            std::span<const int> community) {
  const std::size_t n = g.num_nodes();
  // Dense adjacency with the self-loop-doubling convention.
  std::vector<double> a(n * n, 0.0);
  for (std::uint32_t u = 0; u < n; ++u) {
    for (const Edge& e : g.neighbors(u)) {
      if (e.to == u) {
        a[u * n + u] = 2.0 * e.weight;
      } else {
        a[u * n + e.to] = e.weight;
      }
    }
  }
  double two_m = 0;
  std::vector<double> degree(n, 0.0);
  for (std::uint32_t u = 0; u < n; ++u) {
    for (std::uint32_t v = 0; v < n; ++v) degree[u] += a[u * n + v];
    two_m += degree[u];
  }
  if (two_m <= 0) return 0;
  double q = 0;
  for (std::uint32_t u = 0; u < n; ++u) {
    for (std::uint32_t v = 0; v < n; ++v) {
      if (community[u] != community[v]) continue;
      q += a[u * n + v] - degree[u] * degree[v] / two_m;
    }
  }
  return q / two_m;
}

/// Enumerates all set partitions of n elements via restricted growth
/// strings, invoking `visit` with each assignment.
void for_each_partition(std::size_t n,
                        const std::function<void(std::span<const int>)>& visit) {
  std::vector<int> assignment(n, 0);
  std::function<void(std::size_t, int)> rec = [&](std::size_t i, int max_c) {
    if (i == n) {
      visit(assignment);
      return;
    }
    for (int c = 0; c <= max_c + 1 && c < static_cast<int>(n); ++c) {
      assignment[i] = c;
      rec(i + 1, std::max(max_c, c));
    }
  };
  rec(1, 0);  // element 0 fixed in community 0 (canonical form)
}

double best_modularity(const WeightedGraph& g) {
  double best = -1;
  for_each_partition(g.num_nodes(), [&](std::span<const int> assignment) {
    best = std::max(best, modularity(g, assignment));
  });
  return best;
}

WeightedGraph random_graph(std::uint32_t n, double density,
                           std::uint64_t seed, bool self_loops) {
  sim::Rng rng(seed);
  WeightedGraph g(n);
  for (std::uint32_t u = 0; u < n; ++u) {
    for (std::uint32_t v = u + (self_loops ? 0 : 1); v < n; ++v) {
      if (rng.uniform() < density) {
        g.add_edge(u, v, rng.uniform(0.1, 2.0));
      }
    }
  }
  g.finalize();
  return g;
}

TEST(LouvainExhaustive, ModularityMatchesReferenceFormulation) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const WeightedGraph g = random_graph(7, 0.5, seed, /*self_loops=*/true);
    sim::Rng rng(seed + 50);
    std::vector<int> assignment(7);
    for (int& c : assignment) c = static_cast<int>(rng.uniform_int(3));
    EXPECT_NEAR(modularity(g, assignment),
                reference_modularity(g, assignment), 1e-10)
        << "seed " << seed;
  }
}

TEST(LouvainExhaustive, LouvainNearsTheTrueOptimum) {
  std::size_t optimal = 0;
  const std::size_t trials = 10;
  for (std::uint64_t seed = 1; seed <= trials; ++seed) {
    const WeightedGraph g = random_graph(8, 0.4, seed, /*self_loops=*/false);
    const double best = best_modularity(g);
    const LouvainResult r = louvain(g);
    // Louvain is greedy: allow a small gap, but require near-optimality
    // on average and never a gross miss.
    EXPECT_GE(r.modularity, best - 0.12) << "seed " << seed;
    if (r.modularity >= best - 1e-9) ++optimal;
  }
  EXPECT_GE(optimal, trials / 2);
}

TEST(LouvainExhaustive, TwoTrianglesOptimumIsExactlyFound) {
  WeightedGraph g(6);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 1);
  g.add_edge(0, 2, 1);
  g.add_edge(3, 4, 1);
  g.add_edge(4, 5, 1);
  g.add_edge(3, 5, 1);
  g.add_edge(2, 3, 1);
  g.finalize();
  const double best = best_modularity(g);
  const LouvainResult r = louvain(g);
  EXPECT_NEAR(r.modularity, best, 1e-12);
  EXPECT_EQ(r.count, 2);
}

}  // namespace
}  // namespace darkvec::graph
