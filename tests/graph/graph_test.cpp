#include "darkvec/graph/graph.hpp"
#include "darkvec/core/contracts.hpp"

#include <gtest/gtest.h>

namespace darkvec::graph {
namespace {

TEST(WeightedGraph, EdgeAccumulation) {
  WeightedGraph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 0, 2.0);  // same undirected edge
  g.finalize();
  const auto n0 = g.neighbors(0);
  ASSERT_EQ(n0.size(), 1u);
  EXPECT_EQ(n0[0].to, 1u);
  EXPECT_DOUBLE_EQ(n0[0].weight, 3.0);
  EXPECT_DOUBLE_EQ(g.total_weight(), 3.0);
}

TEST(WeightedGraph, DegreesCountBothEndpoints) {
  WeightedGraph g(3);
  g.add_edge(0, 1, 1.5);
  g.add_edge(1, 2, 2.5);
  g.finalize();
  EXPECT_DOUBLE_EQ(g.degree(0), 1.5);
  EXPECT_DOUBLE_EQ(g.degree(1), 4.0);
  EXPECT_DOUBLE_EQ(g.degree(2), 2.5);
}

TEST(WeightedGraph, SelfLoopCountsTwiceInDegree) {
  WeightedGraph g(2);
  g.add_edge(0, 0, 1.0);
  g.add_edge(0, 1, 2.0);
  g.finalize();
  EXPECT_DOUBLE_EQ(g.self_loop(0), 1.0);
  EXPECT_DOUBLE_EQ(g.degree(0), 4.0);  // 2*1 + 2
  EXPECT_DOUBLE_EQ(g.total_weight(), 3.0);  // self-loop counted once
}

TEST(WeightedGraph, NeighborsListSelfLoopOnce) {
  WeightedGraph g(1);
  g.add_edge(0, 0, 2.0);
  g.finalize();
  const auto n = g.neighbors(0);
  ASSERT_EQ(n.size(), 1u);
  EXPECT_EQ(n[0].to, 0u);
  EXPECT_DOUBLE_EQ(n[0].weight, 2.0);
}

TEST(WeightedGraph, BothDirectionsVisible) {
  WeightedGraph g(2);
  g.add_edge(0, 1, 1.0);
  g.finalize();
  ASSERT_EQ(g.neighbors(0).size(), 1u);
  ASSERT_EQ(g.neighbors(1).size(), 1u);
  EXPECT_EQ(g.neighbors(1)[0].to, 0u);
}

TEST(WeightedGraph, AddAfterFinalizeThrows) {
  WeightedGraph g(2);
  g.finalize();
  EXPECT_THROW(g.add_edge(0, 1, 1.0), std::logic_error);
}

TEST(WeightedGraph, BadNodeThrows) {
  WeightedGraph g(2);
  EXPECT_THROW(g.add_edge(0, 2, 1.0), darkvec::ContractViolation);
  EXPECT_THROW(g.add_edge(5, 0, 1.0), darkvec::ContractViolation);
}

TEST(WeightedGraph, IsolatedNodesHaveNoNeighbors) {
  WeightedGraph g(4);
  g.add_edge(0, 1, 1.0);
  g.finalize();
  EXPECT_TRUE(g.neighbors(2).empty());
  EXPECT_DOUBLE_EQ(g.degree(3), 0.0);
}

TEST(ConnectedComponents, CountsCorrectly) {
  WeightedGraph g(6);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(3, 4, 1.0);
  g.finalize();
  // {0,1,2}, {3,4}, {5}.
  EXPECT_EQ(connected_components(g), 3u);
}

TEST(ConnectedComponents, EmptyAndSingletons) {
  WeightedGraph g0(0);
  g0.finalize();
  EXPECT_EQ(connected_components(g0), 0u);
  WeightedGraph g3(3);
  g3.finalize();
  EXPECT_EQ(connected_components(g3), 3u);
}

TEST(ConnectedComponents, IgnoresZeroWeightEdges) {
  WeightedGraph g(2);
  g.add_edge(0, 1, 0.0);
  g.finalize();
  EXPECT_EQ(connected_components(g), 2u);
}

TEST(WeightedGraphTest, NeighborsBeforeFinalizeThrows) {
  WeightedGraph g(3);
  g.add_edge(0, 1, 1.0);
  EXPECT_THROW((void)g.neighbors(0), std::logic_error);
  g.finalize();
  EXPECT_EQ(g.neighbors(0).size(), 1u);
}

}  // namespace
}  // namespace darkvec::graph
