// Satellite contract of the observability PR: a degraded streaming
// window must always emit a WARN with the window bounds and reason and
// bump streaming.degraded_windows — even when the configuration says
// not to record a placeholder snapshot. Silently dropped windows are
// exactly what an operator needs to see.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "darkvec/core/streaming.hpp"
#include "darkvec/obs/obs.hpp"

namespace darkvec {
namespace {

net::Trace sparse_trace() {
  // Three packets around t=0 and three around t=250: with a 100 s
  // window and 100 s step, the middle window [100, 200) is empty and
  // every window is far below the activity threshold, so the whole
  // schedule degrades.
  std::vector<net::Packet> packets;
  for (const std::int64_t ts : {0, 5, 10, 250, 255, 260}) {
    net::Packet p;
    p.ts = ts;
    p.src = net::IPv4{0x0A000001};
    p.dst_host = 1;
    p.dst_port = 23;
    p.proto = net::Protocol::kTcp;
    packets.push_back(p);
  }
  return net::Trace{std::move(packets)};
}

StreamingConfig sparse_config() {
  StreamingConfig config;
  config.window_seconds = 100;
  config.step_seconds = 100;
  return config;
}

TEST(StreamingObs, DegradedWindowWarnsAndCountsEvenWhenNotRecorded) {
  auto sink = std::make_unique<obs::MemorySink>();
  obs::MemorySink* mem = sink.get();
  obs::logger().add_sink(std::move(sink));

  obs::Counter& degraded = obs::counter(obs::names::kStreamingDegradedWindows);
  const std::uint64_t before = degraded.value();

  StreamingConfig config = sparse_config();
  config.record_degraded = false;  // snapshots suppressed, telemetry not
  const auto snapshots = run_streaming(sparse_trace(), config);

  // Copy the entries out before clear_sinks(): the logger owns the sink,
  // so clearing destroys it and `mem` dangles.
  const auto entries = mem->entries();
  obs::logger().clear_sinks();

  // Window ends at 100, 200, 300: all three degrade, none is recorded.
  EXPECT_TRUE(snapshots.empty());
  EXPECT_EQ(degraded.value() - before, 3u);

  std::size_t warns = 0;
  for (const auto& entry : entries) {
    if (entry.component != "stream" || entry.level != obs::Level::kWarn) {
      continue;
    }
    ++warns;
    ASSERT_NE(entry.field("window_start"), nullptr);
    ASSERT_NE(entry.field("window_end"), nullptr);
    ASSERT_NE(entry.field("reason"), nullptr);
    EXPECT_EQ(entry.field("window_end")->i -
                  entry.field("window_start")->i,
              100);
    EXPECT_FALSE(entry.field("reason")->str.empty());
  }
  EXPECT_EQ(warns, 3u);

  // The empty middle window names its reason explicitly.
  bool saw_empty_window = false;
  for (const auto& entry : entries) {
    const obs::Field* reason = entry.field("reason");
    if (reason != nullptr && reason->str == "no packets in window" &&
        entry.field("window_end")->i == 200) {
      saw_empty_window = true;
    }
  }
  EXPECT_TRUE(saw_empty_window);
}

TEST(StreamingObs, RecordedDegradedSnapshotsStillWarnAndCount) {
  auto sink = std::make_unique<obs::MemorySink>();
  obs::MemorySink* mem = sink.get();
  obs::logger().add_sink(std::move(sink));

  obs::Counter& degraded = obs::counter(obs::names::kStreamingDegradedWindows);
  const std::uint64_t before = degraded.value();

  const auto snapshots = run_streaming(sparse_trace(), sparse_config());

  const auto entries = mem->entries();
  obs::logger().clear_sinks();

  ASSERT_EQ(snapshots.size(), 3u);
  for (const auto& s : snapshots) EXPECT_TRUE(s.degraded);
  EXPECT_EQ(degraded.value() - before, 3u);
  std::size_t warns = 0;
  for (const auto& entry : entries) {
    if (entry.component == "stream" && entry.level == obs::Level::kWarn) {
      ++warns;
    }
  }
  EXPECT_EQ(warns, 3u);
}

}  // namespace
}  // namespace darkvec
