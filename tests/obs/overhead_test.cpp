// Guard for the obs off-by-default cost contract: with tracing disabled
// and the log level above the call sites, instrumented code must run at
// effectively the speed of uninstrumented code. A disabled DV_SPAN is
// one relaxed atomic load and a branch; a gated DV_LOG_DEBUG is the
// same. Registered under both the obs and perf-smoke ctest labels.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>

#include "darkvec/obs/obs.hpp"

namespace darkvec::obs {
namespace {

inline std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDull;
  x ^= x >> 33;
  return x;
}

constexpr int kIterations = 400000;
constexpr int kRepeats = 5;

// `work` must consume and return the running hash so the compiler can
// delete neither the baseline nor the instrumented loop.
template <typename Fn>
double min_seconds(Fn&& work) {
  double best = 1e300;
  for (int r = 0; r < kRepeats; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    std::uint64_t h = 0x9E3779B97F4A7C15ull + static_cast<std::uint64_t>(r);
    for (int i = 0; i < kIterations; ++i) h = work(h);
    const double s = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
    static volatile std::uint64_t sink;
    sink = h;
    static_cast<void>(sink);
    best = std::min(best, s);
  }
  return best;
}

TEST(ObsOverhead, DisabledInstrumentationIsNearZeroCost) {
  Tracer::instance().set_enabled(false);
  logger().set_level(Level::kWarn);

  const double baseline = min_seconds([](std::uint64_t h) {
    return mix(h);
  });
  const double instrumented = min_seconds([](std::uint64_t h) {
    DV_SPAN("overhead.probe");
    DV_LOG_DEBUG("overhead", "gated out", {"h", h});
    return mix(h);
  });

  // min-of-repeats damps scheduler noise; the bound is deliberately
  // loose (gate checks against a single hash round) so the test only
  // fails on a real regression — e.g. a disabled span taking a lock or
  // reading the clock — not on machine jitter.
  EXPECT_LT(instrumented, baseline * 6.0 + 1e-3)
      << "baseline " << baseline << "s vs instrumented " << instrumented
      << "s over " << kIterations << " iterations";
}

}  // namespace
}  // namespace darkvec::obs
