#include "darkvec/obs/span.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace darkvec::obs {
namespace {

/// Enables tracing on a clean buffer for one test, disabled afterwards.
class Tracing : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::instance().clear();
    Tracer::instance().set_enabled(true);
  }
  void TearDown() override {
    Tracer::instance().set_enabled(false);
    Tracer::instance().clear();
  }
};

TEST(TracingDisabled, SpansRecordNothing) {
  Tracer::instance().set_enabled(false);
  Tracer::instance().clear();
  {
    DV_SPAN("disabled.root");
    DV_SPAN_ARG("disabled.arg", "n", 7);
  }
  EXPECT_EQ(Tracer::instance().event_count(), 0u);
}

TEST_F(Tracing, RecordsCompletedSpansWithArgs) {
  {
    DV_SPAN_ARG("test.outer", "items", 3);
    { DV_SPAN("test.inner"); }
  }
  const auto events = Tracer::instance().events();
  ASSERT_EQ(events.size(), 2u);
  // Spans close innermost-first, so the buffer order is inner, outer.
  EXPECT_STREQ(events[0].name, "test.inner");
  EXPECT_STREQ(events[1].name, "test.outer");
  EXPECT_STREQ(events[1].arg_name, "items");
  EXPECT_EQ(events[1].arg, 3);
  for (const TraceEvent& e : events) {
    EXPECT_GE(e.start_ns, 0);
    EXPECT_GE(e.dur_ns, 0);
  }
}

TEST_F(Tracing, NestedSpanLiesInsideItsParent) {
  {
    DV_SPAN("test.parent");
    DV_SPAN("test.child");
  }
  const auto events = Tracer::instance().events();
  ASSERT_EQ(events.size(), 2u);
  const TraceEvent& child = events[0];
  const TraceEvent& parent = events[1];
  EXPECT_GE(child.start_ns, parent.start_ns);
  EXPECT_LE(child.start_ns + child.dur_ns, parent.start_ns + parent.dur_ns);
  EXPECT_EQ(child.thread_id, parent.thread_id);
}

TEST_F(Tracing, WorkerThreadsGetTheirOwnTracks) {
  {
    DV_SPAN("test.main_track");
    std::vector<std::thread> workers;
    for (int t = 0; t < 3; ++t) {
      workers.emplace_back([] { DV_SPAN("test.worker_track"); });
    }
    for (std::thread& w : workers) w.join();
  }
  const auto events = Tracer::instance().events();
  ASSERT_EQ(events.size(), 4u);
  std::set<std::uint32_t> tids;
  for (const TraceEvent& e : events) tids.insert(e.thread_id);
  // Three short-lived workers plus the main thread: four distinct tids,
  // and the worker buffers must survive their threads exiting.
  EXPECT_EQ(tids.size(), 4u);
}

TEST_F(Tracing, ChromeTraceExportIsStructurallySound) {
  {
    DV_SPAN_ARG("test.export", "n", 11);
    DV_SPAN("test.export_child");
  }
  std::ostringstream out;
  Tracer::instance().write_chrome_trace(out);
  std::string json = out.str();
  // The export is one line of JSON terminated by a single newline.
  ASSERT_FALSE(json.empty());
  ASSERT_EQ(json.back(), '\n');
  json.pop_back();
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_EQ(json.find('\n'), std::string::npos) << "single-line export";
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"test.export\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"n\":11}"), std::string::npos);
  EXPECT_EQ(json.back(), '}');
  // Balanced braces/brackets — cheap structural check; full JSON
  // validation runs in scripts/check.sh via python.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST_F(Tracing, ClearDropsEventsButKeepsRecording) {
  { DV_SPAN("test.before_clear"); }
  ASSERT_GT(Tracer::instance().event_count(), 0u);
  Tracer::instance().clear();
  EXPECT_EQ(Tracer::instance().event_count(), 0u);
  { DV_SPAN("test.after_clear"); }
  EXPECT_EQ(Tracer::instance().event_count(), 1u);
}

TEST_F(Tracing, SpanOpenedBeforeDisableDoesNotRecordAfterIt) {
  // The enabled check happens at construction; a span that outlives
  // set_enabled(false) was opened under tracing and still records.
  // Conversely a span constructed while disabled stays silent even if
  // tracing turns on before its destructor.
  Tracer::instance().set_enabled(false);
  {
    DV_SPAN("test.constructed_disabled");
    Tracer::instance().set_enabled(true);
  }
  EXPECT_EQ(Tracer::instance().event_count(), 0u);
}

}  // namespace
}  // namespace darkvec::obs
