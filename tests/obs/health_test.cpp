// Model-health observability tests (obs/health.hpp): golden drift
// values on hand-built snapshots, anomaly-detector semantics, and the
// byte-identical determinism contract across thread counts and SIMD
// levels. The fixtures place whole clusters on exact unit axes so
// churn/overlap/drift have closed-form expected values.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "darkvec/core/parallel.hpp"
#include "darkvec/core/simd/simd.hpp"
#include "darkvec/obs/health.hpp"
#include "darkvec/sim/rng.hpp"
#include "darkvec/w2v/embedding.hpp"

namespace darkvec::obs {
namespace {

constexpr int kDim = 8;

/// One hand-built snapshot. Rows are filled by the tests; senders are
/// 10.0.x.x addresses offset by `id_offset` so vocabulary overlap is a
/// pure function of the offsets.
struct Window {
  std::vector<net::IPv4> senders;
  w2v::Embedding embedding;
  std::vector<int> assignment;

  Window(std::size_t n, std::size_t id_offset) : embedding(n, kDim) {
    senders.reserve(n);
    assignment.assign(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      senders.push_back(
          net::IPv4(static_cast<std::uint32_t>(0x0A000000u + id_offset + i)));
    }
  }

  /// Places row i exactly on unit axis `axis` (optionally rotated toward
  /// `axis2` by placing `c` on axis and `s` on axis2, with c^2+s^2=1).
  void place(std::size_t i, int cluster, int axis, double c = 1.0,
             int axis2 = -1, double s = 0.0) {
    assignment[i] = cluster;
    auto row = embedding.vec(i);
    for (int d = 0; d < kDim; ++d) row[static_cast<std::size_t>(d)] = 0.0f;
    row[static_cast<std::size_t>(axis)] = static_cast<float>(c);
    if (axis2 >= 0) row[static_cast<std::size_t>(axis2)] = static_cast<float>(s);
  }

  [[nodiscard]] HealthInput input(std::int64_t window_end,
                                  double modularity = 0.5,
                                  double alignment = 1.0) const {
    HealthInput in;
    in.window_start = window_end - 100;
    in.window_end = window_end;
    in.senders = senders;
    in.embedding = &embedding;
    in.assignment = assignment;
    in.modularity = modularity;
    in.alignment_similarity = alignment;
    return in;
  }
};

/// `clusters` blocks of `per` senders, block c sitting exactly on axis c.
Window block_window(int clusters, std::size_t per, std::size_t id_offset) {
  Window w(static_cast<std::size_t>(clusters) * per, id_offset);
  for (std::size_t i = 0; i < w.senders.size(); ++i) {
    const int c = static_cast<int>(i / per);
    w.place(i, c, c);
  }
  return w;
}

/// Thresholds with every alarm effectively disabled — for golden-value
/// tests that must not trip alerts as a side effect.
HealthThresholds quiet_thresholds() {
  HealthThresholds t;
  t.max_vocab_churn = 1.1;
  t.max_membership_churn = 1.1;
  t.max_centroid_drift = 2.1;
  t.min_neighbor_overlap = -0.1;
  t.max_alignment_residual = 2.1;
  t.warmup_windows = 1000;  // EWMA silent
  return t;
}

// ---------------------------------------------------------------------------
// HealthThresholds::parse

TEST(HealthThresholds, ParseEmptySpecYieldsDefaults) {
  const auto t = HealthThresholds::parse("");
  ASSERT_TRUE(t.has_value());
  EXPECT_DOUBLE_EQ(t->max_vocab_churn, HealthThresholds{}.max_vocab_churn);
  EXPECT_EQ(t->overlap_k, HealthThresholds{}.overlap_k);
  EXPECT_EQ(t->min_cluster_size, HealthThresholds{}.min_cluster_size);
}

TEST(HealthThresholds, ParseOverridesOnlyNamedKeys) {
  const auto t = HealthThresholds::parse(
      "vocab-churn=0.25,k=5,min-cluster=2,z=4.5,warmup=7");
  ASSERT_TRUE(t.has_value());
  EXPECT_DOUBLE_EQ(t->max_vocab_churn, 0.25);
  EXPECT_EQ(t->overlap_k, 5);
  EXPECT_EQ(t->min_cluster_size, 2u);
  EXPECT_DOUBLE_EQ(t->z_threshold, 4.5);
  EXPECT_EQ(t->warmup_windows, 7);
  // Untouched keys keep their defaults.
  EXPECT_DOUBLE_EQ(t->max_membership_churn,
                   HealthThresholds{}.max_membership_churn);
  EXPECT_DOUBLE_EQ(t->ewma_alpha, HealthThresholds{}.ewma_alpha);
}

TEST(HealthThresholds, ParseRejectsMalformedSpecs) {
  EXPECT_FALSE(HealthThresholds::parse("bogus-key=1").has_value());
  EXPECT_FALSE(HealthThresholds::parse("vocab-churn").has_value());
  EXPECT_FALSE(HealthThresholds::parse("vocab-churn=").has_value());
  EXPECT_FALSE(HealthThresholds::parse("z=abc").has_value());
  EXPECT_FALSE(HealthThresholds::parse("k=3,oops=2").has_value());
}

TEST(HealthThresholds, ParseOntoBasePreservesBaseOverrides) {
  HealthThresholds base;
  base.max_vocab_churn = 0.9;
  const auto t = HealthThresholds::parse("k=3", base);
  ASSERT_TRUE(t.has_value());
  EXPECT_DOUBLE_EQ(t->max_vocab_churn, 0.9);
  EXPECT_EQ(t->overlap_k, 3);
}

// ---------------------------------------------------------------------------
// EwmaDetector

TEST(EwmaDetector, FiresOnSpikeAfterWarmup) {
  EwmaDetector det(0.5, 2.0, 2);
  EXPECT_FALSE(det.update(0.0).has_value());  // first sample seeds the mean
  EXPECT_FALSE(det.update(1.0).has_value());  // sigma still 0
  EXPECT_FALSE(det.update(0.0).has_value());  // z = 1, below threshold
  const auto fired = det.update(10.0);
  ASSERT_TRUE(fired.has_value());
  // mean 0.25, var 0.1875 before the spike: z = 9.75 / sqrt(0.1875).
  EXPECT_NEAR(*fired, 9.75 / std::sqrt(0.1875), 1e-12);
  EXPECT_EQ(det.samples(), 4);
}

TEST(EwmaDetector, WarmupSuppressesEarlyFirings) {
  EwmaDetector det(0.5, 2.0, 10);
  EXPECT_FALSE(det.update(0.0).has_value());
  EXPECT_FALSE(det.update(1.0).has_value());
  EXPECT_FALSE(det.update(0.0).has_value());
  EXPECT_FALSE(det.update(10.0).has_value());  // would fire but warming up
}

TEST(EwmaDetector, ConstantSignalNeverFires) {
  EwmaDetector det(0.3, 3.0, 1);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(det.update(0.7).has_value());  // sigma stays 0
  }
  EXPECT_DOUBLE_EQ(det.mean(), 0.7);
}

// ---------------------------------------------------------------------------
// Golden drift values on hand-built snapshots

TEST(HealthMonitor, FirstWindowIsBaseline) {
  HealthMonitor monitor(quiet_thresholds());
  const Window a = block_window(3, 6, 0);
  const WindowHealth h = monitor.observe(a.input(100));

  EXPECT_FALSE(h.has_previous);
  EXPECT_FALSE(h.degraded);
  EXPECT_EQ(h.senders, 18u);
  EXPECT_EQ(h.clusters, 3);
  EXPECT_EQ(h.vocab.current, 18u);
  EXPECT_DOUBLE_EQ(h.vocab.churn(), 0.0);
  EXPECT_DOUBLE_EQ(h.neighbor_overlap, 1.0);
  EXPECT_TRUE(h.alerts.empty());
  ASSERT_EQ(h.cluster_drift.size(), 3u);
  for (const ClusterDrift& d : h.cluster_drift) {
    EXPECT_EQ(d.size, 6u);
    EXPECT_DOUBLE_EQ(d.membership_churn, 0.0);
    EXPECT_EQ(d.matched_prev, -1);  // nothing to match against yet
  }
}

TEST(HealthMonitor, VocabChurnGolden) {
  HealthMonitor monitor(quiet_thresholds());
  // A: senders 0..7; B: senders 4..11 — shared 4, added 4, retired 4.
  Window a(8, 0);
  Window b(8, 4);
  for (std::size_t i = 0; i < 8; ++i) {
    a.place(i, 0, 0);
    b.place(i, 0, 0);
  }
  monitor.observe(a.input(100));
  const WindowHealth h = monitor.observe(b.input(200));

  EXPECT_TRUE(h.has_previous);
  EXPECT_EQ(h.vocab.added, 4u);
  EXPECT_EQ(h.vocab.retired, 4u);
  EXPECT_EQ(h.vocab.shared, 4u);
  EXPECT_EQ(h.vocab.current, 8u);
  EXPECT_DOUBLE_EQ(h.vocab.churn(), 8.0 / 12.0);
  // The shared half also drives the membership Jaccard of the single
  // cluster: 1 - 4/12.
  ASSERT_EQ(h.cluster_drift.size(), 1u);
  EXPECT_EQ(h.cluster_drift[0].matched_prev, 0);
  EXPECT_EQ(h.cluster_drift[0].shared, 4u);
  EXPECT_DOUBLE_EQ(h.cluster_drift[0].membership_churn, 1.0 - 4.0 / 12.0);
}

TEST(HealthMonitor, IdenticalWindowsReportIdentitySignals) {
  HealthThresholds t = quiet_thresholds();
  t.overlap_k = 5;  // exactly the five cluster-mates of each sender
  HealthMonitor monitor(t);
  const Window a = block_window(3, 6, 0);
  monitor.observe(a.input(100));
  const WindowHealth h = monitor.observe(a.input(200));

  EXPECT_DOUBLE_EQ(h.vocab.churn(), 0.0);
  EXPECT_DOUBLE_EQ(h.neighbor_overlap, 1.0);
  EXPECT_DOUBLE_EQ(h.alignment_residual, 0.0);
  ASSERT_EQ(h.cluster_drift.size(), 3u);
  for (const ClusterDrift& d : h.cluster_drift) {
    EXPECT_EQ(d.matched_prev, d.cluster);
    EXPECT_DOUBLE_EQ(d.membership_churn, 0.0);
    EXPECT_DOUBLE_EQ(d.centroid_drift, 0.0);
  }
  EXPECT_TRUE(h.alerts.empty());
}

TEST(HealthMonitor, CentroidDriftGoldenOnRotatedCluster) {
  HealthThresholds t = quiet_thresholds();
  t.overlap_k = 5;
  HealthMonitor monitor(t);
  const Window a = block_window(3, 6, 0);
  // Same senders/partition, but cluster 2 rotated by 60 degrees into the
  // unused axis 5: centroid cosine drops to cos(60°) = 0.5 exactly.
  Window b = block_window(3, 6, 0);
  const double c = 0.5;
  const double s = std::sqrt(3.0) / 2.0;
  for (std::size_t i = 12; i < 18; ++i) b.place(i, 2, 2, c, 5, s);

  monitor.observe(a.input(100));
  const WindowHealth h = monitor.observe(b.input(200));

  ASSERT_EQ(h.cluster_drift.size(), 3u);
  EXPECT_NEAR(h.cluster_drift[2].centroid_drift, 0.5, 1e-6);
  EXPECT_DOUBLE_EQ(h.cluster_drift[0].centroid_drift, 0.0);
  EXPECT_DOUBLE_EQ(h.cluster_drift[1].centroid_drift, 0.0);
  // Rotation moves the centroid but not the within-cluster geometry:
  // every sender keeps its five cluster-mates as nearest neighbors.
  EXPECT_DOUBLE_EQ(h.neighbor_overlap, 1.0);
  EXPECT_DOUBLE_EQ(h.cluster_drift[2].membership_churn, 0.0);
}

TEST(HealthMonitor, AlignmentResidualGoldenAndAlert) {
  HealthMonitor monitor;  // default thresholds: residual alarm at 0.5
  const Window a = block_window(2, 6, 0);
  monitor.observe(a.input(100));
  const WindowHealth h = monitor.observe(a.input(200, 0.5, /*alignment=*/0.25));

  EXPECT_DOUBLE_EQ(h.alignment_residual, 0.75);
  ASSERT_EQ(h.alerts.size(), 1u);
  EXPECT_EQ(h.alerts[0].signal, "alignment-residual");
  EXPECT_DOUBLE_EQ(h.alerts[0].value, 0.75);
  EXPECT_EQ(h.alerts[0].cluster, -1);
}

// ---------------------------------------------------------------------------
// Anomaly detection semantics

TEST(HealthMonitor, ClusterSplitFiresExactlyOneAlert) {
  HealthMonitor monitor;  // paper-default thresholds
  // A: cluster 0 (40 senders on axis 0) and cluster 1 (40 on axis 1).
  Window a(80, 0);
  for (std::size_t i = 0; i < 40; ++i) a.place(i, 0, 0);
  for (std::size_t i = 40; i < 80; ++i) a.place(i, 1, 1);
  // B: the LAST 15 members of cluster 0 split off to axis 5 as cluster 2
  // (a new campaign peeling out of an old scanner population). The
  // remainder of cluster 0 churns 1 - 25/40 = 0.375 < 0.6 and stays
  // quiet; the splinter churns 1 - 15/40 = 0.625 > 0.6 and alarms.
  Window b(80, 0);
  for (std::size_t i = 0; i < 25; ++i) b.place(i, 0, 0);
  for (std::size_t i = 25; i < 40; ++i) b.place(i, 2, 5);
  for (std::size_t i = 40; i < 80; ++i) b.place(i, 1, 1);

  monitor.observe(a.input(100));
  const WindowHealth h = monitor.observe(b.input(200));

  ASSERT_EQ(h.alerts.size(), 1u);
  const HealthAlert& alert = h.alerts[0];
  EXPECT_EQ(alert.signal, "cluster-drift");
  EXPECT_EQ(alert.cluster, 2);
  EXPECT_NE(alert.detail.find("membership churn"), std::string::npos);
  EXPECT_NE(alert.detail.find("probable split or new campaign"),
            std::string::npos);

  ASSERT_EQ(h.cluster_drift.size(), 3u);
  EXPECT_EQ(h.cluster_drift[2].cluster, 2);
  EXPECT_EQ(h.cluster_drift[2].matched_prev, 0);
  EXPECT_DOUBLE_EQ(h.cluster_drift[2].membership_churn, 1.0 - 15.0 / 40.0);
  EXPECT_DOUBLE_EQ(h.cluster_drift[0].membership_churn, 1.0 - 25.0 / 40.0);
  EXPECT_DOUBLE_EQ(h.cluster_drift[1].membership_churn, 0.0);
  EXPECT_EQ(monitor.alerts_total(), 1u);
}

TEST(HealthMonitor, BrandNewClusterRaisesNewClusterAlert) {
  HealthMonitor monitor;
  const Window a = block_window(2, 20, 0);
  // B keeps both clusters and adds 10 never-seen senders on axis 6 as
  // cluster 7: no ancestor overlap, so matched_prev stays -1.
  Window b(50, 0);
  for (std::size_t i = 0; i < 20; ++i) b.place(i, 0, 0);
  for (std::size_t i = 20; i < 40; ++i) b.place(i, 1, 1);
  for (std::size_t i = 40; i < 50; ++i) {
    b.senders[i] = net::IPv4(static_cast<std::uint32_t>(0x0B000000u + i));
    b.place(i, 7, 6);
  }

  monitor.observe(a.input(100));
  const WindowHealth h = monitor.observe(b.input(200));

  ASSERT_EQ(h.alerts.size(), 1u);
  EXPECT_EQ(h.alerts[0].signal, "new-cluster");
  EXPECT_EQ(h.alerts[0].cluster, 7);
  EXPECT_DOUBLE_EQ(h.alerts[0].value, 10.0);
  EXPECT_NE(h.alerts[0].detail.find("probable new campaign"),
            std::string::npos);
  ASSERT_EQ(h.cluster_drift.size(), 3u);
  EXPECT_EQ(h.cluster_drift[2].matched_prev, -1);
  EXPECT_DOUBLE_EQ(h.cluster_drift[2].membership_churn, 1.0);
}

TEST(HealthMonitor, TinyClustersNeverAlarm) {
  HealthMonitor monitor;  // min_cluster_size = 5
  const Window a = block_window(1, 10, 0);
  // Three senders splinter into cluster 9 — below min_cluster_size, so
  // the splinter is reported but must not page anyone.
  Window b = block_window(1, 10, 0);
  for (std::size_t i = 7; i < 10; ++i) b.place(i, 9, 5);

  monitor.observe(a.input(100));
  const WindowHealth h = monitor.observe(b.input(200));

  EXPECT_TRUE(h.alerts.empty());
  ASSERT_EQ(h.cluster_drift.size(), 2u);
  EXPECT_EQ(h.cluster_drift[1].cluster, 9);
  EXPECT_EQ(h.cluster_drift[1].size, 3u);
}

TEST(HealthMonitor, DegradedWindowAlertsAndKeepsDriftReference) {
  HealthMonitor monitor(quiet_thresholds());
  const Window a = block_window(2, 6, 0);
  monitor.observe(a.input(100));

  HealthInput degraded;
  degraded.window_start = 100;
  degraded.window_end = 200;
  degraded.degraded = true;
  degraded.degraded_reason = "no packets in window";
  const WindowHealth d = monitor.observe(degraded);
  EXPECT_TRUE(d.degraded);
  EXPECT_EQ(d.degraded_reason, "no packets in window");
  ASSERT_EQ(d.alerts.size(), 1u);
  EXPECT_EQ(d.alerts[0].signal, "degraded-window");

  // The reference survives the outage: the next good window diffs
  // against window A, not against the gap.
  const WindowHealth h = monitor.observe(a.input(300));
  EXPECT_TRUE(h.has_previous);
  EXPECT_DOUBLE_EQ(h.vocab.churn(), 0.0);
  EXPECT_DOUBLE_EQ(h.neighbor_overlap, 1.0);
  EXPECT_TRUE(h.alerts.empty());
  EXPECT_EQ(monitor.alerts_total(), 1u);
  EXPECT_EQ(monitor.history().size(), 3u);
}

TEST(HealthMonitor, EwmaTrendAlertFiresOnModularityCollapse) {
  HealthThresholds t = quiet_thresholds();
  t.warmup_windows = 1;
  t.z_threshold = 3.0;
  t.ewma_alpha = 0.3;
  HealthMonitor monitor(t);
  const Window a = block_window(2, 6, 0);
  // Modularity oscillates gently, then collapses: the EWMA z-score
  // detector — not any fixed threshold — must flag the break.
  const double values[] = {0.50, 0.52, 0.48, 0.51, 0.49, 0.52, 0.48};
  std::int64_t end = 100;
  for (const double m : values) {
    const WindowHealth h = monitor.observe(a.input(end, m));
    EXPECT_TRUE(h.alerts.empty()) << "window " << end;
    end += 100;
  }
  const WindowHealth h = monitor.observe(a.input(end, /*modularity=*/-0.2));
  ASSERT_EQ(h.alerts.size(), 1u);
  EXPECT_EQ(h.alerts[0].signal, "zscore-modularity");
  EXPECT_NE(h.alerts[0].detail.find("sigma"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Reports

TEST(HealthMonitor, ReportJsonShapeAndPersistence) {
  HealthMonitor monitor;
  const Window a = block_window(2, 6, 0);
  monitor.observe(a.input(100));
  monitor.observe(a.input(200));

  const std::string json = monitor.report_json();
  EXPECT_NE(json.find("\"schema\":1"), std::string::npos);
  EXPECT_NE(json.find("\"thresholds\":{"), std::string::npos);
  EXPECT_NE(json.find("\"max_vocab_churn\":0.5"), std::string::npos);
  EXPECT_NE(json.find("\"windows\":["), std::string::npos);
  EXPECT_NE(json.find("\"alerts_total\":0"), std::string::npos);
  // The free function over the recorded history matches the member.
  EXPECT_EQ(json, health_report_json(monitor.thresholds(), monitor.history()));

  const std::string path = ::testing::TempDir() + "/health_report_test.json";
  monitor.write_report(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), json + "\n");
  std::filesystem::remove(path);
}

TEST(WindowHealth, DegradedJsonCarriesReason) {
  WindowHealth w;
  w.degraded = true;
  w.degraded_reason = "below activity threshold";
  const std::string json = w.to_json();
  EXPECT_NE(json.find("\"degraded\":true"), std::string::npos);
  EXPECT_NE(json.find("\"degraded_reason\":\"below activity threshold\""),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Determinism: byte-identical reports across thread counts and SIMD
// levels. The SGNS trainer is NOT bit-stable across SIMD levels, so the
// contract is tested where it holds — fixed embeddings through the
// monitor (whose k-NN/silhouette kernels carry the bit-identity
// guarantee).

std::string run_sequence_report() {
  // Jittered, irregular windows: enough structure that k-NN, silhouette
  // and centroid paths all do real arithmetic.
  sim::Rng rng(42);
  HealthThresholds t;
  t.overlap_k = 4;
  HealthMonitor monitor(t);
  for (int win = 0; win < 3; ++win) {
    Window w(60, static_cast<std::size_t>(win) * 9);
    for (std::size_t i = 0; i < 60; ++i) {
      const int c = static_cast<int>(i % 4);
      w.assignment[i] = c;
      auto row = w.embedding.vec(i);
      for (int d = 0; d < kDim; ++d) {
        const double base = d == c ? 3.0 : 0.0;
        row[static_cast<std::size_t>(d)] =
            static_cast<float>(base + rng.uniform(-0.4, 0.4));
      }
    }
    monitor.observe(w.input(100 * (win + 1), 0.4 + 0.05 * win, 0.97));
  }
  return monitor.report_json();
}

TEST(HealthDeterminism, ReportBytesStableAcrossThreadCounts) {
  const std::string baseline = run_sequence_report();
  for (const int threads : {1, 2, 5}) {
    core::ThreadPool::set_global_threads(threads);
    EXPECT_EQ(run_sequence_report(), baseline) << threads << " threads";
  }
  core::ThreadPool::set_global_threads(core::default_thread_count());
}

TEST(HealthDeterminism, ReportBytesStableAcrossSimdLevels) {
  const std::string baseline = run_sequence_report();
  for (const simd::Level level : simd::supported_levels()) {
    simd::ScopedLevel scoped(level);
    EXPECT_EQ(run_sequence_report(), baseline) << simd::level_name(level);
  }
}

}  // namespace
}  // namespace darkvec::obs
