#include "darkvec/obs/log.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace darkvec::obs {
namespace {

/// Attaches a MemorySink to the global logger for one test and restores
/// the default state (level warn, stderr fallback) afterwards.
class LogCapture : public ::testing::Test {
 protected:
  void SetUp() override {
    auto sink = std::make_unique<MemorySink>();
    mem_ = sink.get();
    logger().add_sink(std::move(sink));
    logger().set_level(Level::kTrace);
  }
  void TearDown() override {
    logger().clear_sinks();
    logger().set_level(Level::kWarn);
  }

  MemorySink* mem_ = nullptr;
};

TEST_F(LogCapture, LevelGateDropsRecordsBelowThreshold) {
  logger().set_level(Level::kInfo);
  DV_LOG_DEBUG("test", "dropped");
  DV_LOG_INFO("test", "kept info");
  DV_LOG_WARN("test", "kept warn");
  const auto entries = mem_->entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].message, "kept info");
  EXPECT_EQ(entries[1].level, Level::kWarn);
}

TEST_F(LogCapture, TypedFieldsRoundTrip) {
  const std::string who = "scanner";
  DV_LOG_INFO("test", "typed", {"count", std::size_t{42}},
              {"delta", -7}, {"ratio", 0.5}, {"ok", true}, {"who", who});
  const auto entries = mem_->entries();
  ASSERT_EQ(entries.size(), 1u);
  const MemorySink::Entry& e = entries[0];
  ASSERT_NE(e.field("count"), nullptr);
  EXPECT_EQ(e.field("count")->u, 42u);
  EXPECT_EQ(e.field("count")->kind, Field::Kind::kUint);
  ASSERT_NE(e.field("delta"), nullptr);
  EXPECT_EQ(e.field("delta")->i, -7);
  ASSERT_NE(e.field("ratio"), nullptr);
  EXPECT_DOUBLE_EQ(e.field("ratio")->d, 0.5);
  ASSERT_NE(e.field("ok"), nullptr);
  EXPECT_TRUE(e.field("ok")->b);
  ASSERT_NE(e.field("who"), nullptr);
  EXPECT_EQ(e.field("who")->str, "scanner");
  EXPECT_EQ(e.field("missing"), nullptr);
}

TEST_F(LogCapture, ParseLevelCoversAllNamesAndRejectsJunk) {
  EXPECT_EQ(parse_level("trace"), Level::kTrace);
  EXPECT_EQ(parse_level("debug"), Level::kDebug);
  EXPECT_EQ(parse_level("info"), Level::kInfo);
  EXPECT_EQ(parse_level("warn"), Level::kWarn);
  EXPECT_EQ(parse_level("error"), Level::kError);
  EXPECT_EQ(parse_level("off"), Level::kOff);
  EXPECT_EQ(parse_level("verbose"), std::nullopt);
  EXPECT_EQ(parse_level(""), std::nullopt);
}

TEST_F(LogCapture, ManyThreadsLogConcurrentlyWithoutLoss) {
  // Sink dispatch is serialized by the logger mutex; under TSan this
  // test also proves the whole path is race-free.
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        DV_LOG_INFO("test", "concurrent", {"thread", t}, {"seq", i});
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(mem_->entries().size(),
            static_cast<std::size_t>(kThreads) * kPerThread);
}

TEST(JsonLines, RecordsAreOneJsonObjectPerLine) {
  std::ostringstream out;
  Logger local;
  local.set_level(Level::kTrace);
  local.add_sink(std::make_unique<JsonLinesSink>(out));
  local.log(Level::kWarn, "stream", "degraded window",
            {{"window_start", 0}, {"reason", "no packets"}});
  local.log(Level::kInfo, "w2v", "quote \"and\" backslash \\ tab \t done");

  std::istringstream lines(out.str());
  std::string line;
  int n = 0;
  while (std::getline(lines, line)) {
    ++n;
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    // No raw control characters may survive escaping.
    for (const char c : line) EXPECT_GE(static_cast<unsigned char>(c), 0x20);
  }
  EXPECT_EQ(n, 2);
  EXPECT_NE(out.str().find("\"level\":\"warn\""), std::string::npos);
  EXPECT_NE(out.str().find("\"window_start\":0"), std::string::npos);
  EXPECT_NE(out.str().find("\\\"and\\\""), std::string::npos);
  EXPECT_NE(out.str().find("\\t"), std::string::npos);
}

TEST(JsonEscape, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(detail::json_escape("plain"), "plain");
  EXPECT_EQ(detail::json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(detail::json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(detail::json_escape("a\nb"), "a\\nb");
  EXPECT_EQ(detail::json_escape(std::string_view("a\x01z", 3)), "a\\u0001z");
}

TEST(FieldRendering, JsonTokensAreValid) {
  EXPECT_EQ(Field("k", 3).value_json(), "3");
  EXPECT_EQ(Field("k", true).value_json(), "true");
  EXPECT_EQ(Field("k", "hi \"x\"").value_json(), "\"hi \\\"x\\\"\"");
  // Non-finite doubles cannot appear as bare JSON tokens.
  const std::string inf = Field("k", 1.0 / 0.0).value_json();
  EXPECT_EQ(inf.front(), '"');
  EXPECT_EQ(inf.back(), '"');
}

}  // namespace
}  // namespace darkvec::obs
