#include "darkvec/obs/metrics.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "darkvec/core/parallel.hpp"

namespace darkvec::obs {
namespace {

TEST(Counter, MergesShardsExactlyAcrossThreadCounts) {
  // The sharded counter must be exact — not approximate — for any
  // DARKVEC_THREADS setting: relaxed fetch_add is an atomic RMW, so no
  // increment can be lost regardless of which shard a thread lands on.
  Counter& c = counter("test.merge_exact");
  const int original_threads = core::ThreadPool::global().size();
  for (const int threads : {1, 2, 4, 8}) {
    core::ThreadPool::set_global_threads(threads);
    c.reset();
    constexpr std::size_t kItems = 100000;
    core::parallel_for(kItems, 1000, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) c.add(1);
    });
    EXPECT_EQ(c.value(), kItems) << "threads=" << threads;
  }
  core::ThreadPool::set_global_threads(original_threads);
}

TEST(Counter, ExactUnderRawThreadChurn) {
  // Threads created and destroyed per batch (the Hogwild trainer spawns
  // per epoch); stripe ids keep growing but totals must stay exact.
  Counter& c = counter("test.thread_churn");
  c.reset();
  constexpr int kRounds = 4;
  constexpr int kThreads = 5;
  constexpr std::uint64_t kPerThread = 10000;
  for (int round = 0; round < kRounds; ++round) {
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&c] {
        for (std::uint64_t i = 0; i < kPerThread; ++i) c.add();
      });
    }
    for (std::thread& w : workers) w.join();
  }
  EXPECT_EQ(c.value(), kRounds * kThreads * kPerThread);
}

TEST(Gauge, SetAddAndReset) {
  Gauge& g = gauge("test.gauge");
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(1.25);
  EXPECT_DOUBLE_EQ(g.value(), 3.75);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(Histogram, BucketBoundariesFollowPrometheusLeSemantics) {
  Histogram& h = histogram("test.le_bounds", {1.0, 2.0, 5.0});
  h.reset();
  // x lands in the first bucket with x <= bound; values on a boundary
  // belong to that boundary's bucket ("le" = less-or-equal).
  h.observe(-3.0);  // <= 1       -> bucket 0
  h.observe(1.0);   // == 1       -> bucket 0
  h.observe(1.5);   // <= 2       -> bucket 1
  h.observe(2.0);   // == 2       -> bucket 1
  h.observe(5.0);   // == 5       -> bucket 2
  h.observe(5.001);  // overflow  -> bucket 3 (+inf)
  const auto counts = h.counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_DOUBLE_EQ(h.sum(), -3.0 + 1.0 + 1.5 + 2.0 + 5.0 + 5.001);
}

TEST(Registry, FindOrCreateReturnsStableHandles) {
  Counter& a = counter("test.stable_handle");
  // Force registry growth, then re-resolve: same object.
  for (int i = 0; i < 100; ++i) {
    static_cast<void>(counter("test.filler_" + std::to_string(i)));
  }
  Counter& b = counter("test.stable_handle");
  EXPECT_EQ(&a, &b);
  a.add(7);
  EXPECT_EQ(b.value(), 7u);
  a.reset();
}

TEST(Registry, HistogramBoundsFixedAtRegistration) {
  Histogram& a = histogram("test.fixed_bounds", {1.0, 2.0});
  Histogram& b = histogram("test.fixed_bounds", {10.0, 20.0, 30.0});
  EXPECT_EQ(&a, &b);
  ASSERT_EQ(b.bounds().size(), 2u);
  EXPECT_DOUBLE_EQ(b.bounds()[1], 2.0);
}

TEST(Registry, SnapshotCarriesAllMetricKinds) {
  counter("test.snap_counter").add(3);
  gauge("test.snap_gauge").set(1.5);
  histogram("test.snap_hist", {1.0}).observe(0.5);
  const MetricsSnapshot snap = registry().snapshot();

  bool saw_counter = false, saw_gauge = false, saw_hist = false;
  for (const auto& c : snap.counters) {
    if (c.name == "test.snap_counter") {
      saw_counter = true;
      EXPECT_GE(c.value, 3u);
    }
  }
  for (const auto& g : snap.gauges) {
    if (g.name == "test.snap_gauge") {
      saw_gauge = true;
      EXPECT_DOUBLE_EQ(g.value, 1.5);
    }
  }
  for (const auto& h : snap.histograms) {
    if (h.name == "test.snap_hist") {
      saw_hist = true;
      ASSERT_EQ(h.counts.size(), 2u);
      EXPECT_GE(h.count, 1u);
    }
  }
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_gauge);
  EXPECT_TRUE(saw_hist);
}

TEST(Registry, JsonAndPrometheusRenderings) {
  counter("test.render_counter").add(2);
  histogram("test.render_hist", {0.5, 1.5}).observe(1.0);
  const MetricsSnapshot snap = registry().snapshot();

  const std::string json = snap.to_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"test.render_counter\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"bounds\""), std::string::npos);

  const std::string prom = snap.to_prometheus();
  EXPECT_NE(prom.find("darkvec_test_render_counter"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE darkvec_test_render_counter counter"),
            std::string::npos);
  // Histogram buckets are cumulative and end with the +Inf bucket.
  EXPECT_NE(prom.find("darkvec_test_render_hist_bucket{le=\"+Inf\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("darkvec_test_render_hist_sum"), std::string::npos);
  EXPECT_NE(prom.find("darkvec_test_render_hist_count"), std::string::npos);
}

TEST(Registry, ResetValuesKeepsRegistrationsAndHandles) {
  Counter& c = counter("test.reset_values");
  Histogram& h = histogram("test.reset_hist", {1.0});
  c.add(5);
  h.observe(0.5);
  registry().reset_values();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  c.add(1);  // handle still live after reset
  EXPECT_EQ(c.value(), 1u);
  c.reset();
}

}  // namespace
}  // namespace darkvec::obs
