// The chaos interrupt matrix (ctest -L chaos, run under ASan by
// scripts/check.sh): every cancellable kernel is interrupted at a grid
// of deterministic trip points — RunContext::trip_after_checks cancels
// the token at the Nth cooperative checkpoint, so each variant
// reproduces exactly — and after every interruption the suite verifies
// the three runtime guarantees:
//
//   1. the interruption surfaces as the typed runtime error (or, for
//      bounded kernels under kPartialResults, as a flagged truncation),
//      never as a crash, hang, or silent wrong answer;
//   2. artifacts are valid-or-absent: any checkpoint file on disk loads
//      cleanly (DVCK CRC) no matter where the run stopped;
//   3. the process stays usable: the same kernel immediately re-runs
//      clean and matches an uninterrupted golden run bit-for-bit
//      wherever determinism is promised.
//
// The matrix deliberately exceeds 100 variants across SGNS, GloVe,
// batch_topk, topk_scan, IVF build/query, knn_graph, Louvain and the
// streaming pipeline, plus fork+SIGKILL crash-resume for training and
// streaming.
#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>

#include <csignal>
#include <cstdio>
#include <cstdint>
#include <fstream>
#include <string>
#include <unistd.h>
#include <vector>

#include "darkvec/core/runtime/checkpoint.hpp"
#include "darkvec/core/runtime/runtime.hpp"
#include "darkvec/core/streaming.hpp"
#include "darkvec/graph/knn_graph.hpp"
#include "darkvec/graph/louvain.hpp"
#include "darkvec/ml/ann.hpp"
#include "darkvec/ml/batch_topk.hpp"
#include "darkvec/ml/knn.hpp"
#include "darkvec/sim/scenario.hpp"
#include "darkvec/sim/simulator.hpp"
#include "darkvec/w2v/glove.hpp"
#include "darkvec/w2v/skipgram.hpp"

namespace darkvec {
namespace {

// ---------------------------------------------------------------------
// Shared fixtures: a small deterministic corpus and embedding.

constexpr std::size_t kVocab = 60;

std::vector<w2v::Sentence> make_sentences() {
  std::vector<w2v::Sentence> sentences;
  std::uint64_t state = 42;
  const auto next = [&state] {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 33;
  };
  for (int s = 0; s < 120; ++s) {
    w2v::Sentence sentence;
    for (int t = 0; t < 12; ++t) {
      sentence.push_back(static_cast<std::uint32_t>(next() % kVocab));
    }
    sentences.push_back(std::move(sentence));
  }
  return sentences;
}

w2v::Embedding make_embedding(std::size_t rows, int dim) {
  std::vector<float> data(rows * static_cast<std::size_t>(dim));
  std::uint64_t state = 7;
  for (float& v : data) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    v = static_cast<float>(static_cast<std::int64_t>(state >> 40) % 1000) /
            500.0f -
        1.0f;
  }
  return w2v::Embedding{std::move(data), dim};
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "chaos_" + name;
}

bool same_bits(const w2v::Embedding& a, const w2v::Embedding& b) {
  return a.dim() == b.dim() && a.data() == b.data();
}

/// Runs `body` once per trip point with an armed ambient context.
/// Returns how many variants actually tripped (a trip point beyond the
/// kernel's total check count completes normally — still a variant).
template <typename Body>
int run_trip_matrix(const std::vector<std::uint64_t>& trips,
                    const Body& body) {
  int tripped = 0;
  for (const std::uint64_t trip : trips) {
    runtime::RunContext ctx;
    ctx.trip_after_checks = trip;
    runtime::ContextScope scope(&ctx);
    try {
      body();
    } catch (const runtime::Cancelled&) {
      ++tripped;
    }
  }
  return tripped;
}

// ---------------------------------------------------------------------
// SGNS: 20 variants (10 trip points x {negative sampling, hierarchical
// softmax}), each followed by a clean re-run that must match golden.

TEST(ChaosMatrix, SgnsCancelAnywhereThenCleanRunMatchesGolden) {
  const auto sentences = make_sentences();
  const std::vector<std::uint64_t> trips{1, 2, 3, 5, 8, 13, 21, 34, 55, 89};

  for (const bool hs : {false, true}) {
    w2v::SkipGramOptions options;
    options.dim = 16;
    options.epochs = 3;
    options.hierarchical_softmax = hs;

    w2v::SkipGramModel golden(kVocab, options);
    golden.train(sentences);

    const int tripped = run_trip_matrix(trips, [&] {
      w2v::SkipGramModel model(kVocab, options);
      model.train(sentences);
    });
    EXPECT_GT(tripped, 0) << "hs=" << hs;

    // The interrupted runs above must not have perturbed anything
    // global: a clean run still reproduces golden bit-for-bit.
    w2v::SkipGramModel again(kVocab, options);
    again.train(sentences);
    EXPECT_TRUE(same_bits(golden.embedding(), again.embedding()))
        << "hs=" << hs;
  }
}

// ---------------------------------------------------------------------
// GloVe: 10 variants.

TEST(ChaosMatrix, GloveCancelAnywhereThenCleanRunMatchesGolden) {
  const auto sentences = make_sentences();
  const std::vector<std::uint64_t> trips{1, 2, 3, 5, 8, 13, 21, 34, 55, 89};

  w2v::GloveOptions options;
  options.dim = 12;
  options.epochs = 4;
  options.window = 5;

  w2v::GloveModel golden(kVocab, options);
  golden.train(sentences);

  const int tripped = run_trip_matrix(trips, [&] {
    w2v::GloveModel model(kVocab, options);
    model.train(sentences);
  });
  EXPECT_GT(tripped, 0);

  w2v::GloveModel again(kVocab, options);
  again.train(sentences);
  EXPECT_TRUE(same_bits(golden.embedding(), again.embedding()));
}

// ---------------------------------------------------------------------
// batch_topk / topk_scan: 15 cancel variants + deadline degradation.

TEST(ChaosMatrix, BatchTopkCancelAnywhere) {
  const w2v::Embedding normalized = make_embedding(400, 24).normalized();
  std::vector<std::uint32_t> queries(64);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    queries[i] = static_cast<std::uint32_t>(i * 5);
  }
  const auto golden = ml::batch_topk(normalized, queries, 10);

  const std::vector<std::uint64_t> trips{1, 2, 3, 4, 6, 9, 14, 22, 35, 56};
  const int tripped = run_trip_matrix(trips, [&] {
    (void)ml::batch_topk(normalized, queries, 10);
  });
  EXPECT_GT(tripped, 0);

  const auto again = ml::batch_topk(normalized, queries, 10);
  ASSERT_EQ(again.size(), golden.size());
  for (std::size_t q = 0; q < golden.size(); ++q) {
    ASSERT_EQ(again[q].size(), golden[q].size()) << "query " << q;
    for (std::size_t j = 0; j < golden[q].size(); ++j) {
      EXPECT_EQ(again[q][j].index, golden[q][j].index);
      EXPECT_EQ(again[q][j].similarity, golden[q][j].similarity);
    }
  }
}

TEST(ChaosMatrix, TopkScanCancelAnywhere) {
  const w2v::Embedding normalized = make_embedding(600, 16).normalized();
  const auto query = normalized.vec(0);

  // The serial scan checks once per corpus tile through the bounded
  // entry point (the plain topk_scan is the uninstrumented hot path).
  const std::vector<std::uint64_t> trips{1, 2, 3, 4, 5};
  const int tripped = run_trip_matrix(trips, [&] {
    (void)ml::topk_scan_bounded(normalized, query, 1.0f, 8,
                                runtime::current(), 0);
  });
  EXPECT_GT(tripped, 0);
}

TEST(ChaosMatrix, BatchTopkDeadlineDegradesToFlaggedPartialResults) {
  const w2v::Embedding normalized = make_embedding(800, 24).normalized();
  std::vector<std::uint32_t> queries(32);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    queries[i] = static_cast<std::uint32_t>(i);
  }

  for (const int k : {1, 5, 10}) {
    runtime::RunContext ctx;
    ctx.deadline = runtime::Deadline::in(-1.0);  // already expired
    ctx.degrade = runtime::DegradePolicy::kPartialResults;

    ml::BatchTopkResult result;
    EXPECT_NO_THROW(result = ml::batch_topk_bounded(normalized, queries, k,
                                                    &ctx));
    EXPECT_TRUE(result.truncated) << "k=" << k;
    EXPECT_EQ(result.neighbors.size(), queries.size());
    EXPECT_LT(result.complete_queries, queries.size());
    // Whatever came back is well-formed: sorted by decreasing
    // similarity, no self-matches.
    for (std::size_t q = 0; q < result.neighbors.size(); ++q) {
      const auto& nbs = result.neighbors[q];
      for (std::size_t j = 0; j < nbs.size(); ++j) {
        EXPECT_NE(nbs[j].index, queries[q]);
        if (j > 0) {
          EXPECT_GE(nbs[j - 1].similarity, nbs[j].similarity);
        }
      }
    }
  }
}

TEST(ChaosMatrix, TopkScanDeadlineDegradesToPrefixScan) {
  const w2v::Embedding normalized = make_embedding(500, 16).normalized();
  runtime::RunContext ctx;
  ctx.deadline = runtime::Deadline::in(-1.0);
  ctx.degrade = runtime::DegradePolicy::kPartialResults;

  const ml::TopkScanResult result =
      ml::topk_scan_bounded(normalized, normalized.vec(3), 1.0f, 5, &ctx, 3);
  EXPECT_TRUE(result.truncated);
  EXPECT_EQ(result.rows_scanned, 0u);  // expired before the first tile
  EXPECT_TRUE(result.neighbors.empty());
}

// ---------------------------------------------------------------------
// IVF build + query: 15 variants.

TEST(ChaosMatrix, IvfBuildCancelAnywhereThenCleanBuildWorks) {
  const w2v::Embedding normalized = make_embedding(300, 16).normalized();
  ml::IvfOptions options;
  options.nlist = 8;

  const std::vector<std::uint64_t> trips{1, 2, 3, 4, 6, 9, 14, 22, 35, 56};
  const int tripped = run_trip_matrix(trips, [&] {
    (void)ml::IvfIndex::build(normalized, options);
  });
  EXPECT_GT(tripped, 0);

  const ml::IvfIndex index = ml::IvfIndex::build(normalized, options);
  EXPECT_EQ(index.size(), normalized.size());
}

TEST(ChaosMatrix, IvfQueryCancelAnywhere) {
  const w2v::Embedding normalized = make_embedding(300, 16).normalized();
  ml::IvfOptions options;
  options.nlist = 8;
  const ml::IvfIndex index = ml::IvfIndex::build(normalized, options);
  std::vector<std::uint32_t> queries(48);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    queries[i] = static_cast<std::uint32_t>(i * 3);
  }

  const std::vector<std::uint64_t> trips{1, 2, 4, 8, 16};
  const int tripped = run_trip_matrix(trips, [&] {
    (void)index.query_batch(queries, 5);
  });
  EXPECT_GT(tripped, 0);

  // Index unharmed: a clean query round-trips.
  EXPECT_EQ(index.query_batch(queries, 5).size(), queries.size());
}

// ---------------------------------------------------------------------
// Graph layer: 10 variants.

TEST(ChaosMatrix, KnnGraphCancelAnywhere) {
  const ml::CosineKnn knn(make_embedding(200, 12));

  const std::vector<std::uint64_t> trips{1, 2, 4, 8, 16};
  const int tripped = run_trip_matrix(trips, [&] {
    (void)graph::knn_graph(knn, 3);
  });
  EXPECT_GT(tripped, 0);

  EXPECT_EQ(graph::knn_graph(knn, 3).num_nodes(), knn.size());
}

TEST(ChaosMatrix, LouvainCancelAnywhereThenCleanRunMatchesGolden) {
  const ml::CosineKnn knn(make_embedding(200, 12));
  const graph::WeightedGraph g = graph::knn_graph(knn, 3);
  const graph::LouvainResult golden = graph::louvain(g);

  const std::vector<std::uint64_t> trips{1, 2, 3, 5, 8};
  const int tripped = run_trip_matrix(trips, [&] {
    (void)graph::louvain(g);
  });
  EXPECT_GT(tripped, 0);

  const graph::LouvainResult again = graph::louvain(g);
  EXPECT_EQ(again.community, golden.community);
  EXPECT_EQ(again.modularity, golden.modularity);
}

// ---------------------------------------------------------------------
// Training checkpoint/resume: interrupted-then-resumed must be
// bit-exact against uninterrupted at equal checkpoint cadence.

TEST(ChaosMatrix, SgnsKilledThenResumedIsBitExact) {
  const auto sentences = make_sentences();
  w2v::SkipGramOptions options;
  options.dim = 16;
  options.epochs = 6;

  // Golden: uninterrupted, same checkpoint cadence (checkpointing only
  // writes files; it must not perturb the math).
  const std::string golden_ckpt = temp_path("sgns_golden.ckpt");
  w2v::TrainControl golden_control;
  golden_control.checkpoint_path = golden_ckpt;
  w2v::SkipGramModel golden(kVocab, options);
  const w2v::TrainStats golden_stats =
      golden.train(sentences, golden_control);
  EXPECT_EQ(golden_stats.epochs_done, options.epochs);
  EXPECT_GE(golden_stats.checkpoints_written, 1u);

  const std::vector<std::uint64_t> trips{3, 17, 40, 77, 150, 400, 1000,
                                         5000};
  int resumed_variants = 0;
  for (const std::uint64_t trip : trips) {
    const std::string ckpt =
        temp_path("sgns_trip_" + std::to_string(trip) + ".ckpt");
    w2v::TrainControl control;
    control.checkpoint_path = ckpt;

    bool interrupted = false;
    {
      runtime::RunContext ctx;
      ctx.trip_after_checks = trip;
      runtime::ContextScope scope(&ctx);
      w2v::SkipGramModel model(kVocab, options);
      try {
        model.train(sentences, control);
      } catch (const runtime::Cancelled&) {
        interrupted = true;
      }
    }

    // Valid-or-absent: whatever the trip point, a checkpoint on disk
    // must load cleanly (load_checkpoint_file CRC-checks everything).
    control.resume = true;
    w2v::SkipGramModel resumed(kVocab, options);
    const w2v::TrainStats stats = resumed.train(sentences, control);
    EXPECT_EQ(stats.epochs_done, options.epochs);
    EXPECT_TRUE(same_bits(golden.embedding(), resumed.embedding()))
        << "trip=" << trip << " interrupted=" << interrupted
        << " resumed=" << stats.resumed;
    if (interrupted && stats.resumed) ++resumed_variants;
    std::remove(ckpt.c_str());
  }
  // The grid must actually exercise mid-train resume, not just
  // trip-before-first-checkpoint or complete-without-tripping.
  EXPECT_GT(resumed_variants, 0);
  std::remove(golden_ckpt.c_str());
}

TEST(ChaosMatrix, GloveKilledThenResumedIsBitExact) {
  const auto sentences = make_sentences();
  w2v::GloveOptions options;
  options.dim = 12;
  options.epochs = 5;
  options.window = 5;

  // Measure how many cooperative checks a full train performs so the
  // trip points land mid-train whatever the current check cadence is
  // (this corpus has few co-occurrence cells, so the cadence is coarse).
  runtime::RunContext probe;
  w2v::GloveModel golden(kVocab, options);
  {
    runtime::ContextScope scope(&probe);
    golden.train(sentences);
  }
  const std::uint64_t total = probe.checks_observed();
  ASSERT_GT(total, 4u);

  const std::vector<std::uint64_t> trips{
      total / 3, total / 2, (3 * total) / 4, total - 1};
  int resumed_variants = 0;
  for (const std::uint64_t trip : trips) {
    const std::string ckpt =
        temp_path("glove_trip_" + std::to_string(trip) + ".ckpt");
    w2v::TrainControl control;
    control.checkpoint_path = ckpt;

    bool interrupted = false;
    {
      runtime::RunContext ctx;
      ctx.trip_after_checks = trip;
      runtime::ContextScope scope(&ctx);
      w2v::GloveModel model(kVocab, options);
      try {
        model.train(sentences, control);
      } catch (const runtime::Cancelled&) {
        interrupted = true;
      }
    }

    control.resume = true;
    w2v::GloveModel resumed(kVocab, options);
    const w2v::TrainStats stats = resumed.train(sentences, control);
    EXPECT_EQ(stats.epochs_done, options.epochs);
    EXPECT_TRUE(same_bits(golden.embedding(), resumed.embedding()))
        << "trip=" << trip << " interrupted=" << interrupted;
    if (interrupted && stats.resumed) ++resumed_variants;
    std::remove(ckpt.c_str());
  }
  EXPECT_GT(resumed_variants, 0);
}

TEST(ChaosMatrix, ResumeRejectsMismatchedConfig) {
  const auto sentences = make_sentences();
  const std::string ckpt = temp_path("sgns_mismatch.ckpt");
  w2v::SkipGramOptions options;
  options.dim = 16;
  options.epochs = 2;
  w2v::TrainControl control;
  control.checkpoint_path = ckpt;
  w2v::SkipGramModel model(kVocab, options);
  model.train(sentences, control);

  options.dim = 24;  // different geometry — the fingerprint must differ
  control.resume = true;
  w2v::SkipGramModel other(kVocab, options);
  EXPECT_THROW(other.train(sentences, control), io::FormatError);
  std::remove(ckpt.c_str());
}

// ---------------------------------------------------------------------
// Streaming: 10 cancel variants + checkpointed resume + fork/SIGKILL.

class ChaosStreaming : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::SimConfig config;
    config.days = 10;
    config.seed = 99;
    sim_ = new sim::SimResult(
        sim::DarknetSimulator(config).run(sim::tiny_scenario()));
  }
  static void TearDownTestSuite() {
    delete sim_;
    sim_ = nullptr;
  }

  static StreamingConfig stream_config() {
    StreamingConfig stream;
    stream.window_seconds = 4 * net::kSecondsPerDay;
    stream.step_seconds = 2 * net::kSecondsPerDay;
    stream.darkvec.w2v.dim = 12;
    stream.darkvec.w2v.epochs = 2;
    stream.darkvec.corpus.min_packets = 5;
    return stream;
  }

  static sim::SimResult* sim_;
};

sim::SimResult* ChaosStreaming::sim_ = nullptr;

TEST_F(ChaosStreaming, CancelMidStreamKeepsCompletedSnapshots) {
  const StreamingConfig stream = stream_config();
  const StreamingResult golden =
      run_streaming_monitored(sim_->trace, stream);
  ASSERT_TRUE(golden.completed);
  ASSERT_GE(golden.snapshots.size(), 3u);

  const std::vector<std::uint64_t> trips{1,   5,    20,   80,   200,
                                         500, 1200, 2500, 5000, 12000};
  int aborted = 0;
  for (const std::uint64_t trip : trips) {
    runtime::RunContext ctx;
    ctx.trip_after_checks = trip;
    runtime::ContextScope scope(&ctx);
    StreamingResult result;
    // Interruption must NOT throw out of the monitored runner and must
    // NOT masquerade as a run of degraded windows.
    EXPECT_NO_THROW(result = run_streaming_monitored(sim_->trace, stream));
    if (!result.completed) {
      ++aborted;
      EXPECT_EQ(result.stop_reason, runtime::StopReason::kCancelled);
      EXPECT_LE(result.snapshots.size(), golden.snapshots.size());
      // Completed snapshots are real work, identical to golden's prefix
      // schedule.
      for (std::size_t i = 0; i < result.snapshots.size(); ++i) {
        EXPECT_EQ(result.snapshots[i].window_end,
                  golden.snapshots[i].window_end);
        EXPECT_FALSE(result.snapshots[i].degraded &&
                     result.snapshots[i].degraded_reason.empty());
      }
    }
  }
  EXPECT_GT(aborted, 0);
}

TEST_F(ChaosStreaming, CheckpointedStreamResumesFromLastCompletedWindow) {
  StreamingConfig stream = stream_config();
  // Measure the check budget of a full run so the trip points land in
  // later windows regardless of how chatty the kernels are.
  runtime::RunContext probe;
  StreamingResult golden;
  {
    runtime::ContextScope scope(&probe);
    golden = run_streaming_monitored(sim_->trace, stream);
  }
  ASSERT_TRUE(golden.completed);
  const std::uint64_t total = probe.checks_observed();
  ASSERT_GT(total, 8u);

  int genuine_resumes = 0;
  for (const std::uint64_t trip :
       {total / 2, (3 * total) / 4, (9 * total) / 10}) {
    const std::string ckpt =
        temp_path("stream_trip_" + std::to_string(trip) + ".ckpt");
    stream.checkpoint_path = ckpt;
    stream.resume = false;

    StreamingResult first;
    {
      runtime::RunContext ctx;
      ctx.trip_after_checks = trip;
      runtime::ContextScope scope(&ctx);
      first = run_streaming_monitored(sim_->trace, stream);
    }

    stream.resume = true;
    const StreamingResult rest =
        run_streaming_monitored(sim_->trace, stream);
    EXPECT_TRUE(rest.completed);
    // A checkpoint exists iff the first run finished at least one
    // window; interruptions inside the very first window leave nothing
    // behind, and the resume run correctly starts from scratch.
    if (!first.completed && !first.snapshots.empty()) {
      EXPECT_TRUE(rest.resumed) << "trip=" << trip;
      EXPECT_EQ(rest.prior_snapshots, first.snapshots.size());
      ++genuine_resumes;
    }
    // Stitched coverage equals the uninterrupted schedule: no window
    // re-run, none skipped.
    std::vector<std::int64_t> ends;
    for (const auto& s : first.snapshots) ends.push_back(s.window_end);
    for (const auto& s : rest.snapshots) ends.push_back(s.window_end);
    ASSERT_EQ(ends.size(), golden.snapshots.size()) << "trip=" << trip;
    for (std::size_t i = 0; i < ends.size(); ++i) {
      EXPECT_EQ(ends[i], golden.snapshots[i].window_end);
    }
    std::remove(ckpt.c_str());
  }
  // The trip grid must actually demonstrate a mid-stream resume.
  EXPECT_GT(genuine_resumes, 0);
}

// ---------------------------------------------------------------------
// The real thing: SIGKILL mid-train, then resume in-process. Epoch-
// boundary checkpoints make the final state independent of where the
// kill landed, so the resumed embedding must still equal golden.

TEST(ChaosKill, SigkilledSgnsTrainingResumesBitExact) {
  const auto sentences = make_sentences();
  w2v::SkipGramOptions options;
  options.dim = 16;
  options.epochs = 40;  // long enough that the kill lands mid-train

  const std::string golden_ckpt = temp_path("sgns_kill_golden.ckpt");
  w2v::TrainControl golden_control;
  golden_control.checkpoint_path = golden_ckpt;
  w2v::SkipGramModel golden(kVocab, options);
  golden.train(sentences, golden_control);

  const std::string ckpt = temp_path("sgns_kill.ckpt");
  std::remove(ckpt.c_str());
  w2v::TrainControl control;
  control.checkpoint_path = ckpt;

  const pid_t pid = fork();
  ASSERT_GE(pid, 0) << "fork failed";
  if (pid == 0) {
    // Child: train with checkpoints until killed. _exit keeps gtest and
    // static destructors out of the forked copy.
    w2v::SkipGramModel model(kVocab, options);
    try {
      model.train(sentences, control);
    } catch (...) {
    }
    _exit(0);
  }

  // Parent: wait for at least one checkpoint to exist, then kill hard.
  for (int spin = 0; spin < 20000; ++spin) {
    std::ifstream probe(ckpt, std::ios::binary);
    if (probe) break;
    usleep(1000);
  }
  kill(pid, SIGKILL);
  int status = 0;
  waitpid(pid, &status, 0);

  // Whatever instant the kill hit, the file is valid-or-absent and the
  // resumed run lands exactly on golden.
  control.resume = true;
  w2v::SkipGramModel resumed(kVocab, options);
  const w2v::TrainStats stats = resumed.train(sentences, control);
  EXPECT_EQ(stats.epochs_done, options.epochs);
  EXPECT_TRUE(same_bits(golden.embedding(), resumed.embedding()))
      << "resumed=" << stats.resumed
      << " start_epoch=" << stats.start_epoch;
  std::remove(ckpt.c_str());
  std::remove(golden_ckpt.c_str());
}

TEST_F(ChaosStreaming, SigkilledStreamResumesWithoutRerunningWindows) {
  StreamingConfig stream = stream_config();
  const StreamingResult golden =
      run_streaming_monitored(sim_->trace, stream);
  ASSERT_TRUE(golden.completed);

  const std::string ckpt = temp_path("stream_kill.ckpt");
  std::remove(ckpt.c_str());
  stream.checkpoint_path = ckpt;

  const pid_t pid = fork();
  ASSERT_GE(pid, 0) << "fork failed";
  if (pid == 0) {
    try {
      (void)run_streaming_monitored(sim_->trace, stream);
    } catch (...) {
    }
    _exit(0);
  }
  for (int spin = 0; spin < 20000; ++spin) {
    std::ifstream probe(ckpt, std::ios::binary);
    if (probe) break;
    usleep(1000);
  }
  kill(pid, SIGKILL);
  int status = 0;
  waitpid(pid, &status, 0);

  stream.resume = true;
  const StreamingResult rest = run_streaming_monitored(sim_->trace, stream);
  EXPECT_TRUE(rest.completed);
  // The stitched schedule covers golden's with no duplicates: resumed
  // windows continue exactly where the checkpoint says the last
  // completed window ended.
  if (rest.resumed) {
    EXPECT_EQ(rest.prior_snapshots + rest.snapshots.size(),
              golden.snapshots.size());
    const std::size_t offset =
        golden.snapshots.size() - rest.snapshots.size();
    for (std::size_t i = 0; i < rest.snapshots.size(); ++i) {
      EXPECT_EQ(rest.snapshots[i].window_end,
                golden.snapshots[offset + i].window_end);
    }
  }
  std::remove(ckpt.c_str());
}

}  // namespace
}  // namespace darkvec
